package deadlineqos

import (
	"testing"
)

// The facade tests exercise the public API exactly as a downstream user
// would; behavioural depth lives in the internal package tests.

func TestPublicQuickRun(t *testing.T) {
	cfg := SmallConfig()
	cfg.Arch = Advanced2VC
	cfg.Load = 0.5
	cfg.WarmUp = 500 * Microsecond
	cfg.Measure = 4 * Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerClass[Control].DeliveredPackets == 0 {
		t.Fatal("no control packets delivered through the public API")
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
	snap := res.Snapshot("public-api")
	if snap.Classes["Control"].DeliveredPackets == 0 {
		t.Fatal("snapshot missing control deliveries")
	}
}

func TestPublicTopologyConstructors(t *testing.T) {
	if PaperMIN().Hosts() != 128 {
		t.Error("PaperMIN is not the 128-endpoint network")
	}
	clos, err := NewFoldedClos(4, 4, 4)
	if err != nil || clos.Hosts() != 16 {
		t.Errorf("NewFoldedClos: %v hosts, err %v", clos, err)
	}
	tree, err := NewKAryNTree(2, 3)
	if err != nil || tree.Hosts() != 8 {
		t.Errorf("NewKAryNTree: err %v", err)
	}
	if SingleSwitch(4).Hosts() != 4 {
		t.Error("SingleSwitch wrong")
	}
}

func TestPublicBufferTypes(t *testing.T) {
	for name, buf := range map[string]Buffer{
		"fifo":     NewFIFOQueue(Kilobyte, true),
		"heap":     NewHeapQueue(Kilobyte, true),
		"takeover": NewTakeOverQueue(Kilobyte, true),
	} {
		buf.Push(&Packet{ID: 1, Deadline: 50, Size: 64})
		buf.Push(&Packet{ID: 2, Deadline: 10, Size: 64})
		if buf.Len() != 2 {
			t.Errorf("%s: Len = %d", name, buf.Len())
		}
		p := buf.Pop()
		if name != "fifo" && p.Deadline != 10 {
			t.Errorf("%s: popped deadline %v, want 10", name, p.Deadline)
		}
	}
}

func TestPublicNewAllowsCustomDriving(t *testing.T) {
	cfg := SmallConfig()
	cfg.Load = 0.2
	cfg.WarmUp = 0
	cfg.Measure = Millisecond
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Engine() == nil || n.Host(0) == nil || n.Admission() == nil || n.Collector() == nil {
		t.Fatal("network accessors returned nil")
	}
	res := n.Run()
	if res.SimEvents == 0 {
		t.Fatal("no events executed")
	}
}

func TestPublicExperimentOptions(t *testing.T) {
	if QuickExperiments().Base.Topology.Hosts() != 16 {
		t.Error("QuickExperiments wrong scale")
	}
	if PaperExperiments().Base.Topology.Hosts() != 128 {
		t.Error("PaperExperiments wrong scale")
	}
}

func TestPublicUnits(t *testing.T) {
	if GbpsToBandwidth(8) != 1 {
		t.Error("GbpsToBandwidth(8) != 1 byte/cycle")
	}
	if Millisecond != 1_000_000*Nanosecond {
		t.Error("time constants inconsistent")
	}
	if Megabyte != 1024*Kilobyte {
		t.Error("size constants inconsistent")
	}
}

func TestPublicAnalyticFloor(t *testing.T) {
	// 256-byte packet, one switch, 5-cycle propagation: the worked
	// example from the switch model tests.
	if got := UnloadedPacketLatency(256, 1, 1, 0, 5); got != 778 {
		t.Fatalf("UnloadedPacketLatency = %v, want 778", got)
	}
}
