module deadlineqos

go 1.22
