// Package deadlineqos is a discrete-event simulation library reproducing
// "Deadline-based QoS Algorithms for High-performance Networks"
// (Martínez, Alfaro, Sánchez, Duato — IPDPS 2007).
//
// The paper adapts the Earliest-Deadline-First family of scheduling
// algorithms to high-speed interconnection networks: end hosts stamp each
// packet with a single deadline tag (a Virtual Clock variant), switches
// schedule by comparing only the deadlines of their FIFO queue heads, and a
// two-queue "take-over" buffer recovers most of the latency lost to order
// errors — at the hardware cost of plain FIFO memories and two virtual
// channels.
//
// This package is the public facade over the implementation packages in
// internal/: it re-exports everything a downstream user needs to build
// networks, run workloads, and regenerate the paper's evaluation.
//
// Quick start:
//
//	cfg := deadlineqos.DefaultConfig()      // the paper's 128-endpoint MIN
//	cfg.Arch = deadlineqos.Advanced2VC      // take-over queue architecture
//	cfg.Load = 1.0                          // 100% offered load
//	res, err := deadlineqos.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.Summary())
//
// See examples/ for complete programs and internal/experiments for the
// harness that regenerates every table and figure of the paper.
package deadlineqos

import (
	"deadlineqos/internal/analytic"
	"deadlineqos/internal/arbiter"
	"deadlineqos/internal/arch"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/experiments"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/pqueue"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// Config describes one simulation run; see the field documentation in the
// underlying type. Construct with DefaultConfig or SmallConfig.
type Config = network.Config

// Results carries the metrics collected by a run.
type Results = network.Results

// Network is a built simulation (advanced use; Run covers the common case).
type Network = network.Network

// Arch selects the switch architecture under test.
type Arch = arch.Arch

// The paper's four switch architectures (§4.1), plus the 4-VC extension.
const (
	Traditional2VC = arch.Traditional2VC // PCI-AS-style 2 VCs, no deadlines
	IdealEDF       = arch.Ideal          // heap-ordered buffers (upper bound)
	Simple2VC      = arch.Simple2VC      // FIFO + deadline head comparison
	Advanced2VC    = arch.Advanced2VC    // FIFO + take-over queue (§3.4)
	// Traditional4VC is the extension architecture: one weighted VC per
	// traffic class, still deadline-blind — the "many more VCs"
	// alternative the paper's conclusion argues is unaffordable.
	Traditional4VC = arch.Traditional4VC
)

// Class identifies a workload traffic class (Table 1).
type Class = packet.Class

// The four traffic classes of the evaluation workload.
const (
	Control    = packet.Control
	Multimedia = packet.Multimedia
	BestEffort = packet.BestEffort
	Background = packet.Background
	NumClasses = packet.NumClasses
)

// Time is simulated time in cycles (1 cycle = 1 ns at the reference 8 Gb/s
// link rate).
type Time = units.Time

// Common durations.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
)

// Size is a data size in bytes.
type Size = units.Size

// Common sizes.
const (
	Byte     = units.Byte
	Kilobyte = units.Kilobyte
	Megabyte = units.Megabyte
)

// Bandwidth is a transmission rate in bytes per cycle.
type Bandwidth = units.Bandwidth

// GbpsToBandwidth converts gigabits per second to bytes per cycle.
func GbpsToBandwidth(gbps float64) Bandwidth { return units.GbpsToBandwidth(gbps) }

// Topology describes a network shape; see NewFoldedClos, NewKAryNTree,
// PaperMIN and SingleSwitch.
type Topology = topology.Topology

// PaperMIN returns the paper's evaluation network: a 128-endpoint folded
// perfect-shuffle MIN built from 16-port switches.
func PaperMIN() Topology { return topology.PaperMIN() }

// NewFoldedClos returns a two-level folded Clos (leaf/spine) network with
// the given leaf count, hosts per leaf, and spine count.
func NewFoldedClos(leaves, down, up int) (Topology, error) {
	return topology.NewFoldedClos(leaves, down, up)
}

// NewKAryNTree returns the k-ary n-tree folded butterfly with k^n hosts.
func NewKAryNTree(k, n int) (Topology, error) { return topology.NewKAryNTree(k, n) }

// SingleSwitch returns n hosts attached to one switch (for experiments on
// buffer behaviour in isolation).
func SingleSwitch(n int) Topology { return &topology.SingleSwitch{N: n} }

// DefaultConfig returns the paper's evaluation parameters (§4.1/§4.2):
// the 128-endpoint MIN, 8 Gb/s links, 8 KB buffers per VC, 2 KB MTU, the
// Table 1 traffic mix, 20 µs eligible-time lead and 10 ms video target.
func DefaultConfig() Config { return network.DefaultConfig() }

// SmallConfig returns a 16-host configuration that preserves the paper's
// qualitative behaviour at a fraction of the runtime (used by tests and
// benchmarks).
func SmallConfig() Config { return network.SmallConfig() }

// New builds a network from cfg without running it (advanced use: custom
// drivers can schedule their own traffic through Network.Engine).
func New(cfg Config) (*Network, error) { return network.New(cfg) }

// Run builds and executes one simulation, returning its measurements.
func Run(cfg Config) (*Results, error) { return network.Run(cfg) }

// ExperimentOptions selects scale and coverage for the experiment suite
// (see internal/experiments for the per-figure functions).
type ExperimentOptions = experiments.Options

// QuickExperiments returns reduced-scale experiment options.
func QuickExperiments() ExperimentOptions { return experiments.Quick() }

// PaperExperiments returns full-scale (128-endpoint) experiment options.
func PaperExperiments() ExperimentOptions { return experiments.Paper() }

// TakeOverQueue is the paper's two-FIFO buffer structure (§3.4), exported
// for direct experimentation; see examples/takeover.
type TakeOverQueue = pqueue.TakeOverQueue

// NewTakeOverQueue returns an empty take-over buffer with the given byte
// capacity; track enables the order-error oracle.
func NewTakeOverQueue(capacity Size, track bool) *TakeOverQueue {
	return pqueue.NewTakeOver(capacity, track)
}

// Buffer is the interface all port buffer disciplines implement.
type Buffer = pqueue.Buffer

// NewFIFOQueue returns a plain FIFO buffer (the Traditional and Simple
// architectures' discipline) for buffer-level experiments.
func NewFIFOQueue(capacity Size, track bool) Buffer {
	return pqueue.NewFIFO(capacity, track)
}

// NewHeapQueue returns a deadline-ordered buffer (the Ideal architecture's
// discipline).
func NewHeapQueue(capacity Size, track bool) Buffer {
	return pqueue.NewHeap(capacity, track)
}

// VC identifies a virtual channel of a port (0..NumVCs-1; the deadline-aware
// architectures map classes onto 2 VCs, Traditional4VC onto all 4).
type VC = packet.VC

// NumVCs is the number of virtual channels every port provisions.
const NumVCs = packet.NumVCs

// Policy is a pluggable scheduling policy: it chooses the host injection
// queue discipline, the NIC's next-VC pick, and the switch output-port
// arbitration. Custom policies implement this interface out of tree; see
// examples/fifopolicy and the contract in DESIGN.md §14.
type Policy = policy.Policy

// Arbiter makes one switch output port's grant decisions for a Policy.
type Arbiter = policy.Arbiter

// ArbiterConfig carries what a switch output port knows when a Policy
// builds its Arbiter.
type ArbiterConfig = policy.ArbiterConfig

// ArbiterCandidate is one crossbar request offered to an Arbiter: the head
// packet of a non-busy input that fits the output buffer.
type ArbiterCandidate = arbiter.Candidate

// PolicyHostQueueCap is the unbounded host injection-queue capacity the
// built-in policies use (host memory, effectively infinite next to switch
// buffers).
const PolicyHostQueueCap = policy.HostQueueCap

// DefaultPolicy returns the paper's EDF-takeover scheduling policy —
// byte-identical to leaving Config.Policy nil.
func DefaultPolicy() Policy { return policy.Default() }

// CoflowEDFPolicy returns the coflow-level EDF policy: the default data
// path, with every packet of an admitted collective round stamped with the
// round's shared deadline (see internal/coflow).
func CoflowEDFPolicy() Policy { return policy.CoflowEDF() }

// ValueDropPolicy returns the value-aware best-effort dropping policy:
// best-effort injection queues bounded at bound bytes (0 = default),
// evicting the lowest value-density packet on overflow — or the newest
// arrival when tail is true (the classic tail-drop baseline).
func ValueDropPolicy(bound Size, tail bool) Policy { return policy.ValueDrop(bound, tail) }

// ParsePolicy resolves a built-in policy name ("" = default); see
// PolicyNames.
func ParsePolicy(name string) (Policy, error) { return policy.Parse(name) }

// PolicyNames lists the built-in policy names ParsePolicy accepts.
func PolicyNames() []string { return policy.Names() }

// CoflowConfig attaches the ring collective workload to a run
// (Config.Coflows): Rounds rounds of Chunk-sized neighbour exchanges,
// admitted through the CAC in σ order under per-round deadlines.
type CoflowConfig = coflow.Config

// CoflowResults is the collective-workload accounting of Results.Coflows.
type CoflowResults = coflow.Results

// Packet is the unit of transfer; exported for buffer-level experiments.
type Packet = packet.Packet

// FlowID identifies a flow (a connection with a fixed route).
type FlowID = packet.FlowID

// FaultPlan is a deterministic fault schedule (link flaps, bandwidth
// derating, bit errors) injected into a run via Config.Faults; identical
// seeds and plans replay identical fault traces. See examples/chaos.
type FaultPlan = faults.Plan

// FaultEvent is one timed fault of a plan.
type FaultEvent = faults.Event

// FaultLinkID addresses a switch output link in a fault plan, matching
// Config.DegradedLinks coordinates.
type FaultLinkID = faults.LinkID

// FaultTraceEntry is one executed fault event of Results.FaultTrace.
type FaultTraceEntry = faults.TraceEntry

// The fault event kinds.
const (
	LinkDown   = faults.LinkDown // link drops; in-flight packets are lost
	LinkUp     = faults.LinkUp   // link recovers; arbitration resumes
	LinkDerate = faults.Derate   // bandwidth set to Scale x nominal
)

// FaultRandomConfig bounds the fault processes RandomFaultPlan draws.
type FaultRandomConfig = faults.RandomConfig

// RandomFaultPlan draws a reproducible random fault plan over the given
// links and time horizon.
func RandomFaultPlan(seed uint64, links []FaultLinkID, horizon Time, cfg FaultRandomConfig) *FaultPlan {
	return faults.RandomPlan(seed, links, horizon, cfg)
}

// Reliability configures the hosts' end-to-end retransmission layer
// (Config.Reliability): CRC drop at the receiver, NAKs, timeout/backoff
// retransmission with deadline re-stamping, demotion to best-effort.
type Reliability = hostif.Reliability

// Conservation is the run-level packet accounting of Results.Conservation;
// its Check method is the simulator's end-to-end conservation invariant.
type Conservation = faults.Conservation

// UnloadedPacketLatency returns the closed-form end-to-end latency of a
// packet of the given wire size crossing switchHops switches on an idle
// network with the given link/crossbar bandwidths and per-link propagation
// delay — the physical floor every simulated latency is bounded by (see
// internal/analytic).
func UnloadedPacketLatency(wire Size, switchHops int, linkBW, xbarBW Bandwidth, prop Time) Time {
	return analytic.UnloadedPacketLatency(wire, switchHops, linkBW, xbarBW, prop)
}
