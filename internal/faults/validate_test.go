package faults

import (
	"strings"
	"testing"

	"deadlineqos/internal/units"
)

// TestValidateSwitchEvents pins the hardened plan validation for the
// switch- and port-scoped fault kinds: range checks, the Port==-1 rule
// for whole-switch events, and the no-overlapping-outages replay.
func TestValidateSwitchEvents(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error, "" = valid
	}{
		{"good switch outage", Plan{Events: []Event{
			{At: 10, Link: SwitchID(2), Kind: SwitchDown},
			{At: 20, Link: SwitchID(2), Kind: SwitchUp},
		}}, ""},
		{"sequential outages same switch", Plan{Events: []Event{
			{At: 10, Link: SwitchID(1), Kind: SwitchDown},
			{At: 20, Link: SwitchID(1), Kind: SwitchUp},
			{At: 30, Link: SwitchID(1), Kind: SwitchDown},
			{At: 40, Link: SwitchID(1), Kind: SwitchUp},
		}}, ""},
		{"concurrent outages different switches", Plan{Events: []Event{
			{At: 10, Link: SwitchID(0), Kind: SwitchDown},
			{At: 15, Link: SwitchID(3), Kind: SwitchDown},
			{At: 20, Link: SwitchID(0), Kind: SwitchUp},
			{At: 25, Link: SwitchID(3), Kind: SwitchUp},
		}}, ""},
		{"switch out of range", Plan{Events: []Event{
			{At: 0, Link: SwitchID(4), Kind: SwitchDown},
		}}, "outside [0,4)"},
		{"negative switch", Plan{Events: []Event{
			{At: 0, Link: SwitchID(-1), Kind: SwitchUp},
		}}, "outside [0,4)"},
		{"switch event with a port", Plan{Events: []Event{
			{At: 0, Link: LinkID{Switch: 1, Port: 3}, Kind: SwitchDown},
		}}, "must use Port -1"},
		{"overlapping down-down", Plan{Events: []Event{
			{At: 10, Link: SwitchID(1), Kind: SwitchDown},
			{At: 15, Link: SwitchID(1), Kind: SwitchDown},
			{At: 20, Link: SwitchID(1), Kind: SwitchUp},
		}}, "already down"},
		{"up before down", Plan{Events: []Event{
			{At: 10, Link: SwitchID(1), Kind: SwitchUp},
		}}, "already up"},
		{"overlap found after normalization", Plan{Events: []Event{
			// Out of plan order: normalized by time the sequence is
			// Down(5), Down(8) — an overlap.
			{At: 8, Link: SwitchID(2), Kind: SwitchDown},
			{At: 5, Link: SwitchID(2), Kind: SwitchDown},
			{At: 9, Link: SwitchID(2), Kind: SwitchUp},
		}}, "already down"},
		{"good port cut", Plan{Events: []Event{
			{At: 10, Link: LinkID{Switch: 0, Port: 4}, Kind: PortDown},
			{At: 20, Link: LinkID{Switch: 0, Port: 4}, Kind: PortUp},
		}}, ""},
		{"port down out of range", Plan{Events: []Event{
			{At: 0, Link: LinkID{Switch: 0, Port: 8}, Kind: PortDown},
		}}, "not in topology"},
		{"overlapping port down-down", Plan{Events: []Event{
			{At: 10, Link: LinkID{Switch: 0, Port: 4}, Kind: PortDown},
			{At: 12, Link: LinkID{Switch: 0, Port: 4}, Kind: PortDown},
		}}, "already down"},
		{"port up while up", Plan{Events: []Event{
			{At: 10, Link: LinkID{Switch: 0, Port: 4}, Kind: PortUp},
		}}, "already up"},
		{"same port different switch ok", Plan{Events: []Event{
			{At: 10, Link: LinkID{Switch: 0, Port: 4}, Kind: PortDown},
			{At: 12, Link: LinkID{Switch: 1, Port: 4}, Kind: PortDown},
		}}, ""},
	}
	for _, c := range cases {
		err := c.plan.Validate(4, 16, radix4)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestRandomPlanSwitchFaults pins the switch-outage generator: plans are
// deterministic, validate (i.e. never overlap on one switch), and respect
// the horizon.
func TestRandomPlanSwitchFaults(t *testing.T) {
	links := []LinkID{{0, 0}, {1, 1}}
	horizon := 10 * units.Millisecond
	cfg := RandomConfig{
		Switches: 4, SwitchFaults: 6,
		SwitchMTTF: 2 * units.Millisecond, SwitchMTTR: 300 * units.Microsecond,
	}
	a := RandomPlan(7, links, horizon, cfg)
	b := RandomPlan(7, links, horizon, cfg)
	if len(a.Events) == 0 {
		t.Fatal("no switch events generated")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same-seed plans differ in size: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same-seed plans differ at %d: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	if err := a.Validate(4, 16, radix4); err != nil {
		t.Fatalf("random switch plan invalid: %v", err)
	}
	if !a.HasTopological() {
		t.Fatal("switch plan not reported topological")
	}
	downs := 0
	for _, e := range a.Events {
		if e.Kind == SwitchDown {
			downs++
			if e.At >= horizon {
				t.Fatalf("outage %v starts past the horizon", e)
			}
		}
		if e.Kind != SwitchDown && e.Kind != SwitchUp {
			t.Fatalf("unexpected kind in switch-only plan: %v", e)
		}
	}
	if downs == 0 {
		t.Fatal("no SwitchDown events survived the horizon clamp")
	}
}

// TestValidateBehaviouralEvents pins the plan validation for the
// endpoint-misbehaviour kinds: host range, window shape, scale bounds,
// and the no-overlapping-windows replay per (host, kind).
func TestValidateBehaviouralEvents(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error, "" = valid
	}{
		{"good rogue window", Plan{Events: []Event{
			{At: 10, Kind: RogueFlow, Scale: 4, Host: 3, Until: 50},
		}}, ""},
		{"good forge window", Plan{Events: []Event{
			{At: 10, Kind: DeadlineForge, Scale: 0.5, Host: 0, Until: 50},
		}}, ""},
		{"sequential windows same host", Plan{Events: []Event{
			{At: 10, Kind: RogueFlow, Scale: 2, Host: 1, Until: 20},
			{At: 21, Kind: RogueFlow, Scale: 3, Host: 1, Until: 40},
		}}, ""},
		{"concurrent windows different hosts", Plan{Events: []Event{
			{At: 10, Kind: RogueFlow, Scale: 2, Host: 1, Until: 40},
			{At: 15, Kind: RogueFlow, Scale: 2, Host: 2, Until: 35},
		}}, ""},
		{"concurrent rogue and forge same host", Plan{Events: []Event{
			{At: 10, Kind: RogueFlow, Scale: 2, Host: 1, Until: 40},
			{At: 15, Kind: DeadlineForge, Scale: 0.5, Host: 1, Until: 35},
		}}, ""},
		{"unknown host", Plan{Events: []Event{
			{At: 0, Kind: RogueFlow, Scale: 2, Host: 16, Until: 10},
		}}, "outside [0,16)"},
		{"negative host", Plan{Events: []Event{
			{At: 0, Kind: DeadlineForge, Scale: 0.5, Host: -1, Until: 10},
		}}, "outside [0,16)"},
		{"zero-width window", Plan{Events: []Event{
			{At: 10, Kind: RogueFlow, Scale: 2, Host: 0, Until: 10},
		}}, "zero-width window"},
		{"inverted window", Plan{Events: []Event{
			{At: 10, Kind: RogueFlow, Scale: 2, Host: 0, Until: 5},
		}}, "zero-width window"},
		{"rogue scale below one", Plan{Events: []Event{
			{At: 0, Kind: RogueFlow, Scale: 0.5, Host: 0, Until: 10},
		}}, "must be at least 1"},
		{"forge scale at one", Plan{Events: []Event{
			{At: 0, Kind: DeadlineForge, Scale: 1, Host: 0, Until: 10},
		}}, "out of (0,1)"},
		{"forge scale zero", Plan{Events: []Event{
			{At: 0, Kind: DeadlineForge, Scale: 0, Host: 0, Until: 10},
		}}, "out of (0,1)"},
		{"overlapping rogue windows", Plan{Events: []Event{
			{At: 10, Kind: RogueFlow, Scale: 2, Host: 1, Until: 30},
			{At: 20, Kind: RogueFlow, Scale: 2, Host: 1, Until: 40},
		}}, "overlaps"},
		{"overlap found after normalization", Plan{Events: []Event{
			// Out of plan order: normalized by time the windows are
			// [5, 25) then [8, ...) — an overlap.
			{At: 8, Kind: DeadlineForge, Scale: 0.5, Host: 2, Until: 30},
			{At: 5, Kind: DeadlineForge, Scale: 0.5, Host: 2, Until: 25},
		}}, "overlaps"},
	}
	for _, c := range cases {
		err := c.plan.Validate(4, 16, radix4)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestRandomPlanBehavioural pins the rogue/forge generator: plans are
// deterministic, validate (windows never overlap per host), and respect
// the horizon.
func TestRandomPlanBehavioural(t *testing.T) {
	links := []LinkID{{0, 0}, {1, 1}}
	horizon := 10 * units.Millisecond
	cfg := RandomConfig{Hosts: 16, Rogues: 5, Forges: 3}
	a := RandomPlan(11, links, horizon, cfg)
	b := RandomPlan(11, links, horizon, cfg)
	if len(a.Events) == 0 {
		t.Fatal("no behavioural events generated")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same-seed plans differ in size: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same-seed plans differ at %d: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	if err := a.Validate(4, 16, radix4); err != nil {
		t.Fatalf("random behavioural plan invalid: %v", err)
	}
	if !a.HasBehavioural() {
		t.Fatal("behavioural plan not reported behavioural")
	}
	rogues, forges := 0, 0
	for _, e := range a.Events {
		switch e.Kind {
		case RogueFlow:
			rogues++
			if e.Scale <= 1 {
				t.Fatalf("rogue scale %v not above 1", e.Scale)
			}
		case DeadlineForge:
			forges++
			if e.Scale <= 0 || e.Scale >= 1 {
				t.Fatalf("forge scale %v out of (0,1)", e.Scale)
			}
		default:
			t.Fatalf("unexpected kind in behavioural-only plan: %v", e)
		}
		if e.At >= horizon {
			t.Fatalf("window %v starts past the horizon", e)
		}
		if e.Until <= e.At {
			t.Fatalf("window %v has no width", e)
		}
	}
	if rogues == 0 || forges == 0 {
		t.Fatalf("rogues=%d forges=%d; both kinds must survive the horizon clamp", rogues, forges)
	}
}
