// Package faults implements a deterministic, seed-driven fault-injection
// subsystem for the simulated network.
//
// The paper's architectures assume a lossless, always-up fabric
// (credit-based flow control, §2.2). Real interconnects flap links,
// corrupt packets and lose capacity, so this package models three fault
// processes, all replayable from (plan, seed):
//
//   - Link flaps: timed link-down/link-up events. A down link accepts no
//     new transmissions and every packet in flight on it when it drops is
//     lost. The credits those packets held are restored to the sender
//     (the downstream buffer never sees them), so flow control survives
//     the flap without leaking.
//   - Time-varying derating: timed bandwidth changes, generalising the
//     static Config.DegradedLinks to mid-run capacity loss and recovery.
//   - Bit errors: a per-link bit-error rate corrupts packets in flight.
//     Corruption is detected by the destination NIC's CRC check (see
//     internal/hostif), which drops the packet and triggers the
//     end-to-end recovery machinery.
//
// Fault events address switch output links by (switch, port), matching
// Config.DegradedLinks. A Plan is installed into the simulation engine by
// the network at build time; identical seeds and plans replay identical
// fault traces, keeping chaos runs as reproducible as fault-free ones.
//
// The package also defines the Conservation record: the run-level packet
// accounting that must balance exactly in every run — faulty or not — and
// whose Check method is the simulator's end-to-end "no packet is ever
// lost without being accounted" invariant.
package faults

import (
	"fmt"
	"math"
	"sort"

	"deadlineqos/internal/link"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// LinkID identifies a switch output link, as Config.DegradedLinks does.
// Host injection links are not individually addressable; the DefaultBER
// of a plan covers them. Switch-scoped events (SwitchDown/SwitchUp) set
// Port to -1: they address the whole switch, not one of its links.
type LinkID struct {
	Switch, Port int
}

// SwitchID returns the LinkID form addressing a whole switch (Port -1),
// used by SwitchDown/SwitchUp events.
func SwitchID(sw int) LinkID { return LinkID{Switch: sw, Port: -1} }

// String renders the link id.
func (id LinkID) String() string {
	if id.Port < 0 {
		return fmt.Sprintf("sw%d", id.Switch)
	}
	return fmt.Sprintf("sw%d:p%d", id.Switch, id.Port)
}

// Kind enumerates the fault event types.
type Kind uint8

// Fault event kinds.
const (
	// LinkDown drops the link: in-flight packets are lost (credits
	// restored to the sender) and no new transmission starts until the
	// matching LinkUp.
	LinkDown Kind = iota
	// LinkUp restores a downed link and re-fires the sender's
	// re-arbitration callback.
	LinkUp
	// Derate sets the link bandwidth to Scale x nominal (Scale 1
	// restores full capacity).
	Derate
	// SwitchDown kills a whole switch (Event.Link = SwitchID(sw), Port
	// -1): every link into and out of it drops, its queued and
	// in-crossbar packets are discarded (accounted as DroppedInSwitch),
	// and the route-repair layer recomputes paths around it.
	SwitchDown
	// SwitchUp restores a downed switch and every link attached to it,
	// overriding any earlier single-link LinkDown on those ports.
	SwitchUp
	// PortDown severs one cable bidirectionally: the addressed output
	// link and its reverse direction both drop.
	PortDown
	// PortUp restores a cable downed by PortDown.
	PortUp
	// RogueFlow is a behavioural fault: over the window [At, Until) the
	// host Event.Host babbles — it multiplies its regulated traffic
	// generation by Scale (> 1), stops honouring the eligibility shaper
	// on the flows it overdrives, and resets its deadline virtual clock
	// per message, stamping every packet as freshly urgent instead of
	// chaining from the flow's consumed rate. The NIC policer
	// (internal/police), when enabled, demotes the excess to best
	// effort; unpoliced, the urgent-stamped excess floods the regulated
	// VC and starves honest flows at every EDF arbitration point. Scale
	// exactly 1 is a baseline sentinel: the host is only marked in the
	// innocent/rogue accounting split and behaves normally.
	RogueFlow
	// DeadlineForge is a behavioural fault: over [At, Until) the host
	// Event.Host stamps deadlines tightened by factor Scale (in (0, 1)),
	// claiming more urgency than its reserved BWavg permits. The policer
	// detects the forged stamps against the deadline envelope the BWavg
	// rule defines and demotes them.
	DeadlineForge
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "down"
	case LinkUp:
		return "up"
	case Derate:
		return "derate"
	case SwitchDown:
		return "sw-down"
	case SwitchUp:
		return "sw-up"
	case PortDown:
		return "port-down"
	case PortUp:
		return "port-up"
	case RogueFlow:
		return "rogue-flow"
	case DeadlineForge:
		return "deadline-forge"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// SwitchScoped reports whether the kind addresses a whole switch (Port
// must be -1) rather than a single output link.
func (k Kind) SwitchScoped() bool { return k == SwitchDown || k == SwitchUp }

// Topological reports whether the kind changes reachability and so drives
// the route-repair layer (link flaps do not: the reliability layer covers
// transient loss, and flapped links keep their routes).
func (k Kind) Topological() bool {
	return k == SwitchDown || k == SwitchUp || k == PortDown || k == PortUp
}

// Behavioural reports whether the kind models endpoint misbehaviour (a
// host violating its admission contract) rather than an infrastructure
// fault. Behavioural events address a host over a window, not a link at
// an instant, and are installed by the network on the host's shard.
func (k Kind) Behavioural() bool { return k == RogueFlow || k == DeadlineForge }

// Event is one timed fault of a plan.
type Event struct {
	At   units.Time
	Link LinkID
	Kind Kind
	// Scale is the remaining capacity fraction for Derate events
	// ((0, 1]; ignored by LinkDown/LinkUp). For behavioural kinds it is
	// the misbehaviour factor: the traffic multiplier (≥ 1; exactly 1
	// marks the host in the rogue accounting split without excess
	// traffic) of a RogueFlow, or the deadline-tightening factor (in
	// (0, 1)) of a DeadlineForge.
	Scale float64
	// Host is the misbehaving host of a behavioural event (RogueFlow,
	// DeadlineForge); ignored by the link- and switch-scoped kinds.
	Host int
	// Until ends a behavioural event's window [At, Until); ignored by the
	// instantaneous kinds.
	Until units.Time
}

// String renders the event for traces.
func (e Event) String() string {
	if e.Kind.Behavioural() {
		return fmt.Sprintf("%v host%d %s %.2f until %v", e.At, e.Host, e.Kind, e.Scale, e.Until)
	}
	if e.Kind == Derate {
		return fmt.Sprintf("%v %s %s %.2f", e.At, e.Link, e.Kind, e.Scale)
	}
	return fmt.Sprintf("%v %s %s", e.At, e.Link, e.Kind)
}

// TraceEntry is one executed fault event. Applied is false when the event
// had no effect (e.g. LinkDown on an already-down link), so two runs of
// the same plan produce byte-identical traces including the skips.
type TraceEntry struct {
	Event
	Applied bool
}

// String renders the trace entry.
func (t TraceEntry) String() string {
	if t.Applied {
		return t.Event.String()
	}
	return t.Event.String() + " (no-op)"
}

// Plan is a deterministic fault schedule for one run.
type Plan struct {
	// Seed drives the per-link corruption streams. Independent of the
	// run's traffic seed so the same fault pattern can be replayed
	// against different workloads.
	Seed uint64
	// Events are the timed link faults, in any order; installation sorts
	// them by time (stable, so same-cycle events keep plan order).
	Events []Event
	// BER assigns per-link bit-error rates (probability per bit).
	BER map[LinkID]float64
	// DefaultBER applies to every link of the network — including host
	// injection links — that has no explicit BER entry.
	DefaultBER float64
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Events) == 0 && len(p.BER) == 0 && p.DefaultBER == 0)
}

// HasTopological reports whether the plan contains any reachability-
// changing event (switch or port down/up) — the trigger for the network's
// route-repair layer.
func (p *Plan) HasTopological() bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind.Topological() {
			return true
		}
	}
	return false
}

// HasBehavioural reports whether the plan contains any endpoint-
// misbehaviour event (RogueFlow, DeadlineForge) — the trigger for the
// network's per-host behaviour windows.
func (p *Plan) HasBehavioural() bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind.Behavioural() {
			return true
		}
	}
	return false
}

// Validate rejects malformed plans against a topology described by its
// switch count, host count and per-switch radix.
func (p *Plan) Validate(switches, hosts int, radix func(sw int) int) error {
	if p == nil {
		return nil
	}
	checkLink := func(id LinkID) error {
		if id.Switch < 0 || id.Switch >= switches || id.Port < 0 || id.Port >= radix(id.Switch) {
			return fmt.Errorf("faults: link %v not in topology", id)
		}
		return nil
	}
	for _, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("faults: event %q scheduled before time zero", e)
		}
		switch e.Kind {
		case LinkDown, LinkUp, PortDown, PortUp:
			if err := checkLink(e.Link); err != nil {
				return err
			}
		case Derate:
			if err := checkLink(e.Link); err != nil {
				return err
			}
			if e.Scale <= 0 || e.Scale > 1 {
				return fmt.Errorf("faults: derate scale %v of %q out of (0,1]", e.Scale, e)
			}
		case SwitchDown, SwitchUp:
			if e.Link.Switch < 0 || e.Link.Switch >= switches {
				return fmt.Errorf("faults: switch event %q references switch outside [0,%d)", e, switches)
			}
			if e.Link.Port != -1 {
				return fmt.Errorf("faults: switch event %q must use Port -1 (whole switch), got port %d", e, e.Link.Port)
			}
		case RogueFlow, DeadlineForge:
			if e.Host < 0 || e.Host >= hosts {
				return fmt.Errorf("faults: behavioural event %q references host outside [0,%d)", e, hosts)
			}
			if e.Until <= e.At {
				return fmt.Errorf("faults: behavioural event %q has a zero-width window (Until %v <= At %v)", e, e.Until, e.At)
			}
			// Scale exactly 1 is a sentinel: the host is marked in the
			// innocent/rogue accounting split without emitting any excess
			// traffic, giving experiments a baseline measured over the
			// identical flow population.
			if e.Kind == RogueFlow && e.Scale < 1 {
				return fmt.Errorf("faults: rogue-flow scale %v of %q must be at least 1", e.Scale, e)
			}
			if e.Kind == DeadlineForge && (e.Scale <= 0 || e.Scale >= 1) {
				return fmt.Errorf("faults: deadline-forge scale %v of %q out of (0,1)", e.Scale, e)
			}
		default:
			return fmt.Errorf("faults: unknown event kind %d", e.Kind)
		}
	}
	if err := p.checkSwitchOverlaps(); err != nil {
		return err
	}
	if err := p.checkBehaviouralOverlaps(); err != nil {
		return err
	}
	if p.DefaultBER < 0 || p.DefaultBER >= 1 {
		return fmt.Errorf("faults: default BER %v out of [0,1)", p.DefaultBER)
	}
	for id, ber := range p.BER {
		if err := checkLink(id); err != nil {
			return err
		}
		if ber < 0 || ber >= 1 {
			return fmt.Errorf("faults: BER %v of link %v out of [0,1)", ber, id)
		}
	}
	return nil
}

// checkSwitchOverlaps replays the normalized switch/port event sequence
// and rejects overlapping outages: a SwitchDown while the switch is
// already down (or a SwitchUp while up) would make the expanded per-link
// action sequence — and with it the cross-shard loss predicate —
// ambiguous, so it is a plan error rather than a runtime no-op. The same
// rule applies per (switch, port) to PortDown/PortUp.
func (p *Plan) checkSwitchOverlaps() error {
	swDown := map[int]bool{}
	portDown := map[LinkID]bool{}
	for _, e := range p.Normalized() {
		switch e.Kind {
		case SwitchDown:
			if swDown[e.Link.Switch] {
				return fmt.Errorf("faults: event %q downs switch %d while it is already down", e, e.Link.Switch)
			}
			swDown[e.Link.Switch] = true
		case SwitchUp:
			if !swDown[e.Link.Switch] {
				return fmt.Errorf("faults: event %q restores switch %d while it is already up", e, e.Link.Switch)
			}
			swDown[e.Link.Switch] = false
		case PortDown:
			if portDown[e.Link] {
				return fmt.Errorf("faults: event %q downs port %v while it is already down", e, e.Link)
			}
			portDown[e.Link] = true
		case PortUp:
			if !portDown[e.Link] {
				return fmt.Errorf("faults: event %q restores port %v while it is already up", e, e.Link)
			}
			portDown[e.Link] = false
		}
	}
	return nil
}

// checkBehaviouralOverlaps replays the normalized behavioural events and
// rejects windows that overlap per (host, kind): two concurrent RogueFlow
// windows on one host would make the effective traffic multiplier — and
// with it every policing decision — ambiguous, so it is a plan error.
func (p *Plan) checkBehaviouralOverlaps() error {
	type key struct {
		host int
		kind Kind
	}
	busyUntil := map[key]units.Time{}
	for _, e := range p.Normalized() {
		if !e.Kind.Behavioural() {
			continue
		}
		k := key{e.Host, e.Kind}
		if e.At < busyUntil[k] {
			return fmt.Errorf("faults: behavioural event %q overlaps an earlier %v window on host %d (busy until %v)",
				e, e.Kind, e.Host, busyUntil[k])
		}
		busyUntil[k] = e.Until
	}
	return nil
}

// BEROf returns the bit-error rate the plan assigns to id.
func (p *Plan) BEROf(id LinkID) float64 {
	if p == nil {
		return 0
	}
	if ber, ok := p.BER[id]; ok {
		return ber
	}
	return p.DefaultBER
}

// Normalized returns the plan's events sorted by time (stable, so
// same-cycle events keep plan order) — the exact order Install executes
// them in. The sharded network uses it to give every event a global index
// before splitting the schedule across per-shard injectors.
func (p *Plan) Normalized() []Event {
	if p == nil {
		return nil
	}
	evs := make([]Event, len(p.Events))
	copy(evs, p.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// CorruptionStream derives the deterministic random stream that decides
// packet corruption on link id. Streams are keyed by (plan seed, link),
// so identical plans corrupt identically regardless of event ordering
// elsewhere in the run.
func (p *Plan) CorruptionStream(id LinkID) *xrand.Rand {
	key := uint64(id.Switch)<<20 | uint64(id.Port)<<1 | 1
	return xrand.New(p.Seed ^ 0x5eedfa01).Split(key)
}

// HostCorruptionStream derives the corruption stream for host h's
// injection link. Host links are not individually addressable by LinkID,
// so they only carry the plan's DefaultBER; their stream keys (bit 0
// clear) are disjoint from CorruptionStream's (bit 0 set).
func (p *Plan) HostCorruptionStream(host int) *xrand.Rand {
	return xrand.New(p.Seed ^ 0x5eedfa01).Split(uint64(host) << 1)
}

// Injector schedules a plan's events into a simulation engine and records
// the executed trace.
type Injector struct {
	trace  []TraceEntry
	events uint64
}

// Install schedules every event of the plan. resolve maps a LinkID to the
// live link, returning nil for unwired ports (already rejected by
// Validate when the network built the plan's topology). onEvent, when
// non-nil, observes each executed event.
func (inj *Injector) Install(plan *Plan, eng *sim.Engine, resolve func(LinkID) *link.Link, onEvent func(TraceEntry)) {
	if plan == nil {
		return
	}
	evs := plan.Normalized()
	indexes := make([]int, len(evs))
	for i := range indexes {
		indexes[i] = i
	}
	var wrapped func(int, TraceEntry)
	if onEvent != nil {
		wrapped = func(_ int, entry TraceEntry) { onEvent(entry) }
	}
	inj.InstallEvents(evs, indexes, eng, resolve, wrapped)
}

// InstallEvents schedules an explicit slice of already-normalized events
// (see Plan.Normalized). indexes carries each event's position in the full
// normalized plan and is passed through to onEvent, which lets a sharded
// run install disjoint subsets of one plan on several engines and still
// reassemble the global trace in sequential firing order. len(indexes)
// must equal len(evs).
func (inj *Injector) InstallEvents(evs []Event, indexes []int, eng *sim.Engine, resolve func(LinkID) *link.Link, onEvent func(int, TraceEntry)) {
	if len(evs) != len(indexes) {
		panic(fmt.Sprintf("faults: %d events with %d indexes", len(evs), len(indexes)))
	}
	for i, ev := range evs {
		ev := ev
		idx := indexes[i]
		if ev.Kind.Topological() {
			// Switch/port events expand to many link actions plus buffer
			// drains; the network installs those itself (see
			// network.installFaults), never through the Injector.
			panic(fmt.Sprintf("faults: topological event %q passed to Injector", ev))
		}
		if ev.Kind.Behavioural() {
			// Behavioural events toggle per-host misbehaviour windows on the
			// host's NIC; the network installs those itself on the host's
			// shard, never through the Injector.
			panic(fmt.Sprintf("faults: behavioural event %q passed to Injector", ev))
		}
		eng.At(ev.At, func() {
			l := resolve(ev.Link)
			applied := false
			if l != nil {
				switch ev.Kind {
				case LinkDown:
					applied = l.SetDown(true)
				case LinkUp:
					applied = l.SetDown(false)
				case Derate:
					applied = l.Derate(ev.Scale)
				}
			}
			entry := TraceEntry{Event: ev, Applied: applied}
			inj.events++
			inj.trace = append(inj.trace, entry)
			if onEvent != nil {
				onEvent(idx, entry)
			}
		})
	}
}

// Trace returns the executed fault events so far, in execution order.
func (inj *Injector) Trace() []TraceEntry { return inj.trace }

// Executed returns the number of fault events fired so far.
func (inj *Injector) Executed() uint64 { return inj.events }

// RandomConfig bounds the fault processes RandomPlan draws.
type RandomConfig struct {
	// Flaps is the number of down/up pairs to schedule.
	Flaps int
	// MinDown and MaxDown bound each flap's outage duration.
	MinDown, MaxDown units.Time
	// Derates is the number of derate/restore pairs to schedule.
	Derates int
	// MinScale bounds how far a derate may cut capacity (scale is drawn
	// from [MinScale, 1)).
	MinScale float64
	// BERLinks is how many links receive a random bit-error rate.
	BERLinks int
	// MaxBER bounds the drawn bit-error rates.
	MaxBER float64

	// Switches is the topology's switch count; required when SwitchFaults
	// is nonzero so the draw can address whole switches.
	Switches int
	// SwitchFaults is the number of SwitchDown/SwitchUp outage pairs to
	// schedule. Outages never overlap on the same switch (Validate rejects
	// that), so the generator serialises them per switch.
	SwitchFaults int
	// SwitchMTTF is the mean time between switch failures; outage start
	// times are drawn uniformly in [0, min(MTTF, horizon)) after the
	// switch's previous recovery. Zero means uniform over the horizon.
	SwitchMTTF units.Time
	// SwitchMTTR is the mean outage duration; each outage lasts uniformly
	// in [MTTR/2, 3*MTTR/2). Zero falls back to the flap bounds.
	SwitchMTTR units.Time

	// Hosts is the topology's host count; required when Rogues or Forges
	// is nonzero so the draw can address hosts.
	Hosts int
	// Rogues is the number of RogueFlow windows to schedule: each picks a
	// host and a window (drawn like flap outages, stretched 4x so the
	// overload persists long enough to matter) over which the host
	// multiplies its regulated traffic by RogueFactor. Windows never
	// overlap per host (Validate rejects that), so the generator
	// serialises them per host.
	Rogues int
	// RogueFactor is the traffic multiplier of generated RogueFlow
	// windows (default 4).
	RogueFactor float64
	// Forges is the number of DeadlineForge windows to schedule, drawn
	// like Rogues.
	Forges int
	// ForgeScale is the deadline-tightening factor of generated
	// DeadlineForge windows (default 0.5).
	ForgeScale float64
}

// RandomPlan draws a deterministic random fault plan over the given links
// and horizon: flap and derate schedules plus per-link BERs. The same
// (seed, links, horizon, cfg) always yields the same plan, which makes it
// suitable for fuzzing with reproducible failures.
func RandomPlan(seed uint64, links []LinkID, horizon units.Time, cfg RandomConfig) *Plan {
	rng := xrand.New(seed ^ 0xfa17ed)
	plan := &Plan{Seed: seed}
	if len(links) == 0 || horizon <= 0 {
		return plan
	}
	pick := func() LinkID { return links[rng.Intn(len(links))] }
	minDown, maxDown := cfg.MinDown, cfg.MaxDown
	if minDown <= 0 {
		minDown = horizon / 100
		if minDown <= 0 {
			minDown = 1
		}
	}
	if maxDown < minDown {
		maxDown = minDown
	}
	for i := 0; i < cfg.Flaps; i++ {
		id := pick()
		at := units.Time(rng.Int63n(int64(horizon)))
		dur := units.Time(rng.UniformInt(int64(minDown), int64(maxDown)))
		plan.Events = append(plan.Events,
			Event{At: at, Link: id, Kind: LinkDown},
			Event{At: at + dur, Link: id, Kind: LinkUp})
	}
	minScale := cfg.MinScale
	if minScale <= 0 || minScale > 1 {
		minScale = 0.2
	}
	for i := 0; i < cfg.Derates; i++ {
		id := pick()
		at := units.Time(rng.Int63n(int64(horizon)))
		dur := units.Time(rng.UniformInt(int64(minDown), int64(maxDown)))
		plan.Events = append(plan.Events,
			Event{At: at, Link: id, Kind: Derate, Scale: rng.Uniform(minScale, 1)},
			Event{At: at + dur, Link: id, Kind: Derate, Scale: 1})
	}
	if cfg.SwitchFaults > 0 && cfg.Switches > 0 {
		mttf := cfg.SwitchMTTF
		if mttf <= 0 || mttf > horizon {
			mttf = horizon
		}
		mttr := cfg.SwitchMTTR
		if mttr <= 0 {
			mttr = (minDown + maxDown) / 2
		}
		// Serialise outages per switch so Down/Down never overlaps (a plan
		// error): each new outage starts after the switch's last recovery.
		nextFree := make([]units.Time, cfg.Switches)
		for i := 0; i < cfg.SwitchFaults; i++ {
			sw := rng.Intn(cfg.Switches)
			at := nextFree[sw] + units.Time(rng.Int63n(int64(mttf)))
			lo, hi := mttr/2, mttr+mttr/2
			if lo <= 0 {
				lo = 1
			}
			if hi <= lo {
				hi = lo + 1
			}
			dur := units.Time(rng.UniformInt(int64(lo), int64(hi)))
			if at >= horizon {
				continue // drawn past the run; rng state already advanced
			}
			plan.Events = append(plan.Events,
				Event{At: at, Link: SwitchID(sw), Kind: SwitchDown},
				Event{At: at + dur, Link: SwitchID(sw), Kind: SwitchUp})
			nextFree[sw] = at + dur + 1
		}
	}
	if (cfg.Rogues > 0 || cfg.Forges > 0) && cfg.Hosts > 0 {
		factor := cfg.RogueFactor
		if factor <= 1 {
			factor = 4
		}
		forge := cfg.ForgeScale
		if forge <= 0 || forge >= 1 {
			forge = 0.5
		}
		// Serialise windows per (host, kind) so they never overlap (a plan
		// error): each new window starts after the host's previous one ends.
		draw := func(count int, kind Kind, scale float64, nextFree []units.Time) {
			for i := 0; i < count; i++ {
				h := rng.Intn(cfg.Hosts)
				at := nextFree[h] + units.Time(rng.Int63n(int64(horizon)))
				dur := 4 * units.Time(rng.UniformInt(int64(minDown), int64(maxDown)))
				if at >= horizon {
					continue // drawn past the run; rng state already advanced
				}
				plan.Events = append(plan.Events,
					Event{At: at, Kind: kind, Scale: scale, Host: h, Until: at + dur})
				nextFree[h] = at + dur + 1
			}
		}
		draw(cfg.Rogues, RogueFlow, factor, make([]units.Time, cfg.Hosts))
		draw(cfg.Forges, DeadlineForge, forge, make([]units.Time, cfg.Hosts))
	}
	if cfg.BERLinks > 0 && cfg.MaxBER > 0 {
		plan.BER = make(map[LinkID]float64, cfg.BERLinks)
		for i := 0; i < cfg.BERLinks; i++ {
			// Draw log-uniformly so tiny and harsh BERs both appear.
			exp := rng.Uniform(math.Log(cfg.MaxBER)-6, math.Log(cfg.MaxBER))
			plan.BER[pick()] = math.Exp(exp)
		}
	}
	return plan
}

// Conservation is the run-level packet accounting record. Every transfer
// copy entering the network must end in exactly one terminal state; the
// Check method verifies the balance.
type Conservation struct {
	// Generated counts unique packets created at the sending NICs.
	Generated uint64
	// Retransmissions counts retransmit copies queued by the reliability
	// layer (each creates one additional copy of a unique packet).
	Retransmissions uint64
	// InjectedCopies counts transmissions entering the network,
	// retransmits included.
	InjectedCopies uint64
	// DeliveredUnique counts unique packets handed to the application
	// (first good copy).
	DeliveredUnique uint64
	// ArrivedDup counts duplicate copies dropped by the receiver.
	ArrivedDup uint64
	// ArrivedCorrupt counts corrupted copies dropped by the receiver's
	// CRC check.
	ArrivedCorrupt uint64
	// LostOnLink counts copies lost in flight to link flaps.
	LostOnLink uint64
	// DroppedInSwitch counts copies discarded from a switch's buffers and
	// crossbar when a SwitchDown killed it.
	DroppedInSwitch uint64
	// InNetworkAtStop counts copies still inside the fabric when the run
	// stopped: switch buffers, crossbars in transfer, and link wires.
	InNetworkAtStop uint64
	// StagedAtStop counts copies still queued in sending NICs (never
	// injected, or retransmit copies awaiting injection).
	StagedAtStop uint64
	// EvictedAtNIC counts copies a bounded injection queue discarded
	// before they entered the network (value-drop scheduling policies).
	EvictedAtNIC uint64
	// PolicedDemotions counts packets the NIC policer demoted from the
	// regulated to the best-effort VC for violating their flow's
	// token-bucket envelope (internal/police). Demoted packets still
	// inject and deliver normally, so this is an informational overlay on
	// the balance, not a terminal state.
	PolicedDemotions uint64
	// DoubleDeliveries counts deliveries of an already-delivered unique
	// packet observed by the oracle (Config.CheckInvariants). Must be 0.
	DoubleDeliveries uint64
}

// Add accumulates other into c field-wise. The sharded network keeps one
// Conservation record per shard (each hook increments its own shard's)
// and sums them at stop; every counter is a plain count, so the sum is
// the sequential record.
func (c *Conservation) Add(other Conservation) {
	c.Generated += other.Generated
	c.Retransmissions += other.Retransmissions
	c.InjectedCopies += other.InjectedCopies
	c.DeliveredUnique += other.DeliveredUnique
	c.ArrivedDup += other.ArrivedDup
	c.ArrivedCorrupt += other.ArrivedCorrupt
	c.LostOnLink += other.LostOnLink
	c.DroppedInSwitch += other.DroppedInSwitch
	c.InNetworkAtStop += other.InNetworkAtStop
	c.StagedAtStop += other.StagedAtStop
	c.EvictedAtNIC += other.EvictedAtNIC
	c.PolicedDemotions += other.PolicedDemotions
	c.DoubleDeliveries += other.DoubleDeliveries
}

// Check verifies the conservation invariant: every copy created (unique
// generations plus retransmissions) is delivered exactly once, dropped
// and accounted (duplicate, corrupt, lost to a flap), or still staged or
// in flight at stop — and no unique packet is delivered twice.
func (c Conservation) Check() error {
	created := c.Generated + c.Retransmissions
	accounted := c.DeliveredUnique + c.ArrivedDup + c.ArrivedCorrupt +
		c.LostOnLink + c.DroppedInSwitch + c.InNetworkAtStop + c.StagedAtStop +
		c.EvictedAtNIC
	if created != accounted {
		return fmt.Errorf("faults: conservation violated: created %d (gen %d + retx %d) != accounted %d (delivered %d + dup %d + corrupt %d + lost %d + sw-dropped %d + in-network %d + staged %d + nic-evicted %d)",
			created, c.Generated, c.Retransmissions, accounted,
			c.DeliveredUnique, c.ArrivedDup, c.ArrivedCorrupt,
			c.LostOnLink, c.DroppedInSwitch, c.InNetworkAtStop, c.StagedAtStop,
			c.EvictedAtNIC)
	}
	injected := c.DeliveredUnique + c.ArrivedDup + c.ArrivedCorrupt + c.LostOnLink + c.DroppedInSwitch + c.InNetworkAtStop
	if c.InjectedCopies != injected {
		return fmt.Errorf("faults: injection accounting violated: injected %d != arrived+lost+sw-dropped+in-network %d",
			c.InjectedCopies, injected)
	}
	if c.DeliveredUnique > c.Generated {
		return fmt.Errorf("faults: delivered %d unique packets out of %d generated", c.DeliveredUnique, c.Generated)
	}
	if c.DoubleDeliveries > 0 {
		return fmt.Errorf("faults: %d double deliveries", c.DoubleDeliveries)
	}
	return nil
}

// String renders the record for reports.
func (c Conservation) String() string {
	return fmt.Sprintf("gen=%d retx=%d inj=%d dlvr=%d dup=%d corrupt=%d lost=%d swdrop=%d net=%d staged=%d",
		c.Generated, c.Retransmissions, c.InjectedCopies, c.DeliveredUnique,
		c.ArrivedDup, c.ArrivedCorrupt, c.LostOnLink, c.DroppedInSwitch,
		c.InNetworkAtStop, c.StagedAtStop)
}
