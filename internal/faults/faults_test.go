package faults

import (
	"fmt"
	"strings"
	"testing"

	"deadlineqos/internal/units"
)

// radix4 is a 4-switch, radix-8 toy topology for validation tests.
func radix4(int) int { return 8 }

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error, "" = valid
	}{
		{"empty", Plan{}, ""},
		{"good flap", Plan{Events: []Event{
			{At: 10, Link: LinkID{0, 1}, Kind: LinkDown},
			{At: 20, Link: LinkID{0, 1}, Kind: LinkUp},
		}}, ""},
		{"negative time", Plan{Events: []Event{
			{At: -1, Link: LinkID{0, 0}, Kind: LinkDown},
		}}, "before time zero"},
		{"switch out of range", Plan{Events: []Event{
			{At: 0, Link: LinkID{4, 0}, Kind: LinkDown},
		}}, "not in topology"},
		{"port out of range", Plan{Events: []Event{
			{At: 0, Link: LinkID{0, 8}, Kind: LinkDown},
		}}, "not in topology"},
		{"derate scale zero", Plan{Events: []Event{
			{At: 0, Link: LinkID{0, 0}, Kind: Derate, Scale: 0},
		}}, "out of (0,1]"},
		{"derate scale above one", Plan{Events: []Event{
			{At: 0, Link: LinkID{0, 0}, Kind: Derate, Scale: 1.5},
		}}, "out of (0,1]"},
		{"unknown kind", Plan{Events: []Event{
			{At: 0, Link: LinkID{0, 0}, Kind: Kind(9)},
		}}, "unknown event kind"},
		{"negative default BER", Plan{DefaultBER: -1e-9}, "out of [0,1)"},
		{"BER of one", Plan{BER: map[LinkID]float64{{1, 2}: 1}}, "out of [0,1)"},
		{"BER link out of range", Plan{BER: map[LinkID]float64{{9, 0}: 1e-9}}, "not in topology"},
	}
	for _, c := range cases {
		err := c.plan.Validate(4, 16, radix4)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(4, 16, radix4); err != nil {
		t.Errorf("nil plan: %v", err)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	links := []LinkID{{0, 0}, {0, 1}, {1, 3}, {2, 7}}
	cfg := RandomConfig{Flaps: 5, Derates: 3, BERLinks: 3, MaxBER: 1e-5}
	a := RandomPlan(99, links, 10*units.Millisecond, cfg)
	b := RandomPlan(99, links, 10*units.Millisecond, cfg)
	if fmt.Sprint(a.Events) != fmt.Sprint(b.Events) {
		t.Fatalf("same-seed plans differ:\n%v\n%v", a.Events, b.Events)
	}
	if fmt.Sprint(a.BER) != fmt.Sprint(b.BER) {
		t.Fatalf("same-seed BER maps differ:\n%v\n%v", a.BER, b.BER)
	}
	c := RandomPlan(100, links, 10*units.Millisecond, cfg)
	if fmt.Sprint(a.Events) == fmt.Sprint(c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
	if err := a.Validate(4, 16, radix4); err != nil {
		t.Fatalf("random plan invalid: %v", err)
	}
	if len(a.Events) != 2*(cfg.Flaps+cfg.Derates) {
		t.Fatalf("%d events, want %d", len(a.Events), 2*(cfg.Flaps+cfg.Derates))
	}
	for _, ber := range a.BER {
		if ber <= 0 || ber > cfg.MaxBER {
			t.Fatalf("BER %v out of (0, %v]", ber, cfg.MaxBER)
		}
	}
}

func TestCorruptionStreamsIndependent(t *testing.T) {
	p := &Plan{Seed: 5}
	a := p.CorruptionStream(LinkID{0, 0})
	b := p.CorruptionStream(LinkID{0, 1})
	h := p.HostCorruptionStream(0)
	same := 0
	for i := 0; i < 64; i++ {
		av, bv, hv := a.Float64(), b.Float64(), h.Float64()
		if av == bv || av == hv {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 draws collided across streams", same)
	}
	// Replaying the same stream must reproduce it exactly.
	x, y := p.CorruptionStream(LinkID{2, 3}), p.CorruptionStream(LinkID{2, 3})
	for i := 0; i < 64; i++ {
		if x.Float64() != y.Float64() {
			t.Fatal("same-key corruption streams diverged")
		}
	}
}

func TestConservationCheck(t *testing.T) {
	good := Conservation{
		Generated: 100, Retransmissions: 10, InjectedCopies: 95,
		DeliveredUnique: 80, ArrivedDup: 3, ArrivedCorrupt: 5,
		LostOnLink: 2, InNetworkAtStop: 5, StagedAtStop: 15,
	}
	if err := good.Check(); err != nil {
		t.Fatalf("balanced record rejected: %v", err)
	}

	leak := good
	leak.DeliveredUnique-- // one packet vanished
	if err := leak.Check(); err == nil || !strings.Contains(err.Error(), "conservation violated") {
		t.Fatalf("lost packet not detected: %v", err)
	}

	inj := good
	inj.InjectedCopies++ // injection books don't balance
	if err := inj.Check(); err == nil || !strings.Contains(err.Error(), "injection accounting") {
		t.Fatalf("injection imbalance not detected: %v", err)
	}

	dbl := good
	dbl.DoubleDeliveries = 1
	if err := dbl.Check(); err == nil || !strings.Contains(err.Error(), "double deliveries") {
		t.Fatalf("double delivery not detected: %v", err)
	}

	over := Conservation{Generated: 1, DeliveredUnique: 2, InjectedCopies: 2, Retransmissions: 1}
	if err := over.Check(); err == nil {
		t.Fatal("delivered > generated not detected")
	}

	var zero Conservation
	if err := zero.Check(); err != nil {
		t.Fatalf("zero record rejected: %v", err)
	}
}
