package coflow

import (
	"strings"
	"testing"

	"deadlineqos/internal/admission"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

func testDeps(t *testing.T) Deps {
	t.Helper()
	topo, err := topology.NewFoldedClos(4, 4, 4) // 16 hosts
	if err != nil {
		t.Fatal(err)
	}
	adm, err := admission.New(topo, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return Deps{
		Hosts:  topo.Hosts(),
		MTU:    2 * units.Kilobyte,
		LinkBW: 1.0,
		Adm:    adm,
		Topo:   topo,
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Rounds: 4, Chunk: 8 * units.Kilobyte, Target: units.Millisecond, Weight: 1}
	cases := []struct {
		name  string
		hosts int
		mod   func(*Config)
		want  string // substring of the error; "" = valid
	}{
		{"valid", 16, func(*Config) {}, ""},
		{"two hosts", 2, func(*Config) {}, ""},
		{"one host", 1, func(*Config) {}, "at least 2 hosts"},
		{"negative rounds", 16, func(c *Config) { c.Rounds = -2 }, "negative rounds"},
		{"negative chunk", 16, func(c *Config) { c.Chunk = -1 }, "negative chunk"},
		{"negative target", 16, func(c *Config) { c.Target = -1 }, "negative target"},
		{"negative start", 16, func(c *Config) { c.StartAt = -1 }, "negative start"},
		{"negative weight", 16, func(c *Config) { c.Weight = -0.5 }, "negative value weight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := good
			tc.mod(&c)
			err := c.Validate(tc.hosts)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults(16, 2*units.Kilobyte, 1.0)
	if c.Rounds != 15 {
		t.Errorf("default rounds %d, want hosts-1", c.Rounds)
	}
	if c.Chunk != 16*units.Kilobyte {
		t.Errorf("default chunk %v", c.Chunk)
	}
	if c.Weight != 1 {
		t.Errorf("default weight %v", c.Weight)
	}
	if c.Target <= 0 {
		t.Errorf("default target %v", c.Target)
	}
	// Explicit fields survive.
	c2 := Config{Rounds: 3, Chunk: units.Kilobyte, Target: units.Millisecond, Weight: 2.5}.WithDefaults(16, 2*units.Kilobyte, 1.0)
	if c2.Rounds != 3 || c2.Chunk != units.Kilobyte || c2.Target != units.Millisecond || c2.Weight != 2.5 {
		t.Errorf("explicit config rewritten: %+v", c2)
	}
}

func TestWireBytes(t *testing.T) {
	mtu := units.Size(2 * units.Kilobyte)
	maxPayload := mtu - packet.HeaderSize
	// One full packet exactly.
	if got := wireBytes(maxPayload, mtu); got != mtu {
		t.Errorf("single-packet chunk: %v, want %v", got, mtu)
	}
	// One byte over: a second header.
	if got := wireBytes(maxPayload+1, mtu); got != maxPayload+1+2*packet.HeaderSize {
		t.Errorf("two-packet chunk: %v", got)
	}
}

func TestSigmaAdmitsAllOnIdleFabric(t *testing.T) {
	deps := testDeps(t)
	m, err := New(Config{Rounds: 8, Chunk: 8 * units.Kilobyte}, deps)
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range m.AdmittedRounds() {
		if !ok {
			t.Fatalf("round %d rejected on an idle fabric", r)
		}
	}
	// The admitted sustained rate is reserved through the CAC per host.
	for h := 0; h < deps.Hosts; h++ {
		if deps.Adm.HostReserved(h) <= 0 {
			t.Fatalf("host %d has no reservation after admission", h)
		}
	}
	// Deadlines ascend.
	for r := 1; r < 8; r++ {
		if m.Deadline(r) <= m.Deadline(r-1) {
			t.Fatalf("deadline %d (%v) not after %d (%v)", r, m.Deadline(r), r-1, m.Deadline(r-1))
		}
	}
}

func TestSigmaRejectsAllOnImpossibleTarget(t *testing.T) {
	deps := testDeps(t)
	// 8 rounds inside 8 ns: no link can carry a chunk per nanosecond.
	m, err := New(Config{Rounds: 8, Chunk: 8 * units.Kilobyte, Target: 8}, deps)
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range m.AdmittedRounds() {
		if ok {
			t.Fatalf("round %d admitted under an impossible target", r)
		}
	}
	for h := 0; h < deps.Hosts; h++ {
		if got := deps.Adm.HostReserved(h); got != 0 {
			t.Fatalf("host %d reserved %v despite total rejection", h, got)
		}
	}
	// Rejected rounds still run, demoted to best-effort.
	res := m.BuildResults()
	if res.Rejected != 8 || res.Admitted != 0 {
		t.Fatalf("split %d/%d, want 0/8", res.Admitted, res.Rejected)
	}
}

func TestFlowRecords(t *testing.T) {
	for _, aware := range []bool{false, true} {
		deps := testDeps(t)
		deps.CoflowDeadlines = aware
		m, err := New(Config{Rounds: 4, Weight: 2}, deps)
		if err != nil {
			t.Fatal(err)
		}
		for h := 0; h < deps.Hosts; h++ {
			fs := m.FlowsFor(h)
			if len(fs) != 2 {
				t.Fatalf("host %d has %d flows, want 2", h, len(fs))
			}
			adm, rej := fs[0], fs[1]
			if adm.ID != AdmittedBase+packet.FlowID(h) || rej.ID != RejectedBase+packet.FlowID(h) {
				t.Fatalf("host %d flow ids %v/%v", h, adm.ID, rej.ID)
			}
			if adm.Class != packet.Multimedia || rej.Class != packet.BestEffort {
				t.Fatalf("host %d classes %v/%v", h, adm.Class, rej.Class)
			}
			if adm.Dst != (h+1)%deps.Hosts || rej.Dst != (h+1)%deps.Hosts {
				t.Fatalf("host %d not a ring: dst %d/%d", h, adm.Dst, rej.Dst)
			}
			if aware && adm.Mode != hostif.Absolute {
				t.Fatalf("coflow-aware admitted flow mode %v, want Absolute", adm.Mode)
			}
			if !aware && adm.Mode != hostif.ByBandwidth {
				t.Fatalf("default admitted flow mode %v, want ByBandwidth", adm.Mode)
			}
			if rej.Mode != hostif.ByBandwidth {
				t.Fatalf("rejected flow mode %v", rej.Mode)
			}
			if adm.Value != 2 || rej.Value != 2 {
				t.Fatalf("value densities %v/%v, want the configured weight", adm.Value, rej.Value)
			}
			if adm.BW <= 0 || rej.BW <= 0 {
				t.Fatalf("non-positive flow rates %v/%v", adm.BW, rej.BW)
			}
		}
	}
}

func TestMissRate(t *testing.T) {
	r := Results{Coflows: 8, DeadlineMet: 6}
	if got := r.MissRate(); got != 0.25 {
		t.Errorf("miss rate %v, want 0.25", got)
	}
	empty := Results{}
	if got := empty.MissRate(); got != 0 {
		t.Errorf("empty miss rate %v", got)
	}
}
