// Package coflow groups the flows of a collective transfer under shared
// coflow-level deadlines, the abstraction the per-packet deadline model of
// the paper cannot express: a collective round is only as done as its last
// member, so every packet of the round should carry the ROUND's completion
// deadline, and a round that cannot finish by its deadline is worth more
// rejected up front than half-delivered late (DCoflow, arXiv 2205.01229).
//
// The workload is the ring collective of internal/collective, generalised
// to run shard-safely: N hosts, Rounds rounds, in round r every host h
// sends one Chunk to (h+1) mod N, and h may start round r+1 only after
// receiving round r. Round r is one coflow of N member transfers with
// deadline StartAt + (r+1)·Target/Rounds.
//
// At build time the manager runs a DCoflow-style σ-order admission pass
// over the session CAC's ledger: coflows in deadline order, each admitted
// iff on every link its members cross the cumulative admitted volume still
// fits the link's uncommitted capacity × time-to-deadline. Admitted rounds
// travel regulated (their sustained rate is reserved through the CAC along
// the members' routes); rejected rounds still run, demoted to best-effort,
// where a value-aware policy may shed them first. Under a CoflowAware
// scheduling policy (policy.CoflowEDF) every packet of an admitted round
// is stamped with the round's absolute deadline; under any other policy
// the same traffic gets ordinary virtual-clock deadlines at the reserved
// rate, which is exactly the per-packet-EDF baseline E8 compares against.
//
// Shard-safety: all mutable ring state is keyed by the receiving host, and
// every transition happens on that host's shard — the delivery hook runs
// on the destination's shard, and the ring's "receive round r, submit
// round r+1" rule makes the receiver also the next submitter. No
// cross-shard mutation exists, so results are byte-identical at any shard
// count (unlike internal/collective's tracer-based driver, which is
// restricted to sequential runs).
package coflow

import (
	"fmt"

	"deadlineqos/internal/admission"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// Flow-id ranges of the coflow driver, disjoint from the static traffic
// flows (small integers), internal/collective (1<<30) and the session
// plane (0x4000_0000 and up).
const (
	// AdmittedBase + h is host h's regulated coflow flow.
	AdmittedBase packet.FlowID = 0x2000_0000
	// RejectedBase + h is host h's best-effort (rejected-round) flow.
	RejectedBase packet.FlowID = 0x2100_0000
)

const (
	kindAdmitted = 0
	kindRejected = 1
)

// Config parameterises the ring-collective coflow workload.
type Config struct {
	// Rounds is the number of collective rounds (= coflows). 0 selects
	// hosts−1, a full ring all-gather.
	Rounds int
	// Chunk is the per-member payload per round (0 selects 16 KB).
	Chunk units.Size
	// Target is the completion target for the whole collective; round r's
	// deadline is StartAt + (r+1)·Target/Rounds. 0 derives a loose default
	// from the chunk serialisation time.
	Target units.Time
	// StartAt is the oracle time round 0 is submitted at every host.
	StartAt units.Time
	// Weight is the value density stamped on coflow packets (0 selects 1),
	// what a value-aware dropping policy weighs rejected rounds by.
	Weight float64
}

// WithDefaults fills zero fields for a ring over the given host count and
// fabric parameters.
func (c Config) WithDefaults(hosts int, mtu units.Size, linkBW units.Bandwidth) Config {
	if c.Rounds == 0 {
		c.Rounds = hosts - 1
	}
	if c.Chunk == 0 {
		c.Chunk = 16 * units.Kilobyte
	}
	if c.Weight == 0 {
		c.Weight = 1
	}
	if c.Target == 0 {
		// Eight chunk times per round: loose enough to admit everything on
		// an idle fabric, tight enough that deadlines mean something.
		c.Target = units.Time(c.Rounds) * 8 * linkBW.TxTime(wireBytes(c.Chunk, mtu))
	}
	return c
}

// Validate rejects configurations that would wire a degenerate ring.
func (c Config) Validate(hosts int) error {
	if hosts < 2 {
		return fmt.Errorf("coflow: ring needs at least 2 hosts, have %d", hosts)
	}
	if c.Rounds < 0 {
		return fmt.Errorf("coflow: negative rounds %d", c.Rounds)
	}
	if c.Chunk < 0 {
		return fmt.Errorf("coflow: negative chunk size %v", c.Chunk)
	}
	if c.Target < 0 {
		return fmt.Errorf("coflow: negative target %v", c.Target)
	}
	if c.StartAt < 0 {
		return fmt.Errorf("coflow: negative start time %v", c.StartAt)
	}
	if c.Weight < 0 {
		return fmt.Errorf("coflow: negative value weight %v", c.Weight)
	}
	return nil
}

// wireBytes returns the on-wire volume of one chunk after MTU segmentation
// (payload plus per-packet headers).
func wireBytes(chunk, mtu units.Size) units.Size {
	maxPayload := mtu - packet.HeaderSize
	parts := (chunk + maxPayload - 1) / maxPayload
	return chunk + parts*packet.HeaderSize
}

// Host is the slice of the host NIC the manager drives (*hostif.Host
// satisfies it).
type Host interface {
	SubmitMessage(packet.FlowID, units.Size)
	Flow(packet.FlowID) *hostif.Flow
}

// Deps are the network-provided dependencies. The manager deliberately
// does not import the network package: the network wires these in.
type Deps struct {
	Hosts  int
	MTU    units.Size
	LinkBW units.Bandwidth
	// Adm is the session CAC the σ-pass reads capacity from and reserves
	// admitted volume through.
	Adm  *admission.Controller
	Topo topology.Topology
	// Host resolves a host index to its NIC.
	Host func(int) Host
	// CoflowDeadlines mirrors policy.IsCoflowAware: when set, admitted
	// rounds are stamped with the round's absolute deadline.
	CoflowDeadlines bool
}

// hostState is the ring state of one host AS RECEIVER (and therefore as
// the submitter of the following round). Only this host's shard touches
// it.
type hostState struct {
	got       [2]int // delivered packets per kind
	completed [2]int // fully received chunks per kind
	next      int    // next round this host will submit
	done      []bool // rounds fully received at this host
}

// Manager owns one ring-collective coflow workload: the admission verdict,
// the per-host flows, and the per-shard runtime state.
type Manager struct {
	cfg   Config
	deps  Deps
	n     int
	parts int // packets per chunk

	deadlines []units.Time    // per-round completion deadline (oracle time)
	admitted  []bool          // σ-pass verdict per round
	admRate   units.Bandwidth // sustained rate reserved per member edge
	roundsOf  [2][]int        // round indices per kind, ascending
	routes    [][]int         // member route per source host

	admFlows []*hostif.Flow
	rejFlows []*hostif.Flow

	host   []hostState
	doneAt []units.Time // [round*n + dst]: member completion (0 = pending)
}

// New builds the manager: routes every member, runs the σ-order admission
// pass against the CAC's current ledger, reserves the admitted volume, and
// prepares (but does not register) the per-host flow records.
func New(cfg Config, deps Deps) (*Manager, error) {
	cfg = cfg.WithDefaults(deps.Hosts, deps.MTU, deps.LinkBW)
	if err := cfg.Validate(deps.Hosts); err != nil {
		return nil, err
	}
	if cfg.Rounds == 0 {
		return nil, fmt.Errorf("coflow: zero rounds after defaults (hosts %d)", deps.Hosts)
	}
	maxPayload := deps.MTU - packet.HeaderSize
	if maxPayload <= 0 {
		return nil, fmt.Errorf("coflow: MTU %v leaves no payload", deps.MTU)
	}
	n := deps.Hosts
	m := &Manager{
		cfg:   cfg,
		deps:  deps,
		n:     n,
		parts: int((cfg.Chunk + maxPayload - 1) / maxPayload),
		host:  make([]hostState, n),
	}
	perRound := cfg.Target / units.Time(cfg.Rounds)
	if perRound <= 0 {
		return nil, fmt.Errorf("coflow: target %v spread over %d rounds leaves no per-round budget", cfg.Target, cfg.Rounds)
	}
	m.deadlines = make([]units.Time, cfg.Rounds)
	for r := 0; r < cfg.Rounds; r++ {
		m.deadlines[r] = cfg.StartAt + units.Time(r+1)*perRound
	}
	m.routes = make([][]int, n)
	for h := 0; h < n; h++ {
		m.routes[h] = deps.Adm.RouteBestEffort(h, (h+1)%n, uint64(AdmittedBase)+uint64(h))
	}
	m.sigmaAdmit()
	m.buildFlows()
	m.doneAt = make([]units.Time, cfg.Rounds*n)
	for h := range m.host {
		m.host[h].done = make([]bool, cfg.Rounds)
	}
	return m, nil
}

// sigmaAdmit is the DCoflow-style σ-order pass: coflows in deadline order
// (ring rounds already are), each admitted iff every link its members
// cross can carry the cumulative admitted volume before the coflow's
// deadline, against the capacity the CAC has not already committed.
// Rejection is permanent and frees the capacity for later (larger-slack)
// rounds — the "reject early, run best-effort" rule.
func (m *Manager) sigmaAdmit() {
	wire := wireBytes(m.cfg.Chunk, m.deps.MTU)

	// Per-link availability (bytes/cycle) and member count. Fabric and
	// ejection links come from the routes' hop expansion; each member also
	// crosses its source's injection cable, which the CAC ledgers
	// separately.
	type edge struct{ sw, port int }
	avail := make(map[edge]float64)
	members := make(map[edge]int)
	for h := 0; h < m.n; h++ {
		for _, hop := range topology.RouteHops(m.deps.Topo, h, m.routes[h]) {
			e := edge{hop.Switch, hop.OutPort}
			members[e]++
			if _, ok := avail[e]; !ok {
				avail[e] = float64(m.deps.Adm.LinkLimit(hop.Switch, hop.OutPort) - m.deps.Adm.Reserved(hop.Switch, hop.OutPort))
			}
		}
	}
	injAvail := make([]float64, m.n)
	for h := 0; h < m.n; h++ {
		injAvail[h] = m.deps.Adm.MaxUtil()*float64(m.deps.LinkBW) - float64(m.deps.Adm.HostReserved(h))
	}

	m.admitted = make([]bool, m.cfg.Rounds)
	cum := 0.0 // admitted wire bytes per member so far (identical on every edge of one member)
	for r := 0; r < m.cfg.Rounds; r++ {
		horizon := float64(m.deadlines[r] - m.cfg.StartAt)
		need := cum + float64(wire)
		ok := true
		for e, cnt := range members {
			if need*float64(cnt) > avail[e]*horizon {
				ok = false
				break
			}
		}
		if ok {
			for h := 0; h < m.n && ok; h++ {
				ok = need <= injAvail[h]*horizon
			}
		}
		if ok {
			m.admitted[r] = true
			cum = need
			m.roundsOf[kindAdmitted] = append(m.roundsOf[kindAdmitted], r)
		} else {
			m.roundsOf[kindRejected] = append(m.roundsOf[kindRejected], r)
		}
	}

	// Reserve the admitted volume through the CAC as a sustained rate per
	// member edge, so later admissions (sessions, repairs) see it. The
	// σ-pass above already proved feasibility, hence Restore.
	if nAdm := len(m.roundsOf[kindAdmitted]); nAdm > 0 {
		last := m.roundsOf[kindAdmitted][nAdm-1]
		rate := units.Bandwidth(cum / float64(m.deadlines[last]-m.cfg.StartAt))
		if rate > 0 {
			for h := 0; h < m.n; h++ {
				m.deps.Adm.Restore(h, m.routes[h], rate)
			}
		}
		m.admRate = rate
	}
}

// buildFlows prepares the two per-host flow records. The admitted flow is
// regulated (Multimedia class) at the reserved rate; the rejected flow is
// best-effort. Both carry the configured value density so value-aware
// dropping sees the collective's worth.
func (m *Manager) buildFlows() {
	m.admFlows = make([]*hostif.Flow, m.n)
	m.rejFlows = make([]*hostif.Flow, m.n)
	wire := wireBytes(m.cfg.Chunk, m.deps.MTU)
	perRound := m.cfg.Target / units.Time(m.cfg.Rounds)
	beRate := units.Bandwidth(float64(wire) / float64(perRound))
	admRate := m.admRate
	if admRate <= 0 {
		admRate = beRate // unused unless a round is admitted; keep positive
	}
	for h := 0; h < m.n; h++ {
		dst := (h + 1) % m.n
		// Admitted rounds ride a σ-pass reservation of admRate, so the
		// ingress policer holds them to it; rejected rounds are unreserved
		// best effort and stay unpoliced.
		m.admFlows[h] = &hostif.Flow{
			ID: AdmittedBase + packet.FlowID(h), Class: packet.Multimedia,
			Src: h, Dst: dst, Route: m.routes[h],
			Mode: hostif.ByBandwidth, BW: admRate, Value: m.cfg.Weight,
			Policed: true,
		}
		if m.deps.CoflowDeadlines {
			m.admFlows[h].Mode = hostif.Absolute
		}
		m.rejFlows[h] = &hostif.Flow{
			ID: RejectedBase + packet.FlowID(h), Class: packet.BestEffort,
			Src: h, Dst: dst, Route: m.routes[h],
			Mode: hostif.ByBandwidth, BW: beRate, Value: m.cfg.Weight,
		}
	}
}

// FlowsFor returns the flow records to register at host h.
func (m *Manager) FlowsFor(h int) []*hostif.Flow {
	return []*hostif.Flow{m.admFlows[h], m.rejFlows[h]}
}

// StartAt returns the oracle time round 0 must be submitted.
func (m *Manager) StartAt() units.Time { return m.cfg.StartAt }

// StartHost submits host h's round-0 chunk. The network schedules it at
// StartAt on h's shard.
func (m *Manager) StartHost(h int) {
	m.submitRound(h, 0)
	m.host[h].next = 1
}

// flowOf resolves a delivered packet's flow id to (kind, member source),
// or ok=false for non-coflow traffic.
func (m *Manager) flowOf(id packet.FlowID) (kind, src int, ok bool) {
	switch {
	case id >= AdmittedBase && id < AdmittedBase+packet.FlowID(m.n):
		return kindAdmitted, int(id - AdmittedBase), true
	case id >= RejectedBase && id < RejectedBase+packet.FlowID(m.n):
		return kindRejected, int(id - RejectedBase), true
	}
	return 0, 0, false
}

// OnDelivered advances the ring on a packet delivery at its destination.
// It runs inside the destination host's delivery hook, i.e. on that host's
// shard — the only shard that ever touches this host's state, which is
// what keeps the driver byte-identical at any shard count.
//
// Chunk completion is counted, not sequenced: after k·parts deliveries on
// one flow, k chunks arrived, and submissions on a flow are in round order
// by the ring's gating rule, so the k-th completed chunk is the k-th round
// of that flow's kind. (Under faults, retransmissions may interleave parts
// of adjacent rounds, which can time a completion one packet early; counts
// and determinism are unaffected.)
func (m *Manager) OnDelivered(p *packet.Packet, now units.Time) {
	kind, _, ok := m.flowOf(p.Flow)
	if !ok {
		return
	}
	d := p.Dst
	st := &m.host[d]
	st.got[kind]++
	if st.got[kind]%m.parts != 0 {
		return
	}
	i := st.completed[kind]
	st.completed[kind]++
	if i >= len(m.roundsOf[kind]) {
		return
	}
	r := m.roundsOf[kind][i]
	m.doneAt[r*m.n+d] = now
	st.done[r] = true
	// The ring's frontier rule: submit every round whose predecessor round
	// has now fully arrived here.
	for st.next < m.cfg.Rounds && st.done[st.next-1] {
		m.submitRound(d, st.next)
		st.next++
	}
}

// submitRound submits host h's chunk of round r, on h's shard.
func (m *Manager) submitRound(h, r int) {
	id := RejectedBase + packet.FlowID(h)
	if m.admitted[r] {
		id = AdmittedBase + packet.FlowID(h)
		if m.deps.CoflowDeadlines {
			// The round's shared absolute deadline, rewritten before the
			// synchronous SubmitMessage below stamps the packets.
			m.deps.Host(h).Flow(id).AbsDeadline = m.deadlines[r]
		}
	}
	m.deps.Host(h).SubmitMessage(id, m.cfg.Chunk)
}

// Results summarises the collective after the run. Built once, post-run,
// from the merged per-host completion slots.
type Results struct {
	// Coflows is the number of rounds; Admitted/Rejected the σ-pass split.
	Coflows  int `json:"coflows"`
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	// Completed counts rounds every member delivered before the run
	// stopped; DeadlineMet those that completed by their deadline.
	Completed   int `json:"completed"`
	DeadlineMet int `json:"deadline_met"`
	// AdmittedCompleted/AdmittedMet restrict the two counts to admitted
	// rounds — the quality of the σ-pass's promises.
	AdmittedCompleted int `json:"admitted_completed"`
	AdmittedMet       int `json:"admitted_met"`
	// AllDone reports whether every round completed; CompletionTime is
	// the last member delivery minus StartAt (only meaningful when
	// AllDone).
	AllDone        bool       `json:"all_done"`
	CompletionTime units.Time `json:"completion_time_ns"`
	// MaxLateness is the worst doneAt − deadline over completed rounds
	// (negative = every completed round was early).
	MaxLateness units.Time `json:"max_lateness_ns"`
}

// MissRate returns the fraction of coflows that did not meet their
// deadline (incomplete rounds count as missed).
func (r *Results) MissRate() float64 {
	if r.Coflows == 0 {
		return 0
	}
	return float64(r.Coflows-r.DeadlineMet) / float64(r.Coflows)
}

// BuildResults folds the per-host completion slots into the run summary.
// Call only after every shard has stopped.
func (m *Manager) BuildResults() *Results {
	res := &Results{
		Coflows:  m.cfg.Rounds,
		Admitted: len(m.roundsOf[kindAdmitted]),
		Rejected: len(m.roundsOf[kindRejected]),
	}
	res.MaxLateness = -1 << 62
	var lastDone units.Time
	allDone := true
	for r := 0; r < m.cfg.Rounds; r++ {
		var doneAt units.Time
		complete := true
		for d := 0; d < m.n; d++ {
			t := m.doneAt[r*m.n+d]
			if t == 0 {
				complete = false
				break
			}
			if t > doneAt {
				doneAt = t
			}
		}
		if !complete {
			allDone = false
			continue
		}
		res.Completed++
		if m.admitted[r] {
			res.AdmittedCompleted++
		}
		if late := doneAt - m.deadlines[r]; late > res.MaxLateness {
			res.MaxLateness = late
		}
		if doneAt <= m.deadlines[r] {
			res.DeadlineMet++
			if m.admitted[r] {
				res.AdmittedMet++
			}
		}
		if doneAt > lastDone {
			lastDone = doneAt
		}
	}
	res.AllDone = allDone
	if allDone {
		res.CompletionTime = lastDone - m.cfg.StartAt
	}
	if res.Completed == 0 {
		res.MaxLateness = 0
	}
	return res
}

// AdmittedRounds returns the σ-pass verdict per round (read-only view for
// tests and reports).
func (m *Manager) AdmittedRounds() []bool { return m.admitted }

// Deadline returns round r's completion deadline.
func (m *Manager) Deadline(r int) units.Time { return m.deadlines[r] }
