package policy

import (
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/pqueue"
	"deadlineqos/internal/units"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"", "default", true},
		{"default", "default", true},
		{"coflow-edf", "coflow-edf", true},
		{"value-drop", "value-drop", true},
		{"value-drop-tail", "value-drop-tail", true},
		{"nonsense", "", false},
	}
	for _, tc := range cases {
		p, err := Parse(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("Parse(%q) error = %v", tc.in, err)
		}
		if tc.ok && p.Name() != tc.want {
			t.Fatalf("Parse(%q).Name() = %q, want %q", tc.in, p.Name(), tc.want)
		}
	}
	for _, name := range Names() {
		if _, err := Parse(name); err != nil {
			t.Fatalf("listed policy %q does not parse: %v", name, err)
		}
	}
}

func TestCoflowAwareness(t *testing.T) {
	if IsCoflowAware(Default()) {
		t.Error("default policy claims coflow awareness")
	}
	if !IsCoflowAware(CoflowEDF()) {
		t.Error("coflow-edf policy is not coflow aware")
	}
	if IsCoflowAware(ValueDrop(0, false)) {
		t.Error("value-drop policy claims coflow awareness")
	}
	if IsCoflowAware(nil) {
		t.Error("nil policy claims coflow awareness")
	}
}

func TestDefaultHostQueues(t *testing.T) {
	// Deadline-aware architectures stage in EDF heaps, deadline-blind ones
	// in FIFOs — exactly the seed NIC's wiring.
	for vc := 0; vc < packet.NumVCs; vc++ {
		q := Default().NewHostQueue(arch.Advanced2VC, packet.VC(vc))
		if _, ok := q.(*pqueue.DeadlineHeap); !ok {
			t.Fatalf("Advanced2VC VC %d staged in %T, want heap", vc, q)
		}
		q = Default().NewHostQueue(arch.Traditional2VC, packet.VC(vc))
		if _, ok := q.(*pqueue.Fifo); !ok {
			t.Fatalf("Traditional2VC VC %d staged in %T, want FIFO", vc, q)
		}
	}
}

func TestValueDropHostQueues(t *testing.T) {
	// Only the best-effort VC gets the bounded queue; regulated VCs keep
	// the default staging.
	pol := ValueDrop(0, false)
	for vc := 0; vc < packet.NumVCs; vc++ {
		q := pol.NewHostQueue(arch.Advanced2VC, packet.VC(vc))
		_, bounded := q.(*pqueue.DropQueue)
		wantBounded := vc < arch.Advanced2VC.VCs() && packet.VC(vc) >= arch.Advanced2VC.VCFor(packet.BestEffort)
		if bounded != wantBounded {
			t.Fatalf("Advanced2VC VC %d: bounded=%v, want %v (%T)", vc, bounded, wantBounded, q)
		}
		if bounded && q.Capacity() != DefaultDropBound {
			t.Fatalf("zero bound resolved to %v, want %v", q.Capacity(), DefaultDropBound)
		}
	}
	if q := ValueDrop(4*units.Kilobyte, true).NewHostQueue(arch.Advanced2VC, arch.Advanced2VC.VCFor(packet.BestEffort)); q.Capacity() != 4*units.Kilobyte {
		t.Fatalf("explicit bound ignored: %v", q.Capacity())
	}
}

func TestPickInjectMatchesSeedOrder(t *testing.T) {
	// The default policy injects from the lowest-numbered VC whose head
	// the link accepts — the seed NIC's loop.
	pol := Default()
	var ready [packet.NumVCs]pqueue.Buffer
	for vc := range ready {
		ready[vc] = pol.NewHostQueue(arch.Advanced2VC, packet.VC(vc))
	}
	mk := func(vc int, deadline units.Time) *packet.Packet {
		p := &packet.Packet{ID: uint64(vc*100) + uint64(deadline), Deadline: deadline, Size: 64, VC: packet.VC(vc)}
		ready[vc].Push(p)
		return p
	}
	if got := pol.PickInject(&ready, func(*packet.Packet) bool { return true }); got != -1 {
		t.Fatalf("empty NIC picked VC %d", got)
	}
	mk(1, 50)
	p0 := mk(0, 90)
	if got := pol.PickInject(&ready, func(*packet.Packet) bool { return true }); got != 0 {
		t.Fatalf("picked VC %d, want regulated VC 0 first", got)
	}
	// Block VC 0 (no credit): VC 1 must be picked instead.
	if got := pol.PickInject(&ready, func(p *packet.Packet) bool { return p != p0 }); got != 1 {
		t.Fatalf("picked VC %d, want 1 when VC 0 is blocked", got)
	}
	if got := pol.PickInject(&ready, func(*packet.Packet) bool { return false }); got != -1 {
		t.Fatalf("picked VC %d with all heads blocked", got)
	}
}

func TestDefaultArbiterPickLinkVC(t *testing.T) {
	// Deadline-aware link scheduling gives the regulated VC absolute
	// priority: the lowest-numbered VC with a transmittable head wins,
	// regardless of the best-effort head's TTD; a credit-blocked
	// regulated head lets best-effort use the idle link.
	arb := Default().NewArbiter(ArbiterConfig{Arch: arch.Advanced2VC, Radix: 4})
	var heads [packet.NumVCs]*packet.Packet
	mk := func(vc int, ttd units.Time) *packet.Packet {
		p := &packet.Packet{ID: uint64(vc + 1), TTD: ttd, Size: 64, VC: packet.VC(vc)}
		heads[vc] = p
		return p
	}
	if got := arb.PickLinkVC(&heads, func(*packet.Packet) bool { return true }); got != -1 {
		t.Fatalf("empty heads picked VC %d", got)
	}
	mk(0, 100)
	mk(1, 40) // earlier TTD, but on the best-effort VC
	if got := arb.PickLinkVC(&heads, func(*packet.Packet) bool { return true }); got != 0 {
		t.Fatalf("picked VC %d, want regulated VC first", got)
	}
	if got := arb.PickLinkVC(&heads, func(p *packet.Packet) bool { return p.VC != 0 }); got != 1 {
		t.Fatalf("picked VC %d, want 1 when VC 0 lacks credit", got)
	}
	if got := arb.PickLinkVC(&heads, func(*packet.Packet) bool { return false }); got != -1 {
		t.Fatalf("picked VC %d with no credits anywhere", got)
	}
}

func TestArbitersAreIndependent(t *testing.T) {
	// Each NewArbiter call returns private round-robin/EDF state: two
	// ports advancing one arbiter must not disturb the other.
	cfgA := ArbiterConfig{Arch: arch.Traditional2VC, Radix: 4}
	a := Default().NewArbiter(cfgA)
	b := Default().NewArbiter(cfgA)
	if a == b {
		t.Fatal("NewArbiter returned shared state")
	}
}
