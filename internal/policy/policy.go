// Package policy lifts the scheduling decisions of the paper's
// architecture out of the hot paths and behind one pluggable interface,
// so alternative scheduling ideas from the literature compare head-to-head
// without surgery on hostif or switchsim (ROADMAP item 5).
//
// A Policy decides exactly three things:
//
//   - which buffer discipline each host injection queue uses (NewHostQueue,
//     including bounded queues that may evict under pressure — see
//     pqueue.DropQueue),
//   - which ready VC the NIC injects from next (PickInject),
//   - which candidate a switch output port grants, at the crossbar and at
//     the link (NewArbiter).
//
// Everything else — deadline stamping modes, admission, virtual channels,
// credits — stays in the owning packages; a policy composes them.
//
// Contract (see DESIGN.md §14): policies must be deterministic pure
// functions of their visible inputs (queue heads, candidate lists, their
// own per-port state created by NewArbiter). They must not read clocks,
// random sources, or global state, and they must not retain or mutate
// packets beyond the decision — this is what keeps results byte-identical
// at any shard count. The nil policy (Config fields left nil) costs
// nothing extra: the default implementations below replicate the seed
// EDF-takeover behaviour instruction for instruction.
//
// Three policies ship built in:
//
//   - Default: the paper's per-packet EDF with absolute regulated-VC
//     priority (byte-identical to the pre-policy simulator).
//   - CoflowEDF: identical data path, but flags CoflowDeadlines so the
//     coflow manager (internal/coflow) stamps every packet of a collective
//     round with the round's shared absolute deadline (DCoflow-style
//     coflow-level EDF, arXiv 2205.01229).
//   - ValueDrop: bounds the best-effort injection queues and evicts the
//     lowest value-density packet on overflow (Fei Li's bounded-queue
//     weighted packet dropping, arXiv 0807.2694); the tail variant drops
//     arrivals instead, as the classic baseline.
package policy

import (
	"fmt"
	"math"

	"deadlineqos/internal/arbiter"
	"deadlineqos/internal/arch"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/pqueue"
	"deadlineqos/internal/units"
)

// HostQueueCap is the default injection-queue capacity: host memory,
// effectively unbounded compared to switch buffers (same value the seed
// hostif used, headroom against Size overflow in accounting sums).
const HostQueueCap = units.Size(math.MaxInt64 / 4)

// DefaultDropBound is the ValueDrop policy's per-queue byte bound when the
// caller does not override it: a few dozen MTU packets, small enough that
// hotspot backpressure forces eviction decisions instead of unbounded
// host-memory queueing.
const DefaultDropBound = 64 * units.Kilobyte

// Policy is one scheduling policy. Implementations must be stateless and
// reusable across hosts, switches and runs: all mutable per-port state
// lives in the Arbiter instances NewArbiter returns and the Buffer
// instances NewHostQueue returns.
type Policy interface {
	// Name identifies the policy in results, metrics and CLI flags.
	Name() string
	// NewHostQueue builds the injection ready queue of one host VC.
	NewHostQueue(a arch.Arch, vc packet.VC) pqueue.Buffer
	// PickInject chooses the ready VC the NIC injects from next, given
	// the per-VC ready queues and the link's credit check for a head
	// packet. It returns -1 when nothing can be injected. The credit rule
	// of the paper's appendix applies: only each queue's Head may be
	// checked, never another stored packet.
	PickInject(ready *[packet.NumVCs]pqueue.Buffer, canSend func(*packet.Packet) bool) int
	// NewArbiter builds the per-output-port arbitration state of one
	// switch port.
	NewArbiter(cfg ArbiterConfig) Arbiter
}

// ArbiterConfig carries what a switch output port knows at build time.
type ArbiterConfig struct {
	Arch  arch.Arch
	Radix int
	// VCTable overrides the Traditional architectures' weighted
	// arbitration table (nil = architecture default).
	VCTable []packet.VC
}

// Arbiter makes one switch output port's grant decisions. Instances are
// per-port and may keep rotating-priority state; both methods must be
// deterministic functions of that state and their arguments.
type Arbiter interface {
	// PickXbar applies the two-level crossbar choice: VC first, then the
	// input within the VC. cands[vc] holds the head packets of non-busy
	// inputs that fit the output buffer. It returns the granted VC and
	// the index into cands[vc], or (0, -1) when nothing can be granted.
	PickXbar(cands *[packet.NumVCs][]arbiter.Candidate) (vc, sel int)
	// PickLinkVC chooses which VC transmits next on the output link.
	// heads[vc] is each VC buffer's discipline-designated head (nil when
	// empty); canSend is the link's credit check. Returns -1 when nothing
	// can be sent.
	PickLinkVC(heads *[packet.NumVCs]*packet.Packet, canSend func(*packet.Packet) bool) int
}

// CoflowAware is the optional interface a policy implements to request
// coflow-level deadline stamping: when it reports true, the coflow
// manager stamps every packet of an admitted collective round with the
// round's shared absolute deadline instead of the per-packet virtual
// clock.
type CoflowAware interface {
	CoflowDeadlines() bool
}

// IsCoflowAware reports whether p requests coflow-level deadlines.
func IsCoflowAware(p Policy) bool {
	ca, ok := p.(CoflowAware)
	return ok && ca.CoflowDeadlines()
}

// Names lists the built-in policy names accepted by Parse.
func Names() []string {
	return []string{"default", "coflow-edf", "value-drop", "value-drop-tail"}
}

// Parse returns the built-in policy of the given name ("" selects the
// default policy).
func Parse(name string) (Policy, error) {
	switch name {
	case "", "default":
		return Default(), nil
	case "coflow-edf":
		return CoflowEDF(), nil
	case "value-drop":
		return ValueDrop(0, false), nil
	case "value-drop-tail":
		return ValueDrop(0, true), nil
	default:
		return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names())
	}
}

// --- default policy ------------------------------------------------------

// defaultPolicy is the seed behaviour: per-packet EDF with absolute
// regulated-VC priority on the deadline-aware architectures, weighted
// VC-table arbitration on the Traditional ones.
type defaultPolicy struct{}

// Default returns the paper's EDF-takeover scheduling policy, the one the
// simulator shipped with before the policy interface existed. Every
// decision it makes is byte-identical to the seed.
func Default() Policy { return defaultPolicy{} }

func (defaultPolicy) Name() string { return "default" }

func (defaultPolicy) NewHostQueue(a arch.Arch, vc packet.VC) pqueue.Buffer {
	if a.DeadlineAware() {
		return pqueue.NewHeap(HostQueueCap, false)
	}
	return pqueue.NewFIFO(HostQueueCap, false)
}

func (defaultPolicy) PickInject(ready *[packet.NumVCs]pqueue.Buffer, canSend func(*packet.Packet) bool) int {
	// Regulated VCs first (§3.2): best-effort injects only when no lower
	// VC has a transmittable head.
	for vc := 0; vc < packet.NumVCs; vc++ {
		if p := ready[vc].Head(); p != nil && canSend(p) {
			return vc
		}
	}
	return -1
}

func (defaultPolicy) NewArbiter(cfg ArbiterConfig) Arbiter { return newDefaultArbiter(cfg) }

// defaultArbiter is the seed output-port arbitration state: per-VC EDF and
// round-robin arbiters plus the Traditional architectures' weighted VC
// tables (independent pointers for the crossbar and the link, as before).
type defaultArbiter struct {
	aware     bool
	edf       [packet.NumVCs]*arbiter.EDF
	rr        [packet.NumVCs]*arbiter.RoundRobin
	xbarTable *arbiter.VCTable
	linkTable *arbiter.VCTable
}

func newDefaultArbiter(cfg ArbiterConfig) *defaultArbiter {
	d := &defaultArbiter{aware: cfg.Arch.DeadlineAware()}
	for vc := 0; vc < packet.NumVCs; vc++ {
		d.edf[vc] = arbiter.NewEDF(cfg.Radix)
		d.rr[vc] = arbiter.NewRoundRobin(cfg.Radix)
	}
	switch {
	case cfg.VCTable != nil:
		d.xbarTable = arbiter.NewVCTable(cfg.VCTable)
		d.linkTable = arbiter.NewVCTable(cfg.VCTable)
	case cfg.Arch == arch.Traditional4VC:
		d.xbarTable = arbiter.Default4VCTable()
		d.linkTable = arbiter.Default4VCTable()
	default:
		d.xbarTable = arbiter.DefaultVCTable()
		d.linkTable = arbiter.DefaultVCTable()
	}
	return d
}

func (d *defaultArbiter) PickXbar(cands *[packet.NumVCs][]arbiter.Candidate) (int, int) {
	if d.aware {
		// Regulated VC has absolute priority; EDF within the VC.
		for vc := 0; vc < packet.NumVCs; vc++ {
			if len(cands[vc]) > 0 {
				return vc, d.edf[vc].Select(cands[vc])
			}
		}
		return 0, -1
	}
	var avail [packet.NumVCs]bool
	for vc := range cands {
		avail[vc] = len(cands[vc]) > 0
	}
	vc, ok := d.xbarTable.Next(avail)
	if !ok {
		return 0, -1
	}
	return int(vc), d.rr[vc].Select(cands[vc])
}

func (d *defaultArbiter) PickLinkVC(heads *[packet.NumVCs]*packet.Packet, canSend func(*packet.Packet) bool) int {
	if d.aware {
		// Absolute priority for the regulated VC. If its head is blocked
		// on credits the best-effort VC may use the idle link: the VCs
		// have independent downstream buffers, so this is work-conserving
		// without ever delaying a *transmittable* regulated packet.
		for vc := 0; vc < packet.NumVCs; vc++ {
			if h := heads[vc]; h != nil && canSend(h) {
				return vc
			}
		}
		return -1
	}
	var avail [packet.NumVCs]bool
	any := false
	for vc := 0; vc < packet.NumVCs; vc++ {
		h := heads[vc]
		avail[vc] = h != nil && canSend(h)
		any = any || avail[vc]
	}
	if !any {
		return -1
	}
	vc, ok := d.linkTable.Next(avail)
	if !ok {
		return -1
	}
	return int(vc)
}

// --- coflow-EDF policy ---------------------------------------------------

// coflowPolicy shares the default data path; the only difference is the
// CoflowDeadlines flag, which makes the coflow manager stamp collective
// rounds with shared absolute deadlines. Cross traffic is scheduled
// exactly as under Default, so E8 isolates the stamping rule.
type coflowPolicy struct{ defaultPolicy }

// CoflowEDF returns the coflow-level EDF policy.
func CoflowEDF() Policy { return coflowPolicy{} }

func (coflowPolicy) Name() string { return "coflow-edf" }

func (coflowPolicy) CoflowDeadlines() bool { return true }

// --- value-drop policy ---------------------------------------------------

// valueDropPolicy bounds the best-effort injection queues and sheds load
// by value density.
type valueDropPolicy struct {
	defaultPolicy
	bound units.Size
	tail  bool
}

// ValueDrop returns the value-density dropping policy: best-effort VCs get
// a bounded injection queue (bound bytes; 0 selects DefaultDropBound) that
// evicts the stored packet with the lowest value/size ratio on overflow.
// With tail set, the queue instead drops the arriving packet when it does
// not fit — the classic tail-drop baseline the value-aware variant is
// measured against. Regulated VCs keep the default unbounded queue: their
// load is admission-controlled and must never be shed at the NIC.
func ValueDrop(bound units.Size, tail bool) Policy {
	if bound <= 0 {
		bound = DefaultDropBound
	}
	return valueDropPolicy{bound: bound, tail: tail}
}

func (v valueDropPolicy) Name() string {
	if v.tail {
		return "value-drop-tail"
	}
	return "value-drop"
}

func (v valueDropPolicy) NewHostQueue(a arch.Arch, vc packet.VC) pqueue.Buffer {
	// Only the VCs carrying best-effort classes are bounded. Under the
	// 2-VC mappings that is VC 1; under Traditional4VC the per-class
	// mapping puts BestEffort and Background on VCs 2 and 3.
	if int(vc) < a.VCs() && vc >= a.VCFor(packet.BestEffort) {
		return pqueue.NewDropQueue(v.bound, v.tail, a.DeadlineAware())
	}
	return v.defaultPolicy.NewHostQueue(a, vc)
}
