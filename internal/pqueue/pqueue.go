// Package pqueue implements the packet buffer disciplines that distinguish
// the paper's four switch architectures:
//
//   - FIFO: a plain first-in first-out queue. Used for every buffer of the
//     Traditional architecture and for the Simple architecture (where the
//     arbiter still compares deadlines, but only of FIFO heads).
//   - Heap: an ordered buffer that always exposes the stored packet with the
//     smallest deadline ("Ideal" architecture; in hardware this would be the
//     pipelined heap of Ioannou & Katevenis, which the paper deems too
//     expensive for high-radix switches).
//   - TakeOver: the paper's contribution (§3.4) — two FIFO queues, an
//     "ordered" queue L and a "take-over" queue U. A packet is appended to L
//     iff its deadline is not smaller than L's tail; otherwise it goes to U.
//     Dequeue takes the smaller-deadline head of the two. The appendix
//     theorems (encoded in this package's tests) prove this never reorders
//     packets of a single flow.
//
// All disciplines implement Buffer, so switch ports are built independently
// of the architecture being simulated.
//
// Order-error accounting: a dequeue commits an order error when the packet
// it emits does not have the minimum deadline currently stored in the buffer
// (§3.4 calls these "order errors", distinct from out-of-order delivery).
// Buffers optionally carry an oracle min-tracker that detects this; it
// exists only for measurement and is not consulted by any scheduling
// decision.
package pqueue

import (
	"container/heap"
	"fmt"

	"deadlineqos/internal/metrics"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

// Metrics bundles the buffer-level instruments of the metrics plane.
// Instrument methods are nil-safe, so the zero value disables recording
// at the cost of one nil check inside each call.
type Metrics struct {
	Enqueued    *metrics.Counter // packets pushed
	Dequeued    *metrics.Counter // packets popped
	OrderErrors *metrics.Counter // dequeues that violated deadline order
	TakeOvers   *metrics.Counter // pushes diverted to the take-over queue
}

// Buffer is a per-VC packet buffer of a switch or host port. Push never
// fails: the credit-based flow control upstream guarantees space, and a
// violation indicates a simulator bug, so implementations panic when pushed
// beyond capacity.
type Buffer interface {
	// Push stores a packet. Panics if the buffer lacks capacity.
	Push(p *packet.Packet)
	// Head returns the packet the discipline would emit next, or nil.
	// As required by the paper's flow-control rule (appendix), callers
	// must check credits against Head only — never against another
	// stored packet.
	Head() *packet.Packet
	// Pop removes and returns Head. Returns nil when empty.
	Pop() *packet.Packet
	// Len returns the number of stored packets.
	Len() int
	// Bytes returns the stored byte volume.
	Bytes() units.Size
	// Capacity returns the buffer size in bytes.
	Capacity() units.Size
	// Free returns the remaining byte space.
	Free() units.Size
	// OrderErrors returns how many dequeues emitted a packet whose
	// deadline exceeded the buffer's true minimum at that moment.
	// Always zero when the buffer was built without tracking.
	OrderErrors() uint64
	// Scan calls fn for every stored packet in unspecified order. It is
	// an oracle hook for tests and statistics.
	Scan(fn func(*packet.Packet))
	// SetObserver installs a per-packet event observer (nil to remove).
	// Observers are measurement-only and never influence the discipline.
	SetObserver(Observer)
	// SetMetrics installs the buffer's metric instruments (the zero
	// Metrics removes them). Measurement-only, like observers.
	SetMetrics(Metrics)
}

// Observer receives per-packet buffer events. The tracing layer installs
// one when packet-lifecycle tracing is on; with no observer installed the
// notification sites cost a single nil check.
type Observer interface {
	// TakeOverEnqueued fires when a push diverts p to the take-over
	// queue U (TakeOver discipline only).
	TakeOverEnqueued(p *packet.Packet)
	// OrderError fires when a dequeue emits p although the buffer holds
	// a smaller deadline. Requires the buffer to be built with order
	// tracking; untracked buffers never call it.
	OrderError(p *packet.Packet)
}

// Discipline names a buffer type, used by configuration.
type Discipline uint8

// Buffer disciplines, one per architecture family.
const (
	FIFO Discipline = iota
	Heap
	TakeOver
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case Heap:
		return "heap"
	case TakeOver:
		return "takeover"
	default:
		return fmt.Sprintf("Discipline(%d)", uint8(d))
	}
}

// New builds a buffer of the given discipline with the given byte capacity.
// If trackOrderErrors is true the buffer carries the measurement oracle
// (slightly slower Push/Pop).
func New(d Discipline, capacity units.Size, trackOrderErrors bool) Buffer {
	switch d {
	case FIFO:
		return NewFIFO(capacity, trackOrderErrors)
	case Heap:
		return NewHeap(capacity, trackOrderErrors)
	case TakeOver:
		return NewTakeOver(capacity, trackOrderErrors)
	default:
		panic("pqueue: unknown discipline")
	}
}

// --- oracle min-tracker ------------------------------------------------

// minTracker maintains the true minimum deadline of a packet multiset using
// a lazy-deletion heap. It is measurement-only.
type minTracker struct {
	entries minHeap
	dead    map[uint64]int // packet id -> pending deletions
}

type minEntry struct {
	deadline units.Time
	id       uint64
}

type minHeap []minEntry

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(minEntry)) }
func (h *minHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

func newMinTracker() *minTracker {
	return &minTracker{dead: make(map[uint64]int)}
}

func (t *minTracker) add(p *packet.Packet) {
	heap.Push(&t.entries, minEntry{p.Deadline, p.ID})
}

func (t *minTracker) remove(p *packet.Packet) {
	t.dead[p.ID]++
	t.compact()
}

func (t *minTracker) compact() {
	for len(t.entries) > 0 {
		top := t.entries[0]
		n, stale := t.dead[top.id]
		if !stale {
			return
		}
		if n == 1 {
			delete(t.dead, top.id)
		} else {
			t.dead[top.id] = n - 1
		}
		heap.Pop(&t.entries)
	}
}

// min returns the smallest stored deadline, or Infinity when empty.
func (t *minTracker) min() units.Time {
	t.compact()
	if len(t.entries) == 0 {
		return units.Infinity
	}
	return t.entries[0].deadline
}

// --- common bookkeeping -------------------------------------------------

type base struct {
	capacity    units.Size
	bytes       units.Size
	orderErrors uint64
	tracker     *minTracker
	arrivalSeq  uint64
	obs         Observer
	mtr         Metrics
}

func (b *base) Bytes() units.Size      { return b.bytes }
func (b *base) Capacity() units.Size   { return b.capacity }
func (b *base) Free() units.Size       { return b.capacity - b.bytes }
func (b *base) OrderErrors() uint64    { return b.orderErrors }
func (b *base) SetObserver(o Observer) { b.obs = o }
func (b *base) SetMetrics(m Metrics)   { b.mtr = m }

func (b *base) pushAccounting(p *packet.Packet, kind string) {
	if b.bytes+p.Size > b.capacity {
		panic(fmt.Sprintf("pqueue: %s overflow: %v stored + %v pushed > %v capacity (flow control violated)",
			kind, b.bytes, p.Size, b.capacity))
	}
	b.bytes += p.Size
	b.mtr.Enqueued.Inc()
	if b.tracker != nil {
		b.tracker.add(p)
	}
}

func (b *base) popAccounting(p *packet.Packet) {
	b.bytes -= p.Size
	b.mtr.Dequeued.Inc()
	if b.tracker != nil {
		if p.Deadline > b.tracker.min() {
			b.orderErrors++
			b.mtr.OrderErrors.Inc()
			if b.obs != nil {
				b.obs.OrderError(p)
			}
		}
		b.tracker.remove(p)
	}
}

// --- FIFO ---------------------------------------------------------------

// fifoQueue is a growable ring of packets.
type fifoQueue struct {
	buf        []*packet.Packet
	head, size int
}

func (q *fifoQueue) len() int { return q.size }

func (q *fifoQueue) front() *packet.Packet {
	if q.size == 0 {
		return nil
	}
	return q.buf[q.head]
}

func (q *fifoQueue) back() *packet.Packet {
	if q.size == 0 {
		return nil
	}
	return q.buf[(q.head+q.size-1)%len(q.buf)]
}

func (q *fifoQueue) push(p *packet.Packet) {
	if q.size == len(q.buf) {
		grown := make([]*packet.Packet, max(8, 2*len(q.buf)))
		for i := 0; i < q.size; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.size)%len(q.buf)] = p
	q.size++
}

func (q *fifoQueue) pop() *packet.Packet {
	if q.size == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return p
}

func (q *fifoQueue) scan(fn func(*packet.Packet)) {
	for i := 0; i < q.size; i++ {
		fn(q.buf[(q.head+i)%len(q.buf)])
	}
}

// Fifo is a first-in first-out packet buffer.
type Fifo struct {
	base
	q fifoQueue
}

// NewFIFO returns an empty FIFO buffer of the given byte capacity.
func NewFIFO(capacity units.Size, track bool) *Fifo {
	f := &Fifo{base: base{capacity: capacity}}
	if track {
		f.tracker = newMinTracker()
	}
	return f
}

// Push appends p.
func (f *Fifo) Push(p *packet.Packet) {
	f.pushAccounting(p, "fifo")
	f.q.push(p)
}

// Head returns the oldest stored packet.
func (f *Fifo) Head() *packet.Packet { return f.q.front() }

// Pop removes and returns the oldest stored packet.
func (f *Fifo) Pop() *packet.Packet {
	p := f.q.pop()
	if p != nil {
		f.popAccounting(p)
	}
	return p
}

// Len returns the number of stored packets.
func (f *Fifo) Len() int { return f.q.len() }

// Scan visits stored packets front to back.
func (f *Fifo) Scan(fn func(*packet.Packet)) { f.q.scan(fn) }

// --- Heap ("Ideal") -------------------------------------------------------

type heapEntry struct {
	p   *packet.Packet
	seq uint64 // arrival order, the EDF tie-break
}

type pktHeap []heapEntry

func (h pktHeap) Len() int { return len(h) }
func (h pktHeap) Less(i, j int) bool {
	if h[i].p.Deadline != h[j].p.Deadline {
		return h[i].p.Deadline < h[j].p.Deadline
	}
	return h[i].seq < h[j].seq
}
func (h pktHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pktHeap) Push(x any)   { *h = append(*h, x.(heapEntry)) }
func (h *pktHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = heapEntry{}
	*h = old[:n-1]
	return e
}

// DeadlineHeap is the "Ideal" ordered buffer: Head is always the stored
// packet with the smallest deadline (ties broken by arrival order, making
// the discipline a stable EDF).
type DeadlineHeap struct {
	base
	h pktHeap
}

// NewHeap returns an empty ordered buffer of the given byte capacity.
func NewHeap(capacity units.Size, track bool) *DeadlineHeap {
	d := &DeadlineHeap{base: base{capacity: capacity}}
	if track {
		d.tracker = newMinTracker()
	}
	return d
}

// Push stores p in deadline order.
func (d *DeadlineHeap) Push(p *packet.Packet) {
	d.pushAccounting(p, "heap")
	heap.Push(&d.h, heapEntry{p, d.arrivalSeq})
	d.arrivalSeq++
}

// Head returns the minimum-deadline stored packet.
func (d *DeadlineHeap) Head() *packet.Packet {
	if len(d.h) == 0 {
		return nil
	}
	return d.h[0].p
}

// Pop removes and returns the minimum-deadline stored packet.
func (d *DeadlineHeap) Pop() *packet.Packet {
	if len(d.h) == 0 {
		return nil
	}
	e := heap.Pop(&d.h).(heapEntry)
	d.popAccounting(e.p)
	return e.p
}

// Len returns the number of stored packets.
func (d *DeadlineHeap) Len() int { return len(d.h) }

// Scan visits stored packets in heap (unspecified) order.
func (d *DeadlineHeap) Scan(fn func(*packet.Packet)) {
	for _, e := range d.h {
		fn(e.p)
	}
}

// --- TakeOver ("Advanced") -------------------------------------------------

// TakeOverQueue is the paper's two-FIFO buffer (§3.4, Figure 1). The
// "ordered" queue L holds packets whose deadlines arrived in non-decreasing
// order; late low-deadline packets divert to the "take-over" queue U where
// they can overtake L's high-deadline tail. Dequeue emits the smaller
// deadline of the two heads (FIFO arrival as tie-break), which the paper's
// appendix proves never reorders a single flow's packets.
type TakeOverQueue struct {
	base
	l, u     fifoQueue
	seqOf    map[uint64]uint64 // packet id -> arrival sequence (tie-break)
	takeOver uint64            // packets diverted to U, a direct order-pressure measure
}

// NewTakeOver returns an empty two-queue buffer of the given byte capacity.
// L and U share the capacity dynamically, as in the paper ("the two queues
// can dynamically take all the memory allowed for the VC").
func NewTakeOver(capacity units.Size, track bool) *TakeOverQueue {
	t := &TakeOverQueue{base: base{capacity: capacity}, seqOf: make(map[uint64]uint64)}
	if track {
		t.tracker = newMinTracker()
	}
	return t
}

// Push enqueues p per the paper's Definition 1: into L when both queues are
// empty or when D(p) ≥ D(L's tail); into U otherwise.
func (t *TakeOverQueue) Push(p *packet.Packet) {
	t.pushAccounting(p, "takeover")
	t.seqOf[p.ID] = t.arrivalSeq
	t.arrivalSeq++
	if tail := t.l.back(); tail == nil || p.Deadline >= tail.Deadline {
		// Lemma 1 guarantees L is empty only when U is too, so an empty
		// L tail always means "both empty → store in L".
		t.l.push(p)
		return
	}
	t.u.push(p)
	t.takeOver++
	t.mtr.TakeOvers.Inc()
	if t.obs != nil {
		t.obs.TakeOverEnqueued(p)
	}
}

// Head returns the dequeue candidate per Definition 2: the smaller-deadline
// head of L and U (earlier arrival wins ties).
func (t *TakeOverQueue) Head() *packet.Packet {
	lh, uh := t.l.front(), t.u.front()
	switch {
	case lh == nil && uh == nil:
		return nil
	case lh == nil:
		// Violates Lemma 1; reaching this means the enqueue/dequeue
		// algorithms were not followed.
		panic("pqueue: take-over queue non-empty while ordered queue empty (Lemma 1 violated)")
	case uh == nil:
		return lh
	case lh.Deadline < uh.Deadline:
		return lh
	case uh.Deadline < lh.Deadline:
		return uh
	case t.seqOf[lh.ID] < t.seqOf[uh.ID]:
		return lh
	default:
		return uh
	}
}

// Pop removes and returns the dequeue candidate.
func (t *TakeOverQueue) Pop() *packet.Packet {
	h := t.Head()
	if h == nil {
		return nil
	}
	if t.l.front() == h {
		t.l.pop()
	} else {
		t.u.pop()
	}
	delete(t.seqOf, h.ID)
	t.popAccounting(h)
	return h
}

// Len returns the number of stored packets.
func (t *TakeOverQueue) Len() int { return t.l.len() + t.u.len() }

// Scan visits L front-to-back, then U front-to-back.
func (t *TakeOverQueue) Scan(fn func(*packet.Packet)) {
	t.l.scan(fn)
	t.u.scan(fn)
}

// TakeOvers returns how many pushed packets were diverted to the take-over
// queue, i.e. arrived with a deadline below the ordered queue's tail.
func (t *TakeOverQueue) TakeOvers() uint64 { return t.takeOver }

// LLen and ULen expose the two internal queue lengths for tests and the
// take-over example.
func (t *TakeOverQueue) LLen() int { return t.l.len() }

// ULen returns the take-over queue length.
func (t *TakeOverQueue) ULen() int { return t.u.len() }
