package pqueue

import (
	"testing"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

// vpkt builds a best-effort packet with an explicit value density
// (milli-units per byte), mirroring how hostif stamps Value.
func vpkt(deadline units.Time, size units.Size, density int64) *packet.Packet {
	p := pkt(deadline, size)
	p.Value = density * int64(size)
	return p
}

func TestDropQueueFIFOOrder(t *testing.T) {
	q := NewDropQueue(units.Kilobyte, false, false)
	var want []uint64
	for i := 0; i < 5; i++ {
		p := vpkt(units.Time(100-i), 64, 1)
		want = append(want, p.ID)
		q.Push(p)
	}
	for _, id := range want {
		if got := q.Pop(); got.ID != id {
			t.Fatalf("pop %d, want %d", got.ID, id)
		}
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Fatalf("drained queue holds %d packets / %v bytes", q.Len(), q.Bytes())
	}
}

func TestDropQueueEDFHead(t *testing.T) {
	q := NewDropQueue(units.Kilobyte, false, true)
	q.Push(vpkt(300, 64, 1))
	late := vpkt(100, 64, 1)
	q.Push(late)
	q.Push(vpkt(200, 64, 1))
	if h := q.Head(); h.ID != late.ID {
		t.Fatalf("EDF head %d (deadline %v), want earliest-deadline %d", h.ID, h.Deadline, late.ID)
	}
	if p := q.Pop(); p.ID != late.ID {
		t.Fatalf("EDF pop %d, want %d", p.ID, late.ID)
	}
}

func TestDropQueueEvictsLowestDensity(t *testing.T) {
	q := NewDropQueue(300, false, false)
	cheap := vpkt(10, 100, 1)
	mid := vpkt(20, 100, 5)
	rich := vpkt(30, 100, 9)
	q.Push(cheap)
	q.Push(mid)
	q.Push(rich)
	var gone []uint64
	q.SetOnEvict(func(p *packet.Packet) { gone = append(gone, p.ID) })
	newcomer := vpkt(40, 100, 7)
	q.Push(newcomer) // overflow: cheap (density 1) must go
	if len(gone) != 1 || gone[0] != cheap.ID {
		t.Fatalf("evicted %v, want lowest-density %d", gone, cheap.ID)
	}
	if n, b := q.Evicted(); n != 1 || b != 100 {
		t.Fatalf("eviction counters %d/%v, want 1/100", n, b)
	}
	if q.Bytes() != 300 || q.Len() != 3 {
		t.Fatalf("after eviction: %d packets / %v bytes", q.Len(), q.Bytes())
	}
	// The survivors drain in arrival order (FIFO mode).
	for _, id := range []uint64{mid.ID, rich.ID, newcomer.ID} {
		if got := q.Pop(); got.ID != id {
			t.Fatalf("pop %d, want %d", got.ID, id)
		}
	}
}

func TestDropQueueRejectsNoDenserNewcomer(t *testing.T) {
	q := NewDropQueue(200, false, false)
	a := vpkt(10, 100, 5)
	b := vpkt(20, 100, 5)
	q.Push(a)
	q.Push(b)
	var gone []uint64
	q.SetOnEvict(func(p *packet.Packet) { gone = append(gone, p.ID) })
	// Equal density: the tie keeps the older residents, the newcomer dies.
	q.Push(vpkt(30, 100, 5))
	// Strictly less dense: same verdict.
	q.Push(vpkt(40, 100, 2))
	if len(gone) != 2 {
		t.Fatalf("evicted %d packets, want the 2 newcomers", len(gone))
	}
	if q.Len() != 2 || q.Head().ID != a.ID {
		t.Fatalf("residents disturbed: len %d head %v", q.Len(), q.Head().ID)
	}
}

func TestDropQueueTailMode(t *testing.T) {
	q := NewDropQueue(200, true, false)
	cheap := vpkt(10, 100, 1)
	q.Push(cheap)
	q.Push(vpkt(20, 100, 1))
	q.Push(vpkt(30, 100, 99)) // tail drop is value-blind: the rich newcomer dies
	if n, _ := q.Evicted(); n != 1 {
		t.Fatalf("evictions %d, want 1", n)
	}
	if q.Head().ID != cheap.ID || q.Len() != 2 {
		t.Fatalf("tail mode disturbed the residents")
	}
}

func TestDropQueueOversizedPacket(t *testing.T) {
	q := NewDropQueue(100, false, false)
	q.Push(vpkt(10, 500, 100)) // can never fit, even into an empty queue
	if q.Len() != 0 {
		t.Fatalf("oversized packet stored")
	}
	if n, b := q.Evicted(); n != 1 || b != 500 {
		t.Fatalf("oversized packet not counted: %d/%v", n, b)
	}
}

func TestDropQueueMultiEviction(t *testing.T) {
	q := NewDropQueue(300, false, false)
	q.Push(vpkt(10, 100, 1))
	q.Push(vpkt(20, 100, 2))
	q.Push(vpkt(30, 100, 3))
	rich := vpkt(40, 250, 10)
	q.Push(rich) // needs three residents' worth of space
	if n, b := q.Evicted(); n != 3 || b != 300 {
		t.Fatalf("evictions %d/%v, want 3/300", n, b)
	}
	if q.Len() != 1 || q.Bytes() != 250 || q.Head().ID != rich.ID {
		t.Fatalf("survivor wrong: len %d bytes %v", q.Len(), q.Bytes())
	}
}

func TestDropQueueScanArrivalOrder(t *testing.T) {
	q := NewDropQueue(units.Kilobyte, false, true) // EDF pops, arrival-ordered scan
	var want []uint64
	for i := 0; i < 4; i++ {
		p := vpkt(units.Time(50-i), 64, 1)
		want = append(want, p.ID)
		q.Push(p)
	}
	var got []uint64
	q.Scan(func(p *packet.Packet) {
		got = append(got, p.ID)
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
}

// TestDropQueueNeverExceedsCapacity drives a deterministic pseudo-random
// workload and checks the bounded-queue invariants against a naive model:
// stored bytes never exceed capacity, and every pushed packet is exactly
// once stored, popped, or evicted.
func TestDropQueueNeverExceedsCapacity(t *testing.T) {
	for _, edf := range []bool{false, true} {
		for _, tail := range []bool{false, true} {
			const cap = 500
			q := NewDropQueue(cap, tail, edf)
			evicted := 0
			q.SetOnEvict(func(*packet.Packet) { evicted++ })
			rng := uint64(12345)
			next := func(n uint64) uint64 {
				rng = rng*6364136223846793005 + 1442695040888963407
				return (rng >> 33) % n
			}
			pushed, popped := 0, 0
			for i := 0; i < 2000; i++ {
				if next(3) == 0 && q.Len() > 0 {
					if q.Pop() == nil {
						t.Fatal("pop returned nil on non-empty queue")
					}
					popped++
					continue
				}
				size := units.Size(next(200) + 1)
				q.Push(vpkt(units.Time(next(1000)), size, int64(next(10))))
				pushed++
				if q.Bytes() > cap {
					t.Fatalf("edf=%v tail=%v: %v bytes stored > %v capacity", edf, tail, q.Bytes(), cap)
				}
			}
			if pushed != popped+evicted+q.Len() {
				t.Fatalf("edf=%v tail=%v: %d pushed != %d popped + %d evicted + %d stored",
					edf, tail, pushed, popped, evicted, q.Len())
			}
			n, _ := q.Evicted()
			if int(n) != evicted {
				t.Fatalf("counter %d != callback count %d", n, evicted)
			}
		}
	}
}
