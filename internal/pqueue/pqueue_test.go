package pqueue

import (
	"testing"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

var nextID uint64

func pkt(deadline units.Time, size units.Size) *packet.Packet {
	nextID++
	return &packet.Packet{ID: nextID, Deadline: deadline, Size: size}
}

func flowPkt(flow packet.FlowID, seq uint64, deadline units.Time) *packet.Packet {
	p := pkt(deadline, 64)
	p.Flow = flow
	p.Seq = seq
	return p
}

func TestNewDispatch(t *testing.T) {
	for _, d := range []Discipline{FIFO, Heap, TakeOver} {
		b := New(d, units.Kilobyte, false)
		if b == nil {
			t.Fatalf("New(%v) = nil", d)
		}
		if b.Capacity() != units.Kilobyte {
			t.Errorf("New(%v).Capacity() = %v", d, b.Capacity())
		}
	}
}

func TestDisciplineString(t *testing.T) {
	if FIFO.String() != "fifo" || Heap.String() != "heap" || TakeOver.String() != "takeover" {
		t.Error("discipline names wrong")
	}
	if Discipline(99).String() == "" {
		t.Error("unknown discipline must still render")
	}
}

func TestNewUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(unknown) did not panic")
		}
	}()
	New(Discipline(99), units.Kilobyte, false)
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(units.Kilobyte, false)
	var want []uint64
	for i := 0; i < 10; i++ {
		p := pkt(units.Time(100-i), 10) // deliberately decreasing deadlines
		want = append(want, p.ID)
		f.Push(p)
	}
	for i, id := range want {
		if h := f.Head(); h.ID != id {
			t.Fatalf("step %d: Head = %d, want %d", i, h.ID, id)
		}
		if p := f.Pop(); p.ID != id {
			t.Fatalf("step %d: Pop = %d, want %d", i, p.ID, id)
		}
	}
	if f.Pop() != nil || f.Head() != nil {
		t.Fatal("empty FIFO must return nil")
	}
}

func TestFIFORingWraparound(t *testing.T) {
	f := NewFIFO(units.Megabyte, false)
	// Interleave pushes and pops to force the ring head to wrap.
	seq := uint64(0)
	popped := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			seq++
			p := pkt(0, 8)
			p.Seq = seq
			f.Push(p)
		}
		for i := 0; i < 2; i++ {
			popped++
			if p := f.Pop(); p.Seq != popped {
				t.Fatalf("ring corrupted: popped seq %d, want %d", p.Seq, popped)
			}
		}
	}
	for f.Len() > 0 {
		popped++
		if p := f.Pop(); p.Seq != popped {
			t.Fatalf("drain: popped seq %d, want %d", p.Seq, popped)
		}
	}
}

func TestHeapEmitsMinDeadline(t *testing.T) {
	h := NewHeap(units.Kilobyte, false)
	deadlines := []units.Time{50, 10, 30, 20, 40}
	for _, d := range deadlines {
		h.Push(pkt(d, 10))
	}
	var got []units.Time
	for h.Len() > 0 {
		got = append(got, h.Pop().Deadline)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("heap emitted out of deadline order: %v", got)
		}
	}
}

func TestHeapStableOnTies(t *testing.T) {
	h := NewHeap(units.Kilobyte, false)
	var ids []uint64
	for i := 0; i < 5; i++ {
		p := pkt(42, 10)
		ids = append(ids, p.ID)
		h.Push(p)
	}
	for _, id := range ids {
		if p := h.Pop(); p.ID != id {
			t.Fatalf("equal-deadline packets not FIFO: got %d, want %d", p.ID, id)
		}
	}
}

func TestByteAccounting(t *testing.T) {
	for _, d := range []Discipline{FIFO, Heap, TakeOver} {
		b := New(d, 100, false)
		b.Push(pkt(1, 30))
		b.Push(pkt(2, 50))
		if b.Bytes() != 80 || b.Free() != 20 {
			t.Errorf("%v: Bytes=%v Free=%v, want 80/20", d, b.Bytes(), b.Free())
		}
		b.Pop()
		if b.Bytes() != 50 || b.Free() != 50 {
			t.Errorf("%v after pop: Bytes=%v, want 50", d, b.Bytes())
		}
	}
}

func TestOverflowPanics(t *testing.T) {
	for _, d := range []Discipline{FIFO, Heap, TakeOver} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: overflow did not panic", d)
				}
			}()
			b := New(d, 100, false)
			b.Push(pkt(1, 60))
			b.Push(pkt(2, 60))
		}()
	}
}

func TestOrderErrorCounting(t *testing.T) {
	// A FIFO fed decreasing deadlines commits an order error on every pop
	// except the last (when only one packet remains it is trivially min).
	f := NewFIFO(units.Kilobyte, true)
	for i := 0; i < 5; i++ {
		f.Push(pkt(units.Time(100-i), 10))
	}
	for f.Len() > 0 {
		f.Pop()
	}
	if got := f.OrderErrors(); got != 4 {
		t.Errorf("FIFO order errors = %d, want 4", got)
	}

	// The heap never commits order errors.
	h := NewHeap(units.Kilobyte, true)
	for i := 0; i < 5; i++ {
		h.Push(pkt(units.Time(100-i), 10))
	}
	for h.Len() > 0 {
		h.Pop()
	}
	if got := h.OrderErrors(); got != 0 {
		t.Errorf("heap order errors = %d, want 0", got)
	}
}

func TestOrderErrorsInterleaved(t *testing.T) {
	// Order errors must be judged against the buffer contents at pop
	// time, not against the whole arrival history.
	f := NewFIFO(units.Kilobyte, true)
	f.Push(pkt(10, 8))
	f.Pop() // min, no error
	f.Push(pkt(30, 8))
	f.Push(pkt(20, 8))
	f.Pop() // pops 30 while 20 stored: error
	f.Pop() // pops 20, now min: no error
	if got := f.OrderErrors(); got != 1 {
		t.Errorf("order errors = %d, want 1", got)
	}
}

func TestUntrackedBuffersReportZero(t *testing.T) {
	f := NewFIFO(units.Kilobyte, false)
	f.Push(pkt(100, 8))
	f.Push(pkt(1, 8))
	f.Pop()
	if f.OrderErrors() != 0 {
		t.Error("untracked buffer reported order errors")
	}
}

func TestTakeOverEnqueueRouting(t *testing.T) {
	q := NewTakeOver(units.Kilobyte, false)
	q.Push(pkt(100, 10)) // both empty -> L
	if q.LLen() != 1 || q.ULen() != 0 {
		t.Fatalf("first push: L=%d U=%d, want 1/0", q.LLen(), q.ULen())
	}
	q.Push(pkt(200, 10)) // >= tail -> L
	q.Push(pkt(150, 10)) // < tail(200) -> U
	q.Push(pkt(200, 10)) // == tail -> L (>= rule)
	if q.LLen() != 3 || q.ULen() != 1 {
		t.Fatalf("L=%d U=%d, want 3/1", q.LLen(), q.ULen())
	}
	if q.TakeOvers() != 1 {
		t.Fatalf("TakeOvers = %d, want 1", q.TakeOvers())
	}
}

func TestTakeOverDequeuePicksSmallerHead(t *testing.T) {
	q := NewTakeOver(units.Kilobyte, false)
	q.Push(pkt(100, 10)) // L
	q.Push(pkt(300, 10)) // L
	q.Push(pkt(50, 10))  // U (takes over)
	var got []units.Time
	for q.Len() > 0 {
		got = append(got, q.Pop().Deadline)
	}
	want := []units.Time{50, 100, 300}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

func TestTakeOverEqualHeadsFIFOTieBreak(t *testing.T) {
	q := NewTakeOver(units.Kilobyte, false)
	a := pkt(100, 10)
	q.Push(a)            // L
	q.Push(pkt(300, 10)) // L
	b := pkt(100, 10)
	q.Push(b) // U: 100 < 300
	// Heads of L and U both have deadline 100; a arrived first.
	if h := q.Head(); h.ID != a.ID {
		t.Fatalf("tie-break chose %d, want earlier arrival %d", h.ID, a.ID)
	}
	q.Pop()
	if h := q.Head(); h.ID != b.ID {
		t.Fatalf("after pop, head = %d, want %d", h.ID, b.ID)
	}
}

// orderedQueueSorted checks Theorem 1: packets in L are in deadline order.
func orderedQueueSorted(q *TakeOverQueue) bool {
	prev := units.Time(-1 << 62)
	ok := true
	q.l.scan(func(p *packet.Packet) {
		if p.Deadline < prev {
			ok = false
		}
		prev = p.Deadline
	})
	return ok
}

// maxIsLTail checks Theorem 2: the max deadline across both queues is L's tail.
func maxIsLTail(q *TakeOverQueue) bool {
	if q.Len() == 0 {
		return true
	}
	tail := q.l.back()
	if tail == nil {
		return false // Lemma 1 violated
	}
	ok := true
	q.Scan(func(p *packet.Packet) {
		if p.Deadline > tail.Deadline {
			ok = false
		}
	})
	return ok
}
