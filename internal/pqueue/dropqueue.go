package pqueue

import (
	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

// Evictor is the optional Buffer extension implemented by bounded queues
// that may discard stored (or arriving) packets instead of panicking on
// overflow. The NIC discovers it by type assertion and installs the
// eviction callback so dropped packets stay accounted in the conservation
// invariant and statistics.
type Evictor interface {
	// SetOnEvict installs the callback invoked for every packet the queue
	// discards, after the packet has been removed from the queue (nil to
	// remove). The callback must not re-enter the queue.
	SetOnEvict(fn func(*packet.Packet))
	// Evicted returns how many packets and bytes the queue has discarded.
	Evicted() (packets uint64, bytes units.Size)
}

type dropEntry struct {
	p   *packet.Packet
	seq uint64 // arrival order: FIFO position and EDF/eviction tie-break
}

// DropQueue is a bounded packet buffer for best-effort traffic that sheds
// load instead of relying on upstream flow control: when a push would
// exceed the byte capacity it discards packets until the arrival fits.
//
// Two shedding rules are supported:
//
//   - value mode (tail=false): discard the packet with the lowest value
//     density (Value/Size) among the stored packets and the arrival, the
//     greedy bounded-queue rule from the weighted online packet-dropping
//     literature (Fei Li, arXiv 0807.2694). Ties evict the youngest
//     arrival, so an equal-value newcomer never displaces a stored packet.
//   - tail mode (tail=true): discard the arriving packet, the classic
//     tail-drop baseline.
//
// Head/Pop follow either stable EDF order (deadline, then arrival — for
// the deadline-aware architectures) or FIFO order, chosen at build time.
// The implementation is a flat slice with O(n) selection scans: the whole
// point of the queue is that n stays small (capacity / packet size), and
// a flat slice keeps eviction — which needs arbitrary removal, something
// the heap and take-over disciplines cannot do — trivially deterministic.
type DropQueue struct {
	base
	entries []dropEntry
	edf     bool
	tail    bool
	evicted uint64
	evBytes units.Size
	onEvict func(*packet.Packet)
}

// NewDropQueue returns an empty bounded queue of the given byte capacity.
// edf selects stable-EDF dequeue order, otherwise FIFO; tail selects the
// tail-drop shedding rule, otherwise value-density eviction.
func NewDropQueue(capacity units.Size, tail, edf bool) *DropQueue {
	return &DropQueue{base: base{capacity: capacity}, edf: edf, tail: tail}
}

// SetOnEvict installs the eviction callback.
func (d *DropQueue) SetOnEvict(fn func(*packet.Packet)) { d.onEvict = fn }

// Evicted returns the discarded packet and byte totals.
func (d *DropQueue) Evicted() (uint64, units.Size) { return d.evicted, d.evBytes }

// denserEq reports whether packet a has value density (Value/Size) greater
// than or equal to b's, by integer cross-multiplication so the comparison
// is exact and shard-independent.
func denserEq(a, b *packet.Packet) bool {
	return a.Value*int64(b.Size) >= b.Value*int64(a.Size)
}

// Push stores p, discarding packets per the shedding rule if it does not
// fit. Unlike the flow-controlled disciplines it never panics.
func (d *DropQueue) Push(p *packet.Packet) {
	for d.bytes+p.Size > d.capacity {
		if d.tail || len(d.entries) == 0 {
			// Tail drop, or an arrival larger than the whole queue.
			d.drop(p)
			return
		}
		// Lowest density among stored packets; ties keep the older one.
		victim := 0
		for i := 1; i < len(d.entries); i++ {
			if !denserEq(d.entries[i].p, d.entries[victim].p) {
				victim = i
			}
		}
		if denserEq(d.entries[victim].p, p) {
			// The arrival itself is the least dense (ties count against
			// it, the youngest): shed it, keep the queue.
			d.drop(p)
			return
		}
		d.removeAt(victim, true)
	}
	d.pushAccounting(p, "drop")
	d.entries = append(d.entries, dropEntry{p, d.arrivalSeq})
	d.arrivalSeq++
}

// drop sheds an arriving packet that was never stored.
func (d *DropQueue) drop(p *packet.Packet) {
	d.evicted++
	d.evBytes += p.Size
	if d.onEvict != nil {
		d.onEvict(p)
	}
}

// removeAt deletes entry i preserving arrival order. With evict set the
// packet counts as discarded and the callback fires.
func (d *DropQueue) removeAt(i int, evict bool) *packet.Packet {
	p := d.entries[i].p
	copy(d.entries[i:], d.entries[i+1:])
	d.entries[len(d.entries)-1] = dropEntry{}
	d.entries = d.entries[:len(d.entries)-1]
	if evict {
		d.bytes -= p.Size
		if d.tracker != nil {
			d.tracker.remove(p)
		}
		d.evicted++
		d.evBytes += p.Size
		if d.onEvict != nil {
			d.onEvict(p)
		}
	}
	return p
}

// headIndex returns the index Head/Pop would emit, or -1 when empty.
func (d *DropQueue) headIndex() int {
	if len(d.entries) == 0 {
		return -1
	}
	if !d.edf {
		return 0
	}
	best := 0
	for i := 1; i < len(d.entries); i++ {
		e, b := d.entries[i], d.entries[best]
		if e.p.Deadline < b.p.Deadline || (e.p.Deadline == b.p.Deadline && e.seq < b.seq) {
			best = i
		}
	}
	return best
}

// Head returns the next packet in dequeue order, or nil.
func (d *DropQueue) Head() *packet.Packet {
	i := d.headIndex()
	if i < 0 {
		return nil
	}
	return d.entries[i].p
}

// Pop removes and returns Head, or nil when empty.
func (d *DropQueue) Pop() *packet.Packet {
	i := d.headIndex()
	if i < 0 {
		return nil
	}
	p := d.removeAt(i, false)
	d.popAccounting(p)
	return p
}

// Len returns the number of stored packets.
func (d *DropQueue) Len() int { return len(d.entries) }

// Scan visits stored packets in arrival order.
func (d *DropQueue) Scan(fn func(*packet.Packet)) {
	for _, e := range d.entries {
		fn(e.p)
	}
}
