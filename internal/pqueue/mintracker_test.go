package pqueue

import (
	"testing"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

// naiveMin is the reference model for the lazy-deletion minTracker: a flat
// multiset whose minimum is recomputed from scratch on every query.
type naiveMin struct {
	entries []minEntry
}

func (n *naiveMin) add(p *packet.Packet) {
	n.entries = append(n.entries, minEntry{p.Deadline, p.ID})
}

func (n *naiveMin) remove(p *packet.Packet) {
	for i, e := range n.entries {
		if e.id == p.ID {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			return
		}
	}
	panic("naiveMin: removing an absent id")
}

func (n *naiveMin) min() units.Time {
	m := units.Infinity
	for _, e := range n.entries {
		if e.deadline < m {
			m = e.deadline
		}
	}
	return m
}

// driveTracker replays one op stream against both the tracker and the
// naive model. Each byte is one op: low bits choose add/remove/query, the
// deadline comes from a deterministic hash of the position. It returns
// early on malformed streams (nothing to remove).
func driveTracker(t *testing.T, ops []byte) {
	t.Helper()
	tr := newMinTracker()
	var ref naiveMin
	live := make([]*packet.Packet, 0, len(ops))
	var nextID uint64 = 1
	for i, op := range ops {
		switch {
		case op%4 != 0 || len(live) == 0: // add (3 in 4, or forced when empty)
			// A tight deadline range forces duplicate deadlines, the case
			// lazy deletion must disambiguate by id.
			p := &packet.Packet{ID: nextID, Deadline: units.Time(int(op)/4 + i%7)}
			nextID++
			tr.add(p)
			ref.add(p)
			live = append(live, p)
		default: // remove an arbitrary live packet
			idx := (int(op)/4 + i) % len(live)
			p := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			tr.remove(p)
			ref.remove(p)
		}
		if got, want := tr.min(), ref.min(); got != want {
			t.Fatalf("op %d: tracker min %v, naive min %v (%d live)", i, got, want, len(live))
		}
	}
	// Drain completely: the lazy heap must compact to empty.
	for _, p := range live {
		tr.remove(p)
		ref.remove(p)
	}
	if got := tr.min(); got != units.Infinity {
		t.Fatalf("drained tracker min %v, want Infinity", got)
	}
	if len(tr.entries) != 0 || len(tr.dead) != 0 {
		t.Fatalf("drained tracker retains %d entries / %d dead ids", len(tr.entries), len(tr.dead))
	}
}

// TestMinTrackerMatchesNaive runs deterministic pseudo-random op streams
// through driveTracker (the always-on arm of the fuzz property below).
func TestMinTrackerMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := seed * 0x9e3779b97f4a7c15
		ops := make([]byte, 600)
		for i := range ops {
			rng = rng*6364136223846793005 + 1442695040888963407
			ops[i] = byte(rng >> 56)
		}
		driveTracker(t, ops)
	}
}

// FuzzMinTracker lets the fuzzer search for op interleavings where lazy
// compaction and the naive recomputed minimum disagree.
func FuzzMinTracker(f *testing.F) {
	f.Add([]byte{1, 1, 1, 0, 0, 0})
	f.Add([]byte{5, 9, 13, 4, 8, 12, 1, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		driveTracker(t, ops)
	})
}
