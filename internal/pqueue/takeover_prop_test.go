package pqueue

// Property tests encoding the paper's appendix: the two-queue (ordered +
// take-over) system never delivers a single flow's packets out of order
// (Theorem 3), the ordered queue stays deadline-sorted (Theorem 1), the
// maximum deadline is always the ordered queue's tail (Theorem 2), and the
// take-over queue is never the only non-empty queue (Lemma 1).
//
// The random driver honours the appendix's initial hypotheses: packets of
// one flow arrive in sequence order with strictly increasing deadlines.
// Across flows, arrival interleaving and deadline overlap are arbitrary —
// exactly the regime where a plain FIFO commits order errors.

import (
	"testing"
	"testing/quick"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// takeoverScenario drives a TakeOverQueue with nFlows flows of nPkts packets
// each, randomly interleaving pushes and pops, verifying all appendix
// invariants after every operation. It returns false on any violation.
func takeoverScenario(t *testing.T, seed uint64, nFlows, nPkts int) bool {
	t.Helper()
	rng := xrand.New(seed)
	q := NewTakeOver(units.Megabyte, true)

	// Pre-generate each flow's packets with strictly increasing deadlines
	// (hypothesis (1)) and fix a global arrival interleaving that respects
	// per-flow order (hypothesis (2)).
	type cursor struct {
		pkts []*packet.Packet
		next int
	}
	flows := make([]*cursor, nFlows)
	for f := range flows {
		c := &cursor{}
		dl := units.Time(rng.UniformInt(0, 50))
		for s := 0; s < nPkts; s++ {
			dl += units.Time(rng.UniformInt(1, 40))
			c.pkts = append(c.pkts, flowPkt(packet.FlowID(f), uint64(s), dl))
		}
		flows[f] = c
	}

	lastDeparted := make(map[packet.FlowID]int64)
	for f := range flows {
		lastDeparted[packet.FlowID(f)] = -1
	}
	remaining := nFlows * nPkts

	check := func() bool {
		if q.u.len() > 0 && q.l.len() == 0 {
			t.Logf("seed %d: Lemma 1 violated", seed)
			return false
		}
		if !orderedQueueSorted(q) {
			t.Logf("seed %d: Theorem 1 violated (L not sorted)", seed)
			return false
		}
		if !maxIsLTail(q) {
			t.Logf("seed %d: Theorem 2 violated (max not at L tail)", seed)
			return false
		}
		return true
	}

	for remaining > 0 || q.Len() > 0 {
		doPush := remaining > 0 && (q.Len() == 0 || rng.Float64() < 0.55)
		if doPush {
			// Pick a random flow with packets left.
			f := rng.Intn(nFlows)
			for flows[f].next >= nPkts {
				f = (f + 1) % nFlows
			}
			c := flows[f]
			q.Push(c.pkts[c.next])
			c.next++
			remaining--
		} else {
			p := q.Pop()
			if p == nil {
				t.Logf("seed %d: Pop returned nil on non-empty queue", seed)
				return false
			}
			if int64(p.Seq) <= lastDeparted[p.Flow] {
				t.Logf("seed %d: Theorem 3 violated: flow %d seq %d departed after seq %d",
					seed, p.Flow, p.Seq, lastDeparted[p.Flow])
				return false
			}
			lastDeparted[p.Flow] = int64(p.Seq)
		}
		if !check() {
			return false
		}
	}
	return true
}

func TestTakeoverNoReorderSmall(t *testing.T) {
	prop := func(seed uint64) bool { return takeoverScenario(t, seed, 3, 8) }
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTakeoverNoReorderManyFlows(t *testing.T) {
	prop := func(seed uint64) bool { return takeoverScenario(t, seed, 12, 25) }
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTakeoverNoReorderSingleFlow(t *testing.T) {
	// Degenerate case: one flow can never take over itself (its deadlines
	// are increasing), so U must stay empty throughout.
	rng := xrand.New(99)
	q := NewTakeOver(units.Megabyte, false)
	dl := units.Time(0)
	for s := 0; s < 100; s++ {
		dl += units.Time(rng.UniformInt(1, 20))
		q.Push(flowPkt(1, uint64(s), dl))
		if q.ULen() != 0 {
			t.Fatal("single increasing-deadline flow diverted to take-over queue")
		}
	}
	var prev int64 = -1
	for q.Len() > 0 {
		p := q.Pop()
		if int64(p.Seq) <= prev {
			t.Fatal("single flow reordered")
		}
		prev = int64(p.Seq)
	}
}

func TestTakeoverMatchesHeapContent(t *testing.T) {
	// The two-queue system holds exactly the pushed multiset: nothing is
	// lost or duplicated under random interleaving.
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		q := NewTakeOver(units.Megabyte, false)
		pushed := make(map[uint64]bool)
		popped := make(map[uint64]bool)
		dl := map[int]units.Time{0: 0, 1: 0, 2: 0}
		seq := map[int]uint64{}
		for op := 0; op < 200; op++ {
			if q.Len() == 0 || rng.Float64() < 0.5 {
				f := rng.Intn(3)
				dl[f] += units.Time(rng.UniformInt(1, 30))
				p := flowPkt(packet.FlowID(f), seq[f], dl[f])
				seq[f]++
				pushed[p.ID] = true
				q.Push(p)
			} else {
				p := q.Pop()
				if p == nil || popped[p.ID] || !pushed[p.ID] {
					return false
				}
				popped[p.ID] = true
			}
		}
		for q.Len() > 0 {
			p := q.Pop()
			if p == nil || popped[p.ID] {
				return false
			}
			popped[p.ID] = true
		}
		return len(popped) == len(pushed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTakeoverReducesOrderErrorsVsFIFO(t *testing.T) {
	// The point of §3.4: under identical adversarial arrivals, the
	// two-queue buffer commits strictly fewer order errors than a FIFO.
	// (The heap commits zero by construction.)
	rng := xrand.New(4242)
	fifo := NewFIFO(units.Megabyte, true)
	tq := NewTakeOver(units.Megabyte, true)

	dl := map[int]units.Time{}
	seq := map[int]uint64{}
	var arrivals []*packet.Packet
	for i := 0; i < 2000; i++ {
		f := rng.Intn(8)
		dl[f] += units.Time(rng.UniformInt(1, 100))
		arrivals = append(arrivals, flowPkt(packet.FlowID(f), seq[f], dl[f]))
		seq[f]++
	}
	run := func(b Buffer) uint64 {
		i := 0
		r := xrand.New(7) // same pop pattern for both buffers
		for i < len(arrivals) || b.Len() > 0 {
			if i < len(arrivals) && (b.Len() == 0 || r.Float64() < 0.5) {
				// Both buffers see packet copies so deadline bookkeeping
				// cannot alias between them.
				cp := *arrivals[i]
				b.Push(&cp)
				i++
			} else {
				b.Pop()
			}
		}
		return b.OrderErrors()
	}
	fe, te := run(fifo), run(tq)
	if fe == 0 {
		t.Fatal("adversarial arrivals produced no FIFO order errors; scenario too weak")
	}
	if te >= fe {
		t.Fatalf("take-over queue did not reduce order errors: fifo=%d takeover=%d", fe, te)
	}
	t.Logf("order errors: fifo=%d takeover=%d (%.1f%% of fifo)", fe, te, 100*float64(te)/float64(fe))
}
