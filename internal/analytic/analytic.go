// Package analytic provides closed-form predictions for simple network
// conditions. They serve as golden models: in regimes where queueing
// vanishes the simulator must match them *exactly*, which anchors the
// whole timing model (links, crossbars, propagation) against regressions
// far more tightly than statistical assertions can.
package analytic

import (
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// UnloadedPacketLatency returns the exact end-to-end delivery latency of a
// single packet of the given wire size crossing an otherwise idle network:
//
//	injection link:   tx + prop
//	per switch:       crossbar transfer + output link tx + prop
//
// with store-and-forward at every stage (see internal/link). switchHops is
// the number of switches traversed.
func UnloadedPacketLatency(wire units.Size, switchHops int, linkBW, xbarBW units.Bandwidth, prop units.Time) units.Time {
	if xbarBW == 0 {
		xbarBW = linkBW
	}
	linkLeg := linkBW.TxTime(wire) + prop
	return units.Time(switchHops+1)*linkLeg + units.Time(switchHops)*xbarBW.TxTime(wire)
}

// UnloadedFrameLatency returns the exact latency of an application frame
// segmented into parts packets on an idle path: the pipeline fills for one
// packet and then drains one injection-link serialisation per remaining
// packet (the injection link is the bottleneck stage when all stages run
// at the same rate; lastWire is the final, possibly shorter, packet).
func UnloadedFrameLatency(fullWire, lastWire units.Size, parts, switchHops int,
	linkBW, xbarBW units.Bandwidth, prop units.Time) units.Time {
	if parts <= 1 {
		return UnloadedPacketLatency(lastWire, switchHops, linkBW, xbarBW, prop)
	}
	// The last packet enters the injection link after parts-1 full
	// serialisations and then crosses the idle network.
	return units.Time(parts-1)*linkBW.TxTime(fullWire) +
		UnloadedPacketLatency(lastWire, switchHops, linkBW, xbarBW, prop)
}

// SwitchHops returns the number of switches on the minimal path choice 0
// between two hosts.
func SwitchHops(topo topology.Topology, src, dst int) int {
	return len(topo.Path(src, dst, 0))
}

// BisectionBound returns an upper bound on the aggregate throughput (as a
// fraction of total host injection bandwidth) that uniformly distributed
// traffic can achieve on a folded Clos: min(1, spine capacity / demand
// crossing the leaves). With full bisection the bound is 1.
func BisectionBound(c *topology.FoldedClos) float64 {
	// Fraction of uniform traffic leaving its source leaf:
	crossing := 1.0 - float64(c.Down-1)/float64(c.Hosts()-1)
	uplinkCapacity := float64(c.Leaves * c.Up)
	demand := float64(c.Hosts()) * crossing
	if demand <= uplinkCapacity {
		return 1.0
	}
	return uplinkCapacity / demand
}
