package analytic

import (
	"testing"

	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

func TestUnloadedPacketLatencyFormula(t *testing.T) {
	// Matches the worked example verified against the switch model in
	// switchsim's TestDeliveryLatencyComponents: 256-byte packet, one
	// switch, 5-cycle propagation => 778 cycles.
	got := UnloadedPacketLatency(256, 1, 1, 0, 5)
	if got != 778 {
		t.Fatalf("UnloadedPacketLatency = %v, want 778", got)
	}
	// Three-hop Clos path at 20ns prop: 4 link legs + 3 crossbars.
	got = UnloadedPacketLatency(2048, 3, 1, 0, 20)
	want := units.Time(4*(2048+20) + 3*2048)
	if got != want {
		t.Fatalf("3-hop latency = %v, want %v", got, want)
	}
}

func TestUnloadedFrameLatency(t *testing.T) {
	// Single packet: identical to the packet formula.
	if UnloadedFrameLatency(2048, 500, 1, 2, 1, 0, 10) != UnloadedPacketLatency(500, 2, 1, 0, 10) {
		t.Fatal("1-part frame mismatch")
	}
	// Multi-part: pipeline drain dominates by (parts-1) serialisations.
	got := UnloadedFrameLatency(2048, 2048, 10, 1, 1, 0, 5)
	want := units.Time(9*2048) + UnloadedPacketLatency(2048, 1, 1, 0, 5)
	if got != want {
		t.Fatalf("10-part frame = %v, want %v", got, want)
	}
}

func TestSwitchHops(t *testing.T) {
	clos := topology.PaperMIN()
	if h := SwitchHops(clos, 0, 1); h != 1 {
		t.Fatalf("same-leaf hops = %d, want 1", h)
	}
	if h := SwitchHops(clos, 0, 127); h != 3 {
		t.Fatalf("cross-leaf hops = %d, want 3", h)
	}
}

func TestBisectionBound(t *testing.T) {
	// The paper MIN has full bisection.
	if b := BisectionBound(topology.PaperMIN()); b != 1.0 {
		t.Fatalf("paper MIN bound = %v, want 1", b)
	}
	// A 2:1 oversubscribed Clos: 4 leaves x 4 down, only 2 up.
	over, err := topology.NewFoldedClos(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := BisectionBound(over)
	if b >= 1.0 || b <= 0.4 {
		t.Fatalf("oversubscribed bound = %v, want in (0.4, 1)", b)
	}
}
