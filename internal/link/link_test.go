package link

import (
	"testing"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
)

type sink struct {
	got   []*packet.Packet
	times []units.Time
	eng   *sim.Engine
}

func (s *sink) Receive(p *packet.Packet) {
	s.got = append(s.got, p)
	s.times = append(s.times, s.eng.Now())
}

func pkt(id uint64, cl packet.Class, size units.Size) *packet.Packet {
	return &packet.Packet{ID: id, Class: cl, VC: packet.VCOf(cl), Size: size}
}

func TestSendTiming(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 20, 8*units.Kilobyte, s) // 1 B/cycle, 20-cycle prop
	eng.At(100, func() { l.Send(pkt(1, packet.Control, 256)) })
	eng.Drain()
	if len(s.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(s.got))
	}
	// 100 (start) + 256 (serialisation) + 20 (propagation) = 376.
	if s.times[0] != 376 {
		t.Fatalf("delivery at %v, want 376", s.times[0])
	}
}

func TestLinkBusyDuringSerialisation(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 0, 8*units.Kilobyte, s)
	eng.At(0, func() {
		l.Send(pkt(1, packet.Control, 100))
		if l.Idle() {
			t.Error("link idle immediately after Send")
		}
	})
	eng.At(99, func() {
		if l.Idle() {
			t.Error("link idle one cycle before serialisation ends")
		}
	})
	eng.At(100, func() {
		if !l.Idle() {
			t.Error("link not idle after serialisation")
		}
	})
	eng.Drain()
}

func TestCreditsDecrementAndBlock(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 0, 300, s) // tiny buffer: 300 bytes per VC
	eng.At(0, func() {
		p := pkt(1, packet.Control, 200)
		if !l.CanSend(p) {
			t.Error("CanSend false with full credits")
		}
		l.Send(p)
		if l.Credits(packet.VCRegulated) != 100 {
			t.Errorf("credits = %v, want 100", l.Credits(packet.VCRegulated))
		}
	})
	eng.At(500, func() {
		// Link is idle but only 100 credits remain: a 200-byte packet
		// must be blocked, a 100-byte one may pass.
		if l.CanSend(pkt(2, packet.Control, 200)) {
			t.Error("CanSend true beyond credits")
		}
		if !l.CanSend(pkt(3, packet.Control, 100)) {
			t.Error("CanSend false within credits")
		}
	})
	eng.Drain()
}

func TestCreditsArePerVC(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 0, 300, s)
	eng.At(0, func() { l.Send(pkt(1, packet.Control, 300)) })
	eng.At(400, func() {
		// Regulated VC exhausted; best-effort VC must be unaffected.
		if l.CanSend(pkt(2, packet.Multimedia, 100)) {
			t.Error("regulated VC credits not exhausted")
		}
		if !l.CanSend(pkt(3, packet.BestEffort, 100)) {
			t.Error("best-effort VC wrongly blocked")
		}
	})
	eng.Drain()
}

func TestReturnCreditsDelayed(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 50, 300, s)
	eng.At(0, func() { l.Send(pkt(1, packet.Control, 300)) })
	eng.At(1000, func() { l.ReturnCredits(packet.VCRegulated, 300) })
	eng.At(1049, func() {
		if l.Credits(packet.VCRegulated) != 0 {
			t.Error("credits returned before reverse propagation delay")
		}
	})
	eng.At(1051, func() {
		if l.Credits(packet.VCRegulated) != 300 {
			t.Errorf("credits = %v after return, want 300", l.Credits(packet.VCRegulated))
		}
	})
	eng.Drain()
}

func TestOnReadyFiresOnIdleAndCredits(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 10, units.Kilobyte, s)
	ready := 0
	l.OnReady = func() { ready++ }
	eng.At(0, func() { l.Send(pkt(1, packet.Control, 100)) })
	eng.At(500, func() { l.ReturnCredits(packet.VCRegulated, 100) })
	eng.Drain()
	if ready != 2 {
		t.Fatalf("OnReady fired %d times, want 2 (idle + credit return)", ready)
	}
}

func TestSendWithoutCreditsPanics(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 0, 50, s)
	defer func() {
		if recover() == nil {
			t.Fatal("Send beyond credits did not panic")
		}
	}()
	eng.At(0, func() { l.Send(pkt(1, packet.Control, 100)) })
	eng.Drain()
}

func TestHalfRateLink(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 0.5, 0, units.Kilobyte, s) // 4 Gb/s
	eng.At(0, func() { l.Send(pkt(1, packet.Control, 100)) })
	eng.Drain()
	if s.times[0] != 200 {
		t.Fatalf("half-rate delivery at %v, want 200", s.times[0])
	}
}

func TestSentCounters(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 0, units.Kilobyte, s)
	eng.At(0, func() { l.Send(pkt(1, packet.Control, 100)) })
	eng.At(200, func() { l.Send(pkt(2, packet.BestEffort, 50)) })
	eng.Drain()
	n, b := l.Sent()
	if n != 2 || b != 150 {
		t.Fatalf("Sent() = %d,%v; want 2,150", n, b)
	}
}

func TestFlapLosesInFlightAndRestoresCredits(t *testing.T) {
	// A packet in flight when the link goes down is lost, and a packet
	// transmitted while the link is down is lost too: the receiver never
	// sees either, OnDrop observes them, and their credits return to the
	// sender at the would-be arrival times — flow control balances
	// exactly, and a down link never refuses transmission (refusing would
	// head-of-line-block the upstream queue for the outage's duration).
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 50, 300, s)
	var dropped []*packet.Packet
	l.OnDrop = func(p *packet.Packet) { dropped = append(dropped, p) }
	eng.At(0, func() { l.Send(pkt(1, packet.Control, 200)) })
	// Serialisation ends at 200, arrival would be 250: flap at 210.
	eng.At(210, func() {
		if !l.SetDown(true) {
			t.Error("SetDown(true) reported no change")
		}
		p := pkt(2, packet.Control, 50)
		if !l.CanSend(p) {
			t.Fatal("CanSend false on a down link (must transmit into the void, not block)")
		}
		// Transmitted onto the dead cable: serialises 210..260, would-be
		// arrival 310, lost there with its credits restored.
		l.Send(p)
	})
	eng.At(240, func() {
		if got := l.Credits(packet.VCRegulated); got != 50 {
			t.Errorf("credits %v before any would-be arrival, want 50", got)
		}
	})
	eng.At(260, func() {
		if got := l.Credits(packet.VCRegulated); got != 250 {
			t.Errorf("credits %v after in-flight loss accounting, want 250", got)
		}
		if l.InFlight() != 1 {
			t.Errorf("in-flight %d with packet 2 on the dead wire, want 1", l.InFlight())
		}
	})
	eng.At(320, func() {
		if got := l.Credits(packet.VCRegulated); got != 300 {
			t.Errorf("credits %v after all loss accounting, want 300 (restored)", got)
		}
		if l.InFlight() != 0 {
			t.Errorf("in-flight %d after losses, want 0", l.InFlight())
		}
	})
	eng.Drain()
	if len(s.got) != 0 {
		t.Fatalf("down link delivered %d packets", len(s.got))
	}
	if len(dropped) != 2 || dropped[0].ID != 1 || dropped[1].ID != 2 {
		t.Fatalf("OnDrop saw %v, want packets 1 and 2", dropped)
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", l.Dropped())
	}
}

func TestFlapRecoveryResumesTraffic(t *testing.T) {
	// Credits returned by the downstream keep flowing while the link is
	// down (out-of-band control channel), recovery fires OnReady, and a
	// sender re-arbitrating from OnReady resumes cleanly — the credit
	// accounting across the whole flap cycle ends balanced.
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 10, 300, s)
	var backlog []*packet.Packet
	l.OnReady = func() {
		for len(backlog) > 0 && l.CanSend(backlog[0]) {
			p := backlog[0]
			backlog = backlog[1:]
			l.Send(p)
		}
	}
	eng.At(0, func() { l.Send(pkt(1, packet.Control, 300)) })
	// Delivered at 310; downstream drains and returns credits at 400
	// while the link is down.
	eng.At(350, func() { l.SetDown(true) })
	eng.At(400, func() { l.ReturnCredits(packet.VCRegulated, 300) })
	eng.At(420, func() {
		if got := l.Credits(packet.VCRegulated); got != 300 {
			t.Errorf("credits %v while down, want 300 (returns are out-of-band)", got)
		}
		// A sender retrying while the link is down transmits into the
		// void: the packet serialises 420..520, is lost at the would-be
		// arrival 530, and its credits come back.
		backlog = append(backlog, pkt(2, packet.Control, 100))
		l.OnReady()
		if len(backlog) != 0 {
			t.Error("packet refused while link down (down links must keep draining)")
		}
	})
	eng.At(500, func() {
		if !l.SetDown(false) {
			t.Error("SetDown(false) reported no change")
		}
	})
	eng.At(540, func() {
		if got := l.Credits(packet.VCRegulated); got != 300 {
			t.Errorf("credits %v after void-send loss accounting, want 300", got)
		}
		if l.Dropped() != 1 {
			t.Errorf("Dropped() = %d after void send, want 1", l.Dropped())
		}
		// The recovered link carries traffic again: send 540..640, +10.
		backlog = append(backlog, pkt(3, packet.Control, 100))
		l.OnReady()
	})
	eng.Drain()
	if len(s.got) != 2 {
		t.Fatalf("delivered %d packets, want 2 (recovery resumed traffic)", len(s.got))
	}
	if s.times[1] != 650 {
		t.Fatalf("post-recovery delivery at %v, want 650", s.times[1])
	}
	if got := l.Credits(packet.VCRegulated); got != 200 {
		t.Fatalf("credits %v after recovery send, want 200", got)
	}
}

func TestDoubleDownUpAreNoOps(t *testing.T) {
	eng := sim.New()
	l := New(eng, 1, 0, 300, &sink{eng: eng})
	if l.SetDown(false) {
		t.Error("SetDown(false) on an up link reported a change")
	}
	if !l.SetDown(true) || l.SetDown(true) {
		t.Error("down transition change-reporting wrong")
	}
	if !l.SetDown(false) || l.SetDown(false) {
		t.Error("up transition change-reporting wrong")
	}
}

func TestDerateChangesTiming(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 0, units.Kilobyte, s)
	eng.At(0, func() {
		if !l.Derate(0.5) {
			t.Error("Derate(0.5) reported no change")
		}
		if l.Derate(0.5) {
			t.Error("repeated Derate(0.5) reported a change")
		}
		l.Send(pkt(1, packet.Control, 100))
	})
	eng.At(300, func() {
		l.Derate(1)
		l.Send(pkt(2, packet.Control, 100))
	})
	eng.Drain()
	if s.times[0] != 200 {
		t.Fatalf("derated delivery at %v, want 200", s.times[0])
	}
	if s.times[1] != 400 {
		t.Fatalf("restored delivery at %v, want 400", s.times[1])
	}
}

func TestCreditLeakPanics(t *testing.T) {
	eng := sim.New()
	l := New(eng, 1, 0, 300, &sink{eng: eng})
	defer func() {
		if recover() == nil {
			t.Fatal("over-returning credits did not panic")
		}
	}()
	eng.At(0, func() { l.ReturnCredits(packet.VCRegulated, 100) })
	eng.Drain()
}

func TestBackToBackPackets(t *testing.T) {
	// Two packets sent as soon as the link frees must arrive exactly one
	// serialisation apart.
	eng := sim.New()
	s := &sink{eng: eng}
	l := New(eng, 1, 30, units.Kilobyte, s)
	second := pkt(2, packet.Control, 100)
	l.OnReady = func() {
		if l.CanSend(second) && second.Hop == 0 {
			second.Hop = -1 // mark sent (abuse of field local to this test)
			l.Send(second)
		}
	}
	eng.At(0, func() { l.Send(pkt(1, packet.Control, 100)) })
	eng.Drain()
	if len(s.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(s.got))
	}
	if s.times[1]-s.times[0] != 100 {
		t.Fatalf("inter-arrival %v, want 100 (one serialisation)", s.times[1]-s.times[0])
	}
}
