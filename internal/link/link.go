// Package link models the point-to-point network links: serialisation at
// the link bandwidth, propagation delay, and credit-based flow control.
//
// High-performance interconnects never drop packets: a sender may only
// transmit when the downstream input buffer has guaranteed space, tracked
// through per-VC credits (§2.2). A Link is directed; a bidirectional cable
// is modelled as two Links. Credits are returned by the downstream element
// as its input buffer drains and travel back with the same propagation
// delay as data.
//
// Transfers are store-and-forward at packet granularity: the receiving
// element sees the packet once its last byte has arrived. This adds one
// serialisation delay per hop compared to the virtual cut-through some
// hardware implements, a constant offset that does not change any of the
// paper's comparisons (all four architectures pay it equally).
package link

import (
	"fmt"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
)

// Receiver consumes packets at the downstream end of a link.
type Receiver interface {
	// Receive is called when the last byte of p has arrived.
	Receive(p *packet.Packet)
}

// Link is a directed link with credit-based flow control. The upstream
// element calls CanSend/Send; the downstream element calls ReturnCredits
// as its input buffers drain.
type Link struct {
	eng  *sim.Engine
	bw   units.Bandwidth
	prop units.Time
	dst  Receiver

	busyUntil units.Time
	credits   [packet.NumVCs]units.Size

	// OnReady is invoked (possibly repeatedly) whenever transmission
	// capacity appears: the link went idle or credits were returned.
	// The upstream scheduler re-arbitrates in response.
	OnReady func()

	sent     uint64
	sentSize units.Size
}

// New returns a link into dst with the given bandwidth, propagation delay,
// and per-VC initial credits (the downstream input buffer capacity).
func New(eng *sim.Engine, bw units.Bandwidth, prop units.Time, creditsPerVC units.Size, dst Receiver) *Link {
	l := &Link{eng: eng, bw: bw, prop: prop, dst: dst}
	for v := range l.credits {
		l.credits[v] = creditsPerVC
	}
	return l
}

// Idle reports whether the link can start a new serialisation now.
func (l *Link) Idle() bool { return l.eng.Now() >= l.busyUntil }

// TxTime returns how long serialising p on this link takes. Senders use it
// to stamp the TTD header field as of the moment the last byte leaves (see
// packet.PackTTD): stamping at transmission start would inflate every
// reconstructed deadline by the size-dependent serialisation time, which
// breaks the within-flow deadline monotonicity the appendix's theorems
// (and hence in-order delivery) rest on.
func (l *Link) TxTime(p *packet.Packet) units.Time { return l.bw.TxTime(p.Size) }

// Credits returns the available credit bytes for vc.
func (l *Link) Credits(vc packet.VC) units.Size { return l.credits[vc] }

// CanSend reports whether p can be transmitted right now: the link is idle
// and the downstream buffer for p's VC has room. Per the paper's appendix,
// callers must only ever test the single packet their dequeue discipline
// designates — never "some other packet that happens to fit".
func (l *Link) CanSend(p *packet.Packet) bool {
	return l.Idle() && l.credits[p.VC] >= p.Size
}

// Send transmits p. It panics if CanSend is false: the caller's
// arbitration logic must have checked.
func (l *Link) Send(p *packet.Packet) {
	if !l.CanSend(p) {
		panic(fmt.Sprintf("link: Send without CanSend (idle=%v credits=%v pkt=%v)",
			l.Idle(), l.credits[p.VC], p))
	}
	l.credits[p.VC] -= p.Size
	tx := l.bw.TxTime(p.Size)
	l.busyUntil = l.eng.Now() + tx
	l.sent++
	l.sentSize += p.Size
	// The link frees after serialisation; the packet lands prop later.
	l.eng.After(tx, func() {
		if l.OnReady != nil {
			l.OnReady()
		}
	})
	l.eng.After(tx+l.prop, func() { l.dst.Receive(p) })
}

// ReturnCredits is called by the downstream element when size bytes of its
// vc input buffer drain. The credit update reaches the sender after the
// reverse propagation delay.
func (l *Link) ReturnCredits(vc packet.VC, size units.Size) {
	l.eng.After(l.prop, func() {
		l.credits[vc] += size
		if l.OnReady != nil {
			l.OnReady()
		}
	})
}

// Sent returns the packet and byte counts transmitted so far.
func (l *Link) Sent() (packets uint64, bytes units.Size) { return l.sent, l.sentSize }
