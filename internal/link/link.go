// Package link models the point-to-point network links: serialisation at
// the link bandwidth, propagation delay, and credit-based flow control.
//
// High-performance interconnects never drop packets: a sender may only
// transmit when the downstream input buffer has guaranteed space, tracked
// through per-VC credits (§2.2). A Link is directed; a bidirectional cable
// is modelled as two Links. Credits are returned by the downstream element
// as its input buffer drains and travel back with the same propagation
// delay as data.
//
// Transfers are store-and-forward at packet granularity: the receiving
// element sees the packet once its last byte has arrived. This adds one
// serialisation delay per hop compared to the virtual cut-through some
// hardware implements, a constant offset that does not change any of the
// paper's comparisons (all four architectures pay it equally).
//
// Fault model (see internal/faults): a link can go down, be derated to
// a fraction of its nominal bandwidth, and corrupt packets in flight
// according to a per-link bit-error rate. A down link loses traffic the
// way a dead cable does: packets in flight at the transition are lost,
// and packets transmitted while down serialise normally but are
// discarded at the would-be arrival instant, with the credits they held
// restored to the sender in both cases (the downstream buffer never
// sees them). Crucially a down link never refuses transmission —
// refusing would let sustained traffic toward a dead destination
// head-of-line-block the upstream queues and, through credit
// backpressure, wedge the same VC across the whole fabric for the
// duration of the outage. Credit returns model an out-of-band control
// channel and keep working while the data path is down — flow-control
// state must survive a flap without leaking in either direction.
package link

import (
	"fmt"
	"math"

	"deadlineqos/internal/metrics"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// Metrics bundles the link-level instruments of the metrics plane. All
// fields are optional: the zero value disables everything, and every
// instrument method is nil-safe, so the recording sites need no guards.
type Metrics struct {
	TxPackets *metrics.Counter // packets transmitted
	TxBytes   *metrics.Counter // bytes transmitted
	Dropped   *metrics.Counter // packets lost in flight to link-downs
	Corrupted *metrics.Counter // packets marked by the bit-error process
}

// Receiver consumes packets at the downstream end of a link.
type Receiver interface {
	// Receive is called when the last byte of p has arrived.
	Receive(p *packet.Packet)
}

// CreditReturner is what a downstream element holds to return credits to
// its upstream link as its input buffer drains. For an intra-shard link it
// is the *Link itself; for a link whose endpoints live on different parsim
// shards the network substitutes a portal that relays the credit update to
// the sender's engine with the same propagation delay and ordering
// channel, so both cases execute the identical event sequence.
type CreditReturner interface {
	ReturnCredits(vc packet.VC, size units.Size)
}

// Link is a directed link with credit-based flow control. The upstream
// element calls CanSend/Send; the downstream element calls ReturnCredits
// as its input buffers drain.
type Link struct {
	eng     *sim.Engine
	bw      units.Bandwidth
	nominal units.Bandwidth // construction bandwidth, the derating baseline
	prop    units.Time
	dst     Receiver

	busyUntil units.Time
	credits   [packet.NumVCs]units.Size
	capacity  units.Size // initial per-VC credits (credit-leak ceiling)

	// Ordering channels (see sim.Engine.AtChannel). The network layer
	// assigns every link a globally unique pair in construction order so
	// that same-cycle arrival and credit events sort identically on one
	// engine and across parsim shard engines. Zero (the default) keeps the
	// plain FIFO tie-break for directly built test links.
	pktCh    uint32
	creditCh uint32

	// Remote delivery (parsim cross-shard mode). When remoteDeliver is
	// non-nil the downstream element lives on another shard: arrivals are
	// relayed through it instead of being scheduled on the local engine,
	// and loss across link-down flaps is decided by the statically
	// precomputed lostBetween predicate (the receiver's shard cannot
	// observe this link's downEpoch). The local engine still runs the
	// sender-side bookkeeping event at the arrival instant and asserts
	// that the static decision matches the dynamic epoch state.
	remoteDeliver func(at units.Time, p *packet.Packet)
	lostBetween   func(sent, arrive units.Time) bool

	// OnReady is invoked (possibly repeatedly) whenever transmission
	// capacity appears: the link went idle, credits were returned, or a
	// downed link recovered. The upstream scheduler re-arbitrates in
	// response.
	OnReady func()

	// Fault state (see internal/faults). downEpoch increments on every
	// down transition; a packet is lost if it was transmitted while the
	// link was down, or if its send-time epoch differs at arrival (it was
	// in flight across a flap).
	down      bool
	downEpoch uint64
	ber       float64
	berRng    *xrand.Rand
	inFlight  uint64

	// OnDrop observes packets lost in flight to a link-down; OnCorrupt
	// observes packets marked corrupted by the bit-error process. Either
	// may be nil.
	OnDrop    func(p *packet.Packet)
	OnCorrupt func(p *packet.Packet)

	sent      uint64
	sentSize  units.Size
	dropped   uint64
	corrupted uint64
	busyAccum units.Time // cumulative serialisation time, for utilization probes

	mtr Metrics
}

// New returns a link into dst with the given bandwidth, propagation delay,
// and per-VC initial credits (the downstream input buffer capacity).
func New(eng *sim.Engine, bw units.Bandwidth, prop units.Time, creditsPerVC units.Size, dst Receiver) *Link {
	l := &Link{eng: eng, bw: bw, nominal: bw, prop: prop, dst: dst, capacity: creditsPerVC}
	for v := range l.credits {
		l.credits[v] = creditsPerVC
	}
	return l
}

// Idle reports whether the link can start a new serialisation now.
func (l *Link) Idle() bool { return l.eng.Now() >= l.busyUntil }

// TxTime returns how long serialising p on this link takes. Senders use it
// to stamp the TTD header field as of the moment the last byte leaves (see
// packet.PackTTD): stamping at transmission start would inflate every
// reconstructed deadline by the size-dependent serialisation time, which
// breaks the within-flow deadline monotonicity the appendix's theorems
// (and hence in-order delivery) rest on.
func (l *Link) TxTime(p *packet.Packet) units.Time { return l.bw.TxTime(p.Size) }

// Credits returns the available credit bytes for vc.
func (l *Link) Credits(vc packet.VC) units.Size { return l.credits[vc] }

// CanSend reports whether p can be transmitted right now: the link is
// idle and the downstream buffer for p's VC has room. A down link still
// accepts transmissions — they are discarded at the would-be arrival
// (see the package fault-model notes). Per the paper's appendix, callers
// must only ever test the single packet their dequeue discipline
// designates — never "some other packet that happens to fit".
func (l *Link) CanSend(p *packet.Packet) bool {
	return l.Idle() && l.credits[p.VC] >= p.Size
}

// Send transmits p. It panics if CanSend is false: the caller's
// arbitration logic must have checked.
func (l *Link) Send(p *packet.Packet) {
	if !l.CanSend(p) {
		panic(fmt.Sprintf("link: Send without CanSend (down=%v idle=%v credits=%v pkt=%v)",
			l.down, l.Idle(), l.credits[p.VC], p))
	}
	l.credits[p.VC] -= p.Size
	tx := l.bw.TxTime(p.Size)
	l.busyUntil = l.eng.Now() + tx
	l.sent++
	l.sentSize += p.Size
	l.busyAccum += tx
	l.mtr.TxPackets.Inc()
	l.mtr.TxBytes.Add(uint64(p.Size))
	if l.ber > 0 && l.berRng.Float64() < CorruptionProb(l.ber, p.Size) && !p.Corrupted {
		p.Corrupted = true
		l.corrupted++
		l.mtr.Corrupted.Inc()
		if l.OnCorrupt != nil {
			l.OnCorrupt(p)
		}
	}
	// The link frees after serialisation; the packet lands prop later.
	l.eng.After(tx, func() {
		if l.OnReady != nil {
			l.OnReady()
		}
	})
	sentDown := l.down
	epoch := l.downEpoch
	l.inFlight++
	arrive := l.eng.Now() + tx + l.prop

	if l.remoteDeliver != nil {
		// Cross-shard link: decide loss now from the static fault
		// timeline, hand the packet to the receiver's shard if it
		// survives, and keep the sender-side bookkeeping local.
		lost := sentDown || (l.lostBetween != nil && l.lostBetween(l.eng.Now(), arrive))
		if !lost {
			l.remoteDeliver(arrive, p)
		}
		l.eng.AtChannel(arrive, l.pktCh, func() {
			l.inFlight--
			if (sentDown || epoch != l.downEpoch) != lost {
				panic(fmt.Sprintf("link: static loss predicate %v disagrees with epoch state at %v",
					lost, l.eng.Now()))
			}
			if lost {
				l.dropped++
				l.mtr.Dropped.Inc()
				l.addCredits(p.VC, p.Size)
				if l.OnDrop != nil {
					l.OnDrop(p)
				}
				if l.OnReady != nil {
					l.OnReady()
				}
			}
		})
		return
	}

	l.eng.AtChannel(arrive, l.pktCh, func() {
		l.inFlight--
		if sentDown || epoch != l.downEpoch {
			// p was transmitted onto a down link, or the link flapped
			// while it was in flight: either way the packet is lost.
			// The downstream buffer never sees it, so the credits it held
			// are restored to the sender — flow control must balance
			// exactly across the flap.
			l.dropped++
			l.mtr.Dropped.Inc()
			l.addCredits(p.VC, p.Size)
			if l.OnDrop != nil {
				l.OnDrop(p)
			}
			if l.OnReady != nil {
				l.OnReady()
			}
			return
		}
		l.dst.Receive(p)
	})
}

// addCredits restores credits with the leak guard: credits above the
// construction capacity mean a double restore somewhere — a flow-control
// bug as fatal as a buffer overflow.
func (l *Link) addCredits(vc packet.VC, size units.Size) {
	l.credits[vc] += size
	if l.credits[vc] > l.capacity {
		panic(fmt.Sprintf("link: %v credits %v exceed capacity %v: credit leak",
			vc, l.credits[vc], l.capacity))
	}
}

// ReturnCredits is called by the downstream element when size bytes of its
// vc input buffer drain. The credit update reaches the sender after the
// reverse propagation delay. Credit returns model an out-of-band control
// channel: they keep flowing while the data path is down.
func (l *Link) ReturnCredits(vc packet.VC, size units.Size) {
	l.eng.AtChannel(l.eng.Now()+l.prop, l.creditCh, func() {
		l.ApplyCredits(vc, size)
	})
}

// ApplyCredits restores credits immediately and re-fires OnReady. It is
// the landing half of ReturnCredits, exported so a parsim credit portal
// can apply a relayed cross-shard credit update on the sender's engine.
func (l *Link) ApplyCredits(vc packet.VC, size units.Size) {
	l.addCredits(vc, size)
	if l.OnReady != nil {
		l.OnReady()
	}
}

// SetChannels assigns the link's ordering channels for arrival (pkt) and
// credit-return (credit) events. The network layer calls it once, right
// after construction, with globally unique ids; see sim.Engine.AtChannel.
func (l *Link) SetChannels(pkt, credit uint32) {
	l.pktCh = pkt
	l.creditCh = credit
}

// Channels returns the ordering channel pair assigned by SetChannels.
func (l *Link) Channels() (pkt, credit uint32) { return l.pktCh, l.creditCh }

// SetMetrics installs the link's metric instruments (the zero Metrics
// disables them). The network layer calls it once after construction,
// handing every link of a shard handles from that shard's metrics set.
func (l *Link) SetMetrics(m Metrics) { l.mtr = m }

// Prop returns the link's propagation delay (the parsim lookahead floor).
func (l *Link) Prop() units.Time { return l.prop }

// SetRemote puts the link in cross-shard delivery mode: arrivals are
// relayed through deliver (which must schedule dst.Receive on the
// receiver shard's engine at the given instant on this link's packet
// channel), and in-flight loss across down transitions is decided by the
// static predicate lost (nil means the link never goes down). See Send.
func (l *Link) SetRemote(deliver func(at units.Time, p *packet.Packet), lost func(sent, arrive units.Time) bool) {
	l.remoteDeliver = deliver
	l.lostBetween = lost
}

// SetDown transitions the link's up/down state and reports whether the
// state changed. Taking the link down loses every packet currently in
// flight and every packet transmitted before the link comes back up
// (their credits are restored as their would-be arrival events fire);
// bringing it up re-fires OnReady so any stalled arbitration resumes.
func (l *Link) SetDown(down bool) bool {
	if l.down == down {
		return false
	}
	l.down = down
	if down {
		l.downEpoch++
		return true
	}
	if l.OnReady != nil {
		l.OnReady()
	}
	return true
}

// Down reports whether the link is currently down.
func (l *Link) Down() bool { return l.down }

// Derate sets the link bandwidth to scale x the construction bandwidth
// (scale 1 restores nominal). It reports whether the bandwidth changed.
// In-progress serialisations keep their original timing; only future
// sends see the new rate.
func (l *Link) Derate(scale float64) bool {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("link: derate scale %v out of (0,1]", scale))
	}
	bw := units.Bandwidth(float64(l.nominal) * scale)
	if bw == l.bw {
		return false
	}
	l.bw = bw
	return true
}

// SetBER sets the link's bit-error rate and the deterministic stream that
// draws corruption. ber 0 disables the process.
func (l *Link) SetBER(ber float64, rng *xrand.Rand) {
	if ber < 0 || ber >= 1 {
		panic(fmt.Sprintf("link: BER %v out of [0,1)", ber))
	}
	l.ber = ber
	l.berRng = rng
}

// CorruptionProb returns the probability that a packet of the given wire
// size is corrupted on a link with the given bit-error rate:
// 1 - (1-ber)^bits.
func CorruptionProb(ber float64, size units.Size) float64 {
	if ber <= 0 {
		return 0
	}
	return -math.Expm1(float64(8*size) * math.Log1p(-ber))
}

// InFlight returns the number of packets currently on the wire (sent, not
// yet arrived or lost) — part of the conservation accounting at stop.
func (l *Link) InFlight() uint64 { return l.inFlight }

// Dropped returns the number of packets lost in flight to link-downs.
func (l *Link) Dropped() uint64 { return l.dropped }

// Corrupted returns the number of packets the bit-error process marked.
func (l *Link) Corrupted() uint64 { return l.corrupted }

// Sent returns the packet and byte counts transmitted so far.
func (l *Link) Sent() (packets uint64, bytes units.Size) { return l.sent, l.sentSize }

// TxBusyTime returns the cumulative time spent serialising packets. The
// telemetry probes difference it across an interval to compute link
// utilization (serialisation time is charged at Send, so a probe landing
// mid-serialisation attributes the whole packet to that interval).
func (l *Link) TxBusyTime() units.Time { return l.busyAccum }
