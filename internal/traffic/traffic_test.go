package traffic

import (
	"math"
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/link"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// genRig provides a host whose generated packets are recorded and whose
// injection link drains into a credit-returning sink.
type genRig struct {
	eng  *sim.Engine
	host *hostif.Host
	gen  []*packet.Packet
}

type drainSink struct {
	eng *sim.Engine
	l   *link.Link
}

func (d *drainSink) Receive(p *packet.Packet) {
	d.l.ReturnCredits(packet.VCOf(p.Class), p.Size)
}

func newGenRig(t *testing.T) *genRig {
	t.Helper()
	eng := sim.New()
	r := &genRig{eng: eng}
	h := hostif.New(hostif.Config{
		Eng:   eng,
		Clock: packet.Clock{Base: eng.Now},
		Arch:  arch.Simple2VC,
		MTU:   2 * units.Kilobyte,
		IDs:   &hostif.IDSource{},
		Hooks: hostif.Hooks{
			Generated: func(p *packet.Packet) { cp := *p; r.gen = append(r.gen, &cp) },
		},
	})
	sink := &drainSink{eng: eng}
	l := link.New(eng, 1, 10, 64*units.Kilobyte, sink)
	sink.l = l
	h.ConnectOut(l)
	r.host = h
	return r
}

func (r *genRig) addFlows(cl packet.Class, n int) []packet.FlowID {
	var ids []packet.FlowID
	for i := 0; i < n; i++ {
		id := packet.FlowID(int(cl)*1000 + i + 1)
		r.host.AddFlow(&hostif.Flow{ID: id, Class: cl, Src: 0, Dst: i + 1,
			Route: []int{0}, Mode: hostif.ByBandwidth, BW: 1})
		ids = append(ids, id)
	}
	return ids
}

func (r *genRig) genBytes() units.Size {
	var total units.Size
	for _, p := range r.gen {
		total += p.Size - packet.HeaderSize
	}
	return total
}

func TestControlRateAndSizes(t *testing.T) {
	r := newGenRig(t)
	flows := r.addFlows(packet.Control, 8)
	rate := units.Bandwidth(0.05) // 400 Mb/s
	src := NewControl(ControlConfig{
		Eng: r.eng, Host: r.host, Rng: xrand.New(1), Flows: flows,
		Rate: rate, MinMsg: 128, MaxMsg: 2 * units.Kilobyte,
	})
	src.Start()
	window := 20 * units.Millisecond
	r.eng.Run(window)
	offered := float64(r.genBytes()) / float64(window)
	if math.Abs(offered-float64(rate)) > 0.15*float64(rate) {
		t.Fatalf("offered rate = %v B/cycle, want ~%v", offered, float64(rate))
	}
	seenFlows := map[packet.FlowID]bool{}
	for _, p := range r.gen {
		payload := p.Size - packet.HeaderSize
		if p.FrameParts == 1 && (payload < 128 || payload > 2*units.Kilobyte) {
			t.Fatalf("control message payload %v out of [128B, 2KB]", payload)
		}
		seenFlows[p.Flow] = true
	}
	if len(seenFlows) < 6 {
		t.Fatalf("control used only %d of 8 destinations", len(seenFlows))
	}
	if src.Messages() == 0 {
		t.Fatal("message counter not incremented")
	}
}

func TestControlValidation(t *testing.T) {
	r := newGenRig(t)
	flows := r.addFlows(packet.Control, 1)
	mustPanic(t, "no flows", func() {
		NewControl(ControlConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Rate: 1, MinMsg: 128, MaxMsg: 256})
	})
	mustPanic(t, "zero rate", func() {
		NewControl(ControlConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Flows: flows, MinMsg: 128, MaxMsg: 256})
	})
	mustPanic(t, "bad bounds", func() {
		NewControl(ControlConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Flows: flows, Rate: 1, MinMsg: 512, MaxMsg: 256})
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestVideoCadence(t *testing.T) {
	r := newGenRig(t)
	r.host.AddFlow(&hostif.Flow{ID: 1, Class: packet.Multimedia, Src: 0, Dst: 1,
		Route: []int{0}, Mode: hostif.FrameLatency, Target: 10 * units.Millisecond})
	v := NewVideo(VideoConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(2),
		Flow: 1, Period: 40 * units.Millisecond, GoP: DefaultGoP()})
	v.Start()
	r.eng.Run(1001 * units.Millisecond)
	// ~25 frames in one second (plus/minus the random phase).
	if v.Frames() < 24 || v.Frames() > 26 {
		t.Fatalf("frames in 1s = %d, want ~25", v.Frames())
	}
	// Distinct frame ids must be ~frame count.
	frames := map[uint64]bool{}
	for _, p := range r.gen {
		frames[p.FrameID] = true
	}
	if uint64(len(frames)) != v.Frames() {
		t.Fatalf("frame ids %d != frames emitted %d", len(frames), v.Frames())
	}
}

func TestVideoFrameSizesInPaperRange(t *testing.T) {
	r := newGenRig(t)
	r.host.AddFlow(&hostif.Flow{ID: 1, Class: packet.Multimedia, Src: 0, Dst: 1,
		Route: []int{0}, Mode: hostif.FrameLatency, Target: 10 * units.Millisecond})
	v := NewVideo(VideoConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(3),
		Flow: 1, Period: 40 * units.Millisecond, GoP: DefaultGoP()})
	v.Start()
	r.eng.Run(20 * units.Second)
	// Reconstruct frame sizes from packet payloads.
	frameBytes := map[uint64]units.Size{}
	for _, p := range r.gen {
		frameBytes[p.FrameID] += p.Size - packet.HeaderSize
	}
	var mini, maxi units.Size = 1 << 60, 0
	for _, b := range frameBytes {
		if b < mini {
			mini = b
		}
		if b > maxi {
			maxi = b
		}
	}
	if mini < 1*units.Kilobyte || maxi > 120*units.Kilobyte {
		t.Fatalf("frame sizes [%v, %v] outside Table 1's [1KB, 120KB]", mini, maxi)
	}
	// I frames must dwarf B frames: spread at least 2x.
	if float64(maxi) < 2*float64(mini) {
		t.Fatalf("frame size spread too small: [%v, %v]", mini, maxi)
	}
}

func TestGoPMeanRate(t *testing.T) {
	g := DefaultGoP()
	// (100 + 3*60 + 8*25)*KB / 12 = 40 KB.
	if mf := g.MeanFrame(); mf != 40*units.Kilobyte {
		t.Fatalf("MeanFrame = %v, want 40KB", mf)
	}
	rate := g.MeanRate(40 * units.Millisecond)
	want := float64(40*units.Kilobyte) / float64(40*units.Millisecond)
	if math.Abs(float64(rate)-want) > 1e-12 {
		t.Fatalf("MeanRate = %v, want %v", rate, want)
	}
}

func TestVideoValidation(t *testing.T) {
	r := newGenRig(t)
	mustPanic(t, "zero period", func() {
		NewVideo(VideoConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1), GoP: DefaultGoP()})
	})
	mustPanic(t, "empty GoP", func() {
		NewVideo(VideoConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Period: units.Millisecond, GoP: GoP{}})
	})
}

func TestSelfSimilarPacing(t *testing.T) {
	r := newGenRig(t)
	flows := r.addFlows(packet.BestEffort, 16)
	rate := units.Bandwidth(0.1)
	s := NewSelfSimilar(SelfSimilarConfig{
		Eng: r.eng, Host: r.host, Rng: xrand.New(4), Flows: flows, Rate: rate,
		MinFrame: 128, MaxFrame: 100 * units.Kilobyte, SizeAlpha: 1.3, BurstAlpha: 1.5,
	})
	s.Start()
	window := 100 * units.Millisecond
	r.eng.Run(window)
	offered := float64(r.genBytes()) / float64(window)
	// Heavy-tailed sources converge slowly; accept a wide band.
	if offered < 0.5*float64(rate) || offered > 2.0*float64(rate) {
		t.Fatalf("offered = %v B/cycle, want ~%v", offered, float64(rate))
	}
	if s.Bursts() == 0 {
		t.Fatal("no bursts emitted")
	}
}

func TestSelfSimilarBurstsShareDestination(t *testing.T) {
	// All frames generated inside one burst must target the same flow;
	// verify by checking that consecutive same-time submissions share a
	// flow id.
	r := newGenRig(t)
	flows := r.addFlows(packet.BestEffort, 16)
	s := NewSelfSimilar(SelfSimilarConfig{
		Eng: r.eng, Host: r.host, Rng: xrand.New(5), Flows: flows, Rate: 0.05,
		MinFrame: 128, MaxFrame: 10 * units.Kilobyte, SizeAlpha: 1.3, BurstAlpha: 1.5,
	})
	s.Start()
	r.eng.Run(50 * units.Millisecond)
	byTime := map[units.Time]map[packet.FlowID]bool{}
	for _, p := range r.gen {
		if byTime[p.CreatedAt] == nil {
			byTime[p.CreatedAt] = map[packet.FlowID]bool{}
		}
		byTime[p.CreatedAt][p.Flow] = true
	}
	for at, fl := range byTime {
		if len(fl) > 1 {
			t.Fatalf("burst at %v spans %d destinations, want 1", at, len(fl))
		}
	}
}

func TestSelfSimilarHeavyTailedSizes(t *testing.T) {
	r := newGenRig(t)
	flows := r.addFlows(packet.Background, 4)
	s := NewSelfSimilar(SelfSimilarConfig{
		Eng: r.eng, Host: r.host, Rng: xrand.New(6), Flows: flows, Rate: 0.2,
		MinFrame: 128, MaxFrame: 100 * units.Kilobyte, SizeAlpha: 1.3, BurstAlpha: 1.5,
	})
	s.Start()
	r.eng.Run(200 * units.Millisecond)
	frameBytes := map[uint64]units.Size{}
	for _, p := range r.gen {
		frameBytes[p.FrameID] += p.Size - packet.HeaderSize
	}
	small, large := 0, 0
	for _, b := range frameBytes {
		if b < 1*units.Kilobyte {
			small++
		}
		if b > 20*units.Kilobyte {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("size distribution not heavy-tailed: %d small, %d large of %d",
			small, large, len(frameBytes))
	}
	if small < large {
		t.Fatalf("Pareto body missing: %d small < %d large", small, large)
	}
}

func TestSelfSimilarValidation(t *testing.T) {
	r := newGenRig(t)
	flows := r.addFlows(packet.BestEffort, 2)
	base := SelfSimilarConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
		Flows: flows, Rate: 1, MinFrame: 128, MaxFrame: 1024, SizeAlpha: 1.3, BurstAlpha: 1.5}
	mustPanic(t, "no flows", func() {
		c := base
		c.Flows = nil
		NewSelfSimilar(c)
	})
	mustPanic(t, "zero rate", func() {
		c := base
		c.Rate = 0
		NewSelfSimilar(c)
	})
	mustPanic(t, "alpha <= 1", func() {
		c := base
		c.SizeAlpha = 1.0
		NewSelfSimilar(c)
	})
}

func TestSourceNames(t *testing.T) {
	r := newGenRig(t)
	cf := r.addFlows(packet.Control, 1)
	r.host.AddFlow(&hostif.Flow{ID: 999, Class: packet.Multimedia, Src: 0, Dst: 1,
		Route: []int{0}, Mode: hostif.FrameLatency, Target: units.Millisecond})
	bf := r.addFlows(packet.BestEffort, 1)
	srcs := []Source{
		NewControl(ControlConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Flows: cf, Rate: 1, MinMsg: 128, MaxMsg: 256}),
		NewVideo(VideoConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Flow: 999, Period: units.Millisecond, GoP: DefaultGoP()}),
		NewSelfSimilar(SelfSimilarConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Flows: bf, Rate: 1, MinFrame: 128, MaxFrame: 1024, SizeAlpha: 1.3, BurstAlpha: 1.5}),
	}
	seen := map[string]bool{}
	for _, s := range srcs {
		if s.Name() == "" || seen[s.Name()] {
			t.Fatalf("bad source name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestCBRCadence(t *testing.T) {
	r := newGenRig(t)
	flows := r.addFlows(packet.Control, 1)
	c := NewCBR(CBRConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(7),
		Flow: flows[0], MessageSize: 512, Interval: 100 * units.Microsecond})
	c.Start()
	r.eng.Run(10*units.Millisecond + 1)
	// 100 intervals of 100us in 10ms (plus/minus the phase).
	if c.Messages() < 99 || c.Messages() > 101 {
		t.Fatalf("CBR messages = %d, want ~100", c.Messages())
	}
	// Every message is one packet of exactly 512 payload bytes.
	for _, p := range r.gen {
		if p.Size != 512+packet.HeaderSize {
			t.Fatalf("CBR packet size %v, want 520", p.Size)
		}
	}
	// Inter-generation gaps must be exactly the interval.
	for i := 1; i < len(r.gen); i++ {
		if gap := r.gen[i].CreatedAt - r.gen[i-1].CreatedAt; gap != 100*units.Microsecond {
			t.Fatalf("CBR gap %v, want 100us", gap)
		}
	}
}

func TestCBRRate(t *testing.T) {
	r := newGenRig(t)
	flows := r.addFlows(packet.Control, 1)
	c := NewCBR(CBRConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(8),
		Flow: flows[0], MessageSize: 1000, Interval: 10000})
	if c.Rate() != 0.1 {
		t.Fatalf("CBR rate = %v, want 0.1 B/cycle", c.Rate())
	}
}

func TestCBRValidation(t *testing.T) {
	r := newGenRig(t)
	flows := r.addFlows(packet.Control, 1)
	mustPanic(t, "zero size", func() {
		NewCBR(CBRConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Flow: flows[0], Interval: 100})
	})
	mustPanic(t, "zero interval", func() {
		NewCBR(CBRConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Flow: flows[0], MessageSize: 100})
	})
}
