package traffic

import (
	"os"
	"strings"
	"testing"

	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

func TestLoadFrameTraceFormats(t *testing.T) {
	src := `# comment
12000
1 I 90000

2 B 15000`
	frames, err := LoadFrameTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []units.Size{12000, 90000, 15000}
	if len(frames) != len(want) {
		t.Fatalf("frames = %v", frames)
	}
	for i := range want {
		if frames[i] != want[i] {
			t.Fatalf("frame %d = %v, want %v", i, frames[i], want[i])
		}
	}
}

func TestLoadFrameTraceErrors(t *testing.T) {
	for name, src := range map[string]string{
		"empty":    "# only comments\n",
		"garbage":  "1 I notanumber\n",
		"negative": "3 P -5\n",
	} {
		if _, err := LoadFrameTrace(strings.NewReader(src)); err == nil {
			t.Errorf("%s trace accepted", name)
		}
	}
}

func TestSampleTraceFile(t *testing.T) {
	f, err := os.Open("testdata/mpeg4_sample.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	frames, err := LoadFrameTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 600 {
		t.Fatalf("sample trace has %d frames, want 600", len(frames))
	}
	for i, fr := range frames {
		if fr < units.Kilobyte || fr > 120*units.Kilobyte {
			t.Fatalf("frame %d size %v outside the paper's range", i, fr)
		}
	}
}

func TestVideoTraceReplay(t *testing.T) {
	r := newGenRig(t)
	r.host.AddFlow(&hostif.Flow{ID: 1, Class: packet.Multimedia, Src: 0, Dst: 1,
		Route: []int{0}, Mode: hostif.FrameLatency, Target: 10 * units.Millisecond})
	frames := []units.Size{10000, 20000, 30000}
	v := NewVideoTrace(VideoTraceConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(3),
		Flow: 1, Period: 40 * units.Millisecond, Frames: frames})
	v.Start()
	r.eng.Run(400 * units.Millisecond)
	if v.Frames() < 9 || v.Frames() > 10 {
		t.Fatalf("replayed %d frames in 400ms, want ~10", v.Frames())
	}
	// Frame sizes must cycle through the trace.
	sizes := map[uint64]units.Size{}
	for _, p := range r.gen {
		sizes[p.FrameID] += p.Size - packet.HeaderSize
	}
	counts := map[units.Size]int{}
	for _, s := range sizes {
		counts[s]++
	}
	for _, want := range frames {
		if counts[want] < 2 {
			t.Fatalf("trace frame size %v appeared %d times, want >=2 (cycling)", want, counts[want])
		}
	}
	if got := v.MeanRate(); got != units.Bandwidth(20000.0/float64(40*units.Millisecond)) {
		t.Fatalf("MeanRate = %v", got)
	}
}

func TestVideoTraceValidation(t *testing.T) {
	r := newGenRig(t)
	mustPanic(t, "no frames", func() {
		NewVideoTrace(VideoTraceConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Period: units.Millisecond})
	})
	mustPanic(t, "zero period", func() {
		NewVideoTrace(VideoTraceConfig{Eng: r.eng, Host: r.host, Rng: xrand.New(1),
			Frames: []units.Size{100}})
	})
}
