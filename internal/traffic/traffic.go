// Package traffic implements the workload generators of the paper's
// evaluation (Table 1, §4.2), following the Network Processing Forum switch
// fabric benchmark recommendations the paper cites:
//
//   - Control: latency-critical small messages, sizes uniform in
//     [128 B, 2 KB], Poisson arrivals, random destinations.
//   - Video: synthetic MPEG-4 streams — one frame every 40 ms, an
//     IBBPBBPBBPBB group-of-pictures with normally distributed I/P/B frame
//     sizes clamped to the paper's [1 KB, 120 KB] range. (The paper plays
//     real MPEG-4 traces; the GoP model reproduces the property that
//     matters here: large frame-to-frame size variation at a fixed frame
//     cadence. See DESIGN.md.)
//   - SelfSimilar: internet-like best-effort traffic — bursts of
//     application frames to a single destination, with heavy-tailed
//     (bounded Pareto) frame sizes per Jain's methodology and heavy-tailed
//     burst lengths, paced to a configured long-term average rate.
//
// Every source owns a private random stream, so a workload is reproducible
// from its seed and identical across the four switch architectures.
package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// Source is a traffic generator; Start schedules its first event.
type Source interface {
	Start()
	Name() string
}

// --- Control --------------------------------------------------------------

// ControlConfig parameterises a control-traffic source.
type ControlConfig struct {
	Eng  *sim.Engine
	Host *hostif.Host
	Rng  *xrand.Rand
	// Flows lists one registered flow per destination; each message picks
	// one uniformly (random destinations).
	Flows []packet.FlowID
	// Rate is the long-term average offered bandwidth.
	Rate units.Bandwidth
	// Message payload bounds (Table 1: 128 B .. 2 KB).
	MinMsg, MaxMsg units.Size
}

// Control generates Poisson-arriving small control messages.
type Control struct {
	cfg      ControlConfig
	meanMsg  float64
	messages uint64
}

// NewControl returns a control source. It panics on an empty flow list or
// non-positive rate (configuration bugs).
func NewControl(cfg ControlConfig) *Control {
	if len(cfg.Flows) == 0 {
		panic("traffic: control source without flows")
	}
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("traffic: control rate %v", cfg.Rate))
	}
	if cfg.MinMsg <= 0 || cfg.MaxMsg < cfg.MinMsg {
		panic("traffic: bad control message bounds")
	}
	return &Control{cfg: cfg, meanMsg: float64(cfg.MinMsg+cfg.MaxMsg) / 2}
}

// Name identifies the source.
func (c *Control) Name() string { return "control" }

// Start schedules the first message after a random fraction of one mean
// inter-arrival, desynchronising the hosts.
func (c *Control) Start() {
	mean := c.meanInterval()
	c.cfg.Eng.After(units.Time(c.cfg.Rng.Float64()*mean), c.emit)
}

// meanInterval returns the mean inter-arrival time in cycles.
func (c *Control) meanInterval() float64 { return c.meanMsg / float64(c.cfg.Rate) }

func (c *Control) emit() {
	flow := c.cfg.Flows[c.cfg.Rng.Intn(len(c.cfg.Flows))]
	size := units.Size(c.cfg.Rng.UniformInt(int64(c.cfg.MinMsg), int64(c.cfg.MaxMsg)))
	c.cfg.Host.SubmitMessage(flow, size)
	c.messages++
	c.cfg.Eng.After(units.Time(c.cfg.Rng.Exp(c.meanInterval()))+1, c.emit)
}

// Messages returns how many messages this source has emitted.
func (c *Control) Messages() uint64 { return c.messages }

// --- Video ------------------------------------------------------------------

// GoP describes the MPEG group-of-pictures model: the frame-type pattern
// and per-type size distributions (normal, clamped to [Min, Max]).
type GoP struct {
	Pattern       string // e.g. "IBBPBBPBBPBB"
	IMean, ISigma units.Size
	PMean, PSigma units.Size
	BMean, BSigma units.Size
	Min, Max      units.Size
}

// DefaultGoP is the evaluation's MPEG-4 model: 12-frame IBBPBBPBBPBB with
// frame sizes spanning the paper's [1 KB, 120 KB] range, mean ~40 KB per
// frame (≈1 MB/s per stream at 25 frames/s).
func DefaultGoP() GoP {
	return GoP{
		Pattern: "IBBPBBPBBPBB",
		IMean:   100 * units.Kilobyte, ISigma: 12 * units.Kilobyte,
		PMean: 60 * units.Kilobyte, PSigma: 12 * units.Kilobyte,
		BMean: 25 * units.Kilobyte, BSigma: 8 * units.Kilobyte,
		Min: 1 * units.Kilobyte, Max: 120 * units.Kilobyte,
	}
}

// MeanFrame returns the expected frame size of the model (before
// clamping, which is symmetric enough to ignore for provisioning).
func (g GoP) MeanFrame() units.Size {
	if len(g.Pattern) == 0 {
		return 0
	}
	var sum units.Size
	for _, f := range g.Pattern {
		switch f {
		case 'I':
			sum += g.IMean
		case 'P':
			sum += g.PMean
		default:
			sum += g.BMean
		}
	}
	return sum / units.Size(len(g.Pattern))
}

// MeanRate returns the stream's expected average bandwidth for a given
// frame period, used by admission control.
func (g GoP) MeanRate(period units.Time) units.Bandwidth {
	return units.Bandwidth(float64(g.MeanFrame()) / float64(period))
}

// VideoConfig parameterises one MPEG stream source.
type VideoConfig struct {
	Eng    *sim.Engine
	Host   *hostif.Host
	Rng    *xrand.Rand
	Flow   packet.FlowID
	Period units.Time // frame cadence (40 ms in the paper)
	GoP    GoP
}

// Video generates one synthetic MPEG stream.
type Video struct {
	cfg    VideoConfig
	frame  int // index into the GoP pattern
	frames uint64
}

// NewVideo returns a video source.
func NewVideo(cfg VideoConfig) *Video {
	if cfg.Period <= 0 {
		panic("traffic: video period must be positive")
	}
	if len(cfg.GoP.Pattern) == 0 {
		panic("traffic: empty GoP pattern")
	}
	return &Video{cfg: cfg}
}

// Name identifies the source.
func (v *Video) Name() string { return "video" }

// Start begins the stream at a random phase within one frame period (real
// streams are not synchronised across hosts).
func (v *Video) Start() {
	v.frame = v.cfg.Rng.Intn(len(v.cfg.GoP.Pattern))
	v.cfg.Eng.After(units.Time(v.cfg.Rng.Int63n(int64(v.cfg.Period))), v.emit)
}

func (v *Video) emit() {
	g := v.cfg.GoP
	var mean, sigma units.Size
	switch g.Pattern[v.frame%len(g.Pattern)] {
	case 'I':
		mean, sigma = g.IMean, g.ISigma
	case 'P':
		mean, sigma = g.PMean, g.PSigma
	default:
		mean, sigma = g.BMean, g.BSigma
	}
	size := units.Size(v.cfg.Rng.Normal(float64(mean), float64(sigma)))
	if size < g.Min {
		size = g.Min
	}
	if size > g.Max {
		size = g.Max
	}
	v.cfg.Host.SubmitMessage(v.cfg.Flow, size)
	v.frames++
	v.frame++
	v.cfg.Eng.After(v.cfg.Period, v.emit)
}

// Frames returns how many frames this stream has emitted.
func (v *Video) Frames() uint64 { return v.frames }

// --- SelfSimilar ---------------------------------------------------------------

// SelfSimilarConfig parameterises an internet-like best-effort source.
type SelfSimilarConfig struct {
	Eng  *sim.Engine
	Host *hostif.Host
	Rng  *xrand.Rand
	// Flows lists one registered flow per destination; each burst heads
	// to a single randomly chosen destination (§4.2).
	Flows []packet.FlowID
	// Rate is the long-term average offered bandwidth the source paces
	// itself to.
	Rate units.Bandwidth
	// Application frame size bounds (Table 1: 128 B .. 100 KB) and the
	// Pareto shape of the size distribution.
	MinFrame, MaxFrame units.Size
	SizeAlpha          float64
	// Burst length (frames per burst) is 1 + Pareto(BurstAlpha, 1),
	// heavy-tailed.
	BurstAlpha float64
}

// SelfSimilar generates heavy-tailed bursts of frames to random
// destinations.
type SelfSimilar struct {
	cfg    SelfSimilarConfig
	bursts uint64
}

// NewSelfSimilar returns a best-effort source with validated parameters.
func NewSelfSimilar(cfg SelfSimilarConfig) *SelfSimilar {
	if len(cfg.Flows) == 0 {
		panic("traffic: self-similar source without flows")
	}
	if cfg.Rate <= 0 {
		panic("traffic: self-similar rate must be positive")
	}
	if cfg.SizeAlpha <= 1 || cfg.BurstAlpha <= 1 {
		// Shapes <= 1 have unbounded mean: the pacing would diverge.
		panic("traffic: Pareto shape parameters must exceed 1")
	}
	return &SelfSimilar{cfg: cfg}
}

// Name identifies the source.
func (s *SelfSimilar) Name() string { return "selfsimilar" }

// Start schedules the first burst with a random desynchronising offset.
func (s *SelfSimilar) Start() {
	s.cfg.Eng.After(units.Time(s.cfg.Rng.Int63n(1000)+1), s.emit)
}

func (s *SelfSimilar) emit() {
	flow := s.cfg.Flows[s.cfg.Rng.Intn(len(s.cfg.Flows))]
	frames := 1 + int(s.cfg.Rng.Pareto(s.cfg.BurstAlpha, 1))
	if frames > 64 {
		frames = 64 // cap pathological bursts to keep pacing responsive
	}
	var burstBytes units.Size
	for i := 0; i < frames; i++ {
		size := units.Size(s.cfg.Rng.BoundedPareto(s.cfg.SizeAlpha,
			float64(s.cfg.MinFrame), float64(s.cfg.MaxFrame)))
		s.cfg.Host.SubmitMessage(flow, size)
		burstBytes += size
	}
	s.bursts++
	// Pace to the configured long-term rate: the next burst starts after
	// the time this burst "costs" at the average rate. Inside a burst the
	// instantaneous rate is only bounded by the injection link — exactly
	// the bursty behaviour self-similar models capture.
	gap := units.Time(float64(burstBytes)/float64(s.cfg.Rate)) + 1
	s.cfg.Eng.After(gap, s.emit)
}

// Bursts returns how many bursts this source has emitted.
func (s *SelfSimilar) Bursts() uint64 { return s.bursts }

// --- CBR ---------------------------------------------------------------------

// CBRConfig parameterises a constant-bit-rate source: fixed-size messages
// at a fixed cadence on one flow. CBR streams are the classic admission-
// control workload (ATM CBR / InfiniBand rate-reserved channels) and the
// cleanest probe for jitter measurements.
type CBRConfig struct {
	Eng  *sim.Engine
	Host *hostif.Host
	Rng  *xrand.Rand
	Flow packet.FlowID
	// MessageSize is the fixed payload per message.
	MessageSize units.Size
	// Interval is the fixed message cadence.
	Interval units.Time
}

// CBR generates fixed-size messages at a fixed rate.
type CBR struct {
	cfg      CBRConfig
	messages uint64
}

// NewCBR returns a CBR source with validated parameters.
func NewCBR(cfg CBRConfig) *CBR {
	if cfg.MessageSize <= 0 {
		panic("traffic: CBR message size must be positive")
	}
	if cfg.Interval <= 0 {
		panic("traffic: CBR interval must be positive")
	}
	return &CBR{cfg: cfg}
}

// Name identifies the source.
func (c *CBR) Name() string { return "cbr" }

// Rate returns the stream's average bandwidth, for admission control.
func (c *CBR) Rate() units.Bandwidth {
	return units.Bandwidth(float64(c.cfg.MessageSize) / float64(c.cfg.Interval))
}

// Start begins the stream at a random phase within one interval.
func (c *CBR) Start() {
	c.cfg.Eng.After(units.Time(c.cfg.Rng.Int63n(int64(c.cfg.Interval))), c.emit)
}

func (c *CBR) emit() {
	c.cfg.Host.SubmitMessage(c.cfg.Flow, c.cfg.MessageSize)
	c.messages++
	c.cfg.Eng.After(c.cfg.Interval, c.emit)
}

// Messages returns how many messages this source has emitted.
func (c *CBR) Messages() uint64 { return c.messages }

// --- trace-driven video ---------------------------------------------------------

// LoadFrameTrace parses a video frame-size trace. The format follows the
// publicly available MPEG trace archives: '#'-prefixed comment lines are
// skipped and the last whitespace-separated field of every other line is a
// frame size in bytes (so both "SIZE" and "INDEX TYPE SIZE" layouts load).
func LoadFrameTrace(r io.Reader) ([]units.Size, error) {
	var frames []units.Size
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		size, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: bad frame size %q", line, fields[len(fields)-1])
		}
		if size <= 0 {
			return nil, fmt.Errorf("traffic: trace line %d: non-positive frame size %d", line, size)
		}
		frames = append(frames, units.Size(size))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traffic: reading trace: %w", err)
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("traffic: empty trace")
	}
	return frames, nil
}

// VideoTraceConfig parameterises a trace-driven MPEG stream: the paper
// transmits "actual MPEG video sequences"; this source replays a recorded
// frame-size trace at the fixed frame cadence.
type VideoTraceConfig struct {
	Eng    *sim.Engine
	Host   *hostif.Host
	Rng    *xrand.Rand
	Flow   packet.FlowID
	Period units.Time
	// Frames is the per-frame size sequence; the stream loops over it.
	Frames []units.Size
}

// VideoTrace replays a recorded frame-size sequence.
type VideoTrace struct {
	cfg  VideoTraceConfig
	pos  int
	sent uint64
}

// NewVideoTrace returns a trace-driven video source.
func NewVideoTrace(cfg VideoTraceConfig) *VideoTrace {
	if cfg.Period <= 0 {
		panic("traffic: video trace period must be positive")
	}
	if len(cfg.Frames) == 0 {
		panic("traffic: empty video trace")
	}
	return &VideoTrace{cfg: cfg}
}

// Name identifies the source.
func (v *VideoTrace) Name() string { return "video-trace" }

// MeanRate returns the trace's average bandwidth at the configured period,
// for admission control.
func (v *VideoTrace) MeanRate() units.Bandwidth {
	var sum units.Size
	for _, f := range v.cfg.Frames {
		sum += f
	}
	return units.Bandwidth(float64(sum) / float64(len(v.cfg.Frames)) / float64(v.cfg.Period))
}

// Start begins the replay at a random trace position and phase.
func (v *VideoTrace) Start() {
	v.pos = v.cfg.Rng.Intn(len(v.cfg.Frames))
	v.cfg.Eng.After(units.Time(v.cfg.Rng.Int63n(int64(v.cfg.Period))), v.emit)
}

func (v *VideoTrace) emit() {
	v.cfg.Host.SubmitMessage(v.cfg.Flow, v.cfg.Frames[v.pos])
	v.pos = (v.pos + 1) % len(v.cfg.Frames)
	v.sent++
	v.cfg.Eng.After(v.cfg.Period, v.emit)
}

// Frames returns how many frames this stream has emitted.
func (v *VideoTrace) Frames() uint64 { return v.sent }
