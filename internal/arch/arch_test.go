package arch

import (
	"testing"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/pqueue"
)

func TestNamesMatchPaperFigures(t *testing.T) {
	want := map[Arch]string{
		Traditional2VC: "Traditional 2 VCs",
		Ideal:          "Ideal",
		Simple2VC:      "Simple 2 VCs",
		Advanced2VC:    "Advanced 2 VCs",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
	if Arch(17).String() == "" {
		t.Error("unknown arch must still render")
	}
}

func TestDisciplines(t *testing.T) {
	cases := []struct {
		a    Arch
		vc   packet.VC
		want pqueue.Discipline
	}{
		{Traditional2VC, packet.VCRegulated, pqueue.FIFO},
		{Traditional2VC, packet.VCBestEffort, pqueue.FIFO},
		{Ideal, packet.VCRegulated, pqueue.Heap},
		{Ideal, packet.VCBestEffort, pqueue.Heap},
		{Simple2VC, packet.VCRegulated, pqueue.FIFO},
		{Simple2VC, packet.VCBestEffort, pqueue.FIFO},
		{Advanced2VC, packet.VCRegulated, pqueue.TakeOver},
		{Advanced2VC, packet.VCBestEffort, pqueue.FIFO},
	}
	for _, c := range cases {
		if got := c.a.Discipline(c.vc); got != c.want {
			t.Errorf("%v.Discipline(%v) = %v, want %v", c.a, c.vc, got, c.want)
		}
	}
}

func TestDeadlineAware(t *testing.T) {
	if Traditional2VC.DeadlineAware() {
		t.Error("Traditional must not be deadline-aware")
	}
	for _, a := range []Arch{Ideal, Simple2VC, Advanced2VC} {
		if !a.DeadlineAware() {
			t.Errorf("%v must be deadline-aware", a)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, a := range All() {
		got, err := Parse(a.Flag())
		if err != nil {
			t.Fatalf("Parse(%q): %v", a.Flag(), err)
		}
		if got != a {
			t.Errorf("Parse(Flag(%v)) = %v", a, got)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse accepted bogus name")
	}
}

func TestAllOrder(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("All() has %d entries, want the paper's 4", len(all))
	}
	if len(AllExtended()) != NumArchs {
		t.Fatalf("AllExtended() has %d entries, want %d", len(AllExtended()), NumArchs)
	}
	if all[0] != Traditional2VC || all[1] != Ideal {
		t.Error("All() order does not match the paper's presentation")
	}
}

func TestTraditional4VCMapping(t *testing.T) {
	a := Traditional4VC
	if a.DeadlineAware() {
		t.Error("Traditional4VC must not be deadline-aware")
	}
	if a.VCs() != 4 {
		t.Errorf("VCs() = %d, want 4", a.VCs())
	}
	for c := packet.Class(0); c < packet.NumClasses; c++ {
		if got := a.VCFor(c); got != packet.VC(c) {
			t.Errorf("VCFor(%v) = %v, want VC%d", c, got, c)
		}
		if got := a.Discipline(packet.VC(c)); got != pqueue.FIFO {
			t.Errorf("Discipline(VC%d) = %v, want fifo", c, got)
		}
	}
}

func TestTwoVCMappingsUnchanged(t *testing.T) {
	for _, a := range All() {
		if a.VCs() != 2 {
			t.Errorf("%v VCs() = %d, want 2", a, a.VCs())
		}
		for c := packet.Class(0); c < packet.NumClasses; c++ {
			if got := a.VCFor(c); got != packet.VCOf(c) {
				t.Errorf("%v VCFor(%v) = %v, want %v", a, c, got, packet.VCOf(c))
			}
		}
	}
}

func TestParseExtendedRoundTrip(t *testing.T) {
	for _, a := range AllExtended() {
		got, err := Parse(a.Flag())
		if err != nil || got != a {
			t.Errorf("Parse(Flag(%v)) = %v, %v", a, got, err)
		}
	}
}
