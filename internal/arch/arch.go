// Package arch enumerates the four switch architectures the paper
// evaluates (§4.1) and maps each to the buffer disciplines and scheduling
// behaviour that realise it.
package arch

import (
	"fmt"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/pqueue"
)

// Arch is one of the four evaluated switch architectures.
type Arch uint8

// The four architectures of §4.1.
const (
	// Traditional2VC is a PCI-AS-style switch: two VCs distinguishing two
	// broad traffic categories, FIFO buffers, weighted-table arbitration
	// between VCs, round-robin within a VC. No deadline awareness.
	Traditional2VC Arch = iota
	// Ideal implements EDF with fully ordered (heap) buffers on both VCs.
	// Order errors cannot happen; the hardware cost makes it infeasible,
	// so it serves as the upper bound.
	Ideal
	// Simple2VC is the paper's first proposal: plain FIFO buffers, but the
	// arbiter compares the deadlines of the FIFO heads (merge-sort
	// argument, §3.2). Order errors degrade latency ~25%.
	Simple2VC
	// Advanced2VC adds the take-over queue (§3.4): the regulated VC is
	// split into an ordered queue and a take-over queue, cutting the
	// order-error penalty to ~5%.
	Advanced2VC
	// Traditional4VC is the "many more VCs" alternative the paper's
	// conclusion discusses: one VC per traffic class with weighted-table
	// arbitration, still without deadline awareness. It quantifies how
	// much of the EDF architectures' QoS could be bought with silicon
	// (more VCs) instead of scheduling.
	Traditional4VC
	NumArchs = 5
)

var names = [NumArchs]string{"Traditional 2 VCs", "Ideal", "Simple 2 VCs", "Advanced 2 VCs", "Traditional 4 VCs"}

// String returns the architecture name as used in the paper's figures.
func (a Arch) String() string {
	if int(a) < len(names) {
		return names[a]
	}
	return fmt.Sprintf("Arch(%d)", uint8(a))
}

// All lists the paper's four architectures in its presentation order
// (Traditional4VC is an extension, listed by AllExtended).
func All() []Arch { return []Arch{Traditional2VC, Ideal, Simple2VC, Advanced2VC} }

// AllExtended lists every implemented architecture, including the 4-VC
// Traditional extension.
func AllExtended() []Arch { return append(All(), Traditional4VC) }

// Parse converts a command-line name ("traditional", "ideal", "simple",
// "advanced", "traditional4") into an Arch.
func Parse(s string) (Arch, error) {
	switch s {
	case "traditional", "trad":
		return Traditional2VC, nil
	case "traditional4", "trad4":
		return Traditional4VC, nil
	case "ideal":
		return Ideal, nil
	case "simple":
		return Simple2VC, nil
	case "advanced", "adv":
		return Advanced2VC, nil
	}
	return 0, fmt.Errorf("arch: unknown architecture %q (want traditional|traditional4|ideal|simple|advanced)", s)
}

// Flag returns the short command-line name of a.
func (a Arch) Flag() string {
	switch a {
	case Traditional2VC:
		return "traditional"
	case Traditional4VC:
		return "traditional4"
	case Ideal:
		return "ideal"
	case Simple2VC:
		return "simple"
	default:
		return "advanced"
	}
}

// Discipline returns the buffer discipline architecture a uses for vc.
// Only the Ideal architecture orders the best-effort VC too; Advanced2VC
// applies the take-over structure to the regulated VC only (§3.4) and
// keeps best-effort in plain FIFOs.
func (a Arch) Discipline(vc packet.VC) pqueue.Discipline {
	switch a {
	case Ideal:
		return pqueue.Heap
	case Advanced2VC:
		if vc == packet.VCRegulated {
			return pqueue.TakeOver
		}
		return pqueue.FIFO
	default:
		return pqueue.FIFO
	}
}

// DeadlineAware reports whether switches of this architecture schedule by
// packet deadlines. The Traditional architectures ignore deadlines
// entirely.
func (a Arch) DeadlineAware() bool { return a != Traditional2VC && a != Traditional4VC }

// VCs returns how many virtual channels the architecture uses. Packets
// only ever carry VCs below this count.
func (a Arch) VCs() int {
	if a == Traditional4VC {
		return 4
	}
	return 2
}

// VCFor maps a traffic class to the virtual channel it travels in under
// this architecture. The paper's proposals and Traditional 2 VCs share the
// regulated/best-effort split; Traditional 4 VCs gives every class its own
// VC (Control=0 .. Background=3, so lower VC index still means more
// latency-sensitive).
func (a Arch) VCFor(c packet.Class) packet.VC {
	if a == Traditional4VC {
		return packet.VC(c)
	}
	return packet.VCOf(c)
}
