// Package arbiter implements the selection policies used by switch output
// ports and crossbars:
//
//   - RoundRobin: classic rotating-priority selection among request sources,
//     the intra-VC policy of the Traditional architecture.
//   - EDF: earliest-deadline-first among the offered head packets, with a
//     rotating tie-break. This is the only deadline-aware logic a switch
//     needs in the paper's proposal — it looks exclusively at packet
//     headers, never at per-flow state (§3).
//   - VCTable: PCI-AS-style weighted table arbitration between virtual
//     channels, the inter-VC policy of the Traditional architecture. The
//     EDF architectures do not need it: their regulated VC has absolute
//     priority (§3.2).
//
// Policies are deliberately tiny pure state machines so that the switch
// model composes them per port without allocation on the hot path.
package arbiter

import (
	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

// Candidate is one request offered to a policy: the head packet of some
// source queue (an input port's VOQ, or a VC buffer).
type Candidate struct {
	Pkt    *packet.Packet
	Source int // source identifier, unique within one Select call
}

// RoundRobin grants sources in rotating order starting after the most
// recent grantee, guaranteeing per-source fairness.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns a round-robin arbiter over n sources.
func NewRoundRobin(n int) *RoundRobin { return &RoundRobin{n: n} }

// Select returns the index into cands of the granted candidate, or -1 when
// cands is empty. Sources must be in [0, n).
func (r *RoundRobin) Select(cands []Candidate) int {
	if len(cands) == 0 {
		return -1
	}
	best, bestRank := -1, r.n
	for i, c := range cands {
		rank := (c.Source - r.next + r.n) % r.n
		if rank < bestRank {
			best, bestRank = i, rank
		}
	}
	r.next = (cands[best].Source + 1) % r.n
	return best
}

// EDF grants the candidate with the smallest deadline. Ties rotate among
// sources so that equal-deadline flows share the port fairly.
type EDF struct {
	n    int
	next int
}

// NewEDF returns an EDF arbiter over n sources.
func NewEDF(n int) *EDF { return &EDF{n: n} }

// Select returns the index into cands of the earliest-deadline candidate,
// or -1 when cands is empty.
func (e *EDF) Select(cands []Candidate) int {
	if len(cands) == 0 {
		return -1
	}
	best, bestDl, bestRank := -1, units.Infinity, e.n+1
	for i, c := range cands {
		rank := (c.Source - e.next + e.n) % e.n
		if c.Pkt.Deadline < bestDl || (c.Pkt.Deadline == bestDl && rank < bestRank) {
			best, bestDl, bestRank = i, c.Pkt.Deadline, rank
		}
	}
	e.next = (cands[best].Source + 1) % e.n
	return best
}

// VCTable is a circular weighted arbitration table over virtual channels,
// modelled on the PCI AS / InfiniBand output arbitration tables. Each table
// entry names a VC; the arbiter scans from its pointer for the first entry
// whose VC currently has a request, grants it, and advances. The relative
// entry counts define the bandwidth weights.
type VCTable struct {
	entries []packet.VC
	ptr     int
}

// NewVCTable returns a table arbiter with the given entry sequence. It
// panics on an empty table.
func NewVCTable(entries []packet.VC) *VCTable {
	if len(entries) == 0 {
		panic("arbiter: empty VC table")
	}
	t := &VCTable{entries: make([]packet.VC, len(entries))}
	copy(t.entries, entries)
	return t
}

// DefaultVCTable is the Traditional-architecture configuration used in the
// evaluation: the QoS VC (VC0) receives three table slots for every slot of
// the best-effort VC, giving it a 3:1 bandwidth weight — a typical setting
// when half the offered traffic is QoS-sensitive.
func DefaultVCTable() *VCTable {
	return NewVCTable([]packet.VC{
		packet.VCRegulated, packet.VCRegulated, packet.VCRegulated, packet.VCBestEffort,
	})
}

// Default4VCTable is the Traditional-4-VCs configuration: one VC per
// traffic class with weights reflecting their sensitivity — Control 4,
// Multimedia 3, Best-effort 2, Background 1 slots. This is the "many more
// VCs" alternative the paper's conclusion discusses.
func Default4VCTable() *VCTable {
	return NewVCTable([]packet.VC{
		0, 1, 2, 0, 1, 3, 0, 2, 1, 0,
	})
}

// Next returns the VC granted given which VCs currently have requests.
// It reports false when no offered VC has a request.
func (t *VCTable) Next(avail [packet.NumVCs]bool) (packet.VC, bool) {
	for i := 0; i < len(t.entries); i++ {
		e := t.entries[(t.ptr+i)%len(t.entries)]
		if avail[e] {
			t.ptr = (t.ptr + i + 1) % len(t.entries)
			return e, true
		}
	}
	return 0, false
}
