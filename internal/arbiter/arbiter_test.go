package arbiter

import (
	"testing"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

func cand(src int, dl units.Time) Candidate {
	return Candidate{Pkt: &packet.Packet{Deadline: dl}, Source: src}
}

func TestRoundRobinEmpty(t *testing.T) {
	if got := NewRoundRobin(4).Select(nil); got != -1 {
		t.Fatalf("Select(nil) = %d, want -1", got)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	r := NewRoundRobin(4)
	all := []Candidate{cand(0, 0), cand(1, 0), cand(2, 0), cand(3, 0)}
	var order []int
	for i := 0; i < 8; i++ {
		g := r.Select(all)
		order = append(order, all[g].Source)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsIdleSources(t *testing.T) {
	r := NewRoundRobin(4)
	// Only sources 1 and 3 request.
	c := []Candidate{cand(1, 0), cand(3, 0)}
	var order []int
	for i := 0; i < 4; i++ {
		order = append(order, c[r.Select(c)].Source)
	}
	want := []int{1, 3, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestRoundRobinFairnessAfterPartialRequests(t *testing.T) {
	r := NewRoundRobin(3)
	// Source 0 granted; next grant must prefer 1 over 0.
	if g := r.Select([]Candidate{cand(0, 0)}); g != 0 {
		t.Fatal("single candidate not granted")
	}
	c := []Candidate{cand(0, 0), cand(1, 0)}
	if got := c[r.Select(c)].Source; got != 1 {
		t.Fatalf("granted %d after 0, want 1", got)
	}
}

func TestEDFPicksMinDeadline(t *testing.T) {
	e := NewEDF(4)
	c := []Candidate{cand(0, 300), cand(1, 100), cand(2, 200)}
	if got := c[e.Select(c)].Source; got != 1 {
		t.Fatalf("EDF granted source %d, want 1", got)
	}
}

func TestEDFEmpty(t *testing.T) {
	if got := NewEDF(4).Select(nil); got != -1 {
		t.Fatalf("Select(nil) = %d, want -1", got)
	}
}

func TestEDFTieRotates(t *testing.T) {
	e := NewEDF(3)
	c := []Candidate{cand(0, 50), cand(1, 50), cand(2, 50)}
	counts := map[int]int{}
	for i := 0; i < 9; i++ {
		counts[c[e.Select(c)].Source]++
	}
	for s := 0; s < 3; s++ {
		if counts[s] != 3 {
			t.Fatalf("tie rotation unfair: %v", counts)
		}
	}
}

func TestEDFDeadlineBeatsRotation(t *testing.T) {
	e := NewEDF(2)
	c := []Candidate{cand(0, 10), cand(1, 20)}
	// Source 0 wins repeatedly despite the rotating pointer.
	for i := 0; i < 5; i++ {
		if got := c[e.Select(c)].Source; got != 0 {
			t.Fatalf("round %d: granted %d, want 0", i, got)
		}
	}
}

func TestVCTableWeights(t *testing.T) {
	tab := DefaultVCTable()
	both := [packet.NumVCs]bool{true, true}
	counts := map[packet.VC]int{}
	for i := 0; i < 40; i++ {
		vc, ok := tab.Next(both)
		if !ok {
			t.Fatal("Next returned no grant with both VCs requesting")
		}
		counts[vc]++
	}
	if counts[packet.VCRegulated] != 30 || counts[packet.VCBestEffort] != 10 {
		t.Fatalf("table weights = %v, want 3:1 (30/10)", counts)
	}
}

func TestVCTableSkipsIdleVC(t *testing.T) {
	tab := DefaultVCTable()
	onlyBE := [packet.NumVCs]bool{false, true}
	for i := 0; i < 5; i++ {
		vc, ok := tab.Next(onlyBE)
		if !ok || vc != packet.VCBestEffort {
			t.Fatalf("grant = %v/%v, want best-effort", vc, ok)
		}
	}
}

func TestVCTableNoRequests(t *testing.T) {
	if _, ok := DefaultVCTable().Next([packet.NumVCs]bool{}); ok {
		t.Fatal("Next granted with no requests")
	}
}

func TestVCTableEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty table did not panic")
		}
	}()
	NewVCTable(nil)
}

func TestVCTableCopiesEntries(t *testing.T) {
	entries := []packet.VC{packet.VCRegulated, packet.VCBestEffort}
	tab := NewVCTable(entries)
	entries[0] = packet.VCBestEffort // must not affect the table
	vc, _ := tab.Next([packet.NumVCs]bool{true, false})
	if vc != packet.VCRegulated {
		t.Fatal("table aliases caller slice")
	}
}

func TestDefault4VCTableWeights(t *testing.T) {
	tab := Default4VCTable()
	all := [packet.NumVCs]bool{true, true, true, true}
	counts := map[packet.VC]int{}
	for i := 0; i < 100; i++ {
		vc, ok := tab.Next(all)
		if !ok {
			t.Fatal("no grant with all VCs requesting")
		}
		counts[vc]++
	}
	// 10-entry table: 4/3/2/1 slots.
	if counts[0] != 40 || counts[1] != 30 || counts[2] != 20 || counts[3] != 10 {
		t.Fatalf("4-VC table weights = %v, want 40/30/20/10", counts)
	}
}
