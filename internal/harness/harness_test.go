package harness

import (
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

func sweepBase() network.Config {
	cfg := network.SmallConfig()
	cfg.WarmUp = 200 * units.Microsecond
	cfg.Measure = 2 * units.Millisecond
	return cfg
}

func TestSweepOrderAndCompleteness(t *testing.T) {
	archs := []arch.Arch{arch.Ideal, arch.Advanced2VC}
	loads := []float64{0.2, 0.5}
	points := Sweep(sweepBase(), archs, loads, 4)
	if len(points) != 4 {
		t.Fatalf("sweep returned %d points, want 4", len(points))
	}
	// Deterministic order: arch-major, load-minor.
	want := []struct {
		a arch.Arch
		l float64
	}{{arch.Ideal, 0.2}, {arch.Ideal, 0.5}, {arch.Advanced2VC, 0.2}, {arch.Advanced2VC, 0.5}}
	for i, p := range points {
		if p.Err != nil {
			t.Fatalf("point %d error: %v", i, p.Err)
		}
		if p.Arch != want[i].a || p.Load != want[i].l {
			t.Fatalf("point %d = (%v, %v), want (%v, %v)", i, p.Arch, p.Load, want[i].a, want[i].l)
		}
		if p.Res == nil {
			t.Fatalf("point %d has no results", i)
		}
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	archs := []arch.Arch{arch.Advanced2VC}
	loads := []float64{0.4, 0.8}
	serial := Sweep(sweepBase(), archs, loads, 1)
	parallel := Sweep(sweepBase(), archs, loads, 4)
	for i := range serial {
		a := serial[i].Res.PerClass[packet.Control].PacketLatency.Mean()
		b := parallel[i].Res.PerClass[packet.Control].PacketLatency.Mean()
		if a != b {
			t.Fatalf("point %d differs between serial and parallel: %v vs %v", i, a, b)
		}
	}
}

func TestByArch(t *testing.T) {
	points := Sweep(sweepBase(), []arch.Arch{arch.Ideal, arch.Simple2VC}, []float64{0.2, 0.5}, 0)
	m := ByArch(points)
	if len(m) != 2 {
		t.Fatalf("ByArch groups = %d, want 2", len(m))
	}
	for a, ps := range m {
		if len(ps) != 2 {
			t.Fatalf("%v has %d points, want 2", a, len(ps))
		}
		if ps[0].Load != 0.2 || ps[1].Load != 0.5 {
			t.Fatalf("%v loads out of order", a)
		}
	}
}

func TestFirstErr(t *testing.T) {
	bad := sweepBase()
	bad.ControlDests = 0 // invalid: every run errors
	points := Sweep(bad, []arch.Arch{arch.Ideal}, []float64{0.5}, 1)
	if FirstErr(points) == nil {
		t.Fatal("FirstErr missed the configuration error")
	}
	good := Sweep(sweepBase(), []arch.Arch{arch.Ideal}, []float64{0.5}, 1)
	if err := FirstErr(good); err != nil {
		t.Fatalf("FirstErr on clean sweep: %v", err)
	}
}

func TestReplicateGroupsSeeds(t *testing.T) {
	pts := Replicate(sweepBase(), []arch.Arch{arch.Advanced2VC}, []float64{0.3, 0.6},
		[]uint64{1, 2, 3}, 2)
	if len(pts) != 2 {
		t.Fatalf("cells = %d, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Err != nil {
			t.Fatal(p.Err)
		}
		if len(p.Runs) != 3 {
			t.Fatalf("runs = %d, want 3", len(p.Runs))
		}
		mean, std := p.MeanStd(func(r *network.Results) float64 {
			return r.PerClass[packet.Control].PacketLatency.Mean()
		})
		if mean <= 0 {
			t.Fatalf("mean latency = %v", mean)
		}
		if std < 0 {
			t.Fatalf("negative std")
		}
		// Distinct seeds must actually vary the runs.
		if p.Runs[0].SimEvents == p.Runs[1].SimEvents && p.Runs[1].SimEvents == p.Runs[2].SimEvents {
			t.Fatal("all seeds produced identical event counts")
		}
	}
}

func TestReplicateDefaultsToBaseSeed(t *testing.T) {
	pts := Replicate(sweepBase(), []arch.Arch{arch.Ideal}, []float64{0.4}, nil, 1)
	if len(pts) != 1 || len(pts[0].Runs) != 1 {
		t.Fatalf("unexpected shape: %d cells", len(pts))
	}
	if pts[0].Err != nil {
		t.Fatal(pts[0].Err)
	}
}

func TestReplicateRecordsErrors(t *testing.T) {
	bad := sweepBase()
	bad.ControlDests = 0
	pts := Replicate(bad, []arch.Arch{arch.Ideal}, []float64{0.4}, []uint64{1}, 1)
	if pts[0].Err == nil {
		t.Fatal("configuration error not recorded")
	}
}
