// Package harness runs batches of simulations for the experiment suite:
// load sweeps across switch architectures, executed concurrently on a
// bounded worker pool. Each simulation is single-threaded and owns all its
// state, so runs parallelise perfectly; results come back in deterministic
// order regardless of scheduling.
package harness

import (
	"runtime"
	"sync"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/network"
	"deadlineqos/internal/report"
	"deadlineqos/internal/stats"
)

// Point is the outcome of one (architecture, load) simulation.
type Point struct {
	Arch arch.Arch
	Load float64
	Res  *network.Results
	Err  error
}

// Sweep runs base for every architecture x load combination. The same seed
// (and therefore the same offered traffic) is used across architectures at
// equal load, which is what makes the paper's cross-architecture
// comparisons meaningful. parallelism <= 0 selects GOMAXPROCS workers.
func Sweep(base network.Config, archs []arch.Arch, loads []float64, parallelism int) []Point {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	points := make([]Point, len(archs)*len(loads))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				a := archs[idx/len(loads)]
				load := loads[idx%len(loads)]
				cfg := base
				cfg.Arch = a
				cfg.Load = load
				res, err := network.Run(cfg)
				points[idx] = Point{Arch: a, Load: load, Res: res, Err: err}
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return points
}

// ByArch groups a sweep's points per architecture, preserving load order.
func ByArch(points []Point) map[arch.Arch][]Point {
	m := make(map[arch.Arch][]Point)
	for _, p := range points {
		m[p.Arch] = append(m[p.Arch], p)
	}
	return m
}

// FirstErr returns the first error in a sweep, if any.
func FirstErr(points []Point) error {
	for _, p := range points {
		if p.Err != nil {
			return p.Err
		}
	}
	return nil
}

// ReplicatedPoint aggregates several seeds of one (architecture, load)
// cell, for experiments that report confidence intervals rather than
// single-run values.
type ReplicatedPoint struct {
	Arch arch.Arch
	Load float64
	// Runs holds one result per seed, in seed order. Failed runs are nil;
	// Err records the first failure.
	Runs []*network.Results
	Err  error
}

// Replicate runs base for every (architecture, load, seed) combination and
// groups results per cell. Seeds vary the offered traffic; at a fixed seed
// the traffic is identical across architectures, preserving the paired
// comparison property of Sweep.
func Replicate(base network.Config, archs []arch.Arch, loads []float64, seeds []uint64, parallelism int) []ReplicatedPoint {
	if len(seeds) == 0 {
		seeds = []uint64{base.Seed}
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	cells := len(archs) * len(loads)
	points := make([]ReplicatedPoint, cells)
	for i := range points {
		points[i] = ReplicatedPoint{
			Arch: archs[i/len(loads)],
			Load: loads[i%len(loads)],
			Runs: make([]*network.Results, len(seeds)),
		}
	}
	type job struct{ cell, seedIdx int }
	jobs := make(chan job)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p := &points[j.cell]
				cfg := base
				cfg.Arch = p.Arch
				cfg.Load = p.Load
				cfg.Seed = seeds[j.seedIdx]
				res, err := network.Run(cfg)
				mu.Lock()
				p.Runs[j.seedIdx] = res
				if err != nil && p.Err == nil {
					p.Err = err
				}
				mu.Unlock()
			}
		}()
	}
	for c := 0; c < cells; c++ {
		for s := range seeds {
			jobs <- job{c, s}
		}
	}
	close(jobs)
	wg.Wait()
	return points
}

// MeanStd evaluates metric on every successful run of the cell and returns
// the sample mean and standard deviation (std is 0 for fewer than 2 runs).
func (p ReplicatedPoint) MeanStd(metric func(*network.Results) float64) (mean, std float64) {
	var s stats.Series
	for _, r := range p.Runs {
		if r != nil {
			s.Add(metric(r))
		}
	}
	return s.Mean(), s.StdDev()
}

// PerfTable renders the engine profile of every successful point in a
// sweep: shard count, event throughput, wall clock per simulated second,
// peak event queue depth, and allocation volume. Failed points are
// skipped.
func PerfTable(title string, points []Point) *report.Table {
	t := report.NewTable(title,
		"arch", "load", "shards", "events", "Mev/s", "wall/sim", "max pending", "allocs", "alloc MiB", "allocs/ev")
	for _, p := range points {
		if p.Err != nil || p.Res == nil {
			continue
		}
		pf := p.Res.Perf
		t.AddF(p.Arch.String(), p.Load, shardsOf(p.Res), pf.Events, pf.EventsPerSec/1e6,
			pf.WallPerSimSec, pf.MaxPending, pf.Mallocs, float64(pf.AllocBytes)/(1<<20),
			pf.MallocsPerEvent)
	}
	return t
}

func shardsOf(r *network.Results) int {
	if r.Config.Shards > 1 {
		return r.Config.Shards
	}
	return 1
}

// SpeedupTable compares a sharded sweep against its sequential baseline,
// point by point (both sweeps must cover the same architecture x load
// grid, as two Sweep calls with equal archs/loads do). Speedup is the
// wall-clock ratio; the results themselves are identical by construction,
// so wall clock is the only thing sharding changes.
func SpeedupTable(title string, baseline, sharded []Point) *report.Table {
	t := report.NewTable(title,
		"arch", "load", "shards", "seq wall (ms)", "par wall (ms)", "speedup")
	for i := range sharded {
		if i >= len(baseline) {
			break
		}
		b, p := baseline[i], sharded[i]
		if b.Err != nil || p.Err != nil || b.Res == nil || p.Res == nil {
			continue
		}
		speedup := 0.0
		if p.Res.Perf.WallNs > 0 {
			speedup = float64(b.Res.Perf.WallNs) / float64(p.Res.Perf.WallNs)
		}
		t.AddF(p.Arch.String(), p.Load, shardsOf(p.Res),
			float64(b.Res.Perf.WallNs)/1e6, float64(p.Res.Perf.WallNs)/1e6, speedup)
	}
	return t
}
