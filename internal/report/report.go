// Package report renders experiment results as aligned text tables, CSV,
// and ASCII plots, so the command-line tools and the benchmark harness can
// print the same rows and series the paper's tables and figures report.
package report

import (
	"fmt"
	"math"
	"strings"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/stats"
	"deadlineqos/internal/units"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row. Rows shorter than the header are padded; longer rows
// panic (a harness bug).
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Header) {
		panic(fmt.Sprintf("report: row of %d cells exceeds %d columns", len(cells), len(t.Header)))
	}
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddF appends a row of formatted values: each value is rendered with %v,
// floats with 4 significant digits.
func (t *Table) AddF(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = formatFloat(x)
		case float32:
			cells[i] = formatFloat(float64(x))
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Add(cells...)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case math.Abs(x) >= 1000:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 1:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes around cells
// containing commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of an XY plot.
type Series struct {
	Name string
	X, Y []float64
}

// Plot renders named series as a fixed-size ASCII chart, one glyph per
// series. It is a quick visual check, not a publication figure; CSV output
// feeds real plotting tools.
type Plot struct {
	Title, XLabel, YLabel string
	Width, Height         int
	Series                []Series
}

// NewPlot returns an empty plot with a default 72x20 canvas.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// AddSeries appends a line to the plot. X and Y must have equal length.
func (p *Plot) AddSeries(name string, x, y []float64) {
	if len(x) != len(y) {
		panic("report: series length mismatch")
	}
	p.Series = append(p.Series, Series{Name: name, X: x, Y: y})
}

var glyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// String renders the plot.
func (p *Plot) String() string {
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range p.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first {
		return p.Title + " (no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, p.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.Width))
	}
	for si, s := range p.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			c := int((s.X[i] - xmin) / (xmax - xmin) * float64(p.Width-1))
			r := p.Height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(p.Height-1))
			grid[r][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Title)
	fmt.Fprintf(&b, "%s: %.4g .. %.4g\n", p.YLabel, ymin, ymax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", p.Width) + "\n")
	fmt.Fprintf(&b, "%s: %.4g .. %.4g\n", p.XLabel, xmin, xmax)
	for si, s := range p.Series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// PerClassTable renders a collector's per-class metrics — delivery counts,
// normalised throughput, the latency quantile ladder, and the
// deadline-slack picture (mean/median slack, miss rate) — as one table
// row per traffic class. This is the shared per-class summary of the
// command-line tools.
func PerClassTable(title string, c *stats.Collector) *Table {
	t := NewTable(title,
		"class", "generated", "delivered", "thru %",
		"lat avg", "lat p50", "lat p95", "lat p99", "lat p99.9", "lat max",
		"slack avg", "slack p50", "miss %", "jitter")
	for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
		cs := &c.PerClass[cl]
		t.AddF(
			cl.String(), cs.GeneratedPackets, cs.DeliveredPackets,
			100*c.Throughput(cl),
			units.Time(cs.PacketLatency.Mean()),
			cs.LatencyHist.Quantile(0.50), cs.LatencyHist.Quantile(0.95),
			cs.LatencyHist.Quantile(0.99), cs.LatencyHist.Quantile(0.999),
			units.Time(cs.PacketLatency.Max()),
			units.Time(cs.Slack.Mean()), cs.SlackHist.Quantile(0.50),
			100*c.MissRate(cl), units.Time(cs.Jitter.Mean()))
	}
	return t
}
