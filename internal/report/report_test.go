package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Demo", "arch", "latency")
	tb.Add("Ideal", "3.2us")
	tb.Add("Traditional 2 VCs", "81us")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: "latency" starts at the same offset everywhere.
	idx := strings.Index(lines[1], "latency")
	for _, l := range lines[3:] {
		if len(l) < idx {
			t.Fatalf("row shorter than header: %q", l)
		}
	}
	if !strings.Contains(out, "-----") {
		t.Error("missing separator")
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Add("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("short row not padded: %v", tb.Rows[0])
	}
}

func TestTableLongRowPanics(t *testing.T) {
	tb := NewTable("", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("oversized row did not panic")
		}
	}()
	tb.Add("x", "y")
}

func TestAddFFormats(t *testing.T) {
	tb := NewTable("", "v1", "v2", "v3", "v4")
	tb.AddF(3.14159, 12345.6, 0.00123, "text")
	row := tb.Rows[0]
	if row[0] != "3.142" {
		t.Errorf("float format %q", row[0])
	}
	if row[1] != "12346" {
		t.Errorf("big float format %q", row[1])
	}
	if row[2] != "0.0012" {
		t.Errorf("small float format %q", row[2])
	}
	if row[3] != "text" {
		t.Errorf("string format %q", row[3])
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.Add(`plain`, `with,comma`)
	tb.Add(`with"quote`, `ok`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("CSV has %d lines, want 3", lines)
	}
}

func TestPlotRenders(t *testing.T) {
	p := NewPlot("latency vs load", "load", "latency")
	p.AddSeries("ideal", []float64{0.1, 0.5, 1.0}, []float64{3, 3.5, 4})
	p.AddSeries("traditional", []float64{0.1, 0.5, 1.0}, []float64{3, 20, 90})
	out := p.String()
	if !strings.Contains(out, "latency vs load") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("series glyphs not plotted")
	}
	if !strings.Contains(out, "ideal") || !strings.Contains(out, "traditional") {
		t.Error("legend missing")
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("empty", "x", "y")
	if !strings.Contains(p.String(), "no data") {
		t.Error("empty plot must say so")
	}
}

func TestPlotDegenerateRange(t *testing.T) {
	p := NewPlot("flat", "x", "y")
	p.AddSeries("s", []float64{1, 1, 1}, []float64{5, 5, 5})
	out := p.String() // must not panic or divide by zero
	if !strings.Contains(out, "flat") {
		t.Error("flat plot failed to render")
	}
}

func TestPlotLengthMismatchPanics(t *testing.T) {
	p := NewPlot("t", "x", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	p.AddSeries("s", []float64{1, 2}, []float64{1})
}
