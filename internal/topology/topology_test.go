package topology

import (
	"testing"
	"testing/quick"
)

// topologies under test, constructed fresh for each test.
func testTopologies() map[string]Topology {
	clos, err := NewFoldedClos(4, 4, 2)
	if err != nil {
		panic(err)
	}
	tree2, err := NewKAryNTree(4, 2)
	if err != nil {
		panic(err)
	}
	tree3, err := NewKAryNTree(2, 3)
	if err != nil {
		panic(err)
	}
	return map[string]Topology{
		"clos":   clos,
		"tree2":  tree2,
		"tree3":  tree3,
		"single": &SingleSwitch{N: 8},
		"paper":  PaperMIN(),
	}
}

func TestShapes(t *testing.T) {
	cases := []struct {
		name            string
		hosts, switches int
	}{
		{"clos", 16, 6},
		{"tree2", 16, 8},
		{"tree3", 8, 12},
		{"single", 8, 1},
		{"paper", 128, 24},
	}
	tops := testTopologies()
	for _, c := range cases {
		top := tops[c.name]
		if top.Hosts() != c.hosts {
			t.Errorf("%s: Hosts() = %d, want %d", c.name, top.Hosts(), c.hosts)
		}
		if top.Switches() != c.switches {
			t.Errorf("%s: Switches() = %d, want %d", c.name, top.Switches(), c.switches)
		}
	}
}

func TestPaperMINUses16PortSwitches(t *testing.T) {
	top := PaperMIN()
	for sw := 0; sw < top.Switches(); sw++ {
		if r := top.Radix(sw); r != 16 {
			t.Fatalf("switch %d radix = %d, want 16 (paper §4.1)", sw, r)
		}
	}
	if top.Hosts() != 128 {
		t.Fatalf("paper MIN has %d hosts, want 128", top.Hosts())
	}
}

// TestWiringIsInvolution checks that following any wired switch port to its
// peer and back returns to the origin, and that host attachments agree with
// HostPort. This validates the whole wiring of every topology.
func TestWiringIsInvolution(t *testing.T) {
	for name, top := range testTopologies() {
		hostSeen := make(map[int]bool)
		for sw := 0; sw < top.Switches(); sw++ {
			for p := 0; p < top.Radix(sw); p++ {
				ref := top.Peer(sw, p)
				if ref.ID == -1 {
					continue // unwired
				}
				if ref.IsHost {
					hsw, hport := top.HostPort(ref.ID)
					if hsw != sw || hport != p {
						t.Errorf("%s: host %d attached at (%d,%d) but HostPort says (%d,%d)",
							name, ref.ID, sw, p, hsw, hport)
					}
					if hostSeen[ref.ID] {
						t.Errorf("%s: host %d attached twice", name, ref.ID)
					}
					hostSeen[ref.ID] = true
					continue
				}
				back := top.Peer(ref.ID, ref.Port)
				if back.IsHost || back.ID != sw || back.Port != p {
					t.Errorf("%s: peer(%d,%d) = (%d,%d) but reverse = %+v",
						name, sw, p, ref.ID, ref.Port, back)
				}
			}
		}
		if len(hostSeen) != top.Hosts() {
			t.Errorf("%s: %d hosts wired, want %d", name, len(hostSeen), top.Hosts())
		}
	}
}

// TestPathsReachDestination walks every (src,dst,choice) path through the
// wiring and checks it terminates at dst's NIC.
func TestPathsReachDestination(t *testing.T) {
	for name, top := range testTopologies() {
		for src := 0; src < top.Hosts(); src++ {
			for dst := 0; dst < top.Hosts(); dst++ {
				if src == dst {
					continue
				}
				for choice := 0; choice < top.PathCount(src, dst); choice++ {
					hops := top.Path(src, dst, choice)
					if len(hops) == 0 {
						t.Fatalf("%s: empty path %d->%d", name, src, dst)
					}
					// First switch must be src's leaf.
					sw, _ := top.HostPort(src)
					if hops[0].Switch != sw {
						t.Fatalf("%s: path %d->%d starts at switch %d, want %d",
							name, src, dst, hops[0].Switch, sw)
					}
					// Walk the path through the wiring.
					for i, h := range hops {
						ref := top.Peer(h.Switch, h.OutPort)
						if i == len(hops)-1 {
							if !ref.IsHost || ref.ID != dst {
								t.Fatalf("%s: path %d->%d choice %d ends at %+v",
									name, src, dst, choice, ref)
							}
						} else {
							if ref.IsHost || ref.ID != hops[i+1].Switch {
								t.Fatalf("%s: path %d->%d choice %d hop %d leads to %+v, want switch %d",
									name, src, dst, choice, i, ref, hops[i+1].Switch)
							}
						}
					}
				}
			}
		}
	}
}

func TestPathsAreDistinct(t *testing.T) {
	// Different choices must produce different paths (load balancing
	// relies on this).
	for name, top := range testTopologies() {
		src, dst := 0, top.Hosts()-1
		n := top.PathCount(src, dst)
		seen := make(map[string]bool)
		for c := 0; c < n; c++ {
			key := ""
			for _, h := range top.Path(src, dst, c) {
				key += string(rune(h.Switch)) + ":" + string(rune(h.OutPort)) + ";"
			}
			if seen[key] {
				t.Errorf("%s: duplicate path for different choices", name)
			}
			seen[key] = true
		}
	}
}

func TestClosSameLeafPathIsLocal(t *testing.T) {
	clos := PaperMIN()
	// Hosts 0 and 1 share leaf 0.
	hops := clos.Path(0, 1, 0)
	if len(hops) != 1 || hops[0].Switch != 0 || hops[0].OutPort != 1 {
		t.Fatalf("same-leaf path = %v, want single local hop", hops)
	}
	if clos.PathCount(0, 1) != 1 {
		t.Fatal("same-leaf pair must have exactly one path")
	}
}

func TestClosCrossLeafPathCount(t *testing.T) {
	clos := PaperMIN()
	if n := clos.PathCount(0, 127); n != 8 {
		t.Fatalf("cross-leaf PathCount = %d, want 8 (one per spine)", n)
	}
	for c := 0; c < 8; c++ {
		hops := clos.Path(0, 127, c)
		if len(hops) != 3 {
			t.Fatalf("cross-leaf path length = %d, want 3", len(hops))
		}
		if hops[1].Switch != 16+c {
			t.Fatalf("choice %d traverses spine switch %d, want %d", c, hops[1].Switch, 16+c)
		}
	}
}

func TestTreeNCA(t *testing.T) {
	tr, _ := NewKAryNTree(2, 3) // 8 hosts, leaves of 2
	// Hosts 0,1 share leaf 0 -> 1 path.
	if n := tr.PathCount(0, 1); n != 1 {
		t.Errorf("PathCount(0,1) = %d, want 1", n)
	}
	// Hosts 0,2: leaves 0 and 1 differ in digit 0 -> NCA level 1 -> 2 paths.
	if n := tr.PathCount(0, 2); n != 2 {
		t.Errorf("PathCount(0,2) = %d, want 2", n)
	}
	// Hosts 0,7: leaves 0 and 3 differ in digit 1 -> NCA level 2 -> 4 paths.
	if n := tr.PathCount(0, 7); n != 4 {
		t.Errorf("PathCount(0,7) = %d, want 4", n)
	}
}

func TestInvalidShapes(t *testing.T) {
	if _, err := NewFoldedClos(0, 8, 8); err == nil {
		t.Error("NewFoldedClos(0,...) accepted")
	}
	if _, err := NewKAryNTree(1, 3); err == nil {
		t.Error("NewKAryNTree(k=1) accepted")
	}
	if _, err := NewKAryNTree(4, 0); err == nil {
		t.Error("NewKAryNTree(n=0) accepted")
	}
}

func TestPathToSelfPanics(t *testing.T) {
	for name, top := range testTopologies() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Path(0,0) did not panic", name)
				}
			}()
			top.Path(0, 0, 0)
		}()
	}
}

func TestTreePathPropertyRandomPairs(t *testing.T) {
	tr, _ := NewKAryNTree(4, 3) // 64 hosts
	prop := func(a, b uint8, c uint16) bool {
		src := int(a) % tr.Hosts()
		dst := int(b) % tr.Hosts()
		if src == dst {
			return true
		}
		choice := int(c) % tr.PathCount(src, dst)
		hops := tr.Path(src, dst, choice)
		// Walk and verify arrival.
		for i, h := range hops {
			ref := tr.Peer(h.Switch, h.OutPort)
			if i == len(hops)-1 {
				return ref.IsHost && ref.ID == dst
			}
			if ref.IsHost || ref.ID != hops[i+1].Switch {
				return false
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	for _, top := range testTopologies() {
		if top.Name() == "" {
			t.Error("empty topology name")
		}
	}
}

func TestMesh2DShape(t *testing.T) {
	m, err := NewMesh2D(4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hosts() != 128 || m.Switches() != 16 {
		t.Fatalf("mesh 4x4x8: %d hosts / %d switches", m.Hosts(), m.Switches())
	}
	if m.Radix(0) != 12 {
		t.Fatalf("mesh radix = %d, want 12", m.Radix(0))
	}
	if _, err := NewMesh2D(0, 4, 1); err == nil {
		t.Error("invalid mesh accepted")
	}
}

func TestMesh2DWiringAndPaths(t *testing.T) {
	m, err := NewMesh2D(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the generic validations.
	tops := map[string]Topology{"mesh": m}
	for name, top := range tops {
		hostSeen := make(map[int]bool)
		for sw := 0; sw < top.Switches(); sw++ {
			for p := 0; p < top.Radix(sw); p++ {
				ref := top.Peer(sw, p)
				if ref.ID == -1 {
					continue
				}
				if ref.IsHost {
					hostSeen[ref.ID] = true
					continue
				}
				back := top.Peer(ref.ID, ref.Port)
				if back.IsHost || back.ID != sw || back.Port != p {
					t.Fatalf("%s: wiring not involutive at (%d,%d)", name, sw, p)
				}
			}
		}
		if len(hostSeen) != top.Hosts() {
			t.Fatalf("%s: %d hosts wired, want %d", name, len(hostSeen), top.Hosts())
		}
		for src := 0; src < top.Hosts(); src++ {
			for dst := 0; dst < top.Hosts(); dst++ {
				if src == dst {
					continue
				}
				hops := top.Path(src, dst, 0)
				for i, h := range hops {
					ref := top.Peer(h.Switch, h.OutPort)
					if i == len(hops)-1 {
						if !ref.IsHost || ref.ID != dst {
							t.Fatalf("%s: path %d->%d ends at %+v", name, src, dst, ref)
						}
					} else if ref.IsHost || ref.ID != hops[i+1].Switch {
						t.Fatalf("%s: path %d->%d broken at hop %d", name, src, dst, i)
					}
				}
			}
		}
	}
}

func TestMesh2DDimensionOrder(t *testing.T) {
	m, _ := NewMesh2D(4, 4, 1)
	// Host 0 at switch (0,0), host 15 at switch (3,3): route goes +X 3
	// times, then +Y 3 times, then the host port.
	hops := m.Path(0, 15, 0)
	if len(hops) != 7 {
		t.Fatalf("XY path length = %d, want 7", len(hops))
	}
	for i := 0; i < 3; i++ {
		if hops[i].OutPort != 1+meshXPlus {
			t.Fatalf("hop %d not +X", i)
		}
	}
	for i := 3; i < 6; i++ {
		if hops[i].OutPort != 1+meshYPlus {
			t.Fatalf("hop %d not +Y", i)
		}
	}
}

func TestMesh2DSameSwitchPath(t *testing.T) {
	m, _ := NewMesh2D(2, 2, 4)
	hops := m.Path(0, 3, 0) // same switch, different host ports
	if len(hops) != 1 || hops[0].OutPort != 3 {
		t.Fatalf("intra-switch path = %v", hops)
	}
}
