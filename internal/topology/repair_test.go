package topology

import (
	"fmt"
	"testing"

	"deadlineqos/internal/xrand"
)

// blockedForDead returns the directed-link predicate for a dead-switch
// set: every out-link of a dead switch and every link toward one is
// unusable (the same expansion the network's fault installer applies).
func blockedForDead(t Topology, dead map[int]bool) func(sw, out int) bool {
	return func(sw, out int) bool {
		if dead[sw] {
			return true
		}
		peer := t.Peer(sw, out)
		return !peer.IsHost && peer.ID >= 0 && dead[peer.ID]
	}
}

// validateRepairedRoute checks one repaired path: it starts at src's leaf,
// follows real wiring, never revisits a switch, avoids every dead switch,
// and ends at dst's NIC.
func validateRepairedRoute(t *testing.T, topo Topology, src, dst int, dead map[int]bool, hops []Hop) {
	t.Helper()
	sw, _ := topo.HostPort(src)
	seen := map[int]bool{}
	for i, h := range hops {
		if h.Switch != sw {
			t.Fatalf("%s src=%d dst=%d hop %d at switch %d, route expects %d",
				topo.Name(), src, dst, i, h.Switch, sw)
		}
		if dead[sw] {
			t.Fatalf("%s src=%d dst=%d: repaired route traverses dead switch %d",
				topo.Name(), src, dst, sw)
		}
		if seen[sw] {
			t.Fatalf("%s src=%d dst=%d: repaired route loops through switch %d",
				topo.Name(), src, dst, sw)
		}
		seen[sw] = true
		peer := topo.Peer(sw, h.OutPort)
		if peer.ID < 0 {
			t.Fatalf("%s src=%d dst=%d: hop %d uses unwired port %d of switch %d",
				topo.Name(), src, dst, i, h.OutPort, sw)
		}
		if peer.IsHost {
			if i != len(hops)-1 {
				t.Fatalf("%s src=%d dst=%d: route reaches a host mid-path at hop %d",
					topo.Name(), src, dst, i)
			}
			if peer.ID != dst {
				t.Fatalf("%s src=%d dst=%d: route delivers to host %d",
					topo.Name(), src, dst, peer.ID)
			}
			return
		}
		sw = peer.ID
	}
	t.Fatalf("%s src=%d dst=%d: route ends without reaching the destination NIC",
		topo.Name(), src, dst)
}

// reachable answers ground truth by an independent breadth-first search
// over the surviving switch graph (undirected: switch links come in
// wired pairs).
func reachable(topo Topology, src, dst int, dead map[int]bool) bool {
	srcSw, _ := topo.HostPort(src)
	dstSw, _ := topo.HostPort(dst)
	if dead[srcSw] || dead[dstSw] {
		return false
	}
	if srcSw == dstSw {
		return true
	}
	seen := map[int]bool{srcSw: true}
	queue := []int{srcSw}
	for len(queue) > 0 {
		sw := queue[0]
		queue = queue[1:]
		for p := 0; p < topo.Radix(sw); p++ {
			peer := topo.Peer(sw, p)
			if peer.IsHost || peer.ID < 0 || dead[peer.ID] || seen[peer.ID] {
				continue
			}
			if peer.ID == dstSw {
				return true
			}
			seen[peer.ID] = true
			queue = append(queue, peer.ID)
		}
	}
	return false
}

// TestRepairPathFuzz draws random topologies and random dead-switch sets
// and checks, for a sample of host pairs, that RepairPath either returns a
// loop-free route over surviving switches or correctly reports the pair
// unreachable.
func TestRepairPathFuzz(t *testing.T) {
	rng := xrand.New(0x5e9a11)
	build := func(round int) Topology {
		switch round % 4 {
		case 0:
			topo, err := NewFoldedClos(2+rng.Intn(5), 1+rng.Intn(4), 1+rng.Intn(4))
			if err != nil {
				t.Fatal(err)
			}
			return topo
		case 1:
			topo, err := NewKAryNTree(2+rng.Intn(2), 2+rng.Intn(2))
			if err != nil {
				t.Fatal(err)
			}
			return topo
		case 2:
			topo, err := NewMesh2D(2+rng.Intn(3), 2+rng.Intn(3), 1+rng.Intn(3))
			if err != nil {
				t.Fatal(err)
			}
			return topo
		default:
			return &SingleSwitch{N: 2 + rng.Intn(6)}
		}
	}
	for round := 0; round < 60; round++ {
		topo := build(round)
		dead := map[int]bool{}
		for i := rng.Intn(topo.Switches()); i > 0; i-- {
			dead[rng.Intn(topo.Switches())] = true
		}
		blocked := blockedForDead(topo, dead)
		hosts := topo.Hosts()
		for trial := 0; trial < 20; trial++ {
			src, dst := rng.Intn(hosts), rng.Intn(hosts)
			if src == dst {
				continue
			}
			hops := RepairPath(topo, src, dst, blocked)
			want := reachable(topo, src, dst, dead)
			if hops == nil {
				if want {
					t.Fatalf("round %d %s: RepairPath reports %d->%d unreachable with dead=%v, but a path exists",
						round, topo.Name(), src, dst, dead)
				}
				continue
			}
			if !want {
				t.Fatalf("round %d %s: RepairPath found a route %d->%d although the pair is partitioned (dead=%v)",
					round, topo.Name(), src, dst, dead)
			}
			validateRepairedRoute(t, topo, src, dst, dead, hops)
		}
	}
}

// TestRepairPathDeterministic pins that repeated calls with the same
// inputs yield identical routes, and that the healthy repair route of a
// mesh matches dimension-order preference (no gratuitous detours).
func TestRepairPathDeterministic(t *testing.T) {
	topo, err := NewMesh2D(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	dead := map[int]bool{4: true} // centre switch
	blocked := blockedForDead(topo, dead)
	a := RepairPath(topo, 0, 17, blocked)
	b := RepairPath(topo, 0, 17, blocked)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("repeated repair differs:\n%v\n%v", a, b)
	}
	if a == nil {
		t.Fatal("corner-to-corner pair reported unreachable around centre switch")
	}
	// Healthy mesh: the repaired route must be a shortest path, i.e. the
	// same length as dimension-order routing.
	healthy := RepairPath(topo, 0, 17, func(int, int) bool { return false })
	if got, want := len(healthy), len(topo.Path(0, 17, 0)); got != want {
		t.Fatalf("healthy repair length %d, dimension-order length %d", got, want)
	}
}

// TestRouteSwitchesAndHops pins the route-walking helpers against the
// topology's own Path output.
func TestRouteSwitchesAndHops(t *testing.T) {
	topo := PaperMIN()
	src, dst := 3, 77
	hops := topo.Path(src, dst, 2)
	route := Ports(hops)
	sws := RouteSwitches(topo, src, route)
	if len(sws) != len(hops) {
		t.Fatalf("RouteSwitches length %d, want %d", len(sws), len(hops))
	}
	for i := range hops {
		if sws[i] != hops[i].Switch {
			t.Fatalf("hop %d: switch %d, want %d", i, sws[i], hops[i].Switch)
		}
	}
	back := RouteHops(topo, src, route)
	if fmt.Sprint(back) != fmt.Sprint(hops) {
		t.Fatalf("RouteHops mismatch:\n%v\n%v", back, hops)
	}
}
