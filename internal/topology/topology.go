// Package topology builds the interconnection networks the simulator runs
// on and computes the fixed routes that the paper's architecture requires
// (source routing chosen at admission time, §3).
//
// The paper evaluates a "butterfly multi-stage interconnection network with
// 128 endpoints ... a folded (bidirectional) perfect-shuffle" built from
// 16-port switches. We provide:
//
//   - FoldedClos: a two-level folded Clos (leaf/spine) network. With 16
//     leaves of 8 down + 8 up ports and 8 spines of 16 down ports this
//     realises the paper's 128-endpoint MIN with 16-port switches and
//     perfect-shuffle inter-stage wiring.
//   - KAryNTree: the general k-ary n-tree folded butterfly, for k^n
//     endpoints with 2k-port switches, used for scaled-down benchmark
//     configurations and topology-sensitivity experiments.
//   - SingleSwitch: all hosts on one switch, for unit tests and the
//     buffer-level examples.
//
// All topologies expose every minimal up/down path between two hosts; the
// admission control picks one per flow (load balancing, §3), and the route
// travels in the packet header as a list of output ports.
package topology

import "fmt"

// NodeRef identifies one side of a link: either a host NIC (IsHost, ID is
// the host index, Port 0) or a switch port.
type NodeRef struct {
	IsHost bool
	ID     int // host index or switch index
	Port   int // port on that node (hosts have a single port 0)
}

// Hop is one routing step: the switch being traversed and the output port
// the packet must take there.
type Hop struct {
	Switch  int
	OutPort int
}

// Topology describes a network: its hosts, switches, wiring and minimal
// paths. Implementations must be deterministic pure values.
type Topology interface {
	// Name identifies the topology for reports.
	Name() string
	// Hosts returns the number of endpoints.
	Hosts() int
	// Switches returns the number of switches.
	Switches() int
	// Radix returns the number of ports of switch sw (ports are
	// 0..Radix-1; not all need be wired).
	Radix(sw int) int
	// HostPort returns the switch and switch port that host h attaches to.
	HostPort(h int) (sw, port int)
	// Peer returns what is wired to switch sw's port p. The zero NodeRef
	// with ID -1 marks an unwired port.
	Peer(sw, port int) NodeRef
	// PathCount returns the number of minimal paths from src to dst
	// (both host indices, src != dst).
	PathCount(src, dst int) int
	// Path returns minimal path number choice (0 <= choice < PathCount)
	// from src to dst as the sequence of switch hops. The final hop's
	// output port attaches to dst's NIC.
	Path(src, dst, choice int) []Hop
}

// Unwired is the NodeRef returned by Peer for unconnected ports.
var Unwired = NodeRef{ID: -1}

// --- FoldedClos -----------------------------------------------------------

// FoldedClos is a two-level leaf/spine network: Leaves switches each attach
// Down hosts (ports 0..Down-1) and have Up uplinks (ports Down..Down+Up-1),
// one to each of Up spine switches; spine s's port i attaches leaf i. The
// inter-stage wiring is a perfect shuffle: every leaf reaches every spine.
type FoldedClos struct {
	Leaves int // number of leaf switches
	Down   int // hosts per leaf
	Up     int // uplinks per leaf == number of spines
}

// NewFoldedClos returns the folded Clos with the given shape after
// validating it.
func NewFoldedClos(leaves, down, up int) (*FoldedClos, error) {
	if leaves <= 0 || down <= 0 || up <= 0 {
		return nil, fmt.Errorf("topology: non-positive folded-Clos shape %d/%d/%d", leaves, down, up)
	}
	return &FoldedClos{Leaves: leaves, Down: down, Up: up}, nil
}

// PaperMIN returns the evaluation network of the paper: 128 endpoints on
// 16-port switches (16 leaves x (8 down + 8 up), 8 spines x 16 down).
func PaperMIN() *FoldedClos { return &FoldedClos{Leaves: 16, Down: 8, Up: 8} }

// Name identifies the topology.
func (c *FoldedClos) Name() string {
	return fmt.Sprintf("folded-clos-%dx%d+%d", c.Leaves, c.Down, c.Up)
}

// Hosts returns Leaves*Down.
func (c *FoldedClos) Hosts() int { return c.Leaves * c.Down }

// Switches returns leaves + spines.
func (c *FoldedClos) Switches() int { return c.Leaves + c.Up }

// spine returns the switch index of spine s.
func (c *FoldedClos) spine(s int) int { return c.Leaves + s }

// Radix returns the port count of switch sw.
func (c *FoldedClos) Radix(sw int) int {
	if sw < c.Leaves {
		return c.Down + c.Up
	}
	return c.Leaves
}

// HostPort returns host h's attachment point.
func (c *FoldedClos) HostPort(h int) (sw, port int) { return h / c.Down, h % c.Down }

// Peer returns the far end of switch sw's port p.
func (c *FoldedClos) Peer(sw, port int) NodeRef {
	if sw < c.Leaves { // leaf
		if port < c.Down {
			return NodeRef{IsHost: true, ID: sw*c.Down + port}
		}
		if port < c.Down+c.Up {
			return NodeRef{ID: c.spine(port - c.Down), Port: sw}
		}
		return Unwired
	}
	// Spine: port i leads to leaf i's uplink toward this spine.
	s := sw - c.Leaves
	if port < c.Leaves {
		return NodeRef{ID: port, Port: c.Down + s}
	}
	return Unwired
}

// PathCount returns 1 for same-leaf pairs and the spine count otherwise.
func (c *FoldedClos) PathCount(src, dst int) int {
	if src/c.Down == dst/c.Down {
		return 1
	}
	return c.Up
}

// Path returns the choice-th minimal path from src to dst.
func (c *FoldedClos) Path(src, dst, choice int) []Hop {
	if src == dst {
		panic("topology: path to self")
	}
	ls, ld := src/c.Down, dst/c.Down
	if ls == ld {
		return []Hop{{Switch: ls, OutPort: dst % c.Down}}
	}
	if choice < 0 || choice >= c.Up {
		panic(fmt.Sprintf("topology: path choice %d out of %d", choice, c.Up))
	}
	return []Hop{
		{Switch: ls, OutPort: c.Down + choice},
		{Switch: c.spine(choice), OutPort: ld},
		{Switch: ld, OutPort: dst % c.Down},
	}
}

// --- KAryNTree -------------------------------------------------------------

// KAryNTree is the classic k-ary n-tree folded butterfly MIN: k^n hosts,
// n levels of k^(n-1) switches built from 2k-port switches (k down ports
// 0..k-1, k up ports k..2k-1; the top level leaves its up ports unwired).
//
// A level-l switch is identified by its position p, an (n-1)-digit base-k
// number. The butterfly wiring connects switch (l, p)'s up port k+j to
// switch (l+1, p with digit l replaced by j), whose down port digit-l(p)
// leads back.
type KAryNTree struct {
	K, N      int
	perLevel  int // k^(n-1) switches per level
	hostCount int // k^n
}

// NewKAryNTree returns the k-ary n-tree after validating the shape.
func NewKAryNTree(k, n int) (*KAryNTree, error) {
	if k < 2 || n < 1 {
		return nil, fmt.Errorf("topology: invalid k-ary n-tree shape k=%d n=%d", k, n)
	}
	per, hosts := 1, k
	for i := 1; i < n; i++ {
		per *= k
		hosts *= k
	}
	return &KAryNTree{K: k, N: n, perLevel: per, hostCount: hosts}, nil
}

// Name identifies the topology.
func (t *KAryNTree) Name() string { return fmt.Sprintf("%d-ary-%d-tree", t.K, t.N) }

// Hosts returns k^n.
func (t *KAryNTree) Hosts() int { return t.hostCount }

// Switches returns n * k^(n-1).
func (t *KAryNTree) Switches() int { return t.N * t.perLevel }

// Radix returns 2k for every switch.
func (t *KAryNTree) Radix(int) int { return 2 * t.K }

// level and pos decompose a switch index; sw = level*perLevel + pos.
func (t *KAryNTree) level(sw int) int { return sw / t.perLevel }
func (t *KAryNTree) pos(sw int) int   { return sw % t.perLevel }
func (t *KAryNTree) swIndex(level, pos int) int {
	return level*t.perLevel + pos
}

// digit returns base-k digit i of p.
func (t *KAryNTree) digit(p, i int) int {
	for ; i > 0; i-- {
		p /= t.K
	}
	return p % t.K
}

// setDigit returns p with base-k digit i replaced by v.
func (t *KAryNTree) setDigit(p, i, v int) int {
	pow := 1
	for j := 0; j < i; j++ {
		pow *= t.K
	}
	return p + (v-t.digit(p, i))*pow
}

// HostPort attaches host h to level-0 switch h/k, down port h%k.
func (t *KAryNTree) HostPort(h int) (sw, port int) { return h / t.K, h % t.K }

// Peer returns the far end of switch sw's port p.
func (t *KAryNTree) Peer(sw, port int) NodeRef {
	l, p := t.level(sw), t.pos(sw)
	if port < t.K { // down port
		if l == 0 {
			return NodeRef{IsHost: true, ID: p*t.K + port}
		}
		// Down port m at level l leads to (l-1, p with digit l-1 := m),
		// arriving on that switch's up port k + digit(l-1) of p.
		q := t.setDigit(p, l-1, port)
		return NodeRef{ID: t.swIndex(l-1, q), Port: t.K + t.digit(p, l-1)}
	}
	if port < 2*t.K { // up port
		if l == t.N-1 {
			return Unwired // top level has no up links
		}
		j := port - t.K
		q := t.setDigit(p, l, j)
		return NodeRef{ID: t.swIndex(l+1, q), Port: t.digit(p, l)}
	}
	return Unwired
}

// nca returns the level of the nearest common ancestor stage of the two
// hosts' leaf switches: the smallest L such that the leaf positions agree
// on all digits with index >= L. Same leaf gives 0.
func (t *KAryNTree) nca(src, dst int) int {
	p, q := src/t.K, dst/t.K
	L := 0
	for i := 0; i < t.N-1; i++ {
		if t.digit(p, i) != t.digit(q, i) {
			L = i + 1
		}
	}
	return L
}

// PathCount returns k^L where L is the nearest-common-ancestor level.
func (t *KAryNTree) PathCount(src, dst int) int {
	n := 1
	for i := 0; i < t.nca(src, dst); i++ {
		n *= t.K
	}
	return n
}

// Path returns the choice-th minimal up/down path: up ports chosen by the
// base-k digits of choice, then deterministic down routing to dst.
func (t *KAryNTree) Path(src, dst, choice int) []Hop {
	if src == dst {
		panic("topology: path to self")
	}
	L := t.nca(src, dst)
	if choice < 0 || choice >= t.PathCount(src, dst) {
		panic(fmt.Sprintf("topology: path choice %d out of %d", choice, t.PathCount(src, dst)))
	}
	var hops []Hop
	p := src / t.K
	// Ascend L levels, picking up port digit l of choice at level l.
	c := choice
	for l := 0; l < L; l++ {
		j := c % t.K
		c /= t.K
		hops = append(hops, Hop{Switch: t.swIndex(l, p), OutPort: t.K + j})
		p = t.setDigit(p, l, j)
	}
	// Descend: at level l take down port digit(l-1) of the destination
	// leaf position, which rewrites our digit l-1 to match dst's.
	q := dst / t.K
	for l := L; l >= 1; l-- {
		m := t.digit(q, l-1)
		hops = append(hops, Hop{Switch: t.swIndex(l, p), OutPort: m})
		p = t.setDigit(p, l-1, m)
	}
	// Leaf delivery.
	hops = append(hops, Hop{Switch: t.swIndex(0, p), OutPort: dst % t.K})
	return hops
}

// --- SingleSwitch ------------------------------------------------------------

// SingleSwitch attaches N hosts to one N-port switch. It isolates the
// buffer and arbiter behaviour from topology effects and is the unit-test
// network.
type SingleSwitch struct{ N int }

// Name identifies the topology.
func (s *SingleSwitch) Name() string { return fmt.Sprintf("single-switch-%d", s.N) }

// Hosts returns N.
func (s *SingleSwitch) Hosts() int { return s.N }

// Switches returns 1.
func (s *SingleSwitch) Switches() int { return 1 }

// Radix returns N.
func (s *SingleSwitch) Radix(int) int { return s.N }

// HostPort attaches host h to port h.
func (s *SingleSwitch) HostPort(h int) (sw, port int) { return 0, h }

// Peer returns host p for every port.
func (s *SingleSwitch) Peer(sw, port int) NodeRef {
	if port < s.N {
		return NodeRef{IsHost: true, ID: port}
	}
	return Unwired
}

// PathCount returns 1.
func (s *SingleSwitch) PathCount(src, dst int) int { return 1 }

// Path returns the single direct hop.
func (s *SingleSwitch) Path(src, dst, choice int) []Hop {
	if src == dst {
		panic("topology: path to self")
	}
	return []Hop{{Switch: 0, OutPort: dst}}
}

// --- Mesh2D --------------------------------------------------------------

// Mesh2D is a direct network: a Cols x Rows mesh of switches with
// HostsPerSwitch endpoints attached to every switch and dimension-order
// (X-then-Y) routing, which is deadlock-free on a mesh without dedicated
// escape channels — so it composes with the two QoS VCs untouched.
//
// Port layout per switch: 0..HostsPerSwitch-1 attach hosts, then +X, -X,
// +Y, -Y neighbour ports (edge switches leave absent neighbours unwired).
type Mesh2D struct {
	Cols, Rows     int
	HostsPerSwitch int
}

// NewMesh2D returns the mesh after validating its shape.
func NewMesh2D(cols, rows, hostsPerSwitch int) (*Mesh2D, error) {
	if cols <= 0 || rows <= 0 || hostsPerSwitch <= 0 {
		return nil, fmt.Errorf("topology: non-positive mesh shape %dx%d/%d", cols, rows, hostsPerSwitch)
	}
	if cols*rows < 2 && hostsPerSwitch < 2 {
		return nil, fmt.Errorf("topology: mesh too small")
	}
	return &Mesh2D{Cols: cols, Rows: rows, HostsPerSwitch: hostsPerSwitch}, nil
}

// Neighbour port indices, offset by HostsPerSwitch.
const (
	meshXPlus = iota
	meshXMinus
	meshYPlus
	meshYMinus
)

// Name identifies the topology.
func (m *Mesh2D) Name() string {
	return fmt.Sprintf("mesh-%dx%dx%d", m.Cols, m.Rows, m.HostsPerSwitch)
}

// Hosts returns Cols*Rows*HostsPerSwitch.
func (m *Mesh2D) Hosts() int { return m.Cols * m.Rows * m.HostsPerSwitch }

// Switches returns Cols*Rows.
func (m *Mesh2D) Switches() int { return m.Cols * m.Rows }

// Radix returns HostsPerSwitch + 4 for every switch (edge switches simply
// leave absent neighbour ports unwired).
func (m *Mesh2D) Radix(int) int { return m.HostsPerSwitch + 4 }

// coord converts a switch index to (x, y).
func (m *Mesh2D) coord(sw int) (x, y int) { return sw % m.Cols, sw / m.Cols }

// swAt converts (x, y) to a switch index.
func (m *Mesh2D) swAt(x, y int) int { return y*m.Cols + x }

// HostPort attaches host h to switch h/HostsPerSwitch.
func (m *Mesh2D) HostPort(h int) (sw, port int) {
	return h / m.HostsPerSwitch, h % m.HostsPerSwitch
}

// Peer returns the far end of switch sw's port p.
func (m *Mesh2D) Peer(sw, port int) NodeRef {
	if port < m.HostsPerSwitch {
		return NodeRef{IsHost: true, ID: sw*m.HostsPerSwitch + port}
	}
	x, y := m.coord(sw)
	switch port - m.HostsPerSwitch {
	case meshXPlus:
		if x+1 < m.Cols {
			return NodeRef{ID: m.swAt(x+1, y), Port: m.HostsPerSwitch + meshXMinus}
		}
	case meshXMinus:
		if x > 0 {
			return NodeRef{ID: m.swAt(x-1, y), Port: m.HostsPerSwitch + meshXPlus}
		}
	case meshYPlus:
		if y+1 < m.Rows {
			return NodeRef{ID: m.swAt(x, y+1), Port: m.HostsPerSwitch + meshYMinus}
		}
	case meshYMinus:
		if y > 0 {
			return NodeRef{ID: m.swAt(x, y-1), Port: m.HostsPerSwitch + meshYPlus}
		}
	}
	return Unwired
}

// PathCount returns 1: dimension-order routing is deterministic.
func (m *Mesh2D) PathCount(src, dst int) int { return 1 }

// Path returns the X-then-Y dimension-order route.
func (m *Mesh2D) Path(src, dst, choice int) []Hop {
	if src == dst {
		panic("topology: path to self")
	}
	sw, _ := m.HostPort(src)
	dsw, dport := m.HostPort(dst)
	var hops []Hop
	x, y := m.coord(sw)
	dx, dy := m.coord(dsw)
	for x != dx {
		if x < dx {
			hops = append(hops, Hop{Switch: m.swAt(x, y), OutPort: m.HostsPerSwitch + meshXPlus})
			x++
		} else {
			hops = append(hops, Hop{Switch: m.swAt(x, y), OutPort: m.HostsPerSwitch + meshXMinus})
			x--
		}
	}
	for y != dy {
		if y < dy {
			hops = append(hops, Hop{Switch: m.swAt(x, y), OutPort: m.HostsPerSwitch + meshYPlus})
			y++
		} else {
			hops = append(hops, Hop{Switch: m.swAt(x, y), OutPort: m.HostsPerSwitch + meshYMinus})
			y--
		}
	}
	hops = append(hops, Hop{Switch: m.swAt(x, y), OutPort: dport})
	return hops
}
