package topology

// Route repair: recomputing paths around dead switches and severed cables.
//
// The paper's source routing fixes a minimal path per flow at admission
// time (§3). When a SwitchDown or PortDown fault removes part of the
// fabric, those fixed routes blackhole, so the repair layer recomputes a
// deterministic alternate path over the surviving links. RepairPath is a
// breadth-first search over the switch graph that expands neighbours in
// ascending port order: it returns the first-found shortest surviving
// path, which is a pure function of (topology, blocked set) — the same
// inputs always yield the same route, keeping repaired runs replayable at
// any shard count. On a Mesh2D the ascending port order (+X, -X, +Y, -Y
// after the host ports) makes the search prefer dimension-order-style
// detours, so repaired mesh routes stay as close to X-then-Y as the dead
// set allows.

// RepairPath returns a shortest path from src to dst (host indices) over
// the links the blocked predicate allows, or nil when the pair is
// partitioned. blocked(sw, out) must report true for every unusable
// directed link: the out-links of dead switches, the in-links toward dead
// switches (i.e. the neighbour-side ports facing them), and both
// directions of severed cables. The result is loop-free by construction
// (the search visits each switch at most once) and need not be minimal in
// the healthy topology — a detour longer than Topology.Path's routes is
// exactly what repair is for.
func RepairPath(t Topology, src, dst int, blocked func(sw, out int) bool) []Hop {
	if src == dst {
		panic("topology: repair path to self")
	}
	srcSw, srcPort := t.HostPort(src)
	dstSw, dstPort := t.HostPort(dst)
	// The ejection link to dst and the injection cable from src are the
	// only attachment points; if either is blocked no detour can help.
	// (A cut host cable blocks both directions, and blocked(srcSw,
	// srcPort) is the switch-side half of src's cable.)
	if blocked(dstSw, dstPort) || blocked(srcSw, srcPort) {
		return nil
	}
	if srcSw == dstSw {
		return []Hop{{Switch: srcSw, OutPort: dstPort}}
	}
	// BFS over switches, expanding ports in ascending order so the
	// first-found shortest path is deterministic.
	type cameFrom struct {
		sw  int // previous switch
		out int // output port taken on it
	}
	parent := make(map[int]cameFrom, t.Switches())
	parent[srcSw] = cameFrom{sw: -1}
	queue := []int{srcSw}
	for len(queue) > 0 {
		sw := queue[0]
		queue = queue[1:]
		if sw == dstSw {
			break
		}
		for p := 0; p < t.Radix(sw); p++ {
			if blocked(sw, p) {
				continue
			}
			peer := t.Peer(sw, p)
			if peer.IsHost || peer.ID < 0 {
				continue
			}
			if _, seen := parent[peer.ID]; seen {
				continue
			}
			parent[peer.ID] = cameFrom{sw: sw, out: p}
			queue = append(queue, peer.ID)
		}
	}
	if _, ok := parent[dstSw]; !ok {
		return nil
	}
	var rev []Hop
	for sw := dstSw; ; {
		from := parent[sw]
		if from.sw < 0 {
			break
		}
		rev = append(rev, Hop{Switch: from.sw, OutPort: from.out})
		sw = from.sw
	}
	hops := make([]Hop, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		hops = append(hops, rev[i])
	}
	return append(hops, Hop{Switch: dstSw, OutPort: dstPort})
}

// Ports flattens a hop sequence into the per-switch output-port list that
// packet headers carry (the same encoding admission.Controller uses).
func Ports(hops []Hop) []int {
	if hops == nil {
		return nil
	}
	route := make([]int, len(hops))
	for i, h := range hops {
		route[i] = h.OutPort
	}
	return route
}

// RouteSwitches returns the switches a port-list route from host src
// traverses, by walking the wiring. Used to decide whether a fixed route
// crosses a switch that just died.
func RouteSwitches(t Topology, src int, route []int) []int {
	sw, _ := t.HostPort(src)
	switches := make([]int, 0, len(route))
	for _, p := range route {
		switches = append(switches, sw)
		peer := t.Peer(sw, p)
		if peer.IsHost || peer.ID < 0 {
			break
		}
		sw = peer.ID
	}
	return switches
}

// RouteHops reconstructs the hop sequence of a port-list route from host
// src (the inverse of Ports given the source host).
func RouteHops(t Topology, src int, route []int) []Hop {
	sw, _ := t.HostPort(src)
	hops := make([]Hop, 0, len(route))
	for _, p := range route {
		hops = append(hops, Hop{Switch: sw, OutPort: p})
		peer := t.Peer(sw, p)
		if peer.IsHost || peer.ID < 0 {
			break
		}
		sw = peer.ID
	}
	return hops
}
