package admission

import (
	"testing"
)

// leafHosts returns the hosts attached to leaf switch sw.
func leafHosts(c *Controller, sw int) []int {
	var hosts []int
	for h := 0; h < c.topo.Hosts(); h++ {
		if s, _ := c.topo.HostPort(h); s == sw {
			hosts = append(hosts, h)
		}
	}
	return hosts
}

func TestPodLeasePartitionsCapacity(t *testing.T) {
	c, _ := newController(t, 1.0)
	pod := leafHosts(c, 0)
	if len(pod) == 0 {
		t.Fatal("leaf 0 has no hosts")
	}
	c.SetPodLease(pod, 0.5)
	// Injection from a leased host may only use the un-leased share.
	if _, _, err := c.Reserve(pod[0], 127, 0.6); err == nil {
		t.Error("reserve above the un-leased injection share accepted")
	}
	if _, _, err := c.Reserve(pod[0], 127, 0.4); err != nil {
		t.Errorf("reserve within the un-leased injection share rejected: %v", err)
	}
	// Ejection towards a leased host is capped the same way.
	if _, _, err := c.Reserve(127, pod[1], 0.6); err == nil {
		t.Error("reserve above the un-leased ejection share accepted")
	}
	if _, _, err := c.Reserve(127, pod[1], 0.4); err != nil {
		t.Errorf("reserve within the un-leased ejection share rejected: %v", err)
	}
	if err := c.AuditLedger(); err != nil {
		t.Fatal(err)
	}
	// Reclaiming the lease restores the full limits.
	c.SetPodLease(pod, 0)
	if _, _, err := c.Reserve(pod[0], 126, 0.55); err != nil {
		t.Errorf("reserve after lease reclaim rejected: %v", err)
	}
	if err := c.AuditLedger(); err != nil {
		t.Fatal(err)
	}
}

func TestCanPodLease(t *testing.T) {
	c, _ := newController(t, 1.0)
	pod := leafHosts(c, 0)
	if !c.CanPodLease(pod, 0.9) {
		t.Error("empty ledger refused a 0.9 lease")
	}
	// 0.6 reserved into the pod: only 0.4 of the ejection link is leasable.
	if _, _, err := c.Reserve(127, pod[0], 0.6); err != nil {
		t.Fatal(err)
	}
	if c.CanPodLease(pod, 0.5) {
		t.Error("lease granted over bandwidth the root already reserved (ejection)")
	}
	if !c.CanPodLease(pod, 0.2) {
		t.Error("lease refused despite sufficient ejection headroom")
	}
	// Same check on the injection side.
	if _, _, err := c.Reserve(pod[1], 127, 0.6); err != nil {
		t.Fatal(err)
	}
	if c.CanPodLease(pod, 0.5) {
		t.Error("lease granted over bandwidth the root already reserved (injection)")
	}
}

func TestSetMaxUtilBounds(t *testing.T) {
	c, _ := newController(t, 1.0)
	c.SetMaxUtil(0.3)
	if got := c.MaxUtil(); got != 0.3 {
		t.Fatalf("MaxUtil = %v, want 0.3", got)
	}
	for _, bad := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetMaxUtil(%v) did not panic", bad)
				}
			}()
			c.SetMaxUtil(bad)
		}()
	}
}

func TestRestoreBalancesLedger(t *testing.T) {
	c, _ := newController(t, 1.0)
	route, h1, err := c.Reserve(0, 127, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Reconcile a replicated grant along the same fixed route: the ledger
	// must stay exactly balanced, audit included.
	h2 := c.Restore(0, route, 0.3)
	if err := c.AuditLedger(); err != nil {
		t.Fatal(err)
	}
	if got := c.HostReserved(0); got != 0.5 {
		t.Errorf("host 0 reserved %v after restore, want 0.5", got)
	}
	if got := c.UtilOfLimit(); got < 0.5-1e-12 {
		t.Errorf("UtilOfLimit %v after restore, want >= 0.5", got)
	}
	c.Release(h1)
	c.Release(h2)
	if err := c.AuditLedger(); err != nil {
		t.Fatal(err)
	}
	if c.ActiveFlows() != 0 {
		t.Errorf("%d flows left after releases", c.ActiveFlows())
	}
	if got := c.UtilOfLimit(); got != 0 {
		t.Errorf("UtilOfLimit %v after full release, want 0", got)
	}
}

// Restore must account even grants that exceed the successor's shrunken
// lease — the excess drains via teardowns, it is never dropped.
func TestRestoreAboveLimit(t *testing.T) {
	c, _ := newController(t, 1.0)
	route, _, err := c.Reserve(0, 127, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	c.SetMaxUtil(0.2)
	c.Restore(0, route, 0.1)
	if err := c.AuditLedger(); err != nil {
		t.Fatal(err)
	}
	if got := c.UtilOfLimit(); got <= 1 {
		t.Errorf("UtilOfLimit %v, want > 1 (over-committed after shrink)", got)
	}
	// New admissions are blocked until the excess drains.
	if _, _, err := c.Reserve(0, 126, 0.05); err == nil {
		t.Error("reserve admitted into an over-committed ledger")
	}
}
