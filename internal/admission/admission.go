// Package admission implements the centralised connection admission
// control of the paper's architecture (§3): bandwidth reservation happens
// at a single point (the fabric manager, as in PCI AS or InfiniBand) and
// no record is kept in the switches. Admission fixes each flow's route;
// because reservation considers the load already placed on every link, it
// balances flows across the equivalent minimal paths of the MIN — the
// paper's answer to why fixed (not deterministic) routing still spreads
// load.
//
// Best-effort traffic is not reserved but still uses fixed routes (to
// avoid out-of-order delivery); its paths are spread deterministically by
// hashing the flow identity.
package admission

import (
	"fmt"

	"deadlineqos/internal/metrics"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// Metrics bundles the admission-control instruments of the metrics
// plane: reservation grants, refusals, and releases. All instrument
// methods are nil-safe, so the zero value disables recording.
type Metrics struct {
	Reserves *metrics.Counter
	Rejects  *metrics.Counter
	Releases *metrics.Counter
}

// linkKey identifies a directed switch output link.
type linkKey struct {
	sw, port int
}

// Controller is the centralised admission control and route assignment
// authority for one network.
type Controller struct {
	topo   topology.Topology
	linkBW units.Bandwidth
	// maxUtil caps reservations per link as a fraction of capacity; the
	// paper's regulated traffic never oversubscribes links ("traffic is
	// regulated (no over-subscription of the links)", §3.2).
	maxUtil float64

	reserved map[linkKey]units.Bandwidth
	hostInj  []units.Bandwidth // reservation on each host's injection link
	// leased and leasedHost record the capacity fraction delegated away to
	// pod CACs: this controller (the root's) must not admit into the
	// leased share of a link or a host injection cable. Absent entries are
	// unleased.
	leased     map[linkKey]float64
	leasedHost []float64
	// capScale derates individual link capacities (degraded links); links
	// absent from the map have full capacity.
	capScale map[linkKey]float64
	// deadSw and deadLink track SwitchDown / PortDown faults: capacity
	// that is gone entirely (a derate scale cannot express zero). Reserve
	// refuses paths through them and falls back to repaired detours.
	deadSw   map[int]bool
	deadLink map[linkKey]bool
	// flows records admitted reservations so they can be released.
	flows  map[FlowHandle]reservation
	nextFH FlowHandle
	// byLink and byHost list the live handles charged to each link and
	// each host injection link, in admission order. They exist so Release
	// can restore the float ledger exactly: instead of subtracting (which
	// does not invert addition in float64), the affected sums are
	// recomputed over the surviving handles in their original order,
	// leaving Reserved/HostReserved byte-identical to a history in which
	// the released flow never existed.
	byLink map[linkKey][]FlowHandle
	byHost [][]FlowHandle

	mtr Metrics
}

// SetMetrics installs the controller's metric instruments (the zero
// Metrics disables them). The controller runs entirely on the manager
// host's shard — pre-run setup happens before the shard goroutines
// start — so the instruments may come from that shard's metrics set.
func (c *Controller) SetMetrics(m Metrics) { c.mtr = m }

// FlowHandle identifies an admitted reservation for later release.
type FlowHandle uint64

// reservation remembers what Reserve charged, for Release.
type reservation struct {
	src  int
	bw   units.Bandwidth
	hops []topology.Hop
}

// New returns a Controller for the topology with the given link bandwidth.
// maxUtil in (0,1] caps per-link reservation (1.0 = full link capacity).
func New(topo topology.Topology, linkBW units.Bandwidth, maxUtil float64) (*Controller, error) {
	if maxUtil <= 0 || maxUtil > 1 {
		return nil, fmt.Errorf("admission: maxUtil %v out of (0,1]", maxUtil)
	}
	if linkBW <= 0 {
		return nil, fmt.Errorf("admission: non-positive link bandwidth %v", linkBW)
	}
	return &Controller{
		topo:       topo,
		linkBW:     linkBW,
		maxUtil:    maxUtil,
		reserved:   make(map[linkKey]units.Bandwidth),
		hostInj:    make([]units.Bandwidth, topo.Hosts()),
		leased:     make(map[linkKey]float64),
		leasedHost: make([]float64, topo.Hosts()),
		capScale:   make(map[linkKey]float64),
		deadSw:     make(map[int]bool),
		deadLink:   make(map[linkKey]bool),
		flows:      make(map[FlowHandle]reservation),
		byLink:     make(map[linkKey][]FlowHandle),
		byHost:     make([][]FlowHandle, topo.Hosts()),
	}, nil
}

// DerateLink tells the controller that switch sw's output port carries
// only scale (0..1] of the nominal link bandwidth — a degraded cable, an
// oversubscribed uplink, or an operator-imposed cap. Subsequent
// reservations route around it when they can. It panics on scale outside
// (0, 1], a configuration bug.
func (c *Controller) DerateLink(sw, port int, scale float64) {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("admission: derate scale %v out of (0,1]", scale))
	}
	c.capScale[linkKey{sw, port}] = scale
}

// SetSwitchDown records a SwitchDown (or its SwitchUp recovery) in the
// ledger's view of the fabric. While down, no reservation may route
// through the switch. The session Manager calls this before revoking the
// stranded sessions.
func (c *Controller) SetSwitchDown(sw int, down bool) {
	if down {
		c.deadSw[sw] = true
	} else {
		delete(c.deadSw, sw)
	}
}

// SetPortDown records a PortDown (or PortUp) cable cut. Both directions
// of the cable die: the addressed output link and, when the peer is a
// switch, the peer's link back.
func (c *Controller) SetPortDown(sw, port int, down bool) {
	set := func(k linkKey) {
		if down {
			c.deadLink[k] = true
		} else {
			delete(c.deadLink, k)
		}
	}
	set(linkKey{sw, port})
	if peer := c.topo.Peer(sw, port); !peer.IsHost && peer.ID >= 0 {
		set(linkKey{peer.ID, peer.Port})
	}
}

// linkDead reports whether the directed link (sw, out) is unusable: it or
// its cable is cut, or either endpoint switch is dead.
func (c *Controller) linkDead(sw, out int) bool {
	if c.deadSw[sw] || c.deadLink[linkKey{sw, out}] {
		return true
	}
	peer := c.topo.Peer(sw, out)
	return !peer.IsHost && peer.ID >= 0 && c.deadSw[peer.ID]
}

// injDead reports whether host h's injection cable is unusable: its leaf
// switch is dead, or the cable was cut (the switch-side ejection
// direction marks the whole cable).
func (c *Controller) injDead(h int) bool {
	sw, port := c.topo.HostPort(h)
	return c.deadSw[sw] || c.deadLink[linkKey{sw, port}]
}

// limitFor returns the reservable bandwidth of one link: the utilisation
// cap scaled by any derate, minus the share leased away to a pod CAC.
func (c *Controller) limitFor(k linkKey) units.Bandwidth {
	limit := units.Bandwidth(c.maxUtil) * c.linkBW
	if s, ok := c.capScale[k]; ok {
		limit = units.Bandwidth(float64(limit) * s)
	}
	if f, ok := c.leased[k]; ok {
		limit = units.Bandwidth(float64(limit) * (1 - f))
	}
	return limit
}

// ports converts a hop path into the packet-header route (output port per
// switch hop).
func ports(hops []topology.Hop) []int {
	route := make([]int, len(hops))
	for i, h := range hops {
		route[i] = h.OutPort
	}
	return route
}

// Reserve admits a flow of average bandwidth bw from src to dst, choosing
// the minimal path whose most-utilised link is least utilised (greedy load
// balancing, fractional against each link's possibly derated capacity).
// It returns the fixed route and a handle for Release, or an error when
// every path would oversubscribe some link.
func (c *Controller) Reserve(src, dst int, bw units.Bandwidth) ([]int, FlowHandle, error) {
	if src == dst {
		c.mtr.Rejects.Inc()
		return nil, 0, fmt.Errorf("admission: flow to self (host %d)", src)
	}
	if bw <= 0 {
		c.mtr.Rejects.Inc()
		return nil, 0, fmt.Errorf("admission: non-positive bandwidth %v", bw)
	}
	if c.injDead(src) || c.injDead(dst) {
		c.mtr.Rejects.Inc()
		return nil, 0, fmt.Errorf("admission: host %d or %d is unreachable (dead attachment)", src, dst)
	}
	injLimit := units.Bandwidth(c.maxUtil * (1 - c.leasedHost[src]) * float64(c.linkBW))
	if c.hostInj[src]+bw > injLimit {
		c.mtr.Rejects.Inc()
		return nil, 0, fmt.Errorf("admission: host %d injection link full (%v reserved, %v requested, %v limit)",
			src, c.hostInj[src], bw, injLimit)
	}
	n := c.topo.PathCount(src, dst)
	bestChoice := -1
	bestWorst := 0.0
	for choice := 0; choice < n; choice++ {
		hops := c.topo.Path(src, dst, choice)
		worst := 0.0
		ok := true
		for _, h := range hops {
			if c.linkDead(h.Switch, h.OutPort) {
				ok = false
				break
			}
			k := linkKey{h.Switch, h.OutPort}
			limit := c.limitFor(k)
			r := c.reserved[k]
			if r+bw > limit {
				ok = false
				break
			}
			if frac := float64(r+bw) / float64(limit); frac > worst {
				worst = frac
			}
		}
		if !ok {
			continue
		}
		if bestChoice == -1 || worst < bestWorst {
			bestChoice, bestWorst = choice, worst
		}
	}
	var hops []topology.Hop
	if bestChoice >= 0 {
		hops = c.topo.Path(src, dst, bestChoice)
	} else if hops = c.repairCandidate(src, dst, bw); hops == nil {
		c.mtr.Rejects.Inc()
		return nil, 0, fmt.Errorf("admission: no path from %d to %d can carry %v more", src, dst, bw)
	}
	c.nextFH++
	for _, h := range hops {
		k := linkKey{h.Switch, h.OutPort}
		c.reserved[k] += bw
		c.byLink[k] = append(c.byLink[k], c.nextFH)
	}
	c.hostInj[src] += bw
	c.byHost[src] = append(c.byHost[src], c.nextFH)
	c.flows[c.nextFH] = reservation{src: src, bw: bw, hops: hops}
	c.mtr.Reserves.Inc()
	return ports(hops), c.nextFH, nil
}

// repairCandidate computes a non-minimal detour around dead fabric when
// every minimal path was refused. It only engages while something is
// actually dead (a healthy refusal stays a capacity error), and the
// detour must still fit capacity-wise on every surviving hop — repaired
// reservations are charged like any other.
func (c *Controller) repairCandidate(src, dst int, bw units.Bandwidth) []topology.Hop {
	if len(c.deadSw) == 0 && len(c.deadLink) == 0 {
		return nil
	}
	hops := topology.RepairPath(c.topo, src, dst, c.linkDead)
	if hops == nil {
		return nil
	}
	for _, h := range hops {
		k := linkKey{h.Switch, h.OutPort}
		if c.reserved[k]+bw > c.limitFor(k) {
			return nil
		}
	}
	return hops
}

// RouteDead reports whether a port-list route from host src crosses dead
// fabric (a dead switch, a severed cable, or a dead src attachment). The
// session Manager uses it to find the sessions a switch failure stranded.
func (c *Controller) RouteDead(src int, route []int) bool {
	if len(c.deadSw) == 0 && len(c.deadLink) == 0 {
		return false
	}
	if c.injDead(src) {
		return true
	}
	for _, h := range topology.RouteHops(c.topo, src, route) {
		if c.linkDead(h.Switch, h.OutPort) {
			return true
		}
	}
	return false
}

// RepairRoute returns a detour route from src to dst that avoids every
// dead switch and severed cable, without charging the ledger (used for
// best-effort flows, which never reserve), or nil when the pair is
// partitioned.
func (c *Controller) RepairRoute(src, dst int) []int {
	hops := topology.RepairPath(c.topo, src, dst, c.linkDead)
	if hops == nil {
		return nil
	}
	return ports(hops)
}

// dropHandle removes h from an admission-order handle list, preserving
// the order of the survivors.
func dropHandle(s []FlowHandle, h FlowHandle) []FlowHandle {
	for i, v := range s {
		if v == h {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// recomputeLink resets one link's reserved bandwidth to the
// admission-order sum over its surviving handles, the canonical value the
// incremental additions in Reserve would have produced had the released
// flows never been admitted.
func (c *Controller) recomputeLink(k linkKey) {
	hs := c.byLink[k]
	if len(hs) == 0 {
		delete(c.byLink, k)
		delete(c.reserved, k)
		return
	}
	var sum units.Bandwidth
	for _, h := range hs {
		sum += c.flows[h].bw
	}
	c.reserved[k] = sum
}

// Release returns a flow's reserved bandwidth to the network (connection
// teardown). Releasing a handle that was never issued, or releasing the
// same handle twice, is a hard error (panic): under dynamic churn a
// double release silently under-counts reservations and lets the
// controller oversubscribe links, so the bug must not limp on.
func (c *Controller) Release(h FlowHandle) {
	r, ok := c.flows[h]
	if !ok {
		if h == 0 || h > c.nextFH {
			panic(fmt.Sprintf("admission: release of never-issued flow handle %d", h))
		}
		panic(fmt.Sprintf("admission: double release of flow handle %d", h))
	}
	delete(c.flows, h)
	c.mtr.Releases.Inc()
	for _, hop := range r.hops {
		k := linkKey{hop.Switch, hop.OutPort}
		c.byLink[k] = dropHandle(c.byLink[k], h)
		c.recomputeLink(k)
	}
	c.byHost[r.src] = dropHandle(c.byHost[r.src], h)
	var sum units.Bandwidth
	for _, fh := range c.byHost[r.src] {
		sum += c.flows[fh].bw
	}
	c.hostInj[r.src] = sum
}

// ActiveFlows returns the number of admitted, unreleased reservations.
func (c *Controller) ActiveFlows() int { return len(c.flows) }

// RouteBestEffort assigns a fixed route without reservation, spreading
// flows across the minimal paths by hashing key (typically the flow id).
func (c *Controller) RouteBestEffort(src, dst int, key uint64) []int {
	n := c.topo.PathCount(src, dst)
	// SplitMix-style scramble so consecutive keys spread well.
	k := key
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	choice := int(k % uint64(n))
	return ports(c.topo.Path(src, dst, choice))
}

// Reserved returns the bandwidth reserved on switch sw's output port.
func (c *Controller) Reserved(sw, port int) units.Bandwidth {
	return c.reserved[linkKey{sw, port}]
}

// HostReserved returns the bandwidth reserved on host h's injection link.
func (c *Controller) HostReserved(h int) units.Bandwidth { return c.hostInj[h] }

// HandlesOn returns the handles of every live reservation crossing switch
// sw's output port, in admission order (ascending handle). The slice is a
// copy; the caller may keep it. The session manager uses it to pick
// revocation victims when a link is derated below its reserved load.
func (c *Controller) HandlesOn(sw, port int) []FlowHandle {
	hs := c.byLink[linkKey{sw, port}]
	out := make([]FlowHandle, len(hs))
	copy(out, hs)
	return out
}

// LinkLimit returns the reservable bandwidth of switch sw's output port
// under the current derating (maxUtil x linkBW x derate scale).
func (c *Controller) LinkLimit(sw, port int) units.Bandwidth {
	return c.limitFor(linkKey{sw, port})
}

// AuditLedger verifies the ledger's internal consistency: every link's
// reserved bandwidth must equal the admission-order sum over its live
// handles (float-exact by construction — Release recomputes exactly this
// sum), every host's injection reservation likewise, every listed handle
// must exist, and no reservation may exceed its link's current limit
// unless the overload is an acknowledged fault remnant awaiting
// revocation. The soak harness runs it after every epoch as the
// ledger-balance invariant.
func (c *Controller) AuditLedger() error {
	for k, hs := range c.byLink {
		var sum units.Bandwidth
		for _, h := range hs {
			r, ok := c.flows[h]
			if !ok {
				return fmt.Errorf("admission: link %v:%v lists dead handle %d", k.sw, k.port, h)
			}
			sum += r.bw
		}
		if c.reserved[k] != sum {
			return fmt.Errorf("admission: link sw%d:p%d reserved %v != handle sum %v",
				k.sw, k.port, c.reserved[k], sum)
		}
	}
	for k := range c.reserved {
		if len(c.byLink[k]) == 0 {
			return fmt.Errorf("admission: link sw%d:p%d reserves %v with no handles",
				k.sw, k.port, c.reserved[k])
		}
	}
	for host, hs := range c.byHost {
		var sum units.Bandwidth
		for _, h := range hs {
			r, ok := c.flows[h]
			if !ok {
				return fmt.Errorf("admission: host %d lists dead handle %d", host, h)
			}
			sum += r.bw
		}
		if c.hostInj[host] != sum {
			return fmt.Errorf("admission: host %d reserved %v != handle sum %v",
				host, c.hostInj[host], sum)
		}
	}
	return nil
}

// SetMaxUtil resizes the controller's reservable fraction of every link.
// A pod delegate's lease ledger is a Controller whose maxUtil IS its lease
// fraction; lease grants and returns resize it here. Existing
// reservations are untouched (AuditLedger checks balance, not limits), so
// shrinking below the current load simply blocks new admissions until
// teardowns drain the excess.
func (c *Controller) SetMaxUtil(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("admission: max utilisation %v out of (0,1]", f))
	}
	c.maxUtil = f
}

// MaxUtil returns the current reservable fraction.
func (c *Controller) MaxUtil() float64 { return c.maxUtil }

// SetPodLease records frac of each listed host's attachment capacity —
// the injection cable and the leaf switch's ejection link — as leased out
// to a pod CAC. frac 0 reclaims the lease. The root controller stops
// admitting into the leased share; the delegate's own controller covers
// exactly that share via SetMaxUtil, so the two ledgers partition the
// pod's capacity without double-booking.
func (c *Controller) SetPodLease(hosts []int, frac float64) {
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("admission: lease fraction %v out of [0,1)", frac))
	}
	for _, h := range hosts {
		sw, port := c.topo.HostPort(h)
		k := linkKey{sw, port}
		if frac == 0 {
			delete(c.leased, k)
		} else {
			c.leased[k] = frac
		}
		c.leasedHost[h] = frac
	}
}

// CanPodLease reports whether raising the listed hosts' lease to frac
// would still cover the bandwidth this controller has already reserved on
// their attachment links — the root's check before granting a lease
// growth request.
func (c *Controller) CanPodLease(hosts []int, frac float64) bool {
	for _, h := range hosts {
		sw, port := c.topo.HostPort(h)
		k := linkKey{sw, port}
		limit := float64(c.maxUtil) * float64(c.linkBW)
		if s, ok := c.capScale[k]; ok {
			limit *= s
		}
		if float64(c.reserved[k]) > limit*(1-frac) {
			return false
		}
		if float64(c.hostInj[h]) > float64(c.maxUtil)*float64(c.linkBW)*(1-frac) {
			return false
		}
	}
	return true
}

// Restore charges an existing reservation into the ledger along its
// already-fixed route, bypassing admission checks: lease reconciliation
// after a delegate failover must account every session the failed primary
// granted, even when it no longer fits the successor's lease (the excess
// drains through teardowns; AuditLedger checks balance, not limits).
func (c *Controller) Restore(src int, route []int, bw units.Bandwidth) FlowHandle {
	if bw <= 0 {
		panic(fmt.Sprintf("admission: restore of non-positive bandwidth %v", bw))
	}
	hops := topology.RouteHops(c.topo, src, route)
	c.nextFH++
	for _, h := range hops {
		k := linkKey{h.Switch, h.OutPort}
		c.reserved[k] += bw
		c.byLink[k] = append(c.byLink[k], c.nextFH)
	}
	c.hostInj[src] += bw
	c.byHost[src] = append(c.byHost[src], c.nextFH)
	c.flows[c.nextFH] = reservation{src: src, bw: bw, hops: hops}
	return c.nextFH
}

// HostDead reports whether host h's fabric attachment is currently dead
// (leaf switch down or injection cable cut) — how the root decides a
// delegate CAC was taken out.
func (c *Controller) HostDead(h int) bool { return c.injDead(h) }

// UtilOfLimit returns the worst reserved-to-limit fraction across links
// carrying reservations — a delegate controller's lease utilisation. A
// value above 1 marks a fault remnant (or post-failover excess) awaiting
// drain.
func (c *Controller) UtilOfLimit() float64 {
	worst := 0.0
	for k, r := range c.reserved {
		if l := c.limitFor(k); l > 0 {
			if f := float64(r) / float64(l); f > worst {
				worst = f
			}
		}
	}
	return worst
}

// MaxLinkUtilisation returns the highest reserved fraction across all
// switch links (diagnostics for experiment configurations).
func (c *Controller) MaxLinkUtilisation() float64 {
	var worst units.Bandwidth
	for _, r := range c.reserved {
		if r > worst {
			worst = r
		}
	}
	return float64(worst) / float64(c.linkBW)
}
