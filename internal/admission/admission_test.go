package admission

import (
	"testing"

	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

func newController(t *testing.T, maxUtil float64) (*Controller, *topology.FoldedClos) {
	t.Helper()
	topo := topology.PaperMIN()
	c, err := New(topo, 1, maxUtil)
	if err != nil {
		t.Fatal(err)
	}
	return c, topo
}

func TestNewValidation(t *testing.T) {
	topo := topology.PaperMIN()
	if _, err := New(topo, 1, 0); err == nil {
		t.Error("maxUtil 0 accepted")
	}
	if _, err := New(topo, 1, 1.5); err == nil {
		t.Error("maxUtil > 1 accepted")
	}
	if _, err := New(topo, 0, 0.5); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestReserveReturnsWalkableRoute(t *testing.T) {
	c, topo := newController(t, 1.0)
	route, _, err := c.Reserve(0, 127, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 3 {
		t.Fatalf("route length %d, want 3 (leaf-spine-leaf)", len(route))
	}
	// The route must match some topology path.
	found := false
	for ch := 0; ch < topo.PathCount(0, 127); ch++ {
		hops := topo.Path(0, 127, ch)
		same := len(hops) == len(route)
		for i := range hops {
			if same && hops[i].OutPort != route[i] {
				same = false
			}
		}
		if same {
			found = true
		}
	}
	if !found {
		t.Fatalf("route %v is not a minimal path", route)
	}
}

func TestReserveBalancesAcrossSpines(t *testing.T) {
	c, _ := newController(t, 1.0)
	// 8 identical cross-leaf flows from different sources: they must
	// spread over all 8 spines (the leaf has 8 uplinks).
	used := map[int]bool{}
	for i := 0; i < 8; i++ {
		route, _, err := c.Reserve(i, 120+i, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		used[route[0]] = true // leaf uplink port == spine choice + 8
	}
	if len(used) != 8 {
		t.Fatalf("flows used %d distinct uplinks, want 8 (load balancing)", len(used))
	}
}

func TestReserveRejectsOversubscription(t *testing.T) {
	c, _ := newController(t, 1.0)
	if _, _, err := c.Reserve(0, 1, 0.7); err != nil {
		t.Fatal(err)
	}
	// Same leaf pair: only one path (local), already at 0.7.
	if _, _, err := c.Reserve(0, 1, 0.5); err == nil {
		t.Fatal("oversubscription accepted")
	}
	// A smaller flow still fits.
	if _, _, err := c.Reserve(0, 1, 0.3); err != nil {
		t.Fatalf("fitting flow rejected: %v", err)
	}
}

func TestReserveHonoursMaxUtil(t *testing.T) {
	c, _ := newController(t, 0.5)
	if _, _, err := c.Reserve(0, 1, 0.4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Reserve(0, 1, 0.2); err == nil {
		t.Fatal("reservation beyond maxUtil accepted")
	}
}

func TestReserveInjectionLinkLimit(t *testing.T) {
	c, _ := newController(t, 1.0)
	// Host 0's injection link caps the sum over all its flows, even when
	// they take disjoint network paths.
	for i := 0; i < 8; i++ {
		if _, _, err := c.Reserve(0, 8+i*8, 0.12); err != nil {
			t.Fatalf("flow %d: %v", i, err)
		}
	}
	if _, _, err := c.Reserve(0, 127, 0.1); err == nil {
		t.Fatal("injection link oversubscription accepted")
	}
	if got := c.HostReserved(0); got != units.Bandwidth(0.96) {
		t.Fatalf("HostReserved = %v, want 0.96", got)
	}
}

func TestReserveValidation(t *testing.T) {
	c, _ := newController(t, 1.0)
	if _, _, err := c.Reserve(3, 3, 0.1); err == nil {
		t.Error("flow to self accepted")
	}
	if _, _, err := c.Reserve(0, 1, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, _, err := c.Reserve(0, 1, -0.5); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestReservedAccounting(t *testing.T) {
	c, topo := newController(t, 1.0)
	route, _, err := c.Reserve(0, 127, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Every link of the chosen path carries the reservation.
	hops := findPath(topo, 0, 127, route)
	if hops == nil {
		t.Fatal("route not found in topology")
	}
	for _, h := range hops {
		if got := c.Reserved(h.Switch, h.OutPort); got != 0.25 {
			t.Fatalf("link (%d,%d) reserved %v, want 0.25", h.Switch, h.OutPort, got)
		}
	}
	if got := c.MaxLinkUtilisation(); got != 0.25 {
		t.Fatalf("MaxLinkUtilisation = %v, want 0.25", got)
	}
}

func findPath(topo *topology.FoldedClos, src, dst int, route []int) []topology.Hop {
	for ch := 0; ch < topo.PathCount(src, dst); ch++ {
		hops := topo.Path(src, dst, ch)
		if len(hops) != len(route) {
			continue
		}
		same := true
		for i := range hops {
			if hops[i].OutPort != route[i] {
				same = false
				break
			}
		}
		if same {
			return hops
		}
	}
	return nil
}

func TestBestEffortRoutesSpread(t *testing.T) {
	c, _ := newController(t, 1.0)
	used := map[int]bool{}
	for key := uint64(0); key < 64; key++ {
		route := c.RouteBestEffort(0, 127, key)
		if len(route) != 3 {
			t.Fatalf("route length %d", len(route))
		}
		used[route[0]] = true
	}
	if len(used) < 6 {
		t.Fatalf("64 hashed flows used only %d of 8 uplinks", len(used))
	}
}

func TestBestEffortRouteDeterministic(t *testing.T) {
	c, _ := newController(t, 1.0)
	a := c.RouteBestEffort(5, 99, 42)
	b := c.RouteBestEffort(5, 99, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("best-effort route not deterministic")
		}
	}
}

func TestFullMeshRegulatedWorkloadAdmits(t *testing.T) {
	// The paper's workload: every host reserves 50% of its link (control
	// + multimedia) spread over many destinations. With balanced routing
	// this must fit the full-bisection MIN.
	c, _ := newController(t, 1.0)
	hosts := 128
	perFlow := units.Bandwidth(0.5 / 8)
	for src := 0; src < hosts; src++ {
		for i := 0; i < 8; i++ {
			dst := (src + 1 + i*16) % hosts
			if dst == src {
				dst = (dst + 1) % hosts
			}
			if _, _, err := c.Reserve(src, dst, perFlow); err != nil {
				t.Fatalf("host %d flow %d rejected: %v", src, i, err)
			}
		}
	}
	if u := c.MaxLinkUtilisation(); u > 1.0 {
		t.Fatalf("max utilisation %v > 1", u)
	}
}

func TestReleaseReturnsBandwidth(t *testing.T) {
	c, _ := newController(t, 1.0)
	_, h, err := c.Reserve(0, 1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if c.ActiveFlows() != 1 {
		t.Fatalf("ActiveFlows = %d, want 1", c.ActiveFlows())
	}
	// The local leaf link is nearly full.
	if _, _, err := c.Reserve(0, 1, 0.5); err == nil {
		t.Fatal("oversubscription accepted before release")
	}
	c.Release(h)
	if c.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after release", c.ActiveFlows())
	}
	if got := c.HostReserved(0); got != 0 {
		t.Fatalf("HostReserved = %v after release, want 0", got)
	}
	if _, _, err := c.Reserve(0, 1, 0.5); err != nil {
		t.Fatalf("reservation after release rejected: %v", err)
	}
}

// mustPanic runs f and fails the test unless it panics.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestReleaseBadHandlePanics(t *testing.T) {
	c, _ := newController(t, 1.0)
	mustPanic(t, "release of never-issued handle", func() { c.Release(42) })
	_, h, err := c.Reserve(0, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(h)
	mustPanic(t, "double release", func() { c.Release(h) })
}

// ledger snapshots every observable reservation value: all switch output
// links plus all host injection links. Comparison is byte-exact (==), not
// approximate — churn must restore the ledger bit-for-bit.
func ledger(c *Controller, topo *topology.FoldedClos) []units.Bandwidth {
	var out []units.Bandwidth
	for sw := 0; sw < topo.Switches(); sw++ {
		for p := 0; p < topo.Radix(sw); p++ {
			out = append(out, c.Reserved(sw, p))
		}
	}
	for h := 0; h < topo.Hosts(); h++ {
		out = append(out, c.HostReserved(h))
	}
	return out
}

func TestReleaseRestoresLedgerExactly(t *testing.T) {
	c, topo := newController(t, 1.0)
	// Background load with float-unfriendly bandwidths: repeated
	// adds/subtracts of these values do not round-trip in float64, which is
	// exactly what the canonical-order ledger must absorb.
	bws := []units.Bandwidth{0.1, 1.0 / 3, 0.07, 0.123456789, 0.2}
	for i, bw := range bws {
		if _, _, err := c.Reserve(i, 64+i*7, bw); err != nil {
			t.Fatal(err)
		}
	}
	before := ledger(c, topo)

	// Reserve -> Release must restore the ledger byte-identically...
	_, h, err := c.Reserve(3, 99, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	after := ledger(c, topo)
	c.Release(h)
	restored := ledger(c, topo)
	for i := range before {
		if before[i] != restored[i] {
			t.Fatalf("ledger entry %d not restored: %v != %v", i, restored[i], before[i])
		}
	}
	// ...and Reserve again must land on the identical post-reserve state
	// (same route choice, same sums).
	_, h2, err := c.Reserve(3, 99, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	again := ledger(c, topo)
	for i := range after {
		if after[i] != again[i] {
			t.Fatalf("ledger entry %d differs after re-reserve: %v != %v", i, again[i], after[i])
		}
	}
	// Releasing in the middle of later admissions must still restore
	// exactly: the recompute replays admission order, not release order.
	_, h3, err := c.Reserve(5, 77, 0.11)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(h2)
	c.Release(h3)
	final := ledger(c, topo)
	for i := range before {
		if before[i] != final[i] {
			t.Fatalf("ledger entry %d not restored after interleaved releases: %v != %v",
				i, final[i], before[i])
		}
	}
}

func TestHandlesOnTracksAdmissionOrder(t *testing.T) {
	c, _ := newController(t, 1.0)
	// Same-leaf flows share the single delivery link of host 1: switch 0,
	// port 1.
	_, h1, err := c.Reserve(0, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	_, h2, err := c.Reserve(2, 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	hs := c.HandlesOn(0, 1)
	if len(hs) != 2 || hs[0] != h1 || hs[1] != h2 {
		t.Fatalf("HandlesOn = %v, want [%d %d]", hs, h1, h2)
	}
	c.Release(h1)
	if hs := c.HandlesOn(0, 1); len(hs) != 1 || hs[0] != h2 {
		t.Fatalf("HandlesOn after release = %v, want [%d]", hs, h2)
	}
	if got := c.LinkLimit(0, 1); got != 1.0 {
		t.Fatalf("LinkLimit = %v, want 1.0", got)
	}
	c.DerateLink(0, 1, 0.25)
	if got := c.LinkLimit(0, 1); got != 0.25 {
		t.Fatalf("derated LinkLimit = %v, want 0.25", got)
	}
}

func TestDerateLinkSteersReservations(t *testing.T) {
	c, topo := newController(t, 1.0)
	// Derate the uplink of leaf 0 toward spine 0 to 10% capacity: new
	// cross-leaf flows from host 0 must avoid spine 0 until the healthy
	// spines are more utilised.
	c.DerateLink(0, topo.Down+0, 0.1)
	for i := 0; i < 7; i++ {
		route, _, err := c.Reserve(0, 120+i, 0.12)
		if err != nil {
			t.Fatal(err)
		}
		if route[0] == topo.Down+0 {
			t.Fatalf("flow %d routed onto the derated uplink", i)
		}
	}
	// A flow exceeding the derated capacity can never use that link, even
	// when every other uplink is full.
	c2, topo2 := newController(t, 1.0)
	c2.DerateLink(0, topo2.Down+0, 0.1)
	for s := 1; s < topo2.Up; s++ {
		// Saturate every healthy uplink of leaf 0, one flow per source
		// host so injection links do not bind first. The balancer
		// spreads the equal flows over the healthy spines.
		if _, _, err := c2.Reserve(s, 120+s, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c2.Reserve(0, 120, 0.5); err == nil {
		t.Fatal("reservation above derated capacity accepted")
	}
	// But a small-enough flow still fits on the derated link. (Host 120
	// is the one leaf-15 endpoint whose delivery link the saturating
	// flows left free.)
	if _, _, err := c2.Reserve(0, 120, 0.05); err != nil {
		t.Fatalf("small flow rejected from derated link: %v", err)
	}
}

func TestDerateLinkValidation(t *testing.T) {
	c, _ := newController(t, 1.0)
	for _, bad := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DerateLink(%v) did not panic", bad)
				}
			}()
			c.DerateLink(0, 0, bad)
		}()
	}
}
