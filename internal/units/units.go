// Package units defines the physical units used throughout the simulator
// and conversions between them.
//
// The simulator clock counts Cycles. One cycle is the time needed to move
// one byte across a link at the reference link bandwidth (8 Gb/s), which
// conveniently equals one nanosecond:
//
//	8 Gb/s = 1 GB/s  =>  1 byte-time = 1 ns
//
// All latency figures reported by the simulator are therefore directly
// interpretable as nanoseconds when the reference bandwidth is used. Links
// with a different bandwidth express their speed as bytes per cycle.
package units

import "fmt"

// Time is a point in simulated time or a duration, measured in cycles.
// It is signed so that subtractions (e.g. time-to-deadline computations,
// which the paper's TTD header field relies on) are well defined even when
// a deadline has already passed.
type Time int64

// Common durations at the reference bandwidth (1 cycle = 1 ns).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Infinity is a time later than any event in a simulation. It is used as
// the deadline of traffic that has none and as a sentinel for empty queues.
const Infinity Time = 1<<63 - 1

// Nanoseconds returns t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) }

// Microseconds returns t as a float64 microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t as a float64 millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit, for logs and reports.
func (t Time) String() string {
	switch {
	case t == Infinity:
		return "inf"
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Size is a data size in bytes.
type Size int64

// Common sizes.
const (
	Byte     Size = 1
	Kilobyte Size = 1024 * Byte
	Megabyte Size = 1024 * Kilobyte
	Gigabyte Size = 1024 * Megabyte
)

// Bytes returns s as an int64 byte count.
func (s Size) Bytes() int64 { return int64(s) }

// String renders the size with an adaptive unit.
func (s Size) String() string {
	switch {
	case s < 0:
		return "-" + (-s).String()
	case s < Kilobyte:
		return fmt.Sprintf("%dB", int64(s))
	case s < Megabyte:
		return fmt.Sprintf("%.1fKB", float64(s)/float64(Kilobyte))
	case s < Gigabyte:
		return fmt.Sprintf("%.1fMB", float64(s)/float64(Megabyte))
	default:
		return fmt.Sprintf("%.2fGB", float64(s)/float64(Gigabyte))
	}
}

// Bandwidth is a transmission rate in bytes per cycle. At the reference
// bandwidth (8 Gb/s with 1 ns cycles) a full-speed link moves exactly one
// byte per cycle, i.e. Bandwidth(1).
type Bandwidth float64

// GbpsToBandwidth converts a rate in gigabits per second into bytes per
// cycle, assuming the reference 1 ns cycle.
func GbpsToBandwidth(gbps float64) Bandwidth {
	// gbps Gb/s = gbps/8 GB/s = gbps/8 bytes/ns.
	return Bandwidth(gbps / 8.0)
}

// MBpsToBandwidth converts a rate in megabytes per second into bytes per
// cycle (reference 1 ns cycle). Note: decimal megabytes, as used by the
// paper for the 3 MB/s MPEG-4 streams.
func MBpsToBandwidth(mbps float64) Bandwidth {
	return Bandwidth(mbps * 1e6 / 1e9)
}

// Gbps reports the bandwidth in gigabits per second.
func (b Bandwidth) Gbps() float64 { return float64(b) * 8.0 }

// TxTime returns the number of cycles needed to serialise size bytes at
// bandwidth b, rounded up to a whole cycle. A non-positive bandwidth
// yields Infinity (a stalled link transmits nothing).
func (b Bandwidth) TxTime(size Size) Time {
	if b <= 0 {
		return Infinity
	}
	cycles := float64(size) / float64(b)
	t := Time(cycles)
	if float64(t) < cycles {
		t++
	}
	if t < 1 {
		t = 1
	}
	return t
}

// String renders the bandwidth in Gb/s.
func (b Bandwidth) String() string { return fmt.Sprintf("%.2fGb/s", b.Gbps()) }
