package units

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{Microsecond, "1.00us"},
		{1500, "1.50us"},
		{Millisecond, "1.00ms"},
		{10 * Millisecond, "10.00ms"},
		{Second, "1.000s"},
		{-1500, "-1.50us"},
		{Infinity, "inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	tm := 2500 * Microsecond
	if got := tm.Milliseconds(); got != 2.5 {
		t.Errorf("Milliseconds() = %v, want 2.5", got)
	}
	if got := tm.Seconds(); got != 0.0025 {
		t.Errorf("Seconds() = %v, want 0.0025", got)
	}
	if got := Time(1500).Microseconds(); got != 1.5 {
		t.Errorf("Microseconds() = %v, want 1.5", got)
	}
}

func TestSizeString(t *testing.T) {
	cases := []struct {
		in   Size
		want string
	}{
		{128, "128B"},
		{2 * Kilobyte, "2.0KB"},
		{Megabyte + Megabyte/2, "1.5MB"},
		{3 * Gigabyte, "3.00GB"},
		{-128, "-128B"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Size(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestGbpsToBandwidth(t *testing.T) {
	// 8 Gb/s must be exactly 1 byte/cycle: this equivalence anchors the
	// whole unit system (see the package comment).
	if b := GbpsToBandwidth(8); b != 1 {
		t.Fatalf("GbpsToBandwidth(8) = %v, want 1", b)
	}
	if b := GbpsToBandwidth(4); b != 0.5 {
		t.Fatalf("GbpsToBandwidth(4) = %v, want 0.5", b)
	}
	if g := GbpsToBandwidth(8).Gbps(); g != 8 {
		t.Fatalf("round trip = %v, want 8", g)
	}
}

func TestMBpsToBandwidth(t *testing.T) {
	// 3 MB/s (the paper's MPEG-4 stream rate) = 0.003 bytes/ns.
	if b := MBpsToBandwidth(3); b != 0.003 {
		t.Fatalf("MBpsToBandwidth(3) = %v, want 0.003", b)
	}
}

func TestTxTime(t *testing.T) {
	full := GbpsToBandwidth(8)
	if got := full.TxTime(2048); got != 2048 {
		t.Errorf("full.TxTime(2048) = %v, want 2048", got)
	}
	half := GbpsToBandwidth(4)
	if got := half.TxTime(100); got != 200 {
		t.Errorf("half.TxTime(100) = %v, want 200", got)
	}
	// Rounds up to whole cycles.
	if got := Bandwidth(3).TxTime(100); got != 34 {
		t.Errorf("TxTime rounding = %v, want 34", got)
	}
	// Minimum one cycle even for tiny payloads.
	if got := full.TxTime(0); got != 1 {
		t.Errorf("TxTime(0) = %v, want 1", got)
	}
	// Stalled link never completes.
	if got := Bandwidth(0).TxTime(100); got != Infinity {
		t.Errorf("zero bandwidth TxTime = %v, want Infinity", got)
	}
}

func TestTxTimeNeverUnderestimates(t *testing.T) {
	// Property: serialising size bytes at bandwidth b must take at least
	// size/b cycles (the link can never be faster than its rate).
	prop := func(sz uint16, rate uint8) bool {
		b := Bandwidth(float64(rate%64)/8 + 0.125) // 0.125 .. 8 bytes/cycle
		size := Size(sz)
		tt := b.TxTime(size)
		return float64(tt)*float64(b) >= float64(size)-1e-6 && tt >= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
