// Package session implements the dynamic flow-lifecycle subsystem: flows
// no longer exist only as static reservations made in network setup, but
// arrive, hold, and depart at runtime, negotiating admission with the
// centralised CAC (internal/admission) over the simulated fabric itself.
//
// Each host runs a Client that generates Poisson (optionally flash-crowd)
// session arrivals. A session setup or teardown is an in-band
// control-plane message: a Control-class packet stamped with the paper's
// maximum-priority deadline rule (BWavg = link bandwidth, §3.1) that
// travels through the switches to the Manager host and back. Admission
// latency is therefore a measured quantity — it includes real queueing in
// the fabric — not a modelling assumption.
//
// Protocol (see DESIGN.md §10):
//
//	Client                        Manager (CAC)
//	  |------- Setup ---------------->|   Reserve (regulated classes)
//	  |<------ Grant{Route} ----------|   or
//	  |<------ Reject ----------------|   retry with exponential backoff,
//	  |                               |   then downgrade to best effort
//	  |------- Teardown ------------->|   Release
//	  |<------ Revoke{Route} ---------|   link derated: re-admitted path
//	  |<------ Revoke{Downgrade} -----|   link derated: no surviving path
//
// Determinism: clients and the manager run entirely inside host engine
// events (arrival timers, packet deliveries), so the subsystem inherits
// the sharded-execution guarantees of internal/parsim — a churn run is
// byte-identical at any shard count.
package session

import (
	"fmt"
	"math"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

// Op is the control-plane message opcode.
type Op uint8

// Control-plane opcodes.
const (
	OpSetup    Op = iota + 1 // client -> CAC: admit this session
	OpGrant                  // CAC -> client: admitted, route enclosed
	OpReject                 // CAC -> client: no capacity, retry or downgrade
	OpTeardown               // client -> CAC: session over, release bandwidth
	OpRevoke                 // CAC -> client: reservation moved (Route) or dropped (Downgrade)
)

var opNames = [...]string{"?", "Setup", "Grant", "Reject", "Teardown", "Revoke"}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Msg is the in-band control-plane message body. It rides a Control-class
// packet's Ctl field through the fabric; SigMsgSize models its wire size.
type Msg struct {
	Op      Op
	Session uint64 // session identity, unique network-wide
	Attempt int    // setup attempt number (0 = first try)

	// Setup fields (client -> CAC).
	Src, Dst int
	BW       units.Bandwidth
	Class    packet.Class

	// Grant/Revoke fields (CAC -> client).
	Route []int // admitted route for the data flow
	// Downgrade on a Revoke tells the client its reservation could not be
	// re-admitted after a fault: continue as best effort.
	Downgrade bool
	// DownAt, on a Revoke caused by a switch or port failure, carries the
	// fault's event time. The client measures time-to-repair as the
	// in-band delivery time of the new route minus DownAt — the real
	// service-interruption window, fabric queueing included. Zero on
	// derate-driven revokes.
	DownAt units.Time
}

// Profile describes one entry of the per-class session mix.
type Profile struct {
	// Weight is the relative arrival share of this profile (weights need
	// not sum to 1).
	Weight float64
	// Class is the data traffic's class. Regulated classes (Control,
	// Multimedia) reserve bandwidth through the CAC; best-effort classes
	// are granted a hashed fixed route without reservation.
	Class packet.Class
	// BW is the requested average bandwidth (bytes per ns); the data
	// source emits CBR at exactly this rate once granted.
	BW units.Bandwidth
	// MsgSize is the payload of each data message.
	MsgSize units.Size
	// HoldMean overrides Config.HoldMean for this profile when positive.
	HoldMean units.Time
}

// Config parameterises the session subsystem. The zero value of each
// field selects the default noted on it (see WithDefaults); Profiles
// defaults to DefaultProfiles.
type Config struct {
	// Manager is the host index running the centralised CAC endpoint
	// (default 0). It generates no sessions of its own.
	Manager int
	// InterArrival is the mean per-host session inter-arrival time
	// (Poisson arrivals, exponential gaps; default 500 µs).
	InterArrival units.Time
	// HoldMean is the mean session hold time, exponential, measured from
	// the grant (default 2 ms).
	HoldMean units.Time
	// Profiles is the session mix (default DefaultProfiles).
	Profiles []Profile
	// SigMsgSize is the signalling message payload size (default 64 B).
	SigMsgSize units.Size
	// MaxRetries bounds setup retries after a reject or timeout before
	// the session downgrades to best effort (default 3; negative
	// disables retries).
	MaxRetries int
	// RetryBackoff is the base retry delay, doubled per attempt
	// (default 50 µs).
	RetryBackoff units.Time
	// RespTimeout is how long a client waits for a setup response before
	// treating the attempt as lost (default 500 µs).
	RespTimeout units.Time
	// RevokeDelay models the fabric-management latency between a fault
	// plan derating a link and the CAC revoking the affected
	// reservations (default 1 µs).
	RevokeDelay units.Time
	// FlashFactor, when > 1, multiplies the arrival rate during the
	// window [FlashAt, FlashAt+FlashLen) — a flash crowd.
	FlashFactor float64
	FlashAt     units.Time
	FlashLen    units.Time
}

// DefaultProfiles is the default session mix: mostly multimedia streams,
// some small control sessions, and a best-effort tail. Bandwidths are in
// bytes/ns (0.05 = 5% of the default 8 Gb/s link).
func DefaultProfiles() []Profile {
	return []Profile{
		{Weight: 0.5, Class: packet.Multimedia, BW: 0.05, MsgSize: 1466},
		{Weight: 0.3, Class: packet.Control, BW: 0.01, MsgSize: 256},
		{Weight: 0.2, Class: packet.BestEffort, BW: 0.03, MsgSize: 1000},
	}
}

// WithDefaults returns a copy with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.InterArrival == 0 {
		c.InterArrival = 500 * units.Microsecond
	}
	if c.HoldMean == 0 {
		c.HoldMean = 2 * units.Millisecond
	}
	if c.SigMsgSize == 0 {
		c.SigMsgSize = 64
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * units.Microsecond
	}
	if c.RespTimeout == 0 {
		c.RespTimeout = 500 * units.Microsecond
	}
	if c.RevokeDelay == 0 {
		c.RevokeDelay = units.Microsecond
	}
	if len(c.Profiles) == 0 {
		c.Profiles = DefaultProfiles()
	}
	return c
}

// Validate checks an already-defaulted Config against a host count.
func (c Config) Validate(hosts int) error {
	if hosts < 2 {
		return fmt.Errorf("session: need at least 2 hosts, have %d", hosts)
	}
	if hosts > maxHosts {
		return fmt.Errorf("session: %d hosts exceed the flow-id plan's limit %d", hosts, maxHosts)
	}
	if c.Manager < 0 || c.Manager >= hosts {
		return fmt.Errorf("session: manager host %d out of range [0,%d)", c.Manager, hosts)
	}
	if c.InterArrival <= 0 || c.HoldMean <= 0 {
		return fmt.Errorf("session: non-positive inter-arrival %v or hold %v", c.InterArrival, c.HoldMean)
	}
	if c.SigMsgSize <= 0 {
		return fmt.Errorf("session: non-positive signalling size %v", c.SigMsgSize)
	}
	if c.RetryBackoff <= 0 || c.RespTimeout <= 0 {
		return fmt.Errorf("session: non-positive backoff %v or timeout %v", c.RetryBackoff, c.RespTimeout)
	}
	if c.RevokeDelay < 0 {
		return fmt.Errorf("session: negative revoke delay %v", c.RevokeDelay)
	}
	if c.FlashFactor != 0 && c.FlashFactor < 1 {
		return fmt.Errorf("session: flash factor %v must be 0 (off) or >= 1", c.FlashFactor)
	}
	if c.FlashLen < 0 {
		return fmt.Errorf("session: negative flash window %v", c.FlashLen)
	}
	if len(c.Profiles) == 0 {
		return fmt.Errorf("session: empty profile mix")
	}
	var total float64
	for i, p := range c.Profiles {
		if !(p.Weight > 0) || math.IsInf(p.Weight, 0) {
			return fmt.Errorf("session: profile %d weight %v must be positive and finite", i, p.Weight)
		}
		if p.BW <= 0 {
			return fmt.Errorf("session: profile %d non-positive bandwidth %v", i, p.BW)
		}
		if p.MsgSize <= 0 {
			return fmt.Errorf("session: profile %d non-positive message size %v", i, p.MsgSize)
		}
		if p.HoldMean < 0 {
			return fmt.Errorf("session: profile %d negative hold mean %v", i, p.HoldMean)
		}
		if int(p.Class) >= packet.NumClasses {
			return fmt.Errorf("session: profile %d unknown class %d", i, p.Class)
		}
		total += p.Weight
	}
	if !(total > 0) || math.IsInf(total, 0) {
		return fmt.Errorf("session: profile weights sum to %v", total)
	}
	return nil
}

// Flow-id plan: session flows live far above the static flow ids the
// network provisions at setup (small sequential integers) so the two can
// never collide. Signalling flows are per host pair with the manager;
// data flows encode (host, per-host session sequence).
const (
	sigUpBase   packet.FlowID = 0x4000_0000 // client h -> manager
	sigDownBase packet.FlowID = 0x4800_0000 // manager -> client h
	dataBase    packet.FlowID = 0x5000_0000 // session data flows

	// maxHosts bounds host indices so dataBase | h<<16 stays inside the
	// 32-bit flow-id space.
	maxHosts = 1 << 14
	// maxSessionsPerHost bounds the per-host session sequence (16 bits in
	// the data-flow id).
	maxSessionsPerHost = 1 << 16
)

// SigUp returns the id of host h's client->manager signalling flow.
func SigUp(h int) packet.FlowID { return sigUpBase + packet.FlowID(h) }

// SigDown returns the id of the manager->client-h signalling flow.
func SigDown(h int) packet.FlowID { return sigDownBase + packet.FlowID(h) }

// DataFlowID returns the data-flow id of host h's seq-th session.
func DataFlowID(h int, seq uint32) packet.FlowID {
	return dataBase | packet.FlowID(h)<<16 | packet.FlowID(seq)
}

// IsSignalling reports whether id is a session signalling flow.
func IsSignalling(id packet.FlowID) bool { return id >= sigUpBase && id < dataBase }

// IsSessionData reports whether id is a dynamic session data flow.
func IsSessionData(id packet.FlowID) bool { return id >= dataBase }

// sessionID builds the network-unique session identity of host h's seq-th
// session.
func sessionID(h int, seq uint32) uint64 { return uint64(h+1)<<32 | uint64(seq) }
