// Package session implements the dynamic flow-lifecycle subsystem: flows
// no longer exist only as static reservations made in network setup, but
// arrive, hold, and depart at runtime, negotiating admission with the
// centralised CAC (internal/admission) over the simulated fabric itself.
//
// Each host runs a Client that generates Poisson (optionally flash-crowd)
// session arrivals. A session setup or teardown is an in-band
// control-plane message: a Control-class packet stamped with the paper's
// maximum-priority deadline rule (BWavg = link bandwidth, §3.1) that
// travels through the switches to the Manager host and back. Admission
// latency is therefore a measured quantity — it includes real queueing in
// the fabric — not a modelling assumption.
//
// Protocol (see DESIGN.md §10):
//
//	Client                        Manager (CAC)
//	  |------- Setup ---------------->|   Reserve (regulated classes)
//	  |<------ Grant{Route} ----------|   or
//	  |<------ Reject ----------------|   retry with exponential backoff,
//	  |                               |   then downgrade to best effort
//	  |------- Teardown ------------->|   Release
//	  |<------ Revoke{Route} ---------|   link derated: re-admitted path
//	  |<------ Revoke{Downgrade} -----|   link derated: no surviving path
//
// Determinism: clients and the manager run entirely inside host engine
// events (arrival timers, packet deliveries), so the subsystem inherits
// the sharded-execution guarantees of internal/parsim — a churn run is
// byte-identical at any shard count.
package session

import (
	"fmt"
	"math"
	"sort"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// Op is the control-plane message opcode.
type Op uint8

// Control-plane opcodes.
const (
	OpSetup    Op = iota + 1 // client -> CAC: admit this session
	OpGrant                  // CAC -> client: admitted, route enclosed
	OpReject                 // CAC -> client: no capacity, retry or downgrade
	OpTeardown               // client -> CAC: session over, release bandwidth
	OpRevoke                 // CAC -> client: reservation moved (Route) or dropped (Downgrade)

	// Delegated control plane (DESIGN.md §12). Lease and failover traffic
	// rides the same in-band signalling flows as setups.
	OpLeaseGrant   // root -> delegate: lease Frac of the pod's link capacity
	OpLeaseRequest // delegate -> root: grow the lease to Frac
	OpLeaseReturn  // delegate -> root: lease shrunk to Frac (capacity freed)
	OpPromote      // root -> standby: take over the pod's lease (failover)
	OpRetarget     // root -> client: send future signalling to Target
	OpSyncGrant    // primary -> standby: replicate one granted session
	OpSyncRelease  // primary -> standby: replicated session released
	OpLeaseRenew   // delegate -> root: heartbeat; root re-affirms with OpLeaseGrant
)

var opNames = [...]string{"?", "Setup", "Grant", "Reject", "Teardown", "Revoke",
	"LeaseGrant", "LeaseRequest", "LeaseReturn", "Promote", "Retarget",
	"SyncGrant", "SyncRelease", "LeaseRenew"}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Msg is the in-band control-plane message body. It rides a Control-class
// packet's Ctl field through the fabric; SigMsgSize models its wire size.
type Msg struct {
	Op      Op
	Session uint64 // session identity, unique network-wide
	Attempt int    // setup attempt number (0 = first try)

	// Setup fields (client -> CAC).
	Src, Dst int
	BW       units.Bandwidth
	Class    packet.Class

	// Grant/Revoke fields (CAC -> client).
	Route []int // admitted route for the data flow
	// Downgrade on a Revoke tells the client its reservation could not be
	// re-admitted after a fault: continue as best effort.
	Downgrade bool
	// DownAt, on a Revoke caused by a switch or port failure, carries the
	// fault's event time. The client measures time-to-repair as the
	// in-band delivery time of the new route minus DownAt — the real
	// service-interruption window, fabric queueing included. Zero on
	// derate-driven revokes. On a Promote it carries the CAC fault's event
	// time, the base of the control-plane time-to-recovery measurement.
	DownAt units.Time

	// Delegated control plane fields.
	//
	// Frac is the lease fraction carried by lease opcodes and Promote.
	Frac float64
	// Target, on a Retarget, is the host the client must signal next
	// (-1 = the root manager).
	Target int
	// RetryAfter, on a Reject from a shedding CAC, is the control queue's
	// drain-time hint: retrying sooner is pointless. The client uses
	// max(exponential backoff, RetryAfter).
	RetryAfter units.Time
	// Local marks a Grant issued by the pod delegate; the teardown must go
	// back to the pod CAC rather than the root.
	Local bool
}

// Profile describes one entry of the per-class session mix.
type Profile struct {
	// Weight is the relative arrival share of this profile (weights need
	// not sum to 1).
	Weight float64
	// Class is the data traffic's class. Regulated classes (Control,
	// Multimedia) reserve bandwidth through the CAC; best-effort classes
	// are granted a hashed fixed route without reservation.
	Class packet.Class
	// BW is the requested average bandwidth (bytes per ns); the data
	// source emits CBR at exactly this rate once granted.
	BW units.Bandwidth
	// MsgSize is the payload of each data message.
	MsgSize units.Size
	// HoldMean overrides Config.HoldMean for this profile when positive.
	HoldMean units.Time
}

// Config parameterises the session subsystem. The zero value of each
// field selects the default noted on it (see WithDefaults); Profiles
// defaults to DefaultProfiles.
type Config struct {
	// Manager is the host index running the centralised CAC endpoint
	// (default 0). It generates no sessions of its own.
	Manager int
	// InterArrival is the mean per-host session inter-arrival time
	// (Poisson arrivals, exponential gaps; default 500 µs).
	InterArrival units.Time
	// HoldMean is the mean session hold time, exponential, measured from
	// the grant (default 2 ms).
	HoldMean units.Time
	// Profiles is the session mix (default DefaultProfiles).
	Profiles []Profile
	// SigMsgSize is the signalling message payload size (default 64 B).
	SigMsgSize units.Size
	// MaxRetries bounds setup retries after a reject or timeout before
	// the session downgrades to best effort (default 3; negative
	// disables retries).
	MaxRetries int
	// RetryBackoff is the base retry delay, doubled per attempt
	// (default 50 µs).
	RetryBackoff units.Time
	// RespTimeout is how long a client waits for a setup response before
	// treating the attempt as lost (default 500 µs).
	RespTimeout units.Time
	// RevokeDelay models the fabric-management latency between a fault
	// plan derating a link and the CAC revoking the affected
	// reservations (default 1 µs).
	RevokeDelay units.Time
	// FlashFactor, when > 1, multiplies the arrival rate during the
	// window [FlashAt, FlashAt+FlashLen) — a flash crowd.
	FlashFactor float64
	FlashAt     units.Time
	FlashLen    units.Time

	// Delegation enables the survivable control plane: a per-pod delegate
	// CAC on each leaf switch's lowest-indexed host holds a revocable
	// capacity lease over the pod's links and admits intra-pod setups one
	// hop away; the root CAC arbitrates inter-pod capacity, grows/reclaims
	// leases, and promotes the pod's standby delegate when a switch or
	// port fault kills the primary's attachment (default off).
	Delegation bool
	// LeaseFrac is each delegate's initial lease: the fraction of its
	// pod's host-link capacity it may admit locally (default 0.5).
	LeaseFrac float64
	// LeaseStep is the lease growth granularity when a delegate's lease
	// runs full (default 0.2); leases never exceed MaxLeaseFrac.
	LeaseStep float64
	// LocalFrac biases each client's destination draw: with this
	// probability the destination is a same-pod host (default 0 =
	// uniform). Zero leaves the client random streams byte-identical to
	// earlier revisions.
	LocalFrac float64
	// CtlService models the CAC host's per-setup processing time. Zero
	// (the default) disables the bounded control queue: setups are served
	// at delivery, as before.
	CtlService units.Time
	// CtlQueueCap bounds the CAC control queue when CtlService > 0
	// (default 64). Setups arriving beyond it are shed with a
	// reject-with-backoff carrying the queue's drain time, instead of
	// queueing without bound.
	CtlQueueCap int
	// LeaseRenew is the delegates' lease-renewal heartbeat interval
	// (default 250 µs). The heartbeat doubles as the root-failure
	// detector: a delegate that misses two consecutive renewal acks
	// opens its escalation breaker and rejects inter-pod setups locally
	// instead of injecting them towards a dead root — sustained traffic
	// to a dead host would otherwise tree-saturate the Control VC
	// fabric-wide, starving even pod-local admission.
	LeaseRenew units.Time
}

// MaxLeaseFrac caps how much of a pod's capacity the root may lease away;
// the remainder keeps inter-pod reservations admissible.
const MaxLeaseFrac = 0.9

// DefaultProfiles is the default session mix: mostly multimedia streams,
// some small control sessions, and a best-effort tail. Bandwidths are in
// bytes/ns (0.05 = 5% of the default 8 Gb/s link).
func DefaultProfiles() []Profile {
	return []Profile{
		{Weight: 0.5, Class: packet.Multimedia, BW: 0.05, MsgSize: 1466},
		{Weight: 0.3, Class: packet.Control, BW: 0.01, MsgSize: 256},
		{Weight: 0.2, Class: packet.BestEffort, BW: 0.03, MsgSize: 1000},
	}
}

// WithDefaults returns a copy with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.InterArrival == 0 {
		c.InterArrival = 500 * units.Microsecond
	}
	if c.HoldMean == 0 {
		c.HoldMean = 2 * units.Millisecond
	}
	if c.SigMsgSize == 0 {
		c.SigMsgSize = 64
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * units.Microsecond
	}
	if c.RespTimeout == 0 {
		c.RespTimeout = 500 * units.Microsecond
	}
	if c.RevokeDelay == 0 {
		c.RevokeDelay = units.Microsecond
	}
	if len(c.Profiles) == 0 {
		c.Profiles = DefaultProfiles()
	}
	if c.LeaseFrac == 0 {
		c.LeaseFrac = 0.5
	}
	if c.LeaseStep == 0 {
		c.LeaseStep = 0.2
	}
	if c.CtlQueueCap == 0 {
		c.CtlQueueCap = 64
	}
	if c.LeaseRenew == 0 {
		c.LeaseRenew = 250 * units.Microsecond
	}
	return c
}

// Validate checks an already-defaulted Config against a host count.
func (c Config) Validate(hosts int) error {
	if hosts < 2 {
		return fmt.Errorf("session: need at least 2 hosts, have %d", hosts)
	}
	if hosts > maxHosts {
		return fmt.Errorf("session: %d hosts exceed the flow-id plan's limit %d", hosts, maxHosts)
	}
	if c.Manager < 0 || c.Manager >= hosts {
		return fmt.Errorf("session: manager host %d out of range [0,%d)", c.Manager, hosts)
	}
	if c.InterArrival <= 0 || c.HoldMean <= 0 {
		return fmt.Errorf("session: non-positive inter-arrival %v or hold %v", c.InterArrival, c.HoldMean)
	}
	if c.SigMsgSize <= 0 {
		return fmt.Errorf("session: non-positive signalling size %v", c.SigMsgSize)
	}
	if c.RetryBackoff <= 0 || c.RespTimeout <= 0 {
		return fmt.Errorf("session: non-positive backoff %v or timeout %v", c.RetryBackoff, c.RespTimeout)
	}
	if c.RevokeDelay < 0 {
		return fmt.Errorf("session: negative revoke delay %v", c.RevokeDelay)
	}
	if c.FlashFactor != 0 && c.FlashFactor < 1 {
		return fmt.Errorf("session: flash factor %v must be 0 (off) or >= 1", c.FlashFactor)
	}
	if c.FlashLen < 0 {
		return fmt.Errorf("session: negative flash window %v", c.FlashLen)
	}
	if c.LeaseFrac <= 0 || c.LeaseFrac > MaxLeaseFrac {
		return fmt.Errorf("session: lease fraction %v outside (0, %v]", c.LeaseFrac, MaxLeaseFrac)
	}
	if c.LeaseStep <= 0 || c.LeaseStep >= 1 {
		return fmt.Errorf("session: lease step %v outside (0, 1)", c.LeaseStep)
	}
	if c.LocalFrac < 0 || c.LocalFrac > 1 {
		return fmt.Errorf("session: local fraction %v outside [0, 1]", c.LocalFrac)
	}
	if c.CtlService < 0 {
		return fmt.Errorf("session: negative control service time %v", c.CtlService)
	}
	if c.CtlQueueCap < 1 {
		return fmt.Errorf("session: control queue capacity %d below 1", c.CtlQueueCap)
	}
	if c.LeaseRenew <= 0 {
		return fmt.Errorf("session: non-positive lease renew interval %v", c.LeaseRenew)
	}
	if len(c.Profiles) == 0 {
		return fmt.Errorf("session: empty profile mix")
	}
	var total float64
	for i, p := range c.Profiles {
		if !(p.Weight > 0) || math.IsInf(p.Weight, 0) {
			return fmt.Errorf("session: profile %d weight %v must be positive and finite", i, p.Weight)
		}
		if p.BW <= 0 {
			return fmt.Errorf("session: profile %d non-positive bandwidth %v", i, p.BW)
		}
		if p.MsgSize <= 0 {
			return fmt.Errorf("session: profile %d non-positive message size %v", i, p.MsgSize)
		}
		if p.HoldMean < 0 {
			return fmt.Errorf("session: profile %d negative hold mean %v", i, p.HoldMean)
		}
		if int(p.Class) >= packet.NumClasses {
			return fmt.Errorf("session: profile %d unknown class %d", i, p.Class)
		}
		total += p.Weight
	}
	if !(total > 0) || math.IsInf(total, 0) {
		return fmt.Errorf("session: profile weights sum to %v", total)
	}
	return nil
}

// Flow-id plan: session flows live far above the static flow ids the
// network provisions at setup (small sequential integers) so the two can
// never collide. Signalling flows are per host pair with the manager;
// data flows encode (host, per-host session sequence).
const (
	sigUpBase         packet.FlowID = 0x4000_0000 // client h -> root manager
	sigPodUpBase      packet.FlowID = 0x4200_0000 // client h -> pod primary delegate
	sigPodAltUpBase   packet.FlowID = 0x4300_0000 // client h -> pod standby delegate
	sigPodDownBase    packet.FlowID = 0x4400_0000 // pod primary delegate -> client h
	sigPodAltDownBase packet.FlowID = 0x4600_0000 // pod standby delegate -> client h
	sigDownBase       packet.FlowID = 0x4800_0000 // manager -> client h
	dataBase          packet.FlowID = 0x5000_0000 // session data flows

	// maxHosts bounds host indices so dataBase | h<<16 stays inside the
	// 32-bit flow-id space (and every signalling family inside its gap).
	maxHosts = 1 << 14
	// maxSessionsPerHost bounds the per-host session sequence (16 bits in
	// the data-flow id).
	maxSessionsPerHost = 1 << 16
)

// SigUp returns the id of host h's client->manager signalling flow.
func SigUp(h int) packet.FlowID { return sigUpBase + packet.FlowID(h) }

// SigDown returns the id of the manager->client-h signalling flow.
func SigDown(h int) packet.FlowID { return sigDownBase + packet.FlowID(h) }

// SigPodUp returns the id of host h's client->pod-primary signalling flow.
func SigPodUp(h int) packet.FlowID { return sigPodUpBase + packet.FlowID(h) }

// SigPodAltUp returns the id of host h's client->pod-standby signalling
// flow.
func SigPodAltUp(h int) packet.FlowID { return sigPodAltUpBase + packet.FlowID(h) }

// SigPodDown returns the id of the pod-primary->client-h signalling flow.
func SigPodDown(h int) packet.FlowID { return sigPodDownBase + packet.FlowID(h) }

// SigPodAltDown returns the id of the pod-standby->client-h signalling
// flow.
func SigPodAltDown(h int) packet.FlowID { return sigPodAltDownBase + packet.FlowID(h) }

// DataFlowID returns the data-flow id of host h's seq-th session.
func DataFlowID(h int, seq uint32) packet.FlowID {
	return dataBase | packet.FlowID(h)<<16 | packet.FlowID(seq)
}

// IsSignalling reports whether id is a session signalling flow.
func IsSignalling(id packet.FlowID) bool { return id >= sigUpBase && id < dataBase }

// IsSessionData reports whether id is a dynamic session data flow.
func IsSessionData(id packet.FlowID) bool { return id >= dataBase }

// sessionID builds the network-unique session identity of host h's seq-th
// session.
func sessionID(h int, seq uint32) uint64 { return uint64(h+1)<<32 | uint64(seq) }

// Pod groups the hosts attached to one leaf switch, plus the delegate CAC
// placement the delegated control plane uses for it.
type Pod struct {
	// Leaf is the pod's leaf switch (every member host attaches to it).
	Leaf int
	// Hosts lists the pod's hosts, ascending (the manager included when it
	// lives here — it receives data but never signals a delegate).
	Hosts []int
	// Primary is the pod's delegate CAC host: the lowest-indexed
	// non-manager host, or -1 when the pod has fewer than two non-manager
	// hosts (such pods signal the root directly).
	Primary int
	// Standby is the failover delegate (next non-manager host), -1 when
	// the pod has none.
	Standby int
}

// PodPlan computes the deterministic pod and delegate layout for a
// topology: hosts grouped by leaf switch in ascending leaf order. Both the
// network wiring and tests derive placement from this single function.
func PodPlan(topo topology.Topology, manager int) []Pod {
	byLeaf := make(map[int][]int)
	var leaves []int
	for h := 0; h < topo.Hosts(); h++ {
		sw, _ := topo.HostPort(h)
		if _, seen := byLeaf[sw]; !seen {
			leaves = append(leaves, sw)
		}
		byLeaf[sw] = append(byLeaf[sw], h)
	}
	sort.Ints(leaves)
	pods := make([]Pod, 0, len(leaves))
	for _, leaf := range leaves {
		p := Pod{Leaf: leaf, Hosts: byLeaf[leaf], Primary: -1, Standby: -1}
		var elig []int
		for _, h := range p.Hosts {
			if h != manager {
				elig = append(elig, h)
			}
		}
		// A delegate needs at least one other pod client to serve.
		if len(elig) >= 2 {
			p.Primary = elig[0]
			if len(elig) >= 3 {
				p.Standby = elig[1]
			}
		}
		pods = append(pods, p)
	}
	return pods
}

// LivenessBound returns the longest a session may legally remain in the
// signalling state: every setup terminates (grant, downgrade, or
// unreachable-downgrade) within this horizon even when every control
// packet is discarded by a dying switch, because the response timers and
// capped retry backoffs are engine events, not fabric deliveries. The soak
// watchdog flags any pending session older than this.
func (c Config) LivenessBound() units.Time {
	r := c.MaxRetries
	if r < 0 {
		r = 0
	}
	bound := units.Time(r+1) * c.RespTimeout
	for a := 1; a <= r; a++ {
		bound += backoffFor(c.RetryBackoff, a)
	}
	if c.CtlService > 0 {
		// A shedding CAC may stretch each backoff to its drain-time hint.
		bound += units.Time(r) * units.Time(c.CtlQueueCap+1) * c.CtlService
	}
	return bound + units.Microsecond
}
