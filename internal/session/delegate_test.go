// Integration tests for the survivable admission control plane: per-pod
// delegate CACs with capacity leases, deterministic failover after a
// CAC-killing fault, and bounded-control-queue overload shedding. Like
// session_test.go they build full networks and assert on the reported
// Results, covering the lease/failover protocol end to end through real
// switches, links, and queueing.
package session_test

import (
	"testing"

	"deadlineqos/internal/faults"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/session"
	"deadlineqos/internal/units"
)

func TestDelegatedLifecycle(t *testing.T) {
	cfg := base()
	cfg.Sessions = &session.Config{
		InterArrival: 300 * units.Microsecond,
		HoldMean:     units.Millisecond,
		Delegation:   true,
		LocalFrac:    0.6,
	}
	res := run(t, cfg)
	s, cp := res.Sessions, res.ControlPlane
	if cp == nil || !cp.Delegated {
		t.Fatalf("no delegated control-plane summary: %+v", cp)
	}
	if cp.Pods == 0 || cp.Delegates == 0 {
		t.Fatalf("no pods provisioned: pods=%d delegates=%d", cp.Pods, cp.Delegates)
	}
	if cp.LeaseGrants < uint64(cp.Pods) {
		t.Errorf("lease grants %d below pod count %d", cp.LeaseGrants, cp.Pods)
	}
	// Intra-pod setups are admitted one hop away; inter-pod setups
	// escalate to the root. Both paths must be exercised.
	if cp.LocalGrants == 0 {
		t.Fatalf("no delegate admitted locally: %+v", cp)
	}
	if cp.Escalated == 0 {
		t.Errorf("no setup escalated to the root: %+v", cp)
	}
	if s.Accepted < cp.LocalGrants {
		t.Errorf("accepted %d < local grants %d (delegate grants must count)", s.Accepted, cp.LocalGrants)
	}
	if s.Granted == 0 || s.Finished == 0 {
		t.Fatalf("delegated sessions did not run: granted=%d finished=%d", s.Granted, s.Finished)
	}
	if s.Granted > s.Accepted+s.DupSetups {
		t.Errorf("granted %d > accepted %d + dup re-grants %d", s.Granted, s.Accepted, s.DupSetups)
	}
	// No faults: nothing promoted, reclaimed, or replayed.
	if cp.Promotions != 0 || cp.Reclaims != 0 || cp.FailoverReplays != 0 {
		t.Errorf("failover activity without faults: %+v", cp)
	}
}

func TestDelegateFailover(t *testing.T) {
	cfg := base()
	cfg.Sessions = &session.Config{
		InterArrival: 200 * units.Microsecond,
		HoldMean:     units.Millisecond,
		Delegation:   true,
		LocalFrac:    0.8,
	}
	scfg := cfg.Sessions.WithDefaults()
	// Cut the primary delegate's attachment cable in one pod and the
	// standby's too in another: the first pod must fail over to its
	// standby, the second must fall back to the root.
	pods := session.PodPlan(cfg.Topology, scfg.Manager)
	var withStandby *session.Pod
	for i := range pods {
		if pods[i].Primary >= 0 && pods[i].Standby >= 0 {
			withStandby = &pods[i]
			break
		}
	}
	if withStandby == nil {
		t.Fatal("topology yields no pod with a standby")
	}
	plan := &faults.Plan{}
	sw, port := cfg.Topology.HostPort(withStandby.Primary)
	plan.Events = append(plan.Events,
		faults.Event{At: 1200 * units.Microsecond, Link: faults.LinkID{Switch: sw, Port: port}, Kind: faults.PortDown})
	sw2, port2 := cfg.Topology.HostPort(withStandby.Standby)
	plan.Events = append(plan.Events,
		faults.Event{At: 1800 * units.Microsecond, Link: faults.LinkID{Switch: sw2, Port: port2}, Kind: faults.PortDown})
	cfg.Faults = plan
	res := run(t, cfg)
	cp := res.ControlPlane
	if cp.Promotions == 0 {
		t.Fatalf("primary CAC death promoted no standby: %+v", cp)
	}
	if cp.FailoverCount == 0 || cp.FailoverP99 <= 0 {
		t.Errorf("no failover TTR measured: count=%d p99=%v", cp.FailoverCount, cp.FailoverP99)
	}
	if cp.Reclaims == 0 {
		t.Errorf("standby death reclaimed no lease: %+v", cp)
	}
	if cp.Retargets == 0 {
		t.Errorf("no client was retargeted: %+v", cp)
	}
	// Admission keeps working after both faults.
	if res.Sessions.Granted == 0 {
		t.Fatalf("no sessions granted across the outage")
	}
}

func TestCtlQueueShedding(t *testing.T) {
	cfg := base()
	cfg.Sessions = &session.Config{
		InterArrival: 40 * units.Microsecond,
		HoldMean:     units.Millisecond,
		CtlService:   5 * units.Microsecond,
		CtlQueueCap:  2,
	}
	res := run(t, cfg)
	s, cp := res.Sessions, res.ControlPlane
	// 16 hosts at one setup per 40us against a 5us service time saturate
	// the root's control queue: overload must shed deterministically, and
	// shed setups must still terminate (retry-with-backoff, then
	// downgrade) — run() already enforces the liveness watchdog via
	// CheckInvariants.
	if cp.Shed == 0 {
		t.Fatalf("saturated control queue shed nothing: %+v", cp)
	}
	if s.RejectsSeen == 0 || s.Retries == 0 {
		t.Errorf("shed rejects did not drive retries: rejects=%d retries=%d", s.RejectsSeen, s.Retries)
	}
	if s.Granted == 0 {
		t.Fatalf("shedding starved admission entirely")
	}
}

func TestLeaseGrowAndReturn(t *testing.T) {
	cfg := base()
	cfg.Sessions = &session.Config{
		InterArrival: 150 * units.Microsecond,
		HoldMean:     600 * units.Microsecond,
		Delegation:   true,
		LocalFrac:    1.0,
		LeaseFrac:    0.1,
		LeaseStep:    0.2,
	}
	res := run(t, cfg)
	cp := res.ControlPlane
	// A 10% initial lease under all-local load must fill up and trigger
	// growth requests; the root answers every request (grant or denial
	// re-grant), so grants exceed the bootstrap count.
	if cp.LeaseRequests == 0 {
		t.Fatalf("exhausted lease requested no growth: %+v", cp)
	}
	if cp.LeaseGrants <= uint64(cp.Pods) {
		t.Errorf("no lease growth granted: grants=%d pods=%d", cp.LeaseGrants, cp.Pods)
	}
	if cp.LocalGrants == 0 {
		t.Fatalf("no local admissions under all-local load: %+v", cp)
	}
}

func TestPodFlowIDPlan(t *testing.T) {
	ids := map[packet.FlowID]string{}
	add := func(name string, id packet.FlowID) {
		if prev, dup := ids[id]; dup {
			t.Fatalf("flow id collision: %s == %s (%#x)", name, prev, id)
		}
		ids[id] = name
		if !session.IsSignalling(id) || session.IsSessionData(id) {
			t.Errorf("%s (%#x) misclassified", name, id)
		}
	}
	for h := 0; h < 64; h++ {
		add("up", session.SigUp(h))
		add("down", session.SigDown(h))
		add("pod-up", session.SigPodUp(h))
		add("pod-alt-up", session.SigPodAltUp(h))
		add("pod-down", session.SigPodDown(h))
		add("pod-alt-down", session.SigPodAltDown(h))
	}
}
