package session

import (
	"fmt"
	"sort"

	"deadlineqos/internal/admission"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// ctlQueue models a CAC host's bounded control queue: each setup costs
// service time to process, and arrivals beyond cap are shed instead of
// queueing without bound. All state lives on the owning CAC's shard, so
// the queue's decisions are identical at any shard count.
type ctlQueue struct {
	eng       *sim.Engine
	service   units.Time
	cap       int
	depth     int
	busyUntil units.Time
}

// newCtlQueue returns a queue for the config, or nil when the model is
// disabled (CtlService 0): a nil queue serves everything at delivery.
func newCtlQueue(eng *sim.Engine, cfg *Config) *ctlQueue {
	if cfg.CtlService <= 0 {
		return nil
	}
	return &ctlQueue{eng: eng, service: cfg.CtlService, cap: cfg.CtlQueueCap}
}

// enqueue runs fn after the queued service delay. When the queue is full
// it reports shed, with the drain-time hint the reject should carry
// (bounded by (cap+1) x service, which the liveness bound relies on).
func (q *ctlQueue) enqueue(fn func()) (hint units.Time, ok bool) {
	now := q.eng.Now()
	if q.busyUntil < now {
		q.busyUntil = now
	}
	if q.depth >= q.cap {
		return q.busyUntil + q.service - now, false
	}
	q.depth++
	q.busyUntil += q.service
	q.eng.At(q.busyUntil, func() {
		q.depth--
		fn()
	})
	return 0, true
}

// Depth returns the current queue occupancy (telemetry); nil-safe.
func (q *ctlQueue) Depth() int {
	if q == nil {
		return 0
	}
	return q.depth
}

// dSession is a delegate's record of one locally granted session.
type dSession struct {
	src, dst int
	bw       units.Bandwidth
	class    packet.Class
	route    []int
	handle   admission.FlowHandle
	reserved bool
}

// dReplica is a standby's copy of one session the pod primary granted,
// maintained through OpSyncGrant/OpSyncRelease. At promotion the replica
// set reconciles the successor's lease ledger.
type dReplica struct {
	src, dst int
	bw       units.Bandwidth
	class    packet.Class
	route    []int
	reserved bool
}

// DelegateConfig wires one pod delegate CAC into its host's shard.
type DelegateConfig struct {
	Host *hostif.Host
	Eng  *sim.Engine // the engine of the shard owning Host
	Cfg  Config      // defaulted and validated
	Cnt  *Counters   // the owning shard's counter instance
	Pod  Pod
	// Standby marks the pod's standby instance: passive (replica
	// maintenance and escalation only) until the root promotes it.
	Standby bool
	Topo    topology.Topology
	LinkBW  units.Bandwidth
	RouteBE func(src, dst int, key uint64) []int
	// WarmUp and Horizon bound the reserved-bandwidth integral window.
	WarmUp, Horizon units.Time
}

// Delegate is a per-pod CAC endpoint. The primary holds a revocable
// capacity lease over the pod's host links — its own admission.Controller
// whose maxUtil IS the lease fraction — and admits intra-pod setups one
// hop away, escalating everything else to the root. The standby mirrors
// the primary's grants and takes over the lease when the root promotes it
// after a fault kills the primary's attachment. All delegate work happens
// in events on the owning host's engine.
type Delegate struct {
	c      DelegateConfig
	adm    *admission.Controller // pod-local lease ledger
	host   int
	syncTo int // standby host mirrored by this primary, -1 = none

	active      bool
	frac        float64 // current lease fraction (0 until granted)
	leaseWanted bool    // an OpLeaseRequest is outstanding

	// Root-failure detector (DESIGN.md §12): the lease-renewal heartbeat
	// doubles as a liveness probe. When renewal acks stop, the delegate
	// opens its escalation breaker (rootDark) and answers inter-pod
	// setups with a local reject instead of injecting them towards a
	// dead root — sustained traffic to a dead host tree-saturates the
	// Control VC and would starve pod-local admission too.
	renewArmed bool       // heartbeat self-scheduling started
	lastAck    units.Time // last time the root was heard from
	rootDark   bool       // escalation breaker open

	sessions map[uint64]*dSession
	byHandle map[admission.FlowHandle]uint64
	rep      map[uint64]*dReplica

	queue *ctlQueue
	// loop delivers a message to the co-located client without touching
	// the fabric (set by Dispatch; a CAC host is its own one-hop target).
	loop func(*Msg)

	// Per-entity cumulative counters for the telemetry probe rows (the
	// shard Counters mix all entities of a shard together, which would
	// vary with the shard layout).
	localGrants uint64
	revoked     uint64
	shed        uint64

	// Reserved-bandwidth integral, same single-writer scheme as the
	// Manager's; BuildResults sums the entities in pod order.
	cur       float64
	lastT     units.Time
	integral  float64
	finalized bool
}

// NewDelegate returns the delegate endpoint for dc.Host.
func NewDelegate(dc DelegateConfig) (*Delegate, error) {
	adm, err := admission.New(dc.Topo, dc.LinkBW, dc.Cfg.LeaseFrac)
	if err != nil {
		return nil, fmt.Errorf("session: delegate ledger: %w", err)
	}
	host := dc.Host.ID()
	syncTo := -1
	if !dc.Standby && dc.Pod.Standby >= 0 {
		syncTo = dc.Pod.Standby
	}
	return &Delegate{
		c: dc, adm: adm, host: host, syncTo: syncTo,
		sessions: make(map[uint64]*dSession),
		byHandle: make(map[admission.FlowHandle]uint64),
		rep:      make(map[uint64]*dReplica),
		queue:    newCtlQueue(dc.Eng, &dc.Cfg),
	}, nil
}

// HostID returns the delegate's host index.
func (d *Delegate) HostID() int { return d.host }

// PodLeaf returns the pod's leaf switch (the pod identity in telemetry).
func (d *Delegate) PodLeaf() int { return d.c.Pod.Leaf }

// Active reports whether the delegate currently holds the pod's lease.
func (d *Delegate) Active() bool { return d.active }

// ActiveSessions returns the number of locally granted, unreleased
// sessions (telemetry).
func (d *Delegate) ActiveSessions() int { return len(d.sessions) }

// ReservedNow returns the locally reserved session bandwidth (telemetry).
func (d *Delegate) ReservedNow() float64 { return d.cur }

// LeaseFrac returns the current lease fraction (telemetry).
func (d *Delegate) LeaseFrac() float64 { return d.frac }

// LeaseUtil returns the worst reserved-to-lease fraction across the pod's
// links (telemetry).
func (d *Delegate) LeaseUtil() float64 {
	if !d.active {
		return 0
	}
	return d.adm.UtilOfLimit()
}

// QueueDepth returns the control queue occupancy (telemetry).
func (d *Delegate) QueueDepth() int { return d.queue.Depth() }

// ShedCount returns the cumulative setups this delegate shed (telemetry).
func (d *Delegate) ShedCount() uint64 { return d.shed }

// LocalGrantCount returns the cumulative local grants (telemetry).
func (d *Delegate) LocalGrantCount() uint64 { return d.localGrants }

// RevokedCount returns the cumulative local revocations (telemetry).
func (d *Delegate) RevokedCount() uint64 { return d.revoked }

// advanceTo integrates the reserved bandwidth up to now, clipped to the
// measurement window.
func (d *Delegate) advanceTo(now units.Time) {
	lo, hi := d.lastT, now
	if lo < d.c.WarmUp {
		lo = d.c.WarmUp
	}
	if hi > d.c.Horizon {
		hi = d.c.Horizon
	}
	if hi > lo {
		d.integral += d.cur * float64(hi-lo)
	}
	d.lastT = now
}

// addReserved applies a reservation change at the current event time.
func (d *Delegate) addReserved(delta units.Bandwidth) {
	d.advanceTo(d.c.Eng.Now())
	d.cur += float64(delta)
}

// finishIntegral closes the integral at the horizon and returns it
// (called once by the Manager's BuildResults, after the run).
func (d *Delegate) finishIntegral() float64 {
	if !d.finalized {
		d.advanceTo(d.c.Horizon)
		d.finalized = true
	}
	return d.integral
}

// reply sends an in-band message to pod client host dst on this
// delegate's own down flow family. A message to the delegate's own host —
// a promoted standby serving its co-located client — is delivered
// zero-hop through the dispatcher's loopback instead of the fabric.
func (d *Delegate) reply(dst int, msg *Msg) {
	if dst == d.host {
		if d.loop != nil {
			d.loop(msg)
		}
		return
	}
	flow := SigPodDown(dst)
	if d.c.Standby {
		flow = SigPodAltDown(dst)
	}
	d.c.Host.SubmitCtl(flow, d.c.Cfg.SigMsgSize, msg)
}

// toRoot sends an in-band message to the root CAC on the host's shared
// up flow.
func (d *Delegate) toRoot(msg *Msg) {
	d.c.Host.SubmitCtl(SigUp(d.host), d.c.Cfg.SigMsgSize, msg)
}

// podLocal reports whether both hosts attach to this delegate's leaf.
func (d *Delegate) podLocal(a, b int) bool {
	la, _ := d.c.Topo.HostPort(a)
	lb, _ := d.c.Topo.HostPort(b)
	return la == d.c.Pod.Leaf && lb == d.c.Pod.Leaf
}

// HandleMsg serves one control message addressed to the delegate role
// (the host's dispatcher routes opcodes between delegate and client).
func (d *Delegate) HandleMsg(m *Msg) {
	switch m.Op {
	case OpSetup:
		if d.queue != nil {
			if hint, ok := d.queue.enqueue(func() { d.serveSetup(m) }); !ok {
				d.c.Cnt.Shed++
				d.c.Cnt.Mtr.Shed.Inc()
				d.shed++
				d.reply(m.Src, &Msg{Op: OpReject, Session: m.Session, Attempt: m.Attempt, RetryAfter: hint})
			}
			return
		}
		d.serveSetup(m)
	case OpTeardown:
		d.handleTeardown(m)
	case OpLeaseGrant:
		d.onLeaseGrant(m.Frac)
	case OpPromote:
		d.onPromote(m)
	case OpSyncGrant:
		d.rep[m.Session] = &dReplica{
			src: m.Src, dst: m.Dst, bw: m.BW, class: m.Class,
			route: m.Route, reserved: m.Class.Regulated(),
		}
	case OpSyncRelease:
		delete(d.rep, m.Session)
	default:
		panic(fmt.Sprintf("session: delegate %d received %v", d.host, m.Op))
	}
}

// serveSetup admits, replays, or escalates one setup.
func (d *Delegate) serveSetup(m *Msg) {
	if s := d.sessions[m.Session]; s != nil {
		// Retried Setup whose grant is in flight or was lost.
		d.c.Cnt.DupSetups++
		d.reply(m.Src, &Msg{Op: OpGrant, Session: m.Session, Route: s.route, Local: true})
		return
	}
	if r := d.rep[m.Session]; r != nil {
		// Idempotent replay from the replica: the client re-sent a setup
		// the failed primary had granted; honour the original grant.
		d.c.Cnt.FailoverReplays++
		d.reply(m.Src, &Msg{Op: OpGrant, Session: m.Session, Route: r.route, Local: true})
		return
	}
	if !d.active {
		d.escalate(m)
		return
	}
	if m.Class.Regulated() {
		if !d.podLocal(m.Src, m.Dst) {
			// Inter-pod reservations are the root's to arbitrate.
			d.escalate(m)
			return
		}
		route, h, err := d.adm.Reserve(m.Src, m.Dst, m.BW)
		if err != nil {
			// Lease exhausted (or pod fabric dead): ask the root to grow
			// the lease and let it arbitrate this setup meanwhile.
			d.requestLease()
			d.escalate(m)
			return
		}
		d.sessions[m.Session] = &dSession{
			src: m.Src, dst: m.Dst, bw: m.BW, class: m.Class,
			route: route, handle: h, reserved: true,
		}
		d.byHandle[h] = m.Session
		d.addReserved(m.BW)
		d.grantLocal(m)
		return
	}
	// Best-effort sessions need no reservation, only a fixed hashed
	// route; the delegate grants them locally wherever they go.
	d.sessions[m.Session] = &dSession{
		src: m.Src, dst: m.Dst, bw: m.BW, class: m.Class,
		route: d.c.RouteBE(m.Src, m.Dst, m.Session),
	}
	d.grantLocal(m)
}

// grantLocal counts and answers one local admission, mirroring the new
// record to the standby.
func (d *Delegate) grantLocal(m *Msg) {
	d.c.Cnt.Accepted++
	d.c.Cnt.Mtr.Accepted.Inc()
	d.c.Cnt.LocalGrants++
	d.c.Cnt.Mtr.LocalGrants.Inc()
	d.localGrants++
	d.sync(m.Session)
	d.reply(m.Src, &Msg{Op: OpGrant, Session: m.Session, Route: d.sessions[m.Session].route, Local: true})
}

// escalate forwards a setup to the root CAC, which replies to the client
// directly — unless the breaker is open, in which case the delegate
// answers here: rejects keep the client's retries pod-local, and the
// retry budget then downgrades the session without ever feeding the
// blackhole towards the dead root.
func (d *Delegate) escalate(m *Msg) {
	if d.rootDark {
		d.c.Cnt.BreakerRejects++
		d.reply(m.Src, &Msg{Op: OpReject, Session: m.Session, Attempt: m.Attempt,
			RetryAfter: d.c.Cfg.LeaseRenew})
		return
	}
	d.c.Cnt.Escalated++
	d.c.Cnt.Mtr.Escalated.Inc()
	d.toRoot(m)
}

// sync replicates one session record to the standby (primaries only).
func (d *Delegate) sync(id uint64) {
	if d.syncTo < 0 {
		return
	}
	s := d.sessions[id]
	d.c.Host.SubmitCtl(SigPodDown(d.syncTo), d.c.Cfg.SigMsgSize, &Msg{
		Op: OpSyncGrant, Session: id, Src: s.src, Dst: s.dst,
		BW: s.bw, Class: s.class, Route: s.route,
	})
}

// syncRelease withdraws one replicated record from the standby.
func (d *Delegate) syncRelease(id uint64) {
	if d.syncTo < 0 {
		return
	}
	d.c.Host.SubmitCtl(SigPodDown(d.syncTo), d.c.Cfg.SigMsgSize, &Msg{
		Op: OpSyncRelease, Session: id,
	})
}

// requestLease asks the root to grow the lease by one step, at most one
// request in flight.
func (d *Delegate) requestLease() {
	want := d.frac + d.c.Cfg.LeaseStep
	if d.leaseWanted || d.rootDark || want > MaxLeaseFrac+1e-9 {
		return
	}
	d.leaseWanted = true
	d.c.Cnt.LeaseRequests++
	d.toRoot(&Msg{Op: OpLeaseRequest, Src: d.host, Frac: want})
}

// onLeaseGrant installs a granted (or re-affirmed) lease fraction and
// activates the delegate. Every grant — including renewal acks — counts
// as proof of root liveness, closing the breaker and arming the
// heartbeat on first contact. A zero fraction is an eviction: the root
// no longer considers this instance the pod's CAC (demoted or reclaimed
// while unreachable), so it stops admitting and lets its ledger drain
// through ordinary teardowns.
func (d *Delegate) onLeaseGrant(frac float64) {
	d.leaseWanted = false
	d.lastAck = d.c.Eng.Now()
	d.rootDark = false
	if !d.renewArmed {
		d.renewArmed = true
		d.c.Eng.After(d.c.Cfg.LeaseRenew, d.renewTick)
	}
	if frac <= 0 {
		d.frac = 0
		d.active = false
		return
	}
	d.frac = frac
	d.adm.SetMaxUtil(frac)
	d.active = true
}

// renewTick emits the periodic lease-renewal heartbeat and runs the
// failure detector: a silent root for more than one full renewal period
// beyond the last ack (two unanswered heartbeats) opens the breaker.
func (d *Delegate) renewTick() {
	now := d.c.Eng.Now()
	if !d.rootDark && now-d.lastAck > 2*d.c.Cfg.LeaseRenew {
		d.rootDark = true
		d.c.Cnt.BreakerOpens++
	}
	d.toRoot(&Msg{Op: OpLeaseRenew, Src: d.host})
	d.c.Eng.After(d.c.Cfg.LeaseRenew, d.renewTick)
}

// onPromote makes a passive standby the pod's CAC: it takes over the
// lease and reconciles its ledger from the replica, restoring every
// surviving grant in ascending session order (idempotent, deterministic).
func (d *Delegate) onPromote(m *Msg) {
	if d.active {
		return
	}
	d.onLeaseGrant(m.Frac)
	ids := make([]uint64, 0, len(d.rep))
	for id := range d.rep {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := d.rep[id]
		s := &dSession{src: r.src, dst: r.dst, bw: r.bw, class: r.class,
			route: r.route, reserved: r.reserved}
		if r.reserved {
			h := d.adm.Restore(r.src, r.route, r.bw)
			s.handle = h
			d.byHandle[h] = id
			d.addReserved(r.bw)
		}
		d.sessions[id] = s
	}
	d.rep = make(map[uint64]*dReplica)
	d.c.Cnt.Promotions++
	if m.DownAt > 0 {
		d.c.Cnt.FailoverHist.Add(d.c.Eng.Now() - m.DownAt)
	}
}

// handleTeardown releases one locally granted session.
func (d *Delegate) handleTeardown(m *Msg) {
	s := d.sessions[m.Session]
	if s == nil {
		// Either revoke-downgraded after a fault, or a replica-only record
		// whose grantor died: drop any replica so a later promotion does
		// not resurrect the reservation.
		delete(d.rep, m.Session)
		d.c.Cnt.StaleTeardowns++
		return
	}
	if s.reserved {
		d.adm.Release(s.handle)
		delete(d.byHandle, s.handle)
		d.addReserved(-s.bw)
	}
	delete(d.sessions, m.Session)
	d.c.Cnt.Released++
	d.c.Cnt.Mtr.Released.Inc()
	d.syncRelease(m.Session)
	if d.active && !d.rootDark && d.adm.ActiveFlows() == 0 && d.frac > d.c.Cfg.LeaseFrac+1e-9 {
		// The pod drained: return the grown share to the root.
		d.frac = d.c.Cfg.LeaseFrac
		d.adm.SetMaxUtil(d.frac)
		d.c.Cnt.LeaseReturns++
		d.toRoot(&Msg{Op: OpLeaseReturn, Src: d.host, Frac: d.frac})
	}
}

// OnLinkDerated mirrors the root's derate handling onto the lease ledger:
// apply the capacity change, then revoke the most recent local
// reservations until the link's reserved load fits again. The network
// schedules this on the delegate's shard RevokeDelay after the fault.
func (d *Delegate) OnLinkDerated(sw, port int, scale float64) {
	d.adm.DerateLink(sw, port, scale)
	if scale >= 1 || !d.active {
		return
	}
	for d.adm.Reserved(sw, port) > d.adm.LinkLimit(sw, port) {
		handles := d.adm.HandlesOn(sw, port)
		victim := uint64(0)
		found := false
		for i := len(handles) - 1; i >= 0; i-- {
			if id, ok := d.byHandle[handles[i]]; ok {
				victim, found = id, true
				break
			}
		}
		if !found {
			return
		}
		d.revoke(victim)
	}
}

// OnSwitchDown marks a switch dead in the lease ledger and repairs the
// stranded local sessions.
func (d *Delegate) OnSwitchDown(sw int, downAt units.Time) {
	d.adm.SetSwitchDown(sw, true)
	d.repairStranded(downAt)
}

// OnSwitchUp clears a switch's dead marking.
func (d *Delegate) OnSwitchUp(sw int) { d.adm.SetSwitchDown(sw, false) }

// OnPortDown marks a cable dead and repairs the stranded local sessions.
func (d *Delegate) OnPortDown(sw, port int, downAt units.Time) {
	d.adm.SetPortDown(sw, port, true)
	d.repairStranded(downAt)
}

// OnPortUp clears a cable's dead marking.
func (d *Delegate) OnPortUp(sw, port int) { d.adm.SetPortDown(sw, port, false) }

// revoke tears one local session out of the lease ledger and either
// re-admits it within the lease or downgrades it (derate path).
func (d *Delegate) revoke(id uint64) {
	s := d.sessions[id]
	d.adm.Release(s.handle)
	delete(d.byHandle, s.handle)
	d.addReserved(-s.bw)
	d.c.Cnt.Revoked++
	d.c.Cnt.Mtr.Revoked.Inc()
	d.revoked++
	route, h, err := d.adm.Reserve(s.src, s.dst, s.bw)
	if err != nil {
		delete(d.sessions, id)
		d.c.Cnt.RevokeDowngrades++
		d.syncRelease(id)
		d.reply(s.src, &Msg{Op: OpRevoke, Session: id, Downgrade: true})
		return
	}
	s.handle, s.route = h, route
	d.byHandle[h] = id
	d.addReserved(s.bw)
	d.c.Cnt.Rerouted++
	d.sync(id)
	d.reply(s.src, &Msg{Op: OpRevoke, Session: id, Route: route})
}

// repairStranded sweeps the local session table for routes crossing dead
// fabric, in ascending session order (mirrors the root's sweep).
func (d *Delegate) repairStranded(downAt units.Time) {
	if !d.active {
		return
	}
	var victims []uint64
	for id, s := range d.sessions {
		if d.adm.RouteDead(s.src, s.route) {
			victims = append(victims, id)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, id := range victims {
		d.c.Cnt.SwitchRevoked++
		d.revokeFault(id, downAt)
	}
}

// revokeFault repairs one local session stranded by a switch or port
// failure, mirroring the root's repair ladder within the lease.
func (d *Delegate) revokeFault(id uint64, downAt units.Time) {
	s := d.sessions[id]
	if !s.reserved {
		if route := d.adm.RepairRoute(s.src, s.dst); route != nil {
			s.route = route
			d.c.Cnt.SwitchRerouted++
			d.sync(id)
			d.reply(s.src, &Msg{Op: OpRevoke, Session: id, Route: route, DownAt: downAt})
			return
		}
		delete(d.sessions, id)
		d.c.Cnt.SwitchUnreachable++
		d.syncRelease(id)
		d.reply(s.src, &Msg{Op: OpRevoke, Session: id, Downgrade: true, DownAt: downAt})
		return
	}
	d.adm.Release(s.handle)
	delete(d.byHandle, s.handle)
	d.addReserved(-s.bw)
	d.c.Cnt.Revoked++
	d.c.Cnt.Mtr.Revoked.Inc()
	d.revoked++
	route, h, err := d.adm.Reserve(s.src, s.dst, s.bw)
	if err == nil {
		s.handle, s.route = h, route
		d.byHandle[h] = id
		d.addReserved(s.bw)
		d.c.Cnt.Rerouted++
		d.c.Cnt.SwitchRerouted++
		d.sync(id)
		d.reply(s.src, &Msg{Op: OpRevoke, Session: id, Route: route, DownAt: downAt})
		return
	}
	delete(d.sessions, id)
	d.c.Cnt.RevokeDowngrades++
	d.syncRelease(id)
	route = d.adm.RepairRoute(s.src, s.dst)
	if route != nil {
		d.c.Cnt.SwitchDowngraded++
	} else {
		d.c.Cnt.SwitchUnreachable++
	}
	d.reply(s.src, &Msg{Op: OpRevoke, Session: id, Downgrade: true, Route: route, DownAt: downAt})
}

// AuditLedger exposes the lease ledger's balance audit (soak invariants).
func (d *Delegate) AuditLedger() error { return d.adm.AuditLedger() }

// Dispatch returns the Ctl handler for a host running both a session
// client and a delegate CAC, routing each opcode to its role: setups,
// teardowns and the delegate protocol to the delegate, client-bound
// replies (grants, rejects, revokes, retargets) to the client.
func Dispatch(cl *Client, d *Delegate) func(*packet.Packet) {
	d.loop = cl.handleMsg
	return func(p *packet.Packet) {
		m, ok := p.Ctl.(*Msg)
		if !ok {
			panic(fmt.Sprintf("session: host %d received foreign control payload %T", d.host, p.Ctl))
		}
		switch m.Op {
		case OpSetup, OpTeardown, OpLeaseGrant, OpPromote, OpSyncGrant, OpSyncRelease:
			d.HandleMsg(m)
		default:
			cl.HandleCtl(p)
		}
	}
}
