package session

import (
	"fmt"
	"sort"

	"deadlineqos/internal/admission"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
)

// mSession is the CAC-side record of one granted session.
type mSession struct {
	src, dst int
	bw       units.Bandwidth
	class    packet.Class
	route    []int
	handle   admission.FlowHandle
	reserved bool // false for best-effort grants (no ledger entry)
}

// ManagerConfig wires the Manager into its host's shard.
type ManagerConfig struct {
	Host *hostif.Host
	Eng  *sim.Engine // the engine of the shard owning Host
	// Adm is the centralised admission controller. All mutations happen in
	// this manager's event handlers, i.e. on one shard; the admission order
	// is the arrival order on the manager's single ejection link, which is
	// identical in sequential and sharded runs.
	Adm *admission.Controller
	Cfg Config
	Cnt *Counters // the manager shard's counter instance

	Hosts  int
	LinkBW units.Bandwidth
	// WarmUp and Horizon bound the reserved-bandwidth integral window.
	WarmUp, Horizon units.Time

	// Pods and Delegates describe the delegated control plane (empty in
	// centralised mode). Delegates holds every delegate endpoint in pod
	// order, primary before standby; the manager only reads their state
	// after the run, in BuildResults.
	Pods      []Pod
	Delegates []*Delegate
}

// Manager is the centralised CAC endpoint: it serves in-band Setup and
// Teardown messages arriving at its host, and revokes reservations that a
// fault-plan derate has stranded on an oversubscribed link.
type Manager struct {
	c        ManagerConfig
	sessions map[uint64]*mSession
	byHandle map[admission.FlowHandle]uint64

	// Delegated control plane: podFrac and podCAC track, per pod, the
	// leased capacity fraction and which host currently serves as the
	// pod's CAC (-1: the root serves the pod directly).
	pods    []Pod
	podFrac []float64
	podCAC  []int

	// queue is the root's bounded control queue (nil when disabled).
	queue *ctlQueue

	// Per-entity cumulative counters for the telemetry probe rows (the
	// shard Counters mix all entities of a shard together).
	accN, rejN, revN, shedN uint64

	// Reserved-bandwidth integral over [WarmUp, Horizon]: cur is the sum
	// of currently reserved session bandwidth, integrated piecewise at
	// every change. Single-writer (manager events only), so the float
	// operation sequence is identical at any shard count.
	cur       float64
	lastT     units.Time
	integral  float64
	finalized bool
}

// NewManager returns the CAC endpoint for mc.Host.
func NewManager(mc ManagerConfig) *Manager {
	m := &Manager{
		c:        mc,
		sessions: make(map[uint64]*mSession),
		byHandle: make(map[admission.FlowHandle]uint64),
		pods:     mc.Pods,
		podFrac:  make([]float64, len(mc.Pods)),
		podCAC:   make([]int, len(mc.Pods)),
		queue:    newCtlQueue(mc.Eng, &mc.Cfg),
	}
	for i := range m.podCAC {
		m.podCAC[i] = -1
	}
	return m
}

// Bootstrap grants every pod's primary delegate its initial capacity
// lease. The network schedules it at t=0 on the manager's shard when
// delegation is enabled, so the grants ride the in-band signalling flows
// like any other control traffic.
func (m *Manager) Bootstrap() {
	for i := range m.pods {
		if m.pods[i].Primary < 0 {
			continue
		}
		m.podCAC[i] = m.pods[i].Primary
		m.grantLease(i, m.c.Cfg.LeaseFrac)
	}
}

// grantLease carves frac of pod i's host links out of the root ledger and
// tells the pod's CAC (grant and growth share this path; a re-grant of
// the current fraction doubles as a growth denial the delegate can clear
// its outstanding-request flag on).
func (m *Manager) grantLease(i int, frac float64) {
	m.c.Adm.SetPodLease(m.pods[i].Hosts, frac)
	m.podFrac[i] = frac
	m.c.Cnt.LeaseGrants++
	m.reply(m.podCAC[i], &Msg{Op: OpLeaseGrant, Frac: frac})
}

// podByCAC returns the pod index currently served by CAC host h, or -1.
func (m *Manager) podByCAC(h int) int {
	for i, cac := range m.podCAC {
		if cac == h {
			return i
		}
	}
	return -1
}

// advanceTo integrates the current reserved bandwidth up to now, clipped
// to the measurement window.
func (m *Manager) advanceTo(now units.Time) {
	lo, hi := m.lastT, now
	if lo < m.c.WarmUp {
		lo = m.c.WarmUp
	}
	if hi > m.c.Horizon {
		hi = m.c.Horizon
	}
	if hi > lo {
		m.integral += m.cur * float64(hi-lo)
	}
	m.lastT = now
}

// addReserved applies a reservation change at the current event time.
func (m *Manager) addReserved(delta units.Bandwidth) {
	m.advanceTo(m.c.Eng.Now())
	m.cur += float64(delta)
}

// reply sends an in-band control message back to client host dst.
func (m *Manager) reply(dst int, msg *Msg) {
	m.c.Host.SubmitCtl(SigDown(dst), m.c.Cfg.SigMsgSize, msg)
}

// HandleCtl serves control-plane messages delivered to the manager host
// (wired as the host's SetCtlHandler).
func (m *Manager) HandleCtl(p *packet.Packet) {
	msg, ok := p.Ctl.(*Msg)
	if !ok {
		panic(fmt.Sprintf("session: manager received foreign control payload %T", p.Ctl))
	}
	switch msg.Op {
	case OpSetup:
		if m.queue != nil {
			// Overloaded root: bounded queue, deterministic shed with a
			// drain-time hint the client folds into its backoff.
			if hint, ok := m.queue.enqueue(func() { m.handleSetup(msg) }); !ok {
				m.c.Cnt.Shed++
				m.c.Cnt.Mtr.Shed.Inc()
				m.shedN++
				m.reply(msg.Src, &Msg{Op: OpReject, Session: msg.Session, Attempt: msg.Attempt, RetryAfter: hint})
			}
			return
		}
		m.handleSetup(msg)
	case OpTeardown:
		m.handleTeardown(msg)
	case OpLeaseRequest:
		m.handleLeaseRequest(msg)
	case OpLeaseReturn:
		m.handleLeaseReturn(msg)
	case OpLeaseRenew:
		m.handleLeaseRenew(msg)
	default:
		// Client-bound opcodes can only appear here through a wiring bug.
		panic(fmt.Sprintf("session: manager received %v", msg.Op))
	}
}

// handleLeaseRequest grows a pod's lease when the un-leased root share
// can spare it, else re-grants the current fraction (an explicit denial).
func (m *Manager) handleLeaseRequest(msg *Msg) {
	i := m.podByCAC(msg.Src)
	if i < 0 {
		return // delegate demoted while the request was in flight
	}
	want := msg.Frac
	if want > MaxLeaseFrac+1e-9 || !m.c.Adm.CanPodLease(m.pods[i].Hosts, want) {
		m.c.Cnt.LeaseDenied++
		m.grantLease(i, m.podFrac[i])
		return
	}
	m.grantLease(i, want)
}

// handleLeaseReturn shrinks a pod's lease back to the fraction the
// delegate kept (the delegate already stopped admitting above it).
func (m *Manager) handleLeaseReturn(msg *Msg) {
	i := m.podByCAC(msg.Src)
	if i < 0 {
		return
	}
	m.c.Adm.SetPodLease(m.pods[i].Hosts, msg.Frac)
	m.podFrac[i] = msg.Frac
}

// handleLeaseRenew acks a delegate's heartbeat by re-affirming its current
// lease fraction. The ack is the delegates' root-liveness signal: missing
// acks open their escalation breaker. A delegate that is no longer the
// pod's CAC (demoted while unreachable, or its pod reclaimed) is told
// fraction 0, which deactivates it — the renewal path converges stale
// delegates even when the messages that demoted them were lost.
func (m *Manager) handleLeaseRenew(msg *Msg) {
	m.c.Cnt.LeaseRenewals++
	frac := 0.0
	if i := m.podByCAC(msg.Src); i >= 0 {
		frac = m.podFrac[i]
	}
	m.reply(msg.Src, &Msg{Op: OpLeaseGrant, Frac: frac})
}

// handleSetup admits or rejects one session request.
func (m *Manager) handleSetup(msg *Msg) {
	if s := m.sessions[msg.Session]; s != nil {
		// A retried Setup whose original grant is still in flight (or was
		// lost): re-grant idempotently, the client ignores duplicates.
		m.c.Cnt.DupSetups++
		m.reply(msg.Src, &Msg{Op: OpGrant, Session: msg.Session, Route: s.route})
		return
	}
	if msg.Class.Regulated() {
		route, h, err := m.c.Adm.Reserve(msg.Src, msg.Dst, msg.BW)
		if err != nil {
			m.c.Cnt.Rejected++
			m.c.Cnt.Mtr.Rejected.Inc()
			m.rejN++
			m.reply(msg.Src, &Msg{Op: OpReject, Session: msg.Session, Attempt: msg.Attempt})
			return
		}
		m.sessions[msg.Session] = &mSession{
			src: msg.Src, dst: msg.Dst, bw: msg.BW, class: msg.Class,
			route: route, handle: h, reserved: true,
		}
		m.byHandle[h] = msg.Session
		m.addReserved(msg.BW)
		m.c.Cnt.Accepted++
		m.c.Cnt.Mtr.Accepted.Inc()
		m.accN++
		m.reply(msg.Src, &Msg{Op: OpGrant, Session: msg.Session, Route: route})
		return
	}
	// Unregulated classes get a hashed fixed route, no reservation.
	route := m.c.Adm.RouteBestEffort(msg.Src, msg.Dst, msg.Session)
	m.sessions[msg.Session] = &mSession{
		src: msg.Src, dst: msg.Dst, bw: msg.BW, class: msg.Class, route: route,
	}
	m.c.Cnt.Accepted++
	m.c.Cnt.Mtr.Accepted.Inc()
	m.accN++
	m.reply(msg.Src, &Msg{Op: OpGrant, Session: msg.Session, Route: route})
}

// handleTeardown releases one session's reservation.
func (m *Manager) handleTeardown(msg *Msg) {
	s := m.sessions[msg.Session]
	if s == nil {
		// The session was revoke-downgraded after a fault; its record is
		// already gone and its bandwidth already released.
		m.c.Cnt.StaleTeardowns++
		return
	}
	if s.reserved {
		m.c.Adm.Release(s.handle)
		delete(m.byHandle, s.handle)
		m.addReserved(-s.bw)
	}
	delete(m.sessions, msg.Session)
	m.c.Cnt.Released++
	m.c.Cnt.Mtr.Released.Inc()
}

// OnLinkDerated applies a fault-plan capacity change to the admission
// ledger and revokes session reservations until the link's reserved load
// fits its new limit. Victims are the most recently admitted sessions on
// the link (static provisioned flows are never revoked); each is
// re-admitted over surviving paths when possible, otherwise its client is
// told to continue best effort. The network schedules this on the manager
// shard's engine RevokeDelay after the fault event.
func (m *Manager) OnLinkDerated(sw, port int, scale float64) {
	m.c.Adm.DerateLink(sw, port, scale)
	if scale >= 1 {
		return // restored capacity: nothing to revoke
	}
	for m.c.Adm.Reserved(sw, port) > m.c.Adm.LinkLimit(sw, port) {
		handles := m.c.Adm.HandlesOn(sw, port)
		victim := uint64(0)
		found := false
		for i := len(handles) - 1; i >= 0; i-- {
			if id, ok := m.byHandle[handles[i]]; ok {
				victim, found = id, true
				break
			}
		}
		if !found {
			return // only static reservations remain above the limit
		}
		m.revoke(victim)
	}
}

// revoke tears one session's reservation out of the ledger and either
// re-admits it over surviving paths or downgrades it.
func (m *Manager) revoke(id uint64) {
	s := m.sessions[id]
	m.c.Adm.Release(s.handle)
	delete(m.byHandle, s.handle)
	m.addReserved(-s.bw)
	m.c.Cnt.Revoked++
	m.c.Cnt.Mtr.Revoked.Inc()
	m.revN++
	route, h, err := m.c.Adm.Reserve(s.src, s.dst, s.bw)
	if err != nil {
		delete(m.sessions, id)
		m.c.Cnt.RevokeDowngrades++
		m.reply(s.src, &Msg{Op: OpRevoke, Session: id, Downgrade: true})
		return
	}
	s.handle, s.route = h, route
	m.byHandle[h] = id
	m.addReserved(s.bw)
	m.c.Cnt.Rerouted++
	m.reply(s.src, &Msg{Op: OpRevoke, Session: id, Route: route})
}

// OnSwitchDown marks a whole switch dead in the admission ledger and
// repairs every session whose route the failure strands. downAt is the
// fault's event time (carried to clients for time-to-repair telemetry).
// The network schedules this on the manager shard's engine RevokeDelay
// after the fault, mirroring OnLinkDerated.
func (m *Manager) OnSwitchDown(sw int, downAt units.Time) {
	m.c.Adm.SetSwitchDown(sw, true)
	m.repairStranded(downAt)
	m.checkDelegates(downAt)
}

// OnSwitchUp clears a switch's dead marking. Already-repaired sessions
// keep their detour routes; new admissions may use the switch again.
func (m *Manager) OnSwitchUp(sw int) {
	m.c.Adm.SetSwitchDown(sw, false)
}

// OnPortDown marks both directions of one cable dead and repairs the
// sessions it strands.
func (m *Manager) OnPortDown(sw, port int, downAt units.Time) {
	m.c.Adm.SetPortDown(sw, port, true)
	m.repairStranded(downAt)
	m.checkDelegates(downAt)
}

// checkDelegates runs the deterministic failover state machine after
// every switch or port failure: any pod whose current CAC host lost its
// attachment gets its standby promoted (lease carried over, clients
// retargeted) or, with no live standby, its lease reclaimed so the root
// serves the pod directly. Pods are scanned in ascending order; no
// failback on recovery — a repaired ex-primary stays retired.
func (m *Manager) checkDelegates(downAt units.Time) {
	mgr := m.c.Host.ID()
	for i := range m.pods {
		cac := m.podCAC[i]
		if cac < 0 || !m.c.Adm.HostDead(cac) {
			continue
		}
		p := m.pods[i]
		if cac == p.Primary && p.Standby >= 0 && !m.c.Adm.HostDead(p.Standby) {
			m.podCAC[i] = p.Standby
			m.reply(p.Standby, &Msg{Op: OpPromote, Frac: m.podFrac[i], DownAt: downAt})
			for _, h := range p.Hosts {
				if h == p.Standby || h == p.Primary || h == mgr {
					continue
				}
				m.reply(h, &Msg{Op: OpRetarget, Target: p.Standby})
			}
			// The standby's own client must stop targeting the dead
			// primary; it asks the root directly from now on.
			m.reply(p.Standby, &Msg{Op: OpRetarget, Target: -1})
			continue
		}
		// No live standby: reclaim the lease, serve the pod from the root.
		m.podCAC[i] = -1
		m.podFrac[i] = 0
		m.c.Adm.SetPodLease(p.Hosts, 0)
		m.c.Cnt.Reclaims++
		for _, h := range p.Hosts {
			if h == cac || h == mgr {
				continue
			}
			m.reply(h, &Msg{Op: OpRetarget, Target: -1})
		}
	}
}

// OnPortUp clears a cable's dead marking.
func (m *Manager) OnPortUp(sw, port int) {
	m.c.Adm.SetPortDown(sw, port, false)
}

// repairStranded sweeps the session table for routes that now cross dead
// fabric and repairs each: reroute-or-revoke for reservations, repair-or-
// abandon for best-effort grants. Victims are processed in ascending
// session-id order — map iteration order is not deterministic, the repair
// order (and thus the admission ledger's float sequence) must be.
func (m *Manager) repairStranded(downAt units.Time) {
	var victims []uint64
	for id, s := range m.sessions {
		if m.c.Adm.RouteDead(s.src, s.route) {
			victims = append(victims, id)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, id := range victims {
		m.c.Cnt.SwitchRevoked++
		m.revokeFault(id, downAt)
	}
}

// revokeFault repairs one session stranded by a switch or port failure.
// Unlike revoke (derates), the session may be a best-effort grant with no
// ledger entry, and the host pair may be partitioned outright.
func (m *Manager) revokeFault(id uint64, downAt units.Time) {
	s := m.sessions[id]
	if !s.reserved {
		// Best-effort grant: just hand the client a repaired route, or tell
		// it the pair is partitioned (it keeps transmitting into the void;
		// the conservation ledger accounts the drops).
		if route := m.c.Adm.RepairRoute(s.src, s.dst); route != nil {
			s.route = route
			m.c.Cnt.SwitchRerouted++
			m.reply(s.src, &Msg{Op: OpRevoke, Session: id, Route: route, DownAt: downAt})
			return
		}
		delete(m.sessions, id)
		m.c.Cnt.SwitchUnreachable++
		m.reply(s.src, &Msg{Op: OpRevoke, Session: id, Downgrade: true, DownAt: downAt})
		return
	}
	m.c.Adm.Release(s.handle)
	delete(m.byHandle, s.handle)
	m.addReserved(-s.bw)
	m.c.Cnt.Revoked++
	m.c.Cnt.Mtr.Revoked.Inc()
	m.revN++
	route, h, err := m.c.Adm.Reserve(s.src, s.dst, s.bw)
	if err == nil {
		s.handle, s.route = h, route
		m.byHandle[h] = id
		m.addReserved(s.bw)
		m.c.Cnt.Rerouted++
		m.c.Cnt.SwitchRerouted++
		m.reply(s.src, &Msg{Op: OpRevoke, Session: id, Route: route, DownAt: downAt})
		return
	}
	// No re-admission: downgrade to best effort over a repaired route when
	// one exists, or report the pair unreachable.
	delete(m.sessions, id)
	m.c.Cnt.RevokeDowngrades++
	route = m.c.Adm.RepairRoute(s.src, s.dst)
	if route != nil {
		m.c.Cnt.SwitchDowngraded++
	} else {
		m.c.Cnt.SwitchUnreachable++
	}
	m.reply(s.src, &Msg{Op: OpRevoke, Session: id, Downgrade: true, Route: route, DownAt: downAt})
}

// ActiveSessions returns the number of granted, not-yet-released sessions
// (telemetry).
func (m *Manager) ActiveSessions() int { return len(m.sessions) }

// ReservedNow returns the currently reserved session bandwidth in
// bytes/ns (telemetry).
func (m *Manager) ReservedNow() float64 { return m.cur }

// QueueDepth returns the root control queue's occupancy (telemetry).
func (m *Manager) QueueDepth() int { return m.queue.Depth() }

// ShedCount returns the cumulative setups the root shed (telemetry).
func (m *Manager) ShedCount() uint64 { return m.shedN }

// AcceptedCount returns the root's cumulative accepted setups, excluding
// delegate grants (telemetry).
func (m *Manager) AcceptedCount() uint64 { return m.accN }

// RejectedCount returns the root's cumulative rejected setups (telemetry).
func (m *Manager) RejectedCount() uint64 { return m.rejN }

// RevokedCount returns the root's cumulative revocations (telemetry).
func (m *Manager) RevokedCount() uint64 { return m.revN }

// BuildResults finalises the reserved-bandwidth integral and summarises
// the merged counters into the run's session Results.
func (m *Manager) BuildResults(cnt *Counters) *Results {
	if !m.finalized {
		m.advanceTo(m.c.Horizon)
		m.finalized = true
	}
	// Fold the delegate CACs' reserved-bandwidth integrals and horizon
	// state into the run totals, in the fixed Delegates order (primary
	// before standby, pods ascending) so the float sums are deterministic.
	integral := m.integral
	active := len(m.sessions)
	resvAtStop := m.cur
	for _, d := range m.c.Delegates {
		integral += d.finishIntegral()
		active += len(d.sessions)
		resvAtStop += d.cur
	}
	r := &Results{
		Started: cnt.Started, SetupsSent: cnt.SetupsSent, Retries: cnt.Retries,
		Timeouts: cnt.Timeouts, Granted: cnt.Granted,
		Accepted: cnt.Accepted, Rejected: cnt.Rejected,
		RejectsSeen: cnt.RejectsSeen, Downgraded: cnt.Downgraded,
		Finished: cnt.Finished, TeardownsSent: cnt.TeardownsSent,
		Released: cnt.Released, StaleTears: cnt.StaleTeardowns,
		DupSetups: cnt.DupSetups, Revoked: cnt.Revoked, Rerouted: cnt.Rerouted,
		RevokeDowngrades:  cnt.RevokeDowngrades,
		SwitchRevoked:     cnt.SwitchRevoked,
		SwitchRerouted:    cnt.SwitchRerouted,
		SwitchDowngraded:  cnt.SwitchDowngraded,
		SwitchUnreachable: cnt.SwitchUnreachable,
		RepairCount:       cnt.RepairLatHist.Count(),
		SetupCount:        cnt.SetupLatency.Count(),
		SetupMeanNs:       cnt.SetupLatency.Mean(),
		DataBytes:         cnt.DataBytes, DataPackets: cnt.DataPackets,
		SigBytes: cnt.SigBytes, SigPackets: cnt.SigPackets,
		ActiveAtStop:   active,
		ReservedAtStop: resvAtStop,
	}
	cp := &ControlPlane{
		Delegated: m.c.Cfg.Delegation,
		Pods:      len(m.pods),
		Delegates: len(m.c.Delegates),

		LocalGrants: cnt.LocalGrants, Escalated: cnt.Escalated,
		Shed: cnt.Shed, Retargets: cnt.Retargets,
		LeaseGrants: cnt.LeaseGrants, LeaseRequests: cnt.LeaseRequests,
		LeaseReturns: cnt.LeaseReturns, LeaseDenied: cnt.LeaseDenied,
		Promotions: cnt.Promotions, Reclaims: cnt.Reclaims,
		FailoverReplays: cnt.FailoverReplays,
		LeaseRenewals:   cnt.LeaseRenewals,
		BreakerOpens:    cnt.BreakerOpens,
		BreakerRejects:  cnt.BreakerRejects,
		FailoverCount:   cnt.FailoverHist.Count(),
	}
	if cp.FailoverCount > 0 {
		cp.FailoverP50 = cnt.FailoverHist.Quantile(0.50)
		cp.FailoverP99 = cnt.FailoverHist.Quantile(0.99)
	}
	r.ControlPlane = cp
	if cnt.SetupLatHist.Count() > 0 {
		r.SetupP50 = cnt.SetupLatHist.Quantile(0.50)
		r.SetupP99 = cnt.SetupLatHist.Quantile(0.99)
	}
	if cnt.RepairLatHist.Count() > 0 {
		r.RepairP50 = cnt.RepairLatHist.Quantile(0.50)
		r.RepairP99 = cnt.RepairLatHist.Quantile(0.99)
	}
	if decided := cnt.Granted + cnt.Downgraded; decided > 0 {
		r.AcceptRatio = float64(cnt.Granted) / float64(decided)
	}
	window := m.c.Horizon - m.c.WarmUp
	if cap := float64(window) * float64(m.c.LinkBW) * float64(m.c.Hosts); cap > 0 {
		r.ReservedUtil = integral / cap
		r.AchievedUtil = float64(cnt.DataBytes) / cap
	}
	return r
}
