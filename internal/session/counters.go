package session

import (
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/stats"
	"deadlineqos/internal/units"
)

// Metrics mirrors the headline session counters into the live metrics
// plane. The network installs one bundle per shard's Counters instance;
// all instrument methods are nil-safe, so the zero value disables
// mirroring and each bump site costs one nil check. The authoritative
// values remain the Counters fields — the mirror exists so a live scrape
// sees control-plane activity without waiting for the run to finish.
type Metrics struct {
	Started     *metrics.Counter
	Granted     *metrics.Counter
	Accepted    *metrics.Counter
	Rejected    *metrics.Counter
	Released    *metrics.Counter
	Revoked     *metrics.Counter
	LocalGrants *metrics.Counter
	Escalated   *metrics.Counter
	Shed        *metrics.Counter
}

// Counters accumulates session-subsystem events. Every simulation shard
// owns one instance (clients and the manager add to the instance of the
// shard they run on); all fields are sums or exact mergeable aggregates,
// so folding per-shard counters together is order-independent and a
// sharded run reports bit-identical values to a sequential one.
type Counters struct {
	// Mtr, when installed, mirrors the headline fields below into the
	// metrics plane as they are bumped. It is per-shard install state,
	// not an aggregate: Merge ignores it.
	Mtr Metrics

	// Client side.
	Started       uint64 // sessions generated
	SetupsSent    uint64 // Setup messages emitted (including retries)
	Retries       uint64 // Setup re-sends after a reject or timeout
	Timeouts      uint64 // response timeouts
	Granted       uint64 // sessions admitted by the CAC
	RejectsSeen   uint64 // Reject messages received
	Downgraded    uint64 // sessions that gave up and went best effort
	Finished      uint64 // sessions that reached the end of their hold time
	TeardownsSent uint64 // Teardown messages emitted

	// Manager (CAC) side.
	Accepted         uint64 // Setups granted
	Rejected         uint64 // Setups rejected (no capacity)
	DupSetups        uint64 // duplicate Setups re-granted idempotently
	Released         uint64 // Teardowns that released a reservation record
	StaleTeardowns   uint64 // Teardowns for unknown (already-revoked) sessions
	Revoked          uint64 // reservations revoked after a link derate
	Rerouted         uint64 // revoked reservations re-admitted on another path
	RevokeDowngrades uint64 // revoked reservations with no surviving path

	// Switch/port-failure repair activity (subset of the above where the
	// trigger was a SwitchDown or PortDown rather than a derate).
	SwitchRevoked     uint64 // sessions stranded by a dead switch or cut cable
	SwitchRerouted    uint64 // stranded sessions moved to a surviving route
	SwitchDowngraded  uint64 // stranded reservations downgraded to best effort
	SwitchUnreachable uint64 // stranded sessions whose host pair is partitioned

	// Delegated control plane (all zero in centralised runs, except Shed,
	// which a bounded root control queue also produces).
	LocalGrants     uint64 // setups admitted by a pod delegate within its lease
	Escalated       uint64 // setups a delegate forwarded to the root
	Shed            uint64 // setups shed by a saturated control queue
	Retargets       uint64 // clients redirected to a new CAC target
	LeaseGrants     uint64 // lease grants and growths the root issued
	LeaseRequests   uint64 // lease growth requests delegates sent
	LeaseReturns    uint64 // lease fractions returned to the root
	LeaseDenied     uint64 // growth requests the root refused
	Promotions      uint64 // standby delegates promoted after a CAC outage
	Reclaims        uint64 // pod leases the root reclaimed (no live standby)
	FailoverReplays uint64 // setups re-granted from a standby's replica
	LeaseRenewals   uint64 // renewal heartbeats the root acked
	BreakerOpens    uint64 // delegates that declared the root dead
	BreakerRejects  uint64 // setups rejected locally while the root was dark

	// FailoverHist is the control-plane time-to-recovery distribution:
	// CAC-killing fault instant to the promoted standby finishing lease
	// reconciliation (in-band Promote delivery included).
	FailoverHist *stats.Histogram

	// Setup latency: first Setup sent to Grant received, measured by the
	// client across the in-band round trip (fabric queueing included).
	SetupLatency stats.TimeSeries
	SetupLatHist *stats.Histogram

	// RepairLatHist is the client-observed time-to-repair distribution:
	// switch/port fault time to the in-band arrival of the replacement
	// route.
	RepairLatHist *stats.Histogram

	// Delivered session traffic inside the measurement window.
	DataBytes   units.Size
	DataPackets uint64
	SigBytes    units.Size
	SigPackets  uint64
}

// NewCounters returns an empty Counters.
func NewCounters() *Counters {
	return &Counters{
		SetupLatHist:  stats.NewHistogram(),
		RepairLatHist: stats.NewHistogram(),
		FailoverHist:  stats.NewHistogram(),
	}
}

// Merge folds other into c (exact, order-independent).
func (c *Counters) Merge(other *Counters) {
	c.Started += other.Started
	c.SetupsSent += other.SetupsSent
	c.Retries += other.Retries
	c.Timeouts += other.Timeouts
	c.Granted += other.Granted
	c.RejectsSeen += other.RejectsSeen
	c.Downgraded += other.Downgraded
	c.Finished += other.Finished
	c.TeardownsSent += other.TeardownsSent
	c.Accepted += other.Accepted
	c.Rejected += other.Rejected
	c.DupSetups += other.DupSetups
	c.Released += other.Released
	c.StaleTeardowns += other.StaleTeardowns
	c.Revoked += other.Revoked
	c.Rerouted += other.Rerouted
	c.RevokeDowngrades += other.RevokeDowngrades
	c.SwitchRevoked += other.SwitchRevoked
	c.SwitchRerouted += other.SwitchRerouted
	c.SwitchDowngraded += other.SwitchDowngraded
	c.SwitchUnreachable += other.SwitchUnreachable
	c.LocalGrants += other.LocalGrants
	c.Escalated += other.Escalated
	c.Shed += other.Shed
	c.Retargets += other.Retargets
	c.LeaseGrants += other.LeaseGrants
	c.LeaseRequests += other.LeaseRequests
	c.LeaseReturns += other.LeaseReturns
	c.LeaseDenied += other.LeaseDenied
	c.Promotions += other.Promotions
	c.Reclaims += other.Reclaims
	c.FailoverReplays += other.FailoverReplays
	c.LeaseRenewals += other.LeaseRenewals
	c.BreakerOpens += other.BreakerOpens
	c.BreakerRejects += other.BreakerRejects
	c.SetupLatency.Merge(&other.SetupLatency)
	c.SetupLatHist.Merge(other.SetupLatHist)
	c.RepairLatHist.Merge(other.RepairLatHist)
	c.FailoverHist.Merge(other.FailoverHist)
	c.DataBytes += other.DataBytes
	c.DataPackets += other.DataPackets
	c.SigBytes += other.SigBytes
	c.SigPackets += other.SigPackets
}

// Results is the session subsystem's run summary, reported in
// network.Results and fingerprinted by the determinism cross-checks (all
// fields are deterministic at any shard count).
type Results struct {
	Started       uint64 `json:"started"`
	SetupsSent    uint64 `json:"setups_sent"`
	Retries       uint64 `json:"retries"`
	Timeouts      uint64 `json:"timeouts"`
	Granted       uint64 `json:"granted"`
	Accepted      uint64 `json:"accepted"`
	Rejected      uint64 `json:"rejected"`
	RejectsSeen   uint64 `json:"rejects_seen"`
	Downgraded    uint64 `json:"downgraded"`
	Finished      uint64 `json:"finished"`
	TeardownsSent uint64 `json:"teardowns_sent"`
	Released      uint64 `json:"released"`
	StaleTears    uint64 `json:"stale_teardowns"`
	DupSetups     uint64 `json:"dup_setups"`

	Revoked          uint64 `json:"revoked"`
	Rerouted         uint64 `json:"rerouted"`
	RevokeDowngrades uint64 `json:"revoke_downgrades"`

	// Switch/port-failure repair activity.
	SwitchRevoked     uint64 `json:"switch_revoked"`
	SwitchRerouted    uint64 `json:"switch_rerouted"`
	SwitchDowngraded  uint64 `json:"switch_downgraded"`
	SwitchUnreachable uint64 `json:"switch_unreachable"`

	// Client-observed time-to-repair after switch/port failures (fault
	// instant to in-band arrival of the replacement route).
	RepairCount uint64     `json:"repair_count"`
	RepairP50   units.Time `json:"repair_p50"`
	RepairP99   units.Time `json:"repair_p99"`

	// AcceptRatio is granted / (granted + downgraded): the fraction of
	// decided sessions that ended up with a reservation (or a best-effort
	// grant for unregulated profiles) instead of giving up.
	AcceptRatio float64 `json:"accept_ratio"`

	// Setup latency over the in-band round trip.
	SetupCount  uint64     `json:"setup_count"`
	SetupMeanNs float64    `json:"setup_mean_ns"`
	SetupP50    units.Time `json:"setup_p50"`
	SetupP99    units.Time `json:"setup_p99"`

	// ReservedUtil is the time integral of CAC-reserved session bandwidth
	// over the measurement window, as a fraction of total injection
	// capacity; AchievedUtil is what the granted sessions actually
	// delivered in the same window.
	ReservedUtil float64 `json:"reserved_util"`
	AchievedUtil float64 `json:"achieved_util"`

	DataBytes   units.Size `json:"data_bytes"`
	DataPackets uint64     `json:"data_packets"`
	SigBytes    units.Size `json:"sig_bytes"`
	SigPackets  uint64     `json:"sig_packets"`

	// State at the simulation horizon.
	ActiveAtStop   int     `json:"active_at_stop"`
	ReservedAtStop float64 `json:"reserved_bw_at_stop"`

	// ControlPlane summarises the survivable admission control plane
	// (non-nil whenever sessions ran; mostly zero in centralised mode).
	ControlPlane *ControlPlane `json:"control_plane,omitempty"`
}

// ControlPlane is the survivable-CAC summary: delegated admissions, lease
// traffic, overload shedding, and failover recovery. Fingerprinted by the
// determinism cross-checks like the rest of Results.
type ControlPlane struct {
	Delegated bool `json:"delegated"`
	Pods      int  `json:"pods"`
	Delegates int  `json:"delegates"`

	LocalGrants     uint64 `json:"local_grants"`
	Escalated       uint64 `json:"escalated"`
	Shed            uint64 `json:"shed"`
	Retargets       uint64 `json:"retargets"`
	LeaseGrants     uint64 `json:"lease_grants"`
	LeaseRequests   uint64 `json:"lease_requests"`
	LeaseReturns    uint64 `json:"lease_returns"`
	LeaseDenied     uint64 `json:"lease_denied"`
	Promotions      uint64 `json:"promotions"`
	Reclaims        uint64 `json:"reclaims"`
	FailoverReplays uint64 `json:"failover_replays"`
	LeaseRenewals   uint64 `json:"lease_renewals"`
	BreakerOpens    uint64 `json:"breaker_opens"`
	BreakerRejects  uint64 `json:"breaker_rejects"`

	// Control-plane time-to-recovery: CAC fault to restored pod admission.
	FailoverCount uint64     `json:"failover_count"`
	FailoverP50   units.Time `json:"failover_p50"`
	FailoverP99   units.Time `json:"failover_p99"`
}
