package session

import (
	"deadlineqos/internal/stats"
	"deadlineqos/internal/units"
)

// Counters accumulates session-subsystem events. Every simulation shard
// owns one instance (clients and the manager add to the instance of the
// shard they run on); all fields are sums or exact mergeable aggregates,
// so folding per-shard counters together is order-independent and a
// sharded run reports bit-identical values to a sequential one.
type Counters struct {
	// Client side.
	Started       uint64 // sessions generated
	SetupsSent    uint64 // Setup messages emitted (including retries)
	Retries       uint64 // Setup re-sends after a reject or timeout
	Timeouts      uint64 // response timeouts
	Granted       uint64 // sessions admitted by the CAC
	RejectsSeen   uint64 // Reject messages received
	Downgraded    uint64 // sessions that gave up and went best effort
	Finished      uint64 // sessions that reached the end of their hold time
	TeardownsSent uint64 // Teardown messages emitted

	// Manager (CAC) side.
	Accepted         uint64 // Setups granted
	Rejected         uint64 // Setups rejected (no capacity)
	DupSetups        uint64 // duplicate Setups re-granted idempotently
	Released         uint64 // Teardowns that released a reservation record
	StaleTeardowns   uint64 // Teardowns for unknown (already-revoked) sessions
	Revoked          uint64 // reservations revoked after a link derate
	Rerouted         uint64 // revoked reservations re-admitted on another path
	RevokeDowngrades uint64 // revoked reservations with no surviving path

	// Switch/port-failure repair activity (subset of the above where the
	// trigger was a SwitchDown or PortDown rather than a derate).
	SwitchRevoked     uint64 // sessions stranded by a dead switch or cut cable
	SwitchRerouted    uint64 // stranded sessions moved to a surviving route
	SwitchDowngraded  uint64 // stranded reservations downgraded to best effort
	SwitchUnreachable uint64 // stranded sessions whose host pair is partitioned

	// Setup latency: first Setup sent to Grant received, measured by the
	// client across the in-band round trip (fabric queueing included).
	SetupLatency stats.TimeSeries
	SetupLatHist *stats.Histogram

	// RepairLatHist is the client-observed time-to-repair distribution:
	// switch/port fault time to the in-band arrival of the replacement
	// route.
	RepairLatHist *stats.Histogram

	// Delivered session traffic inside the measurement window.
	DataBytes   units.Size
	DataPackets uint64
	SigBytes    units.Size
	SigPackets  uint64
}

// NewCounters returns an empty Counters.
func NewCounters() *Counters {
	return &Counters{
		SetupLatHist:  stats.NewHistogram(),
		RepairLatHist: stats.NewHistogram(),
	}
}

// Merge folds other into c (exact, order-independent).
func (c *Counters) Merge(other *Counters) {
	c.Started += other.Started
	c.SetupsSent += other.SetupsSent
	c.Retries += other.Retries
	c.Timeouts += other.Timeouts
	c.Granted += other.Granted
	c.RejectsSeen += other.RejectsSeen
	c.Downgraded += other.Downgraded
	c.Finished += other.Finished
	c.TeardownsSent += other.TeardownsSent
	c.Accepted += other.Accepted
	c.Rejected += other.Rejected
	c.DupSetups += other.DupSetups
	c.Released += other.Released
	c.StaleTeardowns += other.StaleTeardowns
	c.Revoked += other.Revoked
	c.Rerouted += other.Rerouted
	c.RevokeDowngrades += other.RevokeDowngrades
	c.SwitchRevoked += other.SwitchRevoked
	c.SwitchRerouted += other.SwitchRerouted
	c.SwitchDowngraded += other.SwitchDowngraded
	c.SwitchUnreachable += other.SwitchUnreachable
	c.SetupLatency.Merge(&other.SetupLatency)
	c.SetupLatHist.Merge(other.SetupLatHist)
	c.RepairLatHist.Merge(other.RepairLatHist)
	c.DataBytes += other.DataBytes
	c.DataPackets += other.DataPackets
	c.SigBytes += other.SigBytes
	c.SigPackets += other.SigPackets
}

// Results is the session subsystem's run summary, reported in
// network.Results and fingerprinted by the determinism cross-checks (all
// fields are deterministic at any shard count).
type Results struct {
	Started       uint64 `json:"started"`
	SetupsSent    uint64 `json:"setups_sent"`
	Retries       uint64 `json:"retries"`
	Timeouts      uint64 `json:"timeouts"`
	Granted       uint64 `json:"granted"`
	Accepted      uint64 `json:"accepted"`
	Rejected      uint64 `json:"rejected"`
	RejectsSeen   uint64 `json:"rejects_seen"`
	Downgraded    uint64 `json:"downgraded"`
	Finished      uint64 `json:"finished"`
	TeardownsSent uint64 `json:"teardowns_sent"`
	Released      uint64 `json:"released"`
	StaleTears    uint64 `json:"stale_teardowns"`
	DupSetups     uint64 `json:"dup_setups"`

	Revoked          uint64 `json:"revoked"`
	Rerouted         uint64 `json:"rerouted"`
	RevokeDowngrades uint64 `json:"revoke_downgrades"`

	// Switch/port-failure repair activity.
	SwitchRevoked     uint64 `json:"switch_revoked"`
	SwitchRerouted    uint64 `json:"switch_rerouted"`
	SwitchDowngraded  uint64 `json:"switch_downgraded"`
	SwitchUnreachable uint64 `json:"switch_unreachable"`

	// Client-observed time-to-repair after switch/port failures (fault
	// instant to in-band arrival of the replacement route).
	RepairCount uint64     `json:"repair_count"`
	RepairP50   units.Time `json:"repair_p50"`
	RepairP99   units.Time `json:"repair_p99"`

	// AcceptRatio is granted / (granted + downgraded): the fraction of
	// decided sessions that ended up with a reservation (or a best-effort
	// grant for unregulated profiles) instead of giving up.
	AcceptRatio float64 `json:"accept_ratio"`

	// Setup latency over the in-band round trip.
	SetupCount  uint64     `json:"setup_count"`
	SetupMeanNs float64    `json:"setup_mean_ns"`
	SetupP50    units.Time `json:"setup_p50"`
	SetupP99    units.Time `json:"setup_p99"`

	// ReservedUtil is the time integral of CAC-reserved session bandwidth
	// over the measurement window, as a fraction of total injection
	// capacity; AchievedUtil is what the granted sessions actually
	// delivered in the same window.
	ReservedUtil float64 `json:"reserved_util"`
	AchievedUtil float64 `json:"achieved_util"`

	DataBytes   units.Size `json:"data_bytes"`
	DataPackets uint64     `json:"data_packets"`
	SigBytes    units.Size `json:"sig_bytes"`
	SigPackets  uint64     `json:"sig_packets"`

	// State at the simulation horizon.
	ActiveAtStop   int     `json:"active_at_stop"`
	ReservedAtStop float64 `json:"reserved_bw_at_stop"`
}
