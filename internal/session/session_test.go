// Integration tests for the dynamic session subsystem: they build full
// networks (internal/network wires clients, the CAC manager, and the
// signalling flows) and assert on the reported session Results, so they
// cover the in-band protocol end to end — through real switches, links,
// and queueing.
package session_test

import (
	"strings"
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/session"
	"deadlineqos/internal/units"
)

// base is a small, fast configuration with invariant checking on.
func base() network.Config {
	cfg := network.SmallConfig()
	cfg.Arch = arch.Advanced2VC
	cfg.WarmUp = 500 * units.Microsecond
	cfg.Measure = 3 * units.Millisecond
	cfg.Load = 0.6
	cfg.CheckInvariants = true
	return cfg
}

// run executes cfg and fails the test on any error or conservation
// violation.
func run(t *testing.T, cfg network.Config) *network.Results {
	t.Helper()
	res, err := network.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Conservation.Check(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLifecycle(t *testing.T) {
	cfg := base()
	cfg.Sessions = &session.Config{
		InterArrival: 400 * units.Microsecond,
		HoldMean:     units.Millisecond,
	}
	s := run(t, cfg).Sessions
	if s == nil {
		t.Fatal("no session results")
	}
	if s.Started == 0 || s.Granted == 0 {
		t.Fatalf("no sessions ran: started=%d granted=%d", s.Started, s.Granted)
	}
	// Every grant the clients saw was measured across the in-band round
	// trip; the fabric cannot deliver it in zero time.
	if s.SetupCount != s.Granted {
		t.Errorf("setup latency samples %d != grants %d", s.SetupCount, s.Granted)
	}
	if s.SetupP50 <= 0 || s.SetupP99 < s.SetupP50 {
		t.Errorf("implausible setup latency p50=%v p99=%v", s.SetupP50, s.SetupP99)
	}
	// Without faults nothing is lost: grants trail accepts only by
	// messages still in flight at the horizon, and every released record
	// was torn down by a client.
	if s.Granted > s.Accepted+s.DupSetups {
		t.Errorf("granted %d > accepted %d + dup re-grants %d", s.Granted, s.Accepted, s.DupSetups)
	}
	if s.Finished > s.Started {
		t.Errorf("finished %d > started %d", s.Finished, s.Started)
	}
	if s.Released > s.TeardownsSent {
		t.Errorf("released %d > teardowns sent %d", s.Released, s.TeardownsSent)
	}
	if s.DataPackets == 0 || s.SigPackets == 0 {
		t.Errorf("no session traffic delivered: data=%d sig=%d", s.DataPackets, s.SigPackets)
	}
	if s.ReservedUtil <= 0 || s.AchievedUtil <= 0 {
		t.Errorf("utilisation not measured: reserved=%v achieved=%v", s.ReservedUtil, s.AchievedUtil)
	}
	if s.Revoked != 0 {
		t.Errorf("revocations without faults: %d", s.Revoked)
	}
}

func TestSaturationRejects(t *testing.T) {
	cfg := base()
	cfg.Load = 1.0
	cfg.Sessions = &session.Config{
		InterArrival: 60 * units.Microsecond,
		HoldMean:     3 * units.Millisecond,
	}
	s := run(t, cfg).Sessions
	// Offered reserved bandwidth far exceeds capacity: the CAC must say
	// no, and the ratio of sessions that kept a reservation must drop
	// below 1 (the rest retried into best effort).
	if s.Rejected == 0 {
		t.Fatalf("no rejects at saturation: %+v", s)
	}
	if s.AcceptRatio >= 1 {
		t.Fatalf("accept ratio %v at saturation, want < 1", s.AcceptRatio)
	}
	if s.Downgraded == 0 {
		t.Errorf("no session downgraded to best effort at saturation")
	}
	if s.Retries == 0 {
		t.Errorf("no setup retries at saturation")
	}
}

func TestSetupLatencyGrowsWithLoad(t *testing.T) {
	p99 := func(load float64) units.Time {
		cfg := base()
		cfg.Load = load
		cfg.Sessions = &session.Config{
			InterArrival: 200 * units.Microsecond,
			HoldMean:     units.Millisecond,
		}
		return run(t, cfg).Sessions.SetupP99
	}
	lo, hi := p99(0.1), p99(1.0)
	if lo <= 0 {
		t.Fatalf("setup p99 not measured at low load: %v", lo)
	}
	if hi <= lo {
		t.Errorf("setup p99 not load-dependent: %v at 10%% load, %v at 100%%", lo, hi)
	}
}

// allLinks enumerates every wired switch output link.
func allLinks(cfg network.Config) []faults.LinkID {
	var ids []faults.LinkID
	topo := cfg.Topology
	for sw := 0; sw < topo.Switches(); sw++ {
		for p := 0; p < topo.Radix(sw); p++ {
			if topo.Peer(sw, p).ID != -1 {
				ids = append(ids, faults.LinkID{Switch: sw, Port: p})
			}
		}
	}
	return ids
}

func TestDerateRevokesReservations(t *testing.T) {
	cfg := base()
	cfg.Sessions = &session.Config{
		InterArrival: 60 * units.Microsecond,
		HoldMean:     3 * units.Millisecond,
	}
	// Derate every link to 35% mid-run: whatever the CAC reserved above
	// that must be revoked, and with no surviving headroom anywhere most
	// victims are told to continue best effort.
	plan := &faults.Plan{}
	for _, id := range allLinks(cfg) {
		plan.Events = append(plan.Events,
			faults.Event{At: 1500 * units.Microsecond, Link: id, Kind: faults.Derate, Scale: 0.35})
	}
	cfg.Faults = plan
	s := run(t, cfg).Sessions
	if s.Revoked == 0 {
		t.Fatalf("derate stranded no reservations: %+v", s)
	}
	if s.Rerouted+s.RevokeDowngrades != s.Revoked {
		t.Errorf("revocations unaccounted: revoked=%d rerouted=%d downgraded=%d",
			s.Revoked, s.Rerouted, s.RevokeDowngrades)
	}
}

func TestFlashCrowd(t *testing.T) {
	started := func(flash float64) uint64 {
		cfg := base()
		cfg.Sessions = &session.Config{
			InterArrival: 400 * units.Microsecond,
			HoldMean:     units.Millisecond,
			FlashFactor:  flash,
			FlashAt:      units.Millisecond,
			FlashLen:     units.Millisecond,
		}
		return run(t, cfg).Sessions.Started
	}
	quiet, flash := started(0), started(8)
	if flash <= quiet {
		t.Errorf("flash crowd did not raise arrivals: %d quiet vs %d flash", quiet, flash)
	}
}

// TestLateGrantRetryRace pins the race where a Grant arrives after the
// response timeout already scheduled a retry but before that retry fires:
// the client must accept the grant, cancel the pending backoff timer (no
// leaked retry, no duplicate reservation), and the CAC must dedup any
// retried Setup that was already in flight. A response timeout far below
// the fabric round trip forces the race on essentially every session.
func TestLateGrantRetryRace(t *testing.T) {
	cfg := base()
	cfg.Sessions = &session.Config{
		InterArrival: 300 * units.Microsecond,
		HoldMean:     units.Millisecond,
		RespTimeout:  units.Microsecond, // < in-band RTT: every grant is late
		RetryBackoff: 300 * units.Microsecond,
		MaxRetries:   6,
	}
	s := run(t, cfg).Sessions
	if s.Timeouts == 0 {
		t.Fatalf("timeout shorter than the RTT produced no timeouts: %+v", s)
	}
	if s.Granted == 0 {
		t.Fatalf("no late grant won the race against its retry: %+v", s)
	}
	// No double-reserve: every client grant traces to one CAC accept or an
	// idempotent duplicate re-grant, and releases never exceed teardowns.
	if s.Granted > s.Accepted+s.DupSetups {
		t.Errorf("granted %d > accepted %d + dup re-grants %d (double grant)",
			s.Granted, s.Accepted, s.DupSetups)
	}
	if s.Released > s.TeardownsSent {
		t.Errorf("released %d > teardowns sent %d", s.Released, s.TeardownsSent)
	}
	// No leaked retry timer: a retry firing after its session left the
	// signalling state would send a fresh Setup and count a retry without
	// a preceding timeout/reject; the schedule bounds retries by decided
	// signalling events.
	if s.Retries > s.Timeouts+s.RejectsSeen {
		t.Errorf("retries %d exceed timeouts %d + rejects %d (leaked retry timer)",
			s.Retries, s.Timeouts, s.RejectsSeen)
	}
}

func TestSessionTelemetrySeries(t *testing.T) {
	cfg := base()
	cfg.Sessions = &session.Config{
		InterArrival: 200 * units.Microsecond,
		HoldMean:     units.Millisecond,
	}
	cfg.ProbeInterval = 200 * units.Microsecond
	res := run(t, cfg)
	if res.Telemetry == nil || len(res.Telemetry.Sessions) == 0 {
		t.Fatal("no session telemetry series")
	}
	var peak int
	for _, smp := range res.Telemetry.Sessions {
		if smp.Active > peak {
			peak = smp.Active
		}
	}
	if peak == 0 {
		t.Errorf("session probe never saw an active session")
	}
	last := res.Telemetry.Sessions[len(res.Telemetry.Sessions)-1]
	if last.Accepted == 0 {
		t.Errorf("session probe counters stayed zero")
	}
	var sb strings.Builder
	if err := res.Telemetry.WriteSessionsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != len(res.Telemetry.Sessions)+1 {
		t.Errorf("session CSV has %d lines, want %d", lines, len(res.Telemetry.Sessions)+1)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := session.Config{}.WithDefaults()
	if err := ok.Validate(16); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*session.Config)
		host int
	}{
		{"one host", func(c *session.Config) {}, 1},
		{"manager out of range", func(c *session.Config) { c.Manager = 16 }, 16},
		{"negative inter-arrival", func(c *session.Config) { c.InterArrival = -1 }, 16},
		{"zero signalling size", func(c *session.Config) { c.SigMsgSize = -1 }, 16},
		{"flash factor below 1", func(c *session.Config) { c.FlashFactor = 0.5 }, 16},
		{"no profiles", func(c *session.Config) { c.Profiles = nil }, 16},
		{"zero-weight profile", func(c *session.Config) {
			c.Profiles = []session.Profile{{Weight: 0, Class: packet.Control, BW: 0.01, MsgSize: 64}}
		}, 16},
		{"zero-bw profile", func(c *session.Config) {
			c.Profiles = []session.Profile{{Weight: 1, Class: packet.Control, MsgSize: 64}}
		}, 16},
	}
	for _, tc := range bad {
		c := ok
		// Validate takes an already-defaulted config, so mutations are not
		// re-defaulted away.
		tc.mut(&c)
		if tc.name == "no profiles" {
			c.Profiles = nil
		}
		if err := c.Validate(tc.host); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestFlowIDPlan(t *testing.T) {
	if session.SigUp(3) == session.SigDown(3) {
		t.Error("up and down signalling flows collide")
	}
	for _, id := range []packet.FlowID{session.SigUp(0), session.SigDown(15)} {
		if !session.IsSignalling(id) || session.IsSessionData(id) {
			t.Errorf("flow %#x misclassified", id)
		}
	}
	d := session.DataFlowID(15, 42)
	if !session.IsSessionData(d) || session.IsSignalling(d) {
		t.Errorf("data flow %#x misclassified", d)
	}
	if session.IsSignalling(1) || session.IsSessionData(1) {
		t.Error("static flow id misclassified as session flow")
	}
	if session.DataFlowID(1, 7) == session.DataFlowID(2, 7) || session.DataFlowID(1, 7) == session.DataFlowID(1, 8) {
		t.Error("data flow ids collide across hosts or sequences")
	}
}
