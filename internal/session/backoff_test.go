package session

import (
	"testing"

	"deadlineqos/internal/units"
)

// TestBackoffSchedule pins the capped exponential retry schedule: doubled
// per attempt, clamped at base << maxBackoffShift so a generous MaxRetries
// can never shift the base into overflow (or into delays longer than any
// simulation). Regression for the unclamped RetryBackoff << (attempt-1).
func TestBackoffSchedule(t *testing.T) {
	base := 50 * units.Microsecond
	cases := []struct {
		attempt int
		want    units.Time
	}{
		{0, base}, // defensive: attempt below 1 clamps to the base
		{1, 50 * units.Microsecond},
		{2, 100 * units.Microsecond},
		{3, 200 * units.Microsecond},
		{4, 400 * units.Microsecond},
		{maxBackoffShift, base << (maxBackoffShift - 1)},
		{maxBackoffShift + 1, base << maxBackoffShift},
		{maxBackoffShift + 2, base << maxBackoffShift}, // capped
		{100, base << maxBackoffShift},                 // capped
		{1 << 30, base << maxBackoffShift},             // would overflow unclamped
	}
	for _, tc := range cases {
		if got := backoffFor(base, tc.attempt); got != tc.want {
			t.Errorf("backoffFor(%v, %d) = %v, want %v", base, tc.attempt, got, tc.want)
		}
	}
	// The capped schedule stays positive for any attempt count.
	for attempt := 1; attempt < 200; attempt++ {
		if got := backoffFor(base, attempt); got <= 0 {
			t.Fatalf("backoffFor(%v, %d) = %v, not positive", base, attempt, got)
		}
	}
}

// TestLivenessBound checks the watchdog bound covers the full worst-case
// retry schedule and grows with the protocol's knobs.
func TestLivenessBound(t *testing.T) {
	cfg := (Config{}).WithDefaults()
	bound := cfg.LivenessBound()
	var worst units.Time
	worst = units.Time(cfg.MaxRetries+1) * cfg.RespTimeout
	for a := 1; a <= cfg.MaxRetries; a++ {
		worst += backoffFor(cfg.RetryBackoff, a)
	}
	if bound <= worst {
		t.Fatalf("liveness bound %v does not exceed the retry schedule %v", bound, worst)
	}
	slow := cfg
	slow.MaxRetries = cfg.MaxRetries + 4
	if slow.LivenessBound() <= bound {
		t.Errorf("bound did not grow with MaxRetries: %v vs %v", slow.LivenessBound(), bound)
	}
	queued := cfg
	queued.CtlService = 2 * units.Microsecond
	if queued.LivenessBound() <= bound {
		t.Errorf("bound did not grow with the control-queue drain hint: %v vs %v",
			queued.LivenessBound(), bound)
	}
}
