package session

import (
	"fmt"

	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// cState is a client session's lifecycle state.
type cState uint8

const (
	stSignalling cState = iota // Setup sent, awaiting Grant/Reject
	stActive                   // data flowing until stopAt
	stDone
)

// cSession is the client-side record of one session.
type cSession struct {
	id      uint64
	dst     int
	class   packet.Class
	bw      units.Bandwidth
	msgSize units.Size
	hold    units.Time
	flowID  packet.FlowID

	state      cState
	attempt    int
	firstSetup units.Time // when the first Setup was sent (latency base)
	granted    bool       // holds a CAC record (teardown must release it)
	local      bool       // granted by the pod delegate (teardown goes there)
	retryAfter units.Time // shed-reject drain hint for the next backoff
	stopAt     units.Time
	interval   units.Time
	timer      sim.Handle // pending response-timeout or retry-backoff event
}

// maxBackoffShift caps the exponential retry backoff at base << 16; a
// larger MaxRetries must not shift the base into overflow (or into delays
// longer than any simulation).
const maxBackoffShift = 16

// backoffFor returns the capped exponential backoff before retry attempt
// (attempt >= 1): base doubled per prior attempt, clamped at
// base << maxBackoffShift.
func backoffFor(base units.Time, attempt int) units.Time {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	return base << uint(shift)
}

// ClientConfig wires one Client into its host's shard.
type ClientConfig struct {
	Host  *hostif.Host
	Eng   *sim.Engine // the engine of the shard owning Host
	Rng   *xrand.Rand // private stream, split per host by the network
	Cfg   Config      // defaulted and validated
	Hosts int
	Cnt   *Counters // the owning shard's counter instance
	// RouteBE assigns a fixed best-effort route (admission.RouteBestEffort;
	// reads only immutable topology, so clients on any shard may call it).
	RouteBE func(src, dst int, key uint64) []int

	// Delegated control plane wiring (zero values = centralised mode).
	//
	// PodPrimary and PodStandby are the pod's delegate CAC hosts (-1 =
	// none; the client signals the root). A delegate host's own client
	// always signals the root.
	PodPrimary, PodStandby int
	// PodPeers lists the same-pod hosts this client may pick as local
	// destinations (ascending, excluding itself).
	PodPeers []int
}

// Client generates session arrivals at one host and drives each session
// through the setup / data / teardown lifecycle. All its work happens in
// events on the owning host's engine.
type Client struct {
	c        ClientConfig
	id       int
	totalW   float64
	sessions map[uint64]*cSession
	seq      uint32
	// target is the host new signalling goes to: the pod primary, the
	// promoted standby after an OpRetarget, or -1 for the root manager.
	target int
}

// NewClient returns a client for cc.Host. Call Start to begin arrivals.
func NewClient(cc ClientConfig) *Client {
	var total float64
	for _, p := range cc.Cfg.Profiles {
		total += p.Weight
	}
	target := -1
	if cc.PodPrimary >= 0 {
		target = cc.PodPrimary
	}
	return &Client{
		c:        cc,
		id:       cc.Host.ID(),
		totalW:   total,
		sessions: make(map[uint64]*cSession),
		target:   target,
	}
}

// HostID returns the client's host index.
func (c *Client) HostID() int { return c.id }

// ctlFlow returns the signalling flow towards the client's current CAC
// target.
func (c *Client) ctlFlow() packet.FlowID {
	switch {
	case c.target < 0:
		return SigUp(c.id)
	case c.target == c.c.PodPrimary:
		return SigPodUp(c.id)
	case c.target == c.c.PodStandby:
		return SigPodAltUp(c.id)
	default:
		return SigUp(c.id)
	}
}

// Name identifies the client in source listings.
func (c *Client) Name() string { return fmt.Sprintf("sessions@%d", c.id) }

// Start schedules the first session arrival.
func (c *Client) Start() { c.scheduleArrival() }

// inFlash reports whether t falls inside the flash-crowd window.
func (c *Client) inFlash(t units.Time) bool {
	f := &c.c.Cfg
	return f.FlashFactor > 1 && f.FlashLen > 0 && t >= f.FlashAt && t < f.FlashAt+f.FlashLen
}

// scheduleArrival draws the next exponential inter-arrival gap (shortened
// by FlashFactor inside the flash window) and schedules the arrival.
func (c *Client) scheduleArrival() {
	mean := float64(c.c.Cfg.InterArrival)
	if c.inFlash(c.c.Eng.Now()) {
		mean /= c.c.Cfg.FlashFactor
	}
	gap := units.Time(c.c.Rng.Exp(mean)) + 1
	c.c.Eng.After(gap, c.arrive)
}

// pickProfile draws one profile by weight.
func (c *Client) pickProfile() Profile {
	r := c.c.Rng.Float64() * c.totalW
	for _, p := range c.c.Cfg.Profiles {
		if r < p.Weight {
			return p
		}
		r -= p.Weight
	}
	return c.c.Cfg.Profiles[len(c.c.Cfg.Profiles)-1]
}

// arrive creates a new session and sends its first Setup.
func (c *Client) arrive() {
	c.scheduleArrival()
	c.seq++
	if c.seq == 0 || int(c.seq) >= maxSessionsPerHost {
		panic(fmt.Sprintf("session: host %d exhausted its per-host session id space", c.id))
	}
	prof := c.pickProfile()
	var dst int
	if lf := c.c.Cfg.LocalFrac; lf > 0 && len(c.c.PodPeers) > 0 && c.c.Rng.Float64() < lf {
		// Locality bias: pick a same-pod destination. Gated on LocalFrac
		// so the zero value draws exactly the historical random sequence.
		dst = c.c.PodPeers[c.c.Rng.Intn(len(c.c.PodPeers))]
	} else {
		dst = c.c.Rng.Intn(c.c.Hosts - 1)
		if dst >= c.id {
			dst++
		}
	}
	holdMean := c.c.Cfg.HoldMean
	if prof.HoldMean > 0 {
		holdMean = prof.HoldMean
	}
	s := &cSession{
		id:         sessionID(c.id, c.seq),
		dst:        dst,
		class:      prof.Class,
		bw:         prof.BW,
		msgSize:    prof.MsgSize,
		hold:       units.Time(c.c.Rng.Exp(float64(holdMean))) + 1,
		flowID:     DataFlowID(c.id, c.seq),
		firstSetup: c.c.Eng.Now(),
	}
	c.sessions[s.id] = s
	c.c.Cnt.Started++
	c.c.Cnt.Mtr.Started.Inc()
	c.sendSetup(s)
}

// sendSetup emits one in-band Setup message towards the current CAC
// target and arms the response timer.
func (c *Client) sendSetup(s *cSession) {
	c.c.Cnt.SetupsSent++
	c.c.Host.SubmitCtl(c.ctlFlow(), c.c.Cfg.SigMsgSize, &Msg{
		Op: OpSetup, Session: s.id, Attempt: s.attempt,
		Src: c.id, Dst: s.dst, BW: s.bw, Class: s.class,
	})
	s.timer = c.c.Eng.After(c.c.Cfg.RespTimeout, func() {
		if s.state != stSignalling {
			return
		}
		c.c.Cnt.Timeouts++
		c.retryOrDowngrade(s)
	})
}

// cancelTimer drops any pending response/backoff event of s.
func (c *Client) cancelTimer(s *cSession) {
	if s.timer.Pending() {
		c.c.Eng.Cancel(s.timer)
	}
}

// retryOrDowngrade advances the retry policy after a reject or timeout:
// capped exponential backoff (backoffFor) up to MaxRetries, then the
// session gives up its reservation request and runs best effort. A
// shedding CAC's RetryAfter hint stretches the wait when it is longer than
// the backoff — retrying into a still-draining control queue is pointless.
func (c *Client) retryOrDowngrade(s *cSession) {
	s.attempt++
	if s.attempt > c.c.Cfg.MaxRetries {
		c.downgrade(s)
		return
	}
	backoff := backoffFor(c.c.Cfg.RetryBackoff, s.attempt)
	if hint := s.retryAfter; hint > backoff {
		// Clamp to the worst drain time the queue model can produce, so
		// the liveness bound stays provable.
		if max := units.Time(c.c.Cfg.CtlQueueCap+1) * c.c.Cfg.CtlService; hint > max {
			hint = max
		}
		if hint > backoff {
			backoff = hint
		}
	}
	s.retryAfter = 0
	s.timer = c.c.Eng.After(backoff, func() {
		if s.state != stSignalling {
			return // a late Grant won the race against this retry
		}
		c.c.Cnt.Retries++
		c.sendSetup(s)
	})
}

// downgrade starts the session as best effort on a hashed fixed route,
// without a CAC record.
func (c *Client) downgrade(s *cSession) {
	c.c.Cnt.Downgraded++
	c.c.Host.AddFlow(&hostif.Flow{
		ID: s.flowID, Class: packet.BestEffort, Src: c.id, Dst: s.dst,
		Route: c.c.RouteBE(c.id, s.dst, uint64(s.flowID)),
		Mode:  hostif.ByBandwidth, BW: s.bw,
	})
	s.granted = false
	c.activate(s)
}

// HandleCtl processes control-plane messages delivered to this host
// (wired as the host's SetCtlHandler).
func (c *Client) HandleCtl(p *packet.Packet) {
	m, ok := p.Ctl.(*Msg)
	if !ok {
		panic(fmt.Sprintf("session: host %d received foreign control payload %T", c.id, p.Ctl))
	}
	c.handleMsg(m)
}

// handleMsg processes one client-bound control message (from the fabric
// via HandleCtl, or zero-hop from a co-located delegate CAC).
func (c *Client) handleMsg(m *Msg) {
	if m.Op == OpRetarget {
		// Not session-scoped: the root redirects future signalling after a
		// delegate failover (or reclaims the pod itself, Target -1).
		c.c.Cnt.Retargets++
		c.target = m.Target
		return
	}
	s := c.sessions[m.Session]
	if s == nil {
		return // reply for a session that already finished
	}
	switch m.Op {
	case OpGrant:
		if s.state != stSignalling {
			return // duplicate grant after a retried Setup
		}
		c.cancelTimer(s)
		c.c.Cnt.Granted++
		c.c.Cnt.Mtr.Granted.Inc()
		lat := c.c.Eng.Now() - s.firstSetup
		c.c.Cnt.SetupLatency.Add(lat)
		c.c.Cnt.SetupLatHist.Add(lat)
		// Granted sessions carry a CAC reservation of s.bw, so the ingress
		// policer enforces exactly what was admitted. Downgraded sessions
		// stay unpoliced: they never reserved anything.
		c.c.Host.AddFlow(&hostif.Flow{
			ID: s.flowID, Class: s.class, Src: c.id, Dst: s.dst,
			Route: m.Route, Mode: hostif.ByBandwidth, BW: s.bw,
			Policed: true,
		})
		s.granted = true
		s.local = m.Local
		c.activate(s)
	case OpReject:
		if s.state != stSignalling {
			return
		}
		c.cancelTimer(s)
		c.c.Cnt.RejectsSeen++
		if m.RetryAfter > 0 {
			s.retryAfter = m.RetryAfter
		}
		c.retryOrDowngrade(s)
	case OpRevoke:
		if s.state != stActive || !s.granted {
			// The revoke raced our setup handshake; if the manager dropped
			// the record, the eventual teardown is counted stale there.
			return
		}
		f := c.c.Host.Flow(s.flowID)
		if m.DownAt > 0 && m.Route != nil {
			// Switch/port-failure repair: the service interruption ran
			// from the fault instant to this in-band route delivery.
			c.c.Cnt.RepairLatHist.Add(c.c.Eng.Now() - m.DownAt)
		}
		if m.Downgrade {
			// Reservation gone: continue best effort. The CAC already
			// dropped its record, so no teardown Release later. After a
			// switch failure the manager encloses a repaired route; with
			// none (derate revoke, or partitioned pair) fall back to the
			// hashed fixed route and let the fabric account the drops.
			f.Class = packet.BestEffort
			if m.Route != nil {
				f.Route = m.Route
			} else {
				f.Route = c.c.RouteBE(c.id, s.dst, uint64(s.flowID))
			}
			s.granted = false
		} else {
			// Re-admitted elsewhere: switch to the fresh route slice.
			// Already-staged packets keep the old slice, which stays valid
			// for their in-flight lifetime.
			f.Route = m.Route
		}
	}
}

// activate starts CBR data emission for the session's hold time.
func (c *Client) activate(s *cSession) {
	s.state = stActive
	s.stopAt = c.c.Eng.Now() + s.hold
	s.interval = s.bw.TxTime(s.msgSize + packet.HeaderSize)
	if s.interval < 1 {
		s.interval = 1
	}
	c.emitData(s)
}

// emitData sends one data message and re-arms itself until the hold time
// expires.
func (c *Client) emitData(s *cSession) {
	if s.state != stActive {
		return
	}
	if c.c.Eng.Now() >= s.stopAt {
		c.finish(s)
		return
	}
	c.c.Host.SubmitMessage(s.flowID, s.msgSize)
	c.c.Eng.After(s.interval, func() { c.emitData(s) })
}

// finish ends the session, sending an in-band Teardown when a CAC record
// must be released.
func (c *Client) finish(s *cSession) {
	s.state = stDone
	delete(c.sessions, s.id)
	c.c.Cnt.Finished++
	if s.granted {
		// Release where the grant lives: the pod CAC for local grants (the
		// promoted standby holds the replica after a failover), the root
		// otherwise. A local grant whose pod fell back to the root lands
		// there as a stale teardown — the failed delegate's ledger died
		// with it.
		flow := SigUp(c.id)
		if s.local && c.target >= 0 {
			flow = c.ctlFlow()
		}
		c.c.Cnt.TeardownsSent++
		c.c.Host.SubmitCtl(flow, c.c.Cfg.SigMsgSize, &Msg{
			Op: OpTeardown, Session: s.id, Src: c.id, Dst: s.dst,
		})
	}
}

// OldestPending returns the first-setup time of the oldest session still
// in the signalling state. The liveness watchdog calls it after the run:
// any pending setup older than Config.LivenessBound means a response or
// backoff timer was lost, which must not happen even when the fabric
// discards every control packet.
func (c *Client) OldestPending() (units.Time, bool) {
	var oldest units.Time
	found := false
	for _, s := range c.sessions {
		if s.state == stSignalling && (!found || s.firstSetup < oldest) {
			oldest, found = s.firstSetup, true
		}
	}
	return oldest, found
}
