package session

import (
	"fmt"

	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// cState is a client session's lifecycle state.
type cState uint8

const (
	stSignalling cState = iota // Setup sent, awaiting Grant/Reject
	stActive                   // data flowing until stopAt
	stDone
)

// cSession is the client-side record of one session.
type cSession struct {
	id      uint64
	dst     int
	class   packet.Class
	bw      units.Bandwidth
	msgSize units.Size
	hold    units.Time
	flowID  packet.FlowID

	state      cState
	attempt    int
	firstSetup units.Time // when the first Setup was sent (latency base)
	granted    bool       // holds a CAC record (teardown must release it)
	stopAt     units.Time
	interval   units.Time
	timer      sim.Handle // pending response-timeout or retry-backoff event
}

// ClientConfig wires one Client into its host's shard.
type ClientConfig struct {
	Host  *hostif.Host
	Eng   *sim.Engine // the engine of the shard owning Host
	Rng   *xrand.Rand // private stream, split per host by the network
	Cfg   Config      // defaulted and validated
	Hosts int
	Cnt   *Counters // the owning shard's counter instance
	// RouteBE assigns a fixed best-effort route (admission.RouteBestEffort;
	// reads only immutable topology, so clients on any shard may call it).
	RouteBE func(src, dst int, key uint64) []int
}

// Client generates session arrivals at one host and drives each session
// through the setup / data / teardown lifecycle. All its work happens in
// events on the owning host's engine.
type Client struct {
	c        ClientConfig
	id       int
	totalW   float64
	sessions map[uint64]*cSession
	seq      uint32
}

// NewClient returns a client for cc.Host. Call Start to begin arrivals.
func NewClient(cc ClientConfig) *Client {
	var total float64
	for _, p := range cc.Cfg.Profiles {
		total += p.Weight
	}
	return &Client{
		c:        cc,
		id:       cc.Host.ID(),
		totalW:   total,
		sessions: make(map[uint64]*cSession),
	}
}

// Name identifies the client in source listings.
func (c *Client) Name() string { return fmt.Sprintf("sessions@%d", c.id) }

// Start schedules the first session arrival.
func (c *Client) Start() { c.scheduleArrival() }

// inFlash reports whether t falls inside the flash-crowd window.
func (c *Client) inFlash(t units.Time) bool {
	f := &c.c.Cfg
	return f.FlashFactor > 1 && f.FlashLen > 0 && t >= f.FlashAt && t < f.FlashAt+f.FlashLen
}

// scheduleArrival draws the next exponential inter-arrival gap (shortened
// by FlashFactor inside the flash window) and schedules the arrival.
func (c *Client) scheduleArrival() {
	mean := float64(c.c.Cfg.InterArrival)
	if c.inFlash(c.c.Eng.Now()) {
		mean /= c.c.Cfg.FlashFactor
	}
	gap := units.Time(c.c.Rng.Exp(mean)) + 1
	c.c.Eng.After(gap, c.arrive)
}

// pickProfile draws one profile by weight.
func (c *Client) pickProfile() Profile {
	r := c.c.Rng.Float64() * c.totalW
	for _, p := range c.c.Cfg.Profiles {
		if r < p.Weight {
			return p
		}
		r -= p.Weight
	}
	return c.c.Cfg.Profiles[len(c.c.Cfg.Profiles)-1]
}

// arrive creates a new session and sends its first Setup.
func (c *Client) arrive() {
	c.scheduleArrival()
	c.seq++
	if c.seq == 0 || int(c.seq) >= maxSessionsPerHost {
		panic(fmt.Sprintf("session: host %d exhausted its per-host session id space", c.id))
	}
	prof := c.pickProfile()
	dst := c.c.Rng.Intn(c.c.Hosts - 1)
	if dst >= c.id {
		dst++
	}
	holdMean := c.c.Cfg.HoldMean
	if prof.HoldMean > 0 {
		holdMean = prof.HoldMean
	}
	s := &cSession{
		id:         sessionID(c.id, c.seq),
		dst:        dst,
		class:      prof.Class,
		bw:         prof.BW,
		msgSize:    prof.MsgSize,
		hold:       units.Time(c.c.Rng.Exp(float64(holdMean))) + 1,
		flowID:     DataFlowID(c.id, c.seq),
		firstSetup: c.c.Eng.Now(),
	}
	c.sessions[s.id] = s
	c.c.Cnt.Started++
	c.sendSetup(s)
}

// sendSetup emits one in-band Setup message and arms the response timer.
func (c *Client) sendSetup(s *cSession) {
	c.c.Cnt.SetupsSent++
	c.c.Host.SubmitCtl(SigUp(c.id), c.c.Cfg.SigMsgSize, &Msg{
		Op: OpSetup, Session: s.id, Attempt: s.attempt,
		Src: c.id, Dst: s.dst, BW: s.bw, Class: s.class,
	})
	s.timer = c.c.Eng.After(c.c.Cfg.RespTimeout, func() {
		if s.state != stSignalling {
			return
		}
		c.c.Cnt.Timeouts++
		c.retryOrDowngrade(s)
	})
}

// cancelTimer drops any pending response/backoff event of s.
func (c *Client) cancelTimer(s *cSession) {
	if s.timer.Pending() {
		c.c.Eng.Cancel(s.timer)
	}
}

// retryOrDowngrade advances the retry policy after a reject or timeout:
// exponential backoff (RetryBackoff << attempt) up to MaxRetries, then the
// session gives up its reservation request and runs best effort.
func (c *Client) retryOrDowngrade(s *cSession) {
	s.attempt++
	if s.attempt > c.c.Cfg.MaxRetries {
		c.downgrade(s)
		return
	}
	backoff := c.c.Cfg.RetryBackoff << uint(s.attempt-1)
	s.timer = c.c.Eng.After(backoff, func() {
		if s.state != stSignalling {
			return // a late Grant won the race against this retry
		}
		c.c.Cnt.Retries++
		c.sendSetup(s)
	})
}

// downgrade starts the session as best effort on a hashed fixed route,
// without a CAC record.
func (c *Client) downgrade(s *cSession) {
	c.c.Cnt.Downgraded++
	c.c.Host.AddFlow(&hostif.Flow{
		ID: s.flowID, Class: packet.BestEffort, Src: c.id, Dst: s.dst,
		Route: c.c.RouteBE(c.id, s.dst, uint64(s.flowID)),
		Mode:  hostif.ByBandwidth, BW: s.bw,
	})
	s.granted = false
	c.activate(s)
}

// HandleCtl processes control-plane messages delivered to this host
// (wired as the host's SetCtlHandler).
func (c *Client) HandleCtl(p *packet.Packet) {
	m, ok := p.Ctl.(*Msg)
	if !ok {
		panic(fmt.Sprintf("session: host %d received foreign control payload %T", c.id, p.Ctl))
	}
	s := c.sessions[m.Session]
	if s == nil {
		return // reply for a session that already finished
	}
	switch m.Op {
	case OpGrant:
		if s.state != stSignalling {
			return // duplicate grant after a retried Setup
		}
		c.cancelTimer(s)
		c.c.Cnt.Granted++
		lat := c.c.Eng.Now() - s.firstSetup
		c.c.Cnt.SetupLatency.Add(lat)
		c.c.Cnt.SetupLatHist.Add(lat)
		c.c.Host.AddFlow(&hostif.Flow{
			ID: s.flowID, Class: s.class, Src: c.id, Dst: s.dst,
			Route: m.Route, Mode: hostif.ByBandwidth, BW: s.bw,
		})
		s.granted = true
		c.activate(s)
	case OpReject:
		if s.state != stSignalling {
			return
		}
		c.cancelTimer(s)
		c.c.Cnt.RejectsSeen++
		c.retryOrDowngrade(s)
	case OpRevoke:
		if s.state != stActive || !s.granted {
			// The revoke raced our setup handshake; if the manager dropped
			// the record, the eventual teardown is counted stale there.
			return
		}
		f := c.c.Host.Flow(s.flowID)
		if m.DownAt > 0 && m.Route != nil {
			// Switch/port-failure repair: the service interruption ran
			// from the fault instant to this in-band route delivery.
			c.c.Cnt.RepairLatHist.Add(c.c.Eng.Now() - m.DownAt)
		}
		if m.Downgrade {
			// Reservation gone: continue best effort. The CAC already
			// dropped its record, so no teardown Release later. After a
			// switch failure the manager encloses a repaired route; with
			// none (derate revoke, or partitioned pair) fall back to the
			// hashed fixed route and let the fabric account the drops.
			f.Class = packet.BestEffort
			if m.Route != nil {
				f.Route = m.Route
			} else {
				f.Route = c.c.RouteBE(c.id, s.dst, uint64(s.flowID))
			}
			s.granted = false
		} else {
			// Re-admitted elsewhere: switch to the fresh route slice.
			// Already-staged packets keep the old slice, which stays valid
			// for their in-flight lifetime.
			f.Route = m.Route
		}
	}
}

// activate starts CBR data emission for the session's hold time.
func (c *Client) activate(s *cSession) {
	s.state = stActive
	s.stopAt = c.c.Eng.Now() + s.hold
	s.interval = s.bw.TxTime(s.msgSize + packet.HeaderSize)
	if s.interval < 1 {
		s.interval = 1
	}
	c.emitData(s)
}

// emitData sends one data message and re-arms itself until the hold time
// expires.
func (c *Client) emitData(s *cSession) {
	if s.state != stActive {
		return
	}
	if c.c.Eng.Now() >= s.stopAt {
		c.finish(s)
		return
	}
	c.c.Host.SubmitMessage(s.flowID, s.msgSize)
	c.c.Eng.After(s.interval, func() { c.emitData(s) })
}

// finish ends the session, sending an in-band Teardown when a CAC record
// must be released.
func (c *Client) finish(s *cSession) {
	s.state = stDone
	delete(c.sessions, s.id)
	c.c.Cnt.Finished++
	if s.granted {
		c.c.Cnt.TeardownsSent++
		c.c.Host.SubmitCtl(SigUp(c.id), c.c.Cfg.SigMsgSize, &Msg{
			Op: OpTeardown, Session: s.id, Src: c.id, Dst: s.dst,
		})
	}
}
