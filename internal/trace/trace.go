// Package trace implements packet-lifecycle tracing, time-series telemetry
// and engine profiling for the simulator — the observability substrate that
// makes the paper's mechanisms (deadline slack at every hop, order errors,
// take-over recoveries, §3.4–§4.4) inspectable as events over time instead
// of end-of-run aggregates.
//
// The design mirrors how SCED-style analyses reason about per-hop deadline
// slack and how heavy-traffic EDF results are stated in terms of lead-time
// distributions: every recorded event carries the packet's slack (deadline
// minus the recording node's local clock) at that instant.
//
// Tracing is opt-in and sampled. Components hold a *Tracer pointer that is
// nil when tracing is off; every call site guards with a nil check, so a
// disabled tracer costs one pointer comparison per event site (zero
// allocations, zero work). Whether a packet is sampled is decided once at
// generation time by a deterministic hash of (seed, packet id), so the same
// seed and sample rate always select the same packets and produce the
// byte-identical event stream — tracing inherits the simulator's
// replayability guarantee.
//
// Exports: newline-delimited JSON (one event per line, stable field order)
// and Chrome trace_event JSON loadable in Perfetto (ui.perfetto.dev), where
// each sampled packet renders as one track of per-hop spans with instant
// markers for take-overs, order errors, drops and delivery.
package trace

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

// Kind enumerates the packet-lifecycle points a Tracer records.
type Kind uint8

// Lifecycle event kinds. Host-side kinds carry the host id in Node;
// switch-side kinds carry the switch id.
const (
	// KindGenerated: the NIC stamped the packet's deadline (host event).
	KindGenerated Kind = iota
	// KindEligibleHold: the packet was staged to wait for its eligible
	// time (host event; only under eligible-time shaping).
	KindEligibleHold
	// KindInjected: the packet's first byte entered the network (host).
	KindInjected
	// KindVOQEnqueue: the packet joined an input VOQ (switch event; Port
	// is the input port, Out the VOQ's output port).
	KindVOQEnqueue
	// KindVOQDequeue: the scheduler popped the packet from its VOQ into
	// the crossbar (switch event; Slack here is the paper's per-hop slack
	// at dequeue).
	KindVOQDequeue
	// KindOutputEnqueue: the crossbar transfer completed and the packet
	// entered the output buffer (switch event).
	KindOutputEnqueue
	// KindLinkTx: the packet started serialising on the output link
	// (switch event).
	KindLinkTx
	// KindTakeOver: the packet arrived with a deadline below the ordered
	// queue's tail and diverted to the take-over queue (switch event).
	KindTakeOver
	// KindOrderError: a dequeue emitted this packet although the buffer
	// held a smaller deadline (switch event; requires TrackOrderErrors).
	KindOrderError
	// KindCRCDrop: the destination NIC's end-to-end CRC check dropped a
	// corrupted copy (host event).
	KindCRCDrop
	// KindLinkDrop: a copy was lost in flight to a link flap.
	KindLinkDrop
	// KindSwitchDrop: a copy was discarded from a switch's buffers or
	// crossbar when a SwitchDown fault killed the switch (switch event).
	KindSwitchDrop
	// KindRetransmit: a retransmit copy was queued at the source (host).
	KindRetransmit
	// KindDupDrop: the destination dropped a duplicate copy (host event).
	KindDupDrop
	// KindDemoted: the packet was demoted to the best-effort VC (host).
	KindDemoted
	// KindDelivered: the packet reached its destination NIC (host event;
	// Slack is the delivery slack, deadline − delivery time).
	KindDelivered
	// KindNICEvict: a bounded injection queue discarded the packet before
	// it entered the network (host event; value-drop policies only).
	KindNICEvict
	// KindPoliced: the ingress policer demoted the packet to the
	// best-effort VC for violating its flow's reservation (host event;
	// recorded right after KindGenerated, with the demoted VC).
	KindPoliced
	numKinds
)

var kindLabels = [numKinds]string{
	"gen", "elig-hold", "inject", "voq-enq", "voq-deq", "out-enq",
	"link-tx", "takeover", "order-err", "crc-drop", "link-drop",
	"switch-drop", "retx", "dup-drop", "demote", "deliver", "nic-evict",
	"police",
}

// String returns the short label used in JSONL output.
func (k Kind) String() string {
	if int(k) < len(kindLabels) {
		return kindLabels[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded lifecycle point of a sampled packet. Times are on
// the engine's oracle clock; Slack is deadline − local clock of the node
// that recorded the event (the quantity the paper's per-hop EDF decisions
// inspect).
type Event struct {
	T     units.Time // oracle time of the event
	Kind  Kind
	Pkt   uint64
	Flow  packet.FlowID
	Class packet.Class
	VC    packet.VC
	Seq   uint64
	Src   int
	Dst   int
	Node  int        // host id (host kinds) or switch id (switch kinds); -1 unknown
	Port  int        // port within Node; -1 when not applicable
	Out   int        // destination output port (VOQ kinds); -1 otherwise
	Hop   int        // route hop index at the event
	Slack units.Time // deadline − recording node's local clock
	Size  units.Size
}

// appendJSON renders the event as one JSON object with a fixed field
// order, so identical event streams serialise byte-identically.
func (e *Event) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendInt(dst, int64(e.T), 10)
	dst = append(dst, `,"k":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, `","pkt":`...)
	dst = strconv.AppendUint(dst, e.Pkt, 10)
	dst = append(dst, `,"flow":`...)
	dst = strconv.AppendUint(dst, uint64(e.Flow), 10)
	dst = append(dst, `,"cls":"`...)
	dst = append(dst, e.Class.String()...)
	dst = append(dst, `","vc":`...)
	dst = strconv.AppendUint(dst, uint64(e.VC), 10)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"src":`...)
	dst = strconv.AppendInt(dst, int64(e.Src), 10)
	dst = append(dst, `,"dst":`...)
	dst = strconv.AppendInt(dst, int64(e.Dst), 10)
	dst = append(dst, `,"node":`...)
	dst = strconv.AppendInt(dst, int64(e.Node), 10)
	dst = append(dst, `,"port":`...)
	dst = strconv.AppendInt(dst, int64(e.Port), 10)
	dst = append(dst, `,"out":`...)
	dst = strconv.AppendInt(dst, int64(e.Out), 10)
	dst = append(dst, `,"hop":`...)
	dst = strconv.AppendInt(dst, int64(e.Hop), 10)
	dst = append(dst, `,"slack":`...)
	dst = strconv.AppendInt(dst, int64(e.Slack), 10)
	dst = append(dst, `,"size":`...)
	dst = strconv.AppendInt(dst, int64(e.Size), 10)
	dst = append(dst, '}')
	return dst
}

// Config parameterises a Tracer.
type Config struct {
	// SampleRate is the fraction of generated packets traced, in [0, 1].
	// Sampling is per logical packet: retransmit copies inherit the
	// original's decision through the Sampled header bit they copy.
	SampleRate float64
	// Seed salts the sampling hash. Use the run's traffic seed to make
	// the sampled set a pure function of the run configuration.
	Seed uint64
	// MaxEvents caps the stored event count (default 1<<20). Events past
	// the cap are counted in Dropped and discarded, bounding memory on
	// runaway configurations.
	MaxEvents int
	// Flight, when non-nil, tees every recorded event into a fixed-size
	// ring of recent events (see FlightRecorder). Shard clones get their
	// own ring clone; Absorb folds them back.
	Flight *FlightRecorder
	// DiscardEvents disables in-memory event storage: Record still feeds
	// the aggregates and the flight ring, but keeps no event list. Used
	// when a tracer exists only to drive the flight recorder at full
	// sampling without holding the whole run in memory.
	DiscardEvents bool
}

// DefaultMaxEvents is the event-store cap when Config.MaxEvents is zero.
const DefaultMaxEvents = 1 << 20

// Tracer records lifecycle events for sampled packets. One Tracer belongs
// to exactly one simulation run (the engine is single-threaded; a Tracer is
// not safe for concurrent use across runs).
type Tracer struct {
	cfg       Config
	threshold uint64 // hash < threshold => sampled
	events    []Event
	dropped   uint64
	sampled   uint64 // KindGenerated events, i.e. sampled packet count

	hopSlack []slackAgg      // per route-hop aggregation of dequeue slack
	flight   *FlightRecorder // recent-event ring (nil = off)
}

// slackAgg is a tiny online aggregate (count/sum/min/max) kept per hop.
// Slack values are integer nanoseconds and the aggregate stays integer, so
// merging shard tracers (Absorb) is exact and order-independent; the mean
// is derived on demand.
type slackAgg struct {
	n        uint64
	sum      int64
	min, max int64
}

func (a *slackAgg) add(v int64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
}

func (a *slackAgg) merge(o slackAgg) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = o
		return
	}
	if o.min < a.min {
		a.min = o.min
	}
	if o.max > a.max {
		a.max = o.max
	}
	a.n += o.n
	a.sum += o.sum
}

// New validates cfg and returns a Tracer.
func New(cfg Config) (*Tracer, error) {
	if cfg.SampleRate < 0 || cfg.SampleRate > 1 {
		return nil, fmt.Errorf("trace: sample rate %v out of [0, 1]", cfg.SampleRate)
	}
	if cfg.MaxEvents < 0 {
		return nil, fmt.Errorf("trace: negative event cap %d", cfg.MaxEvents)
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	t := &Tracer{cfg: cfg, flight: cfg.Flight}
	switch {
	case cfg.SampleRate >= 1:
		t.threshold = ^uint64(0)
	default:
		t.threshold = uint64(cfg.SampleRate * float64(1<<63) * 2)
	}
	return t, nil
}

// splitmix64 is the finaliser of SplitMix64 — a cheap, well-distributed
// 64-bit hash used for the per-packet sampling decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SampleID reports whether the packet with the given id is sampled. The
// decision is a pure function of (seed, id): same seed and rate always
// select the same packets. Nil-safe (a nil Tracer samples nothing).
func (t *Tracer) SampleID(id uint64) bool {
	if t == nil || t.threshold == 0 {
		return false
	}
	if t.threshold == ^uint64(0) {
		return true
	}
	return splitmix64(t.cfg.Seed^(id*0x9e3779b97f4a7c15)) < t.threshold
}

// Record stores one event. Callers are expected to have checked both the
// tracer pointer and the packet's Sampled bit; Record itself is still
// nil-safe so cold paths can call it unconditionally.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	if ev.Kind == KindVOQDequeue {
		for len(t.hopSlack) <= ev.Hop {
			t.hopSlack = append(t.hopSlack, slackAgg{})
		}
		t.hopSlack[ev.Hop].add(int64(ev.Slack))
	}
	if t.flight != nil {
		t.flight.record(ev)
	}
	if t.cfg.DiscardEvents {
		if ev.Kind == KindGenerated {
			t.sampled++
		}
		return
	}
	if len(t.events) >= t.cfg.MaxEvents {
		t.dropped++
		return
	}
	if ev.Kind == KindGenerated {
		t.sampled++
	}
	t.events = append(t.events, ev)
}

// Events returns the recorded events in recording order (a live slice; do
// not mutate).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Dropped returns how many events were discarded after MaxEvents filled.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// SampledPackets returns how many packets were selected for tracing.
func (t *Tracer) SampledPackets() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled
}

// Clone returns an empty Tracer with the same configuration and sampling
// threshold. The sharded network hands each shard a clone of the run's
// tracer so recording stays single-goroutine, then folds them back into
// the original with Absorb. Nil-safe (a nil Tracer clones to nil).
func (t *Tracer) Clone() *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{cfg: t.cfg, threshold: t.threshold, flight: t.flight.Clone()}
}

// Flight returns the tracer's flight-recorder ring (nil when off). In a
// sharded run each tracer clone has its own ring; event-time trip
// decisions (the deadline-miss-burst SLO) call Trip on the shard's own
// ring, and Absorb folds trip state back to the root.
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// Absorb merges other's recorded state into t: events are appended and the
// drop/sample counters and per-hop slack aggregates are summed (all
// integer, so the result is independent of absorb order). Call SortEvents
// after the last Absorb to restore the canonical time order. other is
// drained and must not record afterwards.
func (t *Tracer) Absorb(other *Tracer) {
	if t == nil || other == nil {
		return
	}
	t.events = append(t.events, other.events...)
	t.dropped += other.dropped
	t.sampled += other.sampled
	t.flight.Absorb(other.flight)
	for hop, a := range other.hopSlack {
		for len(t.hopSlack) <= hop {
			t.hopSlack = append(t.hopSlack, slackAgg{})
		}
		t.hopSlack[hop].merge(a)
	}
	other.events = nil
	other.hopSlack = nil
}

// SortEvents sorts the stored events into the canonical (time, rendered
// JSON) order WriteJSONL emits. A sequential run already records in time
// order, so this is only needed after merging shard tracers — chiefly so
// the Chrome export walks each packet's life chronologically.
func (t *Tracer) SortEvents() {
	if t == nil {
		return
	}
	evs := t.events
	lines := make([][]byte, len(evs))
	for i := range evs {
		lines[i] = evs[i].appendJSON(nil)
	}
	idx := make([]int, len(evs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := &evs[idx[a]], &evs[idx[b]]
		if ea.T != eb.T {
			return ea.T < eb.T
		}
		return bytes.Compare(lines[idx[a]], lines[idx[b]]) < 0
	})
	out := make([]Event, len(evs))
	for i, j := range idx {
		out[i] = evs[j]
	}
	t.events = out
}

// WriteJSONL writes one JSON object per event. Lines are emitted in the
// canonical (time, line-bytes) order rather than recording order, so two
// tracers holding the same multiset of events — a sequential run and a
// merged sharded run — produce byte-identical output (the replayability
// contract tested in internal/network). The fixed field order of the
// rendering makes the per-line bytes themselves stable.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	type rendered struct {
		at   units.Time
		line []byte
	}
	lines := make([]rendered, len(t.events))
	for i := range t.events {
		buf := t.events[i].appendJSON(make([]byte, 0, 256))
		lines[i] = rendered{t.events[i].T, append(buf, '\n')}
	}
	sort.SliceStable(lines, func(a, b int) bool {
		if lines[a].at != lines[b].at {
			return lines[a].at < lines[b].at
		}
		return bytes.Compare(lines[a].line, lines[b].line) < 0
	})
	for i := range lines {
		if _, err := w.Write(lines[i].line); err != nil {
			return fmt.Errorf("trace: writing JSONL: %w", err)
		}
	}
	return nil
}

// HopSlackStat summarises the dequeue slack observed at one route hop
// across all sampled packets: how far ahead of (positive) or past
// (negative) their deadline packets were when the scheduler served them.
type HopSlackStat struct {
	Hop    int
	Count  uint64
	MeanNs float64
	MinNs  float64
	MaxNs  float64
}

// HopSlack returns per-hop dequeue-slack summaries in hop order. Hops with
// no observations are omitted.
func (t *Tracer) HopSlack() []HopSlackStat {
	if t == nil {
		return nil
	}
	var out []HopSlackStat
	for hop, a := range t.hopSlack {
		if a.n == 0 {
			continue
		}
		out = append(out, HopSlackStat{
			Hop: hop, Count: a.n,
			MeanNs: float64(a.sum) / float64(a.n),
			MinNs:  float64(a.min), MaxNs: float64(a.max),
		})
	}
	return out
}
