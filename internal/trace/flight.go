// The flight recorder: a fixed-size per-shard ring of the most recent
// lifecycle events, kept alongside (and fed by) the Tracer, so that when
// an invariant trips — a structural audit failure, a conservation
// violation, a deadline-miss-burst SLO — the run can dump the exact event
// window leading up to (and briefly past) the failure as
// `flightrec.jsonl`, instead of leaving only an epoch seed to replay.
//
// The ring reuses the trace Event encoding: one JSON object per line in
// the same fixed field order, sorted into the canonical (time, bytes)
// order on dump. Recording is shard-local (each shard's tracer clone
// carries its own ring) and allocation-free after construction: one
// struct copy per recorded event. Unlike the deterministic artifacts
// (stats, telemetry, the sampled trace), the *window* a ring holds
// depends on how events were dealt to shards, so a flight dump is a
// forensic artifact, not part of the byte-identical replay contract.

package trace

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"

	"deadlineqos/internal/units"
)

// DefaultFlightCap is the per-shard ring capacity when NewFlightRecorder
// is given a non-positive one.
const DefaultFlightCap = 4096

// FlightRecorder is one fixed-size event ring plus trip state. The
// network hands each shard's tracer a Clone; after the run the root
// Absorbs them and dumps the merged window. All methods are nil-safe.
type FlightRecorder struct {
	capacity int
	buf      []Event
	head     int // next write position
	n        int // events currently in the ring

	// Trip state. After Trip the ring keeps recording for a grace of
	// capacity/4 more events (the aftermath is often as diagnostic as
	// the lead-up), then freezes.
	tripped   bool
	frozen    bool
	graceLeft int
	reason    string
	at        units.Time

	// merged accumulates absorbed shard windows at the root.
	merged []Event
}

// NewFlightRecorder returns a recorder whose per-shard rings hold
// capacity events each (DefaultFlightCap when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &FlightRecorder{capacity: capacity, buf: make([]Event, capacity)}
}

// Clone returns an empty recorder with the same capacity, for one
// shard's tracer. Nil-safe.
func (f *FlightRecorder) Clone() *FlightRecorder {
	if f == nil {
		return nil
	}
	return NewFlightRecorder(f.capacity)
}

// record appends one event to the ring (called by Tracer.Record).
func (f *FlightRecorder) record(ev Event) {
	if f == nil || f.frozen {
		return
	}
	f.buf[f.head] = ev
	f.head++
	if f.head == f.capacity {
		f.head = 0
	}
	if f.n < f.capacity {
		f.n++
	}
	if f.tripped {
		f.graceLeft--
		if f.graceLeft <= 0 {
			f.frozen = true
		}
	}
}

// Trip marks the recorder tripped with the given reason at the given
// simulation time. The first trip wins; later calls are no-ops. The ring
// records capacity/4 more events, then freezes, preserving the window
// around the failure. Safe to call from the owning shard's goroutine at
// event time, or from the main goroutine after the run. Nil-safe.
func (f *FlightRecorder) Trip(reason string, at units.Time) {
	if f == nil || f.tripped {
		return
	}
	f.tripped = true
	f.reason = reason
	f.at = at
	f.graceLeft = f.capacity / 4
	if f.graceLeft == 0 {
		f.frozen = true
	}
}

// Tripped reports whether (and why, and when) the recorder tripped.
// After Absorb it reflects the earliest trip across all absorbed shards.
// Nil-safe.
func (f *FlightRecorder) Tripped() (tripped bool, reason string, at units.Time) {
	if f == nil {
		return false, "", 0
	}
	return f.tripped, f.reason, f.at
}

// window returns the ring's events oldest-first.
func (f *FlightRecorder) window() []Event {
	if f == nil || f.n == 0 {
		return nil
	}
	out := make([]Event, 0, f.n)
	start := f.head - f.n
	if start < 0 {
		start += f.capacity
	}
	for i := 0; i < f.n; i++ {
		out = append(out, f.buf[(start+i)%f.capacity])
	}
	return out
}

// Absorb folds a shard recorder's window and trip state into f. The trip
// that survives is the earliest one (ties broken by reason string, so
// the merge is order-independent). other is drained. Nil-safe.
func (f *FlightRecorder) Absorb(other *FlightRecorder) {
	if f == nil || other == nil {
		return
	}
	f.merged = append(f.merged, other.window()...)
	f.merged = append(f.merged, other.merged...)
	if ot, oreason, oat := other.Tripped(); ot {
		if !f.tripped || oat < f.at || (oat == f.at && oreason < f.reason) {
			f.tripped, f.reason, f.at = true, oreason, oat
		}
	}
	other.n, other.head, other.merged = 0, 0, nil
}

// Events returns every held event (own ring plus absorbed windows) in
// the canonical (time, rendered-bytes) order. Nil-safe.
func (f *FlightRecorder) Events() []Event {
	if f == nil {
		return nil
	}
	evs := append(append([]Event(nil), f.merged...), f.window()...)
	lines := make([][]byte, len(evs))
	for i := range evs {
		lines[i] = evs[i].appendJSON(nil)
	}
	idx := make([]int, len(evs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if evs[idx[a]].T != evs[idx[b]].T {
			return evs[idx[a]].T < evs[idx[b]].T
		}
		return bytes.Compare(lines[idx[a]], lines[idx[b]]) < 0
	})
	out := make([]Event, len(evs))
	for i, j := range idx {
		out[i] = evs[j]
	}
	return out
}

// WriteJSONL dumps the flight window: a meta line naming the trip reason
// and instant, then one event per line in canonical order (the Tracer's
// JSONL encoding). Nil recorders write nothing.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	if f == nil {
		return nil
	}
	evs := f.Events()
	meta := []byte(`{"flightrec":1,"tripped":`)
	meta = strconv.AppendBool(meta, f.tripped)
	meta = append(meta, `,"reason":`...)
	meta = strconv.AppendQuote(meta, f.reason)
	meta = append(meta, `,"tripped_at":`...)
	meta = strconv.AppendInt(meta, int64(f.at), 10)
	meta = append(meta, `,"events":`...)
	meta = strconv.AppendInt(meta, int64(len(evs)), 10)
	meta = append(meta, '}', '\n')
	if _, err := w.Write(meta); err != nil {
		return fmt.Errorf("trace: writing flight meta: %w", err)
	}
	for i := range evs {
		line := evs[i].appendJSON(make([]byte, 0, 256))
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("trace: writing flight JSONL: %w", err)
		}
	}
	return nil
}
