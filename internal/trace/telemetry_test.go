package trace

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deadlineqos/internal/units"
)

var updateGolden = flag.Bool("update", false, "rewrite the telemetry CSV golden files")

// goldenTelemetry builds a fixed telemetry fixture covering the edge
// cases the CSV schema has to keep stable: zero rows, the root manager's
// Pod=-1, float fields that need full 'g' precision, and exact-integer
// floats that must not grow a decimal point.
func goldenTelemetry() *Telemetry {
	return &Telemetry{
		Interval: 100 * units.Microsecond,
		Ports: []PortSample{
			{
				T: 100 * units.Microsecond, Switch: 0, Port: 0,
				InPackets: 3, InBytes: 4096, OutPackets: 1, OutBytes: 1500,
				CreditBytes: 65536, TakeOvers: 2, OrderErrors: 1,
				TakeOverRate: 20000, OrderErrRate: 10000, LinkUtilization: 0.875,
			},
			{
				T: 100 * units.Microsecond, Switch: 0, Port: 1,
				CreditBytes: 65536, LinkUtilization: 0,
			},
			{
				T: 200 * units.Microsecond, Switch: 4, Port: 2,
				InPackets: 17, InBytes: 25500, OutPackets: 9, OutBytes: 13500,
				CreditBytes: 1024, TakeOvers: 5, OrderErrors: 0,
				TakeOverRate: 31415.926535, OrderErrRate: 0, LinkUtilization: 1,
			},
		},
		Sessions: []SessionSample{
			{
				T: 100 * units.Microsecond, Pod: -1, Host: 0,
				Active: 12, ReservedBW: 0.333333333, Accepted: 40, Rejected: 3,
				Revoked: 1, LeaseFrac: 0, LeaseUtil: 0, QueueDepth: 2, Shed: 0,
			},
			{
				T: 100 * units.Microsecond, Pod: 0, Host: 1,
				Active: 4, ReservedBW: 0.0625, Accepted: 11, Rejected: 0,
				Revoked: 0, LeaseFrac: 0.25, LeaseUtil: 0.9, QueueDepth: 0, Shed: 7,
			},
			{
				T: 200 * units.Microsecond, Pod: 3, Host: 14,
				Active: 0, ReservedBW: 0, Accepted: 0, Rejected: 0,
				Revoked: 0, LeaseFrac: 0.125, LeaseUtil: 0, QueueDepth: 0, Shed: 0,
			},
		},
	}
}

// checkGolden renders one CSV writer and compares it byte-for-byte
// against its committed golden file. The goldens are the schema contract
// for downstream notebooks and dashboards: a diff here means a column
// was added, removed, reordered, or reformatted, and the golden must be
// regenerated deliberately (go test ./internal/trace -run CSV -update)
// together with the consumers.
func checkGolden(t *testing.T, name string, write func(w io.Writer) error) {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatalf("writing %s: %v", name, err)
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("updating golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s output drifted from golden file %s.\ngot:\n%swant:\n%s",
			name, path, buf.Bytes(), want)
	}
}

func TestWriteCSVGolden(t *testing.T) {
	tel := goldenTelemetry()
	checkGolden(t, "telemetry_ports.csv", tel.WriteCSV)
}

func TestWriteSessionsCSVGolden(t *testing.T) {
	tel := goldenTelemetry()
	checkGolden(t, "telemetry_sessions.csv", tel.WriteSessionsCSV)
}

// The header rows are load-bearing independently of the golden bytes:
// empty telemetry must still produce a parseable single-header CSV.
func TestCSVHeadersOnEmptyTelemetry(t *testing.T) {
	var tel Telemetry
	cases := []struct {
		name   string
		write  func(w io.Writer) error
		header string
	}{
		{"WriteCSV", tel.WriteCSV,
			"t_ns,switch,port,in_packets,in_bytes,out_packets,out_bytes,credit_bytes,takeovers,order_errors,takeover_per_sec,order_err_per_sec,link_utilization"},
		{"WriteSessionsCSV", tel.WriteSessionsCSV,
			"t_ns,pod,host,active,reserved_bw,accepted,rejected,revoked,lease_frac,lease_util,queue_depth,shed"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := tc.write(&buf); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := buf.String(); got != tc.header+"\n" {
			t.Errorf("%s on empty telemetry = %q, want header %q", tc.name, got, tc.header)
		}
	}
}

// Every data row must have exactly as many fields as the header — the
// property pandas.read_csv depends on.
func TestCSVFieldCounts(t *testing.T) {
	tel := goldenTelemetry()
	for _, w := range []struct {
		name  string
		write func(w io.Writer) error
	}{
		{"WriteCSV", tel.WriteCSV},
		{"WriteSessionsCSV", tel.WriteSessionsCSV},
	} {
		var buf bytes.Buffer
		if err := w.write(&buf); err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: expected header plus data rows, got %d lines", w.name, len(lines))
		}
		want := strings.Count(lines[0], ",")
		for i, ln := range lines[1:] {
			if got := strings.Count(ln, ","); got != want {
				t.Errorf("%s row %d has %d commas, header has %d: %q", w.name, i, got, want, ln)
			}
		}
	}
}
