package trace

import (
	"fmt"
	"io"
	"strconv"

	"deadlineqos/internal/units"
)

// Chrome trace_event export: each sampled packet becomes one "thread" in a
// single "packets" process, so Perfetto (ui.perfetto.dev) renders the
// packet's life as a track of back-to-back spans — NIC queue, eligible
// hold, wire, per-switch VOQ residency, crossbar, output buffer — with
// instant markers for take-overs, order errors, drops and retransmits.
// Timestamps are microseconds (the format's unit) with nanosecond
// precision preserved in the fractional part.

// spanName returns the slice name a span-opening event starts, or "" if
// the kind does not open a span.
func spanName(ev *Event) string {
	switch ev.Kind {
	case KindGenerated:
		return "nic-queue"
	case KindEligibleHold:
		return "eligible-hold"
	case KindInjected, KindLinkTx:
		return "wire"
	case KindVOQEnqueue:
		return fmt.Sprintf("voq sw%d in%d vc%d", ev.Node, ev.Port, ev.VC)
	case KindVOQDequeue:
		return fmt.Sprintf("xbar sw%d", ev.Node)
	case KindOutputEnqueue:
		return fmt.Sprintf("outbuf sw%d p%d", ev.Node, ev.Port)
	}
	return ""
}

// terminal reports whether the kind ends the packet's current span chain.
func terminal(k Kind) bool {
	switch k {
	case KindDelivered, KindCRCDrop, KindLinkDrop, KindSwitchDrop, KindDupDrop, KindNICEvict:
		return true
	}
	return false
}

// appendTS renders a nanosecond time as microseconds with fixed 3-decimal
// precision, keeping output byte-stable across runs.
func appendTS(dst []byte, t units.Time) []byte {
	us := t / 1000
	ns := t % 1000
	dst = strconv.AppendInt(dst, int64(us), 10)
	dst = append(dst, '.')
	if ns < 100 {
		dst = append(dst, '0')
	}
	if ns < 10 {
		dst = append(dst, '0')
	}
	return strconv.AppendInt(dst, int64(ns), 10)
}

func appendArgs(dst []byte, ev *Event) []byte {
	dst = append(dst, `"args":{"class":"`...)
	dst = append(dst, ev.Class.String()...)
	dst = append(dst, `","vc":`...)
	dst = strconv.AppendUint(dst, uint64(ev.VC), 10)
	dst = append(dst, `,"hop":`...)
	dst = strconv.AppendInt(dst, int64(ev.Hop), 10)
	dst = append(dst, `,"slack_ns":`...)
	dst = strconv.AppendInt(dst, int64(ev.Slack), 10)
	dst = append(dst, `,"size":`...)
	dst = strconv.AppendInt(dst, int64(ev.Size), 10)
	dst = append(dst, '}')
	return dst
}

// chromeWriter accumulates trace_event JSON with comma management.
type chromeWriter struct {
	w     io.Writer
	buf   []byte
	first bool
	err   error
}

func (cw *chromeWriter) event(body func(dst []byte) []byte) {
	if cw.err != nil {
		return
	}
	cw.buf = cw.buf[:0]
	if cw.first {
		cw.first = false
		cw.buf = append(cw.buf, "\n  "...)
	} else {
		cw.buf = append(cw.buf, ",\n  "...)
	}
	cw.buf = body(cw.buf)
	_, cw.err = cw.w.Write(cw.buf)
}

// WriteChromeTrace exports the recorded events as Chrome trace_event JSON.
// Load the file in Perfetto or chrome://tracing; each sampled packet is a
// named thread under the "packets" process.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return fmt.Errorf("trace: writing chrome trace: %w", err)
	}
	cw := &chromeWriter{w: w, first: true, buf: make([]byte, 0, 512)}

	cw.event(func(dst []byte) []byte {
		return append(dst, `{"ph":"M","pid":1,"name":"process_name","args":{"name":"packets"}}`...)
	})

	// Group event indices by packet, preserving recording (time) order
	// within each packet and first-appearance order across packets.
	byPkt := make(map[uint64][]int)
	var order []uint64
	events := t.Events()
	for i := range events {
		id := events[i].Pkt
		if _, ok := byPkt[id]; !ok {
			order = append(order, id)
		}
		byPkt[id] = append(byPkt[id], i)
	}

	for _, id := range order {
		idx := byPkt[id]
		first := &events[idx[0]]
		cw.event(func(dst []byte) []byte {
			dst = append(dst, `{"ph":"M","pid":1,"tid":`...)
			dst = strconv.AppendUint(dst, id, 10)
			dst = append(dst, `,"name":"thread_name","args":{"name":"pkt `...)
			dst = strconv.AppendUint(dst, id, 10)
			dst = append(dst, ' ')
			dst = append(dst, first.Class.String()...)
			dst = append(dst, " f"...)
			dst = strconv.AppendUint(dst, uint64(first.Flow), 10)
			dst = append(dst, ' ')
			dst = strconv.AppendInt(dst, int64(first.Src), 10)
			dst = append(dst, "->"...)
			dst = strconv.AppendInt(dst, int64(first.Dst), 10)
			dst = append(dst, `"}}`...)
			return dst
		})

		// Walk the packet's events, turning consecutive span-opening
		// events into complete ("X") slices and everything notable into
		// instant ("i") markers.
		openName := ""
		var openAt units.Time
		var openEv *Event
		closeSpan := func(until units.Time) {
			if openName == "" {
				return
			}
			name, start, src := openName, openAt, openEv
			openName = ""
			cw.event(func(dst []byte) []byte {
				dst = append(dst, `{"ph":"X","pid":1,"tid":`...)
				dst = strconv.AppendUint(dst, id, 10)
				dst = append(dst, `,"name":"`...)
				dst = append(dst, name...)
				dst = append(dst, `","ts":`...)
				dst = appendTS(dst, start)
				dst = append(dst, `,"dur":`...)
				dst = appendTS(dst, until-start)
				dst = append(dst, ',')
				dst = appendArgs(dst, src)
				dst = append(dst, '}')
				return dst
			})
		}
		for _, i := range idx {
			ev := &events[i]
			if name := spanName(ev); name != "" {
				closeSpan(ev.T)
				openName, openAt, openEv = name, ev.T, ev
				continue
			}
			if terminal(ev.Kind) {
				closeSpan(ev.T)
			}
			cw.event(func(dst []byte) []byte {
				dst = append(dst, `{"ph":"i","s":"t","pid":1,"tid":`...)
				dst = strconv.AppendUint(dst, id, 10)
				dst = append(dst, `,"name":"`...)
				dst = append(dst, ev.Kind.String()...)
				dst = append(dst, `","ts":`...)
				dst = appendTS(dst, ev.T)
				dst = append(dst, ',')
				dst = appendArgs(dst, ev)
				dst = append(dst, '}')
				return dst
			})
		}
		// A span left open (packet still in flight at the horizon) is
		// closed at its own start: zero-duration, but visible.
		closeSpan(openAt)
	}
	if cw.err != nil {
		return fmt.Errorf("trace: writing chrome trace: %w", cw.err)
	}
	if _, err := io.WriteString(w, "\n]}\n"); err != nil {
		return fmt.Errorf("trace: writing chrome trace: %w", err)
	}
	return nil
}
