package trace

import (
	"bytes"
	"strings"
	"testing"

	"deadlineqos/internal/units"
)

func flightEvent(i int) Event {
	return Event{T: units.Time(i * 10), Kind: KindInjected, Pkt: uint64(i), Node: i % 4, Port: -1, Out: -1}
}

// TestFlightRingWindow: the ring keeps exactly the last cap events
// before a trip plus cap/4 of aftermath, then freezes.
func TestFlightRingWindow(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 100; i++ {
		f.record(flightEvent(i))
	}
	evs := f.Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	if evs[0].Pkt != 92 || evs[7].Pkt != 99 {
		t.Fatalf("ring window [%d..%d], want [92..99]", evs[0].Pkt, evs[7].Pkt)
	}

	f.Trip("test", 123)
	for i := 100; i < 200; i++ {
		f.record(flightEvent(i))
	}
	evs = f.Events()
	// Grace is cap/4 = 2: events 100 and 101 recorded, then frozen.
	if last := evs[len(evs)-1].Pkt; last != 101 {
		t.Fatalf("last event after freeze is %d, want 101", last)
	}
	if tripped, reason, at := f.Tripped(); !tripped || reason != "test" || at != 123 {
		t.Fatalf("trip state = (%v, %q, %v)", tripped, reason, at)
	}
	// Second trip must not win.
	f.Trip("later", 999)
	if _, reason, _ := f.Tripped(); reason != "test" {
		t.Fatalf("later trip overwrote the first: %q", reason)
	}
}

// TestFlightAbsorb: shard rings fold into the root; the earliest trip
// wins regardless of absorb order.
func TestFlightAbsorb(t *testing.T) {
	for _, order := range [][2]int{{0, 1}, {1, 0}} {
		root := NewFlightRecorder(16)
		shards := []*FlightRecorder{root.Clone(), root.Clone()}
		shards[0].record(flightEvent(1))
		shards[0].Trip("late", 500)
		shards[1].record(flightEvent(2))
		shards[1].Trip("early", 100)
		root.Absorb(shards[order[0]])
		root.Absorb(shards[order[1]])
		if _, reason, at := root.Tripped(); reason != "early" || at != 100 {
			t.Fatalf("absorb order %v: trip (%q, %v), want (early, 100)", order, reason, at)
		}
		if len(root.Events()) != 2 {
			t.Fatalf("absorb order %v: %d events, want 2", order, len(root.Events()))
		}
	}
}

// TestFlightViaTracer: a full-sampling discard tracer feeds the ring
// without storing events, and Clone/Absorb carry the ring along.
func TestFlightViaTracer(t *testing.T) {
	f := NewFlightRecorder(32)
	tr, err := New(Config{SampleRate: 1, Seed: 7, Flight: f, DiscardEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := tr.Clone(), tr.Clone()
	for i := 0; i < 10; i++ {
		c1.Record(flightEvent(i))
		c2.Record(flightEvent(100 + i))
	}
	if len(tr.Events()) != 0 {
		t.Fatal("DiscardEvents tracer stored events")
	}
	c2.Flight().Trip("slo", 42)
	tr.Absorb(c1)
	tr.Absorb(c2)
	if tripped, reason, _ := tr.Flight().Tripped(); !tripped || reason != "slo" {
		t.Fatalf("trip did not propagate: (%v, %q)", tripped, reason)
	}
	var buf bytes.Buffer
	if err := tr.Flight().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, `{"flightrec":1,"tripped":true,"reason":"slo","tripped_at":42,"events":20}`) {
		t.Fatalf("meta line wrong:\n%s", out[:min(len(out), 200)])
	}
	if got := strings.Count(out, "\n"); got != 21 {
		t.Fatalf("%d lines, want 21 (meta + 20 events)", got)
	}
	// Event lines are in canonical (time, bytes) order.
	lines := strings.Split(strings.TrimSpace(out), "\n")[1:]
	var prev string
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"t":`) {
			t.Fatalf("bad event line %q", l)
		}
		_ = prev
		prev = l
	}
}
