package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"deadlineqos/internal/units"
)

// Time-series telemetry: periodic probes of per-switch/per-port queue
// state, credit balance, take-over and order-error activity, plus engine
// progress. The network layer fills these containers on a fixed probe
// interval; the containers only hold and serialise the samples, so they
// can be consumed from tests, CLIs and notebooks alike.

// PortSample is one probe of one switch port. Occupancy covers both
// directions of the port: the input side's VOQs and the output side's
// buffers. Rates are per-second over the interval since the previous
// probe.
type PortSample struct {
	T      units.Time `json:"t"`
	Switch int        `json:"switch"`
	Port   int        `json:"port"`
	// Occupancy at the probe instant.
	InPackets  int        `json:"in_packets"`
	InBytes    units.Size `json:"in_bytes"`
	OutPackets int        `json:"out_packets"`
	OutBytes   units.Size `json:"out_bytes"`
	// CreditBytes is the sender-side credit balance of the port's
	// outgoing link, summed over VCs (how many bytes the port may still
	// push downstream before stalling).
	CreditBytes units.Size `json:"credit_bytes"`
	// Cumulative take-over diversions and order errors on the port's
	// buffers, plus their rates since the previous probe.
	TakeOvers    uint64  `json:"takeovers"`
	OrderErrors  uint64  `json:"order_errors"`
	TakeOverRate float64 `json:"takeover_per_sec"`
	OrderErrRate float64 `json:"order_err_per_sec"`
	// LinkUtilization is the fraction of the interval the outgoing link
	// spent transmitting.
	LinkUtilization float64 `json:"link_utilization"`
}

// EngineSample is one probe of simulation progress.
type EngineSample struct {
	T units.Time `json:"t"`
	// Events is the cumulative count of fired events; Pending the event
	// queue depth at the probe.
	Events  uint64 `json:"events"`
	Pending int    `json:"pending"`
	// EventRate is fired events per simulated second since the previous
	// probe.
	EventRate float64 `json:"events_per_sim_sec"`
}

// SessionSample is one probe of one CAC entity of the dynamic session
// subsystem — the root manager (Pod -1) or one pod delegate — taken on
// the shard owning the entity's host (all sampled state lives there, so
// the (T, Pod, Host)-sorted series is identical at every shard count).
type SessionSample struct {
	T units.Time `json:"t"`
	// Pod is the entity's leaf switch, -1 for the root manager; Host is
	// the CAC host the row samples.
	Pod  int `json:"pod"`
	Host int `json:"host"`
	// Active is the number of granted, not-yet-released sessions;
	// ReservedBW their reserved bandwidth sum in bytes/ns.
	Active     int     `json:"active"`
	ReservedBW float64 `json:"reserved_bw"`
	// Cumulative CAC decisions of this entity up to the probe (a
	// delegate's Accepted counts its local grants).
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	Revoked  uint64 `json:"revoked"`
	// Lease state (delegates only): the leased capacity fraction and the
	// worst reserved-to-lease utilisation across the pod's links.
	LeaseFrac float64 `json:"lease_frac"`
	LeaseUtil float64 `json:"lease_util"`
	// Control-queue occupancy at the probe and cumulative setups shed.
	QueueDepth int    `json:"queue_depth"`
	Shed       uint64 `json:"shed"`
}

// Telemetry holds a run's time series.
type Telemetry struct {
	Interval units.Time      `json:"interval_ns"`
	Ports    []PortSample    `json:"ports,omitempty"`
	Engine   []EngineSample  `json:"engine,omitempty"`
	Sessions []SessionSample `json:"sessions,omitempty"`
}

// Absorb appends other's samples into t. Used by the sharded network,
// which probes each shard's switches on that shard's engine; call Sort
// after the last Absorb to restore the sequential probe order.
func (t *Telemetry) Absorb(other *Telemetry) {
	if other == nil {
		return
	}
	t.Ports = append(t.Ports, other.Ports...)
	t.Engine = append(t.Engine, other.Engine...)
	t.Sessions = append(t.Sessions, other.Sessions...)
}

// Sort orders the port series by (time, switch, port) — exactly the order
// a sequential probe pass appends in, since each tick walks switches and
// ports in index order — and the engine series by time.
func (t *Telemetry) Sort() {
	sort.SliceStable(t.Ports, func(i, j int) bool {
		a, b := &t.Ports[i], &t.Ports[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		return a.Port < b.Port
	})
	sort.SliceStable(t.Engine, func(i, j int) bool { return t.Engine[i].T < t.Engine[j].T })
	sort.SliceStable(t.Sessions, func(i, j int) bool {
		a, b := &t.Sessions[i], &t.Sessions[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Pod != b.Pod {
			return a.Pod < b.Pod
		}
		return a.Host < b.Host
	})
}

// WriteSessionsCSV writes the session series as CSV.
func (t *Telemetry) WriteSessionsCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"t_ns,pod,host,active,reserved_bw,accepted,rejected,revoked,lease_frac,lease_util,queue_depth,shed\n"); err != nil {
		return fmt.Errorf("trace: writing session CSV: %w", err)
	}
	buf := make([]byte, 0, 160)
	for i := range t.Sessions {
		s := &t.Sessions[i]
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(s.T), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.Pod), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.Host), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.Active), 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, s.ReservedBW, 'g', 9, 64)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, s.Accepted, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, s.Rejected, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, s.Revoked, 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, s.LeaseFrac, 'g', 9, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, s.LeaseUtil, 'g', 9, 64)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.QueueDepth), 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, s.Shed, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("trace: writing session CSV: %w", err)
		}
	}
	return nil
}

// WriteCSV writes the per-port series as CSV (one row per port per
// probe), ready for pandas/gnuplot.
func (t *Telemetry) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"t_ns,switch,port,in_packets,in_bytes,out_packets,out_bytes,credit_bytes,takeovers,order_errors,takeover_per_sec,order_err_per_sec,link_utilization\n"); err != nil {
		return fmt.Errorf("trace: writing telemetry CSV: %w", err)
	}
	buf := make([]byte, 0, 160)
	for i := range t.Ports {
		s := &t.Ports[i]
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(s.T), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.Switch), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.Port), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.InPackets), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.InBytes), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.OutPackets), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.OutBytes), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.CreditBytes), 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, s.TakeOvers, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, s.OrderErrors, 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, s.TakeOverRate, 'g', 6, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, s.OrderErrRate, 'g', 6, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, s.LinkUtilization, 'f', 4, 64)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("trace: writing telemetry CSV: %w", err)
		}
	}
	return nil
}

// WriteJSON serialises the full telemetry (ports + engine series).
func (t *Telemetry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: writing telemetry JSON: %w", err)
	}
	return nil
}

// Profile summarises one run's engine performance: how fast the simulator
// chewed through events and what it cost in wall clock and allocations.
// Allocation counters are process-wide deltas around the run — accurate
// for a single-run process (cmd/qostrace, benchmarks), approximate when
// other goroutines allocate concurrently (parallel harness sweeps).
type Profile struct {
	Events       uint64  `json:"events"`
	MaxPending   int     `json:"max_pending"`
	SimulatedNs  int64   `json:"simulated_ns"`
	WallNs       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	// WallPerSimSec is wall-clock seconds spent per simulated second.
	WallPerSimSec float64 `json:"wall_per_sim_sec"`
	Mallocs       uint64  `json:"mallocs"`
	AllocBytes    uint64  `json:"alloc_bytes"`
	// MallocsPerEvent / AllocBytesPerEvent normalise the allocation
	// counters per executed event — the steady-state allocation pressure
	// of the hot loop, the number the perf-regression gate watches
	// alongside events_per_sec.
	MallocsPerEvent    float64 `json:"mallocs_per_event"`
	AllocBytesPerEvent float64 `json:"alloc_bytes_per_event"`
}

// Finalize derives the rate fields from the raw counters.
func (p *Profile) Finalize() {
	if p.WallNs > 0 {
		p.EventsPerSec = float64(p.Events) / (float64(p.WallNs) / 1e9)
	}
	if p.SimulatedNs > 0 {
		p.WallPerSimSec = float64(p.WallNs) / float64(p.SimulatedNs)
	}
	if p.Events > 0 {
		p.MallocsPerEvent = float64(p.Mallocs) / float64(p.Events)
		p.AllocBytesPerEvent = float64(p.AllocBytes) / float64(p.Events)
	}
}

// String renders the profile as a one-line report.
func (p *Profile) String() string {
	return fmt.Sprintf(
		"events=%d maxPending=%d wall=%.1fms sim=%v rate=%.2fM ev/s wall/sim=%.1f allocs=%d (%.1f MiB, %.3f/ev)",
		p.Events, p.MaxPending, float64(p.WallNs)/1e6, units.Time(p.SimulatedNs),
		p.EventsPerSec/1e6, p.WallPerSimSec, p.Mallocs, float64(p.AllocBytes)/(1<<20),
		p.MallocsPerEvent)
}
