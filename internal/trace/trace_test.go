package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

func TestSampleIDDeterministic(t *testing.T) {
	a, err := New(Config{SampleRate: 0.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(Config{SampleRate: 0.3, Seed: 42})
	for id := uint64(0); id < 10000; id++ {
		if a.SampleID(id) != b.SampleID(id) {
			t.Fatalf("sampling decision for id %d differs between identical tracers", id)
		}
	}
	c, _ := New(Config{SampleRate: 0.3, Seed: 43})
	diff := 0
	for id := uint64(0); id < 10000; id++ {
		if a.SampleID(id) != c.SampleID(id) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds selected identical sample sets")
	}
}

func TestSampleIDRate(t *testing.T) {
	cases := []struct {
		rate   float64
		lo, hi int
	}{
		{0, 0, 0},
		{1, 10000, 10000},
		{0.25, 2000, 3000}, // generous bounds around 2500
	}
	for _, c := range cases {
		tr, err := New(Config{SampleRate: c.rate, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for id := uint64(0); id < 10000; id++ {
			if tr.SampleID(id) {
				n++
			}
		}
		if n < c.lo || n > c.hi {
			t.Errorf("rate %v: sampled %d of 10000, want [%d, %d]", c.rate, n, c.lo, c.hi)
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.SampleID(5) {
		t.Error("nil tracer sampled a packet")
	}
	tr.Record(Event{Kind: KindDelivered}) // must not panic
	if tr.Events() != nil || tr.Dropped() != 0 || tr.SampledPackets() != 0 || tr.HopSlack() != nil {
		t.Error("nil tracer reported non-empty state")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil tracer WriteJSONL: %v", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{SampleRate: -0.1}); err == nil {
		t.Error("negative sample rate accepted")
	}
	if _, err := New(Config{SampleRate: 1.5}); err == nil {
		t.Error("sample rate > 1 accepted")
	}
	if _, err := New(Config{MaxEvents: -1}); err == nil {
		t.Error("negative event cap accepted")
	}
}

func TestMaxEventsCap(t *testing.T) {
	tr, err := New(Config{SampleRate: 1, MaxEvents: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tr.Record(Event{T: 1, Kind: KindGenerated, Pkt: uint64(i)})
	}
	if got := len(tr.Events()); got != 3 {
		t.Errorf("stored %d events, want 3", got)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped %d events, want 2", tr.Dropped())
	}
}

func sampleEvents() []Event {
	return []Event{
		{T: 100, Kind: KindGenerated, Pkt: 9, Flow: 2, Class: packet.Control, VC: 0, Src: 1, Dst: 5, Node: 1, Port: -1, Out: -1, Hop: 0, Slack: 5000, Size: 64},
		{T: 160, Kind: KindInjected, Pkt: 9, Flow: 2, Class: packet.Control, VC: 0, Src: 1, Dst: 5, Node: 1, Port: -1, Out: -1, Hop: 0, Slack: 4940, Size: 64},
		{T: 400, Kind: KindVOQEnqueue, Pkt: 9, Flow: 2, Class: packet.Control, VC: 0, Src: 1, Dst: 5, Node: 0, Port: 1, Out: 5, Hop: 0, Slack: 4700, Size: 64},
		{T: 500, Kind: KindVOQDequeue, Pkt: 9, Flow: 2, Class: packet.Control, VC: 0, Src: 1, Dst: 5, Node: 0, Port: 1, Out: 5, Hop: 0, Slack: 4600, Size: 64},
		{T: 520, Kind: KindTakeOver, Pkt: 9, Flow: 2, Class: packet.Control, VC: 0, Src: 1, Dst: 5, Node: 0, Port: 5, Out: -1, Hop: 0, Slack: 4580, Size: 64},
		{T: 560, Kind: KindOutputEnqueue, Pkt: 9, Flow: 2, Class: packet.Control, VC: 0, Src: 1, Dst: 5, Node: 0, Port: 5, Out: -1, Hop: 0, Slack: 4540, Size: 64},
		{T: 600, Kind: KindLinkTx, Pkt: 9, Flow: 2, Class: packet.Control, VC: 0, Src: 1, Dst: 5, Node: 0, Port: 5, Out: -1, Hop: 0, Slack: 4500, Size: 64},
		{T: 900, Kind: KindDelivered, Pkt: 9, Flow: 2, Class: packet.Control, VC: 0, Src: 1, Dst: 5, Node: 5, Port: -1, Out: -1, Hop: 1, Slack: 4200, Size: 64},
	}
}

func TestWriteJSONLStableAndValid(t *testing.T) {
	render := func() string {
		tr, _ := New(Config{SampleRate: 1})
		for _, ev := range sampleEvents() {
			tr.Record(ev)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("identical event streams rendered different JSONL")
	}
	lines := strings.Split(strings.TrimSuffix(a, "\n"), "\n")
	if len(lines) != len(sampleEvents()) {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), len(sampleEvents()))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if first["k"] != "gen" || first["pkt"] != float64(9) || first["slack"] != float64(5000) {
		t.Errorf("unexpected first line fields: %v", first)
	}
}

func TestHopSlackAggregation(t *testing.T) {
	tr, _ := New(Config{SampleRate: 1})
	for _, s := range []struct {
		hop   int
		slack int64
	}{{0, 100}, {0, 300}, {1, -50}} {
		tr.Record(Event{Kind: KindVOQDequeue, Hop: s.hop, Slack: units.Time(s.slack)})
	}
	hs := tr.HopSlack()
	if len(hs) != 2 {
		t.Fatalf("got %d hop entries, want 2", len(hs))
	}
	h0 := hs[0]
	if h0.Hop != 0 || h0.Count != 2 || h0.MeanNs != 200 || h0.MinNs != 100 || h0.MaxNs != 300 {
		t.Errorf("hop 0 aggregate wrong: %+v", h0)
	}
	h1 := hs[1]
	if h1.Hop != 1 || h1.Count != 1 || h1.MinNs != -50 {
		t.Errorf("hop 1 aggregate wrong: %+v", h1)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr, _ := New(Config{SampleRate: 1})
	for _, ev := range sampleEvents() {
		tr.Record(ev)
	}
	// A second packet that dies to a CRC drop mid-flight, then a
	// retransmit instant, exercising the terminal/instant paths.
	tr.Record(Event{T: 1000, Kind: KindGenerated, Pkt: 11, Class: packet.BestEffort, Node: 2, Port: -1, Out: -1})
	tr.Record(Event{T: 1100, Kind: KindCRCDrop, Pkt: 11, Class: packet.BestEffort, Node: 6, Port: -1, Out: -1})
	tr.Record(Event{T: 1200, Kind: KindRetransmit, Pkt: 11, Class: packet.BestEffort, Node: 2, Port: -1, Out: -1})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var slices, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete slice without dur: %v", ev)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	// Packet 9: spans gen→inject→voq-enq→voq-deq→out-enq→link-tx closed
	// by deliver (6 slices) + takeover & deliver instants. Packet 11:
	// gen span closed by crc-drop (1 slice) + crc-drop & retx instants.
	if slices != 7 {
		t.Errorf("got %d complete slices, want 7", slices)
	}
	if instants != 4 {
		t.Errorf("got %d instants, want 4", instants)
	}
	if meta != 3 { // process_name + 2 thread_names
		t.Errorf("got %d metadata events, want 3", meta)
	}
}

func TestTelemetryWriters(t *testing.T) {
	tel := &Telemetry{
		Interval: 1000,
		Ports: []PortSample{
			{T: 1000, Switch: 0, Port: 2, InPackets: 3, InBytes: 384, OutPackets: 1, OutBytes: 128,
				CreditBytes: 2048, TakeOvers: 4, OrderErrors: 1, TakeOverRate: 4e6, OrderErrRate: 1e6, LinkUtilization: 0.75},
		},
		Engine: []EngineSample{{T: 1000, Events: 500, Pending: 12, EventRate: 5e8}},
	}
	var csv bytes.Buffer
	if err := tel.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1000,0,2,3,384,1,128,2048,4,1,") {
		t.Errorf("unexpected CSV row: %q", lines[1])
	}
	var js bytes.Buffer
	if err := tel.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Telemetry
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("telemetry JSON round-trip: %v", err)
	}
	if len(back.Ports) != 1 || back.Ports[0].CreditBytes != 2048 {
		t.Errorf("telemetry JSON round-trip lost data: %+v", back)
	}
}

func TestProfileFinalize(t *testing.T) {
	p := &Profile{Events: 2_000_000, SimulatedNs: 10_000_000, WallNs: 500_000_000}
	p.Finalize()
	if p.EventsPerSec != 4e6 {
		t.Errorf("EventsPerSec = %v, want 4e6", p.EventsPerSec)
	}
	if p.WallPerSimSec != 50 {
		t.Errorf("WallPerSimSec = %v, want 50", p.WallPerSimSec)
	}
	if s := p.String(); !strings.Contains(s, "rate=4.00M ev/s") {
		t.Errorf("profile string missing rate: %q", s)
	}
}
