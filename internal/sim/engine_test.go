package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"deadlineqos/internal/units"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []units.Time
	for _, at := range []units.Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Drain()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	e := New()
	var at50, at70 units.Time
	e.At(50, func() { at50 = e.Now() })
	e.After(70, func() { at70 = e.Now() })
	e.Drain()
	if at50 != 50 || at70 != 70 {
		t.Fatalf("Now inside events = %v, %v; want 50, 70", at50, at70)
	}
}

func TestAfterIsRelative(t *testing.T) {
	e := New()
	var fired units.Time
	e.At(100, func() {
		e.After(25, func() { fired = e.Now() })
	})
	e.Drain()
	if fired != 125 {
		t.Fatalf("After(25) from t=100 fired at %v, want 125", fired)
	}
}

func TestRunHorizon(t *testing.T) {
	e := New()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	e.Run(20)
	if fired != 2 {
		t.Fatalf("Run(20) fired %d events, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock at %v after Run(20), want 20", e.Now())
	}
	e.Run(100)
	if fired != 3 {
		t.Fatalf("resumed run fired %d total, want 3", fired)
	}
}

func TestRunAdvancesClockWhenQueueDrains(t *testing.T) {
	e := New()
	e.At(5, func() {})
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock = %v after draining Run(1000), want 1000", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.At(10, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle not pending after scheduling")
	}
	if !e.Cancel(h) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if h.Pending() {
		t.Fatal("handle still pending after cancel")
	}
	if e.Cancel(h) {
		t.Fatal("double Cancel returned true")
	}
	e.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	var hs []Handle
	for i := 0; i < 20; i++ {
		i := i
		hs = append(hs, e.At(units.Time(i*10), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		e.Cancel(hs[i])
	}
	e.Drain()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("fired %d events, want 13", len(got))
	}
}

func TestStop(t *testing.T) {
	e := New()
	fired := 0
	e.At(10, func() { fired++; e.Stop() })
	e.At(20, func() { fired++ })
	e.Run(1000)
	if fired != 1 {
		t.Fatalf("Stop did not halt the run: fired = %d", fired)
	}
	// A subsequent Run resumes.
	e.Run(1000)
	if fired != 2 {
		t.Fatalf("run after Stop fired %d total, want 2", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Drain()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.At(units.Time(i), func() {})
	}
	e.Drain()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestCascadingEvents(t *testing.T) {
	// Events scheduled by events must fire; model a chain of packet hops.
	e := New()
	depth := 0
	var hop func()
	hop = func() {
		depth++
		if depth < 100 {
			e.After(3, hop)
		}
	}
	e.At(0, hop)
	e.Drain()
	if depth != 100 {
		t.Fatalf("cascade depth = %d, want 100", depth)
	}
	if e.Now() != 297 {
		t.Fatalf("clock = %v, want 297", e.Now())
	}
}

func TestOrderPropertyRandomSchedules(t *testing.T) {
	// Property: for any batch of scheduled times, execution order is a
	// stable sort of the schedule by time.
	prop := func(times []uint16) bool {
		e := New()
		type rec struct {
			at  units.Time
			seq int
		}
		var got []rec
		for i, raw := range times {
			at := units.Time(raw)
			i := i
			e.At(at, func() { got = append(got, rec{at, i}) })
		}
		e.Drain()
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false // FIFO tie-break violated
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHandleInvalidAfterFire(t *testing.T) {
	// Events are recycled through a free list; a handle to a fired event
	// must not report Pending even after its Event struct is reused.
	e := New()
	h1 := e.At(10, func() {})
	e.Run(20)
	if h1.Pending() {
		t.Fatal("handle pending after event fired")
	}
	// Reuse the freed Event for a new schedule; the old handle must stay
	// invalid and must not cancel the new event.
	h2 := e.At(30, func() {})
	if h1.Pending() {
		t.Fatal("stale handle revived by recycling")
	}
	if e.Cancel(h1) {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if !h2.Pending() {
		t.Fatal("new handle not pending")
	}
}

func TestFreeListRecyclingKeepsOrder(t *testing.T) {
	// Hammer schedule/fire cycles through the free list and verify order
	// never degrades.
	e := New()
	fired := 0
	var last units.Time = -1
	var step func()
	step = func() {
		now := e.Now()
		if now < last {
			t.Fatalf("time went backwards: %v after %v", now, last)
		}
		last = now
		fired++
		if fired < 5000 {
			e.After(units.Time(1+fired%7), step)
		}
	}
	e.At(0, func() { step() })
	e.Drain()
	if fired != 5000 {
		t.Fatalf("fired %d, want 5000", fired)
	}
}

func TestManyPendingEventsOrdered(t *testing.T) {
	// A large 4-ary heap with random times must still fire in order.
	e := New()
	r := uint64(12345)
	next := func() uint64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return r
	}
	var prev units.Time = -1
	for i := 0; i < 20000; i++ {
		at := units.Time(next() % 1_000_000)
		e.At(at, func() {
			if e.Now() < prev {
				t.Fatalf("out of order: %v after %v", e.Now(), prev)
			}
			prev = e.Now()
		})
	}
	e.Drain()
}

func TestCancelStressRandom(t *testing.T) {
	// Randomly cancel half the events; the remainder must all fire in
	// order and none of the cancelled may fire.
	e := New()
	r := uint64(99)
	next := func() uint64 { r ^= r << 13; r ^= r >> 7; r ^= r << 17; return r }
	firedSet := make(map[int]bool)
	var handles []Handle
	var cancelled []bool
	for i := 0; i < 5000; i++ {
		i := i
		h := e.At(units.Time(next()%100000), func() { firedSet[i] = true })
		handles = append(handles, h)
		cancelled = append(cancelled, false)
	}
	for i := range handles {
		if next()%2 == 0 {
			if e.Cancel(handles[i]) {
				cancelled[i] = true
			}
		}
	}
	e.Drain()
	for i := range handles {
		if cancelled[i] && firedSet[i] {
			t.Fatalf("cancelled event %d fired", i)
		}
		if !cancelled[i] && !firedSet[i] {
			t.Fatalf("live event %d never fired", i)
		}
	}
}

func TestStoppedAccessor(t *testing.T) {
	e := New()
	if e.Stopped() {
		t.Fatal("fresh engine reports Stopped")
	}
	e.At(10, func() { e.Stop() })
	e.At(20, func() {})
	e.Run(100)
	if !e.Stopped() {
		t.Fatal("Stopped() false after a run halted by Stop")
	}
	// Run clears the flag on entry: the next call resumes and, without a
	// new Stop, completes the horizon.
	e.Run(100)
	if e.Stopped() {
		t.Fatal("Stopped() still true after a clean resumed run")
	}
	if e.Now() != 100 {
		t.Fatalf("resumed run ended at %v, want 100", e.Now())
	}
}

func TestAtNowFIFOTieBreak(t *testing.T) {
	// Events scheduled for the current instant from inside an event fire in
	// scheduling (FIFO) order, after the running event — the property the
	// parallel shard-merge rule leans on.
	e := New()
	var got []int
	e.At(50, func() {
		for i := 0; i < 5; i++ {
			i := i
			e.At(e.Now(), func() { got = append(got, i) })
		}
	})
	e.At(50, func() { got = append(got, 99) }) // scheduled earlier => fires first
	e.Drain()
	want := []int{99, 0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("same-cycle order %v, want %v", got, want)
		}
	}
}

func TestAtChannelOrderBeatsSeq(t *testing.T) {
	// At one instant the channel id outranks scheduling order: that is what
	// lets a sharded run reproduce the sequential order of cross-shard
	// arrivals. Channel 0 (plain At) sorts first.
	e := New()
	var got []int
	e.AtChannel(10, 7, func() { got = append(got, 7) })
	e.AtChannel(10, 3, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 0) })
	e.AtChannel(10, 3, func() { got = append(got, 4) }) // same channel: FIFO
	e.Drain()
	want := []int{0, 3, 4, 7}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("channel order %v, want %v", got, want)
		}
	}
}

func TestCancelRecycledHandleStaleGen(t *testing.T) {
	// A handle whose event has fired and been recycled (possibly several
	// times) must never cancel the slot's new occupant: the generation
	// counter, not the slot index, is the identity.
	e := New()
	stale := e.At(1, func() {})
	e.Run(5)
	// Cycle the freed slot through several reuse generations.
	for i := 0; i < 3; i++ {
		h := e.At(units.Time(10+i), func() {})
		if stale.Pending() {
			t.Fatalf("stale handle pending after %d recycles", i)
		}
		if e.Cancel(stale) {
			t.Fatalf("stale handle cancelled generation %d occupant", i)
		}
		if !h.Pending() {
			t.Fatalf("live handle of generation %d not pending", i)
		}
		e.Run(units.Time(10 + i))
	}
	fired := false
	live := e.At(100, func() { fired = true })
	if e.Cancel(stale) {
		t.Fatal("stale handle cancelled the live event")
	}
	e.Drain()
	if !fired {
		t.Fatal("live event killed by a stale-handle Cancel")
	}
	if live.Pending() {
		t.Fatal("live handle still pending after firing")
	}
}

func TestPeekTime(t *testing.T) {
	e := New()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime ok on an empty engine")
	}
	e.At(30, func() {})
	e.At(10, func() {})
	if at, ok := e.PeekTime(); !ok || at != 10 {
		t.Fatalf("PeekTime = %v, %v; want 10, true", at, ok)
	}
	e.Run(10)
	if at, ok := e.PeekTime(); !ok || at != 30 {
		t.Fatalf("PeekTime after partial run = %v, %v; want 30, true", at, ok)
	}
	e.Drain()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime ok after drain")
	}
}
