// Package sim implements the discrete-event simulation engine that drives
// the network model.
//
// The engine maintains a clock in cycles (see internal/units) and a pending
// event set ordered by (firing time, channel, scheduling order): same-cycle
// events on the same channel fire in scheduling order (FIFO tie-break),
// which makes runs fully deterministic — the same configuration and seed
// always produce the identical event trace. One Engine runs on a single
// goroutine; a large simulation can span cores by partitioning the model
// across several engines with internal/parsim, whose channel-keyed merge
// rule reproduces the sequential order exactly.
//
// Implementation notes: simulations execute tens of millions of events, so
// the pending set is a hand-rolled 4-ary heap (shallower than a binary heap,
// fewer cache misses per sift) and fired Event records are recycled through
// a free list to keep the scheduler allocation-free in steady state.
// Time-performance-sensitive code lives here; everything else in the
// simulator favours clarity.
package sim

import (
	"fmt"

	"deadlineqos/internal/metrics"
	"deadlineqos/internal/units"
)

// Event is a scheduled callback. Events are owned and recycled by the
// Engine; user code refers to them through Handles.
type Event struct {
	at  units.Time
	seq uint64 // FIFO tie-break among same-cycle, same-channel events
	fn  func()
	idx int    // heap index, -1 when not queued
	gen uint32 // incremented on recycle, invalidating stale Handles
	ch  uint32 // ordering channel; 0 for plain At/After events
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is a valid "no event" handle.
type Handle struct {
	ev  *Event
	gen uint32
}

// Pending reports whether the handle refers to an event that has not yet
// fired or been cancelled.
func (h Handle) Pending() bool { return h.ev != nil && h.ev.gen == h.gen && h.ev.idx >= 0 }

// Engine is a discrete-event simulator core. It is not safe for concurrent
// use; each simulation run owns one Engine on one goroutine.
type Engine struct {
	now        units.Time
	heap       []*Event
	free       []*Event
	nextSeq    uint64
	stopped    bool
	fired      uint64
	maxPending int
	// evCnt, when set, counts every executed event into the metrics
	// plane. Nil (the default) costs one pointer check per event in the
	// Run/Drain loops — the same disabled-observer contract the trace
	// hooks follow.
	evCnt *metrics.Counter
}

// New returns an Engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Fired returns the number of events executed so far. It is useful for
// performance accounting in the benchmark harness.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

// MaxPending returns the high-water mark of the pending event set over the
// engine's lifetime — the profiling proxy for scheduler memory pressure.
func (e *Engine) MaxPending() int { return e.maxPending }

// SetEventCounter installs (or, with nil, removes) a metrics counter
// bumped once per executed event. The engine is the simulator's hottest
// loop; the counter is a plain shard-local increment and the disabled
// path is a single nil check.
func (e *Engine) SetEventCounter(c *metrics.Counter) { e.evCnt = c }

// less orders events by (time, channel, seq). The channel component exists
// for the parallel engine (internal/parsim): events that may cross a shard
// boundary — link arrivals, credit returns, receiver reports — are keyed by
// a globally unique channel id, so their position among same-cycle events
// is a pure function of (time, channel) rather than of the engine-local seq
// counter. Within one channel, and among all channel-0 events, the seq FIFO
// tie-break applies as before. A sequential run and a sharded run therefore
// execute the exact same total order.
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.ch != b.ch {
		return a.ch < b.ch
	}
	return a.seq < b.seq
}

// siftUp restores heap order from index i upward.
func (e *Engine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := e.heap[parent]
		if !less(ev, p) {
			break
		}
		e.heap[i] = p
		p.idx = i
		i = parent
	}
	e.heap[i] = ev
	ev.idx = i
}

// siftDown restores heap order from index i downward.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	ev := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(e.heap[c], e.heap[min]) {
				min = c
			}
		}
		if !less(e.heap[min], ev) {
			break
		}
		e.heap[i] = e.heap[min]
		e.heap[i].idx = i
		i = min
	}
	e.heap[i] = ev
	ev.idx = i
}

// pop removes and returns the earliest event.
func (e *Engine) pop() *Event {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[0].idx = 0
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
	top.idx = -1
	return top
}

// remove deletes the event at heap index i.
func (e *Engine) remove(i int) {
	n := len(e.heap) - 1
	ev := e.heap[i]
	if i != n {
		moved := e.heap[n]
		e.heap[i] = moved
		moved.idx = i
		e.heap[n] = nil
		e.heap = e.heap[:n]
		if less(moved, ev) {
			e.siftUp(i)
		} else {
			e.siftDown(i)
		}
	} else {
		e.heap[n] = nil
		e.heap = e.heap[:n]
	}
	ev.idx = -1
}

// alloc takes an Event from the free list or allocates one.
func (e *Engine) alloc(at units.Time, fn func()) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = at
	ev.seq = e.nextSeq
	ev.fn = fn
	e.nextSeq++
	return ev
}

// recycle returns a fired or cancelled event to the free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.gen++
	if len(e.free) < 4096 {
		e.free = append(e.free, ev)
	}
}

// At schedules fn to run at absolute time at, on channel 0. Scheduling in
// the past (before Now) panics: it would silently corrupt causality.
// Same-cycle channel-0 events fire in scheduling order (FIFO).
func (e *Engine) At(at units.Time, fn func()) Handle {
	return e.schedule(at, 0, fn)
}

// AtChannel schedules fn at absolute time at on ordering channel ch.
// Same-cycle events fire in (channel, scheduling-order) order; see less.
// Channel ids are assigned by the network layer, one per directed link
// endpoint and receiver-report path, so the order of same-cycle events is
// identical whether they were scheduled on one engine or relayed between
// shard engines by internal/parsim.
func (e *Engine) AtChannel(at units.Time, ch uint32, fn func()) Handle {
	return e.schedule(at, ch, fn)
}

func (e *Engine) schedule(at units.Time, ch uint32, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.alloc(at, fn)
	ev.ch = ch
	ev.idx = len(e.heap)
	e.heap = append(e.heap, ev)
	if len(e.heap) > e.maxPending {
		e.maxPending = len(e.heap)
	}
	e.siftUp(ev.idx)
	return Handle{ev, ev.gen}
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay units.Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
func (e *Engine) Cancel(h Handle) bool {
	if !h.Pending() {
		return false
	}
	e.remove(h.ev.idx)
	e.recycle(h.ev)
	return true
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether the engine is in the stopped state: Stop was
// called and no Run/Drain call has cleared it since. Each Run and Drain
// call resets the flag on entry (the stop request is per-call, not
// sticky), so Stopped is meaningful between the return of a Run that was
// interrupted and the next Run — exactly the window internal/parsim needs
// to propagate a stop across shard engines.
func (e *Engine) Stopped() bool { return e.stopped }

// PeekTime returns the firing time of the earliest pending event. ok is
// false when no events are pending.
func (e *Engine) PeekTime() (at units.Time, ok bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// Run executes events in order until the queue is empty, Stop is called,
// or the next event would fire after until. The clock is left at the time
// of the last executed event, or advanced to until if the queue drained
// earlier (so that a subsequent Run(until2) resumes correctly).
//
// Reset semantics of Stop: the stopped flag is cleared at the top of every
// Run (and Drain) call, so a Stop only interrupts the call during which it
// fires. After an interrupted Run returns, Stopped reports true until the
// next Run/Drain clears it; calling Run again resumes execution from the
// current clock as if Stop had never happened.
func (e *Engine) Run(until units.Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 {
		next := e.heap[0]
		if next.at > until {
			e.now = until
			return
		}
		e.pop()
		e.now = next.at
		e.fired++
		if e.evCnt != nil {
			e.evCnt.Inc()
		}
		fn := next.fn
		e.recycle(next)
		fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Drain executes all remaining events regardless of time, leaving the
// clock at the last executed event. It is intended for tests; simulations
// should use Run with an explicit horizon.
func (e *Engine) Drain() {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 {
		next := e.pop()
		e.now = next.at
		e.fired++
		if e.evCnt != nil {
			e.evCnt.Inc()
		}
		fn := next.fn
		e.recycle(next)
		fn()
	}
}
