// Shared observability plumbing for the command-line tools: pprof
// profile flags and the live metrics server flag, spelled identically
// everywhere.

package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"deadlineqos/internal/metrics"
)

// Profile carries the shared -cpuprofile / -memprofile flag values and
// the open CPU-profile file between Start and Stop.
type Profile struct {
	cpu *string
	mem *string
	f   *os.File
}

// ProfileFlags registers the shared -cpuprofile and -memprofile flags.
// Call Start after flag.Parse and defer Stop.
func ProfileFlags() *Profile {
	return &Profile{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given.
func (p *Profile) Start() error {
	if p == nil || *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.f = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile when requested.
// Safe to call unconditionally (and more than once).
func (p *Profile) Stop() error {
	if p == nil {
		return nil
	}
	if p.f != nil {
		pprof.StopCPUProfile()
		err := p.f.Close()
		p.f = nil
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		runtime.GC() // an up-to-date heap picture, not the allocator's lag
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("memprofile: %w", err)
		}
		return f.Close()
	}
	return nil
}

// MetricsAddrFlag registers the shared -metrics-addr flag: a listen
// address for the live metrics server (Prometheus text at /metrics,
// JSON at /metrics.json, expvar at /debug/vars, pprof under
// /debug/pprof/). Empty disables it.
func MetricsAddrFlag() *string {
	return flag.String("metrics-addr", "", "serve live metrics and pprof on this address (e.g. :9100; empty = off)")
}

// StartMetrics starts the live metrics server when addr is non-empty and
// logs the bound address. The caller owns reg; the returned server (nil
// when disabled) should be Closed on exit.
func StartMetrics(addr string, reg *metrics.Registry) (*metrics.Server, error) {
	if addr == "" {
		return nil, nil
	}
	srv, err := metrics.StartServer(addr, reg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "metrics: serving on http://%s/metrics\n", srv.Addr())
	return srv, nil
}
