// Package cli holds the small helpers shared by the command-line tools:
// scale selection (quick vs paper), duration parsing, and topology
// construction from flag values.
package cli

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"deadlineqos/internal/experiments"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// ParFlag registers the shared -par flag: how many independent
// simulations a sweep runs concurrently (one goroutine per run). Every
// CLI that sweeps uses this helper so the knob is spelled identically
// everywhere.
func ParFlag() *int {
	return flag.Int("par", 0, "parallel simulations (0 = GOMAXPROCS)")
}

// ShardsFlag registers the shared -shards flag: how many engine
// goroutines each single simulation runs across (see
// network.Config.Shards). Results are byte-identical at every shard
// count; only wall-clock time changes. Orthogonal to -par, which
// parallelises across runs.
func ShardsFlag() *int {
	return flag.Int("shards", 1, "engine shards per simulation (1 = sequential, byte-identical results at any value)")
}

// PolicyFlag registers the shared -policy flag: which scheduling policy
// the run uses (see internal/policy). Every CLI that runs a single
// network uses this helper so the knob is spelled identically everywhere;
// the empty default keeps the seed behaviour byte-identical.
func PolicyFlag() *string {
	return flag.String("policy", "",
		"scheduling policy: "+strings.Join(policy.Names(), "|")+" (empty = default, byte-identical to the pre-policy simulator)")
}

// CoflowsFlag registers the shared -coflows flag: attach the ring coflow
// workload (σ-order deadline admission through the CAC, rejected rounds
// demoted to best-effort) on top of the configured traffic.
func CoflowsFlag() *bool {
	return flag.Bool("coflows", false, "attach the ring coflow workload (sigma-order admission; rejected rounds run best-effort)")
}

// Scale resolves an experiment scale name into Options.
//
//	quick — 16-host network, short windows (seconds per experiment)
//	paper — the full 128-endpoint MIN of §4.1 (minutes per sweep)
func Scale(name string) (experiments.Options, error) {
	switch name {
	case "quick":
		return experiments.Quick(), nil
	case "paper":
		return experiments.Paper(), nil
	default:
		return experiments.Options{}, fmt.Errorf("unknown scale %q (want quick|paper)", name)
	}
}

// ParseDuration converts a human duration ("250us", "10ms", "1.5s", plain
// nanoseconds "5000") into simulation cycles.
func ParseDuration(s string) (units.Time, error) {
	s = strings.TrimSpace(s)
	unit := units.Nanosecond
	num := s
	switch {
	case strings.HasSuffix(s, "us"):
		unit, num = units.Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ms"):
		unit, num = units.Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "ns"):
		unit, num = units.Nanosecond, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "s"):
		unit, num = units.Second, strings.TrimSuffix(s, "s")
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return units.Time(v * float64(unit)), nil
}

// ParseSize converts a human byte size ("32KB", "1MB", plain bytes
// "4096") into units.Size.
func ParseSize(s string) (units.Size, error) {
	s = strings.TrimSpace(s)
	unit := units.Size(1)
	num := s
	switch {
	case strings.HasSuffix(s, "MB"):
		unit, num = units.Megabyte, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		unit, num = units.Kilobyte, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		num = strings.TrimSuffix(s, "B")
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative size %q", s)
	}
	return units.Size(v * float64(unit)), nil
}

// ParseTopology builds a topology from a flag value:
//
//	paper          — the 128-endpoint MIN (16 leaves x 8 + 8 spines)
//	small          — 16 hosts (4 leaves x 4 + 4 spines)
//	clos:L,D,U     — folded Clos with L leaves, D hosts/leaf, U spines
//	tree:K,N       — k-ary n-tree
//	single:N       — N hosts on one switch
func ParseTopology(s string) (topology.Topology, error) {
	switch {
	case s == "paper":
		return topology.PaperMIN(), nil
	case s == "small":
		return topology.NewFoldedClos(4, 4, 4)
	case strings.HasPrefix(s, "clos:"):
		var l, d, u int
		if _, err := fmt.Sscanf(s, "clos:%d,%d,%d", &l, &d, &u); err != nil {
			return nil, fmt.Errorf("bad clos spec %q (want clos:L,D,U)", s)
		}
		return topology.NewFoldedClos(l, d, u)
	case strings.HasPrefix(s, "tree:"):
		var k, n int
		if _, err := fmt.Sscanf(s, "tree:%d,%d", &k, &n); err != nil {
			return nil, fmt.Errorf("bad tree spec %q (want tree:K,N)", s)
		}
		return topology.NewKAryNTree(k, n)
	case strings.HasPrefix(s, "single:"):
		var n int
		if _, err := fmt.Sscanf(s, "single:%d", &n); err != nil || n < 2 {
			return nil, fmt.Errorf("bad single spec %q (want single:N, N>=2)", s)
		}
		return &topology.SingleSwitch{N: n}, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", s)
	}
}

// ParseSeeds converts a comma-separated list ("1,2,3") into seed values.
func ParseSeeds(s string) ([]uint64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty seed list")
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseLoads converts a comma-separated list ("0.1,0.5,1.0") into loads.
func ParseLoads(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty load list")
	}
	var loads []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", part, err)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("load %v out of [0,1]", v)
		}
		loads = append(loads, v)
	}
	return loads, nil
}
