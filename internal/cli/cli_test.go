package cli

import (
	"testing"

	"deadlineqos/internal/units"
)

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want units.Time
	}{
		{"5000", 5000},
		{"10ns", 10},
		{"20us", 20 * units.Microsecond},
		{"1.5ms", 1500 * units.Microsecond},
		{"2s", 2 * units.Second},
		{" 10ms ", 10 * units.Millisecond},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "xyz", "-5ms", "10xs"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) accepted", bad)
		}
	}
}

func TestParseTopology(t *testing.T) {
	cases := map[string]int{
		"paper":      128,
		"small":      16,
		"clos:2,4,2": 8,
		"tree:2,3":   8,
		"single:6":   6,
	}
	for spec, hosts := range cases {
		topo, err := ParseTopology(spec)
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", spec, err)
			continue
		}
		if topo.Hosts() != hosts {
			t.Errorf("ParseTopology(%q).Hosts() = %d, want %d", spec, topo.Hosts(), hosts)
		}
	}
	for _, bad := range []string{"", "mesh", "clos:x", "tree:4", "single:1"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) accepted", bad)
		}
	}
}

func TestParseLoads(t *testing.T) {
	loads, err := ParseLoads("0.1, 0.5 ,1.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 3 || loads[0] != 0.1 || loads[2] != 1.0 {
		t.Fatalf("ParseLoads = %v", loads)
	}
	for _, bad := range []string{"", "abc", "1.5", "-0.1"} {
		if _, err := ParseLoads(bad); err == nil {
			t.Errorf("ParseLoads(%q) accepted", bad)
		}
	}
}

func TestScale(t *testing.T) {
	q, err := Scale("quick")
	if err != nil || q.Base.Topology.Hosts() != 16 {
		t.Errorf("Scale(quick) = %v hosts, err %v", q.Base.Topology, err)
	}
	p, err := Scale("paper")
	if err != nil || p.Base.Topology.Hosts() != 128 {
		t.Errorf("Scale(paper) wrong")
	}
	if _, err := Scale("huge"); err == nil {
		t.Error("Scale(huge) accepted")
	}
}

func TestParseSeeds(t *testing.T) {
	seeds, err := ParseSeeds("1, 2 ,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 || seeds[0] != 1 || seeds[2] != 30 {
		t.Fatalf("ParseSeeds = %v", seeds)
	}
	for _, bad := range []string{"", "x", "1,-2"} {
		if _, err := ParseSeeds(bad); err == nil {
			t.Errorf("ParseSeeds(%q) accepted", bad)
		}
	}
}
