package stats

import (
	"bytes"
	"strings"
	"testing"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

func filledCollector() *Collector {
	c := NewCollector(2, 1, 0, 1000)
	for i := 0; i < 10; i++ {
		p := mkpkt(packet.Control, 10, 100)
		c.PacketGenerated(p)
		c.PacketDelivered(p, 10+units.Time(100+i*10))
	}
	return c
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := filledCollector()
	snap := c.Snapshot("advanced/load=1.0")
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != snap.Label {
		t.Fatalf("label lost: %q", back.Label)
	}
	a, b := snap.Classes["Control"], back.Classes["Control"]
	if a != b {
		t.Fatalf("Control metrics changed in round trip:\n%+v\n%+v", a, b)
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(`{"label":"x"}`)); err == nil {
		t.Error("classless snapshot accepted")
	}
}

func TestCompareFindsRegressions(t *testing.T) {
	c := filledCollector()
	before := c.Snapshot("before")
	after := c.Snapshot("after")
	// Identical snapshots: no deltas at any tolerance.
	if ds := Compare(before, after, 0.01); len(ds) != 0 {
		t.Fatalf("identical snapshots produced deltas: %v", ds)
	}
	// Inflate latency by 50%.
	cs := after.Classes["Control"]
	cs.LatencyMeanNs *= 1.5
	after.Classes["Control"] = cs
	ds := Compare(before, after, 0.10)
	if len(ds) != 1 {
		t.Fatalf("deltas = %v, want exactly the latency change", ds)
	}
	if ds[0].Metric != "latency_mean_ns" || ds[0].Rel < 0.49 || ds[0].Rel > 0.51 {
		t.Fatalf("delta = %+v", ds[0])
	}
	if !strings.Contains(ds[0].String(), "latency_mean_ns") {
		t.Fatal("delta String() missing metric name")
	}
	// Higher tolerance suppresses it.
	if ds := Compare(before, after, 0.60); len(ds) != 0 {
		t.Fatalf("tolerance not applied: %v", ds)
	}
}
