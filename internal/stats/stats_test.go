package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 6, 8} {
		s.Add(v)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev of {2,4,6,8} = sqrt(20/3).
	want := math.Sqrt(20.0 / 3.0)
	if math.Abs(s.StdDev()-want) > 1e-9 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), want)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.StdDev() != 0 || s.Count() != 0 {
		t.Fatal("empty series must report zeros")
	}
}

func TestSeriesMergeMatchesSequential(t *testing.T) {
	// Clamp generated values into a latency-like range; unbounded float64
	// inputs overflow any sum-of-squares accumulator and test nothing real.
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Remainder(v, 1e9)
	}
	prop := func(a, b []float64) bool {
		var all, left, right Series
		for _, v := range a {
			all.Add(clamp(v))
			left.Add(clamp(v))
		}
		for _, v := range b {
			all.Add(clamp(v))
			right.Add(clamp(v))
		}
		left.Merge(&right)
		if left.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return math.Abs(left.Mean()-all.Mean()) < 1e-6*(1+math.Abs(all.Mean())) &&
			math.Abs(left.StdDev()-all.StdDev()) < 1e-6*(1+all.StdDev())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Add(units.Time(i * 1000)) // 1us .. 1ms uniform
	}
	med := h.Quantile(0.5)
	// Bucketing is coarse (8 per octave => <=9% upper-bound error).
	if med < 450*units.Microsecond || med > 600*units.Microsecond {
		t.Fatalf("median = %v, want ~500us", med)
	}
	p100 := h.Quantile(1.0)
	if p100 < 1000*units.Microsecond || p100 > 1100*units.Microsecond {
		t.Fatalf("p100 = %v, want ~1ms", p100)
	}
	if h.Quantile(0.0) == 0 {
		t.Fatal("q=0 on non-empty histogram returned 0")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	if q := NewHistogram().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	prop := func(raw []uint16) bool {
		h := NewHistogram()
		for _, v := range raw {
			h.Add(units.Time(v) + 1)
		}
		pts := h.CDF()
		prevLat, prevCum := units.Time(0), 0.0
		for _, p := range pts {
			if p.Latency <= prevLat && prevLat != 0 {
				return false
			}
			if p.Cum < prevCum {
				return false
			}
			prevLat, prevCum = p.Latency, p.Cum
		}
		if len(raw) > 0 {
			last := pts[len(pts)-1]
			if math.Abs(last.Cum-1.0) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Add(1 * units.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Add(100 * units.Millisecond)
	}
	if f := h.FractionBelow(1 * units.Millisecond); f != 0.9 {
		t.Fatalf("FractionBelow(1ms) = %v, want 0.9", f)
	}
	if f := h.FractionBelow(1 * units.Second); f != 1.0 {
		t.Fatalf("FractionBelow(1s) = %v, want 1", f)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 50; i++ {
		a.Add(units.Microsecond)
		b.Add(units.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if f := a.FractionBelow(10 * units.Microsecond); f != 0.5 {
		t.Fatalf("merged FractionBelow = %v, want 0.5", f)
	}
}

func mkpkt(cl packet.Class, created units.Time, size units.Size) *packet.Packet {
	return &packet.Packet{Class: cl, CreatedAt: created, Size: size, Flow: 1}
}

func TestCollectorLatency(t *testing.T) {
	c := NewCollector(1, 1, 0, 1000)
	p := mkpkt(packet.Control, 100, 64)
	c.PacketGenerated(p)
	p.InjectedAt = 120
	c.PacketInjected(p, 120)
	c.PacketDelivered(p, 350)
	cs := &c.PerClass[packet.Control]
	if cs.PacketLatency.Mean() != 250 {
		t.Fatalf("packet latency = %v, want 250", cs.PacketLatency.Mean())
	}
	if cs.NetLatency.Mean() != 230 {
		t.Fatalf("network latency = %v, want 230", cs.NetLatency.Mean())
	}
	if cs.DeliveredPackets != 1 || cs.DeliveredBytes != 64 {
		t.Fatal("delivery counters wrong")
	}
}

func TestCollectorWarmUpExclusion(t *testing.T) {
	c := NewCollector(1, 1, 500, 1000)
	cold := mkpkt(packet.Control, 100, 64)
	c.PacketGenerated(cold)
	c.PacketDelivered(cold, 600)
	warm := mkpkt(packet.Control, 700, 64)
	c.PacketGenerated(warm)
	c.PacketDelivered(warm, 800)
	cs := &c.PerClass[packet.Control]
	if cs.DeliveredPackets != 1 {
		t.Fatalf("warm-up packet measured: delivered = %d, want 1", cs.DeliveredPackets)
	}
	if cs.PacketLatency.Mean() != 100 {
		t.Fatalf("latency = %v, want 100", cs.PacketLatency.Mean())
	}
}

func TestCollectorFrameAssembly(t *testing.T) {
	c := NewCollector(1, 1, 0, units.Second)
	// A 3-packet frame created at t=1000; last delivery at t=5000.
	for i := 0; i < 3; i++ {
		p := mkpkt(packet.Multimedia, 1000, 2048)
		p.FrameID = 77
		p.FrameParts = 3
		c.PacketGenerated(p)
		c.PacketDelivered(p, units.Time(2000+i*1500))
	}
	cs := &c.PerClass[packet.Multimedia]
	if cs.FrameLatency.Count() != 1 {
		t.Fatalf("frames measured = %d, want 1", cs.FrameLatency.Count())
	}
	if cs.FrameLatency.Mean() != 4000 {
		t.Fatalf("frame latency = %v, want 4000 (last part at 5000 - created 1000)", cs.FrameLatency.Mean())
	}
	if c.IncompleteFrames() != 0 {
		t.Fatal("frame not cleaned up after assembly")
	}
}

func TestCollectorIncompleteFrames(t *testing.T) {
	c := NewCollector(1, 1, 0, units.Second)
	p := mkpkt(packet.Multimedia, 0, 2048)
	p.FrameID = 5
	p.FrameParts = 2
	c.PacketGenerated(p)
	c.PacketDelivered(p, 100)
	if c.IncompleteFrames() != 1 {
		t.Fatalf("IncompleteFrames = %d, want 1", c.IncompleteFrames())
	}
}

func TestCollectorJitter(t *testing.T) {
	c := NewCollector(1, 1, 0, units.Second)
	// Same flow, latencies 100, 150, 120 -> jitter samples 50, 30.
	for i, d := range []units.Time{100, 150, 120} {
		p := mkpkt(packet.Control, units.Time(i*1000), 64)
		c.PacketGenerated(p)
		c.PacketDelivered(p, p.CreatedAt+d)
	}
	j := c.PerClass[packet.Control].Jitter
	if j.Count() != 2 {
		t.Fatalf("jitter samples = %d, want 2", j.Count())
	}
	if j.Mean() != 40 {
		t.Fatalf("jitter mean = %v, want 40", j.Mean())
	}
}

func TestCollectorThroughput(t *testing.T) {
	// 2 hosts at 1 byte/cycle over a 1000-cycle window = 2000 bytes
	// capacity. Delivering 500 bytes of Control = 25%.
	c := NewCollector(2, 1, 0, 1000)
	p := mkpkt(packet.Control, 10, 500)
	c.PacketGenerated(p)
	c.PacketDelivered(p, 900)
	if th := c.Throughput(packet.Control); th != 0.25 {
		t.Fatalf("Throughput = %v, want 0.25", th)
	}
	if ol := c.OfferedLoad(packet.Control); ol != 0.25 {
		t.Fatalf("OfferedLoad = %v, want 0.25", ol)
	}
	if th := c.Throughput(packet.Background); th != 0 {
		t.Fatalf("idle class throughput = %v, want 0", th)
	}
}

func TestCollectorSummaryNonEmpty(t *testing.T) {
	c := NewCollector(1, 1, 0, 1000)
	if c.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Add(5 * units.Microsecond)
	if q := h.Quantile(0.5); q < 5*units.Microsecond || q > 6*units.Microsecond {
		t.Fatalf("single-value quantile = %v", q)
	}
	pts := h.CDF()
	if len(pts) != 1 || pts[0].Cum != 1.0 {
		t.Fatalf("single-value CDF = %v", pts)
	}
}

func TestHistogramSubNanosecondClamp(t *testing.T) {
	h := NewHistogram()
	h.Add(0) // lands in the sub-cycle bucket
	if h.Count() != 1 {
		t.Fatal("zero-latency observation lost")
	}
	if f := h.FractionBelow(units.Microsecond); f != 1.0 {
		t.Fatalf("FractionBelow = %v", f)
	}
}

func TestHistogramSubCycleOnlyQuantile(t *testing.T) {
	// A histogram whose only observations are sub-cycle reports every
	// quantile as the sub-cycle bucket's upper bound, 0 — the documented
	// edge where Quantile alone cannot distinguish it from empty.
	h := NewHistogram()
	h.Add(0)
	h.Add(0)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2 (distinguishes sub-cycle from empty)", h.Count())
	}
	if f := h.FractionBelow(0); f != 1.0 {
		t.Fatalf("FractionBelow(0) = %v, want 1", f)
	}
}

func TestHistogramNegativeValues(t *testing.T) {
	// Deadline slack can be negative; bucket order must track value order
	// across the sign boundary.
	h := NewHistogram()
	late := []units.Time{-5 * units.Microsecond, -units.Microsecond, -1}
	early := []units.Time{0, 1, units.Microsecond}
	for _, v := range append(append([]units.Time{}, late...), early...) {
		h.Add(v)
	}
	// Half the observations are negative.
	if f := h.FractionBelow(-1); f != 0.5 {
		t.Fatalf("FractionBelow(-1) = %v, want 0.5", f)
	}
	if q := h.Quantile(0.5); q != -1 {
		t.Fatalf("median = %v, want -1 (upper bound of the -1 bucket)", q)
	}
	if q := h.Quantile(1.0); q < units.Microsecond {
		t.Fatalf("p100 = %v, want >= 1us", q)
	}
	// Quantile output is the -1us observation's bucket upper bound: at
	// least -1us, but still negative (within one bucket width, ~9%).
	q25 := h.Quantile(0.25)
	if q25 < -units.Microsecond || q25 > -900 {
		t.Fatalf("p25 = %v, want in [-1us, -900ns]", q25)
	}
	// CDF stays monotone across the signed range.
	pts := h.CDF()
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency < pts[i-1].Latency || pts[i].Cum < pts[i-1].Cum {
			t.Fatalf("CDF not monotone at %d: %v", i, pts)
		}
	}
}

func TestHistogramQuantileIsUpperBound(t *testing.T) {
	// Property: Quantile(q) >= the true q-quantile for any signed data —
	// quantiles are bucket upper bounds, never underestimates.
	prop := func(raw []int16, qraw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		vals := make([]int64, len(raw))
		for i, v := range raw {
			h.Add(units.Time(v))
			vals[i] = int64(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		q := float64(qraw%101) / 100
		target := int(math.Ceil(q * float64(len(vals))))
		if target < 1 {
			target = 1
		}
		exact := vals[target-1]
		return int64(h.Quantile(q)) >= exact
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramFractionBelowRoundTrip(t *testing.T) {
	// Property: FractionBelow(Quantile(q)) >= q — the quantile's bucket
	// accumulates at least the requested mass.
	prop := func(raw []int16, qraw uint8) bool {
		h := NewHistogram()
		for _, v := range raw {
			h.Add(units.Time(v))
		}
		if h.Count() == 0 {
			return true
		}
		q := float64(qraw%101) / 100
		return h.FractionBelow(h.Quantile(q)) >= q-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeRoundTrip(t *testing.T) {
	// Property: merging two histograms is equivalent to recording both
	// streams into one — identical counts, quantiles and CDF.
	prop := func(a, b []int16) bool {
		ha, hb, all := NewHistogram(), NewHistogram(), NewHistogram()
		for _, v := range a {
			ha.Add(units.Time(v))
			all.Add(units.Time(v))
		}
		for _, v := range b {
			hb.Add(units.Time(v))
			all.Add(units.Time(v))
		}
		ha.Merge(hb)
		if ha.Count() != all.Count() {
			return false
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if ha.Quantile(q) != all.Quantile(q) {
				return false
			}
		}
		pa, pall := ha.CDF(), all.CDF()
		if len(pa) != len(pall) {
			return false
		}
		for i := range pa {
			if pa[i] != pall[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorSlackAndMissRate(t *testing.T) {
	c := NewCollector(1, 1, 0, units.Second)
	// Three deliveries: slacks +500, +100, -200 (one missed deadline).
	for _, s := range []units.Time{500, 100, -200} {
		p := mkpkt(packet.Control, 10, 64)
		p.TTD = s // Receive leaves slack in the TTD header at delivery
		c.PacketGenerated(p)
		c.PacketDelivered(p, 100)
	}
	cs := &c.PerClass[packet.Control]
	if cs.Slack.Count() != 3 {
		t.Fatalf("slack samples = %d, want 3", cs.Slack.Count())
	}
	if cs.Slack.Mean() != 400.0/3 {
		t.Fatalf("slack mean = %v, want 133.3", cs.Slack.Mean())
	}
	if cs.MissedDeadlines != 1 {
		t.Fatalf("missed = %d, want 1", cs.MissedDeadlines)
	}
	if mr := c.MissRate(packet.Control); math.Abs(mr-1.0/3) > 1e-12 {
		t.Fatalf("miss rate = %v, want 1/3", mr)
	}
	if c.MissRate(packet.Background) != 0 {
		t.Fatal("idle class reported a miss rate")
	}
	snap := c.Snapshot("test")
	ctl := snap.Classes[packet.Control.String()]
	if ctl.MissedDeadlines != 1 || ctl.SlackMeanNs != 400.0/3 {
		t.Fatalf("snapshot slack fields wrong: %+v", ctl)
	}
}

func TestCollectorUntrackedFrames(t *testing.T) {
	// Packets without frame ids must not create frame records.
	c := NewCollector(1, 1, 0, units.Second)
	p := mkpkt(packet.Control, 0, 64)
	c.PacketGenerated(p)
	c.PacketDelivered(p, 100)
	if c.IncompleteFrames() != 0 {
		t.Fatal("frameless packet created a frame record")
	}
	if c.PerClass[packet.Control].FrameLatency.Count() != 0 {
		t.Fatal("frameless packet recorded a frame latency")
	}
}

func TestCollectorNetLatencyRequiresInjection(t *testing.T) {
	c := NewCollector(1, 1, 0, units.Second)
	p := mkpkt(packet.Control, 10, 64)
	c.PacketGenerated(p)
	c.PacketDelivered(p, 100) // InjectedAt left zero
	if c.PerClass[packet.Control].NetLatency.Count() != 0 {
		t.Fatal("network latency recorded without injection timestamp")
	}
}
