// Package stats collects the performance indices the paper evaluates:
// throughput, latency and jitter per traffic class (§5), the cumulative
// distribution function (CDF) of latency, and frame-level latency for
// multimedia traffic (Figure 3 reports per-frame, not per-packet, latency).
//
// A Collector observes packet injections and deliveries during the
// measurement window (after warm-up) and aggregates per-class metrics.
// All observations use the simulator's oracle clock; nothing here feeds
// back into scheduling.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

// Series accumulates count/mean/variance/min/max of a stream of values
// using Welford's online algorithm.
type Series struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one value.
func (s *Series) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// Count returns the number of recorded values.
func (s *Series) Count() uint64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Series) Mean() float64 { return s.mean }

// Min returns the smallest recorded value (0 when empty).
func (s *Series) Min() float64 { return s.min }

// Max returns the largest recorded value (0 when empty).
func (s *Series) Max() float64 { return s.max }

// StdDev returns the sample standard deviation (0 for fewer than 2 values).
func (s *Series) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Merge folds other into s (parallel-run aggregation).
func (s *Series) Merge(other *Series) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	d := other.mean - s.mean
	mean := s.mean + d*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	minv := math.Min(s.min, other.min)
	maxv := math.Max(s.max, other.max)
	*s = Series{n: n, mean: mean, m2: m2, min: minv, max: maxv}
}

// TimeSeries accumulates count/sum/min/max and the exact sum of squares of
// a stream of integer time values (nanoseconds). Every accumulator is an
// integer — the sum of squares is kept in 128 bits — so folding per-shard
// series together is exact and order-independent: a sharded run (see
// internal/parsim) reports bit-identical means to a sequential one, which
// the float64 Welford accumulation of Series cannot guarantee. Use Series
// for genuinely real-valued data; use TimeSeries for latencies, slacks and
// the other integer-valued metrics the per-class statistics track.
type TimeSeries struct {
	n          uint64
	sum        int64
	sqHi, sqLo uint64 // 128-bit sum of v*v
	min, max   int64
}

// Add records one value.
func (s *TimeSeries) Add(v units.Time) {
	x := int64(v)
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	s.sum += x
	m := uint64(x)
	if x < 0 {
		m = uint64(-x)
	}
	hi, lo := bits.Mul64(m, m)
	var carry uint64
	s.sqLo, carry = bits.Add64(s.sqLo, lo, 0)
	s.sqHi, _ = bits.Add64(s.sqHi, hi, carry)
}

// Count returns the number of recorded values.
func (s *TimeSeries) Count() uint64 { return s.n }

// Mean returns the mean (0 when empty). The division is the only float
// operation, applied to exact integer accumulators, so equal multisets of
// observations always yield the identical float64.
func (s *TimeSeries) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.n)
}

// Min returns the smallest recorded value (0 when empty).
func (s *TimeSeries) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.min)
}

// Max returns the largest recorded value (0 when empty).
func (s *TimeSeries) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.max)
}

// StdDev returns the sample standard deviation (0 for fewer than 2 values).
func (s *TimeSeries) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	sq := float64(s.sqHi)*0x1p64 + float64(s.sqLo)
	mean := float64(s.sum) / float64(s.n)
	m2 := sq - mean*float64(s.sum)
	if m2 < 0 {
		m2 = 0 // guard the float cancellation in sq - mean*sum
	}
	return math.Sqrt(m2 / float64(s.n-1))
}

// Merge folds other into s. Integer accumulators make the fold exact and
// order-independent.
func (s *TimeSeries) Merge(other *TimeSeries) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	s.n += other.n
	s.sum += other.sum
	var carry uint64
	s.sqLo, carry = bits.Add64(s.sqLo, other.sqLo, 0)
	s.sqHi, _ = bits.Add64(s.sqHi, other.sqHi, carry)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Histogram is a logarithmically bucketed histogram of units.Time values,
// built for latency CDFs spanning nanoseconds to seconds. Resolution is
// bucketsPerOctave buckets per factor-of-two.
//
// Values may be negative (deadline slack of a late packet is below zero):
// negative magnitudes get the same logarithmic resolution as positive
// ones, and all values in the open interval (-1, 1) — for integer times,
// exactly 0 — share one sub-cycle bucket. Bucket indices are ordered
// consistently with the values they hold, so quantiles and CDFs work
// unchanged on signed data.
//
// All per-bucket queries (Quantile, FractionBelow, CDF) resolve to the
// bucket's UPPER bound, never an interpolated value: Quantile(q) is a
// value v such that at least a q-fraction of observations are <= v, and
// it overestimates by at most one bucket width (~9% at 8 buckets per
// octave). The sub-cycle bucket's upper bound is 0, so a histogram whose
// only observations are sub-cycle reports Quantile(q) == 0 for every q —
// indistinguishable from an empty histogram by Quantile alone; check
// Count to tell them apart.
type Histogram struct {
	counts map[int]uint64
	total  uint64
}

const bucketsPerOctave = 8

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: make(map[int]uint64)} }

// subCycleBucket holds every observation in (-1, 1).
const subCycleBucket = -1

// bucketOf maps a time to its bucket index. Positive values v >= 1 map to
// b >= 0 exactly as before the signed extension; values in (-1, 1) map to
// the sub-cycle bucket; v <= -1 maps to b <= -2, with more negative
// indices for larger magnitudes, so integer bucket order tracks value
// order everywhere.
func bucketOf(v units.Time) int {
	switch {
	case v >= 1:
		return int(math.Floor(math.Log2(float64(v)) * bucketsPerOctave))
	case v > -1:
		return subCycleBucket
	default:
		k := int(math.Floor(math.Log2(float64(-v)) * bucketsPerOctave))
		return -2 - k
	}
}

// bucketUpper returns the representative (upper bound) value of a bucket.
func bucketUpper(b int) units.Time {
	switch {
	case b >= 0:
		return units.Time(math.Ceil(math.Exp2(float64(b+1) / bucketsPerOctave)))
	case b == subCycleBucket:
		return 0
	default:
		k := -2 - b
		return -units.Time(math.Ceil(math.Exp2(float64(k) / bucketsPerOctave)))
	}
}

// Add records one observation.
func (h *Histogram) Add(v units.Time) {
	h.counts[bucketOf(v)]++
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) of the
// recorded values, or 0 when empty.
func (h *Histogram) Quantile(q float64) units.Time {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	keys := h.sortedBuckets()
	var cum uint64
	for _, b := range keys {
		cum += h.counts[b]
		if cum >= target {
			return bucketUpper(b)
		}
	}
	return bucketUpper(keys[len(keys)-1])
}

// FractionBelow returns the fraction of observations <= v.
func (h *Histogram) FractionBelow(v units.Time) float64 {
	if h.total == 0 {
		return 0
	}
	vb := bucketOf(v)
	var cum uint64
	for b, c := range h.counts {
		if b <= vb {
			cum += c
		}
	}
	return float64(cum) / float64(h.total)
}

// CDFPoint is one (latency, cumulative probability) sample of a CDF.
type CDFPoint struct {
	Latency units.Time
	Cum     float64
}

// CDF returns the cumulative distribution as bucket upper-bound points in
// increasing latency order.
func (h *Histogram) CDF() []CDFPoint {
	keys := h.sortedBuckets()
	pts := make([]CDFPoint, 0, len(keys))
	var cum uint64
	for _, b := range keys {
		cum += h.counts[b]
		pts = append(pts, CDFPoint{bucketUpper(b), float64(cum) / float64(h.total)})
	}
	return pts
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.total += other.total
}

func (h *Histogram) sortedBuckets() []int {
	keys := make([]int, 0, len(h.counts))
	for b := range h.counts {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	return keys
}

// ClassStats aggregates all indices for one traffic class.
type ClassStats struct {
	GeneratedPackets uint64
	GeneratedBytes   units.Size
	InjectedPackets  uint64
	InjectedBytes    units.Size
	DeliveredPackets uint64
	DeliveredBytes   units.Size

	// Fault/recovery counters (zero in fault-free runs; see
	// internal/faults and the hostif reliability layer).
	CorruptedPackets     uint64 // copies dropped by the receiver CRC check
	LostPackets          uint64 // copies lost in flight to link flaps
	RetransmittedPackets uint64 // retransmit copies queued at sources
	DemotedPackets       uint64 // packets demoted to the best-effort VC
	DuplicateDrops       uint64 // duplicate copies dropped by receivers

	// Eviction/value accounting of value-aware dropping policies
	// (internal/policy): packets shed by a bounded NIC queue before
	// injection, and the exact milli-unit value totals (packet.Value) the
	// weighted-goodput metric is computed from. All integers, so per-shard
	// merging stays exact.
	EvictedPackets uint64
	EvictedBytes   units.Size
	GeneratedValue int64
	DeliveredValue int64
	EvictedValue   int64

	// Guarantee-protection accounting (internal/police): packets the
	// ingress policer demoted to best effort, and the subset caught by the
	// deadline-forgery test (the rest exceeded their sustained rate).
	PolicedPackets uint64
	PolicedForged  uint64

	PacketLatency TimeSeries // ns, creation to delivery
	NetLatency    TimeSeries // ns, injection to delivery (network-only share)
	LatencyHist   *Histogram // packet latency CDF

	// Deadline slack at delivery: deadline − delivery time, measured on
	// the destination's local clock via the TTD header (§3.4), so it is
	// correct even under clock skew. Negative slack is a missed deadline.
	Slack           TimeSeries
	SlackHist       *Histogram
	MissedDeadlines uint64 // delivered packets with negative slack

	FrameLatency TimeSeries // ns, frame creation to last-packet delivery
	FrameHist    *Histogram // frame latency CDF

	Jitter TimeSeries // ns, |latency_i - latency_{i-1}| per flow (RFC3550-style)
}

// merge folds other's accumulators into cs.
func (cs *ClassStats) merge(other *ClassStats) {
	cs.GeneratedPackets += other.GeneratedPackets
	cs.GeneratedBytes += other.GeneratedBytes
	cs.InjectedPackets += other.InjectedPackets
	cs.InjectedBytes += other.InjectedBytes
	cs.DeliveredPackets += other.DeliveredPackets
	cs.DeliveredBytes += other.DeliveredBytes
	cs.CorruptedPackets += other.CorruptedPackets
	cs.LostPackets += other.LostPackets
	cs.RetransmittedPackets += other.RetransmittedPackets
	cs.DemotedPackets += other.DemotedPackets
	cs.DuplicateDrops += other.DuplicateDrops
	cs.EvictedPackets += other.EvictedPackets
	cs.EvictedBytes += other.EvictedBytes
	cs.GeneratedValue += other.GeneratedValue
	cs.DeliveredValue += other.DeliveredValue
	cs.EvictedValue += other.EvictedValue
	cs.PolicedPackets += other.PolicedPackets
	cs.PolicedForged += other.PolicedForged
	cs.PacketLatency.Merge(&other.PacketLatency)
	cs.NetLatency.Merge(&other.NetLatency)
	cs.LatencyHist.Merge(other.LatencyHist)
	cs.Slack.Merge(&other.Slack)
	cs.SlackHist.Merge(other.SlackHist)
	cs.MissedDeadlines += other.MissedDeadlines
	cs.FrameLatency.Merge(&other.FrameLatency)
	cs.FrameHist.Merge(other.FrameHist)
	cs.Jitter.Merge(&other.Jitter)
}

// frameAcc assembles in-flight frames to measure frame-level latency.
// src and deadline feed the innocent/rogue isolation split: deadline is
// the latest stamped per-part deadline seen so far, rebased onto the
// destination's local clock (arrival + delivered slack), so the
// completion-vs-deadline comparison is exact under skew.
type frameAcc struct {
	created   units.Time
	remaining int
	class     packet.Class
	src       int
	deadline  units.Time
}

// Collector observes one simulation run.
type Collector struct {
	// WarmUp: packets created before this oracle time are ignored.
	WarmUp units.Time
	// Horizon: measurement window end; used for throughput normalisation.
	Horizon units.Time

	PerClass [packet.NumClasses]ClassStats

	// RogueSrcs marks hosts that misbehave (rogue/forge fault windows) at
	// any point of the run. Set by the network before traffic starts, on
	// every shard's collector; completed multi-part multimedia frames
	// then split into the innocent/rogue counters below by source host,
	// giving the
	// isolation metric of the guarantee-protection plane (the innocent
	// admitted-flow frame-miss rate). Nil when the plan has no
	// behavioural events.
	RogueSrcs map[int]bool
	// Innocent*/Rogue* split completed multi-part Multimedia frames by
	// source-host honesty (with no behavioural faults RogueSrcs is nil
	// and every frame counts as innocent). A frame is missed when
	// its last part arrives after the latest per-part deadline stamped
	// into it — the frame-level SLO the paper's Figure 3 targets, which
	// is robust where per-part slack is not (intermediate parts routinely
	// under-run their slice of the budget at full load).
	InnocentDelivered uint64
	InnocentMissed    uint64
	RogueDelivered    uint64
	RogueMissed       uint64

	frames  map[uint64]*frameAcc
	lastLat map[packet.FlowID]units.Time
	hosts   int
	linkBW  units.Bandwidth
	// Switch-level order-error totals, filled in by the network at teardown.
	OrderErrors     uint64
	TakeOverPackets uint64
	Dequeues        uint64
}

// NewCollector returns a collector for a run over hosts endpoints with the
// given link bandwidth, measuring in the oracle window [warmUp, horizon].
func NewCollector(hosts int, linkBW units.Bandwidth, warmUp, horizon units.Time) *Collector {
	c := &Collector{
		WarmUp:  warmUp,
		Horizon: horizon,
		frames:  make(map[uint64]*frameAcc),
		lastLat: make(map[packet.FlowID]units.Time),
		hosts:   hosts,
		linkBW:  linkBW,
	}
	for i := range c.PerClass {
		c.PerClass[i].LatencyHist = NewHistogram()
		c.PerClass[i].SlackHist = NewHistogram()
		c.PerClass[i].FrameHist = NewHistogram()
	}
	return c
}

// measured reports whether a packet belongs to the measurement window.
func (c *Collector) measured(p *packet.Packet) bool { return p.CreatedAt >= c.WarmUp }

// PacketGenerated records that the application produced p at its CreatedAt.
func (c *Collector) PacketGenerated(p *packet.Packet) {
	if !c.measured(p) {
		return
	}
	cs := &c.PerClass[p.Class]
	cs.GeneratedPackets++
	cs.GeneratedBytes += p.Size
	cs.GeneratedValue += p.Value
}

// PacketInjected records that p's first byte entered the network at now.
func (c *Collector) PacketInjected(p *packet.Packet, now units.Time) {
	if !c.measured(p) {
		return
	}
	cs := &c.PerClass[p.Class]
	cs.InjectedPackets++
	cs.InjectedBytes += p.Size
}

// PacketDelivered records p's arrival at its destination NIC at now.
func (c *Collector) PacketDelivered(p *packet.Packet, now units.Time) {
	if !c.measured(p) {
		return
	}
	cs := &c.PerClass[p.Class]
	cs.DeliveredPackets++
	cs.DeliveredBytes += p.Size
	cs.DeliveredValue += p.Value
	lat := now - p.CreatedAt
	cs.PacketLatency.Add(lat)
	cs.LatencyHist.Add(lat)
	// Delivery slack: at the destination the TTD header holds deadline −
	// arrival on the local clock (Receive unpacks it at this instant), so
	// p.TTD IS the slack — no oracle clock needed, skew cancels out.
	slack := p.TTD
	cs.Slack.Add(slack)
	cs.SlackHist.Add(slack)
	if slack < 0 {
		cs.MissedDeadlines++
	}
	if p.InjectedAt > 0 {
		cs.NetLatency.Add(now - p.InjectedAt)
	}
	if last, ok := c.lastLat[p.Flow]; ok {
		d := lat - last
		if d < 0 {
			d = -d
		}
		cs.Jitter.Add(d)
	}
	c.lastLat[p.Flow] = lat

	// Frame assembly is tracked purely on the delivery side: the record is
	// created lazily at the first delivered part (the header carries the
	// frame's creation time and part count). Frames are therefore local to
	// the destination host, which keeps per-shard collectors disjoint.
	if p.FrameID != 0 && p.FrameParts > 0 {
		f, ok := c.frames[p.FrameID]
		if !ok {
			f = &frameAcc{created: p.CreatedAt, remaining: p.FrameParts, class: p.Class, src: p.Src}
			c.frames[p.FrameID] = f
		}
		// All parts arrive at one destination, so now+slack values share
		// one clock base and the max is the frame's final deadline there.
		if dl := now + slack; f.remaining == p.FrameParts || dl > f.deadline {
			f.deadline = dl
		}
		f.remaining--
		if f.remaining == 0 {
			flat := now - f.created
			fcs := &c.PerClass[f.class]
			fcs.FrameLatency.Add(flat)
			fcs.FrameHist.Add(flat)
			// The innocent/rogue split watches real (multi-part) video
			// frames only: single-packet multimedia messages — session
			// chatter with tens-of-µs ByBandwidth stamps — miss at a
			// structurally high rate in any mix and would drown the
			// isolation signal the split exists to measure.
			if f.class == packet.Multimedia && p.FrameParts > 1 {
				missed := now > f.deadline
				if c.RogueSrcs[f.src] {
					c.RogueDelivered++
					if missed {
						c.RogueMissed++
					}
				} else {
					c.InnocentDelivered++
					if missed {
						c.InnocentMissed++
					}
				}
			}
			delete(c.frames, p.FrameID)
		}
	}
}

// PacketCorrupted records that a copy of p was dropped by the destination
// NIC's CRC check.
func (c *Collector) PacketCorrupted(p *packet.Packet, now units.Time) {
	if c.measured(p) {
		c.PerClass[p.Class].CorruptedPackets++
	}
}

// PacketLost records that a copy of p was lost in flight to a link flap.
func (c *Collector) PacketLost(p *packet.Packet) {
	if c.measured(p) {
		c.PerClass[p.Class].LostPackets++
	}
}

// PacketRetransmitted records that a retransmit copy of p was queued.
func (c *Collector) PacketRetransmitted(p *packet.Packet, now units.Time) {
	if c.measured(p) {
		c.PerClass[p.Class].RetransmittedPackets++
	}
}

// PacketDemoted records that p was demoted to the best-effort VC.
func (c *Collector) PacketDemoted(p *packet.Packet, now units.Time) {
	if c.measured(p) {
		c.PerClass[p.Class].DemotedPackets++
	}
}

// PacketPoliced records that the ingress policer demoted p to the
// best-effort VC; forged marks deadline-forgery verdicts.
func (c *Collector) PacketPoliced(p *packet.Packet, now units.Time, forged bool) {
	if !c.measured(p) {
		return
	}
	cs := &c.PerClass[p.Class]
	cs.PolicedPackets++
	if forged {
		cs.PolicedForged++
	}
}

// PacketDupDropped records that a duplicate copy of p was dropped at the
// destination.
func (c *Collector) PacketDupDropped(p *packet.Packet, now units.Time) {
	if c.measured(p) {
		c.PerClass[p.Class].DuplicateDrops++
	}
}

// PacketEvicted records that a bounded NIC queue discarded p before
// injection (value-drop scheduling policies).
func (c *Collector) PacketEvicted(p *packet.Packet, now units.Time) {
	if !c.measured(p) {
		return
	}
	cs := &c.PerClass[p.Class]
	cs.EvictedPackets++
	cs.EvictedBytes += p.Size
	cs.EvictedValue += p.Value
}

// Window returns the measurement window length.
func (c *Collector) Window() units.Time { return c.Horizon - c.WarmUp }

// Throughput returns class cl's delivered bandwidth as a fraction of the
// aggregate host link capacity (the paper's normalised throughput axis).
func (c *Collector) Throughput(cl packet.Class) float64 {
	w := c.Window()
	if w <= 0 || c.hosts == 0 || c.linkBW <= 0 {
		return 0
	}
	bytes := float64(c.PerClass[cl].DeliveredBytes)
	capacity := float64(c.linkBW) * float64(w) * float64(c.hosts)
	return bytes / capacity
}

// OfferedLoad returns class cl's generated bandwidth as a fraction of the
// aggregate host link capacity.
func (c *Collector) OfferedLoad(cl packet.Class) float64 {
	w := c.Window()
	if w <= 0 || c.hosts == 0 || c.linkBW <= 0 {
		return 0
	}
	return float64(c.PerClass[cl].GeneratedBytes) / (float64(c.linkBW) * float64(w) * float64(c.hosts))
}

// IncompleteFrames returns frames with at least one part delivered that are
// still being assembled (diagnostics; a large number at teardown indicates
// saturation).
func (c *Collector) IncompleteFrames() int { return len(c.frames) }

// Merge folds other into c: the counters, series and histograms of every
// class plus the in-flight frame and per-flow jitter state. Both frame
// assembly and jitter are keyed by the destination host (a flow has one
// destination, a frame one flow), so collectors fed by a host-partitioned
// run hold disjoint maps and the union is exact. Used by internal/parsim
// runs to fold per-shard collectors into one; merging collectors that
// observed overlapping flows is a caller bug.
func (c *Collector) Merge(other *Collector) {
	for cl := range c.PerClass {
		c.PerClass[cl].merge(&other.PerClass[cl])
	}
	for id, f := range other.frames {
		c.frames[id] = f
	}
	for fl, lat := range other.lastLat {
		c.lastLat[fl] = lat
	}
	c.OrderErrors += other.OrderErrors
	c.TakeOverPackets += other.TakeOverPackets
	c.Dequeues += other.Dequeues
	c.InnocentDelivered += other.InnocentDelivered
	c.InnocentMissed += other.InnocentMissed
	c.RogueDelivered += other.RogueDelivered
	c.RogueMissed += other.RogueMissed
	if c.RogueSrcs == nil {
		c.RogueSrcs = other.RogueSrcs
	}
}

// InnocentMissRate returns the frame-deadline miss rate of multimedia
// frames from well-behaved hosts — the isolation metric of the
// guarantee-protection plane. Runs without behavioural faults count
// every frame as innocent, so this doubles as the plain frame-level
// miss rate.
func (c *Collector) InnocentMissRate() float64 {
	if c.InnocentDelivered == 0 {
		return 0
	}
	return float64(c.InnocentMissed) / float64(c.InnocentDelivered)
}

// RogueMissRate returns the frame-deadline miss rate of multimedia frames
// from misbehaving hosts.
func (c *Collector) RogueMissRate() float64 {
	if c.RogueDelivered == 0 {
		return 0
	}
	return float64(c.RogueMissed) / float64(c.RogueDelivered)
}

// WeightedGoodput returns the delivered packet value as a fraction of the
// generated packet value across all classes — the weighted-throughput
// metric of the bounded-queue dropping literature (value earned / value
// offered). Classes whose flows carry no value density contribute to
// neither side; 0 when nothing valued was generated. Both accumulators are
// exact integers, so the ratio is shard-independent.
func (c *Collector) WeightedGoodput() float64 {
	var gen, del int64
	for cl := range c.PerClass {
		gen += c.PerClass[cl].GeneratedValue
		del += c.PerClass[cl].DeliveredValue
	}
	if gen == 0 {
		return 0
	}
	return float64(del) / float64(gen)
}

// MissRate returns the fraction of class cl's delivered packets that
// arrived past their deadline (negative slack).
func (c *Collector) MissRate(cl packet.Class) float64 {
	cs := &c.PerClass[cl]
	if cs.DeliveredPackets == 0 {
		return 0
	}
	return float64(cs.MissedDeadlines) / float64(cs.DeliveredPackets)
}

// Summary renders a one-line-per-class human-readable digest: delivery
// counts, normalised throughput, the latency quantile ladder, and the
// deadline-slack picture (mean slack and miss rate).
func (c *Collector) Summary() string {
	out := ""
	for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
		cs := &c.PerClass[cl]
		out += fmt.Sprintf("%-12s gen=%-6d dlvr=%-6d thru=%5.1f%% lat(avg=%v p50=%v p95=%v p99=%v p99.9=%v max=%v) slack(avg=%v p50=%v miss=%.2f%%) jitter=%v\n",
			cl.String(), cs.GeneratedPackets, cs.DeliveredPackets, 100*c.Throughput(cl),
			units.Time(cs.PacketLatency.Mean()),
			cs.LatencyHist.Quantile(0.50), cs.LatencyHist.Quantile(0.95),
			cs.LatencyHist.Quantile(0.99), cs.LatencyHist.Quantile(0.999),
			units.Time(cs.PacketLatency.Max()),
			units.Time(cs.Slack.Mean()), cs.SlackHist.Quantile(0.50),
			100*c.MissRate(cl), units.Time(cs.Jitter.Mean()))
	}
	return out
}
