package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"deadlineqos/internal/packet"
)

// Snapshot is a serialisable summary of one run's per-class metrics, for
// archiving experiment results and regression comparison (cmd/qosreport).
// All latencies are nanoseconds; throughputs are fractions of aggregate
// host link capacity.
type Snapshot struct {
	// Label identifies the run (architecture, load, seed...).
	Label string `json:"label"`
	// WindowNs is the measurement window length.
	WindowNs int64 `json:"window_ns"`
	// Classes maps class name to its metrics.
	Classes map[string]ClassSnapshot `json:"classes"`
}

// ClassSnapshot is one class's serialised metrics.
type ClassSnapshot struct {
	GeneratedPackets uint64  `json:"generated_packets"`
	DeliveredPackets uint64  `json:"delivered_packets"`
	Throughput       float64 `json:"throughput"`
	OfferedLoad      float64 `json:"offered_load"`
	LatencyMeanNs    float64 `json:"latency_mean_ns"`
	LatencyP50Ns     int64   `json:"latency_p50_ns"`
	LatencyP95Ns     int64   `json:"latency_p95_ns"`
	LatencyP99Ns     int64   `json:"latency_p99_ns"`
	LatencyP999Ns    int64   `json:"latency_p999_ns"`
	LatencyMaxNs     float64 `json:"latency_max_ns"`
	// Deadline slack at delivery (negative = missed deadline).
	SlackMeanNs     float64 `json:"slack_mean_ns"`
	SlackP50Ns      int64   `json:"slack_p50_ns"`
	MissedDeadlines uint64  `json:"missed_deadlines"`
	MissRate        float64 `json:"miss_rate"`
	JitterMeanNs    float64 `json:"jitter_mean_ns"`
	FrameCount      uint64  `json:"frame_count"`
	FrameMeanNs     float64 `json:"frame_mean_ns"`
	FrameP99Ns      int64   `json:"frame_p99_ns"`
	// Fault/recovery counters (omitted in fault-free runs).
	CorruptedPackets     uint64 `json:"corrupted_packets,omitempty"`
	LostPackets          uint64 `json:"lost_packets,omitempty"`
	RetransmittedPackets uint64 `json:"retransmitted_packets,omitempty"`
	DemotedPackets       uint64 `json:"demoted_packets,omitempty"`
	DuplicateDrops       uint64 `json:"duplicate_drops,omitempty"`
	// Eviction/value counters of value-aware dropping policies (omitted
	// under policies that never shed at the NIC).
	EvictedPackets uint64 `json:"evicted_packets,omitempty"`
	GeneratedValue int64  `json:"generated_value,omitempty"`
	DeliveredValue int64  `json:"delivered_value,omitempty"`
	EvictedValue   int64  `json:"evicted_value,omitempty"`
}

// Snapshot summarises the collector's current state.
func (c *Collector) Snapshot(label string) *Snapshot {
	s := &Snapshot{
		Label:    label,
		WindowNs: int64(c.Window()),
		Classes:  make(map[string]ClassSnapshot, packet.NumClasses),
	}
	for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
		cs := &c.PerClass[cl]
		s.Classes[cl.String()] = ClassSnapshot{
			GeneratedPackets:     cs.GeneratedPackets,
			DeliveredPackets:     cs.DeliveredPackets,
			Throughput:           c.Throughput(cl),
			OfferedLoad:          c.OfferedLoad(cl),
			LatencyMeanNs:        cs.PacketLatency.Mean(),
			LatencyP50Ns:         int64(cs.LatencyHist.Quantile(0.50)),
			LatencyP95Ns:         int64(cs.LatencyHist.Quantile(0.95)),
			LatencyP99Ns:         int64(cs.LatencyHist.Quantile(0.99)),
			LatencyP999Ns:        int64(cs.LatencyHist.Quantile(0.999)),
			LatencyMaxNs:         cs.PacketLatency.Max(),
			SlackMeanNs:          cs.Slack.Mean(),
			SlackP50Ns:           int64(cs.SlackHist.Quantile(0.50)),
			MissedDeadlines:      cs.MissedDeadlines,
			MissRate:             c.MissRate(cl),
			JitterMeanNs:         cs.Jitter.Mean(),
			FrameCount:           cs.FrameLatency.Count(),
			FrameMeanNs:          cs.FrameLatency.Mean(),
			FrameP99Ns:           int64(cs.FrameHist.Quantile(0.99)),
			CorruptedPackets:     cs.CorruptedPackets,
			LostPackets:          cs.LostPackets,
			RetransmittedPackets: cs.RetransmittedPackets,
			DemotedPackets:       cs.DemotedPackets,
			DuplicateDrops:       cs.DuplicateDrops,
			EvictedPackets:       cs.EvictedPackets,
			GeneratedValue:       cs.GeneratedValue,
			DeliveredValue:       cs.DeliveredValue,
			EvictedValue:         cs.EvictedValue,
		}
	}
	return s
}

// WriteJSON serialises the snapshot with indentation.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("stats: parsing snapshot: %w", err)
	}
	if s.Classes == nil {
		return nil, fmt.Errorf("stats: snapshot has no classes")
	}
	return &s, nil
}

// Delta describes one metric's change between two snapshots.
type Delta struct {
	Class, Metric string
	Before, After float64
	// Rel is the relative change (After-Before)/max(|Before|, eps).
	Rel float64
}

// Compare returns the metric deltas between two snapshots whose relative
// change exceeds tolerance (e.g. 0.1 = 10%). Metrics compared: throughput,
// mean and p99 latency, deadline-miss rate, jitter, and frame mean where
// present.
func Compare(before, after *Snapshot, tolerance float64) []Delta {
	var out []Delta
	for class, b := range before.Classes {
		a, ok := after.Classes[class]
		if !ok {
			continue
		}
		metrics := []struct {
			name   string
			bv, av float64
		}{
			{"throughput", b.Throughput, a.Throughput},
			{"latency_mean_ns", b.LatencyMeanNs, a.LatencyMeanNs},
			{"latency_p99_ns", float64(b.LatencyP99Ns), float64(a.LatencyP99Ns)},
			{"miss_rate", b.MissRate, a.MissRate},
			{"jitter_mean_ns", b.JitterMeanNs, a.JitterMeanNs},
			{"frame_mean_ns", b.FrameMeanNs, a.FrameMeanNs},
		}
		for _, m := range metrics {
			if m.bv == 0 && m.av == 0 {
				continue
			}
			base := m.bv
			if base < 0 {
				base = -base
			}
			if base < 1e-12 {
				base = 1e-12
			}
			rel := (m.av - m.bv) / base
			if rel > tolerance || rel < -tolerance {
				out = append(out, Delta{Class: class, Metric: m.name, Before: m.bv, After: m.av, Rel: rel})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// String renders a delta for reports.
func (d Delta) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%%)", d.Class, d.Metric, d.Before, d.After, 100*d.Rel)
}
