package experiments

import (
	"fmt"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/report"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/traffic"
	"deadlineqos/internal/units"
)

// --- E9: guarantee protection — policing rogue hosts ----------------------

// protectionRogueAt is when behavioural windows open: early in the
// warm-up, so the policer's burst allowance (admitted before demotion
// kicks in) drains while the fabric is still settling and the measured
// window sees only the steady-state misbehaviour.
const protectionRogueAt = 200 * units.Microsecond

// protectionGoP is E9's small-frame video model: the Table 1 GoP
// structure at ~1/4 the frame sizes, so each 4 ms frame splits into a
// dozen MTU parts and a 12 ms measurement window holds hundreds of
// multi-part frame deadlines per host. The 32 KB police burst covers its
// largest frame plus worst-case envelope residue, while a rogue host
// overruns it within a couple of frame periods.
func protectionGoP() traffic.GoP {
	return traffic.GoP{
		Pattern: "IBBPBBPBBPBB",
		IMean:   25 * units.Kilobyte, ISigma: 5 * units.Kilobyte / 2,
		PMean: 15 * units.Kilobyte, PSigma: 5 * units.Kilobyte / 2,
		BMean: 25 * units.Kilobyte / 4, BSigma: 5 * units.Kilobyte / 4,
		Min: 5 * units.Kilobyte / 4, Max: 30 * units.Kilobyte,
	}
}

// protectionConfig builds the shared E9 scenario on base: the Advanced
// architecture at 90% static video load with the small-frame GoP above,
// a 2 ms per-frame target, and a 200 us eligibility lead. The lead is
// the scenario's load-bearing knob: the seed's just-in-time shaping
// releases each part barely ahead of its stamp, which makes the strict
// stamped-deadline frame-miss rate structurally high at any load; a
// 200 us lead gives honest flows slack to absorb fabric jitter, so the
// no-fault baseline misses ~nothing and the miss columns isolate the
// damage done by misbehaviour. WarmUp is pinned at 4 ms so behavioural
// windows opening at protectionRogueAt reach steady state (police burst
// drained, queues settled) before measurement starts.
func protectionConfig(base network.Config) network.Config {
	cfg := base
	cfg.Arch = arch.Advanced2VC
	cfg.WarmUp = 4 * units.Millisecond
	cfg.Load = 0.9
	cfg.CheckInvariants = true
	cfg.GoP = protectionGoP()
	cfg.VideoPeriod = 4 * units.Millisecond
	cfg.VideoTarget = 2 * units.Millisecond
	cfg.EligibleLead = 200 * units.Microsecond
	cfg.PoliceBurst = 32 * units.Kilobyte
	return cfg
}

// protectionChurn overlays the session-churn plane E9's forgery rows
// need: deadline forgery only has a surface on ByBandwidth-stamped
// reservations (CAC session grants), so those rows trade static load for
// a steady arrival stream of short sessions, keeping the combined
// regulated load at a contended-but-feasible operating point.
func protectionChurn(cfg *network.Config) {
	cfg.Load = 0.7
	cfg.Sessions = ChurnSessions(300 * units.Microsecond)
}

// protectionRogues returns E9's misbehaving hosts: every other host, so
// half the fabric overdrives its reservation while the interleaved other
// half supplies the innocent flows the isolation metric watches.
func protectionRogues(hosts int) []int {
	var out []int
	for h := 1; h < hosts; h += 2 {
		out = append(out, h)
	}
	return out
}

// RoguePlan returns the E9 behavioural fault plan: every other host
// multiplies its reserved-flow traffic by factor over [from, until).
// Factor 1 is the accounting sentinel — baseline rows use it so the
// innocent/rogue split is measured over the identical host partition.
func RoguePlan(hosts int, from, until units.Time, factor float64) *faults.Plan {
	plan := &faults.Plan{}
	for _, h := range protectionRogues(hosts) {
		plan.Events = append(plan.Events, faults.Event{
			At: from, Until: until, Host: h, Kind: faults.RogueFlow, Scale: factor,
		})
	}
	return plan
}

// ForgePlan returns the deadline-forgery fault plan: the same hosts as
// RoguePlan stamp deadlines scale x tighter than the BWavg recurrence
// permits over [from, until).
func ForgePlan(hosts int, from, until units.Time, scale float64) *faults.Plan {
	plan := &faults.Plan{}
	for _, h := range protectionRogues(hosts) {
		plan.Events = append(plan.Events, faults.Event{
			At: from, Until: until, Host: h, Kind: faults.DeadlineForge, Scale: scale,
		})
	}
	return plan
}

// Protection runs E9, the guarantee-protection comparison. The static
// block runs the video plane under babbling rogues (6x traffic, shaper
// bypassed, virtual clock reset) with each protection layer toggled; the
// churn block runs deadline forgery against CAC session grants. The
// isolation claim is read off the "innocent miss" column: a babbler
// melts the fabric for everyone when unprotected, the NIC policer
// demotes the excess and restores throughput but cannot see stamp
// optimism on latency-mode flows (its envelope replay checks rate, not
// urgency), the occupancy guard restores arbitration fairness but not
// tails — and the two layers together return innocent flows to within
// epsilon of the no-rogue baseline. The forgery rows make the
// complementary point: the envelope test catches essentially every
// forged ByBandwidth stamp and confines the damage to the forger.
func Protection(opt Options) (*report.Table, error) {
	hosts := opt.Base.Topology.Hosts()
	const rogueFactor = 6
	const forgeScale = 0.25
	const guardBytes = 8 * units.Kilobyte
	rows := []struct {
		name   string
		kind   faults.Kind
		scale  float64
		police bool
		guard  units.Size
		churn  bool
	}{
		{"baseline", faults.RogueFlow, 1, false, 0, false},
		{"baseline", faults.RogueFlow, 1, true, 0, false},
		{"rogue", faults.RogueFlow, rogueFactor, false, 0, false},
		{"rogue", faults.RogueFlow, rogueFactor, false, guardBytes, false},
		{"rogue", faults.RogueFlow, rogueFactor, true, 0, false},
		{"rogue", faults.RogueFlow, rogueFactor, true, guardBytes, false},
		{"churn-baseline", faults.RogueFlow, 1, false, 0, true},
		{"forge", faults.DeadlineForge, forgeScale, false, 0, true},
		{"forge", faults.DeadlineForge, forgeScale, true, 0, true},
	}
	t := report.NewTable(
		fmt.Sprintf("Extension: guarantee protection — NIC policing + occupancy guard vs rogue hosts (Advanced 2 VCs, %d/%d hosts rogue at %dx)",
			hosts/2, hosts, rogueFactor),
		"scenario", "police", "guard", "innocent miss %", "rogue miss %",
		"video p99 (ms)", "control p99 (us)", "demoted", "forged")
	for _, row := range rows {
		cfg := protectionConfig(opt.Base)
		if row.churn {
			protectionChurn(&cfg)
		}
		horizon := cfg.WarmUp + cfg.Measure
		if row.kind == faults.DeadlineForge {
			cfg.Faults = ForgePlan(hosts, protectionRogueAt, horizon, row.scale)
		} else {
			cfg.Faults = RoguePlan(hosts, protectionRogueAt, horizon, row.scale)
		}
		cfg.Police = row.police
		cfg.GuardBytes = row.guard
		res, err := network.Run(cfg)
		if err != nil {
			return nil, err
		}
		if err := res.Conservation.Check(); err != nil {
			return nil, fmt.Errorf("experiments: protection %s police=%v guard=%v: %w",
				row.name, row.police, row.guard, err)
		}
		police, guard := "off", "off"
		if row.police {
			police = "on"
		}
		if row.guard > 0 {
			guard = row.guard.String()
		}
		var demoted, forged uint64
		if res.Police != nil {
			demoted, forged = res.Police.Demoted, res.Police.Forged
		}
		mm := &res.PerClass[packet.Multimedia]
		ctrl := &res.PerClass[packet.Control]
		t.Add(row.name, police, guard,
			fmt.Sprintf("%.2f", 100*res.InnocentMissRate()),
			fmt.Sprintf("%.2f", 100*res.RogueMissRate()),
			fmt.Sprintf("%.3f", mm.FrameHist.Quantile(0.99).Milliseconds()),
			fmt.Sprintf("%.2f", ctrl.LatencyHist.Quantile(0.99).Microseconds()),
			fmt.Sprintf("%d", demoted),
			fmt.Sprintf("%d", forged))
	}
	return t, nil
}

// --- E9b: gray-failure detection ------------------------------------------

// transitLinkIDs enumerates the switch-to-switch links of a topology —
// the links a slow drain can be routed around. Host cables are excluded
// on purpose: a gray host cable has no detour (RepairPath can only give
// up), so draining one measures nothing about proactive reroute.
func transitLinkIDs(topo topology.Topology) []faults.LinkID {
	var ids []faults.LinkID
	for sw := 0; sw < topo.Switches(); sw++ {
		for p := 0; p < topo.Radix(sw); p++ {
			if peer := topo.Peer(sw, p); peer.ID != -1 && !peer.IsHost {
				ids = append(ids, faults.LinkID{Switch: sw, Port: p})
			}
		}
	}
	return ids
}

// GrayPlan returns the slow-drain fault plan: the first and middle links
// of ids derate to scale over [from, until) — a persistent derating
// short of hard failure, exactly what the gray detector exists to flag.
// The same plan runs with the detector off and on.
func GrayPlan(ids []faults.LinkID, from, until units.Time, scale float64) *faults.Plan {
	plan := &faults.Plan{}
	for _, l := range []faults.LinkID{ids[0], ids[len(ids)/2]} {
		plan.Events = append(plan.Events,
			faults.Event{At: from, Link: l, Kind: faults.Derate, Scale: scale},
			faults.Event{At: until, Link: l, Kind: faults.Derate, Scale: 1.0})
	}
	return plan
}

// GrayDrain measures the gray-failure detector: two links slow-drain to
// 20% capacity for most of the run; with the detector armed, flows
// crossing them are proactively rerouted (and their sessions revalidated)
// once the derating outlasts the persistence threshold, instead of eating
// the latency until a hard SLO trip. The table compares regulated-class
// tails with the detector off and on, next to the detector's own
// activity counters. Session churn is on so revalidation has live grants
// to act on.
func GrayDrain(opt Options) (*report.Table, error) {
	ids := transitLinkIDs(opt.Base.Topology)
	t := report.NewTable(
		"Extension: gray-failure detection — slow-drain links, proactive reroute (Advanced 2 VCs, 70% load + churn)",
		"detector", "detections", "flows rerouted", "revalidations",
		"frame miss %", "video p99 (ms)", "control p99 (us)")
	for _, detect := range []bool{false, true} {
		cfg := protectionConfig(opt.Base)
		protectionChurn(&cfg)
		horizon := cfg.WarmUp + cfg.Measure
		cfg.Faults = GrayPlan(ids, cfg.WarmUp+units.Millisecond, horizon, 0.2)
		if detect {
			cfg.Gray = &network.GrayConfig{}
		}
		res, err := network.Run(cfg)
		if err != nil {
			return nil, err
		}
		if err := res.Conservation.Check(); err != nil {
			return nil, fmt.Errorf("experiments: gray detect=%v: %w", detect, err)
		}
		label := "off"
		detections, rerouted, revals := "-", "-", "-"
		if detect {
			label = "on"
			if res.Gray == nil {
				return nil, fmt.Errorf("experiments: gray: no Gray report in results")
			}
			detections = fmt.Sprintf("%d", res.Gray.Detections)
			rerouted = fmt.Sprintf("%d", res.Gray.FlowsRerouted)
			revals = fmt.Sprintf("%d", res.Gray.Revalidations)
		}
		mm := &res.PerClass[packet.Multimedia]
		ctrl := &res.PerClass[packet.Control]
		t.Add(label, detections, rerouted, revals,
			fmt.Sprintf("%.2f", 100*res.InnocentMissRate()),
			fmt.Sprintf("%.3f", mm.FrameHist.Quantile(0.99).Milliseconds()),
			fmt.Sprintf("%.2f", ctrl.LatencyHist.Quantile(0.99).Microseconds()))
	}
	return t, nil
}
