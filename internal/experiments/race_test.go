//go:build race

package experiments

// raceEnabled scales the determinism cross-check down when the race
// detector multiplies every run's cost: the interleaving coverage the
// detector wants does not need full-length measurement windows.
const raceEnabled = true
