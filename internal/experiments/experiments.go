// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the ablations listed in DESIGN.md. Each function
// maps to one experiment id from DESIGN.md's per-experiment index, runs the
// required sweep through the harness, and renders the same rows/series the
// paper reports.
//
// Scale note: Options.Base selects the network size and measurement window.
// Paper() uses the full 128-endpoint MIN of §4.1; Quick() uses a 16-host
// network with shorter windows that preserves every qualitative behaviour
// and runs orders of magnitude faster — it is what the Go benchmark harness
// and the test suite drive.
package experiments

import (
	"fmt"
	"sort"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/collective"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/harness"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/report"
	"deadlineqos/internal/session"
	"deadlineqos/internal/stats"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// Options selects the scale and coverage of an experiment.
type Options struct {
	Base        network.Config
	Archs       []arch.Arch
	Loads       []float64
	Parallelism int
}

// WithShards returns o with every simulation configured to run across n
// engine shards (see network.Config.Shards). Results are byte-identical
// at every shard count, so this only changes wall-clock time; it composes
// with Parallelism, which parallelises across runs.
func (o Options) WithShards(n int) Options {
	o.Base.Shards = n
	return o
}

// DefaultLoads is the paper's input-load sweep (10%..100%).
func DefaultLoads() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// Paper returns the full-scale experiment options of §4.1: the
// 128-endpoint MIN, all four architectures, the full load sweep.
func Paper() Options {
	return Options{
		Base:  network.DefaultConfig(),
		Archs: arch.All(),
		Loads: DefaultLoads(),
	}
}

// Quick returns reduced-scale options for tests and benchmarks.
func Quick() Options {
	base := network.SmallConfig()
	base.WarmUp = 1 * units.Millisecond
	base.Measure = 12 * units.Millisecond
	return Options{
		Base:  base,
		Archs: arch.All(),
		Loads: []float64{0.2, 0.6, 1.0},
	}
}

// maxLoad returns the highest load of the sweep (the paper measures CDFs
// at 100% input load).
func (o Options) maxLoad() float64 {
	m := 0.0
	for _, l := range o.Loads {
		if l > m {
			m = l
		}
	}
	return m
}

func loadPct(l float64) string { return fmt.Sprintf("%.0f%%", 100*l) }

// --- T1: Table 1, the traffic mix ---------------------------------------

// Table1 reproduces Table 1: the per-class traffic injected by every host.
// The configured parameters are reported next to the measured bandwidth
// share of each class in a full-load run, validating the 4 x 25% mix.
func Table1(opt Options) (*report.Table, error) {
	cfg := opt.Base
	cfg.Arch = arch.Advanced2VC
	cfg.Load = opt.maxLoad()
	res, err := network.Run(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 1: traffic injected per host",
		"Name", "% BW (config)", "% BW (offered)", "Application frame", "Notes")
	rows := []struct {
		cl    packet.Class
		frame string
		notes string
	}{
		{packet.Control, "[128 bytes, 2 Kbytes]", "Small control messages"},
		{packet.Multimedia, "[1 Kbyte, 120 Kbytes]", fmt.Sprintf("synthetic MPEG-4 GoP, %d streams/host", res.VideoStreamsPerHost)},
		{packet.BestEffort, "[128 bytes, 100 Kbytes]", "Self-similar internet-like traffic"},
		{packet.Background, "[128 bytes, 100 Kbytes]", "Self-similar internet-like traffic"},
	}
	for _, r := range rows {
		t.Add(r.cl.String(),
			fmt.Sprintf("%.0f", 100*cfg.ClassShare[r.cl]*cfg.Load),
			fmt.Sprintf("%.1f", 100*res.OfferedLoad(r.cl)),
			r.frame, r.notes)
	}
	return t, nil
}

// --- F2: Figure 2, Control traffic --------------------------------------

// Fig2 reproduces Figure 2: average latency of Control traffic versus
// input load for the four architectures (left plot), and the CDF of
// Control packet latency at the highest load (right plot).
func Fig2(opt Options) (latency *report.Table, cdf *report.Table, plot *report.Plot, err error) {
	points := harness.Sweep(opt.Base, opt.Archs, opt.Loads, opt.Parallelism)
	if err := harness.FirstErr(points); err != nil {
		return nil, nil, nil, err
	}
	latency, cdf, plot = fig2Render(opt, points)
	return latency, cdf, plot, nil
}

// fig2Render builds Figure 2's artefacts from an existing sweep.
func fig2Render(opt Options, points []harness.Point) (latency, cdf *report.Table, plot *report.Plot) {
	latency = report.NewTable("Figure 2 (left): Control traffic average latency (us) vs input load",
		append([]string{"load"}, archNames(opt.Archs)...)...)
	plot = report.NewPlot("Figure 2: Control avg latency vs load", "load", "latency (us)")
	fillLatencyVsLoad(latency, plot, opt, points, func(r *network.Results) float64 {
		return units.Time(r.PerClass[packet.Control].PacketLatency.Mean()).Microseconds()
	})
	cdf = cdfTable("Figure 2 (right): CDF of Control latency at full load (us)",
		opt, points, func(r *network.Results) *stats.Histogram {
			return r.PerClass[packet.Control].LatencyHist
		}, func(t units.Time) float64 { return t.Microseconds() })
	return latency, cdf, plot
}

// --- F3: Figure 3, Video traffic -----------------------------------------

// Fig3 reproduces Figure 3: average latency of video frames (full frame
// transfers, not packets) versus load, and the CDF of frame latency at the
// highest load. With the §3.1 deadline rule the frame latency should pin
// near the configured target (10 ms) for the EDF architectures.
func Fig3(opt Options) (latency *report.Table, cdf *report.Table, plot *report.Plot, err error) {
	points := harness.Sweep(opt.Base, opt.Archs, opt.Loads, opt.Parallelism)
	if err := harness.FirstErr(points); err != nil {
		return nil, nil, nil, err
	}
	latency, cdf, plot = fig3Render(opt, points)
	return latency, cdf, plot, nil
}

// fig3Render builds Figure 3's artefacts from an existing sweep.
func fig3Render(opt Options, points []harness.Point) (latency, cdf *report.Table, plot *report.Plot) {
	latency = report.NewTable("Figure 3 (left): Video frame average latency (ms) vs input load",
		append([]string{"load"}, archNames(opt.Archs)...)...)
	plot = report.NewPlot("Figure 3: Video frame avg latency vs load", "load", "latency (ms)")
	fillLatencyVsLoad(latency, plot, opt, points, func(r *network.Results) float64 {
		return units.Time(r.PerClass[packet.Multimedia].FrameLatency.Mean()).Milliseconds()
	})
	cdf = cdfTable("Figure 3 (right): CDF of Video frame latency at full load (ms)",
		opt, points, func(r *network.Results) *stats.Histogram {
			return r.PerClass[packet.Multimedia].FrameHist
		}, func(t units.Time) float64 { return t.Milliseconds() })
	return latency, cdf, plot
}

// --- F4: Figure 4, best-effort throughput --------------------------------

// Fig4 reproduces Figure 4: delivered throughput of the two best-effort
// classes versus input load. Under the EDF architectures the classes are
// differentiated by their deadline weights; under Traditional 2 VCs they
// look identical.
func Fig4(opt Options) (*report.Table, *report.Plot, error) {
	points := harness.Sweep(opt.Base, opt.Archs, opt.Loads, opt.Parallelism)
	if err := harness.FirstErr(points); err != nil {
		return nil, nil, err
	}
	t, plot := fig4Render(opt, points)
	return t, plot, nil
}

// fig4Render builds Figure 4's artefacts from an existing sweep.
func fig4Render(opt Options, points []harness.Point) (*report.Table, *report.Plot) {
	header := []string{"load"}
	for _, a := range opt.Archs {
		header = append(header, a.String()+" BE", a.String()+" BG")
	}
	t := report.NewTable("Figure 4: best-effort classes delivered throughput (% of host link) vs input load", header...)
	plot := report.NewPlot("Figure 4: best-effort throughput vs load", "load", "throughput (%)")
	byArch := harness.ByArch(points)
	for li, load := range opt.Loads {
		row := []any{loadPct(load)}
		for _, a := range opt.Archs {
			r := byArch[a][li].Res
			row = append(row, 100*r.Throughput(packet.BestEffort), 100*r.Throughput(packet.Background))
		}
		t.AddF(row...)
	}
	for _, a := range opt.Archs {
		var beY, bgY []float64
		for _, p := range byArch[a] {
			beY = append(beY, 100*p.Res.Throughput(packet.BestEffort))
			bgY = append(bgY, 100*p.Res.Throughput(packet.Background))
		}
		plot.AddSeries(a.String()+" BE", opt.Loads, beY)
		plot.AddSeries(a.String()+" BG", opt.Loads, bgY)
	}
	return t, plot
}

// Figures bundles the artefacts of Figures 2-4 built from a single sweep.
type Figures struct {
	Fig2Latency, Fig2CDF *report.Table
	Fig3Latency, Fig3CDF *report.Table
	Fig4Throughput       *report.Table
	Plots                []*report.Plot
}

// AllFigures regenerates Figures 2, 3 and 4 from one shared
// (architecture x load) sweep — the same simulations feed all three, as in
// the paper's evaluation, and the sweep cost is paid once.
func AllFigures(opt Options) (*Figures, error) {
	points := harness.Sweep(opt.Base, opt.Archs, opt.Loads, opt.Parallelism)
	if err := harness.FirstErr(points); err != nil {
		return nil, err
	}
	f := &Figures{}
	var p2, p3, p4 *report.Plot
	f.Fig2Latency, f.Fig2CDF, p2 = fig2Render(opt, points)
	f.Fig3Latency, f.Fig3CDF, p3 = fig3Render(opt, points)
	f.Fig4Throughput, p4 = fig4Render(opt, points)
	f.Plots = []*report.Plot{p2, p3, p4}
	return f, nil
}

// --- S1: order-error latency penalty --------------------------------------

// OrderPenalty reproduces the §3.4/§5 claim: relative to the Ideal
// architecture, the Simple proposal increases average Control latency
// (the paper reports up to ~25%) while the Advanced (take-over queue)
// proposal recovers most of it (~5%). Order-error counts come from the
// measurement oracle. The experiment runs twice: with the paper's 20 µs
// eligible-time shaping and with shaping disabled — shaping itself
// suppresses order pressure, so the penalty is most visible without it.
func OrderPenalty(opt Options) (*report.Table, error) {
	archs := []arch.Arch{arch.Ideal, arch.Simple2VC, arch.Advanced2VC}
	t := report.NewTable(
		fmt.Sprintf("Order-error penalty at %s load (Control traffic)", loadPct(opt.maxLoad())),
		"architecture", "shaping", "avg latency (us)", "vs Ideal", "order errors", "errors/dequeue", "take-overs")
	for _, shaping := range []bool{true, false} {
		cfg := opt.Base
		cfg.TrackOrderErrors = true
		if !shaping {
			cfg.EligibleLead = 0
		}
		points := harness.Sweep(cfg, archs, []float64{opt.maxLoad()}, opt.Parallelism)
		if err := harness.FirstErr(points); err != nil {
			return nil, err
		}
		byArch := harness.ByArch(points)
		ideal := byArch[arch.Ideal][0].Res.PerClass[packet.Control].PacketLatency.Mean()
		label := "20us"
		if !shaping {
			label = "off"
		}
		for _, a := range archs {
			r := byArch[a][0].Res
			lat := r.PerClass[packet.Control].PacketLatency.Mean()
			rate := 0.0
			deq := r.XbarTransfers + r.LinkSends
			if deq > 0 {
				rate = float64(r.OrderErrors) / float64(deq)
			}
			t.Add(a.String(), label,
				fmt.Sprintf("%.2f", units.Time(lat).Microseconds()),
				fmt.Sprintf("%+.1f%%", 100*(lat/ideal-1)),
				fmt.Sprintf("%d", r.OrderErrors),
				fmt.Sprintf("%.4f", rate),
				fmt.Sprintf("%d", r.TakeOvers))
		}
	}
	return t, nil
}

// --- S2: video frames within the target band ------------------------------

// VideoBand reproduces the §5 claim that with the frame-latency deadline
// rule more than 99% of video frames complete within ~1 ms of the 10 ms
// target for the EDF architectures.
func VideoBand(opt Options) (*report.Table, error) {
	points := harness.Sweep(opt.Base, opt.Archs, []float64{opt.maxLoad()}, opt.Parallelism)
	if err := harness.FirstErr(points); err != nil {
		return nil, err
	}
	target := opt.Base.VideoTarget
	t := report.NewTable(
		fmt.Sprintf("Video frames within latency bands at %s load (target %v)", loadPct(opt.maxLoad()), target),
		"architecture", "frames", "mean (ms)", "<= target+10%", "<= target+50%")
	for _, p := range points {
		h := p.Res.PerClass[packet.Multimedia].FrameHist
		fl := p.Res.PerClass[packet.Multimedia].FrameLatency
		t.Add(p.Arch.String(),
			fmt.Sprintf("%d", h.Count()),
			fmt.Sprintf("%.2f", units.Time(fl.Mean()).Milliseconds()),
			fmt.Sprintf("%.1f%%", 100*h.FractionBelow(target+target/10)),
			fmt.Sprintf("%.1f%%", 100*h.FractionBelow(target+target/2)))
	}
	return t, nil
}

// --- A1: eligible-time ablation -------------------------------------------

// AblationEligibleTime varies the eligible-time lead (0 disables the §3.1
// shaping) on the Advanced architecture and reports its effect on order
// pressure and latency: shaping is what keeps multimedia bursts from
// violating the ascending-deadline assumption at the switches.
func AblationEligibleTime(opt Options) (*report.Table, error) {
	leads := []units.Time{0, 5 * units.Microsecond, 20 * units.Microsecond, 100 * units.Microsecond}
	t := report.NewTable("Ablation: eligible-time lead (Advanced 2 VCs, full load)",
		"lead", "control lat (us)", "video frame lat (ms)", "order errors", "take-overs")
	for _, lead := range leads {
		cfg := opt.Base
		cfg.Arch = arch.Advanced2VC
		cfg.Load = opt.maxLoad()
		cfg.EligibleLead = lead
		cfg.TrackOrderErrors = true
		res, err := network.Run(cfg)
		if err != nil {
			return nil, err
		}
		t.Add(lead.String(),
			fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Control].PacketLatency.Mean()).Microseconds()),
			fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Multimedia].FrameLatency.Mean()).Milliseconds()),
			fmt.Sprintf("%d", res.OrderErrors),
			fmt.Sprintf("%d", res.TakeOvers))
	}
	return t, nil
}

// --- A2: buffer size ablation ----------------------------------------------

// AblationBufferSize varies the per-VC buffer capacity around the paper's
// 8 KB and reports latency and total throughput for the Advanced
// architecture at full load.
func AblationBufferSize(opt Options) (*report.Table, error) {
	sizes := []units.Size{4 * units.Kilobyte, 8 * units.Kilobyte, 16 * units.Kilobyte, 32 * units.Kilobyte}
	t := report.NewTable("Ablation: switch buffer per VC (Advanced 2 VCs, full load)",
		"buffer/VC", "control lat (us)", "video frame lat (ms)", "total throughput (%)")
	for _, size := range sizes {
		cfg := opt.Base
		cfg.Arch = arch.Advanced2VC
		cfg.Load = opt.maxLoad()
		cfg.BufPerVC = size
		res, err := network.Run(cfg)
		if err != nil {
			return nil, err
		}
		var thru float64
		for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
			thru += res.Throughput(cl)
		}
		t.Add(size.String(),
			fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Control].PacketLatency.Mean()).Microseconds()),
			fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Multimedia].FrameLatency.Mean()).Milliseconds()),
			fmt.Sprintf("%.1f", 100*thru))
	}
	return t, nil
}

// --- A3: clock skew ablation -------------------------------------------------

// AblationClockSkew varies the per-node clock skew and shows the TTD
// mechanism (§3.3) keeps QoS intact without clock synchronisation.
func AblationClockSkew(opt Options) (*report.Table, error) {
	skews := []units.Time{0, units.Microsecond, 5 * units.Microsecond, 20 * units.Microsecond}
	t := report.NewTable("Ablation: node clock skew (Advanced 2 VCs, full load)",
		"max skew", "control lat (us)", "control p99 (us)", "video frame lat (ms)")
	for _, skew := range skews {
		cfg := opt.Base
		cfg.Arch = arch.Advanced2VC
		cfg.Load = opt.maxLoad()
		cfg.ClockSkewMax = skew
		res, err := network.Run(cfg)
		if err != nil {
			return nil, err
		}
		ctrl := &res.PerClass[packet.Control]
		t.Add(skew.String(),
			fmt.Sprintf("%.2f", units.Time(ctrl.PacketLatency.Mean()).Microseconds()),
			fmt.Sprintf("%.2f", ctrl.LatencyHist.Quantile(0.99).Microseconds()),
			fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Multimedia].FrameLatency.Mean()).Milliseconds()))
	}
	return t, nil
}

// --- shared helpers -----------------------------------------------------------

func archNames(archs []arch.Arch) []string {
	names := make([]string, len(archs))
	for i, a := range archs {
		names[i] = a.String()
	}
	return names
}

// fillLatencyVsLoad renders a load-indexed latency table and plot from a
// sweep, extracting the metric per results.
func fillLatencyVsLoad(t *report.Table, plot *report.Plot, opt Options,
	points []harness.Point, metric func(*network.Results) float64) {
	byArch := harness.ByArch(points)
	for li, load := range opt.Loads {
		row := []any{loadPct(load)}
		for _, a := range opt.Archs {
			row = append(row, metric(byArch[a][li].Res))
		}
		t.AddF(row...)
	}
	for _, a := range opt.Archs {
		var y []float64
		for _, p := range byArch[a] {
			y = append(y, metric(p.Res))
		}
		plot.AddSeries(a.String(), opt.Loads, y)
	}
}

// cdfTable renders per-architecture latency quantiles at the highest load
// of a sweep.
func cdfTable(title string, opt Options, points []harness.Point,
	hist func(*network.Results) *stats.Histogram, scale func(units.Time) float64) *report.Table {
	quantiles := []float64{0.50, 0.90, 0.99, 0.999, 1.0}
	header := []string{"architecture", "samples"}
	for _, q := range quantiles {
		header = append(header, fmt.Sprintf("p%g", q*100))
	}
	t := report.NewTable(title, header...)
	max := opt.maxLoad()
	for _, p := range points {
		if p.Load != max {
			continue
		}
		h := hist(p.Res)
		row := []any{p.Arch.String(), fmt.Sprintf("%d", h.Count())}
		for _, q := range quantiles {
			row = append(row, scale(h.Quantile(q)))
		}
		t.AddF(row...)
	}
	return t
}

// --- A4: hotspot tolerance ------------------------------------------------------

// HotspotTolerance runs the Table 1 mix with half of all best-effort
// bursts aimed at one victim host (the classic hotspot stress) and reports
// whether each architecture protects the regulated classes. Absolute VC
// priority plus admission-controlled regulated routes should make the EDF
// architectures immune; the Traditional switch shares its best-effort VC
// fate with everyone.
func HotspotTolerance(opt Options) (*report.Table, error) {
	t := report.NewTable("Extension: best-effort hotspot (50% of BE bursts to host 0, full load)",
		"architecture", "hotspot", "control lat (us)", "video frame lat (ms)", "BE thru (%)", "BG thru (%)")
	for _, a := range opt.Archs {
		for _, hot := range []bool{false, true} {
			cfg := opt.Base
			cfg.Arch = a
			cfg.Load = opt.maxLoad()
			if hot {
				cfg.HotspotFraction = 0.5
				cfg.HotspotHost = 0
			}
			res, err := network.Run(cfg)
			if err != nil {
				return nil, err
			}
			label := "off"
			if hot {
				label = "on"
			}
			t.Add(a.String(), label,
				fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Control].PacketLatency.Mean()).Microseconds()),
				fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Multimedia].FrameLatency.Mean()).Milliseconds()),
				fmt.Sprintf("%.1f", 100*res.Throughput(packet.BestEffort)),
				fmt.Sprintf("%.1f", 100*res.Throughput(packet.Background)))
		}
	}
	return t, nil
}

// --- E1: video jitter ------------------------------------------------------------

// VideoJitter reports the jitter figures the paper says it omitted "due to
// lack of space" (§5): per-packet jitter (mean |Δlatency| between
// consecutive packets of a flow) and the frame-latency standard deviation,
// per architecture at full load. The EDF architectures should show
// dramatically tighter figures than Traditional.
func VideoJitter(opt Options) (*report.Table, error) {
	points := harness.Sweep(opt.Base, opt.Archs, []float64{opt.maxLoad()}, opt.Parallelism)
	if err := harness.FirstErr(points); err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Extension: video jitter at %s load", loadPct(opt.maxLoad())),
		"architecture", "packet jitter (us)", "frame lat stddev (ms)", "frame p99-p50 (ms)")
	for _, p := range points {
		mm := &p.Res.PerClass[packet.Multimedia]
		spread := mm.FrameHist.Quantile(0.99) - mm.FrameHist.Quantile(0.50)
		t.Add(p.Arch.String(),
			fmt.Sprintf("%.2f", units.Time(mm.Jitter.Mean()).Microseconds()),
			fmt.Sprintf("%.3f", units.Time(mm.FrameLatency.StdDev()).Milliseconds()),
			fmt.Sprintf("%.3f", spread.Milliseconds()))
	}
	return t, nil
}

// --- A5: Traditional arbitration-table ablation --------------------------------

// AblationVCTable varies the Traditional architecture's weighted VC
// arbitration table — the only QoS knob that architecture has — and shows
// that no weighting recovers what deadline scheduling provides: more
// regulated slots shrink best-effort service without fixing the
// Control/Multimedia mixing inside the regulated VC.
func AblationVCTable(opt Options) (*report.Table, error) {
	tables := []struct {
		name    string
		entries []packet.VC
	}{
		{"1:1", []packet.VC{packet.VCRegulated, packet.VCBestEffort}},
		{"3:1", nil}, // the default
		{"7:1", []packet.VC{
			packet.VCRegulated, packet.VCRegulated, packet.VCRegulated, packet.VCRegulated,
			packet.VCRegulated, packet.VCRegulated, packet.VCRegulated, packet.VCBestEffort}},
	}
	t := report.NewTable("Ablation: Traditional VC arbitration table weights (full load)",
		"table (reg:be)", "control lat (us)", "video frame lat (ms)", "BE thru (%)", "BG thru (%)")
	for _, tab := range tables {
		cfg := opt.Base
		cfg.Arch = arch.Traditional2VC
		cfg.Load = opt.maxLoad()
		cfg.VCArbitrationTable = tab.entries
		res, err := network.Run(cfg)
		if err != nil {
			return nil, err
		}
		t.Add(tab.name,
			fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Control].PacketLatency.Mean()).Microseconds()),
			fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Multimedia].FrameLatency.Mean()).Milliseconds()),
			fmt.Sprintf("%.1f", 100*res.Throughput(packet.BestEffort)),
			fmt.Sprintf("%.1f", 100*res.Throughput(packet.Background)))
	}
	return t, nil
}

// --- E2: more VCs instead of deadlines ---------------------------------------

// ManyVCs quantifies the paper's concluding claim: to approach the EDF
// architectures' QoS with conventional means "it would be necessary to
// implement many more VCs", which doubles buffer silicon per port and
// still cannot target per-frame latencies. The experiment compares the
// 2-VC and 4-VC Traditional switches (the latter giving every class its
// own weighted VC) against the Advanced proposal at full load.
func ManyVCs(opt Options) (*report.Table, error) {
	archs := []arch.Arch{arch.Traditional2VC, arch.Traditional4VC, arch.Advanced2VC}
	points := harness.Sweep(opt.Base, archs, []float64{opt.maxLoad()}, opt.Parallelism)
	if err := harness.FirstErr(points); err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Extension: buying QoS with VCs vs deadlines (%s load)", loadPct(opt.maxLoad())),
		"architecture", "VC buffers/port", "control lat (us)", "control p99 (us)",
		"video frame lat (ms)", "frame stddev (ms)", "BE thru (%)", "BG thru (%)")
	for _, p := range points {
		r := p.Res
		ctrl := &r.PerClass[packet.Control]
		mm := &r.PerClass[packet.Multimedia]
		t.Add(p.Arch.String(),
			fmt.Sprintf("%d", p.Arch.VCs()),
			fmt.Sprintf("%.2f", units.Time(ctrl.PacketLatency.Mean()).Microseconds()),
			fmt.Sprintf("%.2f", ctrl.LatencyHist.Quantile(0.99).Microseconds()),
			fmt.Sprintf("%.2f", units.Time(mm.FrameLatency.Mean()).Milliseconds()),
			fmt.Sprintf("%.3f", units.Time(mm.FrameLatency.StdDev()).Milliseconds()),
			fmt.Sprintf("%.1f", 100*r.Throughput(packet.BestEffort)),
			fmt.Sprintf("%.1f", 100*r.Throughput(packet.Background)))
	}
	return t, nil
}

// --- replicated confidence runs -----------------------------------------------

// Fig2Confidence reruns Figure 2's Control-latency comparison with several
// seeds per cell and reports mean ± standard deviation, quantifying how
// much of the single-run figures is noise. The paired-seed design (the
// same seeds, and therefore the same offered traffic, across
// architectures) matches the paper's methodology.
func Fig2Confidence(opt Options, seeds []uint64) (*report.Table, error) {
	points := harness.Replicate(opt.Base, opt.Archs, opt.Loads, seeds, opt.Parallelism)
	t := report.NewTable(
		fmt.Sprintf("Figure 2 with %d seeds: Control latency mean±std (us)", len(seeds)),
		append([]string{"load"}, archNames(opt.Archs)...)...)
	metric := func(r *network.Results) float64 {
		return units.Time(r.PerClass[packet.Control].PacketLatency.Mean()).Microseconds()
	}
	byArch := map[arch.Arch][]harness.ReplicatedPoint{}
	for _, p := range points {
		if p.Err != nil {
			return nil, p.Err
		}
		byArch[p.Arch] = append(byArch[p.Arch], p)
	}
	for li, load := range opt.Loads {
		row := []string{loadPct(load)}
		for _, a := range opt.Archs {
			mean, std := byArch[a][li].MeanStd(metric)
			row = append(row, fmt.Sprintf("%.2f±%.2f", mean, std))
		}
		t.Add(row...)
	}
	return t, nil
}

// --- A6: crossbar speedup ablation ------------------------------------------

// AblationXbarSpeedup varies the internal crossbar bandwidth relative to
// the link rate. CIOQ switches often run the fabric faster than the links
// to mask arbitration inefficiency; the experiment shows how much of the
// Advanced architecture's performance depends on that (speedup 1 = the
// evaluation's assumption).
func AblationXbarSpeedup(opt Options) (*report.Table, error) {
	speedups := []float64{1.0, 1.5, 2.0}
	t := report.NewTable("Ablation: crossbar speedup (Advanced 2 VCs, full load)",
		"speedup", "control lat (us)", "video frame lat (ms)", "total throughput (%)")
	for _, sp := range speedups {
		cfg := opt.Base
		cfg.Arch = arch.Advanced2VC
		cfg.Load = opt.maxLoad()
		cfg.XbarBW = units.Bandwidth(sp * float64(cfg.LinkBW))
		res, err := network.Run(cfg)
		if err != nil {
			return nil, err
		}
		var thru float64
		for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
			thru += res.Throughput(cl)
		}
		t.Add(fmt.Sprintf("%.1fx", sp),
			fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Control].PacketLatency.Mean()).Microseconds()),
			fmt.Sprintf("%.2f", units.Time(res.PerClass[packet.Multimedia].FrameLatency.Mean()).Milliseconds()),
			fmt.Sprintf("%.1f", 100*thru))
	}
	return t, nil
}

// --- E3: parallel-application collective ---------------------------------------

// CollectiveCompletion runs an MPI-style ring collective (8 KB chunks,
// N-1 rounds) while the Table 1 multimedia and best-effort classes load
// the network, and reports the collective's completion time under each
// architecture — the parallel-application motivation of the paper's
// introduction turned into a measurement.
func CollectiveCompletion(opt Options) (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Extension: ring-collective completion under %s interference", loadPct(opt.maxLoad())),
		"architecture", "completion", "slowest host round")
	for _, a := range opt.Archs {
		cfg := opt.Base
		cfg.Arch = a
		cfg.Load = opt.maxLoad()
		// The collective supplies the latency-critical traffic itself;
		// multimedia shares the regulated VC, best-effort fills the rest.
		cfg.ClassShare = [packet.NumClasses]float64{0, 0.25, 0.375, 0.375}
		runner := collective.Attach(&cfg, collective.Config{
			Chunk: 8 * units.Kilobyte, Class: packet.Control,
			StartAt: cfg.WarmUp,
		})
		n, err := network.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := runner.Bind(n); err != nil {
			return nil, err
		}
		n.Run()
		completion := "incomplete"
		if runner.Done() {
			completion = runner.CompletionTime().String()
		}
		t.Add(a.String(), completion, fmt.Sprintf("%d", runner.MinRound()))
	}
	return t, nil
}

// --- E4: deadline slack -------------------------------------------------------

// DeadlineSlack reports the delivered deadline-slack picture at full
// load: per architecture and regulated class, the mean and the low
// quantiles of slack (deadline minus delivery time on the destination's
// clock — negative means the deadline was missed) plus the miss rate.
// The low quantiles are the interesting tail: p1 is how close the worst
// percentile of packets came to (or went past) its deadline. An
// observability extension; the paper only reports latency.
func DeadlineSlack(opt Options) (*report.Table, error) {
	points := harness.Sweep(opt.Base, opt.Archs, []float64{opt.maxLoad()}, opt.Parallelism)
	if err := harness.FirstErr(points); err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Extension: delivered deadline slack at %s load (us; negative = late)", loadPct(opt.maxLoad())),
		"architecture", "class", "slack avg", "slack p1", "slack p5", "slack p50", "miss %")
	for _, p := range points {
		for _, cl := range []packet.Class{packet.Control, packet.Multimedia} {
			cs := &p.Res.PerClass[cl]
			t.Add(p.Arch.String(), cl.String(),
				fmt.Sprintf("%.2f", units.Time(cs.Slack.Mean()).Microseconds()),
				fmt.Sprintf("%.2f", cs.SlackHist.Quantile(0.01).Microseconds()),
				fmt.Sprintf("%.2f", cs.SlackHist.Quantile(0.05).Microseconds()),
				fmt.Sprintf("%.2f", cs.SlackHist.Quantile(0.50).Microseconds()),
				fmt.Sprintf("%.2f", 100*p.Res.MissRate(cl)))
		}
	}
	return t, nil
}

// --- R1: chaos — graceful degradation under faults ----------------------------

// chaosLinkIDs enumerates every wired switch output link of a topology.
func chaosLinkIDs(topo topology.Topology) []faults.LinkID {
	var ids []faults.LinkID
	for sw := 0; sw < topo.Switches(); sw++ {
		for p := 0; p < topo.Radix(sw); p++ {
			if topo.Peer(sw, p).ID != -1 {
				ids = append(ids, faults.LinkID{Switch: sw, Port: p})
			}
		}
	}
	return ids
}

// ChaosPlan returns the standard chaos-scenario fault plan for a run of
// the given horizon: a handful of link flaps and derate epochs plus a
// uniform 1e-6 bit-error rate on every link.
func ChaosPlan(seed uint64, topo topology.Topology, horizon units.Time) *faults.Plan {
	plan := faults.RandomPlan(seed, chaosLinkIDs(topo), horizon, faults.RandomConfig{
		Flaps:    4,
		MinDown:  horizon / 200,
		MaxDown:  horizon / 25,
		Derates:  2,
		MinScale: 0.3,
	})
	plan.DefaultBER = 1e-6
	return plan
}

// Chaos runs the robustness scenario: the Table 1 mix at 80% load with
// the ChaosPlan fault schedule and the end-to-end reliability layer, per
// architecture. It reports the regulated classes' service under faults
// next to the healthy baseline, the recovery activity, and verifies the
// conservation invariant — the table shows whether deadline scheduling
// degrades gracefully when the fabric stops being lossless.
func Chaos(opt Options) (*report.Table, error) {
	t := report.NewTable(
		"Robustness: fault injection at 80% load (flaps + derates + 1e-6 BER, end-to-end retransmission)",
		"architecture", "faults", "control p99 (us)", "video frame p99 (ms)",
		"frames <= target+50%", "lost", "corrupt", "retx", "demoted")
	for _, a := range opt.Archs {
		for _, chaos := range []bool{false, true} {
			cfg := opt.Base
			cfg.Arch = a
			cfg.Load = 0.8
			cfg.CheckInvariants = true
			if chaos {
				cfg.Faults = ChaosPlan(cfg.Seed+7, cfg.Topology, cfg.WarmUp+cfg.Measure)
				cfg.Reliability = hostif.Reliability{Enabled: true}
			}
			res, err := network.Run(cfg)
			if err != nil {
				return nil, err
			}
			if err := res.Conservation.Check(); err != nil {
				return nil, fmt.Errorf("experiments: %s chaos=%v: %w", a, chaos, err)
			}
			label := "off"
			if chaos {
				label = "on"
			}
			ctrl := &res.PerClass[packet.Control]
			mm := &res.PerClass[packet.Multimedia]
			target := cfg.VideoTarget
			t.Add(a.String(), label,
				fmt.Sprintf("%.2f", ctrl.LatencyHist.Quantile(0.99).Microseconds()),
				fmt.Sprintf("%.2f", mm.FrameHist.Quantile(0.99).Milliseconds()),
				fmt.Sprintf("%.1f%%", 100*mm.FrameHist.FractionBelow(target+target/2)),
				fmt.Sprintf("%d", res.LostOnLink),
				fmt.Sprintf("%d", res.Conservation.ArrivedCorrupt),
				fmt.Sprintf("%d", res.Reliability.Retransmitted),
				fmt.Sprintf("%d", res.Reliability.Demoted))
		}
	}
	return t, nil
}

// --- E5: dynamic session churn --------------------------------------------------

// ChurnPlan returns the fault plan the churn experiment's faulty runs use:
// derate/restore epochs only, no flaps or bit errors, so every fault
// exercises the CAC's revocation path (revoke, re-admit over surviving
// capacity, or downgrade) rather than the reliability layer.
func ChurnPlan(seed uint64, topo topology.Topology, horizon units.Time) *faults.Plan {
	return faults.RandomPlan(seed, chaosLinkIDs(topo), horizon, faults.RandomConfig{
		Derates:  4,
		MinScale: 0.3,
	})
}

// ChurnSessions returns the session configuration the churn experiment
// offers at a given mean per-host inter-arrival time. The 3 ms hold keeps
// tens of sessions concurrently active per host at the aggressive arrival
// rates, pushing reserved bandwidth past the admission limits.
func ChurnSessions(inter units.Time) *session.Config {
	return &session.Config{InterArrival: inter, HoldMean: 3 * units.Millisecond}
}

// Churn measures the dynamic session subsystem: per-host Poisson session
// arrivals negotiate admission with the centralised CAC over in-band
// Control-class messages while the Table 1 mix loads the fabric. The table
// reports, per (background load, offered session rate, faults): the CAC
// accept ratio, the measured in-band setup latency (p50/p99 of the
// client-observed Setup->Grant round trip), reserved vs achieved session
// utilisation, and the revocation/downgrade activity. At saturating
// arrival rates the accept ratio must fall below 1 — the ledger, not the
// fabric, is what says no.
func Churn(opt Options) (*report.Table, error) {
	inters := []units.Time{400 * units.Microsecond, 150 * units.Microsecond, 60 * units.Microsecond}
	t := report.NewTable(
		"Extension: session churn — online admission over in-band signalling (Advanced 2 VCs)",
		"load", "inter-arrival", "faults", "started", "accept",
		"setup p50 (us)", "setup p99 (us)", "reserved util (%)", "achieved util (%)",
		"revoked", "downgraded")
	for _, load := range []float64{0.6, 1.0} {
		for _, ia := range inters {
			for _, faulty := range []bool{false, true} {
				cfg := opt.Base
				cfg.Arch = arch.Advanced2VC
				cfg.Load = load
				cfg.Sessions = ChurnSessions(ia)
				cfg.CheckInvariants = true
				if faulty {
					cfg.Faults = ChurnPlan(cfg.Seed+11, cfg.Topology, cfg.WarmUp+cfg.Measure)
				}
				res, err := network.Run(cfg)
				if err != nil {
					return nil, err
				}
				if err := res.Conservation.Check(); err != nil {
					return nil, fmt.Errorf("experiments: churn load=%v ia=%v faults=%v: %w",
						load, ia, faulty, err)
				}
				label := "off"
				if faulty {
					label = "on"
				}
				s := res.Sessions
				t.Add(loadPct(load), ia.String(), label,
					fmt.Sprintf("%d", s.Started),
					fmt.Sprintf("%.3f", s.AcceptRatio),
					fmt.Sprintf("%.2f", s.SetupP50.Microseconds()),
					fmt.Sprintf("%.2f", s.SetupP99.Microseconds()),
					fmt.Sprintf("%.1f", 100*s.ReservedUtil),
					fmt.Sprintf("%.1f", 100*s.AchievedUtil),
					fmt.Sprintf("%d", s.Revoked),
					fmt.Sprintf("%d", s.Downgraded+s.RevokeDowngrades))
			}
		}
	}
	return t, nil
}

// --- E6: availability under switch failures -------------------------------------

// SwitchFaultPlan returns a topological fault plan: whole-switch outage
// pairs drawn with the given MTTF (outage count scales as horizon/MTTF)
// and an MTTR of horizon/20, so shorter MTTFs mean both more frequent and
// cumulatively longer fabric damage.
func SwitchFaultPlan(seed uint64, topo topology.Topology, horizon, mttf units.Time) *faults.Plan {
	n := int(horizon / mttf)
	if n < 1 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	return faults.RandomPlan(seed, chaosLinkIDs(topo), horizon, faults.RandomConfig{
		Switches:     topo.Switches(),
		SwitchFaults: n,
		SwitchMTTF:   mttf,
		SwitchMTTR:   horizon / 20,
	})
}

// Availability measures graceful degradation under whole-switch failures:
// a switch-MTTF sweep at 80% load with session churn, the reliability
// layer, and the reroute-or-revoke repair machinery armed. The table
// reports, per MTTF: executed outages, summed downtime, static-flow repair
// activity (rerouted / restored / unreachable), session repair activity
// (rerouted reservations / revocations), the time-to-repair distribution,
// and the packets discarded inside dead switches — all under an intact
// conservation invariant.
func Availability(opt Options) (*report.Table, error) {
	t := report.NewTable(
		"Extension: availability under switch failures (Advanced 2 VCs, 80% load, reroute-or-revoke repair)",
		"switch MTTF", "outages", "downtime", "flows rerouted", "flows restored",
		"flows unreachable", "sess rerouted", "sess revoked", "ttr p50", "ttr p99", "sw drops")
	horizon := opt.Base.WarmUp + opt.Base.Measure
	for _, mttf := range []units.Time{horizon, horizon / 2, horizon / 4} {
		cfg := opt.Base
		cfg.Arch = arch.Advanced2VC
		cfg.Load = 0.8
		cfg.CheckInvariants = true
		cfg.Reliability = hostif.Reliability{Enabled: true}
		cfg.Sessions = ChurnSessions(300 * units.Microsecond)
		cfg.Faults = SwitchFaultPlan(cfg.Seed+13, cfg.Topology, horizon, mttf)
		res, err := network.Run(cfg)
		if err != nil {
			return nil, err
		}
		if err := res.Conservation.Check(); err != nil {
			return nil, fmt.Errorf("experiments: availability mttf=%v: %w", mttf, err)
		}
		av := res.Availability
		if av == nil {
			return nil, fmt.Errorf("experiments: availability mttf=%v: no Availability in results", mttf)
		}
		t.Add(mttf.String(),
			fmt.Sprintf("%d", av.SwitchDowns+av.PortDowns),
			av.Downtime.String(),
			fmt.Sprintf("%d", av.FlowsRerouted),
			fmt.Sprintf("%d", av.FlowsRestored),
			fmt.Sprintf("%d", av.FlowsUnreachable),
			fmt.Sprintf("%d", av.SessionsRerouted),
			fmt.Sprintf("%d", av.SessionsRevoked),
			av.RepairP50.String(),
			av.RepairP99.String(),
			fmt.Sprintf("%d", res.Conservation.DroppedInSwitch))
	}
	return t, nil
}

// --- E7: survivable admission under flash crowds and CAC faults ------------------

// The E7 fault plan cuts the attachment cables of the admission-control
// hosts themselves: one pod's primary delegate dies first, then the root
// CAC host, with overlapping repair windows. The same absolute times
// bound the telemetry window the grants-floor metric is computed over.
const (
	e7PrimaryDownAt = 15 * units.Millisecond
	e7PrimaryUpAt   = 30 * units.Millisecond
	e7RootDownAt    = 20 * units.Millisecond
	e7RootUpAt      = 40 * units.Millisecond
	e7Horizon       = 61 * units.Millisecond
)

// FlashCrowd returns the E7 session workload: a 40 µs mean per-host
// inter-arrival with a 6x flash crowd over [5 ms, 55 ms) — on the 16-host
// quick network that is on the order of 10^5 setup arrivals per run — with
// short 100 µs holds so the ledger churns, and a 500 ns CAC service time
// with a 64-entry control queue: the flash peak (one setup per ~2.7 µs
// fabric-wide) exceeds a single CAC's 2/µs service capacity, so the
// centralised root must shed where four pod delegates ride it out. With
// delegation on, 70% of destinations are pod-local so most setups are
// eligible for one-hop admission, and a 100 µs renewal heartbeat keeps
// the root-failure detection latency well under the outage length.
func FlashCrowd(delegated bool) *session.Config {
	cfg := &session.Config{
		InterArrival: 40 * units.Microsecond,
		HoldMean:     100 * units.Microsecond,
		FlashFactor:  6,
		FlashAt:      5 * units.Millisecond,
		FlashLen:     50 * units.Millisecond,
		CtlService:   500 * units.Nanosecond,
		CtlQueueCap:  64,
	}
	if delegated {
		cfg.Delegation = true
		cfg.LocalFrac = 0.7
		cfg.LeaseRenew = 100 * units.Microsecond
	}
	return cfg
}

// CACOutagePlan kills admission-control hosts by severing their attachment
// cables: one pod's primary delegate over [15, 30) ms (forcing a standby
// promotion in delegated mode) and the root CAC host over [20, 40) ms
// (blacking out centralised admission entirely). The plan is identical in
// both control-plane modes so their rows are directly comparable.
func CACOutagePlan(topo topology.Topology, scfg session.Config) *faults.Plan {
	pods := session.PodPlan(topo, scfg.Manager)
	victim := -1
	for _, p := range pods {
		if p.Primary >= 0 && p.Standby >= 0 && p.Primary != scfg.Manager {
			victim = p.Primary
			break
		}
	}
	plan := &faults.Plan{}
	cut := func(host int, down, up units.Time) {
		sw, port := topo.HostPort(host)
		link := faults.LinkID{Switch: sw, Port: port}
		plan.Events = append(plan.Events,
			faults.Event{At: down, Link: link, Kind: faults.PortDown},
			faults.Event{At: up, Link: link, Kind: faults.PortUp})
	}
	if victim >= 0 {
		cut(victim, e7PrimaryDownAt, e7PrimaryUpAt)
	}
	cut(scfg.Manager, e7RootDownAt, e7RootUpAt)
	return plan
}

// grantsFloor returns the minimum number of admissions granted in any
// whole probe window inside [from, to], summed across every CAC entity
// (root and delegates) from the cumulative Accepted telemetry counters.
// It is the metric that separates the two control planes: with the root's
// cable cut, the centralised plane's floor drops to zero while delegates
// keep admitting pod-local setups against their leases.
func grantsFloor(tel *trace.Telemetry, from, to units.Time) (uint64, bool) {
	if tel == nil || len(tel.Sessions) == 0 {
		return 0, false
	}
	totals := map[units.Time]uint64{}
	var times []units.Time
	for i := range tel.Sessions {
		s := &tel.Sessions[i]
		if _, seen := totals[s.T]; !seen {
			times = append(times, s.T)
		}
		totals[s.T] += s.Accepted
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	floor, found := ^uint64(0), false
	for i := 1; i < len(times); i++ {
		if times[i-1] < from || times[i] > to {
			continue
		}
		if d := totals[times[i]] - totals[times[i-1]]; !found || d < floor {
			floor, found = d, true
		}
	}
	return floor, found
}

// --- E8: pluggable scheduling policies -------------------------------------

// PolicyList returns the E8 roster: the seed EDF takeover architecture as
// the default policy, the coflow-deadline variant, and the two
// bounded-injection-queue droppers — value-aware eviction and the
// value-blind tail-drop control, both with the same byte bound so the
// only difference is the victim-selection rule.
func PolicyList() []policy.Policy {
	return []policy.Policy{
		policy.Default(),
		policy.CoflowEDF(),
		policy.ValueDrop(32*units.Kilobyte, false),
		policy.ValueDrop(32*units.Kilobyte, true),
	}
}

// PolicyScenario builds the shared E8 scenario on base: the Table 1 mix
// reweighted toward the value-dense Best-effort class, a 70% best-effort
// hotspot aimed at host 0 (the backpressure that fills bounded injection
// queues), and a ring coflow workload σ-admitted through the CAC at the
// end of warm-up. Every policy row of the E8 table runs exactly this
// config, so the columns differ only by scheduling policy.
func PolicyScenario(base network.Config) network.Config {
	cfg := base
	cfg.Arch = arch.Advanced2VC
	cfg.Load = 1.0
	cfg.ClassShare = [packet.NumClasses]float64{0.1, 0.1, 0.6, 0.2}
	cfg.HotspotFraction = 0.7
	cfg.HotspotHost = 0
	cfg.CheckInvariants = true
	cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp, Rounds: 4, Chunk: 4 * units.Kilobyte}
	return cfg
}

// Policies runs the E8 comparison: every shipped scheduling policy over
// the one PolicyScenario config. The coflow columns show what deadline
// awareness buys the collective (the coflow-edf policy stamps admitted
// rounds with their collective deadline instead of a per-packet virtual
// clock); the weighted-goodput column shows what value awareness buys the
// best-effort VC when the bounded queue must shed (value-drop evicts the
// cheapest resident, value-drop-tail drops arrivals blindly).
func Policies(opt Options) (*report.Table, error) {
	t := report.NewTable(
		"Extension: scheduling policies on one scenario (ring coflows + best-effort hotspot, full load)",
		"policy", "adm/rej", "completed", "deadline met", "completion", "max lateness",
		"weighted goodput", "evictions", "evicted value")
	for _, pol := range PolicyList() {
		cfg := PolicyScenario(opt.Base)
		cfg.Policy = pol
		res, err := network.Run(cfg)
		if err != nil {
			return nil, err
		}
		if err := res.Conservation.Check(); err != nil {
			return nil, fmt.Errorf("experiments: policy %s: %w", pol.Name(), err)
		}
		c := res.Coflows
		completion := "incomplete"
		if c.AllDone {
			completion = c.CompletionTime.String()
		}
		var evictedValue int64
		for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
			evictedValue += res.PerClass[cl].EvictedValue
		}
		t.Add(res.Policy,
			fmt.Sprintf("%d/%d", c.Admitted, c.Rejected),
			fmt.Sprintf("%d/%d", c.Completed, c.Coflows),
			fmt.Sprintf("%d/%d", c.DeadlineMet, c.Coflows),
			completion,
			c.MaxLateness.String(),
			fmt.Sprintf("%.3f", res.WeightedGoodput()),
			fmt.Sprintf("%d", res.Conservation.EvictedAtNIC),
			fmt.Sprintf("%d", evictedValue))
	}
	return t, nil
}

// Survivable measures the survivable admission control plane (E7): the
// same 10^5-arrival flash crowd offered to the centralised root CAC and to
// the delegated per-pod control plane, each with and without the
// CAC-killing fault plan. The table reports setups started, the accept
// ratio, the in-band setup p99, the share of grants issued one hop away by
// delegates, control-queue sheds, failover activity (promotions/reclaims)
// with the fault-to-restored-admission TTR distribution, and the
// grants-floor: the worst per-millisecond admission count while the root
// CAC host is dark. Delegated mode must keep that floor above zero.
func Survivable(opt Options) (*report.Table, error) {
	t := report.NewTable(
		"Extension: survivable admission — per-pod CAC delegates vs centralised root (6x flash crowd)",
		"control plane", "CAC faults", "started", "accept", "setup p99 (us)",
		"local share", "shed", "dark rejects", "promoted/reclaimed", "ttr p50", "ttr p99",
		"grants floor (root dark)")
	for _, delegated := range []bool{false, true} {
		for _, faulty := range []bool{false, true} {
			cfg := opt.Base
			cfg.Arch = arch.Advanced2VC
			cfg.Load = 0.5
			cfg.WarmUp = units.Millisecond
			cfg.Measure = e7Horizon - units.Millisecond
			cfg.CheckInvariants = true
			cfg.ProbeInterval = units.Millisecond
			cfg.Sessions = FlashCrowd(delegated)
			if faulty {
				cfg.Faults = CACOutagePlan(cfg.Topology, cfg.Sessions.WithDefaults())
			}
			res, err := network.Run(cfg)
			if err != nil {
				return nil, err
			}
			if err := res.Conservation.Check(); err != nil {
				return nil, fmt.Errorf("experiments: survivable delegated=%v faults=%v: %w",
					delegated, faulty, err)
			}
			s, cp := res.Sessions, res.ControlPlane
			mode, label := "centralised", "off"
			if delegated {
				mode = "delegated"
			}
			if faulty {
				label = "on"
			}
			local, ttr50, ttr99, floor := "-", "-", "-", "-"
			if delegated && s.Accepted > 0 {
				local = fmt.Sprintf("%.1f%%", 100*float64(cp.LocalGrants)/float64(s.Accepted))
			}
			if cp.FailoverCount > 0 {
				ttr50, ttr99 = cp.FailoverP50.String(), cp.FailoverP99.String()
			}
			if faulty {
				if f, ok := grantsFloor(res.Telemetry, e7RootDownAt, e7RootUpAt); ok {
					floor = fmt.Sprintf("%d/ms", f)
				}
			}
			t.Add(mode, label,
				fmt.Sprintf("%d", s.Started),
				fmt.Sprintf("%.3f", s.AcceptRatio),
				fmt.Sprintf("%.2f", s.SetupP99.Microseconds()),
				local,
				fmt.Sprintf("%d", cp.Shed),
				fmt.Sprintf("%d", cp.BreakerRejects),
				fmt.Sprintf("%d/%d", cp.Promotions, cp.Reclaims),
				ttr50, ttr99, floor)
		}
	}
	return t, nil
}
