package experiments

import (
	"fmt"
	"strings"
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/units"
)

// tinyOpt shrinks Quick further so each experiment completes in a couple
// of seconds: functional coverage of the harness, not statistics.
func tinyOpt() Options {
	o := Quick()
	o.Base.WarmUp = 500 * units.Microsecond
	o.Base.Measure = 5 * units.Millisecond
	o.Loads = []float64{0.3, 0.9}
	o.Archs = []arch.Arch{arch.Traditional2VC, arch.Ideal, arch.Advanced2VC}
	return o
}

func TestTable1(t *testing.T) {
	tb, err := Table1(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"Control", "Multimedia", "Best-effort", "Background", "MPEG-4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(tb.Rows))
	}
}

func TestFig2(t *testing.T) {
	lat, cdf, plot, err := Fig2(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Rows) != 2 {
		t.Fatalf("Fig2 latency table has %d rows, want 2 (loads)", len(lat.Rows))
	}
	if len(cdf.Rows) != 3 {
		t.Fatalf("Fig2 CDF table has %d rows, want 3 (archs)", len(cdf.Rows))
	}
	if !strings.Contains(plot.String(), "Control") {
		t.Error("Fig2 plot missing title")
	}
}

func TestFig3(t *testing.T) {
	o := tinyOpt()
	o.Base.Measure = 25 * units.Millisecond // frames need a longer window
	lat, cdf, _, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Rows) != len(o.Loads) {
		t.Fatalf("Fig3 latency rows = %d", len(lat.Rows))
	}
	// The CDF must have counted frames for the EDF architectures.
	found := false
	for _, row := range cdf.Rows {
		if row[1] != "0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Fig3 CDF has no frame samples:\n%s", cdf.String())
	}
}

func TestFig4(t *testing.T) {
	tb, plot, err := Fig4(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Header) != 1+2*3 {
		t.Fatalf("Fig4 header has %d columns, want 7 (load + 2 per arch)", len(tb.Header))
	}
	if len(plot.Series) != 6 {
		t.Fatalf("Fig4 plot has %d series, want 6", len(plot.Series))
	}
}

func TestOrderPenalty(t *testing.T) {
	tb, err := OrderPenalty(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("OrderPenalty rows = %d, want 6", len(tb.Rows))
	}
	// The Ideal row must read +0.0% by construction.
	if tb.Rows[0][3] != "+0.0%" {
		t.Errorf("Ideal relative latency = %q, want +0.0%%", tb.Rows[0][3])
	}
}

func TestVideoBand(t *testing.T) {
	o := tinyOpt()
	o.Base.Measure = 25 * units.Millisecond
	tb, err := VideoBand(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(o.Archs) {
		t.Fatalf("VideoBand rows = %d", len(tb.Rows))
	}
}

func TestAblations(t *testing.T) {
	o := tinyOpt()
	for name, fn := range map[string]func(Options) (tbl interface{ String() string }, err error){
		"eligible": func(o Options) (interface{ String() string }, error) { return AblationEligibleTime(o) },
		"buffer":   func(o Options) (interface{ String() string }, error) { return AblationBufferSize(o) },
		"skew":     func(o Options) (interface{ String() string }, error) { return AblationClockSkew(o) },
	} {
		tb, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tb.String() == "" {
			t.Fatalf("%s: empty table", name)
		}
	}
}

func TestPaperOptionsShape(t *testing.T) {
	p := Paper()
	if p.Base.Topology.Hosts() != 128 {
		t.Errorf("Paper() hosts = %d, want 128", p.Base.Topology.Hosts())
	}
	if len(p.Loads) != 10 || len(p.Archs) != 4 {
		t.Errorf("Paper() sweep = %d loads x %d archs, want 10x4", len(p.Loads), len(p.Archs))
	}
}

func TestHotspotTolerance(t *testing.T) {
	o := tinyOpt()
	o.Archs = []arch.Arch{arch.Advanced2VC}
	tb, err := HotspotTolerance(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("hotspot rows = %d, want 2 (off/on)", len(tb.Rows))
	}
	if tb.Rows[0][1] != "off" || tb.Rows[1][1] != "on" {
		t.Fatalf("hotspot labels wrong: %v", tb.Rows)
	}
}

func TestVideoJitter(t *testing.T) {
	o := tinyOpt()
	o.Base.Measure = 25 * units.Millisecond
	tb, err := VideoJitter(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(o.Archs) {
		t.Fatalf("jitter rows = %d", len(tb.Rows))
	}
}

func TestAllFiguresSharesSweep(t *testing.T) {
	o := tinyOpt()
	f, err := AllFigures(o)
	if err != nil {
		t.Fatal(err)
	}
	if f.Fig2Latency == nil || f.Fig2CDF == nil || f.Fig3Latency == nil ||
		f.Fig3CDF == nil || f.Fig4Throughput == nil {
		t.Fatal("AllFigures missing a table")
	}
	if len(f.Plots) != 3 {
		t.Fatalf("AllFigures plots = %d, want 3", len(f.Plots))
	}
	// Same rows as the standalone builders would produce.
	if len(f.Fig2Latency.Rows) != len(o.Loads) {
		t.Fatalf("Fig2 rows = %d, want %d", len(f.Fig2Latency.Rows), len(o.Loads))
	}
}

func TestAblationVCTable(t *testing.T) {
	tb, err := AblationVCTable(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("vctable rows = %d, want 3", len(tb.Rows))
	}
	if tb.Rows[0][0] != "1:1" || tb.Rows[2][0] != "7:1" {
		t.Fatalf("vctable labels wrong: %v", tb.Rows)
	}
}

func TestManyVCs(t *testing.T) {
	tb, err := ManyVCs(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("manyvcs rows = %d, want 3", len(tb.Rows))
	}
	if tb.Rows[1][1] != "4" {
		t.Fatalf("Traditional 4 VCs row reports %s VCs", tb.Rows[1][1])
	}
}

func TestFig2Confidence(t *testing.T) {
	o := tinyOpt()
	o.Archs = []arch.Arch{arch.Traditional2VC, arch.Advanced2VC}
	o.Loads = []float64{0.4}
	o.Base.Measure = 3 * units.Millisecond
	tb, err := Fig2Confidence(o, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, cell := range tb.Rows[0][1:] {
		if !strings.Contains(cell, "±") {
			t.Fatalf("cell %q missing ±", cell)
		}
	}
}

func TestAblationXbarSpeedup(t *testing.T) {
	tb, err := AblationXbarSpeedup(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("speedup rows = %d, want 3", len(tb.Rows))
	}
	if tb.Rows[0][0] != "1.0x" {
		t.Fatalf("labels wrong: %v", tb.Rows)
	}
}

func TestCollectiveCompletion(t *testing.T) {
	o := tinyOpt()
	o.Archs = []arch.Arch{arch.Traditional2VC, arch.Advanced2VC}
	tb, err := CollectiveCompletion(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] == "" {
			t.Fatalf("empty completion cell: %v", row)
		}
	}
}

func TestChurn(t *testing.T) {
	tb, err := Churn(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("churn rows = %d, want 12 (2 loads x 3 rates x faults off/on)", len(tb.Rows))
	}
	// The most aggressive arrival rate at 100% load must overload the CAC:
	// its accept column cannot read 1.000.
	saturated := tb.Rows[len(tb.Rows)-2]
	if saturated[4] == "1.000" {
		t.Errorf("accept ratio 1.000 at saturating churn:\n%s", tb.String())
	}
	for _, row := range tb.Rows {
		if row[5] == "0.00" {
			t.Errorf("setup p50 reads zero — in-band latency not measured: %v", row)
		}
	}
}

func TestPolicies(t *testing.T) {
	o := tinyOpt()
	o.Base.Measure = 8 * units.Millisecond
	tb, err := Policies(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("policy rows = %d, want 4:\n%s", len(tb.Rows), tb.String())
	}
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
	}
	for _, name := range []string{"default", "coflow-edf", "value-drop", "value-drop-tail"} {
		if byName[name] == nil {
			t.Fatalf("missing policy row %q:\n%s", name, tb.String())
		}
	}
	// The coflow-deadline policy must serve the collective at least as well
	// as per-packet EDF on the same admitted workload.
	var cofMet, defMet, rounds int
	fmt.Sscanf(byName["coflow-edf"][3], "%d/%d", &cofMet, &rounds)
	fmt.Sscanf(byName["default"][3], "%d/%d", &defMet, &rounds)
	if cofMet < defMet {
		t.Errorf("coflow-edf deadline-met %d < default %d:\n%s", cofMet, defMet, tb.String())
	}
	// Value-aware eviction must beat blind tail drop on weighted goodput.
	var valueDrop, tailDrop float64
	fmt.Sscanf(byName["value-drop"][6], "%f", &valueDrop)
	fmt.Sscanf(byName["value-drop-tail"][6], "%f", &tailDrop)
	if valueDrop <= tailDrop {
		t.Errorf("value-drop goodput %.3f <= tail-drop %.3f:\n%s", valueDrop, tailDrop, tb.String())
	}
	// Both droppers actually shed under the hotspot.
	for _, name := range []string{"value-drop", "value-drop-tail"} {
		if byName[name][7] == "0" {
			t.Errorf("%s row reports no evictions:\n%s", name, tb.String())
		}
	}
}

func TestChaos(t *testing.T) {
	opt := tinyOpt()
	opt.Archs = []arch.Arch{arch.Advanced2VC}
	tb, err := Chaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "Advanced") {
		t.Errorf("chaos table missing architecture:\n%s", out)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("chaos table has %d rows, want 2 (off/on)", len(tb.Rows))
	}
}
