package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/session"
	"deadlineqos/internal/soak"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// The sharded-execution correctness bar (DESIGN.md §9): for every
// experiment scenario, a run split across N engine shards must produce
// byte-identical statistics snapshots, trace output, telemetry,
// conservation accounting and fault traces to the sequential engine with
// the same config and seed. These tests pin that guarantee across every
// feature that records state at event time.

// detScenario is one config variation to cross-check.
type detScenario struct {
	name string
	cfg  func() network.Config
}

// detBase is the shared scenario base: the quick 16-host network with a
// window short enough to run each scenario at three shard counts.
func detBase() network.Config {
	cfg := network.SmallConfig()
	cfg.WarmUp = 500 * units.Microsecond
	cfg.Measure = 3 * units.Millisecond
	if raceEnabled {
		// The race detector costs ~10-20x per run; byte-equality over a
		// shorter window still exercises every merge path.
		cfg.WarmUp = 200 * units.Microsecond
		cfg.Measure = 800 * units.Microsecond
	}
	cfg.Load = 0.8
	cfg.CheckInvariants = true
	return cfg
}

// detScenarios covers every recording subsystem: plain stats, order
// oracles, clock skew, hotspots, degraded links, fault injection with
// end-to-end reliability, packet-lifecycle tracing, telemetry probes, and
// trace-driven video across the switch architectures.
func detScenarios() []detScenario {
	return []detScenario{
		{"baseline-advanced", detBase},
		{"traditional-vctable", func() network.Config {
			cfg := detBase()
			cfg.Arch = arch.Traditional2VC
			cfg.Load = 1.0
			cfg.VCArbitrationTable = []packet.VC{packet.VCRegulated, packet.VCBestEffort}
			return cfg
		}},
		{"ideal-skew", func() network.Config {
			cfg := detBase()
			cfg.Arch = arch.Ideal
			cfg.ClockSkewMax = 5 * units.Microsecond
			return cfg
		}},
		{"simple-hotspot", func() network.Config {
			cfg := detBase()
			cfg.Arch = arch.Simple2VC
			cfg.HotspotFraction = 0.5
			cfg.HotspotHost = 0
			return cfg
		}},
		{"order-errors-unshaped", func() network.Config {
			cfg := detBase()
			cfg.TrackOrderErrors = true
			cfg.EligibleLead = 0
			return cfg
		}},
		{"degraded-links", func() network.Config {
			cfg := detBase()
			cfg.DegradedLinks = []network.DegradedLink{
				{Switch: 0, Port: 0, Scale: 0.5},
				{Switch: 4, Port: 1, Scale: 0.7},
			}
			return cfg
		}},
		{"faults-reliability", func() network.Config {
			cfg := detBase()
			cfg.Faults = ChaosPlan(cfg.Seed+7, cfg.Topology, cfg.WarmUp+cfg.Measure)
			cfg.Reliability = hostif.Reliability{Enabled: true}
			return cfg
		}},
		{"telemetry-probes", func() network.Config {
			cfg := detBase()
			cfg.ProbeInterval = 100 * units.Microsecond
			return cfg
		}},
		{"video-trace", func() network.Config {
			cfg := detBase()
			cfg.VideoTraceFrames = []units.Size{
				24 * units.Kilobyte, 8 * units.Kilobyte, 6 * units.Kilobyte,
				10 * units.Kilobyte, 7 * units.Kilobyte, 12 * units.Kilobyte,
			}
			return cfg
		}},
		{"churn", func() network.Config {
			// Saturating session churn at full load: the CAC rejects, clients
			// retry and downgrade, and every decision (and its in-band round
			// trip) must land identically at any shard count.
			cfg := detBase()
			cfg.Load = 1.0
			cfg.Sessions = ChurnSessions(100 * units.Microsecond)
			return cfg
		}},
		{"churn-faults-probes", func() network.Config {
			// Churn with runtime derates (revocation path) and the session
			// telemetry series on.
			cfg := detBase()
			cfg.Sessions = ChurnSessions(60 * units.Microsecond)
			cfg.Faults = ChurnPlan(cfg.Seed+11, cfg.Topology, cfg.WarmUp+cfg.Measure)
			cfg.ProbeInterval = 100 * units.Microsecond
			return cfg
		}},
		{"switch-failure", func() network.Config {
			// Whole-switch outages with route repair, session
			// reroute-or-revoke, and the reliability layer recovering the
			// packets the dead switch discarded.
			cfg := detBase()
			horizon := cfg.WarmUp + cfg.Measure
			cfg.Sessions = ChurnSessions(300 * units.Microsecond)
			cfg.Reliability = hostif.Reliability{Enabled: true}
			cfg.Faults = SwitchFaultPlan(cfg.Seed+13, cfg.Topology, horizon, horizon/2)
			return cfg
		}},
		{"delegated-churn", func() network.Config {
			// Delegated control plane under a flash crowd with bounded
			// control queues: local grants, escalations, lease growth and
			// returns, shedding, and the per-entity session telemetry must
			// all land identically at any shard count.
			cfg := detBase()
			s := ChurnSessions(80 * units.Microsecond)
			s.Delegation = true
			s.LocalFrac = 0.5
			s.CtlService = 300 * units.Nanosecond
			s.CtlQueueCap = 8
			s.FlashFactor = 6
			s.FlashAt = cfg.WarmUp
			s.FlashLen = cfg.Measure / 4
			cfg.Sessions = s
			cfg.ProbeInterval = 100 * units.Microsecond
			return cfg
		}},
		{"cac-outage", func() network.Config {
			// CAC-host outages during delegated churn: one pod's primary
			// dies (standby promotion, lease reconciliation, retargets) and
			// another pod loses both delegates (lease reclaim, root
			// fallback). The failover state machine runs on in-band
			// messages and static fault hooks only, so every promotion,
			// replayed setup, and TTR sample must be shard-invariant.
			cfg := detBase()
			s := ChurnSessions(120 * units.Microsecond)
			s.Delegation = true
			s.LocalFrac = 0.7
			cfg.Sessions = s
			cfg.ProbeInterval = 100 * units.Microsecond
			horizon := cfg.WarmUp + cfg.Measure
			pods := session.PodPlan(cfg.Topology, s.WithDefaults().Manager)
			plan := &faults.Plan{}
			kill := func(at units.Time, host int) {
				sw, port := cfg.Topology.HostPort(host)
				plan.Events = append(plan.Events, faults.Event{
					At: at, Link: faults.LinkID{Switch: sw, Port: port}, Kind: faults.PortDown})
			}
			kill(horizon/3, pods[0].Primary)
			kill(horizon/3, pods[1].Primary)
			kill(horizon/3+50*units.Microsecond, pods[1].Standby)
			cfg.Faults = plan
			return cfg
		}},
		{"policy-coflow-default", func() network.Config {
			// The ring coflow workload under the default policy: σ-pass
			// admission, CAC reservations, frontier-gated submissions and
			// the per-round outcome fold must all land identically at any
			// shard count.
			cfg := detBase()
			cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp, Rounds: 4, Chunk: 4 * units.Kilobyte}
			return cfg
		}},
		{"policy-coflow-edf", func() network.Config {
			// Same workload under the coflow-deadline policy: admitted
			// rounds carry absolute collective deadlines through the fabric.
			cfg := detBase()
			cfg.Policy = policy.CoflowEDF()
			cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp, Rounds: 4, Chunk: 4 * units.Kilobyte}
			return cfg
		}},
		{"policy-value-drop", func() network.Config {
			// Bounded value-aware injection queues under a best-effort
			// hotspot: every eviction decision (victim choice, counters,
			// conservation terms) must be shard-invariant.
			cfg := detBase()
			cfg.Load = 1.0
			cfg.ClassShare = [packet.NumClasses]float64{0.1, 0.1, 0.6, 0.2}
			cfg.HotspotFraction = 0.7
			cfg.HotspotHost = 0
			cfg.Policy = policy.ValueDrop(32*units.Kilobyte, false)
			return cfg
		}},
		{"rogue-unpoliced", func() network.Config {
			// Odd hosts babble at 4x their reservation with no policer in
			// the way: the excess traffic, the innocent/rogue frame split
			// and the fault trace must be shard-invariant.
			cfg := detBase()
			cfg.Load = 1.0
			horizon := cfg.WarmUp + cfg.Measure
			cfg.Faults = RoguePlan(cfg.Topology.Hosts(), horizon/8, horizon, 4)
			return cfg
		}},
		{"rogue-policed-guarded", func() network.Config {
			// The same rogue storm against the full protection plane: NIC
			// policing (every demotion decision and its trace event) plus
			// the regulated-VC occupancy guard's per-input accounting.
			cfg := detBase()
			cfg.Load = 1.0
			horizon := cfg.WarmUp + cfg.Measure
			cfg.Faults = RoguePlan(cfg.Topology.Hosts(), horizon/8, horizon, 4)
			cfg.Police = true
			cfg.GuardBytes = 8 * units.Kilobyte
			return cfg
		}},
		{"forge-policed", func() network.Config {
			// Deadline forgery against the policer's rate-envelope test,
			// with session churn granting policed dynamic flows on top.
			cfg := detBase()
			horizon := cfg.WarmUp + cfg.Measure
			cfg.Faults = ForgePlan(cfg.Topology.Hosts(), horizon/8, horizon, 0.25)
			cfg.Police = true
			cfg.Sessions = ChurnSessions(200 * units.Microsecond)
			return cfg
		}},
		{"gray-drain", func() network.Config {
			// A slow-drain link under the gray-failure detector: the
			// detection times, proactive reroutes and session
			// revalidations all derive from build-time replay and must be
			// byte-identical at any shard count.
			cfg := detBase()
			horizon := cfg.WarmUp + cfg.Measure
			ids := transitLinkIDs(cfg.Topology)
			cfg.Faults = GrayPlan(ids, horizon/6, horizon, 0.3)
			cfg.Gray = &network.GrayConfig{Persistence: horizon / 8}
			cfg.Sessions = ChurnSessions(200 * units.Microsecond)
			return cfg
		}},
		{"soak-epoch", func() network.Config {
			// Exactly what the soak harness runs in one epoch — the full
			// fault mix plus churn — pinned here so the seed printed by a
			// failing soak replays byte-identically at any shard count.
			base := detBase()
			return soak.EpochConfig(soak.Options{
				Seed: 5, WarmUp: base.WarmUp, Measure: base.Measure,
			}, 0)
		}},
	}
}

// runFingerprint runs cfg at the given shard count (building a fresh
// tracer when requested) and renders every determinism-guaranteed output
// as one labelled byte blob.
func runFingerprint(t *testing.T, cfg network.Config, shards int, withTracer bool) []byte {
	t.Helper()
	cfg.Shards = shards
	var tr *trace.Tracer
	if withTracer {
		var err error
		// The sample cap must not be hit: per-shard tracers enforce it
		// independently, so a capped run loses the equality guarantee.
		tr, err = trace.New(trace.Config{SampleRate: 0.05, Seed: cfg.Seed, MaxEvents: 500_000})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Tracer = tr
	}
	res, err := network.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	section := func(name string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "== %s ==\n%s\n", name, b)
	}
	section("snapshot", res.Snapshot("det"))
	section("conservation", res.Conservation)
	section("fault-trace", res.FaultTrace)
	section("reliability", res.Reliability)
	section("counters", []uint64{
		res.OrderErrors, res.TakeOvers, res.XbarTransfers, res.LinkSends,
		uint64(res.PendingAtHorizon), res.LostOnLink, res.CorruptedInFlight,
		res.FaultEvents, uint64(res.OutstandingAtStop),
	})
	section("sessions", res.Sessions)
	section("availability", res.Availability)
	section("policy", res.Policy)
	section("coflows", res.Coflows)
	section("police", res.Police)
	section("gray", res.Gray)
	if tr != nil {
		buf.WriteString("== trace-jsonl ==\n")
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if tr.Dropped() > 0 {
			t.Fatalf("tracer hit its event cap (%d dropped); raise MaxEvents", tr.Dropped())
		}
	}
	if res.Telemetry != nil {
		buf.WriteString("== telemetry-ports ==\n")
		if err := res.Telemetry.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteString("== telemetry-sessions ==\n")
		if err := res.Telemetry.WriteSessionsCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// diffLine locates the first differing line between two fingerprints so a
// failure names the section instead of dumping megabytes.
func diffLine(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	section := "?"
	for i := 0; i < len(al) && i < len(bl); i++ {
		if bytes.HasPrefix(al[i], []byte("== ")) {
			section = string(al[i])
		}
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("section %s line %d:\n  seq: %.200s\n  par: %.200s", section, i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ (%d vs %d lines) after section %s", len(al), len(bl), section)
}

// detShardCounts is the sharded side of the cross-check. Under the race
// detector only the 2-shard run is compared (the 4-shard schedule adds
// interleavings, not merge paths, and race runs cost 10-20x); the plain
// build compares both.
func detShardCounts() []int {
	if raceEnabled {
		return []int{2}
	}
	return []int{2, 4}
}

// TestShardDeterminism is the cross-check: every scenario at Shards=2 and
// Shards=4 against the sequential run.
func TestShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run cross-check")
	}
	for _, sc := range detScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			ref := runFingerprint(t, sc.cfg(), 1, false)
			for _, shards := range detShardCounts() {
				got := runFingerprint(t, sc.cfg(), shards, false)
				if !bytes.Equal(ref, got) {
					t.Errorf("shards=%d diverges from sequential: %s", shards, diffLine(ref, got))
				}
			}
		})
	}
}

// TestShardDeterminismTraced runs the tracing cross-check separately (the
// tracer makes runs slower): full JSONL trace bytes must match, alongside
// everything else, with faults and order tracking on.
func TestShardDeterminismTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run cross-check")
	}
	cfgFn := func() network.Config {
		cfg := detBase()
		horizon := cfg.WarmUp + cfg.Measure
		cfg.TrackOrderErrors = true
		cfg.Faults = ChaosPlan(cfg.Seed+7, cfg.Topology, horizon)
		// A spine outage on top of the link chaos: traced runs must also
		// agree on every drop inside the dead switch and every repair.
		cfg.Faults.Events = append(cfg.Faults.Events,
			faults.Event{At: horizon / 3, Link: faults.SwitchID(5), Kind: faults.SwitchDown},
			faults.Event{At: 2 * horizon / 3, Link: faults.SwitchID(5), Kind: faults.SwitchUp})
		cfg.Reliability = hostif.Reliability{Enabled: true}
		cfg.ProbeInterval = 200 * units.Microsecond
		cfg.Sessions = ChurnSessions(150 * units.Microsecond)
		return cfg
	}
	ref := runFingerprint(t, cfgFn(), 1, true)
	for _, shards := range detShardCounts() {
		got := runFingerprint(t, cfgFn(), shards, true)
		if !bytes.Equal(ref, got) {
			t.Errorf("traced run at shards=%d diverges: %s", shards, diffLine(ref, got))
		}
	}
}

// TestShardDeterminismPolicyTraced is the traced arm of the policy
// scenarios: a value-drop run with a coflow workload under the sampling
// tracer, so the NIC-eviction trace events and the coflow flows' lifecycle
// records must also be byte-identical across shard counts.
func TestShardDeterminismPolicyTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run cross-check")
	}
	cfgFn := func() network.Config {
		cfg := detBase()
		cfg.Load = 1.0
		cfg.ClassShare = [packet.NumClasses]float64{0.1, 0.1, 0.6, 0.2}
		cfg.HotspotFraction = 0.7
		cfg.HotspotHost = 0
		cfg.Policy = policy.ValueDrop(32*units.Kilobyte, false)
		cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp, Rounds: 4, Chunk: 4 * units.Kilobyte}
		return cfg
	}
	ref := runFingerprint(t, cfgFn(), 1, true)
	for _, shards := range detShardCounts() {
		got := runFingerprint(t, cfgFn(), shards, true)
		if !bytes.Equal(ref, got) {
			t.Errorf("policy traced run at shards=%d diverges: %s", shards, diffLine(ref, got))
		}
	}
}

// TestShardDeterminismProtectionTraced is the traced arm of the
// guarantee-protection scenarios: babbling rogues against the policer and
// the occupancy guard under the sampling tracer, so the KindPoliced
// demotion events and the demoted packets' best-effort lifecycle records
// must also be byte-identical across shard counts.
func TestShardDeterminismProtectionTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run cross-check")
	}
	cfgFn := func() network.Config {
		cfg := detBase()
		horizon := cfg.WarmUp + cfg.Measure
		cfg.Load = 1.0
		cfg.Faults = RoguePlan(cfg.Topology.Hosts(), horizon/8, horizon, 4)
		cfg.Police = true
		cfg.GuardBytes = 8 * units.Kilobyte
		return cfg
	}
	ref := runFingerprint(t, cfgFn(), 1, true)
	for _, shards := range detShardCounts() {
		got := runFingerprint(t, cfgFn(), shards, true)
		if !bytes.Equal(ref, got) {
			t.Errorf("protection traced run at shards=%d diverges: %s", shards, diffLine(ref, got))
		}
	}
}

// TestShardsRejectsTraceCallbacks pins the validation rule: user packet
// callbacks cannot run concurrently on shard goroutines.
func TestShardsRejectsTraceCallbacks(t *testing.T) {
	cfg := detBase()
	cfg.Shards = 2
	cfg.Trace = network.Trace{Generated: func(p *packet.Packet) {}}
	if _, err := network.New(cfg); err == nil {
		t.Fatal("Shards > 1 with Trace callbacks must be rejected")
	}
}

// TestPartitionPlanner pins the planner's invariants: round-robin switch
// assignment, hosts co-located with their leaf, and clamping.
func TestPartitionPlanner(t *testing.T) {
	topo := network.SmallConfig().Topology
	swShard, hostShard, eff := network.Partition(topo, 4)
	if eff != 4 {
		t.Fatalf("effective shards = %d, want 4", eff)
	}
	for sw, s := range swShard {
		if s != sw%4 {
			t.Fatalf("switch %d on shard %d, want %d", sw, s, sw%4)
		}
	}
	for sw := 0; sw < topo.Switches(); sw++ {
		for p := 0; p < topo.Radix(sw); p++ {
			if peer := topo.Peer(sw, p); peer.ID >= 0 && peer.IsHost {
				if hostShard[peer.ID] != swShard[sw] {
					t.Fatalf("host %d on shard %d, leaf switch %d on shard %d",
						peer.ID, hostShard[peer.ID], sw, swShard[sw])
				}
			}
		}
	}
	if _, _, eff := network.Partition(topo, 1000); eff != topo.Switches() {
		t.Fatalf("shard count not clamped to switch count: %d", eff)
	}
	if _, _, eff := network.Partition(topo, 0); eff != 1 {
		t.Fatalf("shard count not clamped up to 1: %d", eff)
	}
}

// TestFaultPlanRejectedWithoutLookahead pins the config rule that sharded
// runs need at least one cycle of lookahead.
func TestFaultPlanRejectedWithoutLookahead(t *testing.T) {
	cfg := detBase()
	cfg.Shards = 2
	cfg.PropDelay = 0
	if _, err := network.New(cfg); err == nil {
		t.Fatal("Shards > 1 with zero PropDelay must be rejected")
	}
}
