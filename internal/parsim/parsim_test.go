package parsim

import (
	"fmt"
	"testing"

	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
)

// The test model: n nodes in a ring. Each node runs a local event chain on
// channel 0 and, on every 3rd local event, notifies its ring successor
// with a message that fires 50 cycles later on the sender's unique
// channel. Each executed event appends a (time, tag) record to the owning
// node's log. The sequential reference runs all nodes on one engine with
// cross-node sends scheduled directly via AtChannel; the parallel run puts
// one node per LP and relays sends through Queues. Logs must match
// exactly.

type record struct {
	at  units.Time
	tag string
}

type node struct {
	id      int
	eng     *sim.Engine
	log     []record
	deliver func(fire units.Time, ch uint32, fn func()) // into the successor
	succ    *node
	horizon units.Time
}

const crossDelay = units.Time(50)

func (nd *node) local(step int) {
	now := nd.eng.Now()
	nd.log = append(nd.log, record{now, fmt.Sprintf("local%d", step)})
	localD := units.Time(7 + nd.id)
	if now+localD <= nd.horizon {
		nd.eng.After(localD, func() { nd.local(step + 1) })
	}
	if step%3 == 0 {
		if fire := now + crossDelay; fire <= nd.horizon {
			from, s, dst := nd.id, step, nd.succ
			nd.deliver(fire, uint32(100+nd.id), func() {
				dst.log = append(dst.log, record{dst.eng.Now(), fmt.Sprintf("recv%d-from%d", s, from)})
			})
		}
	}
}

func runRing(n int, horizon units.Time, parallel bool) [][]record {
	nodes := make([]*node, n)
	if parallel {
		queues := make([]*Queue, n) // inbound queue of node i
		lps := make([]*LP, n)
		for i := range nodes {
			nodes[i] = &node{id: i, eng: sim.New(), horizon: horizon}
			queues[i] = &Queue{}
		}
		for i, nd := range nodes {
			nd.succ = nodes[(i+1)%n]
			q := queues[(i+1)%n]
			nd.deliver = q.Put
			lps[i] = &LP{Eng: nodes[i].eng, In: []*Queue{queues[i]}}
		}
		for _, nd := range nodes {
			nd.local(1)
		}
		Run(lps, horizon, crossDelay)
	} else {
		eng := sim.New()
		for i := range nodes {
			nodes[i] = &node{id: i, eng: eng, horizon: horizon}
		}
		for i, nd := range nodes {
			nd.succ = nodes[(i+1)%n]
			nd.deliver = func(fire units.Time, ch uint32, fn func()) { eng.AtChannel(fire, ch, fn) }
		}
		for _, nd := range nodes {
			nd.local(1)
		}
		eng.Run(horizon)
	}
	logs := make([][]record, n)
	for i, nd := range nodes {
		logs[i] = nd.log
	}
	return logs
}

func TestParallelMatchesSequential(t *testing.T) {
	const horizon = 10_000
	for _, n := range []int{2, 3, 4} {
		seq := runRing(n, horizon, false)
		par := runRing(n, horizon, true)
		for i := range seq {
			if len(seq[i]) != len(par[i]) {
				t.Fatalf("n=%d node %d: sequential %d records, parallel %d",
					n, i, len(seq[i]), len(par[i]))
			}
			for j := range seq[i] {
				if seq[i][j] != par[i][j] {
					t.Fatalf("n=%d node %d record %d: sequential %v, parallel %v",
						n, i, j, seq[i][j], par[i][j])
				}
			}
		}
	}
}

func TestRunSingleLP(t *testing.T) {
	eng := sim.New()
	var fired []units.Time
	eng.At(10, func() { fired = append(fired, eng.Now()) })
	eng.At(20, func() { fired = append(fired, eng.Now()) })
	Run([]*LP{{Eng: eng}}, 100, 1)
	if len(fired) != 2 || eng.Now() != 100 {
		t.Fatalf("single-LP run: fired %v, now %v", fired, eng.Now())
	}
}

func TestQueueTakeUpTo(t *testing.T) {
	q := &Queue{}
	q.Put(30, 2, func() {})
	q.Put(10, 1, func() {})
	q.Put(20, 3, func() {})
	if min, ok := q.MinFire(); !ok || min != 10 {
		t.Fatalf("MinFire = %v, %v; want 10, true", min, ok)
	}
	got := q.TakeUpTo(20, nil)
	if len(got) != 2 {
		t.Fatalf("TakeUpTo(20) returned %d messages, want 2", len(got))
	}
	for _, m := range got {
		if m.Fire > 20 {
			t.Fatalf("took message firing at %v past 20", m.Fire)
		}
	}
	if min, ok := q.MinFire(); !ok || min != 30 {
		t.Fatalf("after take, MinFire = %v, %v; want 30, true", min, ok)
	}
	if rest := q.TakeUpTo(100, nil); len(rest) != 1 || rest[0].Fire != 30 {
		t.Fatalf("remaining messages wrong: %v", rest)
	}
}

func TestStopPropagates(t *testing.T) {
	engs := []*sim.Engine{sim.New(), sim.New()}
	lps := []*LP{{Eng: engs[0]}, {Eng: engs[1]}}
	var after0 bool
	engs[0].At(10, func() { engs[0].Stop() })
	engs[0].At(5_000, func() { after0 = true })
	engs[1].At(10, func() {})
	engs[1].At(5_000, func() {})
	Run(lps, 100_000, 100)
	if after0 {
		t.Fatal("event after Stop executed on the stopping engine")
	}
}
