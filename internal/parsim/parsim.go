// Package parsim implements conservative parallel discrete-event
// simulation (PDES) over the single-goroutine engines of internal/sim.
//
// The model is partitioned into logical processes (LPs) — the network
// layer makes one per shard of switches and hosts — each owning a private
// sim.Engine. Events that cross a shard boundary (link arrivals, credit
// returns, receiver reports) are relayed as timestamped Messages through
// per-directed-pair mailbox Queues instead of being scheduled directly.
//
// Synchronisation is the classic conservative window protocol. Link
// propagation latency gives a nonzero lookahead L: an event executing at
// time t can only emit cross-shard messages firing at t+L or later. Each
// round, every LP publishes the earliest thing it could do next (its
// engine's head event or an undrained inbound message); a barrier makes
// the global minimum m visible to all; every LP then drains inbound
// messages up to and runs its engine through windowEnd = min(m+L−1,
// horizon). Nothing generated inside the window can land inside it, so no
// LP ever receives an event in its past — no rollback, no anti-messages.
//
// Determinism is the design's correctness bar, not just safety: with the
// channel-keyed event order of sim.Engine (see Engine.AtChannel) a
// sharded run executes, per shard, exactly the sequential run's total
// order restricted to that shard's events, making stats, traces and
// conservation records byte-identical to the sequential engine's. The
// argument is spelled out in DESIGN.md §9.
package parsim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
)

// Message is one relayed cross-shard event: fn must be scheduled on the
// receiving LP's engine at Fire on ordering channel Ch.
type Message struct {
	Fire units.Time
	Ch   uint32
	Fn   func()
	fifo uint64 // arrival order within the queue, the final tie-break
}

// Queue is the mailbox for one directed shard pair. The sender's goroutine
// Puts while it runs its window; the receiver drains between windows. A
// mutex suffices: the window protocol guarantees every message put during
// a window fires after that window, so drain and put never contend for the
// same message.
type Queue struct {
	mu       sync.Mutex
	pending  []Message
	nextFifo uint64
}

// Put enqueues a message firing at fire on channel ch.
func (q *Queue) Put(fire units.Time, ch uint32, fn func()) {
	q.mu.Lock()
	q.pending = append(q.pending, Message{Fire: fire, Ch: ch, Fn: fn, fifo: q.nextFifo})
	q.nextFifo++
	q.mu.Unlock()
}

// MinFire returns the earliest firing time among pending messages; ok is
// false when the queue is empty.
func (q *Queue) MinFire() (min units.Time, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.pending {
		if !ok || q.pending[i].Fire < min {
			min, ok = q.pending[i].Fire, true
		}
	}
	return min, ok
}

// TakeUpTo appends every pending message with Fire <= t to into and
// removes them from the queue, returning the extended slice.
func (q *Queue) TakeUpTo(t units.Time, into []Message) []Message {
	q.mu.Lock()
	kept := q.pending[:0]
	for _, m := range q.pending {
		if m.Fire <= t {
			into = append(into, m)
		} else {
			kept = append(kept, m)
		}
	}
	for i := len(kept); i < len(q.pending); i++ {
		q.pending[i].Fn = nil // release taken closures
	}
	q.pending = kept
	q.mu.Unlock()
	return into
}

// LP is one logical process: a shard's engine plus the mailboxes feeding
// it from other shards.
type LP struct {
	Eng *sim.Engine
	In  []*Queue

	drain []Message // scratch, reused across windows
}

// barrier is a spinning sense-reversing barrier. Spinning keeps the
// per-window cost to a few hundred nanoseconds (windows are ~lookahead
// long, so there are millions of them); the Gosched fallback keeps it
// live-lock-free under GOMAXPROCS < number of LPs.
type barrier struct {
	n   int32
	cnt atomic.Int32
	gen atomic.Uint32
}

func (b *barrier) wait() {
	g := b.gen.Load()
	if b.cnt.Add(1) == b.n {
		b.cnt.Store(0)
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if spins > 1000 {
			runtime.Gosched()
		}
	}
}

// padded keeps each LP's published time on its own cache line.
type padded struct {
	v atomic.Int64
	_ [7]int64
}

// Run drives every LP's engine from its current time through horizon
// using the conservative window protocol, then returns with all engines'
// clocks at horizon. lookahead must be >= 1: it is the minimum latency of
// any cross-shard effect (the network derives it from link propagation
// and ack delays). If an engine stops itself (sim.Engine.Stop) the stop
// propagates to all LPs at the end of that window — a safety valve; the
// deterministic-replay guarantee covers fixed-horizon runs, which is how
// the network always drives it.
func Run(lps []*LP, horizon, lookahead units.Time) {
	if lookahead < 1 {
		panic(fmt.Sprintf("parsim: lookahead %v < 1 cycle", lookahead))
	}
	if len(lps) == 1 {
		lps[0].Eng.Run(horizon)
		return
	}
	next := make([]padded, len(lps))
	bar := &barrier{n: int32(len(lps))}
	var stopFlag atomic.Bool
	idle := int64(horizon) + 1 // sentinel: nothing to do before the horizon

	var wg sync.WaitGroup
	for i := range lps {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			lp := lps[me]
			for {
				// Publish the earliest event this LP could execute. All
				// LPs are between windows here, so queue minima are
				// stable.
				t := idle
				if at, ok := lp.Eng.PeekTime(); ok && int64(at) < t {
					t = int64(at)
				}
				for _, q := range lp.In {
					if at, ok := q.MinFire(); ok && int64(at) < t {
						t = int64(at)
					}
				}
				next[me].v.Store(t)
				bar.wait()

				m := idle
				for j := range next {
					if v := next[j].v.Load(); v < m {
						m = v
					}
				}
				if m == idle {
					// Every LP agrees nothing fires before the horizon.
					lp.Eng.Run(horizon)
					return
				}
				windowEnd := units.Time(m) + lookahead - 1
				if windowEnd > horizon {
					windowEnd = horizon
				}

				// Drain inbound messages into the engine. Sorting by
				// (fire, channel, queue order) before scheduling gives the
				// relayed events ascending engine seqs in exactly the
				// order the channel-keyed comparison needs; cross-queue
				// ties on (fire, channel) cannot occur because each
				// channel id is produced by exactly one sender shard.
				lp.drain = lp.drain[:0]
				for _, q := range lp.In {
					lp.drain = q.TakeUpTo(windowEnd, lp.drain)
				}
				sort.Slice(lp.drain, func(a, b int) bool {
					x, y := &lp.drain[a], &lp.drain[b]
					if x.Fire != y.Fire {
						return x.Fire < y.Fire
					}
					if x.Ch != y.Ch {
						return x.Ch < y.Ch
					}
					return x.fifo < y.fifo
				})
				for i := range lp.drain {
					lp.Eng.AtChannel(lp.drain[i].Fire, lp.drain[i].Ch, lp.drain[i].Fn)
					lp.drain[i].Fn = nil
				}

				lp.Eng.Run(windowEnd)
				if lp.Eng.Stopped() {
					stopFlag.Store(true)
				}
				bar.wait()
				if stopFlag.Load() {
					return
				}
				if windowEnd >= horizon {
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
