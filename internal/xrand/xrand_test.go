package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	master := New(7)
	a := master.Split(0)
	b := master.Split(1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformIntInclusive(t *testing.T) {
	r := New(5)
	sawLo, sawHi := false, false
	for i := 0; i < 20000; i++ {
		v := r.UniformInt(10, 13)
		if v < 10 || v > 13 {
			t.Fatalf("UniformInt(10,13) = %d", v)
		}
		sawLo = sawLo || v == 10
		sawHi = sawHi || v == 13
	}
	if !sawLo || !sawHi {
		t.Fatal("UniformInt never hit an endpoint")
	}
	if v := r.UniformInt(5, 5); v != 5 {
		t.Fatalf("degenerate UniformInt = %d, want 5", v)
	}
}

func TestExpMean(t *testing.T) {
	r := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Fatalf("Exp(100) sample mean = %v, want ~100", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(50, 10)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-50) > 0.5 {
		t.Fatalf("Normal mean = %v, want ~50", mean)
	}
	if math.Abs(math.Sqrt(variance)-10) > 0.5 {
		t.Fatalf("Normal stddev = %v, want ~10", math.Sqrt(variance))
	}
}

func TestParetoTail(t *testing.T) {
	r := New(9)
	const n = 100000
	over := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1.5, 1)
		if v < 1 {
			t.Fatalf("Pareto below scale: %v", v)
		}
		if v > 10 {
			over++
		}
	}
	// P(X > 10) = 10^-1.5 ~ 0.0316 for Pareto(1.5, 1).
	frac := float64(over) / n
	if frac < 0.025 || frac > 0.040 {
		t.Fatalf("Pareto tail mass P(X>10) = %v, want ~0.0316", frac)
	}
}

func TestBoundedParetoStaysInBounds(t *testing.T) {
	prop := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.BoundedPareto(1.3, 128, 102400)
			if v < 128 || v > 102400 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	r := New(10)
	if v := r.BoundedPareto(1.3, 100, 100); v != 100 {
		t.Fatalf("degenerate BoundedPareto = %v, want 100", v)
	}
	if v := r.BoundedPareto(1.3, 100, 50); v != 100 {
		t.Fatalf("inverted-bounds BoundedPareto = %v, want lo", v)
	}
}

func TestBoundedParetoSkew(t *testing.T) {
	// The bounded Pareto must remain right-skewed: the median should sit
	// well below the midpoint of the support.
	r := New(11)
	const n = 50000
	below := 0
	mid := (128.0 + 102400.0) / 2
	for i := 0; i < n; i++ {
		if r.BoundedPareto(1.3, 128, 102400) < mid {
			below++
		}
	}
	if frac := float64(below) / n; frac < 0.95 {
		t.Fatalf("bounded Pareto not heavy-tailed: only %v of mass below midpoint", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(12)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: sum = %d", sum)
	}
}
