// Package xrand provides the deterministic pseudo-random number streams
// used by the simulator.
//
// Every stochastic component of a simulation (each traffic source, each
// arbiter that breaks ties randomly, ...) owns its own Rand stream, derived
// from the run's master seed with SplitMix64. This makes simulations fully
// reproducible from (configuration, seed) and keeps streams statistically
// independent, which is essential when comparing switch architectures: the
// same seed must generate the exact same offered traffic for all of them.
//
// The core generator is xoshiro256++, a small, fast generator with a 2^256-1
// period that comfortably exceeds the needs of a discrete-event simulation.
// The package also implements the distributions required by the paper's
// traffic model: uniform, exponential, normal, and bounded Pareto (the heavy
// tail behind "self-similar internet-like traffic", per Jain's methodology
// referenced by the paper).
package xrand

import "math"

// Rand is a deterministic pseudo-random stream. It is not safe for
// concurrent use; each concurrent component must own its own stream.
type Rand struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding xoshiro state, per the generator authors'
// recommendation.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed. Distinct seeds give statistically
// independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	return r
}

// Split derives a new independent stream from r, keyed by id. Use it to
// give each component (host, flow, arbiter) its own stream from a master
// seed without correlations between them.
func (r *Rand) Split(id uint64) *Rand {
	return New(r.Uint64() ^ (id+1)*0x9e3779b97f4a7c15)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits (xoshiro256++).
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias is negligible for simulation n
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// UniformInt returns a uniform int64 in [lo, hi] inclusive.
func (r *Rand) UniformInt(lo, hi int64) int64 {
	if hi < lo {
		panic("xrand: UniformInt with hi < lo")
	}
	return lo + r.Int63n(hi-lo+1)
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard u == 0: log(0) is -Inf.
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation (Box–Muller; one value per call, the pair's second
// element is discarded to keep the stream consumption simple and fixed).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Pareto returns a Pareto-distributed float64 with shape alpha and scale
// xm (the minimum value). The mean is alpha*xm/(alpha-1) for alpha > 1.
func (r *Rand) Pareto(alpha, xm float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto-distributed float64 with shape alpha
// truncated to [lo, hi] by inverse-CDF sampling of the truncated
// distribution (not by rejection, so the stream consumption is constant).
// The paper's self-similar traffic uses packet and burst sizes drawn from
// such a distribution.
func (r *Rand) BoundedPareto(alpha, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	// Inverse CDF of the bounded Pareto distribution.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
