package switchsim

import (
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/link"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
)

// rig wires one switch with an injector link per input port and a sink per
// output port, so tests can drive the switch directly.
type rig struct {
	eng   *sim.Engine
	sw    *Switch
	up    []*link.Link // test -> switch input
	down  []*link.Link // switch output -> sink
	sinks []*sinkNode
}

type sinkNode struct {
	eng  *sim.Engine
	up   *link.Link
	got  []*packet.Packet
	when []units.Time
}

// Receive drains instantly and returns credits, like an endpoint NIC.
// Credits go back to the VC the packet occupied (p.VC, not the 2-VC class
// mapping: under 4-VC architectures they differ, and returning to the
// wrong VC is a credit leak).
func (sn *sinkNode) Receive(p *packet.Packet) {
	p.UnpackTTD(sn.eng.Now())
	sn.got = append(sn.got, p)
	sn.when = append(sn.when, sn.eng.Now())
	sn.up.ReturnCredits(p.VC, p.Size)
}

func newRig(t *testing.T, a arch.Arch, radix int, bufPerVC units.Size) *rig {
	t.Helper()
	eng := sim.New()
	sw := New(Config{
		Eng:              eng,
		Clock:            packet.Clock{Base: eng.Now},
		Radix:            radix,
		Arch:             a,
		BufPerVC:         bufPerVC,
		TrackOrderErrors: true,
	})
	r := &rig{eng: eng, sw: sw}
	for p := 0; p < radix; p++ {
		up := link.New(eng, 1, 5, bufPerVC, sw.InputReceiver(p))
		sw.ConnectUpstream(p, up)
		r.up = append(r.up, up)

		sn := &sinkNode{eng: eng}
		down := link.New(eng, 1, 5, bufPerVC, sn)
		sn.up = down
		sw.ConnectDownstream(p, down)
		r.down = append(r.down, down)
		r.sinks = append(r.sinks, sn)
	}
	return r
}

var testID uint64

// inject stamps TTD as a host would and sends on input port in at time at.
func (r *rig) inject(at units.Time, in int, p *packet.Packet) {
	r.eng.At(at, func() {
		p.PackTTD(r.eng.Now())
		if !r.up[in].CanSend(p) {
			// Queue behind the link by retrying on readiness; tests keep
			// injection rates low enough that this is rare.
			prev := r.up[in].OnReady
			r.up[in].OnReady = func() {
				if prev != nil {
					prev()
				}
				if p.Hop == 0 && r.up[in].CanSend(p) {
					r.up[in].Send(p)
				}
			}
			return
		}
		r.up[in].Send(p)
	})
}

func mkpkt(cl packet.Class, dl units.Time, size units.Size, outPort int) *packet.Packet {
	testID++
	return &packet.Packet{ID: testID, Class: cl, VC: packet.VCOf(cl), Deadline: dl, Size: size, Route: []int{outPort}}
}

func TestForwardsToRoutedPort(t *testing.T) {
	r := newRig(t, arch.Simple2VC, 4, 8*units.Kilobyte)
	r.inject(0, 0, mkpkt(packet.Control, 1000, 256, 2))
	r.eng.Run(units.Millisecond)
	for port, sn := range r.sinks {
		want := 0
		if port == 2 {
			want = 1
		}
		if len(sn.got) != want {
			t.Fatalf("port %d received %d packets, want %d", port, len(sn.got), want)
		}
	}
}

func TestDeliveryLatencyComponents(t *testing.T) {
	// One 256-byte packet, unloaded switch: 256 (up serialisation) + 5
	// (prop) + 256 (crossbar) + 256 (down serialisation) + 5 (prop) = 778.
	r := newRig(t, arch.Simple2VC, 4, 8*units.Kilobyte)
	r.inject(0, 0, mkpkt(packet.Control, 1000, 256, 1))
	r.eng.Run(units.Millisecond)
	if len(r.sinks[1].got) != 1 {
		t.Fatal("packet not delivered")
	}
	if got := r.sinks[1].when[0]; got != 778 {
		t.Fatalf("delivery at %v, want 778", got)
	}
}

func TestAllArchitecturesDeliver(t *testing.T) {
	for _, a := range arch.All() {
		r := newRig(t, a, 4, 8*units.Kilobyte)
		for i := 0; i < 4; i++ {
			for j := 0; j < 8; j++ {
				cl := packet.Class(j % packet.NumClasses)
				r.inject(units.Time(j)*300, i, mkpkt(cl, units.Time(1000+j*100), 256, (i+1+j)%4))
			}
		}
		r.eng.Run(10 * units.Millisecond)
		total := 0
		for _, sn := range r.sinks {
			total += len(sn.got)
		}
		if total != 32 {
			t.Errorf("%v: delivered %d packets, want 32", a, total)
		}
		if q := r.sw.Queued(); q != 0 {
			t.Errorf("%v: %d packets stuck in switch", a, q)
		}
	}
}

func TestEDFOrderAcrossInputs(t *testing.T) {
	// Two inputs contend for output 3. Input 1's packet has the earlier
	// deadline; after the first in-flight transfer, deadline order must
	// decide. Inject three at each input back to back.
	r := newRig(t, arch.Ideal, 4, 8*units.Kilobyte)
	// Stagger the injection so all arrive before the output drains.
	for j := 0; j < 3; j++ {
		r.inject(units.Time(j)*300, 0, mkpkt(packet.Control, units.Time(9000+j*10), 256, 3))
		r.inject(units.Time(j)*300+10, 1, mkpkt(packet.Control, units.Time(1000+j*10), 256, 3))
	}
	r.eng.Run(10 * units.Millisecond)
	sn := r.sinks[3]
	if len(sn.got) != 6 {
		t.Fatalf("delivered %d, want 6", len(sn.got))
	}
	// The low-deadline flow (1000-range) must not finish last: count how
	// many high-deadline packets precede the final low-deadline one.
	lastLow := -1
	for i, p := range sn.got {
		if p.Deadline < 5000+p.Deadline%1000 && p.Deadline < 5000 {
			lastLow = i
		}
	}
	if lastLow == len(sn.got)-1 {
		t.Fatalf("EDF switch let all high-deadline packets pass before low-deadline ones: %v",
			deadlines(sn.got))
	}
}

func deadlines(ps []*packet.Packet) []units.Time {
	var ds []units.Time
	for _, p := range ps {
		ds = append(ds, p.Deadline)
	}
	return ds
}

func TestRegulatedPriorityOverBestEffort(t *testing.T) {
	// Saturate output 0 with best-effort from input 0, then inject
	// regulated control from input 1: the control packet must jump ahead
	// of queued best-effort packets.
	r := newRig(t, arch.Simple2VC, 4, 64*units.Kilobyte)
	for j := 0; j < 20; j++ {
		r.inject(units.Time(j)*2100, 0, mkpkt(packet.BestEffort, units.Time(1+j), 2048, 0))
	}
	ctrl := mkpkt(packet.Control, units.Infinity-1, 256, 0) // even with the worst deadline...
	r.inject(10_000, 1, ctrl)
	r.eng.Run(100 * units.Millisecond)
	sn := r.sinks[0]
	pos := -1
	for i, p := range sn.got {
		if p.ID == ctrl.ID {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("control packet not delivered")
	}
	if pos > 8 {
		t.Fatalf("regulated packet delivered at position %d behind best-effort backlog", pos)
	}
}

func TestTraditionalSharesByTable(t *testing.T) {
	// Saturated output: with the 3:1 default table, regulated gets ~3x
	// the best-effort packet rate for equal-size packets.
	r := newRig(t, arch.Traditional2VC, 2, 16*units.Kilobyte)
	for j := 0; j < 60; j++ {
		r.inject(units.Time(j)*1100, 0, mkpkt(packet.Multimedia, 0, 1024, 1))
		r.inject(units.Time(j)*1100+5, 1, mkpkt(packet.BestEffort, 0, 1024, 1))
	}
	r.eng.Run(40_000) // stop mid-contention
	sn := r.sinks[1]
	reg, be := 0, 0
	for _, p := range sn.got {
		if p.Class.Regulated() {
			reg++
		} else {
			be++
		}
	}
	if reg == 0 || be == 0 {
		t.Fatalf("one class starved: reg=%d be=%d", reg, be)
	}
	ratio := float64(reg) / float64(be)
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("table sharing ratio = %.2f (reg=%d be=%d), want ~3", ratio, reg, be)
	}
}

func TestCreditBackpressureStallsUpstream(t *testing.T) {
	// A tiny downstream buffer (one packet's worth of credits on the
	// sink link) must throttle, not crash, and deliver everything.
	eng := sim.New()
	sw := New(Config{Eng: eng, Clock: packet.Clock{Base: eng.Now}, Radix: 2,
		Arch: arch.Advanced2VC, BufPerVC: 2 * units.Kilobyte})
	sn := &sinkNode{eng: eng}
	down := link.New(eng, 1, 5, 2*units.Kilobyte, sn)
	sn.up = down
	sw.ConnectDownstream(1, down)
	up := link.New(eng, 1, 5, 2*units.Kilobyte, sw.InputReceiver(0))
	sw.ConnectUpstream(0, up)

	var send func(n int)
	send = func(n int) {
		if n == 0 {
			return
		}
		testID++
		p := &packet.Packet{ID: testID, Class: packet.Control, VC: packet.VCRegulated, Deadline: units.Time(n), Size: 1024, Route: []int{1}}
		if up.CanSend(p) {
			p.PackTTD(eng.Now())
			up.Send(p)
			n--
		}
		eng.After(100, func() { send(n) })
	}
	eng.At(0, func() { send(10) })
	eng.Run(10 * units.Millisecond)
	if len(sn.got) != 10 {
		t.Fatalf("delivered %d, want 10", len(sn.got))
	}
}

func TestPoolOverflowPanics(t *testing.T) {
	// Bypassing flow control (writing straight into the receiver) must
	// trip the pool assertion.
	eng := sim.New()
	sw := New(Config{Eng: eng, Clock: packet.Clock{Base: eng.Now}, Radix: 2,
		Arch: arch.Simple2VC, BufPerVC: 1 * units.Kilobyte})
	recv := sw.InputReceiver(0)
	defer func() {
		if recover() == nil {
			t.Fatal("pool overflow did not panic")
		}
	}()
	eng.At(0, func() {
		for i := 0; i < 3; i++ {
			testID++
			recv.Receive(&packet.Packet{ID: testID, Class: packet.Control, VC: packet.VCRegulated, Size: 512, Route: []int{1}})
		}
	})
	eng.Drain()
}

func TestInvalidRoutePanics(t *testing.T) {
	eng := sim.New()
	sw := New(Config{Eng: eng, Clock: packet.Clock{Base: eng.Now}, Radix: 2,
		Arch: arch.Simple2VC, BufPerVC: units.Kilobyte})
	defer func() {
		if recover() == nil {
			t.Fatal("invalid route did not panic")
		}
	}()
	eng.At(0, func() {
		testID++
		sw.InputReceiver(0).Receive(&packet.Packet{ID: testID, Class: packet.Control, VC: packet.VCRegulated, Size: 64, Route: []int{7}})
	})
	eng.Drain()
}

func TestStatsCounters(t *testing.T) {
	r := newRig(t, arch.Advanced2VC, 4, 8*units.Kilobyte)
	for j := 0; j < 10; j++ {
		r.inject(units.Time(j)*300, 0, mkpkt(packet.Control, units.Time(1000+j), 256, 1))
	}
	r.eng.Run(10 * units.Millisecond)
	st := r.sw.Stats()
	if st.XbarTransfers != 10 || st.LinkSends != 10 {
		t.Fatalf("stats = %+v, want 10 transfers and sends", st)
	}
}

func TestSwitchPreservesFlowOrderUnderAdvanced(t *testing.T) {
	// Packets of one flow with increasing deadlines must arrive in
	// sequence order through the take-over architecture even while a
	// competing input floods the same output.
	r := newRig(t, arch.Advanced2VC, 4, 32*units.Kilobyte)
	for j := 0; j < 25; j++ {
		p := mkpkt(packet.Control, units.Time(1000+j*50), 512, 2)
		p.Flow = 42
		p.Seq = uint64(j)
		r.inject(units.Time(j)*600, 0, p)
		// Interfering traffic, occasionally with much earlier deadlines.
		q := mkpkt(packet.Control, units.Time(10+j*997%3000), 512, 2)
		q.Flow = 7
		r.inject(units.Time(j)*600+37, 1, q)
	}
	r.eng.Run(100 * units.Millisecond)
	var prev int64 = -1
	for _, p := range r.sinks[2].got {
		if p.Flow != 42 {
			continue
		}
		if int64(p.Seq) <= prev {
			t.Fatalf("flow 42 reordered: seq %d after %d", p.Seq, prev)
		}
		prev = int64(p.Seq)
	}
	if prev != 24 {
		t.Fatalf("flow 42 lost packets: last seq %d, want 24", prev)
	}
}

func TestVOQAvoidsHeadOfLineBlocking(t *testing.T) {
	// Input 0 sends a long backlog to output 1 (whose sink withholds
	// credits) and a single packet to output 2. With virtual output
	// queuing the blocked output must not delay the packet for the idle
	// output.
	eng := sim.New()
	sw := New(Config{Eng: eng, Clock: packet.Clock{Base: eng.Now}, Radix: 3,
		Arch: arch.Simple2VC, BufPerVC: 64 * units.Kilobyte})

	blocked := &sinkNode{eng: eng}
	blockedLink := link.New(eng, 1, 5, 2*units.Kilobyte, blocked) // tiny credits
	blocked.up = blockedLink
	sw.ConnectDownstream(1, blockedLink)

	free := &sinkNode{eng: eng}
	freeLink := link.New(eng, 1, 5, 64*units.Kilobyte, free)
	free.up = freeLink
	sw.ConnectDownstream(2, freeLink)

	up := link.New(eng, 1, 5, 64*units.Kilobyte, sw.InputReceiver(0))
	sw.ConnectUpstream(0, up)

	// Backlog to the blocked output, then one packet to the free output.
	var queue []*packet.Packet
	for j := 0; j < 8; j++ {
		queue = append(queue, mkpkt(packet.Control, units.Time(100+j), 1500, 1))
	}
	probe := mkpkt(packet.Control, 5000, 256, 2)
	queue = append(queue, probe)
	i := 0
	var feed func()
	feed = func() {
		if i < len(queue) && up.CanSend(queue[i]) {
			p := queue[i]
			p.PackTTD(eng.Now())
			up.Send(p)
			i++
		}
		if i < len(queue) {
			eng.After(100, feed)
		}
	}
	eng.At(0, feed)
	eng.Run(5 * units.Millisecond)

	if len(free.got) != 1 {
		t.Fatalf("probe packet not delivered past blocked output (%d delivered)", len(free.got))
	}
	// The probe must arrive long before the blocked backlog would have
	// drained through the throttled 2KB-credit link.
	if free.when[0] > 200*units.Microsecond {
		t.Fatalf("probe delayed to %v: head-of-line blocking", free.when[0])
	}
}

func TestTraditional4VCPerClassVCs(t *testing.T) {
	// Each class travels in its own VC: saturating the Background VC
	// must not consume Control VC credits or delay Control packets.
	r := newRig(t, arch.Traditional4VC, 2, 8*units.Kilobyte)
	for j := 0; j < 10; j++ {
		p := mkpkt(packet.Background, 0, 2048, 1)
		p.VC = packet.VC(packet.Background) // 4-VC mapping
		r.inject(units.Time(j)*2100, 0, p)
	}
	ctrl := mkpkt(packet.Control, 0, 256, 1)
	ctrl.VC = packet.VC(packet.Control)
	r.inject(8_000, 1, ctrl)
	r.eng.Run(100 * units.Millisecond)
	sn := r.sinks[1]
	pos := -1
	for i, p := range sn.got {
		if p.ID == ctrl.ID {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("control packet not delivered")
	}
	// With its own weighted VC, control must not wait behind the whole
	// background backlog.
	if pos > 5 {
		t.Fatalf("control delivered at position %d behind background backlog", pos)
	}
}
