// Package switchsim models the interconnect switches: combined input and
// output buffering (CIOQ), virtual output queuing at the inputs, a crossbar
// connecting them, and per-architecture scheduling (§4.1).
//
// Data path of a packet through a switch:
//
//	upstream link ──► input port VOQ (per VC, per output) ──► crossbar
//	              ──► output buffer (per VC) ──► downstream link
//
// The input VOQs remove head-of-line blocking across outputs; within one
// (input, VC, output) queue the architecture's buffer discipline applies
// (FIFO, heap, or the take-over structure — see internal/pqueue). Credits
// for the upstream link are returned when a packet's crossbar transfer
// completes, i.e. when its input buffer space is truly free.
//
// Scheduling, per architecture:
//
//   - Traditional 2 VCs / 4 VCs: a PCI-AS-style weighted table picks the VC
//     at both the crossbar and the link; round-robin picks the input within
//     a VC. The 4-VC variant gives every traffic class its own weighted VC.
//   - EDF architectures (Ideal / Simple / Advanced): the regulated VC has
//     absolute priority; within a VC the arbiter grants the input whose
//     queue head carries the earliest deadline. This is the paper's core
//     idea — the only thing a switch ever inspects is the deadline in each
//     queue-head's header (§3.2).
//
// Per the appendix's flow-control rule, credit checks are made only against
// the packet the dequeue discipline designates, never against another
// stored packet that would happen to fit.
package switchsim

import (
	"fmt"

	"deadlineqos/internal/arbiter"
	"deadlineqos/internal/arch"
	"deadlineqos/internal/link"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/pqueue"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// Metrics bundles the switch-level instruments of the metrics plane. Buf
// is installed on every VOQ and output buffer of the switch; the rest are
// bumped at the switch's own counter sites. The zero value disables
// everything (instrument methods are nil-safe).
type Metrics struct {
	Buf           pqueue.Metrics
	XbarTransfers *metrics.Counter // crossbar transfers started
	LinkSends     *metrics.Counter // packets put on downstream links
	Dropped       *metrics.Counter // packets discarded by SwitchDown faults
}

// Config parameterises one switch.
type Config struct {
	Eng   *sim.Engine
	Clock packet.Clock // node-local clock (may be skewed)
	ID    int
	Radix int
	Arch  arch.Arch
	// BufPerVC is the buffer capacity per (port, VC) pool, at inputs and
	// outputs alike (8 KB in the paper).
	BufPerVC units.Size
	// XbarBW is the per-port crossbar bandwidth (defaults to link rate,
	// i.e. speedup 1, when zero).
	XbarBW units.Bandwidth
	// TrackOrderErrors enables the measurement oracle in every buffer.
	TrackOrderErrors bool
	// VCTable overrides the Traditional architecture's weighted
	// arbitration table (nil = arbiter.DefaultVCTable, 3:1 for the
	// regulated VC). Ignored by the deadline-aware architectures, whose
	// regulated VC has absolute priority.
	VCTable []packet.VC
	// Tracer records lifecycle events of sampled packets (nil = tracing
	// off). When set, buffer observers are installed so take-overs and
	// order errors surface as per-packet events.
	Tracer *trace.Tracer
	// OnPktDrop observes every packet the switch discards when a
	// SwitchDown fault kills it (queued, output-buffered, and
	// mid-crossbar packets alike). The network wires it to the
	// conservation accounting; nil means drops are silently lost, so any
	// run with switch faults must set it.
	OnPktDrop func(p *packet.Packet)
	// Metrics holds the switch's metric instruments; the zero value
	// disables recording.
	Metrics Metrics
	// Policy selects the scheduling policy whose Arbiter makes this
	// switch's crossbar and link grant decisions. Nil means
	// policy.Default, the seed behaviour.
	Policy policy.Policy
	// GuardBytes enables the regulated-VC occupancy guard: per output
	// port, an input whose served regulated bytes lead the
	// least-served backlogged input by more than GuardBytes is held
	// back from crossbar arbitration for that VC until the others
	// catch up. This bounds how far a babbling NIC — legitimate
	// deadlines or not — can starve other inputs' regulated traffic.
	// Zero disables the guard (the seed behaviour).
	GuardBytes units.Size
	// GuardInputs marks which input ports the guard covers (nil = all).
	// The network marks only host-facing ports: per-input byte fairness
	// is per-host fairness at the edge, whereas a transit uplink
	// legitimately aggregates many hosts' flows and must not be
	// equalised against a single babbler.
	GuardInputs []bool
}

// Stats are the instrumentation counters of one switch.
type Stats struct {
	XbarTransfers uint64
	LinkSends     uint64
	OrderErrors   uint64 // dequeues that violated global deadline order
	TakeOvers     uint64 // packets diverted to take-over queues
}

// Switch is one simulated switch.
type Switch struct {
	cfg Config
	in  []*inputPort
	out []*outputPort

	xbarTransfers uint64
	linkSends     uint64
	inXbar        int  // packets mid-crossbar (popped from a VOQ, not yet in an output buffer)
	down          bool // a SwitchDown fault killed the switch
	dropped       uint64
}

type inputPort struct {
	sw  *Switch
	idx int
	// voq[vc][output] holds packets for that output in the architecture's
	// discipline. All queues of one VC share the port's per-VC pool.
	voq      [packet.NumVCs][]pqueue.Buffer
	pool     [packet.NumVCs]units.Size
	busy     bool
	upstream link.CreditReturner

	// The (single) crossbar transfer in flight from this port, tracked so
	// Audit can reconcile the pool and SetDown knows what finishTransfer
	// will still free. Valid only while busy.
	xferVC   packet.VC
	xferSize units.Size
}

type outputPort struct {
	sw   *Switch
	idx  int
	buf  [packet.NumVCs]pqueue.Buffer
	busy bool
	down *link.Link

	arb    policy.Arbiter            // per-port grant decisions (crossbar + link)
	sendOK func(*packet.Packet) bool // down.CanSend, bound once at connect

	// served[vc][input] is the cumulative bytes input has pushed through
	// this output on a guarded VC, the occupancy guard's fairness state.
	// Allocated only when the guard is on.
	served [packet.NumVCs][]units.Size
}

// New builds a switch. Ports must then be wired with ConnectUpstream /
// ConnectDownstream before traffic arrives.
func New(cfg Config) *Switch {
	if cfg.XbarBW == 0 {
		cfg.XbarBW = 1 // reference link rate, speedup 1
	}
	pol := cfg.Policy
	if pol == nil {
		pol = policy.Default()
	}
	s := &Switch{cfg: cfg}
	for i := 0; i < cfg.Radix; i++ {
		ip := &inputPort{sw: s, idx: i}
		for vc := 0; vc < packet.NumVCs; vc++ {
			ip.voq[vc] = make([]pqueue.Buffer, cfg.Radix)
			for o := 0; o < cfg.Radix; o++ {
				// Each VOQ may transiently hold up to the whole pool;
				// the pool accounting below enforces the shared limit.
				ip.voq[vc][o] = pqueue.New(cfg.Arch.Discipline(packet.VC(vc)), cfg.BufPerVC, cfg.TrackOrderErrors)
				ip.voq[vc][o].SetMetrics(cfg.Metrics.Buf)
				if cfg.Tracer != nil {
					ip.voq[vc][o].SetObserver(&bufObserver{sw: s, port: i, out: o})
				}
			}
		}
		s.in = append(s.in, ip)

		op := &outputPort{sw: s, idx: i}
		for vc := 0; vc < packet.NumVCs; vc++ {
			op.buf[vc] = pqueue.New(cfg.Arch.Discipline(packet.VC(vc)), cfg.BufPerVC, cfg.TrackOrderErrors)
			op.buf[vc].SetMetrics(cfg.Metrics.Buf)
			if cfg.Tracer != nil {
				op.buf[vc].SetObserver(&bufObserver{sw: s, port: i, out: -1})
			}
		}
		op.arb = pol.NewArbiter(policy.ArbiterConfig{Arch: cfg.Arch, Radix: cfg.Radix, VCTable: cfg.VCTable})
		if cfg.GuardBytes > 0 {
			for vc := 0; vc < packet.NumVCs; vc++ {
				if s.guarded(packet.VC(vc)) {
					op.served[vc] = make([]units.Size, cfg.Radix)
				}
			}
		}
		s.out = append(s.out, op)
	}
	return s
}

// ID returns the switch's index in the topology.
func (s *Switch) ID() int { return s.cfg.ID }

// ConnectUpstream registers the credit-return path of the link feeding
// input port p (the link itself, or a parsim cross-shard portal), used to
// return credits as the input buffer drains.
func (s *Switch) ConnectUpstream(p int, cr link.CreditReturner) { s.in[p].upstream = cr }

// ConnectDownstream registers the link leaving output port p and hooks its
// readiness callback to this port's transmission scheduler.
func (s *Switch) ConnectDownstream(p int, l *link.Link) {
	s.out[p].down = l
	s.out[p].sendOK = func(pkt *packet.Packet) bool { return l.CanSend(pkt) }
	l.OnReady = func() { s.tryLinkTx(p) }
}

// InputReceiver returns the link.Receiver for input port p.
func (s *Switch) InputReceiver(p int) link.Receiver { return &portReceiver{s, p} }

type portReceiver struct {
	sw   *Switch
	port int
}

// Receive accepts a packet arriving on the input port: the deadline is
// reconstructed from the TTD header against this switch's local clock
// (§3.3) and the packet joins the VOQ for its route's next output port.
func (r *portReceiver) Receive(p *packet.Packet) { r.sw.receive(r.port, p) }

// guarded reports whether the occupancy guard applies to vc: the
// regulated VC, plus the multimedia VC under Traditional 4 VCs (where
// the regulated classes span two channels).
func (s *Switch) guarded(vc packet.VC) bool {
	if s.cfg.GuardBytes <= 0 {
		return false
	}
	if s.cfg.Arch == arch.Traditional4VC {
		return vc <= 1
	}
	return vc == packet.VCRegulated
}

// guardedInput reports whether the occupancy guard covers input port i.
func (s *Switch) guardedInput(i int) bool {
	return s.cfg.GuardInputs == nil || s.cfg.GuardInputs[i]
}

func (s *Switch) receive(in int, p *packet.Packet) {
	if s.down {
		// Reachable when a flap's LinkUp restores a link into a still-dead
		// switch: the dead switch discards the arrival, returning the
		// credits the sender consumed (the packet never enters a pool).
		if up := s.in[in].upstream; up != nil {
			up.ReturnCredits(p.VC, p.Size)
		}
		s.drop(p, in, -1)
		return
	}
	p.UnpackTTD(s.cfg.Clock.Now())
	o := p.NextPort()
	p.Advance()
	if o < 0 || o >= s.cfg.Radix {
		panic(fmt.Sprintf("switch %d: packet %d routed to invalid port %d", s.cfg.ID, p.ID, o))
	}
	vc := p.VC
	ip := s.in[in]
	if ip.pool[vc]+p.Size > s.cfg.BufPerVC {
		panic(fmt.Sprintf("switch %d input %d: %v pool overflow (%v + %v > %v): upstream violated flow control",
			s.cfg.ID, in, packet.VC(vc), ip.pool[vc], p.Size, s.cfg.BufPerVC))
	}
	ip.pool[vc] += p.Size
	if s.cfg.Tracer != nil && p.Sampled {
		s.traceEvt(trace.KindVOQEnqueue, p, in, o)
	}
	// An input (re)joining the contenders for a guarded VC is lifted to
	// within GuardBytes of the most-served input, so a long-idle port
	// neither freezes the others nor inherits an unbounded backlog of
	// artificial credit.
	if s.guarded(vc) && s.guardedInput(in) && ip.voq[vc][o].Len() == 0 {
		served := s.out[o].served[vc]
		max := served[0]
		for _, v := range served[1:] {
			if v > max {
				max = v
			}
		}
		if floor := max - s.cfg.GuardBytes; served[in] < floor {
			served[in] = floor
		}
	}
	ip.voq[vc][o].Push(p)
	s.tryXbar(o)
}

// tryXbar attempts to start one crossbar transfer toward output o.
func (s *Switch) tryXbar(o int) {
	op := s.out[o]
	if op.busy {
		return
	}
	// Gather per-VC candidates: head packets of non-busy inputs that fit
	// in the output buffer. On a guarded VC an input whose served bytes
	// lead the least-served backlogged input by more than GuardBytes is
	// withheld, so a babbling NIC cannot monopolise the regulated VC
	// while other inputs hold traffic for this output.
	var cands [packet.NumVCs][]arbiter.Candidate
	for vc := 0; vc < packet.NumVCs; vc++ {
		free := op.buf[vc].Free()
		ceiling := units.Size(-1)
		if s.guarded(packet.VC(vc)) {
			first := true
			var min units.Size
			for i, ip := range s.in {
				if !s.guardedInput(i) || ip.voq[vc][o].Len() == 0 {
					continue
				}
				if v := op.served[vc][i]; first || v < min {
					min, first = v, false
				}
			}
			if !first {
				ceiling = min + s.cfg.GuardBytes
			}
		}
		for i, ip := range s.in {
			if ip.busy {
				continue
			}
			if ceiling >= 0 && s.guardedInput(i) && op.served[vc][i] > ceiling {
				continue
			}
			if h := ip.voq[vc][o].Head(); h != nil && h.Size <= free {
				cands[vc] = append(cands[vc], arbiter.Candidate{Pkt: h, Source: i})
			}
		}
	}
	// The policy's two-level choice: VC first, then input within the VC
	// (the default policy applies the architecture's rule).
	vc, sel := op.arb.PickXbar(&cands)
	if sel < 0 {
		return
	}
	s.startTransfer(s.in[cands[vc][sel].Source], op, packet.VC(vc))
}

// startTransfer moves the head of ip's VOQ for op through the crossbar.
func (s *Switch) startTransfer(ip *inputPort, op *outputPort, vc packet.VC) {
	p := ip.voq[vc][op.idx].Pop()
	if s.cfg.Tracer != nil && p.Sampled {
		// The per-hop slack distribution of the deadline telemetry is fed
		// from exactly this event (trace.Tracer aggregates VOQ dequeues).
		s.traceEvt(trace.KindVOQDequeue, p, ip.idx, op.idx)
	}
	ip.busy = true
	ip.xferVC, ip.xferSize = vc, p.Size
	op.busy = true
	if s.guarded(vc) && s.guardedInput(ip.idx) {
		op.served[vc][ip.idx] += p.Size
	}
	s.xbarTransfers++
	s.cfg.Metrics.XbarTransfers.Inc()
	s.inXbar++
	tx := s.cfg.XbarBW.TxTime(p.Size)
	s.cfg.Eng.After(tx, func() { s.finishTransfer(ip, op, vc, p) })
}

func (s *Switch) finishTransfer(ip *inputPort, op *outputPort, vc packet.VC, p *packet.Packet) {
	ip.busy = false
	op.busy = false
	s.inXbar--
	// The packet has fully left the input buffer: free the pool and give
	// the credits back upstream.
	ip.pool[vc] -= p.Size
	if ip.upstream != nil {
		ip.upstream.ReturnCredits(vc, p.Size)
	}
	if s.down {
		// The switch died mid-transfer: the pool and upstream credits are
		// already reconciled above, the packet itself is discarded.
		s.drop(p, ip.idx, op.idx)
		return
	}
	if s.cfg.Tracer != nil && p.Sampled {
		s.traceEvt(trace.KindOutputEnqueue, p, op.idx, -1)
	}
	op.buf[vc].Push(p)
	s.tryLinkTx(op.idx)
	s.tryXbar(op.idx)
	s.retryInput(ip)
}

// drop discards one packet under a SwitchDown fault, feeding the
// conservation accounting and the lifecycle trace.
func (s *Switch) drop(p *packet.Packet, port, out int) {
	s.dropped++
	s.cfg.Metrics.Dropped.Inc()
	if s.cfg.Tracer != nil && p.Sampled {
		s.traceEvt(trace.KindSwitchDrop, p, port, out)
	}
	if s.cfg.OnPktDrop != nil {
		s.cfg.OnPktDrop(p)
	}
}

// SetDown applies or clears a SwitchDown fault. Going down discards every
// queued packet — input VOQs (pool freed, upstream credits returned) and
// output buffers — in deterministic port/VC order; a transfer mid-crossbar
// is discarded when it completes (finishTransfer). The caller (the
// network's fault installer) is responsible for also downing every link
// attached to the switch in the same event. Returns whether the state
// changed.
func (s *Switch) SetDown(down bool) bool {
	if s.down == down {
		return false
	}
	s.down = down
	if !down {
		return true // buffers were drained on the way down; nothing to restore
	}
	for _, ip := range s.in {
		for vc := 0; vc < packet.NumVCs; vc++ {
			for o := 0; o < s.cfg.Radix; o++ {
				for {
					p := ip.voq[vc][o].Pop()
					if p == nil {
						break
					}
					ip.pool[vc] -= p.Size
					if ip.upstream != nil {
						ip.upstream.ReturnCredits(packet.VC(vc), p.Size)
					}
					s.drop(p, ip.idx, o)
				}
			}
		}
	}
	for _, op := range s.out {
		for vc := 0; vc < packet.NumVCs; vc++ {
			for {
				p := op.buf[vc].Pop()
				if p == nil {
					break
				}
				s.drop(p, op.idx, -1)
			}
		}
	}
	return true
}

// Down reports whether the switch is currently killed by a SwitchDown
// fault.
func (s *Switch) Down() bool { return s.down }

// Dropped returns the number of packets discarded by SwitchDown faults.
func (s *Switch) Dropped() uint64 { return s.dropped }

// Audit verifies the switch's internal buffer accounting: every input
// port's per-VC pool must equal the bytes actually queued in its VOQs plus
// the in-flight crossbar transfer it still holds. The soak harness calls
// this after every epoch as the switch-level credit-leak check.
func (s *Switch) Audit() error {
	for _, ip := range s.in {
		var want [packet.NumVCs]units.Size
		for vc := 0; vc < packet.NumVCs; vc++ {
			for o := 0; o < s.cfg.Radix; o++ {
				want[vc] += ip.voq[vc][o].Bytes()
			}
		}
		if ip.busy {
			want[ip.xferVC] += ip.xferSize
		}
		for vc := 0; vc < packet.NumVCs; vc++ {
			if ip.pool[vc] != want[vc] {
				return fmt.Errorf("switch %d input %d vc %d: pool %v != queued+in-flight %v",
					s.cfg.ID, ip.idx, vc, ip.pool[vc], want[vc])
			}
			if ip.pool[vc] > s.cfg.BufPerVC {
				return fmt.Errorf("switch %d input %d vc %d: pool %v above capacity %v",
					s.cfg.ID, ip.idx, vc, ip.pool[vc], s.cfg.BufPerVC)
			}
		}
	}
	return nil
}

// retryInput re-arbitrates the outputs the freed input has traffic for.
func (s *Switch) retryInput(ip *inputPort) {
	for o := 0; o < s.cfg.Radix; o++ {
		waiting := false
		for vc := 0; vc < packet.NumVCs; vc++ {
			if ip.voq[vc][o].Len() > 0 {
				waiting = true
				break
			}
		}
		if waiting && !s.out[o].busy {
			s.tryXbar(o)
		}
	}
}

// tryLinkTx attempts to put one packet from output o's buffers on the wire.
func (s *Switch) tryLinkTx(o int) {
	op := s.out[o]
	l := op.down
	if l == nil || !l.Idle() {
		return
	}
	// The policy chooses the VC, honouring the appendix's rule: only the
	// discipline-designated head of each VC may be credit-checked.
	var heads [packet.NumVCs]*packet.Packet
	for vc := 0; vc < packet.NumVCs; vc++ {
		heads[vc] = op.buf[vc].Head()
	}
	vc := op.arb.PickLinkVC(&heads, op.sendOK)
	if vc < 0 {
		return
	}
	p := op.buf[vc].Pop()
	if s.cfg.Tracer != nil && p.Sampled {
		s.traceEvt(trace.KindLinkTx, p, o, -1)
	}
	// Stamp the TTD as of the moment the last byte leaves this switch, so
	// the next hop's reconstructed deadline carries no size-dependent
	// inflation (see link.TxTime).
	p.PackTTD(s.cfg.Clock.Now() + l.TxTime(p))
	s.linkSends++
	s.cfg.Metrics.LinkSends.Inc()
	l.Send(p)
	// Output buffer space freed: the crossbar may now have room.
	s.tryXbar(o)
}

// Stats returns the switch's instrumentation counters, aggregating the
// order-error oracle across every buffer.
func (s *Switch) Stats() Stats {
	st := Stats{XbarTransfers: s.xbarTransfers, LinkSends: s.linkSends}
	count := func(b pqueue.Buffer) {
		st.OrderErrors += b.OrderErrors()
		if tq, ok := b.(*pqueue.TakeOverQueue); ok {
			st.TakeOvers += tq.TakeOvers()
		}
	}
	for _, ip := range s.in {
		for vc := range ip.voq {
			for _, b := range ip.voq[vc] {
				count(b)
			}
		}
	}
	for _, op := range s.out {
		for _, b := range op.buf {
			count(b)
		}
	}
	return st
}

// traceEvt records one lifecycle event for a sampled packet at this
// switch. Slack is measured against the switch's local (possibly skewed)
// clock — the same clock its schedulers see.
func (s *Switch) traceEvt(kind trace.Kind, p *packet.Packet, port, out int) {
	s.cfg.Tracer.Record(trace.Event{
		T: s.cfg.Eng.Now(), Kind: kind, Pkt: p.ID, Flow: p.Flow,
		Class: p.Class, VC: p.VC, Seq: p.Seq, Src: p.Src, Dst: p.Dst,
		Node: s.cfg.ID, Port: port, Out: out, Hop: p.Hop,
		Slack: p.Deadline - s.cfg.Clock.Now(), Size: p.Size,
	})
}

// bufObserver surfaces buffer-internal events (take-over enqueues, order
// errors) of one queue as packet lifecycle events. Installed only when
// tracing is on, so the disabled path never pays the interface call.
type bufObserver struct {
	sw   *Switch
	port int // owning port index (input port for VOQs, output port for output buffers)
	out  int // VOQ's destination output port; -1 for output buffers
}

func (b *bufObserver) TakeOverEnqueued(p *packet.Packet) {
	if p.Sampled {
		b.sw.traceEvt(trace.KindTakeOver, p, b.port, b.out)
	}
}

func (b *bufObserver) OrderError(p *packet.Packet) {
	if p.Sampled {
		b.sw.traceEvt(trace.KindOrderError, p, b.port, b.out)
	}
}

// PortTelemetry is a point-in-time view of one switch port for the
// periodic probes: current buffer occupancy on both sides of the crossbar
// plus the cumulative take-over/order-error counters of every queue the
// port owns (counters are cumulative; the probe loop differences them).
type PortTelemetry struct {
	InPackets   int        // packets queued in the input VOQs
	InBytes     units.Size // bytes queued in the input VOQs (pool usage)
	OutPackets  int        // packets queued in the output buffers
	OutBytes    units.Size // bytes queued in the output buffers
	TakeOvers   uint64     // cumulative take-over enqueues, input + output queues
	OrderErrors uint64     // cumulative order errors, input + output queues
}

// PortTelemetry returns the probe view of port p.
func (s *Switch) PortTelemetry(p int) PortTelemetry {
	var t PortTelemetry
	count := func(b pqueue.Buffer) {
		t.OrderErrors += b.OrderErrors()
		if tq, ok := b.(*pqueue.TakeOverQueue); ok {
			t.TakeOvers += tq.TakeOvers()
		}
	}
	ip := s.in[p]
	for vc := range ip.voq {
		t.InBytes += ip.pool[vc]
		for _, b := range ip.voq[vc] {
			t.InPackets += b.Len()
			count(b)
		}
	}
	op := s.out[p]
	for _, b := range op.buf {
		t.OutPackets += b.Len()
		t.OutBytes += b.Bytes()
		count(b)
	}
	return t
}

// InTransit returns the packets currently crossing the crossbar: popped
// from an input VOQ but not yet in an output buffer. Together with Queued
// this accounts for every packet inside the switch (conservation checks).
func (s *Switch) InTransit() int { return s.inXbar }

// Queued returns the total packets currently buffered in the switch
// (diagnostics and drain checks).
func (s *Switch) Queued() int {
	n := 0
	for _, ip := range s.in {
		for vc := range ip.voq {
			for _, b := range ip.voq[vc] {
				n += b.Len()
			}
		}
	}
	for _, op := range s.out {
		for _, b := range op.buf {
			n += b.Len()
		}
	}
	return n
}
