package network

// Gray-failure detection and proactive evacuation.
//
// A gray failure is a link that still carries traffic but persistently
// slower than provisioned — a fault-plan Derate that neither clears nor
// hardens into a LinkDown. The availability machinery (repair.go) reacts
// only to topological events, and the CACs merely shrink their ledgers to
// the derated capacity (sessions.go), so regulated flows keep crossing
// the slow drain until their deadline slack is gone and the miss-burst
// SLO trips. The detector closes that gap: a link whose derate scale
// stays at or below Gray.Threshold for Gray.Persistence is declared
// gray, and Gray.DetectLatency later the plane reacts proactively —
// static flows crossing the link are moved to a RepairPath detour around
// every currently-gray link, and each CAC endpoint revalidates its
// sessions against Gray.EvacuateScale of the link's capacity, revoking
// or rerouting what the slow drain cannot carry.
//
// Like route repair, the whole decision process replays the static fault
// plan at build time — a pure function of (topology, plan, GrayConfig) —
// and only the resulting actions are scheduled onto shard engines: the
// detector is byte-identical at any shard count.

import (
	"fmt"
	"sort"

	"deadlineqos/internal/faults"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// GrayConfig parameterises the gray-failure detector (Config.Gray).
type GrayConfig struct {
	// Threshold classifies a derate as gray: a link running at scale <=
	// Threshold of nominal is a slow drain (default 0.6).
	Threshold float64
	// Persistence is how long the derate must persist before the link is
	// declared gray — transient dips heal themselves and must not trigger
	// evacuation (default 500 µs).
	Persistence units.Time
	// DetectLatency models the control-plane lag between the persistence
	// bound being met and the reactions applying (default 1 µs).
	DetectLatency units.Time
	// EvacuateScale is the capacity fraction the CACs revalidate a gray
	// link against: reservations beyond it are revoked or rerouted. Low
	// values evacuate aggressively (default 0.1).
	EvacuateScale float64
}

// validate fills defaults and rejects inconsistent detector settings.
func (g *GrayConfig) validate() error {
	if g.Threshold == 0 {
		g.Threshold = 0.6
	}
	if g.Threshold < 0 || g.Threshold > 1 {
		return fmt.Errorf("gray threshold %v out of (0, 1]", g.Threshold)
	}
	if g.Persistence == 0 {
		g.Persistence = 500 * units.Microsecond
	}
	if g.Persistence < 0 {
		return fmt.Errorf("negative gray persistence %v", g.Persistence)
	}
	if g.DetectLatency == 0 {
		g.DetectLatency = units.Microsecond
	}
	if g.DetectLatency < 0 {
		return fmt.Errorf("negative gray detect latency %v", g.DetectLatency)
	}
	if g.EvacuateScale == 0 {
		g.EvacuateScale = 0.1
	}
	if g.EvacuateScale < 0 || g.EvacuateScale > 1 {
		return fmt.Errorf("gray evacuate scale %v out of (0, 1]", g.EvacuateScale)
	}
	return nil
}

// GrayReport summarises the detector's run (Results.Gray; nil unless
// Config.Gray is set). All counters record actions that executed inside
// the run horizon.
type GrayReport struct {
	// Detections counts gray declarations (one per link episode that
	// outlasted Persistence).
	Detections uint64 `json:"detections"`
	// FlowsRerouted counts static flows proactively moved off gray links.
	FlowsRerouted uint64 `json:"flows_rerouted"`
	// Revalidations counts CAC revalidation sweeps triggered (one per
	// detection per CAC endpoint; zero without sessions).
	Revalidations uint64 `json:"revalidations"`
}

// String renders the gray report for the CLI tools.
func (g *GrayReport) String() string {
	return fmt.Sprintf("gray[detected=%d rerouted=%d revalidations=%d]",
		g.Detections, g.FlowsRerouted, g.Revalidations)
}

// grayShard is one shard's executed detector actions, recorded at event
// time (actions scheduled past the horizon never count) and merged
// order-independently at the end of Run.
type grayShard struct {
	detected uint64
	rerouted uint64
	revals   uint64
}

// grayEpisode is one contiguous below-threshold interval of a link, from
// the build-time replay of the plan's derate events.
type grayEpisode struct {
	link     faults.LinkID
	start    units.Time // first instant at or below threshold
	end      units.Time // first instant back above threshold (horizon if never)
	detectAt units.Time // start + Persistence + DetectLatency
}

// installGray replays the plan's derate timeline at build time and
// schedules every detection's reactions into the shard engines. Runs
// after sessions are provisioned (the CAC endpoints must exist).
func (n *Network) installGray() {
	gcfg := n.cfg.Gray
	if gcfg == nil || n.cfg.Faults.Empty() {
		return
	}
	horizon := n.cfg.WarmUp + n.cfg.Measure
	for _, sh := range n.shards {
		sh.gray = &grayShard{}
	}

	// Per-link derate timelines, in normalized (chronological) order.
	timelines := make(map[faults.LinkID][]faults.Event)
	var links []faults.LinkID
	for _, ev := range n.cfg.Faults.Normalized() {
		if ev.Kind != faults.Derate || ev.At > horizon {
			continue
		}
		if _, seen := timelines[ev.Link]; !seen {
			links = append(links, ev.Link)
		}
		timelines[ev.Link] = append(timelines[ev.Link], ev)
	}

	// Walk each link's timeline into below-threshold episodes, keeping the
	// ones that outlast Persistence with their detection inside the run.
	var episodes []grayEpisode
	for _, id := range links {
		var start units.Time
		gray := false
		for _, ev := range timelines[id] {
			below := ev.Scale <= gcfg.Threshold
			switch {
			case below && !gray:
				gray, start = true, ev.At
			case !below && gray:
				gray = false
				if ev.At-start >= gcfg.Persistence {
					episodes = append(episodes, grayEpisode{
						link: id, start: start, end: ev.At,
						detectAt: start + gcfg.Persistence + gcfg.DetectLatency,
					})
				}
			}
		}
		if gray && horizon-start >= gcfg.Persistence {
			episodes = append(episodes, grayEpisode{
				link: id, start: start, end: horizon,
				detectAt: start + gcfg.Persistence + gcfg.DetectLatency,
			})
		}
	}
	kept := episodes[:0]
	for _, e := range episodes {
		if e.detectAt <= horizon {
			kept = append(kept, e)
		}
	}
	episodes = kept
	if len(episodes) == 0 {
		return
	}
	// Detection order is chronological with a fixed address tie-break, so
	// the shadow-route evolution below is deterministic.
	sort.SliceStable(episodes, func(i, j int) bool {
		a, b := episodes[i], episodes[j]
		if a.detectAt != b.detectAt {
			return a.detectAt < b.detectAt
		}
		if a.link.Switch != b.link.Switch {
			return a.link.Switch < b.link.Switch
		}
		return a.link.Port < b.link.Port
	})

	// Shadow routes track the coordinator's view of every registered
	// static flow, exactly like installRepair's.
	routes := make([][]int, len(n.repairFlows))
	for i, rf := range n.repairFlows {
		routes[i] = n.hosts[rf.host].Flow(rf.id).Route
	}
	crosses := func(rf regFlow, route []int, id faults.LinkID) bool {
		for _, h := range topology.RouteHops(n.topo, rf.src, route) {
			if h.Switch == id.Switch && h.OutPort == id.Port {
				return true
			}
		}
		return false
	}

	// CAC endpoints for revalidation sweeps (empty without sessions).
	type cacSched struct {
		shard int
		cac   cacHooks
	}
	var cacs []cacSched
	if n.sessMgr != nil {
		cacs = append(cacs, cacSched{n.hostShard[n.sessCfg.Manager], n.sessMgr})
		for _, d := range n.sessDelegates {
			cacs = append(cacs, cacSched{n.hostShard[d.HostID()], d})
		}
	}

	for _, e := range episodes {
		// The active gray set at this detection instant: every episode
		// already detected and not yet healed blocks the detour search.
		active := make(map[faults.LinkID]bool)
		for _, o := range episodes {
			if o.detectAt <= e.detectAt && o.end > e.detectAt {
				active[o.link] = true
			}
		}
		blocked := func(sw, out int) bool {
			return active[faults.LinkID{Switch: sw, Port: out}]
		}

		// Detection bookkeeping lives on the gray switch's shard.
		swShard := n.shards[n.swShard[e.link.Switch]]
		swShard.eng.At(e.detectAt, func() {
			swShard.gray.detected++
			if det, _, _ := swShard.mtr.grayCounters(); det != nil {
				det.Inc()
			}
		})

		// Proactive reroute: move every static flow crossing the freshly
		// gray link onto a detour avoiding all currently-gray links.
		for i, rf := range n.repairFlows {
			if !crosses(rf, routes[i], e.link) {
				continue
			}
			hops := topology.RepairPath(n.topo, rf.src, rf.dst, blocked)
			if hops == nil {
				continue // fully gray fabric: leave the flow where it is
			}
			newRoute := topology.Ports(hops)
			routes[i] = newRoute
			rf := rf
			sh := n.shards[n.hostShard[rf.host]]
			sh.eng.At(e.detectAt, func() {
				n.hosts[rf.host].Flow(rf.id).Route = newRoute
				sh.gray.rerouted++
				if _, rer, _ := sh.mtr.grayCounters(); rer != nil {
					rer.Inc()
				}
			})
		}

		// Session revalidation: every CAC endpoint re-sees the link at the
		// evacuation capacity and revokes or reroutes what no longer fits.
		for _, cs := range cacs {
			cs := cs
			link := e.link
			sh := n.shards[cs.shard]
			sh.eng.At(e.detectAt, func() {
				cs.cac.OnLinkDerated(link.Switch, link.Port, gcfg.EvacuateScale)
				sh.gray.revals++
				if _, _, rev := sh.mtr.grayCounters(); rev != nil {
					rev.Inc()
				}
			})
		}
	}
}

// buildGrayReport merges the per-shard detector counters into
// Results.Gray. Nil unless the detector was configured.
func (n *Network) buildGrayReport(res *Results) {
	if n.cfg.Gray == nil {
		return
	}
	rep := &GrayReport{}
	for _, sh := range n.shards {
		if sh.gray == nil {
			continue
		}
		rep.Detections += sh.gray.detected
		rep.FlowsRerouted += sh.gray.rerouted
		rep.Revalidations += sh.gray.revals
	}
	res.Gray = rep
}
