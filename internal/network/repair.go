package network

// Route repair and graceful degradation under switch/port failures.
//
// The paper's admission control fixes a source route per flow (§3). When a
// fault plan kills a switch or cuts a cable, every fixed route crossing it
// blackholes. This file models the fabric-management reaction for the
// statically provisioned flows (the dynamic session subsystem repairs its
// own flows through the CAC, see internal/session): a build-time replay of
// the plan's topological events decides, deterministically, which flows
// break at each fault, computes a repaired route over the surviving fabric
// (topology.RepairPath), and schedules the route swap RepairDelay after
// the fault on the owning host's shard. Pairs the surviving fabric cannot
// connect degrade gracefully: the source keeps transmitting, the dead
// links and switches account every packet, and the flow is reported
// unreachable instead of wedging the run.
//
// Because the whole decision process replays the static plan at build
// time, it is a pure function of (topology, plan): the schedule — and with
// it every counter below — is byte-identical at any shard count.

import (
	"fmt"

	"deadlineqos/internal/faults"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/stats"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// Availability summarises fabric health under topological faults: outage
// exposure, repair activity over static flows and dynamic sessions, and
// the time-to-repair distribution. Nil in Results unless the fault plan
// contains switch or port events.
type Availability struct {
	// Executed topological fault events (inside the run horizon).
	SwitchDowns uint64 `json:"switch_downs"`
	SwitchUps   uint64 `json:"switch_ups"`
	PortDowns   uint64 `json:"port_downs"`
	// Downtime is the summed per-switch outage time, clipped to the
	// horizon (two switches down for 1 ms each count 2 ms).
	Downtime units.Time `json:"downtime"`

	// Static provisioned flows (sessions are counted separately below).
	// Rerouted moves a live flow to a detour; Restored re-validates a flow
	// that was blackholing (by repair after an outage, or because the
	// fault's clearing revived its route); Unreachable marks a flow whose
	// host pair the surviving fabric cannot connect.
	FlowsRerouted    uint64 `json:"flows_rerouted"`
	FlowsRestored    uint64 `json:"flows_restored"`
	FlowsUnreachable uint64 `json:"flows_unreachable"`

	// Dynamic sessions stranded by switch/port failures (from the session
	// manager's reroute-or-revoke machinery).
	SessionsRevoked     uint64 `json:"sessions_revoked"`
	SessionsRerouted    uint64 `json:"sessions_rerouted"`
	SessionsDowngraded  uint64 `json:"sessions_downgraded"`
	SessionsUnreachable uint64 `json:"sessions_unreachable"`

	// Time-to-repair over every repair performed — static route swaps
	// (fault instant to swap) and session reroutes (fault instant to the
	// client's in-band receipt of the new route).
	RepairCount uint64     `json:"repair_count"`
	RepairP50   units.Time `json:"repair_p50"`
	RepairP99   units.Time `json:"repair_p99"`
}

// String renders the availability summary for reports.
func (a *Availability) String() string {
	return fmt.Sprintf("downs=%d ups=%d portcuts=%d downtime=%v rerouted=%d restored=%d unreachable=%d sess[revoked=%d rerouted=%d downgraded=%d unreachable=%d] ttr[p50=%v p99=%v n=%d]",
		a.SwitchDowns, a.SwitchUps, a.PortDowns, a.Downtime,
		a.FlowsRerouted, a.FlowsRestored, a.FlowsUnreachable,
		a.SessionsRevoked, a.SessionsRerouted, a.SessionsDowngraded, a.SessionsUnreachable,
		a.RepairP50, a.RepairP99, a.RepairCount)
}

// availShard is one shard's repair activity, recorded by the scheduled
// repair events as they execute (so a repair scheduled past the horizon is
// not counted) and merged order-independently at the end of Run.
type availShard struct {
	rerouted    uint64
	restored    uint64
	unreachable uint64
	ttr         *stats.Histogram
}

// regFlow is one statically provisioned flow registered with the repair
// coordinator.
type regFlow struct {
	host     int // owning (source) host
	id       packet.FlowID
	src, dst int
}

// registerRepairFlow records a provisioned flow for route repair and the
// gray-failure detector. No-op unless the fault plan contains topological
// events or the detector is armed.
func (n *Network) registerRepairFlow(host int, id packet.FlowID, src, dst int) {
	if !n.repairOn && !n.grayOn {
		return
	}
	n.repairFlows = append(n.repairFlows, regFlow{host: host, id: id, src: src, dst: dst})
}

// installRepair replays the plan's topological events at build time and
// schedules every repair decision into the shard engines. Runs after all
// static flows (traffic and session signalling) are provisioned.
func (n *Network) installRepair() {
	if !n.repairOn {
		return
	}
	horizon := n.cfg.WarmUp + n.cfg.Measure
	delay := n.cfg.RepairDelay
	for _, sh := range n.shards {
		sh.avail = &availShard{ttr: stats.NewHistogram()}
	}
	av := &Availability{}
	n.avail = av

	// Dead-set state machine, mirroring what the live fault installer does
	// to the links: a dead switch blocks all its links, a cut cable blocks
	// both its directions.
	deadSw := make(map[int]bool)
	deadLink := make(map[faults.LinkID]bool)
	blocked := func(sw, out int) bool {
		if deadSw[sw] || deadLink[faults.LinkID{Switch: sw, Port: out}] {
			return true
		}
		peer := n.topo.Peer(sw, out)
		return !peer.IsHost && peer.ID >= 0 && deadSw[peer.ID]
	}
	routeBroken := func(rf regFlow, route []int) bool {
		srcSw, srcPort := n.topo.HostPort(rf.src)
		if blocked(srcSw, srcPort) {
			return true // injection cable cut or source leaf dead
		}
		for _, h := range topology.RouteHops(n.topo, rf.src, route) {
			if blocked(h.Switch, h.OutPort) {
				return true
			}
		}
		return false
	}

	// Shadow routes track the coordinator's view: the route each flow will
	// have once its pending swap applies.
	routes := make([][]int, len(n.repairFlows))
	broken := make([]bool, len(n.repairFlows))
	brokenAt := make([]units.Time, len(n.repairFlows))
	for i, rf := range n.repairFlows {
		routes[i] = n.hosts[rf.host].Flow(rf.id).Route
	}
	downSince := make(map[int]units.Time)

	for _, ev := range planEvents(n.cfg.Faults) {
		if !ev.Kind.Topological() || ev.At > horizon {
			continue // events past the horizon never execute
		}
		switch ev.Kind {
		case faults.SwitchDown:
			deadSw[ev.Link.Switch] = true
			downSince[ev.Link.Switch] = ev.At
			av.SwitchDowns++
		case faults.SwitchUp:
			deadSw[ev.Link.Switch] = false
			av.SwitchUps++
			av.Downtime += ev.At - downSince[ev.Link.Switch]
			delete(downSince, ev.Link.Switch)
		case faults.PortDown, faults.PortUp:
			down := ev.Kind == faults.PortDown
			if down {
				av.PortDowns++
			}
			deadLink[ev.Link] = down
			if peer := n.topo.Peer(ev.Link.Switch, ev.Link.Port); !peer.IsHost && peer.ID >= 0 {
				deadLink[faults.LinkID{Switch: peer.ID, Port: peer.Port}] = down
			}
			// A cut host cable has no reverse LinkID; blocked() already
			// covers both directions through the forward entry.
		}

		// Sweep the registry in registration order (deterministic).
		for i, rf := range n.repairFlows {
			if !routeBroken(rf, routes[i]) {
				if broken[i] {
					// The fault's clearing revived the existing route; no
					// management action needed, the blackhole just ended.
					broken[i] = false
					ttr := ev.At - brokenAt[i]
					n.scheduleAvail(rf.host, ev.At, func(a *availShard) {
						a.restored++
						a.ttr.Add(ttr)
					})
				}
				continue
			}
			hops := topology.RepairPath(n.topo, rf.src, rf.dst, blocked)
			if hops == nil {
				if !broken[i] {
					broken[i] = true
					brokenAt[i] = ev.At
					n.scheduleAvail(rf.host, ev.At+delay, func(a *availShard) {
						a.unreachable++
					})
				}
				continue
			}
			newRoute := topology.Ports(hops)
			routes[i] = newRoute
			at := ev.At + delay
			wasBroken := broken[i]
			ttr := at - ev.At
			if wasBroken {
				broken[i] = false
				ttr = at - brokenAt[i]
			}
			rf := rf
			n.scheduleAvail(rf.host, at, func(a *availShard) {
				n.hosts[rf.host].Flow(rf.id).Route = newRoute
				if wasBroken {
					a.restored++
				} else {
					a.rerouted++
				}
				a.ttr.Add(ttr)
			})
		}
	}
	// Switches still dead at the horizon accrue downtime to the end of the
	// run (integer sum: map iteration order does not matter).
	for _, since := range downSince {
		av.Downtime += horizon - since
	}
}

// scheduleAvail schedules one repair action on host's shard engine,
// handing it the shard's availability counters.
func (n *Network) scheduleAvail(host int, at units.Time, fn func(a *availShard)) {
	sh := n.shards[n.hostShard[host]]
	sh.eng.At(at, func() { fn(sh.avail) })
}

// planEvents returns the plan's normalized events (nil-safe).
func planEvents(plan *faults.Plan) []faults.Event {
	if plan == nil {
		return nil
	}
	return plan.Normalized()
}

// buildAvailability merges the per-shard repair counters and the session
// manager's switch-failure results into Results.Availability. Called at
// the end of Run, after the session counters are merged.
func (n *Network) buildAvailability(res *Results) {
	if n.avail == nil {
		return
	}
	av := n.avail
	ttr := stats.NewHistogram()
	for _, sh := range n.shards {
		av.FlowsRerouted += sh.avail.rerouted
		av.FlowsRestored += sh.avail.restored
		av.FlowsUnreachable += sh.avail.unreachable
		ttr.Merge(sh.avail.ttr)
	}
	if s := res.Sessions; s != nil {
		av.SessionsRevoked = s.SwitchRevoked
		av.SessionsRerouted = s.SwitchRerouted
		av.SessionsDowngraded = s.SwitchDowngraded
		av.SessionsUnreachable = s.SwitchUnreachable
		ttr.Merge(n.shards[0].sess.RepairLatHist) // merged across shards by Run
	}
	av.RepairCount = ttr.Count()
	if ttr.Count() > 0 {
		av.RepairP50 = ttr.Quantile(0.50)
		av.RepairP99 = ttr.Quantile(0.99)
	}
	res.Availability = av
}

// AuditInvariants checks the structural invariants that must hold at any
// event boundary — switch buffer-pool accounting and link credit bounds —
// plus the admission ledger's exact balance. The soak harness calls it
// after every epoch; it is independent of the statistical results.
func (n *Network) AuditInvariants() error {
	for _, sw := range n.switches {
		if err := sw.Audit(); err != nil {
			return err
		}
	}
	for i, l := range n.links {
		for vc := 0; vc < packet.NumVCs; vc++ {
			if c := l.Credits(packet.VC(vc)); c < 0 || c > n.cfg.BufPerVC {
				return fmt.Errorf("network: link %d vc %d credit balance %v outside [0, %v]",
					i, vc, c, n.cfg.BufPerVC)
			}
		}
	}
	if n.adm != nil {
		if err := n.adm.AuditLedger(); err != nil {
			return err
		}
	}
	for _, d := range n.sessDelegates {
		if err := d.AuditLedger(); err != nil {
			return fmt.Errorf("network: pod %d delegate (host %d): %w", d.PodLeaf(), d.HostID(), err)
		}
	}
	// Control-plane liveness: no client may have a setup pending longer
	// than the protocol's worst case (retries, capped backoff, response
	// timeouts and queue-drain hints included). A session stuck past the
	// bound means a Grant/Reject was lost without the retry machinery
	// recovering it — e.g. Ctl packets discarded by a dying switch with no
	// timeout armed.
	if n.sessMgr != nil {
		bound := n.sessCfg.LivenessBound()
		now := n.eng.Now()
		for _, cl := range n.sessClients {
			if oldest, ok := cl.OldestPending(); ok && now-oldest > bound {
				return fmt.Errorf(
					"network: session liveness: host %d has a setup pending since %v (now %v, bound %v)",
					cl.HostID(), oldest, now, bound)
			}
		}
	}
	return nil
}
