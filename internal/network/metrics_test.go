package network

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"deadlineqos/internal/coflow"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/session"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// metricsConfig is the metrics-plane acceptance scenario: the small Clos
// under load with sessions and invariant checking, sharded as requested.
func metricsConfig(shards int) Config {
	cfg := SmallConfig()
	cfg.WarmUp = 1 * units.Millisecond
	cfg.Measure = 6 * units.Millisecond
	cfg.Load = 0.8
	cfg.Shards = shards
	cfg.CheckInvariants = true
	cfg.Sessions = &session.Config{
		InterArrival: 300 * units.Microsecond,
		HoldMean:     1500 * units.Microsecond,
	}
	return cfg
}

// resultFingerprint condenses a run into the deterministic outputs the
// metrics plane must not perturb (engine event counts are excluded: the
// sharded runtime adds synchronisation events of its own).
func resultFingerprint(t *testing.T, res *Results) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Cons faults.Conservation
		Sess *session.Results
	}{res.Conservation, res.Sessions})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsShardDeterminism pins the deterministic metrics render (and
// the simulation results) byte-identical at 1, 2 and 4 shards with the
// metrics plane enabled.
func TestMetricsShardDeterminism(t *testing.T) {
	var baseMetrics, baseResults string
	for _, shards := range []int{1, 2, 4} {
		cfg := metricsConfig(shards)
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var buf bytes.Buffer
		if err := reg.WriteDeterministic(&buf); err != nil {
			t.Fatalf("shards=%d: WriteDeterministic: %v", shards, err)
		}
		m, r := buf.String(), resultFingerprint(t, res)
		if baseMetrics == "" {
			baseMetrics, baseResults = m, r
			// Sanity: the plane actually recorded traffic.
			for _, want := range []string{
				"qos_host_delivered_total", "qos_link_tx_packets_total",
				"qos_buffer_enqueued_total", "qos_session_accepted_total",
				"qos_delivery_slack_ns", "qos_admission_reserves_total",
			} {
				if !strings.Contains(m, want) {
					t.Fatalf("deterministic render missing %s:\n%s", want, m)
				}
			}
			if strings.Contains(m, "qos_engine_events_total") {
				t.Fatalf("PerEngine instrument leaked into deterministic render:\n%s", m)
			}
			continue
		}
		if m != baseMetrics {
			t.Fatalf("shards=%d metrics diverge:\n%s\nvs sequential:\n%s", shards, m, baseMetrics)
		}
		if r != baseResults {
			t.Fatalf("shards=%d results diverge:\n%s\nvs sequential:\n%s", shards, r, baseResults)
		}
	}
}

// TestPolicyMetricsShardDeterminism pins the scheduling-policy plane in
// the frozen schema: a value-drop run with a coflow workload must render
// the qos_policy_* counters, with non-zero evictions and coflow verdicts,
// byte-identically at 1, 2 and 4 shards.
func TestPolicyMetricsShardDeterminism(t *testing.T) {
	var base string
	for _, shards := range []int{1, 2, 4} {
		cfg := SmallConfig()
		cfg.WarmUp = units.Millisecond
		cfg.Measure = 8 * units.Millisecond
		cfg.Load = 1.0
		cfg.ClassShare = [4]float64{0.1, 0.1, 0.6, 0.2}
		cfg.HotspotFraction = 0.7
		cfg.HotspotHost = 0
		cfg.Policy = policy.ValueDrop(32*units.Kilobyte, false)
		cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp, Rounds: 4, Chunk: 4 * units.Kilobyte}
		cfg.Shards = shards
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var buf bytes.Buffer
		if err := reg.WriteDeterministic(&buf); err != nil {
			t.Fatalf("shards=%d: WriteDeterministic: %v", shards, err)
		}
		m := buf.String()
		if base == "" {
			base = m
			for _, want := range []string{
				"qos_policy_evictions_total", "qos_policy_evicted_value_total",
				"qos_policy_coflow_admitted_total", "qos_policy_coflow_rejected_total",
				"qos_policy_coflow_completed_total", "qos_policy_coflow_missed_total",
			} {
				if !strings.Contains(m, want) {
					t.Fatalf("deterministic render missing %s:\n%s", want, m)
				}
			}
			if sum := res.Conservation.EvictedAtNIC; sum == 0 {
				t.Fatal("scenario produced no evictions; the counters are untested")
			}
			if res.Coflows == nil || res.Coflows.Admitted+res.Coflows.Rejected == 0 {
				t.Fatal("scenario produced no coflow verdicts")
			}
			continue
		}
		if m != base {
			t.Fatalf("shards=%d policy metrics diverge:\n%s\nvs sequential:\n%s", shards, m, base)
		}
	}
}

// TestMetricsDoNotPerturb runs the same scenario bare, with the metrics
// plane, and with the flight recorder + miss-burst SLO armed: all three
// must produce identical simulation results.
func TestMetricsDoNotPerturb(t *testing.T) {
	bare, err := Run(metricsConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	want := resultFingerprint(t, bare)

	withMetrics := metricsConfig(2)
	withMetrics.Metrics = metrics.NewRegistry()
	res, err := Run(withMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultFingerprint(t, res); got != want {
		t.Fatalf("metrics plane perturbed the run:\n%s\nvs\n%s", got, want)
	}

	withFlight := metricsConfig(2)
	withFlight.Flight = trace.NewFlightRecorder(0)
	withFlight.MissBurstCount = 1
	res, err = Run(withFlight)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultFingerprint(t, res); got != want {
		t.Fatalf("flight recorder perturbed the run:\n%s\nvs\n%s", got, want)
	}
}

// TestMissBurstTripsFlightRecorder arms the tightest possible SLO (one
// missed deadline) under overload and expects the flight ring to freeze
// with the events leading up to the first miss.
func TestMissBurstTripsFlightRecorder(t *testing.T) {
	cfg := metricsConfig(2)
	cfg.Load = 1.0
	fr := trace.NewFlightRecorder(0)
	cfg.Flight = fr
	cfg.MissBurstCount = 1
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	tripped, reason, at := fr.Tripped()
	if !tripped {
		t.Fatal("overloaded run missed no deadline burst; SLO never tripped")
	}
	if reason != "deadline-miss-burst" || at <= 0 {
		t.Fatalf("trip (%q, %v), want deadline-miss-burst at a positive time", reason, at)
	}
	evs := fr.Events()
	if len(evs) == 0 {
		t.Fatal("tripped flight recorder holds no events")
	}
	var buf bytes.Buffer
	if err := fr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(evs)+1 {
		t.Fatalf("JSONL dump has %d lines for %d events + header", lines, len(evs))
	}
	// The miss burst also shows on the scrape surface.
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "qos_host_missed_total") {
		t.Fatalf("prom render missing qos_host_missed_total:\n%s", prom.String())
	}
}

// TestFlightAndTracerMutuallyExclusive pins the validate rule.
func TestFlightAndTracerMutuallyExclusive(t *testing.T) {
	cfg := metricsConfig(1)
	cfg.Flight = trace.NewFlightRecorder(0)
	tr, err := trace.New(trace.Config{SampleRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = tr
	if _, err := New(cfg); err == nil {
		t.Fatal("Flight + Tracer accepted")
	}
}
