// Periodic telemetry probes: a recurring engine event walks every switch
// port on Config.ProbeInterval and appends occupancy, credit, take-over,
// order-error and link-utilization samples to the run's trace.Telemetry,
// plus one engine-progress sample per tick.
//
// Probes are strictly read-only: they never mutate simulator state, and
// the recurring event's FIFO tie-break slot cannot reorder other events,
// so enabling probing does not change a run's packet-level outcome. In a
// sharded run each shard probes only the switches it owns, on its own
// engine (a probe may only touch state of its own shard); Run merges the
// per-shard port series back into the sequential (time, switch, port)
// order, so the merged series is identical at every shard count. Engine
// samples are inherently per-engine and are excluded from that guarantee.

package network

import (
	"deadlineqos/internal/faults"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// portKey addresses one switch port in the prober's delta maps.
type portKey struct{ sw, port int }

// prober holds the previous-probe counter values needed to turn the
// cumulative switch/link counters into per-interval rates. Each shard has
// its own prober; the delta maps are keyed per port, so splitting them
// across shards leaves every computed rate unchanged.
type prober struct {
	n          *Network
	shard      int
	sh         *netShard
	prevTO     map[portKey]uint64
	prevOE     map[portKey]uint64
	prevBusy   map[portKey]units.Time
	prevEvents uint64
}

// startProbes arms one recurring probe event per shard when probing is
// configured.
func (n *Network) startProbes() {
	iv := n.cfg.ProbeInterval
	if iv <= 0 {
		return
	}
	horizon := n.cfg.WarmUp + n.cfg.Measure
	for si, sh := range n.shards {
		sh.telemetry = &trace.Telemetry{Interval: iv}
		pr := &prober{
			n:        n,
			shard:    si,
			sh:       sh,
			prevTO:   make(map[portKey]uint64),
			prevOE:   make(map[portKey]uint64),
			prevBusy: make(map[portKey]units.Time),
		}
		eng := sh.eng
		var tick func()
		tick = func() {
			pr.sample(eng.Now())
			if eng.Now()+iv <= horizon {
				eng.After(iv, tick)
			}
		}
		eng.After(iv, tick)
	}
}

// sample appends one probe of every owned switch port and of the shard's
// engine to the shard's telemetry series.
func (p *prober) sample(t units.Time) {
	secs := float64(p.sh.telemetry.Interval) / 1e9
	for sw, s := range p.n.switches {
		if p.n.swShard[sw] != p.shard {
			continue
		}
		for port := 0; port < p.n.topo.Radix(sw); port++ {
			pt := s.PortTelemetry(port)
			smp := trace.PortSample{
				T: t, Switch: sw, Port: port,
				InPackets: pt.InPackets, InBytes: pt.InBytes,
				OutPackets: pt.OutPackets, OutBytes: pt.OutBytes,
				TakeOvers: pt.TakeOvers, OrderErrors: pt.OrderErrors,
			}
			key := portKey{sw, port}
			smp.TakeOverRate = float64(pt.TakeOvers-p.prevTO[key]) / secs
			smp.OrderErrRate = float64(pt.OrderErrors-p.prevOE[key]) / secs
			p.prevTO[key] = pt.TakeOvers
			p.prevOE[key] = pt.OrderErrors
			// The port's outgoing link is owned by this switch's shard, so
			// reading its sender-side counters stays shard-local.
			if l := p.n.linkByID[faults.LinkID{Switch: sw, Port: port}]; l != nil {
				var credits units.Size
				for vc := 0; vc < packet.NumVCs; vc++ {
					credits += l.Credits(packet.VC(vc))
				}
				smp.CreditBytes = credits
				busy := l.TxBusyTime()
				// Serialisation time is charged whole at Send, so a probe
				// landing mid-packet may report slightly above 1.
				smp.LinkUtilization = float64(busy-p.prevBusy[key]) / float64(p.sh.telemetry.Interval)
				p.prevBusy[key] = busy
			}
			p.sh.telemetry.Ports = append(p.sh.telemetry.Ports, smp)
		}
	}
	// Session probes, one row per CAC entity, each on the shard owning the
	// entity's host: every sampled value (session tables, reserved sums,
	// the entity's own cumulative counters) is written exclusively by that
	// shard's events, so the merged (T, Pod, Host)-sorted series is
	// identical at every shard count. Shard counters are deliberately NOT
	// sampled here — their composition depends on the shard layout.
	if m := p.n.sessMgr; m != nil && p.n.hostShard[p.n.sessCfg.Manager] == p.shard {
		p.sh.telemetry.Sessions = append(p.sh.telemetry.Sessions, trace.SessionSample{
			T: t, Pod: -1, Host: p.n.sessCfg.Manager,
			Active: m.ActiveSessions(), ReservedBW: m.ReservedNow(),
			Accepted: m.AcceptedCount(), Rejected: m.RejectedCount(),
			Revoked: m.RevokedCount(), QueueDepth: m.QueueDepth(),
			Shed: m.ShedCount(),
		})
	}
	for _, d := range p.n.sessDelegates {
		if p.n.hostShard[d.HostID()] != p.shard {
			continue
		}
		p.sh.telemetry.Sessions = append(p.sh.telemetry.Sessions, trace.SessionSample{
			T: t, Pod: d.PodLeaf(), Host: d.HostID(),
			Active: d.ActiveSessions(), ReservedBW: d.ReservedNow(),
			Accepted: d.LocalGrantCount(), Revoked: d.RevokedCount(),
			LeaseFrac: d.LeaseFrac(), LeaseUtil: d.LeaseUtil(),
			QueueDepth: d.QueueDepth(), Shed: d.ShedCount(),
		})
	}
	ev := p.sh.eng.Fired()
	p.sh.telemetry.Engine = append(p.sh.telemetry.Engine, trace.EngineSample{
		T: t, Events: ev, Pending: p.sh.eng.Pending(),
		EventRate: float64(ev-p.prevEvents) / secs,
	})
	p.prevEvents = ev
	// Refresh the shard's gauges and publish its metrics snapshot for the
	// live scrape server (no-op without a metrics registry).
	p.n.publishMetrics(p.shard, t)
}
