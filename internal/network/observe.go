// Periodic telemetry probes: a recurring engine event walks every switch
// port on Config.ProbeInterval and appends occupancy, credit, take-over,
// order-error and link-utilization samples to the run's trace.Telemetry,
// plus one engine-progress sample per tick.
//
// Probes are strictly read-only: they never mutate simulator state, and
// the recurring event's FIFO tie-break slot cannot reorder other events,
// so enabling probing does not change a run's packet-level outcome.

package network

import (
	"deadlineqos/internal/faults"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// portKey addresses one switch port in the prober's delta maps.
type portKey struct{ sw, port int }

// prober holds the previous-probe counter values needed to turn the
// cumulative switch/link counters into per-interval rates.
type prober struct {
	n          *Network
	tel        *trace.Telemetry
	prevTO     map[portKey]uint64
	prevOE     map[portKey]uint64
	prevBusy   map[portKey]units.Time
	prevEvents uint64
}

// startProbes arms the recurring probe event when probing is configured.
func (n *Network) startProbes() {
	iv := n.cfg.ProbeInterval
	if iv <= 0 {
		return
	}
	n.telemetry = &trace.Telemetry{Interval: iv}
	pr := &prober{
		n:        n,
		tel:      n.telemetry,
		prevTO:   make(map[portKey]uint64),
		prevOE:   make(map[portKey]uint64),
		prevBusy: make(map[portKey]units.Time),
	}
	horizon := n.cfg.WarmUp + n.cfg.Measure
	var tick func()
	tick = func() {
		pr.sample(n.eng.Now())
		if n.eng.Now()+iv <= horizon {
			n.eng.After(iv, tick)
		}
	}
	n.eng.After(iv, tick)
}

// sample appends one probe of every switch port and the engine to the
// telemetry series.
func (p *prober) sample(t units.Time) {
	secs := float64(p.tel.Interval) / 1e9
	for sw, s := range p.n.switches {
		for port := 0; port < p.n.topo.Radix(sw); port++ {
			pt := s.PortTelemetry(port)
			smp := trace.PortSample{
				T: t, Switch: sw, Port: port,
				InPackets: pt.InPackets, InBytes: pt.InBytes,
				OutPackets: pt.OutPackets, OutBytes: pt.OutBytes,
				TakeOvers: pt.TakeOvers, OrderErrors: pt.OrderErrors,
			}
			key := portKey{sw, port}
			smp.TakeOverRate = float64(pt.TakeOvers-p.prevTO[key]) / secs
			smp.OrderErrRate = float64(pt.OrderErrors-p.prevOE[key]) / secs
			p.prevTO[key] = pt.TakeOvers
			p.prevOE[key] = pt.OrderErrors
			if l := p.n.linkByID[faults.LinkID{Switch: sw, Port: port}]; l != nil {
				var credits units.Size
				for vc := 0; vc < packet.NumVCs; vc++ {
					credits += l.Credits(packet.VC(vc))
				}
				smp.CreditBytes = credits
				busy := l.TxBusyTime()
				// Serialisation time is charged whole at Send, so a probe
				// landing mid-packet may report slightly above 1.
				smp.LinkUtilization = float64(busy-p.prevBusy[key]) / float64(p.tel.Interval)
				p.prevBusy[key] = busy
			}
			p.tel.Ports = append(p.tel.Ports, smp)
		}
	}
	ev := p.n.eng.Fired()
	p.tel.Engine = append(p.tel.Engine, trace.EngineSample{
		T: t, Events: ev, Pending: p.n.eng.Pending(),
		EventRate: float64(ev-p.prevEvents) / secs,
	})
	p.prevEvents = ev
}
