package network

import (
	"testing"

	"deadlineqos/internal/analytic"
	"deadlineqos/internal/arch"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// quickCfg returns a small, fast configuration for functional tests.
func quickCfg(a arch.Arch, load float64) Config {
	cfg := SmallConfig()
	cfg.Arch = a
	cfg.Load = load
	cfg.WarmUp = 1 * units.Millisecond
	cfg.Measure = 10 * units.Millisecond
	return cfg
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Topology = nil },
		func(c *Config) { c.LinkBW = 0 },
		func(c *Config) { c.Load = 1.5 },
		func(c *Config) { c.Load = -0.1 },
		func(c *Config) { c.ClassShare = [packet.NumClasses]float64{0.5, 0.5, 0.5, 0.5} },
		func(c *Config) { c.MTU = 4 },
		func(c *Config) { c.BufPerVC = 100 },
		func(c *Config) { c.Measure = 0 },
		func(c *Config) { c.ControlDests = 0 },
		func(c *Config) { c.ControlDests = 1000 },
		func(c *Config) { c.BEWeight = 0 },
		func(c *Config) { c.VideoPeriod = 0 },
	}
	for i, mutate := range bad {
		cfg := SmallConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPacketConservation(t *testing.T) {
	for _, a := range arch.All() {
		res, err := Run(quickCfg(a, 0.4))
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		var gen, dlvr uint64
		for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
			gen += res.PerClass[cl].GeneratedPackets
			dlvr += res.PerClass[cl].DeliveredPackets
		}
		if dlvr > gen {
			t.Errorf("%v: delivered %d > generated %d", a, dlvr, gen)
		}
		if dlvr == 0 {
			t.Errorf("%v: nothing delivered", a)
		}
		// Undelivered measured packets must be bounded by what is still
		// queued (pending counts also include warm-up packets, so this
		// is a loose sanity bound, not an exact balance).
		if gen-dlvr > uint64(res.PendingAtHorizon)+uint64(gen/2) {
			t.Errorf("%v: %d packets unaccounted (pending %d)", a, gen-dlvr, res.PendingAtHorizon)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickCfg(arch.Advanced2VC, 0.6)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimEvents != b.SimEvents {
		t.Fatalf("event counts differ: %d vs %d", a.SimEvents, b.SimEvents)
	}
	for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
		x, y := &a.PerClass[cl], &b.PerClass[cl]
		if x.DeliveredPackets != y.DeliveredPackets {
			t.Fatalf("%v: deliveries differ: %d vs %d", cl, x.DeliveredPackets, y.DeliveredPackets)
		}
		if x.PacketLatency.Mean() != y.PacketLatency.Mean() {
			t.Fatalf("%v: latencies differ", cl)
		}
	}
}

func TestSeedsChangeOutcome(t *testing.T) {
	cfg := quickCfg(arch.Advanced2VC, 0.6)
	a, _ := Run(cfg)
	cfg.Seed = 99
	b, _ := Run(cfg)
	if a.SimEvents == b.SimEvents &&
		a.PerClass[packet.Control].PacketLatency.Mean() == b.PerClass[packet.Control].PacketLatency.Mean() {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestControlLatencyEDFBeatsTraditionalAtHighLoad(t *testing.T) {
	// The paper's headline (Figure 2): at high load, EDF-based
	// architectures keep Control latency near the unloaded floor while
	// Traditional 2 VCs degrades severely.
	lat := map[arch.Arch]float64{}
	for _, a := range []arch.Arch{arch.Traditional2VC, arch.Ideal, arch.Advanced2VC} {
		res, err := Run(quickCfg(a, 1.0))
		if err != nil {
			t.Fatal(err)
		}
		lat[a] = res.PerClass[packet.Control].PacketLatency.Mean()
		if res.PerClass[packet.Control].DeliveredPackets == 0 {
			t.Fatalf("%v: no control packets delivered", a)
		}
	}
	t.Logf("control latency: trad=%v ideal=%v advanced=%v",
		units.Time(lat[arch.Traditional2VC]), units.Time(lat[arch.Ideal]), units.Time(lat[arch.Advanced2VC]))
	if lat[arch.Ideal] >= lat[arch.Traditional2VC] {
		t.Errorf("Ideal control latency %v not below Traditional %v",
			units.Time(lat[arch.Ideal]), units.Time(lat[arch.Traditional2VC]))
	}
	if lat[arch.Advanced2VC] >= lat[arch.Traditional2VC] {
		t.Errorf("Advanced control latency %v not below Traditional %v",
			units.Time(lat[arch.Advanced2VC]), units.Time(lat[arch.Traditional2VC]))
	}
}

func TestOrderErrorOrdering(t *testing.T) {
	// Ideal commits zero order errors; Advanced strictly fewer than
	// Simple (§3.4).
	errs := map[arch.Arch]uint64{}
	for _, a := range []arch.Arch{arch.Ideal, arch.Simple2VC, arch.Advanced2VC} {
		cfg := quickCfg(a, 1.0)
		cfg.TrackOrderErrors = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		errs[a] = res.OrderErrors
	}
	t.Logf("order errors: ideal=%d simple=%d advanced=%d",
		errs[arch.Ideal], errs[arch.Simple2VC], errs[arch.Advanced2VC])
	if errs[arch.Ideal] != 0 {
		t.Errorf("Ideal committed %d order errors, want 0", errs[arch.Ideal])
	}
	if errs[arch.Simple2VC] == 0 {
		t.Error("Simple committed no order errors; scenario too weak to compare")
	}
	if errs[arch.Advanced2VC] >= errs[arch.Simple2VC] {
		t.Errorf("Advanced (%d) did not reduce order errors vs Simple (%d)",
			errs[arch.Advanced2VC], errs[arch.Simple2VC])
	}
}

func TestVideoFrameLatencyNearTarget(t *testing.T) {
	// Figure 3: with frame-latency deadlines the average video frame
	// latency sits near the configured 10 ms target for EDF
	// architectures.
	cfg := quickCfg(arch.Advanced2VC, 0.8)
	cfg.Measure = 60 * units.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fl := res.PerClass[packet.Multimedia].FrameLatency
	if fl.Count() < 50 {
		t.Fatalf("only %d frames measured", fl.Count())
	}
	mean := units.Time(fl.Mean())
	if mean < 8*units.Millisecond || mean > 12*units.Millisecond {
		t.Fatalf("video frame latency %v, want ~10ms", mean)
	}
	t.Logf("frame latency mean=%v max=%v over %d frames", mean, units.Time(fl.Max()), fl.Count())
}

func TestBestEffortDifferentiationUnderEDF(t *testing.T) {
	// Figure 4: under EDF architectures the two best-effort classes are
	// differentiated by their deadline weights; under Traditional they
	// receive identical treatment.
	check := func(a arch.Arch) (be, bg float64) {
		cfg := quickCfg(a, 1.0)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerClass[packet.BestEffort].PacketLatency.Mean(),
			res.PerClass[packet.Background].PacketLatency.Mean()
	}
	be, bg := check(arch.Advanced2VC)
	t.Logf("EDF: best-effort lat=%v background lat=%v", units.Time(be), units.Time(bg))
	if bg <= be {
		t.Errorf("EDF did not favour the weighted best-effort class: be=%v bg=%v",
			units.Time(be), units.Time(bg))
	}
	tbe, tbg := check(arch.Traditional2VC)
	t.Logf("Traditional: best-effort lat=%v background lat=%v", units.Time(tbe), units.Time(tbg))
	ratioEDF := bg / be
	ratioTrad := tbg / tbe
	if ratioTrad > ratioEDF {
		t.Errorf("Traditional differentiates more than EDF: %v vs %v", ratioTrad, ratioEDF)
	}
}

func TestZeroLoadRuns(t *testing.T) {
	cfg := quickCfg(arch.Advanced2VC, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gen uint64
	for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
		gen += res.PerClass[cl].GeneratedPackets
	}
	if gen != 0 {
		t.Fatalf("zero load generated %d packets", gen)
	}
}

func TestSingleClassWorkload(t *testing.T) {
	// Only control traffic: other classes silent.
	cfg := quickCfg(arch.Simple2VC, 0.5)
	cfg.ClassShare = [packet.NumClasses]float64{0.5, 0, 0, 0}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerClass[packet.Control].DeliveredPackets == 0 {
		t.Fatal("control class silent")
	}
	for _, cl := range []packet.Class{packet.Multimedia, packet.BestEffort, packet.Background} {
		if res.PerClass[cl].GeneratedPackets != 0 {
			t.Fatalf("%v generated packets with zero share", cl)
		}
	}
}

func TestClockSkewDoesNotBreakService(t *testing.T) {
	// §3.3: the TTD mechanism makes scheduling tolerant of unsynchronised
	// clocks. With substantial skew the network must still deliver
	// control traffic at low latency.
	base := quickCfg(arch.Advanced2VC, 0.8)
	resNoSkew, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	skewed := base
	skewed.ClockSkewMax = 5 * units.Microsecond
	resSkew, err := Run(skewed)
	if err != nil {
		t.Fatal(err)
	}
	l0 := resNoSkew.PerClass[packet.Control].PacketLatency.Mean()
	l1 := resSkew.PerClass[packet.Control].PacketLatency.Mean()
	t.Logf("control latency: skew0=%v skew5us=%v", units.Time(l0), units.Time(l1))
	if l1 > 3*l0+float64(10*units.Microsecond) {
		t.Fatalf("clock skew destroyed service: %v vs %v", units.Time(l1), units.Time(l0))
	}
}

func TestKAryNTreeTopologyRuns(t *testing.T) {
	tree, err := topology.NewKAryNTree(2, 3) // 8 hosts, 4-port switches
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(arch.Advanced2VC, 0.5)
	cfg.Topology = tree
	cfg.ControlDests = 4
	cfg.BEDests = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerClass[packet.Control].DeliveredPackets == 0 {
		t.Fatal("no deliveries on k-ary n-tree")
	}
}

func TestThroughputScalesWithLoad(t *testing.T) {
	var prev float64
	for _, load := range []float64{0.2, 0.5, 0.8} {
		res, err := Run(quickCfg(arch.Advanced2VC, load))
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
			total += res.Throughput(cl)
		}
		if total <= prev {
			t.Fatalf("throughput did not grow with load: %v at %v (prev %v)", total, load, prev)
		}
		prev = total
	}
}

func TestDegradedLinkValidation(t *testing.T) {
	cfg := quickCfg(arch.Advanced2VC, 0.5)
	cfg.DegradedLinks = []DegradedLink{{Switch: 0, Port: 0, Scale: 1.5}}
	if _, err := New(cfg); err == nil {
		t.Error("bad degrade scale accepted")
	}
	cfg.DegradedLinks = []DegradedLink{{Switch: 99, Port: 0, Scale: 0.5}}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-topology degraded link accepted")
	}
	cfg.DegradedLinks = []DegradedLink{{Switch: 0, Port: 0, Scale: -0.5}}
	if _, err := New(cfg); err == nil {
		t.Error("negative degrade scale accepted")
	}
	cfg.DegradedLinks = []DegradedLink{{Switch: 0, Port: 2, Scale: 0.5}, {Switch: 0, Port: 2, Scale: 0.7}}
	if _, err := New(cfg); err == nil {
		t.Error("duplicate degraded link accepted")
	}
	cfg.DegradedLinks = []DegradedLink{{Switch: 0, Port: -1, Scale: 0.5}}
	if _, err := New(cfg); err == nil {
		t.Error("negative port accepted")
	}
}

func TestFaultConfigValidation(t *testing.T) {
	base := quickCfg(arch.Advanced2VC, 0.5)

	cfg := base
	cfg.Faults = &faults.Plan{Events: []faults.Event{
		{At: 0, Link: faults.LinkID{Switch: 99, Port: 0}, Kind: faults.LinkDown},
	}}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-topology fault link accepted")
	}

	cfg = base
	cfg.Faults = &faults.Plan{DefaultBER: 2}
	if _, err := New(cfg); err == nil {
		t.Error("BER >= 1 accepted")
	}

	cfg = base
	cfg.Reliability = hostif.Reliability{Enabled: true, Backoff: 0.5}
	if _, err := New(cfg); err == nil {
		t.Error("shrinking retransmission backoff accepted")
	}

	cfg = base
	cfg.Reliability = hostif.Reliability{Enabled: true, Timeout: -units.Microsecond}
	if _, err := New(cfg); err == nil {
		t.Error("negative retransmission timeout accepted")
	}

	// A valid plan and reliability config must build.
	cfg = base
	cfg.Faults = &faults.Plan{Events: []faults.Event{
		{At: units.Millisecond, Link: faults.LinkID{Switch: 0, Port: 0}, Kind: faults.LinkDown},
		{At: 2 * units.Millisecond, Link: faults.LinkID{Switch: 0, Port: 0}, Kind: faults.LinkUp},
	}}
	cfg.Reliability = hostif.Reliability{Enabled: true}
	if _, err := New(cfg); err != nil {
		t.Errorf("valid fault configuration rejected: %v", err)
	}
}

func TestDegradedLinkPreservesRegulatedService(t *testing.T) {
	// Derate one leaf uplink to 20%: admission steers video reservations
	// around it, so regulated service must survive almost unchanged even
	// though the data plane genuinely slowed that cable down.
	healthy := quickCfg(arch.Advanced2VC, 0.8)
	resH, err := Run(healthy)
	if err != nil {
		t.Fatal(err)
	}
	degraded := healthy
	degraded.DegradedLinks = []DegradedLink{{Switch: 0, Port: 4, Scale: 0.2}}
	resD, err := Run(degraded)
	if err != nil {
		t.Fatal(err)
	}
	lh := resH.PerClass[packet.Control].PacketLatency.Mean()
	ld := resD.PerClass[packet.Control].PacketLatency.Mean()
	t.Logf("control latency healthy=%v degraded=%v", units.Time(lh), units.Time(ld))
	// Control flows are deliberately unreserved (§3.1: "no connection
	// admission"), so those hashed onto the slow cable do pay for it —
	// but the EDF scheduling keeps the class orders of magnitude below
	// the Traditional architecture's congested latencies.
	if ld > float64(units.Millisecond) {
		t.Fatalf("degraded link destroyed control service: %v vs %v",
			units.Time(ld), units.Time(lh))
	}
	fm := resD.PerClass[packet.Multimedia].FrameLatency
	if fm.Count() > 0 {
		mean := units.Time(fm.Mean())
		if mean > 12*units.Millisecond {
			t.Fatalf("video frames missed target on degraded network: %v", mean)
		}
	}
}

func TestNoFlowReordersEndToEnd(t *testing.T) {
	// The whole point of the appendix: whatever the architecture, packets
	// of a single flow must arrive at their destination in sequence
	// order. Verified across the complete network under full load for
	// all four architectures.
	for _, a := range arch.All() {
		cfg := quickCfg(a, 1.0)
		cfg.Measure = 5 * units.Millisecond
		lastSeq := map[packet.FlowID]int64{}
		violations := 0
		cfg.Trace.Delivered = func(p *packet.Packet, _ units.Time) {
			if last, ok := lastSeq[p.Flow]; ok && int64(p.Seq) <= last {
				violations++
			}
			lastSeq[p.Flow] = int64(p.Seq)
		}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		if violations > 0 {
			t.Errorf("%v: %d out-of-order deliveries", a, violations)
		}
		if len(lastSeq) == 0 {
			t.Errorf("%v: trace saw no deliveries", a)
		}
	}
}

func TestTraceSeesAllStages(t *testing.T) {
	cfg := quickCfg(arch.Advanced2VC, 0.3)
	cfg.Measure = 2 * units.Millisecond
	var gen, inj, dlv int
	cfg.Trace.Generated = func(*packet.Packet) { gen++ }
	cfg.Trace.Injected = func(*packet.Packet, units.Time) { inj++ }
	cfg.Trace.Delivered = func(*packet.Packet, units.Time) { dlv++ }
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if gen == 0 || inj == 0 || dlv == 0 {
		t.Fatalf("trace missed stages: gen=%d inj=%d dlv=%d", gen, inj, dlv)
	}
	if inj > gen || dlv > inj {
		t.Fatalf("stage counts inconsistent: gen=%d inj=%d dlv=%d", gen, inj, dlv)
	}
}

func TestHotspotSkewsBestEffortDestinations(t *testing.T) {
	cfg := quickCfg(arch.Advanced2VC, 0.6)
	cfg.Measure = 4 * units.Millisecond
	cfg.HotspotFraction = 0.5
	cfg.HotspotHost = 3
	toHot, total := 0, 0
	cfg.Trace.Generated = func(p *packet.Packet) {
		if !p.Class.Regulated() {
			total++
			if p.Dst == 3 {
				toHot++
			}
		}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no best-effort packets generated")
	}
	frac := float64(toHot) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("hotspot fraction = %.2f, want ~0.5", frac)
	}
}

func TestHotspotValidation(t *testing.T) {
	cfg := quickCfg(arch.Advanced2VC, 0.5)
	cfg.HotspotFraction = 1.0
	if _, err := New(cfg); err == nil {
		t.Error("hotspot fraction 1.0 accepted")
	}
	cfg.HotspotFraction = 0.5
	cfg.HotspotHost = 999
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range hotspot host accepted")
	}
}

func TestHotspotProtectsRegulatedUnderEDF(t *testing.T) {
	// With half of all best-effort bursts converging on host 0, the
	// regulated control class must keep near-baseline latency under the
	// EDF architecture (absolute VC priority).
	base := quickCfg(arch.Advanced2VC, 1.0)
	base.Measure = 6 * units.Millisecond
	resOff, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	hot := base
	hot.HotspotFraction = 0.5
	resOn, err := Run(hot)
	if err != nil {
		t.Fatal(err)
	}
	off := resOff.PerClass[packet.Control].PacketLatency.Mean()
	on := resOn.PerClass[packet.Control].PacketLatency.Mean()
	t.Logf("control latency hotspot off=%v on=%v", units.Time(off), units.Time(on))
	if on > 3*off+float64(10*units.Microsecond) {
		t.Fatalf("hotspot disturbed regulated traffic: %v vs %v", units.Time(on), units.Time(off))
	}
}

func TestVideoTraceDrivenRun(t *testing.T) {
	cfg := quickCfg(arch.Advanced2VC, 0.6)
	cfg.Measure = 30 * units.Millisecond
	cfg.VideoTraceFrames = []units.Size{8 * units.Kilobyte, 90 * units.Kilobyte, 20 * units.Kilobyte}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mm := &res.PerClass[packet.Multimedia]
	if mm.FrameLatency.Count() == 0 {
		t.Fatal("trace-driven video produced no frames")
	}
	mean := units.Time(mm.FrameLatency.Mean())
	if mean < 9*units.Millisecond || mean > 11*units.Millisecond {
		t.Fatalf("trace-driven frame latency = %v, want ~10ms target", mean)
	}
}

func TestTraditional4VCIsolatesControl(t *testing.T) {
	// The 4-VC Traditional switch gives Control its own VC: its latency
	// must improve dramatically over the 2-VC Traditional (where Control
	// shares a FIFO VC with Multimedia), yet video frame latency remains
	// untargeted (no deadline scheduling).
	lat := map[arch.Arch]float64{}
	var frameStd4 float64
	for _, a := range []arch.Arch{arch.Traditional2VC, arch.Traditional4VC, arch.Advanced2VC} {
		cfg := quickCfg(a, 1.0)
		cfg.Measure = 20 * units.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lat[a] = res.PerClass[packet.Control].PacketLatency.Mean()
		if a == arch.Traditional4VC {
			frameStd4 = res.PerClass[packet.Multimedia].FrameLatency.StdDev()
		}
	}
	t.Logf("control latency: 2vc=%v 4vc=%v advanced=%v",
		units.Time(lat[arch.Traditional2VC]), units.Time(lat[arch.Traditional4VC]),
		units.Time(lat[arch.Advanced2VC]))
	if lat[arch.Traditional4VC] >= lat[arch.Traditional2VC]/2 {
		t.Errorf("4-VC Traditional did not improve control: %v vs %v",
			units.Time(lat[arch.Traditional4VC]), units.Time(lat[arch.Traditional2VC]))
	}
	// But per-frame latency targeting needs deadlines: the 4-VC frame
	// latency spread must remain far wider than the EDF architectures'
	// (which pin every frame to the target).
	if frameStd4 < float64(500*units.Microsecond) {
		t.Errorf("4-VC video frame stddev %v suspiciously tight; deadline targeting should be impossible",
			units.Time(frameStd4))
	}
}

func TestTraditional4VCNoReorder(t *testing.T) {
	cfg := quickCfg(arch.Traditional4VC, 1.0)
	cfg.Measure = 4 * units.Millisecond
	lastSeq := map[packet.FlowID]int64{}
	reorders := 0
	cfg.Trace.Delivered = func(p *packet.Packet, _ units.Time) {
		if last, ok := lastSeq[p.Flow]; ok && int64(p.Seq) <= last {
			reorders++
		}
		lastSeq[p.Flow] = int64(p.Seq)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if reorders > 0 {
		t.Fatalf("%d reorders under Traditional 4 VCs", reorders)
	}
}

func TestUnloadedLatencyMatchesAnalyticModel(t *testing.T) {
	// Golden-model anchor: at negligible load every control packet's
	// end-to-end latency must equal the closed-form unloaded prediction
	// exactly (no queueing anywhere to perturb it).
	cfg := quickCfg(arch.Advanced2VC, 0.01)
	cfg.ClassShare = [packet.NumClasses]float64{1, 0, 0, 0} // 1% total, all control
	cfg.WarmUp = 0
	cfg.Measure = 2 * units.Millisecond
	cfg.ControlDests = 2

	type obs struct {
		size units.Size
		hops int
		lat  units.Time
	}
	var seen []obs
	cfg.Trace.Delivered = func(p *packet.Packet, now units.Time) {
		seen = append(seen, obs{p.Size, len(p.Route), now - p.CreatedAt})
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) < 20 {
		t.Fatalf("only %d probes delivered", len(seen))
	}
	exact := 0
	for _, o := range seen {
		want := analytic.UnloadedPacketLatency(o.size, o.hops, cfg.LinkBW, cfg.XbarBW, cfg.PropDelay)
		if o.lat == want {
			exact++
		} else if o.lat < want {
			t.Fatalf("observed latency %v below the physical floor %v (size %v, hops %d)",
				o.lat, want, o.size, o.hops)
		}
	}
	// At 1% load the overwhelming majority of probes see an idle path.
	if frac := float64(exact) / float64(len(seen)); frac < 0.9 {
		t.Fatalf("only %.0f%% of %d probes matched the analytic model exactly", 100*frac, len(seen))
	}
}

func TestResultsLinkCounters(t *testing.T) {
	cfg := quickCfg(arch.Simple2VC, 0.3)
	cfg.Measure = 2 * units.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.XbarTransfers == 0 || res.LinkSends == 0 {
		t.Fatalf("switch counters empty: %+v", res)
	}
	// Every crossbar transfer eventually leaves on a link within the
	// window (small slack for in-flight packets at the horizon).
	if res.LinkSends > res.XbarTransfers {
		t.Fatalf("more link sends (%d) than crossbar transfers (%d)", res.LinkSends, res.XbarTransfers)
	}
	if res.XbarTransfers-res.LinkSends > 2000 {
		t.Fatalf("too many packets stuck between crossbar and links: %d vs %d",
			res.XbarTransfers, res.LinkSends)
	}
}
