package network

import (
	"fmt"

	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/session"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// cacHooks is the fault-plan surface shared by the root Manager and the
// pod Delegates: every CAC endpoint sees every topological event on its
// own shard so its ledger tracks the fabric.
type cacHooks interface {
	OnLinkDerated(sw, port int, scale float64)
	OnSwitchDown(sw int, downAt units.Time)
	OnSwitchUp(sw int)
	OnPortDown(sw, port int, downAt units.Time)
	OnPortUp(sw, port int)
}

// provisionSessions wires the dynamic session subsystem (no-op unless
// cfg.Sessions is set): signalling flows between every client host and the
// manager, the centralised CAC endpoint on the manager's shard, one
// session client per remaining host, and the fault-plan coupling that
// revokes reservations stranded by a link derate.
//
// With scfg.Delegation, each pod (the hosts of one leaf switch) also gets
// a primary and, where the pod is large enough, a standby delegate CAC
// holding a revocable capacity lease over the pod's links: intra-pod
// setups are admitted one hop away, everything else escalates to the
// root, and a fault that kills a CAC host triggers the root's
// deterministic failover (standby promotion or lease reclaim).
//
// The session random stream is split off after provisionFlows consumed
// its splits, so enabling sessions leaves all static traffic streams
// byte-identical.
func (n *Network) provisionSessions(rng *xrand.Rand) error {
	if n.cfg.Sessions == nil {
		return nil
	}
	scfg := n.cfg.Sessions.WithDefaults()
	n.sessCfg = scfg
	hosts := n.topo.Hosts()
	mgr := scfg.Manager

	for _, sh := range n.shards {
		sh.sess = session.NewCounters()
		sh.sess.Mtr = sh.mtr.sessionBundle()
	}

	// Signalling flows, one per direction per client host: Control class
	// with BWavg = link bandwidth — the paper's maximum-priority deadline
	// stamp for in-band management traffic (§3.1). Routes are fixed
	// hash-balanced paths; no reservation (Control is not regulated here,
	// its priority comes from the deadline rule).
	for h := 0; h < hosts; h++ {
		if h == mgr {
			continue
		}
		up := session.SigUp(h)
		n.hosts[h].AddFlow(&hostif.Flow{
			ID: up, Class: packet.Control, Src: h, Dst: mgr,
			Route: n.adm.RouteBestEffort(h, mgr, uint64(up)),
			Mode:  hostif.ByBandwidth, BW: n.cfg.LinkBW,
		})
		n.registerRepairFlow(h, up, h, mgr)
		down := session.SigDown(h)
		n.hosts[mgr].AddFlow(&hostif.Flow{
			ID: down, Class: packet.Control, Src: mgr, Dst: h,
			Route: n.adm.RouteBestEffort(mgr, h, uint64(down)),
			Mode:  hostif.ByBandwidth, BW: n.cfg.LinkBW,
		})
		n.registerRepairFlow(mgr, down, mgr, h)
	}

	// Delegated control plane: plan the pods and build the delegate
	// endpoints before the manager so the root knows its delegates.
	var pods []session.Pod
	var delegates []*session.Delegate
	podOf := make(map[int]int) // host -> index into pods
	horizon := n.cfg.WarmUp + n.cfg.Measure
	if scfg.Delegation {
		pods = session.PodPlan(n.topo, mgr)
		for pi, p := range pods {
			for _, h := range p.Hosts {
				podOf[h] = pi
			}
			for _, role := range []struct {
				cac     int
				standby bool
			}{{p.Primary, false}, {p.Standby, true}} {
				if role.cac < 0 {
					continue
				}
				// Pod signalling flows: one up/down pair between every other
				// pod host and this CAC, all single-hop through the leaf.
				for _, h := range p.Hosts {
					if h == role.cac || h == mgr {
						continue
					}
					up, down := session.SigPodUp(h), session.SigPodDown(h)
					if role.standby {
						up, down = session.SigPodAltUp(h), session.SigPodAltDown(h)
					}
					n.hosts[h].AddFlow(&hostif.Flow{
						ID: up, Class: packet.Control, Src: h, Dst: role.cac,
						Route: n.adm.RouteBestEffort(h, role.cac, uint64(up)),
						Mode:  hostif.ByBandwidth, BW: n.cfg.LinkBW,
					})
					n.registerRepairFlow(h, up, h, role.cac)
					n.hosts[role.cac].AddFlow(&hostif.Flow{
						ID: down, Class: packet.Control, Src: role.cac, Dst: h,
						Route: n.adm.RouteBestEffort(role.cac, h, uint64(down)),
						Mode:  hostif.ByBandwidth, BW: n.cfg.LinkBW,
					})
					n.registerRepairFlow(role.cac, down, role.cac, h)
				}
				sh := n.shards[n.hostShard[role.cac]]
				d, err := session.NewDelegate(session.DelegateConfig{
					Host: n.hosts[role.cac], Eng: sh.eng, Cfg: scfg,
					Cnt: sh.sess, Pod: p, Standby: role.standby,
					Topo: n.topo, LinkBW: n.cfg.LinkBW,
					RouteBE: n.adm.RouteBestEffort,
					WarmUp:  n.cfg.WarmUp, Horizon: horizon,
				})
				if err != nil {
					return fmt.Errorf("network: pod %d delegate: %w", p.Leaf, err)
				}
				delegates = append(delegates, d)
			}
		}
	}
	n.sessDelegates = delegates
	delegateAt := make(map[int]*session.Delegate, len(delegates))
	for _, d := range delegates {
		delegateAt[d.HostID()] = d
	}

	// The root CAC endpoint lives on the manager host's shard; every root
	// admission mutation happens in its event handlers, totally ordered by
	// the manager's single ejection link — identical at any shard count.
	mgrShard := n.shards[n.hostShard[mgr]]
	m := session.NewManager(session.ManagerConfig{
		Host: n.hosts[mgr], Eng: mgrShard.eng, Adm: n.adm, Cfg: scfg,
		Cnt: mgrShard.sess, Hosts: hosts, LinkBW: n.cfg.LinkBW,
		WarmUp: n.cfg.WarmUp, Horizon: horizon,
		Pods: pods, Delegates: delegates,
	})
	n.sessMgr = m
	n.hosts[mgr].SetCtlHandler(m.HandleCtl)
	if scfg.Delegation {
		// Initial capacity leases ride the signalling flows from t=0.
		mgrShard.eng.At(0, m.Bootstrap)
	}

	// One client per non-manager host, each on a private split of the
	// session stream, keyed by host index. In delegated mode a client's
	// first CAC target is its pod primary; hosts that themselves run a
	// delegate share the wire with it through session.Dispatch.
	sessRng := rng.Split(0x5e55)
	for h := 0; h < hosts; h++ {
		if h == mgr {
			continue
		}
		cc := session.ClientConfig{
			Host: n.hosts[h], Eng: n.shards[n.hostShard[h]].eng,
			Rng: sessRng.Split(uint64(h) + 1),
			Cfg: scfg, Hosts: hosts, Cnt: n.shards[n.hostShard[h]].sess,
			RouteBE:    n.adm.RouteBestEffort,
			PodPrimary: -1, PodStandby: -1,
		}
		if pi, ok := podOf[h]; ok && scfg.Delegation {
			p := pods[pi]
			if p.Primary >= 0 && p.Primary != h {
				cc.PodPrimary = p.Primary
			}
			if p.Standby >= 0 && p.Standby != h {
				cc.PodStandby = p.Standby
			}
			for _, peer := range p.Hosts {
				if peer != h {
					cc.PodPeers = append(cc.PodPeers, peer)
				}
			}
		}
		cl := session.NewClient(cc)
		if d := delegateAt[h]; d != nil {
			n.hosts[h].SetCtlHandler(session.Dispatch(cl, d))
		} else {
			n.hosts[h].SetCtlHandler(cl.HandleCtl)
		}
		n.sessClients = append(n.sessClients, cl)
		n.sources = append(n.sources, cl)
	}

	// Fault-plan derates and topological events feed every CAC: RevokeDelay
	// after each capacity change a CAC revokes whatever reservations the
	// link can no longer carry, and after each switch/port failure it
	// repairs (reroute-or-revoke) the sessions the failure strands; the
	// root additionally runs delegate failover. The plan is static, so this
	// schedule — installed on each CAC's own shard before any runtime
	// event — is identical at any shard count. Scale-1 (restore) and up
	// events pass through to the ledgers and revoke nothing.
	if plan := n.cfg.Faults; !plan.Empty() {
		scheds := []struct {
			eng *sim.Engine
			cac cacHooks
		}{{mgrShard.eng, m}}
		for _, d := range delegates {
			scheds = append(scheds, struct {
				eng *sim.Engine
				cac cacHooks
			}{n.shards[n.hostShard[d.HostID()]].eng, d})
		}
		for _, ev := range plan.Normalized() {
			ev := ev
			for _, cs := range scheds {
				cac := cs.cac
				switch ev.Kind {
				case faults.Derate:
					cs.eng.At(ev.At+scfg.RevokeDelay, func() {
						cac.OnLinkDerated(ev.Link.Switch, ev.Link.Port, ev.Scale)
					})
				case faults.SwitchDown:
					cs.eng.At(ev.At+scfg.RevokeDelay, func() {
						cac.OnSwitchDown(ev.Link.Switch, ev.At)
					})
				case faults.SwitchUp:
					cs.eng.At(ev.At+scfg.RevokeDelay, func() {
						cac.OnSwitchUp(ev.Link.Switch)
					})
				case faults.PortDown:
					cs.eng.At(ev.At+scfg.RevokeDelay, func() {
						cac.OnPortDown(ev.Link.Switch, ev.Link.Port, ev.At)
					})
				case faults.PortUp:
					cs.eng.At(ev.At+scfg.RevokeDelay, func() {
						cac.OnPortUp(ev.Link.Switch, ev.Link.Port)
					})
				}
			}
		}
	}
	return nil
}
