package network

import (
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/session"
	"deadlineqos/internal/xrand"
)

// provisionSessions wires the dynamic session subsystem (no-op unless
// cfg.Sessions is set): signalling flows between every client host and the
// manager, the centralised CAC endpoint on the manager's shard, one
// session client per remaining host, and the fault-plan coupling that
// revokes reservations stranded by a link derate.
//
// The session random stream is split off after provisionFlows consumed
// its splits, so enabling sessions leaves all static traffic streams
// byte-identical.
func (n *Network) provisionSessions(rng *xrand.Rand) error {
	if n.cfg.Sessions == nil {
		return nil
	}
	scfg := n.cfg.Sessions.WithDefaults()
	n.sessCfg = scfg
	hosts := n.topo.Hosts()
	mgr := scfg.Manager

	for _, sh := range n.shards {
		sh.sess = session.NewCounters()
	}

	// Signalling flows, one per direction per client host: Control class
	// with BWavg = link bandwidth — the paper's maximum-priority deadline
	// stamp for in-band management traffic (§3.1). Routes are fixed
	// hash-balanced paths; no reservation (Control is not regulated here,
	// its priority comes from the deadline rule).
	for h := 0; h < hosts; h++ {
		if h == mgr {
			continue
		}
		up := session.SigUp(h)
		n.hosts[h].AddFlow(&hostif.Flow{
			ID: up, Class: packet.Control, Src: h, Dst: mgr,
			Route: n.adm.RouteBestEffort(h, mgr, uint64(up)),
			Mode:  hostif.ByBandwidth, BW: n.cfg.LinkBW,
		})
		n.registerRepairFlow(h, up, h, mgr)
		down := session.SigDown(h)
		n.hosts[mgr].AddFlow(&hostif.Flow{
			ID: down, Class: packet.Control, Src: mgr, Dst: h,
			Route: n.adm.RouteBestEffort(mgr, h, uint64(down)),
			Mode:  hostif.ByBandwidth, BW: n.cfg.LinkBW,
		})
		n.registerRepairFlow(mgr, down, mgr, h)
	}

	// The CAC endpoint lives on the manager host's shard; every admission
	// mutation happens in its event handlers, totally ordered by the
	// manager's single ejection link — identical at any shard count.
	mgrShard := n.shards[n.hostShard[mgr]]
	m := session.NewManager(session.ManagerConfig{
		Host: n.hosts[mgr], Eng: mgrShard.eng, Adm: n.adm, Cfg: scfg,
		Cnt: mgrShard.sess, Hosts: hosts, LinkBW: n.cfg.LinkBW,
		WarmUp: n.cfg.WarmUp, Horizon: n.cfg.WarmUp + n.cfg.Measure,
	})
	n.sessMgr = m
	n.hosts[mgr].SetCtlHandler(m.HandleCtl)

	// One client per non-manager host, each on a private split of the
	// session stream, keyed by host index.
	sessRng := rng.Split(0x5e55)
	for h := 0; h < hosts; h++ {
		if h == mgr {
			continue
		}
		sh := n.shards[n.hostShard[h]]
		cl := session.NewClient(session.ClientConfig{
			Host: n.hosts[h], Eng: sh.eng, Rng: sessRng.Split(uint64(h) + 1),
			Cfg: scfg, Hosts: hosts, Cnt: sh.sess,
			RouteBE: n.adm.RouteBestEffort,
		})
		n.hosts[h].SetCtlHandler(cl.HandleCtl)
		n.sources = append(n.sources, cl)
	}

	// Fault-plan derates and topological events feed the CAC: RevokeDelay
	// after each capacity change the manager revokes whatever reservations
	// the link can no longer carry, and after each switch/port failure it
	// repairs (reroute-or-revoke) the sessions the failure strands. The
	// plan is static, so this schedule — installed on the manager's shard
	// before any runtime event — is identical at any shard count. Scale-1
	// (restore) and up events pass through to the ledger and revoke
	// nothing.
	if plan := n.cfg.Faults; !plan.Empty() {
		for _, ev := range plan.Normalized() {
			ev := ev
			switch ev.Kind {
			case faults.Derate:
				mgrShard.eng.At(ev.At+scfg.RevokeDelay, func() {
					m.OnLinkDerated(ev.Link.Switch, ev.Link.Port, ev.Scale)
				})
			case faults.SwitchDown:
				mgrShard.eng.At(ev.At+scfg.RevokeDelay, func() {
					m.OnSwitchDown(ev.Link.Switch, ev.At)
				})
			case faults.SwitchUp:
				mgrShard.eng.At(ev.At+scfg.RevokeDelay, func() {
					m.OnSwitchUp(ev.Link.Switch)
				})
			case faults.PortDown:
				mgrShard.eng.At(ev.At+scfg.RevokeDelay, func() {
					m.OnPortDown(ev.Link.Switch, ev.Link.Port, ev.At)
				})
			case faults.PortUp:
				mgrShard.eng.At(ev.At+scfg.RevokeDelay, func() {
					m.OnPortUp(ev.Link.Switch, ev.Link.Port)
				})
			}
		}
	}
	return nil
}
