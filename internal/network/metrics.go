// The network's metrics-plane wiring (see internal/metrics): one schema
// registered idempotently on the caller's Registry, one instrument Set
// per shard, and component bundles handed to links, buffers, switches,
// hosts, the session counters, and the admission controller at build
// time. Recording is shard-local and lock-free — the same single-writer
// discipline as the stats collector — and the hot-path cost with metrics
// disabled is one nil check per site.
//
// Gauges are sampled (and the shard's snapshot published for the scrape
// server) at every telemetry probe tick and once more when the run
// stops; counters and histograms are live and merely become visible at
// each publish. PerEngine instruments (engine events/pending) depend on
// the shard layout and are excluded from metrics.WriteDeterministic,
// mirroring the telemetry EngineSamples carve-out.

package network

import (
	"deadlineqos/internal/admission"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/link"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/pqueue"
	"deadlineqos/internal/session"
	"deadlineqos/internal/switchsim"
	"deadlineqos/internal/units"
)

// classLabels names the traffic classes in metric labels (ascending
// packet.Class order).
var classLabels = [packet.NumClasses]string{"control", "multimedia", "best_effort", "background"}

// metricsSchema holds the instrument ids of the network's metric schema,
// registered once per Registry (re-registration across soak epochs is
// idempotent).
type metricsSchema struct {
	// Engine (PerEngine: shard-layout-dependent, excluded from the
	// deterministic render).
	engEvents  metrics.CounterID
	engPending metrics.GaugeID

	// Publish-time gauges.
	simTime     metrics.GaugeID // MergeMax across shards
	swQueued    metrics.GaugeID
	hostPending metrics.GaugeID
	admActive   metrics.GaugeID
	sessActive  metrics.GaugeID

	// Link layer.
	linkTxPkts, linkTxBytes, linkDropped, linkCorrupted metrics.CounterID

	// Buffers (every VOQ and output buffer of every switch).
	bufEnq, bufDeq, bufOrderErr, bufTakeOvers metrics.CounterID

	// Switches.
	swXbar, swLinkSends, swDropped metrics.CounterID

	// Hosts.
	hostGen, hostInj, hostDel metrics.CounterID
	hostMissed                [packet.NumClasses]metrics.CounterID
	slack                     [packet.NumClasses]metrics.HistogramID

	// Session control plane.
	sessStarted, sessGranted, sessAccepted, sessRejected metrics.CounterID
	sessReleased, sessRevoked, sessLocal                 metrics.CounterID
	sessEscalated, sessShed                              metrics.CounterID

	// Admission control.
	admReserves, admRejects, admReleases metrics.CounterID

	// Scheduling-policy plane: NIC evictions by value-aware dropping
	// policies (per class, in the frozen label order) and the coflow
	// workload's admission/outcome counters (bumped once, post-run).
	polEvictions    [packet.NumClasses]metrics.CounterID
	polEvictedValue metrics.CounterID
	cofAdmitted     metrics.CounterID
	cofRejected     metrics.CounterID
	cofCompleted    metrics.CounterID
	cofMissed       metrics.CounterID

	// Guarantee-protection plane: ingress-policer demotions (per class)
	// with the forged subset, and the gray-failure detector's actions.
	policeDemoted [packet.NumClasses]metrics.CounterID
	policeForged  metrics.CounterID
	grayDetected  metrics.CounterID
	grayRerouted  metrics.CounterID
	grayRevals    metrics.CounterID
}

// registerSchema registers (or re-resolves) the network schema on reg.
func registerSchema(reg *metrics.Registry) *metricsSchema {
	s := &metricsSchema{
		engEvents:  reg.Counter("qos_engine_events_total", "events executed by this shard's engine", metrics.PerEngine()),
		engPending: reg.Gauge("qos_engine_pending_events", "events pending on this shard's engine at the last publish", metrics.PerEngine()),

		simTime:     reg.Gauge("qos_sim_time_ns", "simulated clock at the last publish", metrics.WithMax()),
		swQueued:    reg.Gauge("qos_switch_queued_packets", "packets buffered in switches at the last publish"),
		hostPending: reg.Gauge("qos_host_pending_packets", "packets staged in host NICs at the last publish"),
		admActive:   reg.Gauge("qos_admission_active_flows", "admitted unreleased reservations at the last publish"),
		sessActive:  reg.Gauge("qos_sessions_active", "sessions the root CAC holds open at the last publish"),

		linkTxPkts:    reg.Counter("qos_link_tx_packets_total", "packets transmitted on links"),
		linkTxBytes:   reg.Counter("qos_link_tx_bytes_total", "bytes transmitted on links"),
		linkDropped:   reg.Counter("qos_link_dropped_total", "packets lost in flight to link-downs"),
		linkCorrupted: reg.Counter("qos_link_corrupted_total", "packets marked by the bit-error process"),

		bufEnq:       reg.Counter("qos_buffer_enqueued_total", "packets pushed into switch buffers"),
		bufDeq:       reg.Counter("qos_buffer_dequeued_total", "packets popped from switch buffers"),
		bufOrderErr:  reg.Counter("qos_buffer_order_errors_total", "dequeues that violated deadline order (oracle on)"),
		bufTakeOvers: reg.Counter("qos_buffer_takeovers_total", "pushes diverted to take-over queues"),

		swXbar:      reg.Counter("qos_switch_xbar_transfers_total", "crossbar transfers started"),
		swLinkSends: reg.Counter("qos_switch_link_sends_total", "packets switches put on downstream links"),
		swDropped:   reg.Counter("qos_switch_dropped_total", "packets discarded by SwitchDown faults"),

		hostGen: reg.Counter("qos_host_generated_total", "packets generated at host NICs"),
		hostInj: reg.Counter("qos_host_injected_total", "packets injected into the network"),
		hostDel: reg.Counter("qos_host_delivered_total", "packets delivered to destination hosts"),

		sessStarted:   reg.Counter("qos_session_started_total", "sessions generated by clients"),
		sessGranted:   reg.Counter("qos_session_granted_total", "sessions admitted (client view)"),
		sessAccepted:  reg.Counter("qos_session_accepted_total", "setups granted by a CAC"),
		sessRejected:  reg.Counter("qos_session_rejected_total", "setups rejected by the root CAC"),
		sessReleased:  reg.Counter("qos_session_released_total", "teardowns that released a reservation"),
		sessRevoked:   reg.Counter("qos_session_revoked_total", "reservations revoked after faults"),
		sessLocal:     reg.Counter("qos_session_local_grants_total", "setups admitted by pod delegates"),
		sessEscalated: reg.Counter("qos_session_escalated_total", "setups delegates forwarded to the root"),
		sessShed:      reg.Counter("qos_session_shed_total", "setups shed by saturated control queues"),

		admReserves: reg.Counter("qos_admission_reserves_total", "run-time reservations granted"),
		admRejects:  reg.Counter("qos_admission_rejects_total", "run-time reservations refused"),
		admReleases: reg.Counter("qos_admission_releases_total", "run-time reservations released"),

		polEvictedValue: reg.Counter("qos_policy_evicted_value_total", "packet value (milli-units) shed by bounded NIC queues"),
		cofAdmitted:     reg.Counter("qos_policy_coflow_admitted_total", "coflows admitted by the sigma-order pass"),
		cofRejected:     reg.Counter("qos_policy_coflow_rejected_total", "coflows rejected to best-effort by the sigma-order pass"),
		cofCompleted:    reg.Counter("qos_policy_coflow_completed_total", "coflows completed at every member before the run stopped"),
		cofMissed:       reg.Counter("qos_policy_coflow_missed_total", "coflows that missed their collective deadline"),

		policeForged: reg.Counter("qos_police_forged_total", "policed packets caught by the deadline-forgery test"),
		grayDetected: reg.Counter("qos_gray_detected_total", "slow-drain links flagged by the gray-failure detector"),
		grayRerouted: reg.Counter("qos_gray_rerouted_flows_total", "static regulated flows proactively rerouted off gray links"),
		grayRevals:   reg.Counter("qos_gray_revalidations_total", "session revalidation sweeps triggered by gray detections"),
	}
	for c := 0; c < packet.NumClasses; c++ {
		label := metrics.WithLabel(`class="` + classLabels[c] + `"`)
		s.hostMissed[c] = reg.Counter("qos_host_missed_total", "deliveries past deadline", label)
		s.slack[c] = reg.Histogram("qos_delivery_slack_ns", "remaining time-to-deadline at delivery (negative = missed)", label)
		s.polEvictions[c] = reg.Counter("qos_policy_evictions_total", "packets shed by bounded NIC queues", label)
		s.policeDemoted[c] = reg.Counter("qos_police_demoted_total", "packets demoted to best effort by the ingress policer", label)
	}
	return s
}

// shardMetrics is one shard's resolved instrument set. All methods are
// nil-safe: a nil receiver yields zero bundles and nil handles, which is
// the metrics-disabled path.
type shardMetrics struct {
	sch *metricsSchema
	set *metrics.Set
}

func (s *metricsSchema) newShardMetrics(reg *metrics.Registry) *shardMetrics {
	if s == nil {
		return nil
	}
	return &shardMetrics{sch: s, set: reg.NewSet()}
}

// engineCounter returns the shard's per-engine event counter.
func (sm *shardMetrics) engineCounter() *metrics.Counter {
	if sm == nil {
		return nil
	}
	return sm.set.Counter(sm.sch.engEvents)
}

func (sm *shardMetrics) linkBundle() link.Metrics {
	if sm == nil {
		return link.Metrics{}
	}
	return link.Metrics{
		TxPackets: sm.set.Counter(sm.sch.linkTxPkts),
		TxBytes:   sm.set.Counter(sm.sch.linkTxBytes),
		Dropped:   sm.set.Counter(sm.sch.linkDropped),
		Corrupted: sm.set.Counter(sm.sch.linkCorrupted),
	}
}

func (sm *shardMetrics) switchBundle() switchsim.Metrics {
	if sm == nil {
		return switchsim.Metrics{}
	}
	return switchsim.Metrics{
		Buf: pqueue.Metrics{
			Enqueued:    sm.set.Counter(sm.sch.bufEnq),
			Dequeued:    sm.set.Counter(sm.sch.bufDeq),
			OrderErrors: sm.set.Counter(sm.sch.bufOrderErr),
			TakeOvers:   sm.set.Counter(sm.sch.bufTakeOvers),
		},
		XbarTransfers: sm.set.Counter(sm.sch.swXbar),
		LinkSends:     sm.set.Counter(sm.sch.swLinkSends),
		Dropped:       sm.set.Counter(sm.sch.swDropped),
	}
}

func (sm *shardMetrics) hostBundle() hostif.Metrics {
	if sm == nil {
		return hostif.Metrics{}
	}
	m := hostif.Metrics{
		Generated: sm.set.Counter(sm.sch.hostGen),
		Injected:  sm.set.Counter(sm.sch.hostInj),
		Delivered: sm.set.Counter(sm.sch.hostDel),
	}
	for c := 0; c < packet.NumClasses; c++ {
		m.Missed[c] = sm.set.Counter(sm.sch.hostMissed[c])
		m.Slack[c] = sm.set.Histogram(sm.sch.slack[c])
	}
	return m
}

// evictionCounters resolves the NIC-eviction counters for a shard's
// Evicted hook (all nil with metrics disabled).
func (sm *shardMetrics) evictionCounters() (perClass [packet.NumClasses]*metrics.Counter, value *metrics.Counter) {
	if sm == nil {
		return perClass, nil
	}
	for c := 0; c < packet.NumClasses; c++ {
		perClass[c] = sm.set.Counter(sm.sch.polEvictions[c])
	}
	return perClass, sm.set.Counter(sm.sch.polEvictedValue)
}

// policeCounters resolves the ingress-policer counters for a shard's
// Policed hook (all nil with metrics disabled).
func (sm *shardMetrics) policeCounters() (perClass [packet.NumClasses]*metrics.Counter, forged *metrics.Counter) {
	if sm == nil {
		return perClass, nil
	}
	for c := 0; c < packet.NumClasses; c++ {
		perClass[c] = sm.set.Counter(sm.sch.policeDemoted[c])
	}
	return perClass, sm.set.Counter(sm.sch.policeForged)
}

// grayCounters resolves the gray-failure detector's counters for the shard
// executing a detection event (all nil with metrics disabled).
func (sm *shardMetrics) grayCounters() (detected, rerouted, revals *metrics.Counter) {
	if sm == nil {
		return nil, nil, nil
	}
	return sm.set.Counter(sm.sch.grayDetected),
		sm.set.Counter(sm.sch.grayRerouted),
		sm.set.Counter(sm.sch.grayRevals)
}

// bumpCoflowMetrics records the coflow workload's final verdicts into
// shard 0's instrument set. Called on the main goroutine after the
// engines stop, before the final publish.
func (n *Network) bumpCoflowMetrics(res *coflow.Results) {
	sm := n.shards[0].mtr
	if sm == nil {
		return
	}
	set := sm.set
	set.Counter(sm.sch.cofAdmitted).Add(uint64(res.Admitted))
	set.Counter(sm.sch.cofRejected).Add(uint64(res.Rejected))
	set.Counter(sm.sch.cofCompleted).Add(uint64(res.Completed))
	set.Counter(sm.sch.cofMissed).Add(uint64(res.Coflows - res.DeadlineMet))
}

func (sm *shardMetrics) sessionBundle() session.Metrics {
	if sm == nil {
		return session.Metrics{}
	}
	return session.Metrics{
		Started:     sm.set.Counter(sm.sch.sessStarted),
		Granted:     sm.set.Counter(sm.sch.sessGranted),
		Accepted:    sm.set.Counter(sm.sch.sessAccepted),
		Rejected:    sm.set.Counter(sm.sch.sessRejected),
		Released:    sm.set.Counter(sm.sch.sessReleased),
		Revoked:     sm.set.Counter(sm.sch.sessRevoked),
		LocalGrants: sm.set.Counter(sm.sch.sessLocal),
		Escalated:   sm.set.Counter(sm.sch.sessEscalated),
		Shed:        sm.set.Counter(sm.sch.sessShed),
	}
}

func (sm *shardMetrics) admissionBundle() admission.Metrics {
	if sm == nil {
		return admission.Metrics{}
	}
	return admission.Metrics{
		Reserves: sm.set.Counter(sm.sch.admReserves),
		Rejects:  sm.set.Counter(sm.sch.admRejects),
		Releases: sm.set.Counter(sm.sch.admReleases),
	}
}

// admShard returns the shard whose events own the admission controller
// (and the session manager) during the run: the manager host's shard when
// sessions run, shard 0 otherwise (without sessions the controller is
// static after provisioning, so any single reader is race-free).
func (n *Network) admShard() int {
	if n.sessMgr != nil {
		return n.hostShard[n.sessCfg.Manager]
	}
	return 0
}

// publishMetrics samples the gauges a shard may legally read (its own
// engine, its own switches and hosts, plus the CAC state on the owning
// shard), then publishes the shard's snapshot for the scrape server.
// Called on the shard's goroutine at probe ticks and on the main
// goroutine once the engines have stopped.
func (n *Network) publishMetrics(shard int, t units.Time) {
	sh := n.shards[shard]
	sm := sh.mtr
	if sm == nil {
		return
	}
	set := sm.set
	set.Gauge(sm.sch.simTime).Set(int64(t))
	set.Gauge(sm.sch.engPending).Set(int64(sh.eng.Pending()))
	var queued int64
	for sw, s := range n.switches {
		if n.swShard[sw] == shard {
			queued += int64(s.Queued())
		}
	}
	set.Gauge(sm.sch.swQueued).Set(queued)
	var pending int64
	for h, host := range n.hosts {
		if n.hostShard[h] == shard {
			pending += int64(host.Pending())
		}
	}
	set.Gauge(sm.sch.hostPending).Set(pending)
	if shard == n.admShard() {
		set.Gauge(sm.sch.admActive).Set(int64(n.adm.ActiveFlows()))
		if n.sessMgr != nil {
			set.Gauge(sm.sch.sessActive).Set(int64(n.sessMgr.ActiveSessions()))
		}
	}
	set.Publish()
}
