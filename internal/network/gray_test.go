package network

import (
	"testing"

	"deadlineqos/internal/faults"
	"deadlineqos/internal/session"
	"deadlineqos/internal/units"
)

// grayConfig builds the gray-failure acceptance scenario: leaf 0's uplink
// to spine 5 slow-drains to 20% for most of the run (a Derate that never
// clears or hardens into a PortDown), on a fabric carrying static traffic
// and dynamic sessions. SmallConfig's folded Clos leaves three alternate
// spines, so the proactive reroute always has a detour.
func grayConfig(detect bool) Config {
	cfg := chaosBase()
	cfg.Sessions = &session.Config{
		InterArrival: 300 * units.Microsecond,
		HoldMean:     1500 * units.Microsecond,
	}
	link := faults.LinkID{Switch: 0, Port: 5}
	cfg.Faults = &faults.Plan{
		Seed: 11,
		Events: []faults.Event{
			{At: 2 * units.Millisecond, Link: link, Kind: faults.Derate, Scale: 0.2},
			{At: 8 * units.Millisecond, Link: link, Kind: faults.Derate, Scale: 1.0},
		},
	}
	if detect {
		cfg.Gray = &GrayConfig{}
	}
	return cfg
}

// TestGrayDetectorReroutesSlowDrain checks the detector end to end: the
// persistent derate must be declared gray exactly once, every static flow
// crossing the drain must move to a detour, and each CAC endpoint must run
// a revalidation sweep — all while conservation stays balanced. The same
// scenario without the detector must not produce a Gray report.
func TestGrayDetectorReroutesSlowDrain(t *testing.T) {
	res, err := Run(grayConfig(true))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Conservation.Check(); err != nil {
		t.Fatalf("conservation: %v\n%v", err, res.Conservation)
	}
	g := res.Gray
	if g == nil {
		t.Fatal("armed detector produced no Gray report")
	}
	if g.Detections != 1 {
		t.Fatalf("detections = %d, want 1 (one episode outlasting persistence): %v", g.Detections, g)
	}
	if g.FlowsRerouted == 0 {
		t.Fatalf("no static flow proactively rerouted off the drain: %v", g)
	}
	if g.Revalidations == 0 {
		t.Fatalf("no CAC revalidation sweep triggered: %v", g)
	}

	off, err := Run(grayConfig(false))
	if err != nil {
		t.Fatalf("Run (detector off): %v", err)
	}
	if off.Gray != nil {
		t.Fatalf("unarmed run produced a Gray report: %v", off.Gray)
	}
}

// TestGrayTransientBelowPersistence checks the dip filter: a derate that
// heals before the persistence bound must not be declared gray, so the
// detector takes no action at all.
func TestGrayTransientBelowPersistence(t *testing.T) {
	cfg := grayConfig(true)
	link := faults.LinkID{Switch: 0, Port: 5}
	cfg.Gray = &GrayConfig{Persistence: 2 * units.Millisecond}
	cfg.Faults = &faults.Plan{
		Seed: 11,
		Events: []faults.Event{
			{At: 2 * units.Millisecond, Link: link, Kind: faults.Derate, Scale: 0.2},
			{At: 3 * units.Millisecond, Link: link, Kind: faults.Derate, Scale: 1.0},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	g := res.Gray
	if g == nil {
		t.Fatal("armed detector produced no Gray report")
	}
	if g.Detections != 0 || g.FlowsRerouted != 0 || g.Revalidations != 0 {
		t.Fatalf("transient dip triggered the detector: %v", g)
	}
}
