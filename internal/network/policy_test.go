package network

import (
	"bytes"
	"reflect"
	"testing"

	"deadlineqos/internal/coflow"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/units"
)

// TestPolicyNameInResults pins the policy identity threading: the run
// reports the resolved policy, with nil resolving to the default.
func TestPolicyNameInResults(t *testing.T) {
	cfg := SmallConfig()
	cfg.Load = 0.1
	cfg.Measure = 2 * units.Millisecond
	cfg.WarmUp = units.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "default" {
		t.Fatalf("nil policy resolved to %q, want default", res.Policy)
	}
	cfg.Policy = policy.ValueDrop(0, false)
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "value-drop" {
		t.Fatalf("policy name %q, want value-drop", res.Policy)
	}
}

// coflowConfig is the scenario the coflow tests share: a lightly loaded
// small network with a ring collective starting at the warm-up boundary.
func coflowConfig() Config {
	cfg := SmallConfig()
	cfg.Load = 0.25
	cfg.WarmUp = units.Millisecond
	cfg.Measure = 20 * units.Millisecond
	cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp}
	return cfg
}

func TestCoflowWorkloadCompletes(t *testing.T) {
	for _, pol := range []policy.Policy{nil, policy.CoflowEDF()} {
		cfg := coflowConfig()
		cfg.Policy = pol
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cr := res.Coflows
		if cr == nil {
			t.Fatal("no coflow results")
		}
		if cr.Coflows != cfg.Topology.Hosts()-1 {
			t.Fatalf("coflows %d, want %d rounds", cr.Coflows, cfg.Topology.Hosts()-1)
		}
		if cr.Admitted+cr.Rejected != cr.Coflows {
			t.Fatalf("admission split %d+%d != %d", cr.Admitted, cr.Rejected, cr.Coflows)
		}
		if cr.Admitted == 0 {
			t.Fatalf("sigma pass admitted nothing on a lightly loaded fabric")
		}
		if !cr.AllDone {
			t.Fatalf("policy %v: collective incomplete: %d of %d rounds", res.Policy, cr.Completed, cr.Coflows)
		}
		if cr.CompletionTime <= 0 {
			t.Fatalf("completion time %v", cr.CompletionTime)
		}
		if cr.AdmittedMet == 0 {
			t.Fatalf("policy %v: no admitted round met its deadline (max lateness %v)", res.Policy, cr.MaxLateness)
		}
		if err := res.Conservation.Check(); err != nil {
			t.Fatalf("policy %v: %v", res.Policy, err)
		}
	}
}

// TestCoflowShardDeterminism pins the coflow driver's shard-safety claim:
// statistics and coflow outcomes are byte-identical at 1, 2 and 4 shards.
func TestCoflowShardDeterminism(t *testing.T) {
	var ref *Results
	var refJSON []byte
	for _, shards := range []int{1, 2, 4} {
		cfg := coflowConfig()
		cfg.Policy = policy.CoflowEDF()
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Snapshot("coflow").WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refJSON = res, buf.Bytes()
			continue
		}
		if !bytes.Equal(refJSON, buf.Bytes()) {
			t.Fatalf("stats diverge between 1 and %d shards", shards)
		}
		if !reflect.DeepEqual(ref.Coflows, res.Coflows) {
			t.Fatalf("coflow results diverge between 1 and %d shards:\n%+v\nvs\n%+v",
				shards, ref.Coflows, res.Coflows)
		}
	}
}

// TestValueDropEvictsUnderHotspot drives a best-effort hotspot into a
// tightly bounded NIC queue and checks the eviction path end to end:
// packets are shed, the books balance, and the shed value is accounted.
func TestValueDropEvictsUnderHotspot(t *testing.T) {
	cfg := SmallConfig()
	cfg.Load = 1.0
	cfg.ClassShare = [packet.NumClasses]float64{0.1, 0.1, 0.6, 0.2}
	cfg.HotspotFraction = 0.7
	cfg.HotspotHost = 0
	cfg.WarmUp = units.Millisecond
	cfg.Measure = 10 * units.Millisecond
	cfg.Policy = policy.ValueDrop(32*units.Kilobyte, false)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var evicted uint64
	for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
		cs := &res.PerClass[cl]
		evicted += cs.EvictedPackets
		if cl < packet.BestEffort && cs.EvictedPackets != 0 {
			t.Fatalf("regulated class %v evicted %d packets", cl, cs.EvictedPackets)
		}
	}
	if evicted == 0 {
		t.Fatal("bounded queue under a hotspot evicted nothing")
	}
	if res.Conservation.EvictedAtNIC == 0 {
		t.Fatal("conservation saw no NIC evictions")
	}
	if err := res.Conservation.Check(); err != nil {
		t.Fatal(err)
	}
	if wg := res.WeightedGoodput(); wg <= 0 || wg >= 1 {
		t.Fatalf("weighted goodput %v out of (0, 1) under eviction", wg)
	}
}

// TestValueDropShardDeterminism pins eviction accounting at 1 and 2
// shards (the eviction decision is purely queue-local, so the bounded
// queue must not break the byte-identity guarantee).
func TestValueDropShardDeterminism(t *testing.T) {
	var refJSON []byte
	var refCons string
	for _, shards := range []int{1, 2} {
		cfg := SmallConfig()
		cfg.Load = 1.0
		cfg.ClassShare = [packet.NumClasses]float64{0.1, 0.1, 0.6, 0.2}
		cfg.HotspotFraction = 0.7
		cfg.HotspotHost = 0
		cfg.WarmUp = units.Millisecond
		cfg.Measure = 5 * units.Millisecond
		cfg.Policy = policy.ValueDrop(32*units.Kilobyte, false)
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Snapshot("value-drop").WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		cons := res.Conservation.String()
		if refJSON == nil {
			refJSON, refCons = buf.Bytes(), cons
			continue
		}
		if !bytes.Equal(refJSON, buf.Bytes()) {
			t.Fatalf("stats diverge between 1 and %d shards", shards)
		}
		if cons != refCons {
			t.Fatalf("conservation diverges between 1 and %d shards:\n%s\nvs\n%s", shards, refCons, cons)
		}
	}
}
