package network

import (
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

func TestSmokeSmallRun(t *testing.T) {
	cfg := SmallConfig()
	cfg.Arch = arch.Advanced2VC
	cfg.Load = 0.5
	cfg.WarmUp = 1 * units.Millisecond
	cfg.Measure = 10 * units.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("events=%d pending=%d videoPerHost=%d", res.SimEvents, res.PendingAtHorizon, res.VideoStreamsPerHost)
	t.Logf("\n%s", res.Summary())
	for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
		cs := &res.PerClass[cl]
		if cs.GeneratedPackets == 0 {
			t.Errorf("%v: no packets generated", cl)
		}
		if cs.DeliveredPackets == 0 {
			t.Errorf("%v: no packets delivered", cl)
		}
	}
}
