// Package network assembles complete simulations: it builds the topology,
// switches, host NICs, links and traffic sources from a Config, runs the
// discrete-event engine through a warm-up and a measurement window, and
// returns the collected per-class metrics.
//
// This is the public entry point of the library: examples, command-line
// tools and the benchmark harness all call network.Run.
package network

import (
	"fmt"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/session"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/traffic"
	"deadlineqos/internal/units"
)

// Config describes one simulation run. The zero value is not runnable; use
// DefaultConfig (the paper's §4.1 parameters) and override what the
// experiment varies.
type Config struct {
	// Topology of the network. DefaultConfig uses the paper's 128-endpoint
	// folded perfect-shuffle MIN built from 16-port switches.
	Topology topology.Topology
	// Arch selects the switch architecture under test.
	Arch arch.Arch

	// LinkBW is the link bandwidth in bytes per cycle (1.0 = 8 Gb/s).
	LinkBW units.Bandwidth
	// PropDelay is the per-link propagation delay.
	PropDelay units.Time
	// BufPerVC is the switch buffer capacity per (port, VC).
	BufPerVC units.Size
	// MTU is the maximum packet wire size, header included.
	MTU units.Size
	// XbarBW is the per-port crossbar bandwidth (0 = link rate).
	XbarBW units.Bandwidth

	// Seed drives every random stream of the run.
	Seed uint64
	// Load is the total offered load per host as a fraction of its link.
	Load float64
	// ClassShare splits Load across the four classes (Table 1: 25% each).
	ClassShare [packet.NumClasses]float64

	// WarmUp and Measure delimit the measurement window.
	WarmUp, Measure units.Time

	// EligibleLead is deadline − eligible time (20 µs in §3.1); zero
	// disables eligible-time shaping.
	EligibleLead units.Time
	// VideoTarget is the desired per-frame latency (10 ms in §3.1).
	VideoTarget units.Time
	// VideoPeriod is the frame cadence (40 ms).
	VideoPeriod units.Time
	// GoP is the MPEG frame-size model.
	GoP traffic.GoP
	// VideoTraceFrames, when non-empty, makes every video stream replay
	// this recorded frame-size trace (see traffic.LoadFrameTrace) instead
	// of sampling the GoP model — the paper transmits actual MPEG-4
	// traces.
	VideoTraceFrames []units.Size

	// ControlDests / BEDests set how many destinations each host spreads
	// its control and best-effort flows over.
	ControlDests, BEDests int

	// BEWeight and BGWeight scale the deadline-bandwidth of the two
	// best-effort classes' aggregated flows: the knob §5 uses to
	// differentiate classes within the best-effort VC (Figure 4).
	BEWeight, BGWeight float64

	// TrackOrderErrors enables the order-error oracle in all buffers.
	TrackOrderErrors bool
	// ClockSkewMax draws each node's clock skew uniformly from
	// [-ClockSkewMax, +ClockSkewMax] (0 = perfectly synchronised).
	ClockSkewMax units.Time

	// DegradedLinks derates individual switch output links: the data
	// plane runs them at Scale x LinkBW and the admission controller
	// routes regulated flows around them. Models failing cables or
	// operator-imposed caps. For faults that appear mid-run (flaps,
	// time-varying derating, bit errors) use Faults instead.
	DegradedLinks []DegradedLink

	// Faults, when non-nil, is the deterministic fault plan injected
	// during the run: timed link flaps, time-varying bandwidth derating,
	// and per-link bit-error rates (see internal/faults). Identical seeds
	// and plans replay identical fault traces. Unlike DegradedLinks,
	// admission control does NOT route around planned faults — they are
	// unplanned from the fabric manager's point of view.
	Faults *faults.Plan

	// RepairDelay models the fabric-management latency between a
	// topological fault event (SwitchDown/SwitchUp/PortDown/PortUp) and
	// the repaired routes reaching the statically provisioned flows' NICs
	// (default 1 µs). Session flows are repaired separately, in-band,
	// through the CAC.
	RepairDelay units.Time

	// Police arms the guarantee-protection plane's ingress policer on
	// every host NIC: each admitted flow is replayed through a dual token
	// bucket (sustained rate = its reserved BWavg, burst tolerance
	// PoliceBurst) and non-conformant packets — rate excess or forged
	// deadlines — are demoted to the best-effort VC before injection.
	// Behavioural fault windows (RogueFlow, DeadlineForge) misbehave
	// identically with or without Police; the flag only toggles
	// enforcement, so policed/unpoliced runs offer the same traffic.
	Police bool
	// PoliceBurst is the per-flow burst tolerance in bytes. Zero defaults
	// to 256 KB: enough headroom for the default MPEG GoP's largest
	// I-frames (120 KB plus worst-case envelope residue), so policing an
	// innocent run demotes nothing. Experiments with denser, smaller-frame
	// workloads set a tighter burst for faster rogue detection.
	PoliceBurst units.Size

	// GuardBytes arms the regulated-VC occupancy guard in every switch
	// output arbiter: a babbling input whose served regulated bytes lead
	// the least-served contending input by more than GuardBytes is
	// withheld from regulated arbitration until the others catch up, so
	// one rogue NIC cannot monopolise an output's regulated VC. Zero
	// disables the guard (the seed behaviour).
	GuardBytes units.Size

	// Gray, when non-nil, arms the gray-failure detector: persistent
	// fault-plan derates below Gray.Threshold are flagged as slow-drain
	// links after Gray.Persistence, and the plane reacts before the SLO
	// trips — static regulated flows re-route around the gray link
	// (RepairPath) and session reservations crossing it revalidate
	// through the CAC. Zero fields take their defaults.
	Gray *GrayConfig

	// Policy selects the scheduling policy plugged into every host NIC
	// and switch arbiter (see internal/policy). Nil selects
	// policy.Default, the paper's EDF-with-take-over discipline — a run
	// with a nil Policy is byte-identical to one predating the policy
	// subsystem. Policies must satisfy the contract in the policy package
	// doc (deterministic, shard-independent, no clocks or randomness).
	Policy policy.Policy

	// Coflows, when non-nil, runs the ring-collective coflow workload
	// (internal/coflow) on top of the configured traffic: a σ-order
	// admission pass splits the rounds into reserved and best-effort
	// traffic, and — under a coflow-aware Policy — admitted rounds carry
	// the round's collective deadline on every packet. Zero fields take
	// their defaults.
	Coflows *coflow.Config

	// Sessions, when non-nil, enables the dynamic session subsystem
	// (internal/session): every host generates Poisson (optionally
	// flash-crowd) session arrivals, negotiates admission with the
	// centralised CAC at Sessions.Manager over in-band Control-class
	// messages, retries or downgrades on reject, and tears down on
	// departure. Fault-plan derates revoke affected reservations at
	// runtime. Zero fields of the pointed-to Config take their defaults.
	Sessions *session.Config

	// Reliability configures the hosts' end-to-end retransmission layer
	// (CRC drop at the receiver, seq-gap NAKs, timeout/backoff
	// retransmission, demotion to best-effort). Enable it whenever
	// Faults can lose or corrupt packets; without it, corrupted and
	// flapped packets are dropped-and-accounted but never recovered.
	Reliability hostif.Reliability

	// CheckInvariants enables the run-time delivery oracle: every unique
	// (flow, seq) must be delivered at most once. Costs one map entry
	// per delivered packet; tests, fuzzing and the chaos tools turn it
	// on. The cheap counter-based conservation balance in
	// Results.Conservation is always collected.
	CheckInvariants bool

	// Trace, when set, receives every packet event in addition to the
	// statistics collector: generation (deadline freshly stamped),
	// injection (first byte on the wire) and delivery (arrival at the
	// destination NIC). Packet pointers are live simulator objects —
	// copy what you keep.
	Trace Trace

	// Tracer, when non-nil, records the full lifecycle of a sampled
	// subset of packets (see internal/trace): NIC queueing, eligible-time
	// holds, per-hop VOQ/output-buffer transits, take-overs, order
	// errors, drops and delivery. Sampling is decided at generation by a
	// deterministic hash, so the same seed and rate trace the same
	// packets. Nil disables tracing entirely; the fast path then costs a
	// single nil check per event site.
	Tracer *trace.Tracer

	// Metrics, when non-nil, turns on the always-on metrics plane (see
	// internal/metrics): every shard records into its own lock-free
	// instrument set and publishes an immutable snapshot at each probe
	// tick for the live scrape server. Instrument values are
	// deterministic at any shard count (PerEngine instruments excepted).
	// Nil disables the plane entirely; the fast path then costs one nil
	// check per site.
	Metrics *metrics.Registry

	// Flight, when non-nil, arms the flight recorder: a fixed-size ring
	// of the most recent packet-lifecycle events, captured by a hidden
	// full-sampling tracer that stores nothing outside the ring and
	// cannot perturb results. The ring freezes shortly after a trip —
	// an invariant-audit failure, a conservation violation, or the
	// MissBurst SLO below — preserving the events leading up to it.
	// Mutually exclusive with Tracer (the user tracer's own sampling
	// would blind the ring; attach a FlightRecorder to the Tracer's
	// Config instead to combine them).
	Flight *trace.FlightRecorder

	// MissBurstCount and MissBurstWindow define the deadline-miss-burst
	// SLO that trips the flight recorder: MissBurstCount missed
	// deliveries on one shard within MissBurstWindow of simulated time.
	// Zero count disables the SLO; zero window with a positive count
	// defaults to 1 ms.
	MissBurstCount  int
	MissBurstWindow units.Time

	// ProbeInterval, when positive, samples every switch port (queue
	// occupancy, credit balance, take-over and order-error rates, link
	// utilization) and the engine's progress on this period into
	// Results.Telemetry. Probes are read-only and do not perturb the
	// simulation. Zero disables probing.
	ProbeInterval units.Time

	// HotspotFraction, when positive, skews the best-effort workload so
	// that roughly this fraction of every host's best-effort bursts heads
	// to HotspotHost — the classic hotspot stress pattern. Regulated
	// traffic is unaffected by construction; the experiment is whether
	// the architecture keeps it unaffected in the network too.
	HotspotFraction float64
	// HotspotHost is the hotspot destination (used when HotspotFraction > 0).
	HotspotHost int

	// Shards splits the simulation across this many engines, run on their
	// own goroutines and synchronised conservatively on the link
	// propagation latency (see internal/parsim). Switches are dealt
	// round-robin across shards and every host lives with its leaf switch.
	// The results — statistics, traces, conservation accounting — are
	// byte-identical at every shard count; only wall-clock time changes.
	// Zero or one runs the classic single-engine simulation.
	Shards int

	// VCArbitrationTable overrides the Traditional architecture's
	// weighted table (nil = 3 regulated slots : 1 best-effort slot).
	// Entry counts define the bandwidth weights, as in the PCI AS and
	// InfiniBand arbitration tables. Deadline-aware architectures ignore
	// it.
	VCArbitrationTable []packet.VC
}

// Trace is a set of optional packet-event callbacks.
type Trace struct {
	Generated func(p *packet.Packet)
	Injected  func(p *packet.Packet, now units.Time)
	Delivered func(p *packet.Packet, now units.Time)
}

// DegradedLink identifies one derated switch output link.
type DegradedLink struct {
	Switch, Port int
	Scale        float64 // (0, 1]: fraction of nominal bandwidth remaining
}

// DefaultConfig returns the paper's evaluation parameters (§4.1, §4.2) on
// the 128-endpoint MIN.
func DefaultConfig() Config {
	return Config{
		Topology:     topology.PaperMIN(),
		Arch:         arch.Advanced2VC,
		LinkBW:       units.GbpsToBandwidth(8),
		PropDelay:    20 * units.Nanosecond,
		BufPerVC:     8 * units.Kilobyte,
		MTU:          2 * units.Kilobyte,
		Seed:         1,
		Load:         1.0,
		ClassShare:   [packet.NumClasses]float64{0.25, 0.25, 0.25, 0.25},
		WarmUp:       5 * units.Millisecond,
		Measure:      50 * units.Millisecond,
		EligibleLead: 20 * units.Microsecond,
		VideoTarget:  10 * units.Millisecond,
		VideoPeriod:  40 * units.Millisecond,
		GoP:          traffic.DefaultGoP(),
		ControlDests: 8,
		BEDests:      8,
		BEWeight:     2.0,
		BGWeight:     0.5,
	}
}

// SmallConfig returns a scaled-down configuration (16 endpoints on a
// single-stage... rather a 2-level folded Clos of 4-port switches) for
// fast unit tests and the Go benchmark harness, keeping all qualitative
// behaviours of the full network.
func SmallConfig() Config {
	cfg := DefaultConfig()
	clos, err := topology.NewFoldedClos(4, 4, 4) // 16 hosts, 8-port switches
	if err != nil {
		panic(err)
	}
	cfg.Topology = clos
	cfg.WarmUp = 2 * units.Millisecond
	cfg.Measure = 20 * units.Millisecond
	cfg.ControlDests = 4
	cfg.BEDests = 4
	return cfg
}

// validate fills defaults and rejects inconsistent configurations.
func (cfg *Config) validate() error {
	if cfg.Topology == nil {
		return fmt.Errorf("network: no topology configured")
	}
	if cfg.Topology.Hosts() < 2 {
		return fmt.Errorf("network: topology needs at least 2 hosts")
	}
	if cfg.LinkBW <= 0 {
		return fmt.Errorf("network: link bandwidth %v must be positive", cfg.LinkBW)
	}
	if cfg.Load < 0 || cfg.Load > 1 {
		return fmt.Errorf("network: load %v out of [0, 1]", cfg.Load)
	}
	var share float64
	for _, s := range cfg.ClassShare {
		if s < 0 {
			return fmt.Errorf("network: negative class share")
		}
		share += s
	}
	if share > 1+1e-9 {
		return fmt.Errorf("network: class shares sum to %v > 1", share)
	}
	if cfg.MTU <= packet.HeaderSize {
		return fmt.Errorf("network: MTU %v not larger than header %v", cfg.MTU, packet.HeaderSize)
	}
	if cfg.BufPerVC < cfg.MTU {
		return fmt.Errorf("network: buffer per VC %v smaller than MTU %v", cfg.BufPerVC, cfg.MTU)
	}
	if cfg.Measure <= 0 {
		return fmt.Errorf("network: measurement window %v must be positive", cfg.Measure)
	}
	if cfg.ControlDests <= 0 || cfg.BEDests <= 0 {
		return fmt.Errorf("network: destination fan-outs must be positive")
	}
	if cfg.ControlDests >= cfg.Topology.Hosts() || cfg.BEDests >= cfg.Topology.Hosts() {
		return fmt.Errorf("network: destination fan-out exceeds host count")
	}
	if cfg.BEWeight <= 0 || cfg.BGWeight <= 0 {
		return fmt.Errorf("network: best-effort weights must be positive")
	}
	if cfg.VideoPeriod <= 0 || cfg.VideoTarget <= 0 {
		return fmt.Errorf("network: video period and target must be positive")
	}
	if cfg.ProbeInterval < 0 {
		return fmt.Errorf("network: probe interval %v is negative", cfg.ProbeInterval)
	}
	if cfg.HotspotFraction < 0 || cfg.HotspotFraction >= 1 {
		return fmt.Errorf("network: hotspot fraction %v out of [0, 1)", cfg.HotspotFraction)
	}
	if cfg.HotspotFraction > 0 && (cfg.HotspotHost < 0 || cfg.HotspotHost >= cfg.Topology.Hosts()) {
		return fmt.Errorf("network: hotspot host %d not in topology", cfg.HotspotHost)
	}
	seen := make(map[[2]int]struct{}, len(cfg.DegradedLinks))
	for _, d := range cfg.DegradedLinks {
		if d.Scale <= 0 || d.Scale > 1 {
			return fmt.Errorf("network: degraded link scale %v out of (0,1]", d.Scale)
		}
		if d.Switch < 0 || d.Switch >= cfg.Topology.Switches() ||
			d.Port < 0 || d.Port >= cfg.Topology.Radix(d.Switch) {
			return fmt.Errorf("network: degraded link (%d,%d) not in topology", d.Switch, d.Port)
		}
		key := [2]int{d.Switch, d.Port}
		if _, dup := seen[key]; dup {
			return fmt.Errorf("network: degraded link (%d,%d) listed twice", d.Switch, d.Port)
		}
		seen[key] = struct{}{}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.Topology.Switches(), cfg.Topology.Hosts(), cfg.Topology.Radix); err != nil {
			return fmt.Errorf("network: %w", err)
		}
	}
	if cfg.PoliceBurst < 0 {
		return fmt.Errorf("network: negative police burst %v", cfg.PoliceBurst)
	}
	if cfg.Police && cfg.PoliceBurst == 0 {
		cfg.PoliceBurst = 256 * units.Kilobyte
	}
	if cfg.GuardBytes < 0 {
		return fmt.Errorf("network: negative guard bytes %v", cfg.GuardBytes)
	}
	if cfg.Gray != nil {
		if err := cfg.Gray.validate(); err != nil {
			return fmt.Errorf("network: %w", err)
		}
	}
	if cfg.RepairDelay < 0 {
		return fmt.Errorf("network: negative repair delay %v", cfg.RepairDelay)
	}
	if cfg.RepairDelay == 0 {
		cfg.RepairDelay = units.Microsecond
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("network: shard count %d is negative", cfg.Shards)
	}
	if cfg.Shards > 1 {
		// Cross-shard effects ride on the link propagation (and, with
		// reliability, the ack) delay; the conservative synchroniser needs
		// at least one cycle of it as lookahead.
		if cfg.PropDelay < 1 {
			return fmt.Errorf("network: Shards > 1 needs a positive PropDelay for lookahead")
		}
		if cfg.Reliability.Enabled && cfg.Reliability.WithDefaults().AckDelay < 1 {
			return fmt.Errorf("network: Shards > 1 needs a positive reliability AckDelay for lookahead")
		}
		if t := cfg.Trace; t.Generated != nil || t.Injected != nil || t.Delivered != nil {
			return fmt.Errorf("network: Trace callbacks are not supported with Shards > 1 (they would run concurrently on shard goroutines)")
		}
	}
	if cfg.Flight != nil && cfg.Tracer != nil {
		return fmt.Errorf("network: Flight and Tracer are mutually exclusive (set trace.Config.Flight on the Tracer instead)")
	}
	if cfg.MissBurstCount < 0 {
		return fmt.Errorf("network: miss-burst count %d is negative", cfg.MissBurstCount)
	}
	if cfg.MissBurstWindow < 0 {
		return fmt.Errorf("network: miss-burst window %v is negative", cfg.MissBurstWindow)
	}
	if cfg.MissBurstCount > 0 && cfg.MissBurstWindow == 0 {
		cfg.MissBurstWindow = units.Millisecond
	}
	if err := cfg.Reliability.Validate(); err != nil {
		return fmt.Errorf("network: %w", err)
	}
	if cfg.Coflows != nil {
		ccfg := cfg.Coflows.WithDefaults(cfg.Topology.Hosts(), cfg.MTU, cfg.LinkBW)
		if err := ccfg.Validate(cfg.Topology.Hosts()); err != nil {
			return fmt.Errorf("network: %w", err)
		}
	}
	if cfg.Sessions != nil {
		scfg := cfg.Sessions.WithDefaults()
		if err := scfg.Validate(cfg.Topology.Hosts()); err != nil {
			return fmt.Errorf("network: %w", err)
		}
		if scfg.SigMsgSize > cfg.MTU-packet.HeaderSize {
			return fmt.Errorf("network: signalling message %v does not fit one MTU %v packet",
				scfg.SigMsgSize, cfg.MTU)
		}
	}
	return nil
}
