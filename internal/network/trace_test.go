package network

import (
	"bytes"
	"testing"

	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// traceRun executes one small traced simulation and returns the tracer and
// results.
func traceRun(t *testing.T) (*trace.Tracer, *Results) {
	t.Helper()
	cfg := SmallConfig()
	cfg.WarmUp = 200 * units.Microsecond
	cfg.Measure = 2 * units.Millisecond
	cfg.TrackOrderErrors = true
	cfg.ProbeInterval = 100 * units.Microsecond
	tr, err := trace.New(trace.Config{SampleRate: 0.05, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = tr
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

// TestTraceDeterministic is the replayability contract of the tracing
// layer: the same configuration, seed and sample rate must produce
// byte-identical JSONL exports across runs.
func TestTraceDeterministic(t *testing.T) {
	var buf1, buf2 bytes.Buffer
	tr1, _ := traceRun(t)
	if err := tr1.WriteJSONL(&buf1); err != nil {
		t.Fatal(err)
	}
	tr2, _ := traceRun(t)
	if err := tr2.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("trace JSONL differs across identical runs: %d vs %d bytes",
			buf1.Len(), buf2.Len())
	}
}

// TestTraceRunArtifacts checks that a traced run populates every
// observability surface: lifecycle events, per-hop slack aggregates,
// telemetry series, and the engine profile.
func TestTraceRunArtifacts(t *testing.T) {
	tr, res := traceRun(t)

	if tr.SampledPackets() == 0 {
		t.Error("no packets were sampled")
	}
	if len(tr.Events()) == 0 {
		t.Error("no trace events recorded")
	}
	if len(tr.HopSlack()) == 0 {
		t.Error("no per-hop dequeue slack recorded")
	}

	if res.Telemetry == nil {
		t.Fatal("ProbeInterval set but Results.Telemetry is nil")
	}
	if len(res.Telemetry.Ports) == 0 || len(res.Telemetry.Engine) == 0 {
		t.Errorf("telemetry series empty: %d port, %d engine samples",
			len(res.Telemetry.Ports), len(res.Telemetry.Engine))
	}

	if res.Perf.Events == 0 || res.Perf.WallNs <= 0 || res.Perf.EventsPerSec <= 0 {
		t.Errorf("engine profile not filled: %+v", res.Perf)
	}
	if res.Perf.MaxPending <= 0 {
		t.Errorf("max pending %d not recorded", res.Perf.MaxPending)
	}
}

// TestTracerDoesNotChangeResults verifies the observability layers are
// read-only: enabling tracing and probing must not change any simulation
// outcome (delivery counts are a sensitive proxy for the full schedule).
func TestTracerDoesNotChangeResults(t *testing.T) {
	base := SmallConfig()
	base.WarmUp = 200 * units.Microsecond
	base.Measure = 2 * units.Millisecond
	base.TrackOrderErrors = true

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	_, traced := traceRun(t) // same config plus tracer and probes

	for cl := range plain.PerClass {
		p, q := &plain.PerClass[cl], &traced.PerClass[cl]
		if p.GeneratedPackets != q.GeneratedPackets || p.DeliveredPackets != q.DeliveredPackets {
			t.Errorf("class %d: plain gen=%d dlvr=%d, traced gen=%d dlvr=%d",
				cl, p.GeneratedPackets, p.DeliveredPackets, q.GeneratedPackets, q.DeliveredPackets)
		}
	}
	if plain.SimEvents == traced.SimEvents {
		// Probe ticks add events, so equal counts mean probes did not run.
		t.Error("traced run fired no extra probe events")
	}
}
