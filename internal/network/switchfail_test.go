package network

import (
	"encoding/json"
	"testing"

	"deadlineqos/internal/faults"
	"deadlineqos/internal/session"
	"deadlineqos/internal/units"
)

// switchFailConfig builds the acceptance scenario for switch failure with
// route repair: a switch outage and a port cut land mid-run on a fabric
// carrying static traffic and dynamic sessions, with the reliability layer
// recovering the losses.
func switchFailConfig(shards int) Config {
	cfg := chaosBase()
	cfg.Shards = shards
	cfg.Sessions = &session.Config{
		InterArrival: 300 * units.Microsecond,
		HoldMean:     1500 * units.Microsecond,
	}
	// SmallConfig's folded Clos has leaves 0..3 and spines 4..7: killing
	// spine 4 leaves three alternate spines for route repair, and the port
	// cut severs leaf 0's uplink to spine 5.
	cfg.Faults = &faults.Plan{
		Seed: 7,
		Events: []faults.Event{
			{At: 2 * units.Millisecond, Link: faults.SwitchID(4), Kind: faults.SwitchDown},
			{At: 4 * units.Millisecond, Link: faults.SwitchID(4), Kind: faults.SwitchUp},
			{At: 5 * units.Millisecond, Link: faults.LinkID{Switch: 0, Port: 5}, Kind: faults.PortDown},
			{At: 7 * units.Millisecond, Link: faults.LinkID{Switch: 0, Port: 5}, Kind: faults.PortUp},
		},
	}
	return cfg
}

// TestSwitchFailureRecovery is the tentpole acceptance check: a
// SwitchDown/SwitchUp scenario must keep the conservation books balanced
// with the dead switch's discarded packets accounted, reroute at least one
// reserved flow through the session manager, repair static routes, and
// report availability.
func TestSwitchFailureRecovery(t *testing.T) {
	res, err := Run(switchFailConfig(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Conservation.Check(); err != nil {
		t.Fatalf("conservation: %v\n%v", err, res.Conservation)
	}
	av := res.Availability
	if av == nil {
		t.Fatal("topological fault plan produced no Availability")
	}
	if av.SwitchDowns != 1 || av.SwitchUps != 1 || av.PortDowns != 1 {
		t.Fatalf("event counts: %+v", av)
	}
	if want := 2 * units.Millisecond; av.Downtime != want {
		t.Fatalf("downtime %v, want %v", av.Downtime, want)
	}
	if res.Conservation.DroppedInSwitch == 0 {
		t.Fatalf("dead switch discarded nothing: %v", res.Conservation)
	}
	if av.FlowsRerouted == 0 {
		t.Fatalf("no static flow rerouted: %v", av)
	}
	if av.SessionsRevoked == 0 || av.SessionsRerouted == 0 {
		t.Fatalf("no reserved session rerouted: %v", av)
	}
	if av.RepairCount == 0 || av.RepairP99 < av.RepairP50 {
		t.Fatalf("repair latency distribution empty or inverted: %v", av)
	}
	if res.Sessions.Granted == 0 || res.Conservation.DeliveredUnique == 0 {
		t.Fatal("scenario carried no session traffic")
	}
}

// TestSwitchFailureShardDeterminism pins byte-identical results for the
// switch-failure scenario at 1, 2 and 4 shards: conservation, fault trace,
// availability, and session results all must match exactly.
func TestSwitchFailureShardDeterminism(t *testing.T) {
	type snap struct {
		Cons    faults.Conservation
		Trace   []faults.TraceEntry
		Avail   *Availability
		Sess    *session.Results
		Dropped uint64
	}
	var base []byte
	for _, shards := range []int{1, 2, 4} {
		res, err := Run(switchFailConfig(shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		b, err := json.Marshal(snap{
			Cons: res.Conservation, Trace: res.FaultTrace,
			Avail: res.Availability, Sess: res.Sessions,
			Dropped: res.Conservation.DroppedInSwitch,
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = b
			continue
		}
		if string(b) != string(base) {
			t.Fatalf("shards=%d diverges:\n%s\nvs sequential:\n%s", shards, b, base)
		}
	}
}

// TestAuditInvariantsAfterFailure runs the failure scenario and then
// audits the structural invariants the soak harness relies on.
func TestAuditInvariantsAfterFailure(t *testing.T) {
	n, err := New(switchFailConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run()
	if err := res.Conservation.Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	if err := n.AuditInvariants(); err != nil {
		t.Fatalf("invariant audit: %v", err)
	}
}
