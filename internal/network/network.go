package network

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"deadlineqos/internal/admission"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/link"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/parsim"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/session"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/stats"
	"deadlineqos/internal/switchsim"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/traffic"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// Results carries everything measured during one run.
type Results struct {
	Config Config
	*stats.Collector

	// Aggregate switch instrumentation.
	OrderErrors   uint64
	TakeOvers     uint64
	XbarTransfers uint64
	LinkSends     uint64

	// SimEvents is the number of engine events executed (cost metric),
	// summed over shard engines in a parallel run. Sharding splits some
	// logically-single events (a cross-shard arrival is one receiver event
	// plus one sender bookkeeping event), so this count is comparable
	// between runs of equal Shards, not across shard counts.
	SimEvents uint64
	// PendingAtHorizon counts packets still queued anywhere when the
	// measurement window closed (a saturation indicator).
	PendingAtHorizon int
	// VideoStreamsPerHost records the provisioned multimedia fan-out.
	VideoStreamsPerHost int

	// Fault injection and end-to-end recovery (all zero in fault-free
	// runs). Unlike the Collector's per-class counters these cover the
	// whole run, warm-up included, so they balance in Conservation.
	//
	// FaultEvents counts executed fault-plan events; FaultTrace is their
	// execution-order record (identical across same-seed runs, sequential
	// or sharded).
	FaultEvents uint64
	FaultTrace  []faults.TraceEntry
	// LostOnLink counts copies lost in flight to link flaps.
	LostOnLink uint64
	// CorruptedInFlight counts copies marked corrupt by link bit errors
	// (every one is eventually dropped by a destination CRC check or lost
	// to a flap first).
	CorruptedInFlight uint64
	// Reliability aggregates the hosts' recovery-layer counters.
	Reliability hostif.RelCounters
	// OutstandingAtStop counts injected-but-unacknowledged packets still
	// tracked by senders when the run stopped.
	OutstandingAtStop int
	// Conservation is the run-level packet accounting; its Check method
	// is the simulator's end-to-end conservation invariant.
	Conservation faults.Conservation

	// Policy names the scheduling policy the run used.
	Policy string
	// Coflows summarises the coflow workload — σ-pass admission split,
	// completions, deadline outcomes (nil unless Config.Coflows was set).
	Coflows *coflow.Results

	// Sessions summarises the dynamic session subsystem (nil unless
	// Config.Sessions was set): CAC accept ratio, in-band setup latency,
	// reserved-vs-achieved utilisation, revocations, downgrades.
	Sessions *session.Results

	// ControlPlane mirrors Sessions.ControlPlane at the top level (nil
	// unless sessions ran): the survivable-CAC summary — delegated
	// admissions, lease traffic, overload shedding, failover recovery.
	ControlPlane *session.ControlPlane

	// Availability summarises switch/port-failure impact and repair (nil
	// unless the fault plan contains topological events): fabric downtime,
	// flows rerouted / restored / partitioned, stranded sessions, and the
	// time-to-repair distribution.
	Availability *Availability

	// Police summarises the ingress policer's run (nil unless
	// Config.Police): demotions per class, the forged subset, and the
	// innocent/rogue multimedia miss split behind the isolation metric.
	Police *PoliceSummary

	// Gray summarises the gray-failure detector (nil unless Config.Gray):
	// slow-drain links flagged, proactive reroutes, and session
	// revalidation sweeps.
	Gray *GrayReport

	// Telemetry holds the periodic per-port and engine probe series (nil
	// unless Config.ProbeInterval was positive).
	Telemetry *trace.Telemetry
	// Perf profiles the engines' execution of this run: event throughput,
	// wall clock per simulated second, and allocation counters.
	Perf trace.Profile
}

// netShard is the per-shard slice of the simulation state: a private
// engine plus private sinks for everything the model records at event
// time. Each shard's goroutine only ever touches its own netShard, so no
// recording path needs a lock; Run merges the shards after the engines
// stop. A sequential run is simply nshards == 1.
type netShard struct {
	eng           *sim.Engine
	collect       *stats.Collector
	tracer        *trace.Tracer
	cons          faults.Conservation
	injector      faults.Injector
	deliveredOnce map[deliveryKey]struct{}
	telemetry     *trace.Telemetry
	sess          *session.Counters // nil unless Config.Sessions is set
	avail         *availShard       // nil unless the fault plan is topological
	gray          *grayShard        // nil unless Config.Gray is armed
	mtr           *shardMetrics     // nil unless Config.Metrics is set
}

// Network is a fully wired simulation. Build one with New, then call Run,
// or use the package-level Run convenience for the whole lifecycle.
type Network struct {
	cfg          Config
	eng          *sim.Engine // shard 0's engine (the sequential API surface)
	topo         topology.Topology
	hosts        []*hostif.Host
	switches     []*switchsim.Switch
	sources      []traffic.Source
	collect      *stats.Collector // shard 0's; all shards merged into it at Run end
	adm          *admission.Controller
	videoPerHost int
	pol          policy.Policy
	coflow       *coflow.Manager // nil unless cfg.Coflows is set

	// Dynamic session subsystem (nil / zero unless cfg.Sessions is set).
	sessMgr       *session.Manager
	sessCfg       session.Config
	sessClients   []*session.Client
	sessDelegates []*session.Delegate

	// Sharded execution state (see internal/parsim). nshards == 1 is the
	// sequential layout: one shard, no mailbox queues.
	nshards   int
	swShard   []int
	hostShard []int
	shards    []*netShard
	queues    [][]*parsim.Queue // queues[from][to]; nil on the diagonal
	lookahead units.Time

	// Fault machinery: every live link (for conservation accounting and
	// BER wiring), switch output links by fault address, host injection
	// links by host, and the plan's per-event execution slots (slot i is
	// normalized event i; disjoint shards write disjoint slots).
	links      []*link.Link
	linkByID   map[faults.LinkID]*link.Link
	hostUp     []*link.Link
	faultSlots []faults.TraceEntry
	faultDone  []bool

	// telemetry holds the merged probe series after Run (ProbeInterval > 0).
	telemetry *trace.Telemetry

	// flightTracer is the hidden full-sampling, non-storing tracer that
	// feeds cfg.Flight when the flight recorder runs without a user
	// tracer (nil otherwise; shard clones live in netShard.tracer).
	flightTracer *trace.Tracer

	// Route-repair coordinator state (see repair.go; zero unless the fault
	// plan contains topological events). grayOn additionally fills the
	// flow registry for the gray-failure detector (gray.go).
	repairOn    bool
	grayOn      bool
	repairFlows []regFlow
	avail       *Availability
}

// deliveryKey identifies a unique packet end-to-end for the delivery
// oracle (retransmit copies share it).
type deliveryKey struct {
	flow packet.FlowID
	seq  uint64
}

// Partition returns the shard assignment for every switch and host of
// topo when split across the given shard count, plus the effective count
// (clamped to [1, switches]). Switches are dealt round-robin; each host
// follows its leaf switch, so a host's injection and ejection links never
// cross a shard boundary — only switch-to-switch links do, and those
// carry the link propagation latency that parsim uses as lookahead.
func Partition(topo topology.Topology, shards int) (swShard, hostShard []int, effective int) {
	effective = shards
	if effective < 1 {
		effective = 1
	}
	if s := topo.Switches(); effective > s {
		effective = s
	}
	swShard = make([]int, topo.Switches())
	for sw := range swShard {
		swShard[sw] = sw % effective
	}
	hostShard = make([]int, topo.Hosts())
	for sw := 0; sw < topo.Switches(); sw++ {
		for p := 0; p < topo.Radix(sw); p++ {
			if peer := topo.Peer(sw, p); peer.ID >= 0 && peer.IsHost {
				hostShard[peer.ID] = swShard[sw]
			}
		}
	}
	return swShard, hostShard, effective
}

// New builds and wires a network from cfg without starting it.
func New(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, topo: cfg.Topology, pol: cfg.Policy}
	if n.pol == nil {
		n.pol = policy.Default()
	}
	n.repairOn = cfg.Faults.HasTopological()
	n.grayOn = cfg.Gray != nil && !cfg.Faults.Empty()
	n.swShard, n.hostShard, n.nshards = Partition(n.topo, cfg.Shards)
	n.lookahead = cfg.PropDelay
	if cfg.Reliability.Enabled {
		if ad := cfg.Reliability.WithDefaults().AckDelay; ad < n.lookahead {
			n.lookahead = ad
		}
	}

	// The tracer every shard clones: the user's, or — when only the
	// flight recorder is wanted — a hidden full-sampling tracer that
	// stores nothing and exists purely to feed the ring. It cannot
	// perturb results: the Sampled header bit is only ever read at trace
	// sites, and discard mode keeps no events.
	rootTracer := cfg.Tracer
	if cfg.Flight != nil {
		ft, err := trace.New(trace.Config{
			SampleRate: 1, Seed: cfg.Seed, DiscardEvents: true, Flight: cfg.Flight,
		})
		if err != nil {
			return nil, err
		}
		n.flightTracer = ft
		rootTracer = ft
	}
	var sch *metricsSchema
	if cfg.Metrics != nil {
		sch = registerSchema(cfg.Metrics)
	}

	n.shards = make([]*netShard, n.nshards)
	for i := range n.shards {
		sh := &netShard{
			eng:     sim.New(),
			collect: stats.NewCollector(n.topo.Hosts(), cfg.LinkBW, cfg.WarmUp, cfg.WarmUp+cfg.Measure),
		}
		if n.nshards == 1 {
			sh.tracer = rootTracer
		} else {
			sh.tracer = rootTracer.Clone()
		}
		if sch != nil {
			sh.mtr = sch.newShardMetrics(cfg.Metrics)
			sh.eng.SetEventCounter(sh.mtr.engineCounter())
		}
		if cfg.CheckInvariants {
			sh.deliveredOnce = make(map[deliveryKey]struct{})
		}
		n.shards[i] = sh
	}
	n.eng = n.shards[0].eng
	n.collect = n.shards[0].collect
	n.queues = make([][]*parsim.Queue, n.nshards)
	for i := range n.queues {
		n.queues[i] = make([]*parsim.Queue, n.nshards)
		for j := range n.queues[i] {
			if i != j {
				n.queues[i][j] = &parsim.Queue{}
			}
		}
	}

	n.linkByID = make(map[faults.LinkID]*link.Link)
	n.hostUp = make([]*link.Link, n.topo.Hosts())

	rng := xrand.New(cfg.Seed)
	skewRng := rng.Split(0xc10c)
	skew := func() units.Time {
		if cfg.ClockSkewMax <= 0 {
			return 0
		}
		return units.Time(skewRng.UniformInt(-int64(cfg.ClockSkewMax), int64(cfg.ClockSkewMax)))
	}

	// Switches, each on its shard's engine. The occupancy guard covers
	// only host-facing inputs: per-input byte fairness is per-host
	// fairness at the edge, while transit uplinks aggregate many hosts'
	// flows and must not be equalised against a single babbler.
	guardIn := func(sw int) []bool {
		if cfg.GuardBytes <= 0 {
			return nil
		}
		mask := make([]bool, n.topo.Radix(sw))
		for p := range mask {
			peer := n.topo.Peer(sw, p)
			mask[p] = peer.ID >= 0 && peer.IsHost
		}
		return mask
	}
	for sw := 0; sw < n.topo.Switches(); sw++ {
		sh := n.shards[n.swShard[sw]]
		n.switches = append(n.switches, switchsim.New(switchsim.Config{
			Eng:              sh.eng,
			Clock:            packet.Clock{Base: sh.eng.Now, Skew: skew()},
			ID:               sw,
			Radix:            n.topo.Radix(sw),
			Arch:             cfg.Arch,
			BufPerVC:         cfg.BufPerVC,
			XbarBW:           cfg.XbarBW,
			TrackOrderErrors: cfg.TrackOrderErrors,
			VCTable:          cfg.VCArbitrationTable,
			Policy:           n.pol,
			GuardBytes:       cfg.GuardBytes,
			GuardInputs:      guardIn(sw),
			Tracer:           sh.tracer,
			OnPktDrop:        n.onSwitchDropFor(sh),
			Metrics:          sh.mtr.switchBundle(),
		}))
	}

	// Hosts, each on its shard's engine, reporting into the shard's
	// collector and conservation counters (hooks run on the host's shard
	// goroutine, so recording needs no locks; the counters cover the whole
	// run, warm-up included, so the accounting balances exactly).
	hooks := make([]hostif.Hooks, n.nshards)
	for i := range hooks {
		hooks[i] = n.hooksFor(n.shards[i])
	}
	var sendAck func(src, dst int, flow packet.FlowID, seq uint64, ok bool)
	if cfg.Reliability.Enabled {
		rel := cfg.Reliability.WithDefaults()
		hostCount := n.topo.Hosts()
		sendAck = func(src, dst int, flow packet.FlowID, seq uint64, ok bool) {
			// Acks travel out-of-band like credits: delayed, never lost.
			// Each (src, dst) report path has its own ordering channel so
			// relayed reports keep the sequential order (see
			// sim.Engine.AtChannel); ack channels set bit 31 to stay
			// disjoint from the link channels wire() assigns.
			from, to := n.hostShard[dst], n.hostShard[src]
			ch := uint32(1)<<31 | uint32(src*hostCount+dst)
			fire := n.shards[from].eng.Now() + rel.AckDelay
			fn := func() { n.hosts[src].HandleAck(flow, seq, ok) }
			if from == to {
				n.shards[from].eng.AtChannel(fire, ch, fn)
			} else {
				n.queues[from][to].Put(fire, ch, fn)
			}
		}
	}
	for h := 0; h < n.topo.Hosts(); h++ {
		sh := n.shards[n.hostShard[h]]
		n.hosts = append(n.hosts, hostif.New(hostif.Config{
			Eng:          sh.eng,
			Clock:        packet.Clock{Base: sh.eng.Now, Skew: skew()},
			ID:           h,
			Arch:         cfg.Arch,
			MTU:          cfg.MTU,
			EligibleLead: cfg.EligibleLead,
			// Per-host id ranges keep packet and frame ids unique without
			// any cross-shard coordination, and identical at every shard
			// count.
			IDs:         hostif.NewIDSource(uint64(h+1) << 40),
			Policy:      n.pol,
			Hooks:       hooks[n.hostShard[h]],
			Reliability: cfg.Reliability,
			SendAck:     sendAck,
			Tracer:      sh.tracer,
			Metrics:     sh.mtr.hostBundle(),
			Police:      cfg.Police,
			PoliceBurst: cfg.PoliceBurst,
		}))
	}

	n.wire()
	n.installFaults()

	adm, err := admission.New(n.topo, cfg.LinkBW, 1.0)
	if err != nil {
		return nil, err
	}
	for _, d := range cfg.DegradedLinks {
		adm.DerateLink(d.Switch, d.Port, d.Scale)
	}
	n.adm = adm
	if err := n.provisionFlows(rng); err != nil {
		return nil, err
	}
	if err := n.provisionSessions(rng); err != nil {
		return nil, err
	}
	if err := n.provisionCoflows(); err != nil {
		return nil, err
	}
	// The admission controller mutates (and is read) only on its owning
	// shard during the run, so its bundle lives in that shard's set. The
	// bundle counts run-time decisions only: pre-run provisioning above
	// happened before it was installed.
	n.adm.SetMetrics(n.shards[n.admShard()].mtr.admissionBundle())
	n.installRepair()
	n.installGray()
	return n, nil
}

// hooksFor builds the instrumentation hooks for hosts living on sh.
func (n *Network) hooksFor(sh *netShard) hostif.Hooks {
	warmUp, horizon := n.cfg.WarmUp, n.cfg.WarmUp+n.cfg.Measure
	// Deadline-miss-burst SLO state: a per-shard ring of the last
	// MissBurstCount miss instants. When the ring wraps inside
	// MissBurstWindow the shard trips its flight recorder (a no-op
	// without one). The ring lives in the Delivered closure, so the
	// detector is lock-free like every other per-shard recording path.
	burstN, burstW := n.cfg.MissBurstCount, n.cfg.MissBurstWindow
	var missT []units.Time
	var nMiss uint64
	if burstN > 0 {
		missT = make([]units.Time, burstN)
	}
	hooks := hostif.Hooks{
		Generated: func(p *packet.Packet) {
			sh.cons.Generated++
			sh.collect.PacketGenerated(p)
		},
		Injected: func(p *packet.Packet, now units.Time) {
			sh.cons.InjectedCopies++
			sh.collect.PacketInjected(p, now)
		},
		Delivered: func(p *packet.Packet, now units.Time) {
			sh.cons.DeliveredUnique++
			if sh.deliveredOnce != nil {
				key := deliveryKey{p.Flow, p.Seq}
				if _, dup := sh.deliveredOnce[key]; dup {
					sh.cons.DoubleDeliveries++
					sh.tracer.Flight().Trip("double-delivery", now)
				}
				sh.deliveredOnce[key] = struct{}{}
			}
			sh.collect.PacketDelivered(p, now)
			if burstN > 0 && now > p.Deadline {
				missT[int(nMiss)%burstN] = now
				nMiss++
				if nMiss >= uint64(burstN) {
					if oldest := missT[int(nMiss)%burstN]; now-oldest <= burstW {
						sh.tracer.Flight().Trip("deadline-miss-burst", now)
					}
				}
			}
			// Session traffic accounting inside the measurement window
			// (sh.sess is set by provisionSessions after the hooks are
			// built; the closure reads it at event time).
			if sc := sh.sess; sc != nil && now >= warmUp && now < horizon {
				switch {
				case session.IsSessionData(p.Flow):
					sc.DataBytes += p.Size
					sc.DataPackets++
				case session.IsSignalling(p.Flow):
					sc.SigBytes += p.Size
					sc.SigPackets++
				}
			}
			// Coflow ring advance (n.coflow is set by provisionCoflows
			// after the hooks are built; the closure reads it at event
			// time). The manager only ever mutates the destination host's
			// state, i.e. this shard's.
			if cm := n.coflow; cm != nil {
				cm.OnDelivered(p, now)
			}
		},
		Corrupted: func(p *packet.Packet, now units.Time) {
			sh.cons.ArrivedCorrupt++
			sh.collect.PacketCorrupted(p, now)
		},
		DupDropped: func(p *packet.Packet, now units.Time) {
			sh.cons.ArrivedDup++
			sh.collect.PacketDupDropped(p, now)
		},
		Retransmitted: func(p *packet.Packet, now units.Time) {
			sh.cons.Retransmissions++
			sh.collect.PacketRetransmitted(p, now)
		},
		Demoted: sh.collect.PacketDemoted,
	}
	// Ingress-policer demotions: conservation (informational term),
	// per-class statistics, and the qos_police_* counters.
	if n.cfg.Police {
		polCnt, polForged := sh.mtr.policeCounters()
		hooks.Policed = func(p *packet.Packet, now units.Time, forged bool) {
			sh.cons.PolicedDemotions++
			sh.collect.PacketPoliced(p, now, forged)
			if c := polCnt[p.Class]; c != nil {
				c.Inc()
				if forged {
					polForged.Inc()
				}
			}
		}
	}
	// NIC evictions by bounded (value-aware) host queues: conservation,
	// per-class statistics, and the policy-plane counters.
	evCnt, evVal := sh.mtr.evictionCounters()
	hooks.Evicted = func(p *packet.Packet, now units.Time) {
		sh.cons.EvictedAtNIC++
		sh.collect.PacketEvicted(p, now)
		if c := evCnt[p.Class]; c != nil {
			c.Inc()
			if p.Value > 0 {
				evVal.Add(uint64(p.Value))
			}
		}
	}
	if t := n.cfg.Trace; t.Generated != nil || t.Injected != nil || t.Delivered != nil {
		// User callbacks are rejected by validate when Shards > 1 (they
		// would run on shard goroutines), so this wrapper only ever wraps
		// the single sequential shard.
		base := hooks
		hooks.Generated = func(p *packet.Packet) {
			base.Generated(p)
			if t.Generated != nil {
				t.Generated(p)
			}
		}
		hooks.Injected = func(p *packet.Packet, now units.Time) {
			base.Injected(p, now)
			if t.Injected != nil {
				t.Injected(p, now)
			}
		}
		hooks.Delivered = func(p *packet.Packet, now units.Time) {
			base.Delivered(p, now)
			if t.Delivered != nil {
				t.Delivered(p, now)
			}
		}
	}
	return hooks
}

// onDropFor builds the in-flight-loss observer for links owned by sh.
func (n *Network) onDropFor(sh *netShard) func(p *packet.Packet) {
	return func(p *packet.Packet) {
		sh.cons.LostOnLink++
		if tr := sh.tracer; tr != nil && p.Sampled {
			// A link drop has no owning node; slack comes from the TTD
			// header stamped when the packet left the sender (the Deadline
			// field is stale while in flight).
			tr.Record(trace.Event{
				T: sh.eng.Now(), Kind: trace.KindLinkDrop, Pkt: p.ID, Flow: p.Flow,
				Class: p.Class, VC: p.VC, Seq: p.Seq, Src: p.Src, Dst: p.Dst,
				Node: -1, Port: -1, Out: -1, Hop: p.Hop,
				Slack: p.TTD, Size: p.Size,
			})
		}
		sh.collect.PacketLost(p)
	}
}

// onSwitchDropFor builds the dead-switch discard observer for switches
// owned by sh (the switch itself traces the drop; this hook keeps the
// conservation books and the per-class loss statistics).
func (n *Network) onSwitchDropFor(sh *netShard) func(p *packet.Packet) {
	return func(p *packet.Packet) {
		sh.cons.DroppedInSwitch++
		sh.collect.PacketLost(p)
	}
}

// creditPortal relays a cross-shard credit return: the downstream element
// calls ReturnCredits on the receiver's shard, and the update lands on the
// sender's engine after the reverse propagation delay, on the link's
// credit channel — the same timing and ordering the intra-shard path has.
type creditPortal struct {
	q    *parsim.Queue // receiver shard -> sender shard
	eng  *sim.Engine   // receiver shard's engine (for Now)
	l    *link.Link
	prop units.Time
	ch   uint32
}

func (cp *creditPortal) ReturnCredits(vc packet.VC, size units.Size) {
	cp.q.Put(cp.eng.Now()+cp.prop, cp.ch, func() { cp.l.ApplyCredits(vc, size) })
}

// linkAction is one directed-link up/down transition a topological fault
// event expands to. Switch output links are addressed by LinkID; host
// injection links (which have no LinkID) by the host index.
type linkAction struct {
	id   faults.LinkID
	host int // >= 0: host's injection link instead of id
	down bool
}

// expandTopological expands a switch or port event into its ordered list
// of directed-link transitions: ports ascending, per port the out-link
// first and the reverse in-link second. Both the live fault installer and
// downTimeline replay exactly this sequence, so the cross-shard loss
// predicate always matches the sender-side link epochs.
func expandTopological(topo topology.Topology, ev faults.Event) []linkAction {
	down := ev.Kind == faults.SwitchDown || ev.Kind == faults.PortDown
	sw := ev.Link.Switch
	lo, hi := ev.Link.Port, ev.Link.Port+1
	if ev.Kind.SwitchScoped() {
		lo, hi = 0, topo.Radix(sw)
	}
	var acts []linkAction
	for p := lo; p < hi; p++ {
		peer := topo.Peer(sw, p)
		if peer.ID < 0 {
			continue
		}
		acts = append(acts, linkAction{id: faults.LinkID{Switch: sw, Port: p}, host: -1, down: down})
		if peer.IsHost {
			acts = append(acts, linkAction{host: peer.ID, down: down})
		} else {
			acts = append(acts, linkAction{id: faults.LinkID{Switch: peer.ID, Port: peer.Port}, host: -1, down: down})
		}
	}
	return acts
}

// downTimeline replays the plan's normalized events through the per-link
// up/down state machine and returns, per link, the times of the applied
// up/down transitions. Transitions strictly alternate starting with a
// down (links are built up), so a prefix count's parity gives the link
// state at any instant, and the down instants are exactly where the live
// link's downEpoch increments. Cross-shard links use it to decide loss
// at send time (the receiver's shard cannot observe the sender-side
// state). Topological events are expanded with expandTopological so
// their member links transition exactly as the live installer applies
// them.
func downTimeline(topo topology.Topology, plan *faults.Plan) map[faults.LinkID][]units.Time {
	if plan.Empty() {
		return nil
	}
	down := make(map[faults.LinkID]bool)
	out := make(map[faults.LinkID][]units.Time)
	apply := func(id faults.LinkID, d bool, at units.Time) {
		if d != down[id] {
			down[id] = d
			out[id] = append(out[id], at)
		}
	}
	for _, ev := range plan.Normalized() {
		switch {
		case ev.Kind == faults.LinkDown:
			apply(ev.Link, true, ev.At)
		case ev.Kind == faults.LinkUp:
			apply(ev.Link, false, ev.At)
		case ev.Kind.Topological():
			for _, a := range expandTopological(topo, ev) {
				if a.host >= 0 {
					continue // host links never cross shards
				}
				apply(a.id, a.down, ev.At)
			}
		}
	}
	return out
}

// lostBetween turns a link's alternating transition timeline into the
// static loss predicate: a packet sent at tS and arriving at tA is lost
// iff the link is down at tS (transmitted into a dead cable) or a down
// transition fires in (tS, tA] (caught in flight by a flap). The bounds
// match the event order on the sender's engine: a transition at exactly
// tS runs before the send (fault events are installed before any runtime
// event and sort first), so it determines the send-time state; a down at
// exactly tA runs before the arrival (channel 0 sorts before the link's
// packet channel) and drops it.
func lostBetween(times []units.Time) func(sent, arrive units.Time) bool {
	if len(times) == 0 {
		return nil
	}
	return func(sent, arrive units.Time) bool {
		i := sort.Search(len(times), func(i int) bool { return times[i] > sent })
		if i%2 == 1 {
			return true // odd prefix: the link is down at the send instant
		}
		// times[i], if present, is the next down transition.
		return i < len(times) && times[i] <= arrive
	}
}

// wire creates every link of the topology: host<->leaf in both directions
// and switch<->switch (each wired once, from the lower (switch, port)).
// Every link is owned by its sender's shard and gets a globally unique
// pair of ordering channels, assigned in this fixed wiring order so the
// assignment is independent of the shard count. A switch-to-switch link
// whose endpoints land on different shards is put in remote mode: arrivals
// and credit returns relay through the parsim mailboxes.
func (n *Network) wire() {
	cfg := n.cfg
	degraded := make(map[[2]int]float64, len(cfg.DegradedLinks))
	for _, d := range cfg.DegradedLinks {
		degraded[[2]int{d.Switch, d.Port}] = d.Scale
	}
	outBW := func(sw, port int) units.Bandwidth {
		if s, ok := degraded[[2]int{sw, port}]; ok {
			return units.Bandwidth(float64(cfg.LinkBW) * s)
		}
		return cfg.LinkBW
	}
	timeline := downTimeline(n.topo, cfg.Faults)
	nextCh := uint32(1)
	channels := func(l *link.Link) {
		l.SetChannels(nextCh, nextCh+1)
		nextCh += 2
	}
	for sw := 0; sw < n.topo.Switches(); sw++ {
		s := n.switches[sw]
		shard := n.swShard[sw]
		sh := n.shards[shard]
		for p := 0; p < n.topo.Radix(sw); p++ {
			peer := n.topo.Peer(sw, p)
			if peer.ID == -1 {
				continue // unwired port
			}
			if peer.IsHost {
				// Host links never cross shards: the host lives on its
				// leaf switch's shard by construction.
				h := n.hosts[peer.ID]
				// Switch -> host (ejection).
				down := link.New(sh.eng, outBW(sw, p), cfg.PropDelay, cfg.BufPerVC, h)
				channels(down)
				down.SetMetrics(sh.mtr.linkBundle())
				down.OnDrop = n.onDropFor(sh)
				s.ConnectDownstream(p, down)
				h.SetUpstream(down)
				n.retainLink(faults.LinkID{Switch: sw, Port: p}, down)
				// Host -> switch (injection).
				up := link.New(sh.eng, cfg.LinkBW, cfg.PropDelay, cfg.BufPerVC, s.InputReceiver(p))
				channels(up)
				up.SetMetrics(sh.mtr.linkBundle())
				up.OnDrop = n.onDropFor(sh)
				h.ConnectOut(up)
				s.ConnectUpstream(p, up)
				n.links = append(n.links, up)
				n.hostUp[peer.ID] = up
				continue
			}
			// Switch-to-switch: create the sw->peer direction from this
			// side; the peer->sw direction is created when iterating the
			// peer. Each direction is thus created exactly once.
			other := n.switches[peer.ID]
			otherShard := n.swShard[peer.ID]
			l := link.New(sh.eng, outBW(sw, p), cfg.PropDelay, cfg.BufPerVC, other.InputReceiver(peer.Port))
			channels(l)
			l.SetMetrics(sh.mtr.linkBundle())
			l.OnDrop = n.onDropFor(sh)
			s.ConnectDownstream(p, l)
			if shard == otherShard {
				other.ConnectUpstream(peer.Port, l)
			} else {
				pktCh, creditCh := l.Channels()
				recv := other.InputReceiver(peer.Port)
				outQ := n.queues[shard][otherShard]
				l.SetRemote(func(at units.Time, p *packet.Packet) {
					outQ.Put(at, pktCh, func() { recv.Receive(p) })
				}, lostBetween(timeline[faults.LinkID{Switch: sw, Port: p}]))
				other.ConnectUpstream(peer.Port, &creditPortal{
					q: n.queues[otherShard][shard], eng: n.shards[otherShard].eng,
					l: l, prop: cfg.PropDelay, ch: creditCh,
				})
			}
			n.retainLink(faults.LinkID{Switch: sw, Port: p}, l)
		}
	}
}

// retainLink records a switch output link under its fault address.
func (n *Network) retainLink(id faults.LinkID, l *link.Link) {
	n.links = append(n.links, l)
	n.linkByID[id] = l
}

// installFaults wires the per-link corruption streams and installs the
// configured fault plan. Every plan event executes on the shard owning its
// link, writing its execution record into the event's global slot, so the
// merged trace reassembles in sequential firing order.
func (n *Network) installFaults() {
	plan := n.cfg.Faults
	if plan.Empty() {
		return
	}
	for id, l := range n.linkByID {
		if ber := plan.BEROf(id); ber > 0 {
			l.SetBER(ber, plan.CorruptionStream(id))
		}
	}
	if plan.DefaultBER > 0 {
		for h, l := range n.hostUp {
			if l != nil {
				l.SetBER(plan.DefaultBER, plan.HostCorruptionStream(h))
			}
		}
	}
	evs := plan.Normalized()
	n.faultSlots = make([]faults.TraceEntry, len(evs))
	n.faultDone = make([]bool, len(evs))
	resolve := func(id faults.LinkID) *link.Link { return n.linkByID[id] }
	record := func(idx int, entry faults.TraceEntry) {
		n.faultSlots[idx] = entry
		n.faultDone[idx] = true
	}
	// Install events one at a time in normalized order so each shard
	// engine's insertion order — which breaks ties at equal times — is the
	// normalized order, matching downTimeline's replay exactly even when a
	// link event and a topological expansion touch the same link in the
	// same cycle.
	for i, ev := range evs {
		if ev.Kind.Behavioural() {
			n.installBehavioural(i, ev, record)
			continue
		}
		if ev.Kind.Topological() {
			n.installTopological(i, ev, record)
			continue
		}
		sh := n.shards[n.swShard[ev.Link.Switch]]
		sh.injector.InstallEvents([]faults.Event{ev}, []int{i}, sh.eng, resolve, record)
	}
	// Behavioural plans also arm the innocent/rogue delivery split: every
	// shard's collector (deliveries land on the destination's shard) gets
	// the read-only set of hosts that misbehave at any point of the run.
	if plan.HasBehavioural() {
		rogues := make(map[int]bool)
		for _, ev := range evs {
			if ev.Kind.Behavioural() {
				rogues[ev.Host] = true
			}
		}
		for _, sh := range n.shards {
			sh.collect.RogueSrcs = rogues
		}
	}
}

// installBehavioural schedules one host-misbehaviour window (RogueFlow or
// DeadlineForge) on the host's shard: the window opens at ev.At — writing
// the event's global trace slot like every other plan kind — and closes at
// ev.Until. Both transitions are host-local state flips, so behavioural
// plans are byte-identical at any shard count.
func (n *Network) installBehavioural(idx int, ev faults.Event, record func(int, faults.TraceEntry)) {
	sh := n.shards[n.hostShard[ev.Host]]
	host := n.hosts[ev.Host]
	sh.eng.At(ev.At, func() {
		switch ev.Kind {
		case faults.RogueFlow:
			host.SetRogue(ev.Scale)
		case faults.DeadlineForge:
			host.SetForge(ev.Scale)
		}
		record(idx, faults.TraceEntry{Event: ev, Applied: true})
	})
	sh.eng.At(ev.Until, func() {
		switch ev.Kind {
		case faults.RogueFlow:
			host.SetRogue(0)
		case faults.DeadlineForge:
			host.SetForge(0)
		}
	})
}

// installTopological schedules one switch or port event: its expanded
// directed-link transitions run on each link's owning shard, and the
// event's home shard (the addressed switch's) additionally applies the
// switch kill/restore and writes the event's global trace slot.
func (n *Network) installTopological(idx int, ev faults.Event, record func(int, faults.TraceEntry)) {
	acts := expandTopological(n.topo, ev)
	byShard := make([][]linkAction, n.nshards)
	for _, a := range acts {
		s := n.swShard[a.id.Switch]
		if a.host >= 0 {
			s = n.hostShard[a.host]
		}
		byShard[s] = append(byShard[s], a)
	}
	home := n.swShard[ev.Link.Switch]
	for s := range n.shards {
		if s != home && len(byShard[s]) == 0 {
			continue
		}
		s, acts := s, byShard[s]
		n.shards[s].eng.At(ev.At, func() {
			applied := false
			if s == home && ev.Kind == faults.SwitchUp {
				// Clear the kill before reopening links, so the senders the
				// link restore re-arbitrates meet a live switch.
				applied = n.switches[ev.Link.Switch].SetDown(false)
			}
			for _, a := range acts {
				was := n.applyLinkAction(a)
				// A port event's trace entry reports the addressed
				// direction (the reverse may independently no-op).
				if s == home && !ev.Kind.SwitchScoped() && a.host < 0 && a.id == ev.Link {
					applied = was
				}
			}
			if s == home {
				if ev.Kind == faults.SwitchDown {
					// Kill after the links dropped: the buffer drain's
					// upstream credit returns land on already-down links,
					// which relay credits out-of-band like live ones.
					applied = n.switches[ev.Link.Switch].SetDown(true)
				}
				record(idx, faults.TraceEntry{Event: ev, Applied: applied})
			}
		})
	}
}

// applyLinkAction applies one expanded link transition, reporting whether
// the link state changed.
func (n *Network) applyLinkAction(a linkAction) bool {
	var l *link.Link
	if a.host >= 0 {
		l = n.hostUp[a.host]
	} else {
		l = n.linkByID[a.id]
	}
	if l == nil {
		return false
	}
	return l.SetDown(a.down)
}

// destinations returns count destinations for host h, spread
// deterministically around the network (never h itself).
func destinations(h, hosts, count int, rng *xrand.Rand) []int {
	dsts := make([]int, 0, count)
	stride := hosts / count
	if stride == 0 {
		stride = 1
	}
	start := rng.Intn(hosts)
	for i := 0; len(dsts) < count && i < hosts; i++ {
		d := (start + i*stride + i) % hosts
		if d == h {
			continue
		}
		dup := false
		for _, e := range dsts {
			if e == d {
				dup = true
				break
			}
		}
		if !dup {
			dsts = append(dsts, d)
		}
	}
	// Fall back to linear fill if the strided walk collided too much.
	for d := 0; len(dsts) < count; d = (d + 1) % hosts {
		if d == h {
			continue
		}
		dup := false
		for _, e := range dsts {
			if e == d {
				dup = true
				break
			}
		}
		if !dup {
			dsts = append(dsts, d)
		}
	}
	return dsts
}

// provisionFlows creates all flow records, reserves regulated bandwidth
// through admission control, and instantiates the traffic sources (each on
// its host's shard engine).
func (n *Network) provisionFlows(rng *xrand.Rand) error {
	cfg := n.cfg
	hosts := n.topo.Hosts()
	var nextFlow packet.FlowID

	classRate := func(cl packet.Class) units.Bandwidth {
		return units.Bandwidth(cfg.Load * cfg.ClassShare[cl] * float64(cfg.LinkBW))
	}

	// Multimedia provisioning: each stream carries the model's mean rate;
	// the stream count fills the class share.
	streamRate := cfg.GoP.MeanRate(cfg.VideoPeriod)
	if len(cfg.VideoTraceFrames) > 0 {
		var sum units.Size
		for _, f := range cfg.VideoTraceFrames {
			sum += f
		}
		streamRate = units.Bandwidth(float64(sum) / float64(len(cfg.VideoTraceFrames)) / float64(cfg.VideoPeriod))
	}
	videoPerHost := 0
	if vr := classRate(packet.Multimedia); vr > 0 {
		videoPerHost = int(float64(vr)/float64(streamRate) + 0.5)
		if videoPerHost == 0 {
			videoPerHost = 1
		}
	}
	n.videoPerHost = videoPerHost

	for h := 0; h < hosts; h++ {
		host := n.hosts[h]
		hostEng := n.shards[n.hostShard[h]].eng
		hostRng := rng.Split(uint64(h) + 1)

		// Control flows: no admission (BWavg = link bandwidth gives them
		// maximum priority), fixed hash-balanced routes.
		if classRate(packet.Control) > 0 {
			var ctl []packet.FlowID
			for _, d := range destinations(h, hosts, cfg.ControlDests, hostRng) {
				nextFlow++
				host.AddFlow(&hostif.Flow{
					ID: nextFlow, Class: packet.Control, Src: h, Dst: d,
					Route: n.adm.RouteBestEffort(h, d, uint64(nextFlow)),
					Mode:  hostif.ByBandwidth, BW: cfg.LinkBW,
				})
				n.registerRepairFlow(h, nextFlow, h, d)
				ctl = append(ctl, nextFlow)
			}
			n.sources = append(n.sources, traffic.NewControl(traffic.ControlConfig{
				Eng: hostEng, Host: host, Rng: hostRng.Split(1), Flows: ctl,
				Rate: classRate(packet.Control), MinMsg: 128, MaxMsg: 2 * units.Kilobyte,
			}))
		}

		// Multimedia streams: reserved through admission control, shaped
		// by eligible time, frame-latency deadlines.
		for v := 0; v < videoPerHost; v++ {
			d := destinations(h, hosts, 1, hostRng)[0]
			route, _, err := n.adm.Reserve(h, d, streamRate)
			if err != nil {
				return fmt.Errorf("network: video stream %d of host %d: %w", v, h, err)
			}
			nextFlow++
			// BW carries the admitted stream rate for the ingress policer
			// (FrameLatency stamping never reads it); Policed opts the flow
			// into rate enforcement and behavioural fault windows.
			host.AddFlow(&hostif.Flow{
				ID: nextFlow, Class: packet.Multimedia, Src: h, Dst: d,
				Route: route, Mode: hostif.FrameLatency, Target: cfg.VideoTarget,
				UseEligible: true, BW: streamRate, Policed: true,
			})
			n.registerRepairFlow(h, nextFlow, h, d)
			if len(cfg.VideoTraceFrames) > 0 {
				n.sources = append(n.sources, traffic.NewVideoTrace(traffic.VideoTraceConfig{
					Eng: hostEng, Host: host, Rng: hostRng.Split(uint64(100 + v)),
					Flow: nextFlow, Period: cfg.VideoPeriod, Frames: cfg.VideoTraceFrames,
				}))
			} else {
				n.sources = append(n.sources, traffic.NewVideo(traffic.VideoConfig{
					Eng: hostEng, Host: host, Rng: hostRng.Split(uint64(100 + v)),
					Flow: nextFlow, Period: cfg.VideoPeriod, GoP: cfg.GoP,
				}))
			}
		}

		// Best-effort and background: aggregated flows per destination
		// with weighted deadline bandwidths (Figure 4's differentiation
		// knob), no reservation.
		for _, cl := range []packet.Class{packet.BestEffort, packet.Background} {
			rate := classRate(cl)
			if rate <= 0 {
				continue
			}
			weight := cfg.BEWeight
			if cl == packet.Background {
				weight = cfg.BGWeight
			}
			dsts := destinations(h, hosts, cfg.BEDests, hostRng)
			if cfg.HotspotFraction > 0 && cfg.HotspotHost != h {
				// Make sure the hotspot destination is among the flows.
				present := false
				for _, d := range dsts {
					if d == cfg.HotspotHost {
						present = true
						break
					}
				}
				if !present {
					dsts[0] = cfg.HotspotHost
				}
			}
			var flows []packet.FlowID
			var hotFlow packet.FlowID
			for _, d := range dsts {
				nextFlow++
				// The class weight doubles as the value density: what a
				// value-aware dropping policy protects and the weighted
				// goodput metric scores (best-effort is worth BEWeight per
				// byte, background BGWeight — the same ratio Figure 4
				// differentiates service by).
				host.AddFlow(&hostif.Flow{
					ID: nextFlow, Class: cl, Src: h, Dst: d,
					Route: n.adm.RouteBestEffort(h, d, uint64(nextFlow)),
					Mode:  hostif.ByBandwidth,
					BW:    units.Bandwidth(weight * float64(rate) / float64(cfg.BEDests)),
					Value: weight,
				})
				n.registerRepairFlow(h, nextFlow, h, d)
				flows = append(flows, nextFlow)
				if d == cfg.HotspotHost {
					hotFlow = nextFlow
				}
			}
			if f := cfg.HotspotFraction; f > 0 && hotFlow != 0 {
				// The source picks bursts uniformly over the flow slice.
				// The hotspot flow already holds 1 of n slots; k extra
				// copies give it weight (1+k)/(n+k) = f, i.e.
				// k = (f*n - 1)/(1 - f).
				k := int((f*float64(len(flows))-1)/(1-f) + 0.5)
				for i := 0; i < k; i++ {
					flows = append(flows, hotFlow)
				}
			}
			n.sources = append(n.sources, traffic.NewSelfSimilar(traffic.SelfSimilarConfig{
				Eng: hostEng, Host: host, Rng: hostRng.Split(uint64(200 + int(cl))),
				Flows: flows, Rate: rate,
				MinFrame: 128, MaxFrame: 100 * units.Kilobyte,
				SizeAlpha: 1.3, BurstAlpha: 1.5,
			}))
		}
	}
	return nil
}

// provisionCoflows builds the coflow manager (running its σ-order
// admission pass against the CAC ledger as provisioned so far), registers
// its per-host flows, and schedules every host's round-0 submission on
// that host's shard. No-op without cfg.Coflows.
func (n *Network) provisionCoflows() error {
	if n.cfg.Coflows == nil {
		return nil
	}
	mgr, err := coflow.New(*n.cfg.Coflows, coflow.Deps{
		Hosts:           n.topo.Hosts(),
		MTU:             n.cfg.MTU,
		LinkBW:          n.cfg.LinkBW,
		Adm:             n.adm,
		Topo:            n.topo,
		Host:            func(h int) coflow.Host { return n.hosts[h] },
		CoflowDeadlines: policy.IsCoflowAware(n.pol),
	})
	if err != nil {
		return fmt.Errorf("network: %w", err)
	}
	n.coflow = mgr
	for h := 0; h < n.topo.Hosts(); h++ {
		for _, f := range mgr.FlowsFor(h) {
			n.hosts[h].AddFlow(f)
		}
		h := h
		n.shards[n.hostShard[h]].eng.At(mgr.StartAt(), func() { mgr.StartHost(h) })
	}
	return nil
}

// Engine exposes the simulation engine (examples drive custom scenarios
// through it). In a sharded network this is shard 0's engine; custom
// drivers that schedule their own events should run sequentially
// (Shards <= 1), where it is the only engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Shards returns the effective shard count the network was built with.
func (n *Network) Shards() int { return n.nshards }

// Hosts returns the number of endpoints.
func (n *Network) Hosts() int { return n.topo.Hosts() }

// ConfigValue returns a copy of the configuration the network was built
// from (custom drivers need the MTU, link bandwidth, and window).
func (n *Network) ConfigValue() Config { return n.cfg }

// Host returns host h's NIC.
func (n *Network) Host(h int) *hostif.Host { return n.hosts[h] }

// Admission returns the admission controller.
func (n *Network) Admission() *admission.Controller { return n.adm }

// Collector returns the live statistics collector (shard 0's in a sharded
// network; the full merge happens when Run returns).
func (n *Network) Collector() *stats.Collector { return n.collect }

// Run starts all traffic sources, executes the simulation through warm-up
// plus measurement — across shard engines when Shards > 1 — and returns
// the merged results, identical at every shard count.
func (n *Network) Run() *Results {
	for _, src := range n.sources {
		src.Start()
	}
	n.startProbes()
	horizon := n.cfg.WarmUp + n.cfg.Measure

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	wall0 := time.Now()
	if n.nshards == 1 {
		n.eng.Run(horizon)
	} else {
		lps := make([]*parsim.LP, n.nshards)
		for i, sh := range n.shards {
			var in []*parsim.Queue
			for j := range n.shards {
				if q := n.queues[j][i]; q != nil {
					in = append(in, q)
				}
			}
			lps[i] = &parsim.LP{Eng: sh.eng, In: in}
		}
		parsim.Run(lps, horizon, n.lookahead)
	}
	wall := time.Since(wall0)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	// Coflow outcomes fold before the final publish so the end-of-run
	// metrics snapshot carries them. The engines have stopped; the main
	// goroutine may read every shard's slots.
	var cofRes *coflow.Results
	if n.coflow != nil {
		cofRes = n.coflow.BuildResults()
		n.bumpCoflowMetrics(cofRes)
	}

	// Final gauge sample + snapshot publish for every shard, so a scrape
	// after Run (and the end-of-run render) sees the horizon state. The
	// engines have stopped; the main goroutine may read any shard.
	for i := range n.shards {
		n.publishMetrics(i, horizon)
	}

	// Merge the shards: every recorded quantity is either summed with an
	// order-independent integer merge or reassembled in a canonical order,
	// so the merged results are byte-identical to a sequential run's.
	for _, sh := range n.shards[1:] {
		n.collect.Merge(sh.collect)
	}
	if n.nshards > 1 {
		if tr := n.cfg.Tracer; tr != nil {
			for _, sh := range n.shards {
				tr.Absorb(sh.tracer)
			}
			tr.SortEvents()
		} else if ft := n.flightTracer; ft != nil {
			// Hidden flight tracer: fold the shard rings into cfg.Flight
			// (earliest trip wins; no event lists exist in discard mode).
			for _, sh := range n.shards {
				ft.Absorb(sh.tracer)
			}
		}
		if n.shards[0].telemetry != nil {
			merged := n.shards[0].telemetry
			for _, sh := range n.shards[1:] {
				merged.Absorb(sh.telemetry)
			}
			merged.Sort()
			n.telemetry = merged
		}
	} else {
		n.telemetry = n.shards[0].telemetry
	}

	res := &Results{
		Config:              n.cfg,
		Collector:           n.collect,
		VideoStreamsPerHost: n.videoPerHost,
		Policy:              n.pol.Name(),
		Coflows:             cofRes,
		Telemetry:           n.telemetry,
		Perf: trace.Profile{
			SimulatedNs: int64(horizon),
			WallNs:      wall.Nanoseconds(),
			Mallocs:     ms1.Mallocs - ms0.Mallocs,
			AllocBytes:  ms1.TotalAlloc - ms0.TotalAlloc,
		},
	}
	for _, sh := range n.shards {
		res.SimEvents += sh.eng.Fired()
		res.Perf.Events += sh.eng.Fired()
		res.Perf.MaxPending += sh.eng.MaxPending()
	}
	res.Perf.Finalize()
	for _, sw := range n.switches {
		st := sw.Stats()
		res.OrderErrors += st.OrderErrors
		res.TakeOvers += st.TakeOvers
		res.XbarTransfers += st.XbarTransfers
		res.LinkSends += st.LinkSends
		res.PendingAtHorizon += sw.Queued()
	}
	for _, h := range n.hosts {
		res.PendingAtHorizon += h.Pending()
	}

	// Close the conservation books: everything not yet in a terminal state
	// is either staged at a NIC or inside the fabric (switch buffers,
	// crossbars mid-transfer, link wires).
	cons := n.Conservation()
	for _, h := range n.hosts {
		cons.StagedAtStop += uint64(h.Pending())
		res.Reliability.Add(h.RelCounters())
		res.OutstandingAtStop += h.Outstanding()
	}
	for _, sw := range n.switches {
		cons.InNetworkAtStop += uint64(sw.Queued() + sw.InTransit())
	}
	for _, l := range n.links {
		cons.InNetworkAtStop += l.InFlight()
		res.CorruptedInFlight += l.Corrupted()
	}
	if n.sessMgr != nil {
		sessCnt := n.shards[0].sess
		for _, sh := range n.shards[1:] {
			sessCnt.Merge(sh.sess)
		}
		res.Sessions = n.sessMgr.BuildResults(sessCnt)
		res.ControlPlane = res.Sessions.ControlPlane
	}
	res.LostOnLink = cons.LostOnLink
	res.Conservation = cons
	for _, done := range n.faultDone {
		if done {
			res.FaultEvents++
		}
	}
	res.FaultTrace = n.FaultTrace()
	n.buildAvailability(res)
	if n.cfg.Police {
		ps := &PoliceSummary{}
		for cl := range res.PerClass {
			ps.ByClass[cl] = res.PerClass[cl].PolicedPackets
			ps.Demoted += res.PerClass[cl].PolicedPackets
			ps.Forged += res.PerClass[cl].PolicedForged
		}
		ps.InnocentDelivered = res.InnocentDelivered
		ps.InnocentMissed = res.InnocentMissed
		ps.RogueDelivered = res.RogueDelivered
		ps.RogueMissed = res.RogueMissed
		res.Police = ps
	}
	n.buildGrayReport(res)
	return res
}

// PoliceSummary is the run-level digest of the ingress policer.
type PoliceSummary struct {
	// Demoted counts packets the policer sent to the best-effort VC;
	// Forged is the subset caught by the deadline-forgery test (the rest
	// exceeded their sustained rate). ByClass splits Demoted by class.
	Demoted uint64
	Forged  uint64
	ByClass [packet.NumClasses]uint64
	// The innocent/rogue multimedia delivery split (zero unless the fault
	// plan had behavioural events): the isolation metric compares
	// InnocentMissed/InnocentDelivered to a no-rogue baseline.
	InnocentDelivered uint64
	InnocentMissed    uint64
	RogueDelivered    uint64
	RogueMissed       uint64
}

func (ps *PoliceSummary) String() string {
	return fmt.Sprintf("demoted=%d (forged=%d) innocent frames missed=%d/%d rogue frames missed=%d/%d",
		ps.Demoted, ps.Forged, ps.InnocentMissed, ps.InnocentDelivered,
		ps.RogueMissed, ps.RogueDelivered)
}

// FaultTrace returns the fault events executed so far, in the sequential
// firing order (live view; Run's Results carry the final copy).
func (n *Network) FaultTrace() []faults.TraceEntry {
	var out []faults.TraceEntry
	for i, done := range n.faultDone {
		if done {
			out = append(out, n.faultSlots[i])
		}
	}
	return out
}

// Conservation returns the current conservation counters, summed over
// shards, without the end-of-run staged/in-network census (those are only
// meaningful at stop).
func (n *Network) Conservation() faults.Conservation {
	var cons faults.Conservation
	for _, sh := range n.shards {
		cons.Add(sh.cons)
	}
	return cons
}

// Run builds and executes one simulation.
func Run(cfg Config) (*Results, error) {
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return n.Run(), nil
}
