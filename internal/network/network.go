package network

import (
	"fmt"
	"runtime"
	"time"

	"deadlineqos/internal/admission"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/link"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/stats"
	"deadlineqos/internal/switchsim"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/traffic"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// Results carries everything measured during one run.
type Results struct {
	Config Config
	*stats.Collector

	// Aggregate switch instrumentation.
	OrderErrors   uint64
	TakeOvers     uint64
	XbarTransfers uint64
	LinkSends     uint64

	// SimEvents is the number of engine events executed (cost metric).
	SimEvents uint64
	// PendingAtHorizon counts packets still queued anywhere when the
	// measurement window closed (a saturation indicator).
	PendingAtHorizon int
	// VideoStreamsPerHost records the provisioned multimedia fan-out.
	VideoStreamsPerHost int

	// Fault injection and end-to-end recovery (all zero in fault-free
	// runs). Unlike the Collector's per-class counters these cover the
	// whole run, warm-up included, so they balance in Conservation.
	//
	// FaultEvents counts executed fault-plan events; FaultTrace is their
	// execution-order record (identical across same-seed runs).
	FaultEvents uint64
	FaultTrace  []faults.TraceEntry
	// LostOnLink counts copies lost in flight to link flaps.
	LostOnLink uint64
	// CorruptedInFlight counts copies marked corrupt by link bit errors
	// (every one is eventually dropped by a destination CRC check or lost
	// to a flap first).
	CorruptedInFlight uint64
	// Reliability aggregates the hosts' recovery-layer counters.
	Reliability hostif.RelCounters
	// OutstandingAtStop counts injected-but-unacknowledged packets still
	// tracked by senders when the run stopped.
	OutstandingAtStop int
	// Conservation is the run-level packet accounting; its Check method
	// is the simulator's end-to-end conservation invariant.
	Conservation faults.Conservation

	// Telemetry holds the periodic per-port and engine probe series (nil
	// unless Config.ProbeInterval was positive).
	Telemetry *trace.Telemetry
	// Perf profiles the engine's execution of this run: event throughput,
	// wall clock per simulated second, and allocation counters.
	Perf trace.Profile
}

// Network is a fully wired simulation. Build one with New, then call Run,
// or use the package-level Run convenience for the whole lifecycle.
type Network struct {
	cfg          Config
	eng          *sim.Engine
	topo         topology.Topology
	hosts        []*hostif.Host
	switches     []*switchsim.Switch
	sources      []traffic.Source
	collect      *stats.Collector
	adm          *admission.Controller
	videoPerHost int

	// Fault machinery: every live link (for conservation accounting and
	// BER wiring), switch output links by fault address, host injection
	// links by host, the plan injector, the run-level conservation
	// counters, and the optional delivery oracle.
	links         []*link.Link
	linkByID      map[faults.LinkID]*link.Link
	hostUp        []*link.Link
	injector      faults.Injector
	cons          faults.Conservation
	deliveredOnce map[deliveryKey]struct{}

	// telemetry collects the periodic probe series when ProbeInterval > 0.
	telemetry *trace.Telemetry
}

// deliveryKey identifies a unique packet end-to-end for the delivery
// oracle (retransmit copies share it).
type deliveryKey struct {
	flow packet.FlowID
	seq  uint64
}

// New builds and wires a network from cfg without starting it.
func New(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, eng: sim.New(), topo: cfg.Topology}
	n.collect = stats.NewCollector(n.topo.Hosts(), cfg.LinkBW, cfg.WarmUp, cfg.WarmUp+cfg.Measure)
	n.linkByID = make(map[faults.LinkID]*link.Link)
	n.hostUp = make([]*link.Link, n.topo.Hosts())
	if cfg.CheckInvariants {
		n.deliveredOnce = make(map[deliveryKey]struct{})
	}

	rng := xrand.New(cfg.Seed)
	skewRng := rng.Split(0xc10c)
	skew := func() units.Time {
		if cfg.ClockSkewMax <= 0 {
			return 0
		}
		return units.Time(skewRng.UniformInt(-int64(cfg.ClockSkewMax), int64(cfg.ClockSkewMax)))
	}

	// Switches.
	for sw := 0; sw < n.topo.Switches(); sw++ {
		n.switches = append(n.switches, switchsim.New(switchsim.Config{
			Eng:              n.eng,
			Clock:            packet.Clock{Base: n.eng.Now, Skew: skew()},
			ID:               sw,
			Radix:            n.topo.Radix(sw),
			Arch:             cfg.Arch,
			BufPerVC:         cfg.BufPerVC,
			XbarBW:           cfg.XbarBW,
			TrackOrderErrors: cfg.TrackOrderErrors,
			VCTable:          cfg.VCArbitrationTable,
			Tracer:           cfg.Tracer,
		}))
	}

	// Hosts, reporting into the collector and the run-level conservation
	// counters (the latter cover the whole run, warm-up included, so the
	// accounting balances exactly).
	ids := &hostif.IDSource{}
	hooks := hostif.Hooks{
		Generated: func(p *packet.Packet) {
			n.cons.Generated++
			n.collect.PacketGenerated(p)
		},
		Injected: func(p *packet.Packet, now units.Time) {
			n.cons.InjectedCopies++
			n.collect.PacketInjected(p, now)
		},
		Delivered: func(p *packet.Packet, now units.Time) {
			n.cons.DeliveredUnique++
			if n.deliveredOnce != nil {
				key := deliveryKey{p.Flow, p.Seq}
				if _, dup := n.deliveredOnce[key]; dup {
					n.cons.DoubleDeliveries++
				}
				n.deliveredOnce[key] = struct{}{}
			}
			n.collect.PacketDelivered(p, now)
		},
		Corrupted: func(p *packet.Packet, now units.Time) {
			n.cons.ArrivedCorrupt++
			n.collect.PacketCorrupted(p, now)
		},
		DupDropped: func(p *packet.Packet, now units.Time) {
			n.cons.ArrivedDup++
			n.collect.PacketDupDropped(p, now)
		},
		Retransmitted: func(p *packet.Packet, now units.Time) {
			n.cons.Retransmissions++
			n.collect.PacketRetransmitted(p, now)
		},
		Demoted: n.collect.PacketDemoted,
	}
	if t := cfg.Trace; t.Generated != nil || t.Injected != nil || t.Delivered != nil {
		base := hooks
		hooks.Generated = func(p *packet.Packet) {
			base.Generated(p)
			if t.Generated != nil {
				t.Generated(p)
			}
		}
		hooks.Injected = func(p *packet.Packet, now units.Time) {
			base.Injected(p, now)
			if t.Injected != nil {
				t.Injected(p, now)
			}
		}
		hooks.Delivered = func(p *packet.Packet, now units.Time) {
			base.Delivered(p, now)
			if t.Delivered != nil {
				t.Delivered(p, now)
			}
		}
	}
	var sendAck func(src int, flow packet.FlowID, seq uint64, ok bool)
	if cfg.Reliability.Enabled {
		rel := cfg.Reliability.WithDefaults()
		sendAck = func(src int, flow packet.FlowID, seq uint64, ok bool) {
			// Acks travel out-of-band like credits: delayed, never lost.
			n.eng.After(rel.AckDelay, func() { n.hosts[src].HandleAck(flow, seq, ok) })
		}
	}
	for h := 0; h < n.topo.Hosts(); h++ {
		n.hosts = append(n.hosts, hostif.New(hostif.Config{
			Eng:          n.eng,
			Clock:        packet.Clock{Base: n.eng.Now, Skew: skew()},
			ID:           h,
			Arch:         cfg.Arch,
			MTU:          cfg.MTU,
			EligibleLead: cfg.EligibleLead,
			IDs:          ids,
			Hooks:        hooks,
			Reliability:  cfg.Reliability,
			SendAck:      sendAck,
			Tracer:       cfg.Tracer,
		}))
	}

	n.wire()
	n.installFaults()

	adm, err := admission.New(n.topo, cfg.LinkBW, 1.0)
	if err != nil {
		return nil, err
	}
	for _, d := range cfg.DegradedLinks {
		adm.DerateLink(d.Switch, d.Port, d.Scale)
	}
	n.adm = adm
	if err := n.provisionFlows(rng); err != nil {
		return nil, err
	}
	return n, nil
}

// wire creates every link of the topology: host<->leaf in both directions
// and switch<->switch (each wired once, from the lower (switch, port)).
func (n *Network) wire() {
	cfg := n.cfg
	degraded := make(map[[2]int]float64, len(cfg.DegradedLinks))
	for _, d := range cfg.DegradedLinks {
		degraded[[2]int{d.Switch, d.Port}] = d.Scale
	}
	outBW := func(sw, port int) units.Bandwidth {
		if s, ok := degraded[[2]int{sw, port}]; ok {
			return units.Bandwidth(float64(cfg.LinkBW) * s)
		}
		return cfg.LinkBW
	}
	for sw := 0; sw < n.topo.Switches(); sw++ {
		s := n.switches[sw]
		for p := 0; p < n.topo.Radix(sw); p++ {
			peer := n.topo.Peer(sw, p)
			if peer.ID == -1 {
				continue // unwired port
			}
			if peer.IsHost {
				h := n.hosts[peer.ID]
				// Switch -> host (ejection).
				down := link.New(n.eng, outBW(sw, p), cfg.PropDelay, cfg.BufPerVC, h)
				s.ConnectDownstream(p, down)
				h.SetUpstream(down)
				n.retainLink(faults.LinkID{Switch: sw, Port: p}, down)
				// Host -> switch (injection).
				up := link.New(n.eng, cfg.LinkBW, cfg.PropDelay, cfg.BufPerVC, s.InputReceiver(p))
				h.ConnectOut(up)
				s.ConnectUpstream(p, up)
				n.links = append(n.links, up)
				n.hostUp[peer.ID] = up
				continue
			}
			// Switch-to-switch: create the sw->peer direction from this
			// side; the peer->sw direction is created when iterating the
			// peer. Each direction is thus created exactly once.
			other := n.switches[peer.ID]
			l := link.New(n.eng, outBW(sw, p), cfg.PropDelay, cfg.BufPerVC, other.InputReceiver(peer.Port))
			s.ConnectDownstream(p, l)
			other.ConnectUpstream(peer.Port, l)
			n.retainLink(faults.LinkID{Switch: sw, Port: p}, l)
		}
	}
}

// retainLink records a switch output link under its fault address.
func (n *Network) retainLink(id faults.LinkID, l *link.Link) {
	n.links = append(n.links, l)
	n.linkByID[id] = l
}

// installFaults arms the loss accounting on every link and installs the
// configured fault plan: per-link corruption streams and the timed event
// schedule.
func (n *Network) installFaults() {
	onDrop := func(p *packet.Packet) {
		n.cons.LostOnLink++
		if tr := n.cfg.Tracer; tr != nil && p.Sampled {
			// A link drop has no owning node; slack comes from the TTD
			// header stamped when the packet left the sender (the Deadline
			// field is stale while in flight).
			tr.Record(trace.Event{
				T: n.eng.Now(), Kind: trace.KindLinkDrop, Pkt: p.ID, Flow: p.Flow,
				Class: p.Class, VC: p.VC, Seq: p.Seq, Src: p.Src, Dst: p.Dst,
				Node: -1, Port: -1, Out: -1, Hop: p.Hop,
				Slack: p.TTD, Size: p.Size,
			})
		}
		n.collect.PacketLost(p)
	}
	for _, l := range n.links {
		l.OnDrop = onDrop
	}
	plan := n.cfg.Faults
	if plan.Empty() {
		return
	}
	for id, l := range n.linkByID {
		if ber := plan.BEROf(id); ber > 0 {
			l.SetBER(ber, plan.CorruptionStream(id))
		}
	}
	if plan.DefaultBER > 0 {
		for h, l := range n.hostUp {
			if l != nil {
				l.SetBER(plan.DefaultBER, plan.HostCorruptionStream(h))
			}
		}
	}
	n.injector.Install(plan, n.eng, func(id faults.LinkID) *link.Link { return n.linkByID[id] }, nil)
}

// destinations returns count destinations for host h, spread
// deterministically around the network (never h itself).
func destinations(h, hosts, count int, rng *xrand.Rand) []int {
	dsts := make([]int, 0, count)
	stride := hosts / count
	if stride == 0 {
		stride = 1
	}
	start := rng.Intn(hosts)
	for i := 0; len(dsts) < count && i < hosts; i++ {
		d := (start + i*stride + i) % hosts
		if d == h {
			continue
		}
		dup := false
		for _, e := range dsts {
			if e == d {
				dup = true
				break
			}
		}
		if !dup {
			dsts = append(dsts, d)
		}
	}
	// Fall back to linear fill if the strided walk collided too much.
	for d := 0; len(dsts) < count; d = (d + 1) % hosts {
		if d == h {
			continue
		}
		dup := false
		for _, e := range dsts {
			if e == d {
				dup = true
				break
			}
		}
		if !dup {
			dsts = append(dsts, d)
		}
	}
	return dsts
}

// provisionFlows creates all flow records, reserves regulated bandwidth
// through admission control, and instantiates the traffic sources.
func (n *Network) provisionFlows(rng *xrand.Rand) error {
	cfg := n.cfg
	hosts := n.topo.Hosts()
	var nextFlow packet.FlowID

	classRate := func(cl packet.Class) units.Bandwidth {
		return units.Bandwidth(cfg.Load * cfg.ClassShare[cl] * float64(cfg.LinkBW))
	}

	// Multimedia provisioning: each stream carries the model's mean rate;
	// the stream count fills the class share.
	streamRate := cfg.GoP.MeanRate(cfg.VideoPeriod)
	if len(cfg.VideoTraceFrames) > 0 {
		var sum units.Size
		for _, f := range cfg.VideoTraceFrames {
			sum += f
		}
		streamRate = units.Bandwidth(float64(sum) / float64(len(cfg.VideoTraceFrames)) / float64(cfg.VideoPeriod))
	}
	videoPerHost := 0
	if vr := classRate(packet.Multimedia); vr > 0 {
		videoPerHost = int(float64(vr)/float64(streamRate) + 0.5)
		if videoPerHost == 0 {
			videoPerHost = 1
		}
	}
	n.videoPerHost = videoPerHost

	for h := 0; h < hosts; h++ {
		host := n.hosts[h]
		hostRng := rng.Split(uint64(h) + 1)

		// Control flows: no admission (BWavg = link bandwidth gives them
		// maximum priority), fixed hash-balanced routes.
		if classRate(packet.Control) > 0 {
			var ctl []packet.FlowID
			for _, d := range destinations(h, hosts, cfg.ControlDests, hostRng) {
				nextFlow++
				host.AddFlow(&hostif.Flow{
					ID: nextFlow, Class: packet.Control, Src: h, Dst: d,
					Route: n.adm.RouteBestEffort(h, d, uint64(nextFlow)),
					Mode:  hostif.ByBandwidth, BW: cfg.LinkBW,
				})
				ctl = append(ctl, nextFlow)
			}
			n.sources = append(n.sources, traffic.NewControl(traffic.ControlConfig{
				Eng: n.eng, Host: host, Rng: hostRng.Split(1), Flows: ctl,
				Rate: classRate(packet.Control), MinMsg: 128, MaxMsg: 2 * units.Kilobyte,
			}))
		}

		// Multimedia streams: reserved through admission control, shaped
		// by eligible time, frame-latency deadlines.
		for v := 0; v < videoPerHost; v++ {
			d := destinations(h, hosts, 1, hostRng)[0]
			route, _, err := n.adm.Reserve(h, d, streamRate)
			if err != nil {
				return fmt.Errorf("network: video stream %d of host %d: %w", v, h, err)
			}
			nextFlow++
			host.AddFlow(&hostif.Flow{
				ID: nextFlow, Class: packet.Multimedia, Src: h, Dst: d,
				Route: route, Mode: hostif.FrameLatency, Target: cfg.VideoTarget,
				UseEligible: true,
			})
			if len(cfg.VideoTraceFrames) > 0 {
				n.sources = append(n.sources, traffic.NewVideoTrace(traffic.VideoTraceConfig{
					Eng: n.eng, Host: host, Rng: hostRng.Split(uint64(100 + v)),
					Flow: nextFlow, Period: cfg.VideoPeriod, Frames: cfg.VideoTraceFrames,
				}))
			} else {
				n.sources = append(n.sources, traffic.NewVideo(traffic.VideoConfig{
					Eng: n.eng, Host: host, Rng: hostRng.Split(uint64(100 + v)),
					Flow: nextFlow, Period: cfg.VideoPeriod, GoP: cfg.GoP,
				}))
			}
		}

		// Best-effort and background: aggregated flows per destination
		// with weighted deadline bandwidths (Figure 4's differentiation
		// knob), no reservation.
		for _, cl := range []packet.Class{packet.BestEffort, packet.Background} {
			rate := classRate(cl)
			if rate <= 0 {
				continue
			}
			weight := cfg.BEWeight
			if cl == packet.Background {
				weight = cfg.BGWeight
			}
			dsts := destinations(h, hosts, cfg.BEDests, hostRng)
			if cfg.HotspotFraction > 0 && cfg.HotspotHost != h {
				// Make sure the hotspot destination is among the flows.
				present := false
				for _, d := range dsts {
					if d == cfg.HotspotHost {
						present = true
						break
					}
				}
				if !present {
					dsts[0] = cfg.HotspotHost
				}
			}
			var flows []packet.FlowID
			var hotFlow packet.FlowID
			for _, d := range dsts {
				nextFlow++
				host.AddFlow(&hostif.Flow{
					ID: nextFlow, Class: cl, Src: h, Dst: d,
					Route: n.adm.RouteBestEffort(h, d, uint64(nextFlow)),
					Mode:  hostif.ByBandwidth,
					BW:    units.Bandwidth(weight * float64(rate) / float64(cfg.BEDests)),
				})
				flows = append(flows, nextFlow)
				if d == cfg.HotspotHost {
					hotFlow = nextFlow
				}
			}
			if f := cfg.HotspotFraction; f > 0 && hotFlow != 0 {
				// The source picks bursts uniformly over the flow slice.
				// The hotspot flow already holds 1 of n slots; k extra
				// copies give it weight (1+k)/(n+k) = f, i.e.
				// k = (f*n - 1)/(1 - f).
				k := int((f*float64(len(flows))-1)/(1-f) + 0.5)
				for i := 0; i < k; i++ {
					flows = append(flows, hotFlow)
				}
			}
			n.sources = append(n.sources, traffic.NewSelfSimilar(traffic.SelfSimilarConfig{
				Eng: n.eng, Host: host, Rng: hostRng.Split(uint64(200 + int(cl))),
				Flows: flows, Rate: rate,
				MinFrame: 128, MaxFrame: 100 * units.Kilobyte,
				SizeAlpha: 1.3, BurstAlpha: 1.5,
			}))
		}
	}
	return nil
}

// Engine exposes the simulation engine (examples drive custom scenarios
// through it).
func (n *Network) Engine() *sim.Engine { return n.eng }

// Hosts returns the number of endpoints.
func (n *Network) Hosts() int { return n.topo.Hosts() }

// ConfigValue returns a copy of the configuration the network was built
// from (custom drivers need the MTU, link bandwidth, and window).
func (n *Network) ConfigValue() Config { return n.cfg }

// Host returns host h's NIC.
func (n *Network) Host(h int) *hostif.Host { return n.hosts[h] }

// Admission returns the admission controller.
func (n *Network) Admission() *admission.Controller { return n.adm }

// Collector returns the live statistics collector.
func (n *Network) Collector() *stats.Collector { return n.collect }

// Run starts all traffic sources, executes the simulation through warm-up
// plus measurement, and returns the results.
func (n *Network) Run() *Results {
	for _, src := range n.sources {
		src.Start()
	}
	n.startProbes()
	horizon := n.cfg.WarmUp + n.cfg.Measure

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	wall0 := time.Now()
	n.eng.Run(horizon)
	wall := time.Since(wall0)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	res := &Results{
		Config:              n.cfg,
		Collector:           n.collect,
		SimEvents:           n.eng.Fired(),
		VideoStreamsPerHost: n.videoPerHost,
		Telemetry:           n.telemetry,
		Perf: trace.Profile{
			Events:      n.eng.Fired(),
			MaxPending:  n.eng.MaxPending(),
			SimulatedNs: int64(horizon),
			WallNs:      wall.Nanoseconds(),
			Mallocs:     ms1.Mallocs - ms0.Mallocs,
			AllocBytes:  ms1.TotalAlloc - ms0.TotalAlloc,
		},
	}
	res.Perf.Finalize()
	for _, sw := range n.switches {
		st := sw.Stats()
		res.OrderErrors += st.OrderErrors
		res.TakeOvers += st.TakeOvers
		res.XbarTransfers += st.XbarTransfers
		res.LinkSends += st.LinkSends
		res.PendingAtHorizon += sw.Queued()
	}
	for _, h := range n.hosts {
		res.PendingAtHorizon += h.Pending()
	}

	// Close the conservation books: everything not yet in a terminal state
	// is either staged at a NIC or inside the fabric (switch buffers,
	// crossbars mid-transfer, link wires).
	cons := n.cons
	for _, h := range n.hosts {
		cons.StagedAtStop += uint64(h.Pending())
		res.Reliability.Add(h.RelCounters())
		res.OutstandingAtStop += h.Outstanding()
	}
	for _, sw := range n.switches {
		cons.InNetworkAtStop += uint64(sw.Queued() + sw.InTransit())
	}
	for _, l := range n.links {
		cons.InNetworkAtStop += l.InFlight()
		res.CorruptedInFlight += l.Corrupted()
	}
	res.LostOnLink = cons.LostOnLink
	res.Conservation = cons
	res.FaultEvents = n.injector.Executed()
	res.FaultTrace = n.injector.Trace()
	return res
}

// FaultTrace returns the fault events executed so far (live view; Run's
// Results carry the final copy).
func (n *Network) FaultTrace() []faults.TraceEntry { return n.injector.Trace() }

// Conservation returns the current conservation counters without the
// end-of-run staged/in-network census (those are only meaningful at stop).
func (n *Network) Conservation() faults.Conservation { return n.cons }

// Run builds and executes one simulation.
func Run(cfg Config) (*Results, error) {
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return n.Run(), nil
}
