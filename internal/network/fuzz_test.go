package network

// Simulation fuzzing: randomised full-stack runs over every architecture
// and a range of topologies, checking the global invariants no single-run
// test can promise: packet conservation, per-flow in-order delivery, and
// the flow-control guarantee that nothing ever overflows (overflow panics
// inside the switch model would fail these runs).

import (
	"fmt"
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// fuzzTopologies builds the small networks the fuzz matrix runs on.
func fuzzTopologies(t *testing.T) map[string]topology.Topology {
	t.Helper()
	clos, err := topology.NewFoldedClos(4, 4, 2) // 16 hosts, oversubscribed 2:1
	if err != nil {
		t.Fatal(err)
	}
	tree, err := topology.NewKAryNTree(2, 3) // 8 hosts, 3 stages
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := topology.NewMesh2D(3, 3, 2) // 18 hosts, direct network
	if err != nil {
		t.Fatal(err)
	}
	return map[string]topology.Topology{
		"clos-oversub": clos,
		"tree-3stage":  tree,
		"mesh-3x3":     mesh,
	}
}

func TestFuzzMatrixInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz matrix is slow")
	}
	for name, topo := range fuzzTopologies(t) {
		for _, a := range arch.All() {
			for seed := uint64(1); seed <= 2; seed++ {
				label := fmt.Sprintf("%s/%s/seed%d", name, a.Flag(), seed)
				cfg := DefaultConfig()
				cfg.Topology = topo
				cfg.Arch = a
				cfg.Seed = seed
				cfg.Load = 0.9
				cfg.WarmUp = 200 * units.Microsecond
				cfg.Measure = 2 * units.Millisecond
				cfg.ControlDests = 3
				cfg.BEDests = 3

				var delivered, generated int
				lastSeq := map[packet.FlowID]int64{}
				reorders := 0
				cfg.Trace.Generated = func(*packet.Packet) { generated++ }
				cfg.Trace.Delivered = func(p *packet.Packet, _ units.Time) {
					delivered++
					if last, ok := lastSeq[p.Flow]; ok && int64(p.Seq) <= last {
						reorders++
					}
					lastSeq[p.Flow] = int64(p.Seq)
				}
				res, err := Run(cfg)
				if err != nil {
					// The oversubscribed Clos may reject the video
					// reservations at high load: a correct admission
					// outcome, not a failure — rerun at lower load.
					cfg.Load = 0.4
					res, err = Run(cfg)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				}
				if reorders > 0 {
					t.Errorf("%s: %d out-of-order deliveries", label, reorders)
				}
				if delivered == 0 || generated == 0 {
					t.Errorf("%s: no traffic (gen=%d dlvr=%d)", label, generated, delivered)
				}
				if delivered > generated {
					t.Errorf("%s: delivered %d > generated %d", label, delivered, generated)
				}
				// Throughput can never exceed the physical aggregate.
				var thru float64
				for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
					thru += res.Throughput(cl)
				}
				if thru > 1.0 {
					t.Errorf("%s: aggregate throughput %.2f > 1", label, thru)
				}
				if err := res.Conservation.Check(); err != nil {
					t.Errorf("%s: %v", label, err)
				}
			}
		}
	}
}

// TestFuzzFaultPlans drives randomised fault plans — flaps, derates and
// bit errors drawn by faults.RandomPlan — against the reliability layer
// over several topologies and architectures, asserting the two properties
// fault injection must never break: the run terminates, and the
// conservation invariant balances. Each plan replays deterministically, so
// a failing (topology, arch, seed) triple reproduces exactly.
func TestFuzzFaultPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-plan fuzzing is slow")
	}
	for name, topo := range fuzzTopologies(t) {
		for _, a := range []arch.Arch{arch.Traditional2VC, arch.Advanced2VC, arch.Ideal} {
			for seed := uint64(1); seed <= 3; seed++ {
				label := fmt.Sprintf("%s/%s/seed%d", name, a.Flag(), seed)
				cfg := DefaultConfig()
				cfg.Topology = topo
				cfg.Arch = a
				cfg.Seed = seed
				cfg.Load = 0.7
				cfg.WarmUp = 200 * units.Microsecond
				cfg.Measure = 3 * units.Millisecond
				cfg.ControlDests = 3
				cfg.BEDests = 3
				cfg.Reliability = hostif.Reliability{Enabled: true}
				cfg.CheckInvariants = true
				cfg.Faults = faults.RandomPlan(seed*977, allLinkIDs(topo),
					cfg.WarmUp+cfg.Measure, faults.RandomConfig{
						Flaps:    3,
						MinDown:  20 * units.Microsecond,
						MaxDown:  300 * units.Microsecond,
						Derates:  2,
						MinScale: 0.25,
						BERLinks: 4,
						MaxBER:   1e-5,
					})
				cfg.Faults.DefaultBER = 1e-7

				res, err := Run(cfg)
				if err != nil {
					cfg.Load = 0.4
					res, err = Run(cfg)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				}
				if err := res.Conservation.Check(); err != nil {
					t.Errorf("%s: %v\n%v", label, err, res.Conservation)
				}
				if res.Conservation.DeliveredUnique == 0 {
					t.Errorf("%s: no deliveries under faults", label)
				}
				if res.FaultEvents == 0 {
					t.Errorf("%s: no fault events executed", label)
				}
			}
		}
	}
}
