package network

import (
	"fmt"
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// chaosBase returns a small, fast configuration with the reliability layer
// and the delivery oracle armed.
func chaosBase() Config {
	cfg := SmallConfig()
	cfg.WarmUp = 1 * units.Millisecond
	cfg.Measure = 8 * units.Millisecond
	cfg.Load = 0.8
	cfg.Arch = arch.Advanced2VC
	cfg.Reliability = hostif.Reliability{Enabled: true}
	cfg.CheckInvariants = true
	return cfg
}

// allLinkIDs enumerates every wired switch output link of a topology.
func allLinkIDs(topo topology.Topology) []faults.LinkID {
	var ids []faults.LinkID
	for sw := 0; sw < topo.Switches(); sw++ {
		for p := 0; p < topo.Radix(sw); p++ {
			if topo.Peer(sw, p).ID != -1 {
				ids = append(ids, faults.LinkID{Switch: sw, Port: p})
			}
		}
	}
	return ids
}

// chaosPlan builds a representative fault plan: several flaps, a derate
// epoch and a uniform bit-error rate.
func chaosPlan(cfg *Config) *faults.Plan {
	horizon := cfg.WarmUp + cfg.Measure
	plan := faults.RandomPlan(42, allLinkIDs(cfg.Topology), horizon, faults.RandomConfig{
		Flaps:   4,
		MinDown: 50 * units.Microsecond,
		MaxDown: 400 * units.Microsecond,
		Derates: 2,
	})
	plan.DefaultBER = 1e-6
	return plan
}

// TestChaosConservation drives the full fault model — flaps, derating and
// bit errors — against the reliability layer and checks that the run
// terminates with the conservation invariant intact and actual recovery
// activity observed.
func TestChaosConservation(t *testing.T) {
	cfg := chaosBase()
	cfg.Faults = chaosPlan(&cfg)

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Conservation.Check(); err != nil {
		t.Fatalf("conservation: %v\n%v", err, res.Conservation)
	}
	if res.FaultEvents == 0 {
		t.Fatal("fault plan executed no events")
	}
	c := res.Conservation
	if c.DeliveredUnique == 0 {
		t.Fatal("no packets delivered under faults")
	}
	if c.ArrivedCorrupt == 0 && c.LostOnLink == 0 {
		t.Fatalf("fault plan injected no packet losses: %v", c)
	}
	if c.Retransmissions == 0 {
		t.Fatalf("reliability layer never retransmitted: %v", c)
	}
	if res.Reliability.Acked == 0 {
		t.Fatal("no packets acknowledged")
	}
	// Recovery must actually recover: almost every unique packet that made
	// it out of its NIC (generated minus the end-of-run staging backlog)
	// should be delivered despite corruption and flaps.
	injected := float64(c.Generated - c.StagedAtStop)
	if frac := float64(c.DeliveredUnique) / injected; frac < 0.97 {
		t.Fatalf("only %.1f%% of injected unique packets delivered: %v", 100*frac, c)
	}
}

// TestChaosDeterminism replays the identical (seed, plan) run and demands
// byte-identical fault traces and identical counters.
func TestChaosDeterminism(t *testing.T) {
	run := func() *Results {
		cfg := chaosBase()
		cfg.Faults = chaosPlan(&cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()

	if fmt.Sprint(a.FaultTrace) != fmt.Sprint(b.FaultTrace) {
		t.Fatalf("fault traces differ:\n%v\n%v", a.FaultTrace, b.FaultTrace)
	}
	if a.Conservation != b.Conservation {
		t.Fatalf("conservation differs:\n%v\n%v", a.Conservation, b.Conservation)
	}
	if a.Reliability != b.Reliability {
		t.Fatalf("reliability counters differ:\n%+v\n%+v", a.Reliability, b.Reliability)
	}
	if a.SimEvents != b.SimEvents {
		t.Fatalf("event counts differ: %d vs %d", a.SimEvents, b.SimEvents)
	}
	for cl := packet.Class(0); cl < packet.NumClasses; cl++ {
		if av, bv := a.PerClass[cl].DeliveredPackets, b.PerClass[cl].DeliveredPackets; av != bv {
			t.Fatalf("%v deliveries differ: %d vs %d", cl, av, bv)
		}
	}
}

// TestChaosWithoutReliability checks that conservation holds when nothing
// recovers lost packets: corrupt and flapped copies are accounted, not
// resurrected.
func TestChaosWithoutReliability(t *testing.T) {
	cfg := chaosBase()
	cfg.Reliability = hostif.Reliability{}
	cfg.Faults = chaosPlan(&cfg)

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Conservation.Check(); err != nil {
		t.Fatalf("conservation: %v\n%v", err, res.Conservation)
	}
	c := res.Conservation
	if c.Retransmissions != 0 || c.ArrivedDup != 0 {
		t.Fatalf("reliability activity in a run without the layer: %v", c)
	}
	if c.ArrivedCorrupt == 0 && c.LostOnLink == 0 {
		t.Fatalf("fault plan injected no packet losses: %v", c)
	}
}

// TestConservationFaultFree checks that the accounting balances in a
// vanilla run too — the invariant is not chaos-only.
func TestConservationFaultFree(t *testing.T) {
	cfg := chaosBase()
	cfg.Reliability = hostif.Reliability{}
	cfg.Faults = nil

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Conservation.Check(); err != nil {
		t.Fatalf("conservation: %v\n%v", err, res.Conservation)
	}
	c := res.Conservation
	if c.LostOnLink != 0 || c.ArrivedCorrupt != 0 {
		t.Fatalf("losses in a fault-free run: %v", c)
	}
	if c.Generated == 0 || c.DeliveredUnique == 0 {
		t.Fatalf("no traffic: %v", c)
	}
}

// TestChaosReliabilityRecoversAll runs a gentler fault pattern and lets
// the network drain far past the last fault; with the reliability layer on,
// every packet generated well before the horizon must be delivered exactly
// once.
func TestChaosReliabilityRecoversAll(t *testing.T) {
	cfg := chaosBase()
	cfg.Load = 0.3
	cfg.Measure = 12 * units.Millisecond
	// All faults end by 4 ms, leaving >9 ms of fault-free drain.
	plan := &faults.Plan{
		Seed: 7,
		Events: []faults.Event{
			{At: 1 * units.Millisecond, Link: faults.LinkID{Switch: 0, Port: 0}, Kind: faults.LinkDown},
			{At: 1500 * units.Microsecond, Link: faults.LinkID{Switch: 0, Port: 0}, Kind: faults.LinkUp},
			{At: 2 * units.Millisecond, Link: faults.LinkID{Switch: 0, Port: 4}, Kind: faults.LinkDown},
			{At: 2200 * units.Microsecond, Link: faults.LinkID{Switch: 0, Port: 4}, Kind: faults.LinkUp},
			{At: 3 * units.Millisecond, Link: faults.LinkID{Switch: 0, Port: 5}, Kind: faults.Derate, Scale: 0.3},
			{At: 4 * units.Millisecond, Link: faults.LinkID{Switch: 0, Port: 5}, Kind: faults.Derate, Scale: 1},
		},
		DefaultBER: 1e-7,
	}
	cfg.Faults = plan

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Conservation.Check(); err != nil {
		t.Fatalf("conservation: %v\n%v", err, res.Conservation)
	}
	c := res.Conservation
	if c.DoubleDeliveries != 0 {
		t.Fatalf("double deliveries: %v", c)
	}
	// Everything except the tail still in flight must be delivered.
	pending := c.StagedAtStop + c.InNetworkAtStop + uint64(res.OutstandingAtStop)
	if c.DeliveredUnique+pending < c.Generated {
		t.Fatalf("lost packets not recovered: delivered %d + pending %d < generated %d",
			c.DeliveredUnique, pending, c.Generated)
	}
}
