// Prometheus text exposition and JSON rendering of a gathered snapshot.
// Both renderers walk the schema in registration order and use only
// integer formatting, so identical snapshots serialise byte-identically
// — WriteDeterministic's output is part of the cross-shard replay
// contract (PerEngine instruments excluded, see Desc.PerEngine).

package metrics

import (
	"bufio"
	"io"
	"strconv"
)

// WriteProm renders the full gathered state in Prometheus text
// exposition format, including PerEngine instruments. This is what the
// live scrape endpoint serves.
func (r *Registry) WriteProm(w io.Writer) error {
	return r.writeProm(w, true)
}

// WriteDeterministic renders the gathered state without PerEngine
// instruments. Two runs of the same configuration produce byte-identical
// output at any shard count; the determinism cross-checks compare it.
func (r *Registry) WriteDeterministic(w io.Writer) error {
	return r.writeProm(w, false)
}

func (r *Registry) writeProm(w io.Writer, perEngine bool) error {
	snap := r.Gather()
	descs := r.Descs()
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for i := range descs {
		d := &descs[i]
		if d.PerEngine && !perEngine {
			continue
		}
		if d.Name != prevFamily {
			prevFamily = d.Name
			bw.WriteString("# HELP ")
			bw.WriteString(d.Name)
			bw.WriteByte(' ')
			bw.WriteString(d.Help)
			bw.WriteString("\n# TYPE ")
			bw.WriteString(d.Name)
			bw.WriteByte(' ')
			bw.WriteString(typeString(d.Kind))
			bw.WriteByte('\n')
		}
		switch d.Kind {
		case KindCounter:
			writeSample(bw, d.Name, d.Label, "", int64(d.counterValue(snap)), d.counterValue(snap) > 1<<62)
		case KindGauge:
			writeSample(bw, d.Name, d.Label, "", d.gaugeValue(snap), false)
		case KindHistogram:
			h := d.histValue(snap)
			var cum uint64
			for _, b := range h.Buckets {
				cum += b.Count
				writeBucket(bw, d.Name, d.Label, strconv.FormatInt(b.Upper, 10), cum)
			}
			writeBucket(bw, d.Name, d.Label, "+Inf", h.Count)
			writeSample(bw, d.Name+"_sum", d.Label, "", h.Sum, false)
			writeSample(bw, d.Name+"_count", d.Label, "", int64(h.Count), false)
		}
	}
	return bw.Flush()
}

func typeString(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// writeSample emits one `name{label} value` line. huge guards the
// (practically impossible) uint64 counter overflow of int64.
func writeSample(bw *bufio.Writer, name, label, extra string, v int64, huge bool) {
	bw.WriteString(name)
	if label != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(label)
		if label != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	if huge {
		bw.WriteString(strconv.FormatUint(uint64(v), 10))
	} else {
		bw.WriteString(strconv.FormatInt(v, 10))
	}
	bw.WriteByte('\n')
}

func writeBucket(bw *bufio.Writer, name, label, le string, cum uint64) {
	bw.WriteString(name)
	bw.WriteString("_bucket{")
	if label != "" {
		bw.WriteString(label)
		bw.WriteByte(',')
	}
	bw.WriteString(`le="`)
	bw.WriteString(le)
	bw.WriteString(`"} `)
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')
}

// WriteJSON renders the gathered state as one JSON object keyed by
// instrument name (plus label), in registration order — the payload the
// expvar-style endpoint serves. Histograms render as
// {"count":N,"sum":S,"p50":…,"p99":…}.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Gather()
	descs := r.Descs()
	bw := bufio.NewWriter(w)
	bw.WriteByte('{')
	first := true
	for i := range descs {
		d := &descs[i]
		if !first {
			bw.WriteByte(',')
		}
		first = false
		key := d.Name
		if d.Label != "" {
			key += "{" + d.Label + "}"
		}
		bw.WriteString(strconv.Quote(key))
		bw.WriteByte(':')
		switch d.Kind {
		case KindCounter:
			bw.WriteString(strconv.FormatUint(d.counterValue(snap), 10))
		case KindGauge:
			bw.WriteString(strconv.FormatInt(d.gaugeValue(snap), 10))
		case KindHistogram:
			h := d.histValue(snap)
			bw.WriteString(`{"count":`)
			bw.WriteString(strconv.FormatUint(h.Count, 10))
			bw.WriteString(`,"sum":`)
			bw.WriteString(strconv.FormatInt(h.Sum, 10))
			bw.WriteString(`,"p50":`)
			bw.WriteString(strconv.FormatInt(h.Quantile(0.50), 10))
			bw.WriteString(`,"p99":`)
			bw.WriteString(strconv.FormatInt(h.Quantile(0.99), 10))
			bw.WriteByte('}')
		}
	}
	bw.WriteString("}\n")
	return bw.Flush()
}
