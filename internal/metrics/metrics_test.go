package metrics

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

// TestBucketBounds checks the log-linear bucket math: every magnitude
// lands in a bucket whose bounds contain it, and bounds are monotone.
func TestBucketBounds(t *testing.T) {
	for idx := 1; idx < histBuckets; idx++ {
		lo := int64(1)
		if idx > 1 {
			lo = bucketUpper(idx-1) + 1
		}
		hi := bucketUpper(idx)
		if hi < lo {
			t.Fatalf("bucket %d: upper %d < lower %d", idx, hi, lo)
		}
	}
	for _, m := range []uint64{1, 2, 7, 8, 9, 15, 16, 100, 1 << 20, 1<<20 + 3, 1<<63 - 1, 1 << 63, math.MaxUint64 >> 1, math.MaxUint64} {
		idx := bucketOf(m)
		if idx < 1 || idx >= histBuckets {
			t.Fatalf("magnitude %d: bucket %d out of range", m, idx)
		}
		hi := uint64(bucketUpper(idx))
		var lo uint64 = 1
		if idx > 1 {
			lo = uint64(bucketUpper(idx-1)) + 1
		}
		if bucketUpper(idx) == math.MaxInt64 {
			hi = math.MaxUint64 // saturated top bucket
		}
		if m < lo || m > hi {
			t.Fatalf("magnitude %d: bucket %d bounds [%d,%d] miss it", m, idx, lo, hi)
		}
	}
	// Relative bucket width is bounded by 1/8 above the linear range.
	for idx := 9; idx < histBuckets; idx++ {
		lo, hi := float64(bucketUpper(idx-1)+1), float64(bucketUpper(idx))
		if hi == math.MaxInt64 {
			continue
		}
		if (hi-lo)/lo > 0.25 {
			t.Fatalf("bucket %d: relative width %.3f too coarse", idx, (hi-lo)/lo)
		}
	}
}

// TestNilSafety: every instrument method on a nil receiver (and handle
// resolution on a nil Set) must be a no-op — the disabled path.
func TestNilSafety(t *testing.T) {
	var s *Set
	c, g, h := s.Counter(0), s.Gauge(0), s.Histogram(0)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil Set must resolve nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(-42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	s.Publish() // must not panic
}

func TestGatherMergesSets(t *testing.T) {
	r := NewRegistry()
	cid := r.Counter("test_ops_total", "ops")
	gsum := r.Gauge("test_depth", "depth")
	gmax := r.Gauge("test_clock", "clock", WithMax())
	hid := r.Histogram("test_lat_ns", "latency")

	a, b := r.NewSet(), r.NewSet()
	a.Counter(cid).Add(3)
	b.Counter(cid).Add(4)
	a.Gauge(gsum).Set(10)
	b.Gauge(gsum).Set(5)
	a.Gauge(gmax).Set(100)
	b.Gauge(gmax).Set(70)
	a.Histogram(hid).Observe(-9)
	a.Histogram(hid).Observe(0)
	b.Histogram(hid).Observe(1000)
	a.Publish()
	b.Publish()

	snap := r.Gather()
	if got := snap.Counters[0]; got != 7 {
		t.Fatalf("counter merge: got %d want 7", got)
	}
	if got := snap.Gauges[0]; got != 15 {
		t.Fatalf("sum gauge merge: got %d want 15", got)
	}
	if got := snap.Gauges[1]; got != 100 {
		t.Fatalf("max gauge merge: got %d want 100", got)
	}
	h := snap.Hists[0]
	if h.Count != 3 || h.Sum != 991 {
		t.Fatalf("hist merge: count=%d sum=%d", h.Count, h.Sum)
	}

	// Rotate folds into base; new sets start clean but Gather keeps the
	// history (counters/hists accumulate across epochs).
	r.Rotate()
	c2 := r.NewSet()
	c2.Counter(cid).Add(10)
	c2.Publish()
	snap = r.Gather()
	if got := snap.Counters[0]; got != 17 {
		t.Fatalf("post-rotate counter: got %d want 17", got)
	}
	if got := snap.Hists[0].Count; got != 3 {
		t.Fatalf("post-rotate hist count: got %d want 3", got)
	}
}

// TestDeterministicRender: WriteDeterministic must be byte-identical
// whether the same observations land in one set or are split across
// three, and must exclude PerEngine instruments.
func TestDeterministicRender(t *testing.T) {
	build := func(split int) string {
		r := NewRegistry()
		cid := r.Counter("d_ops_total", "ops")
		eid := r.Counter("d_engine_events_total", "per-engine", PerEngine())
		hid := r.Histogram("d_slack_ns", "slack", WithLabel(`class="control"`))
		sets := make([]*Set, split)
		for i := range sets {
			sets[i] = r.NewSet()
		}
		for i := 0; i < 99; i++ {
			s := sets[i%split]
			s.Counter(cid).Inc()
			s.Counter(eid).Add(uint64(i)) // shard-dependent noise
			s.Histogram(hid).Observe(int64(i*37 - 500))
		}
		for _, s := range sets {
			s.Publish()
		}
		var buf bytes.Buffer
		if err := r.WriteDeterministic(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one, three := build(1), build(3)
	if one != three {
		t.Fatalf("deterministic render differs across set splits:\n--- 1 set\n%s\n--- 3 sets\n%s", one, three)
	}
	if strings.Contains(one, "d_engine_events_total") {
		t.Fatal("WriteDeterministic must exclude PerEngine instruments")
	}
	var full bytes.Buffer
	r := NewRegistry()
	r.Counter("d_engine_events_total", "per-engine", PerEngine())
	s := r.NewSet()
	s.Counter(0).Inc()
	s.Publish()
	if err := r.WriteProm(&full); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.String(), "d_engine_events_total 1") {
		t.Fatalf("WriteProm must include PerEngine instruments:\n%s", full.String())
	}
}

func TestPromHistogramRendering(t *testing.T) {
	r := NewRegistry()
	hid := r.Histogram("p_v", "values")
	s := r.NewSet()
	h := s.Histogram(hid)
	h.Observe(-3)
	h.Observe(0)
	h.Observe(5)
	h.Observe(5)
	s.Publish()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE p_v histogram",
		`p_v_bucket{le="-3"} 1`,
		`p_v_bucket{le="0"} 2`,
		`p_v_bucket{le="5"} 4`,
		`p_v_bucket{le="+Inf"} 4`,
		"p_v_sum 7",
		"p_v_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatalf("re-registration returned a new id: %d vs %d", a, b)
	}
	c := r.Counter("x_total", "x", WithLabel(`k="v"`))
	if c == a {
		t.Fatal("distinct label must get its own slot")
	}
}

func TestServerScrape(t *testing.T) {
	r := NewRegistry()
	cid := r.Counter("s_ops_total", "ops")
	s := r.NewSet()
	s.Counter(cid).Add(42)
	s.Publish()
	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "s_ops_total 42") {
		t.Fatalf("scrape missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"s_ops_total":42`) {
		t.Fatalf("json missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "cmdline") {
		t.Fatalf("expvar page missing:\n%s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "profile") {
		t.Fatalf("pprof index missing:\n%s", out)
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	hid := r.Histogram("q_v", "values")
	s := r.NewSet()
	h := s.Histogram(hid)
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s.Publish()
	snap := r.Gather()
	p50 := snap.Hists[hid].Quantile(0.50)
	if p50 < 450 || p50 > 600 {
		t.Fatalf("p50 of 1..1000 = %d, outside log-bucket tolerance", p50)
	}
	p99 := snap.Hists[hid].Quantile(0.99)
	if p99 < 950 || p99 > 1100 {
		t.Fatalf("p99 of 1..1000 = %d", p99)
	}
}
