// The live monitoring server: a plain net/http server (stdlib only) that
// exposes the registry in Prometheus text format and as JSON, the
// standard expvar page, and net/http/pprof. Every handler reads only
// published snapshots (see Set.Publish), so scraping a multi-hour soak
// cannot perturb the simulation or its determinism.

package metrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is a running metrics HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

var expvarOnce sync.Once

// StartServer listens on addr (host:port; port 0 picks a free one) and
// serves:
//
//	/metrics       Prometheus text exposition of reg
//	/metrics.json  the same state as one JSON object
//	/debug/vars    the standard expvar page (cmdline, memstats, qos)
//	/debug/pprof/  the standard pprof index
//
// The registry is also published as the expvar variable "qos" (once per
// process), so /debug/vars carries the simulation metrics next to the
// runtime's.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	expvarOnce.Do(func() {
		expvar.Publish("qos", expvar.Func(func() any {
			snap := reg.Gather()
			descs := reg.Descs()
			out := make(map[string]any, len(descs))
			for i := range descs {
				d := &descs[i]
				key := d.Name
				if d.Label != "" {
					key += "{" + d.Label + "}"
				}
				switch d.Kind {
				case KindCounter:
					out[key] = d.counterValue(snap)
				case KindGauge:
					out[key] = d.gaugeValue(snap)
				case KindHistogram:
					h := d.histValue(snap)
					out[key] = map[string]int64{
						"count": int64(h.Count), "sum": h.Sum,
						"p50": h.Quantile(0.50), "p99": h.Quantile(0.99),
					}
				}
			}
			return out
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
