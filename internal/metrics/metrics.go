// Package metrics is the simulator's always-on metrics plane: counters,
// gauges and log-bucketed histograms that are cheap enough to leave
// compiled into every hot path, deterministic enough to be part of the
// byte-identical replay contract, and shardable with the same
// Clone/Absorb discipline as internal/trace.
//
// Design rules, in the order they were chosen:
//
//   - Disabled costs one nil check. Components hold typed instrument
//     pointers (*Counter, *Gauge, *Histogram) that are nil when metrics
//     are off; every method is nil-safe, so a disabled site is a single
//     pointer comparison — the same contract internal/trace established
//     for its Tracer hooks. No site allocates, ever.
//   - Recording is shard-local and lock-free. A Registry only defines the
//     schema (instrument names, help strings, render order); the values
//     live in per-shard Sets. Each shard's engine goroutine is the only
//     writer of its Set, so the hot path is a plain integer increment.
//   - Reads never touch live state. A shard publishes an immutable
//     Snapshot of its Set at deterministic instants (telemetry probe
//     ticks, end of run) via an atomic pointer; the wall-clock HTTP
//     scrape handler merges the latest published snapshots. The
//     simulation never observes the scraper and the scraper never
//     observes a torn value, so serving /metrics cannot perturb a run.
//   - Merging is order-independent integer arithmetic. Counters and
//     histogram buckets sum; gauges sum (or take the max, for quantities
//     like the simulation clock that are per-shard replicas of one
//     global value). The merged output is therefore byte-identical at
//     any shard count — except for instruments registered PerEngine
//     (engine event counts, heap depths), whose values depend on the
//     shard layout by construction and which the deterministic renderer
//     excludes, mirroring how trace.Telemetry treats EngineSamples.
//
// Histograms are HDR-style log-linear: 8 sub-buckets per power of two
// (fixed arrays indexed with bits.Len64, no floating point, no map), a
// dedicated zero bucket, and a mirrored negative range so deadline slack
// — which goes negative exactly when it matters — keeps full resolution
// on both sides of zero. Relative bucket error is bounded by 1/8.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies an instrument.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// GaugeMerge selects how per-shard gauge values combine in Gather.
type GaugeMerge uint8

// Gauge merge modes: sum shard values (queue depths, reserved bandwidth)
// or take the maximum (per-shard replicas of one global quantity, like
// the simulation clock at a publish boundary).
const (
	MergeSum GaugeMerge = iota
	MergeMax
)

// Desc describes one registered instrument.
type Desc struct {
	// Name is the Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*).
	Name string
	// Label is an optional static label set rendered verbatim inside
	// braces, e.g. `class="control"`. Several instruments may share a
	// Name with distinct Labels; they render as one metric family.
	Label string
	// Help is the one-line # HELP text.
	Help string
	// Kind is the instrument type.
	Kind Kind
	// PerEngine marks instruments whose value depends on the shard
	// layout (engine event counts, per-engine heap depths). They are
	// served on the scrape endpoint but excluded from WriteDeterministic,
	// which is what the byte-identical cross-shard contract compares.
	PerEngine bool
	// Merge is the gauge merge mode (gauges only).
	Merge GaugeMerge

	slot int // index within the instrument's kind
}

// Opt modifies a Desc at registration.
type Opt func(*Desc)

// WithLabel attaches a static label set (e.g. `class="control"`).
func WithLabel(label string) Opt { return func(d *Desc) { d.Label = label } }

// PerEngine marks the instrument shard-layout-dependent (see Desc).
func PerEngine() Opt { return func(d *Desc) { d.PerEngine = true } }

// WithMax gives a gauge max-merge semantics across shards.
func WithMax() Opt { return func(d *Desc) { d.Merge = MergeMax } }

// Registry holds the instrument schema and the live per-shard Sets.
// Registration and Set management take a mutex; recording never does.
type Registry struct {
	mu     sync.Mutex
	descs  []Desc
	byKey  map[string]int
	counts [3]int // instruments per kind
	sets   []*Set
	base   *Snapshot // folded history from Rotate (cross-epoch accumulation)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]int)}
}

// Typed instrument ids, returned by registration and resolved against a
// Set. The zero value of each id type is a valid instrument (the first
// registered of its kind), so ids must always come from registration.
type (
	CounterID   int
	GaugeID     int
	HistogramID int
)

func (r *Registry) register(name, help string, kind Kind, opts []Opt) int {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	d := Desc{Name: name, Help: help, Kind: kind}
	for _, o := range opts {
		o(&d)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := d.Name + "{" + d.Label + "}"
	if i, ok := r.byKey[key]; ok {
		// Idempotent re-registration (a soak re-registers the schema
		// every epoch); the kind must agree or the schema is buggy.
		if r.descs[i].Kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as kind %d (was %d)", key, kind, r.descs[i].Kind))
		}
		return r.descs[i].slot
	}
	if len(r.sets) > 0 || r.base != nil {
		panic(fmt.Sprintf("metrics: %s registered after the first Set was created", key))
	}
	d.slot = r.counts[kind]
	r.counts[kind]++
	r.byKey[key] = len(r.descs)
	r.descs = append(r.descs, d)
	return d.slot
}

// Counter registers (or re-resolves) a counter instrument.
func (r *Registry) Counter(name, help string, opts ...Opt) CounterID {
	return CounterID(r.register(name, help, KindCounter, opts))
}

// Gauge registers (or re-resolves) a gauge instrument.
func (r *Registry) Gauge(name, help string, opts ...Opt) GaugeID {
	return GaugeID(r.register(name, help, KindGauge, opts))
}

// Histogram registers (or re-resolves) a histogram instrument.
func (r *Registry) Histogram(name, help string, opts ...Opt) HistogramID {
	return HistogramID(r.register(name, help, KindHistogram, opts))
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// NewSet creates one shard-local instrument set. All instruments must be
// registered before the first Set exists (the schema is frozen from then
// on, so every Set has identical layout).
func (r *Registry) NewSet() *Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Set{
		reg:      r,
		counters: make([]Counter, r.counts[KindCounter]),
		gauges:   make([]Gauge, r.counts[KindGauge]),
		hists:    make([]Histogram, r.counts[KindHistogram]),
	}
	r.sets = append(r.sets, s)
	return s
}

// Set holds one shard's instrument values. Exactly one goroutine (the
// shard's engine goroutine) may record into a Set; Publish makes the
// current values visible to concurrent readers.
type Set struct {
	reg      *Registry
	counters []Counter
	gauges   []Gauge
	hists    []Histogram
	pub      atomic.Pointer[Snapshot]
}

// Counter resolves a counter handle. Nil-safe: a nil Set resolves to a
// nil handle, whose methods are no-ops — the disabled path.
func (s *Set) Counter(id CounterID) *Counter {
	if s == nil {
		return nil
	}
	return &s.counters[id]
}

// Gauge resolves a gauge handle (nil-safe, like Counter).
func (s *Set) Gauge(id GaugeID) *Gauge {
	if s == nil {
		return nil
	}
	return &s.gauges[id]
}

// Histogram resolves a histogram handle (nil-safe, like Counter).
func (s *Set) Histogram(id HistogramID) *Histogram {
	if s == nil {
		return nil
	}
	return &s.hists[id]
}

// Publish snapshots the Set's current values and makes the snapshot
// visible to Gather. Only the owning goroutine may call it; the snapshot
// is immutable afterwards. Publishing allocates (one snapshot), so it
// belongs at probe/epoch boundaries, never in per-event code.
func (s *Set) Publish() {
	if s == nil {
		return
	}
	s.pub.Store(s.snapshot())
}

func (s *Set) snapshot() *Snapshot {
	snap := &Snapshot{
		Counters: append([]uint64(nil), countersOf(s.counters)...),
		Gauges:   append([]int64(nil), gaugesOf(s.gauges)...),
		Hists:    make([]HistSnapshot, len(s.hists)),
	}
	for i := range s.hists {
		snap.Hists[i] = s.hists[i].snapshot()
	}
	return snap
}

func countersOf(cs []Counter) []uint64 {
	out := make([]uint64, len(cs))
	for i := range cs {
		out[i] = cs[i].v
	}
	return out
}

func gaugesOf(gs []Gauge) []int64 {
	out := make([]int64, len(gs))
	for i := range gs {
		out[i] = gs[i].v
	}
	return out
}

// Counter is a monotonically increasing uint64. All methods are nil-safe;
// the nil receiver is the disabled instrument.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous int64. All methods are nil-safe.
type Gauge struct{ v int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add adds d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram bucket layout: a zero bucket at index 0, exact buckets for
// magnitudes 1..7, then 8 log-linear sub-buckets per power of two up to
// 2^63, in fixed arrays — 496 buckets per sign. Everything is integer
// arithmetic on the hot path.
const histBuckets = 496

// Histogram records int64 observations (nanoseconds, bytes, depths) in
// log-linear buckets with a mirrored negative range. All methods are
// nil-safe; Observe on a live histogram is two increments, one add and a
// bits.Len64.
type Histogram struct {
	count uint64
	sum   int64
	pos   [histBuckets]uint64 // pos[0] is the zero bucket
	neg   [histBuckets]uint64 // neg[i] counts -v with magnitude bucket i
}

// bucketOf maps a magnitude m >= 1 to its bucket index in [1, 495].
func bucketOf(m uint64) int {
	e := bits.Len64(m)
	if e <= 3 {
		return int(m) // exact buckets for 1..7
	}
	return ((e - 4) << 3) + 8 + int((m>>(e-4))&7)
}

// bucketUpper returns the largest magnitude bucket idx contains.
func bucketUpper(idx int) int64 {
	if idx < 8 {
		return int64(idx)
	}
	e := ((idx - 8) >> 3) + 4
	sub := uint64(idx-8) & 7
	hi := (9+sub)<<(e-4) - 1
	if hi > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(hi)
}

// Observe records v.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	switch {
	case v >= 0:
		if v == 0 {
			h.pos[0]++
		} else {
			h.pos[bucketOf(uint64(v))]++
		}
	default:
		h.neg[bucketOf(uint64(-v))]++
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count, Sum: h.sum}
	for i, c := range h.pos {
		if c != 0 {
			s.Buckets = append(s.Buckets, HistBucket{Upper: bucketUpper(i), Count: c})
		}
	}
	for i, c := range h.neg {
		if c != 0 {
			// A negative magnitude bucket [lo, hi] holds values in
			// [-hi, -lo]; its inclusive upper bound is -lo.
			lo := int64(1)
			if i > 1 {
				lo = bucketUpper(i-1) + 1
			}
			s.Buckets = append(s.Buckets, HistBucket{Upper: -lo, Count: c})
		}
	}
	sort.Slice(s.Buckets, func(a, b int) bool { return s.Buckets[a].Upper < s.Buckets[b].Upper })
	return s
}

// HistBucket is one non-empty histogram bucket: Count observations with
// value <= Upper (and greater than the previous bucket's Upper).
type HistBucket struct {
	Upper int64
	Count uint64
}

// HistSnapshot is an immutable histogram state: non-empty buckets in
// ascending Upper order.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets []HistBucket
}

// merge adds o into h, bucket-wise (order-independent).
func (h *HistSnapshot) merge(o HistSnapshot) {
	h.Count += o.Count
	h.Sum += o.Sum
	merged := make([]HistBucket, 0, len(h.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(h.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(h.Buckets) && h.Buckets[i].Upper < o.Buckets[j].Upper):
			merged = append(merged, h.Buckets[i])
			i++
		case i >= len(h.Buckets) || o.Buckets[j].Upper < h.Buckets[i].Upper:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, HistBucket{h.Buckets[i].Upper, h.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	h.Buckets = merged
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from
// the bucket boundaries, or 0 when empty.
func (h *HistSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for _, b := range h.Buckets {
		seen += b.Count
		if seen > rank {
			return b.Upper
		}
	}
	return h.Buckets[len(h.Buckets)-1].Upper
}

// Snapshot is an immutable copy of one Set's (or a merge of several
// Sets') values, in schema slot order.
type Snapshot struct {
	Counters []uint64
	Gauges   []int64
	Hists    []HistSnapshot
}

// merge folds o into s according to each gauge's merge mode.
func (s *Snapshot) merge(o *Snapshot, descs []Desc) {
	for i := range s.Counters {
		s.Counters[i] += o.Counters[i]
	}
	for _, d := range descs {
		if d.Kind != KindGauge {
			continue
		}
		switch d.Merge {
		case MergeMax:
			if o.Gauges[d.slot] > s.Gauges[d.slot] {
				s.Gauges[d.slot] = o.Gauges[d.slot]
			}
		default:
			s.Gauges[d.slot] += o.Gauges[d.slot]
		}
	}
	for i := range s.Hists {
		s.Hists[i].merge(o.Hists[i])
	}
}

func (r *Registry) empty() *Snapshot {
	return &Snapshot{
		Counters: make([]uint64, r.counts[KindCounter]),
		Gauges:   make([]int64, r.counts[KindGauge]),
		Hists:    make([]HistSnapshot, r.counts[KindHistogram]),
	}
}

// Gather merges the folded history (Rotate) with every live Set's most
// recently published snapshot. Safe to call from any goroutine at any
// time; Sets that have never published contribute nothing.
func (r *Registry) Gather() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gatherLocked()
}

func (r *Registry) gatherLocked() *Snapshot {
	out := r.empty()
	if r.base != nil {
		out.merge(r.base, r.descs)
	}
	for _, s := range r.sets {
		if snap := s.pub.Load(); snap != nil {
			out.merge(snap, r.descs)
		}
	}
	return out
}

// Rotate folds the live Sets' current values into the registry's base
// snapshot and detaches them, so a sequence of runs (soak epochs)
// accumulates counters and histograms across epochs while each run gets
// fresh Sets. It must only be called when no shard goroutine is
// recording (between runs). Gauges keep their merged final values.
func (r *Registry) Rotate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.descs) == 0 {
		// Nothing registered yet (a soak rotates before its first epoch):
		// folding now would freeze the empty schema and break the
		// registration that is about to happen.
		return
	}
	for _, s := range r.sets {
		s.pub.Store(s.snapshot())
	}
	r.base = r.gatherLocked()
	r.sets = nil
}

// Descs returns the registered instrument descriptors in registration
// (render) order. The returned slice is shared; do not mutate.
func (r *Registry) Descs() []Desc {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.descs
}

// value extracts desc d's value from snap.
func (d *Desc) counterValue(snap *Snapshot) uint64 { return snap.Counters[d.slot] }
func (d *Desc) gaugeValue(snap *Snapshot) int64    { return snap.Gauges[d.slot] }
func (d *Desc) histValue(snap *Snapshot) *HistSnapshot {
	return &snap.Hists[d.slot]
}
