package collective

import (
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

// buildAndRun attaches a collective to a small network and runs it.
func buildAndRun(t *testing.T, a arch.Arch, load float64, c Config) (*Runner, *network.Results) {
	t.Helper()
	cfg := network.SmallConfig()
	cfg.Arch = a
	cfg.Load = load
	// Interference: multimedia shares the regulated VC with the
	// collective (the Traditional switch's weak spot) and best-effort
	// fills the rest; the collective itself supplies the
	// latency-critical traffic.
	cfg.ClassShare = [packet.NumClasses]float64{0, 0.25, 0.375, 0.375}
	cfg.WarmUp = 0
	cfg.Measure = 20 * units.Millisecond
	r := Attach(&cfg, c)
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(n); err != nil {
		t.Fatal(err)
	}
	return r, n.Run()
}

func TestRingCollectiveCompletes(t *testing.T) {
	r, _ := buildAndRun(t, arch.Advanced2VC, 0, Config{
		Chunk: 4 * units.Kilobyte, Class: packet.Control, StartAt: units.Millisecond,
	})
	if !r.Done() {
		t.Fatalf("collective incomplete: min round %d of %d", r.MinRound(), r.cfg.Rounds)
	}
	if r.CompletionTime() <= 0 {
		t.Fatalf("completion time %v", r.CompletionTime())
	}
	// 15 rounds of a 3-packet chunk on an idle 16-host network finish in
	// well under a millisecond.
	if r.CompletionTime() > units.Millisecond {
		t.Fatalf("idle-network collective took %v", r.CompletionTime())
	}
}

func TestRingSemantics(t *testing.T) {
	// With Rounds = 3 every host must receive exactly 3 chunks and the
	// per-flow sequence numbers seen at each destination must be the
	// chunks' packets in order (ring gating preserved).
	cfg := network.SmallConfig()
	cfg.Arch = arch.Ideal
	cfg.Load = 0
	cfg.WarmUp = 0
	cfg.Measure = 10 * units.Millisecond
	col := Config{Chunk: 3000, Rounds: 3, Class: packet.Control, StartAt: 0}
	r := Attach(&cfg, col)
	// Count per-destination chunk arrivals through a second chained hook.
	arrivals := map[int]int{}
	inner := cfg.Trace.Delivered
	cfg.Trace.Delivered = func(p *packet.Packet, now units.Time) {
		inner(p, now)
		if p.Flow >= FlowBase {
			arrivals[p.Dst]++
		}
	}
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(n); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if !r.Done() {
		t.Fatalf("3-round collective incomplete (min round %d)", r.MinRound())
	}
	// 3000-byte chunk at 2KB MTU = 2 packets per chunk, 3 rounds.
	for h, got := range arrivals {
		if got != 6 {
			t.Fatalf("host %d received %d collective packets, want 6", h, got)
		}
	}
	if len(arrivals) != n.Hosts() {
		t.Fatalf("only %d hosts participated", len(arrivals))
	}
}

func TestCollectiveProtectedByEDF(t *testing.T) {
	// Under heavy best-effort interference the EDF architecture must
	// complete the collective far faster than the deadline-blind
	// Traditional switch — the paper's parallel-application motivation.
	col := Config{Chunk: 8 * units.Kilobyte, Class: packet.Control, StartAt: 2 * units.Millisecond}
	rAdv, _ := buildAndRun(t, arch.Advanced2VC, 1.0, col)
	rTrad, _ := buildAndRun(t, arch.Traditional2VC, 1.0, col)
	if !rAdv.Done() {
		t.Fatalf("EDF collective incomplete under interference (min round %d)", rAdv.MinRound())
	}
	if !rTrad.Done() {
		// Traditional may genuinely fail to finish in the window — that
		// is itself the result; just require EDF finished.
		t.Logf("Traditional collective incomplete (min round %d of %d)", rTrad.MinRound(), rTrad.cfg.Rounds)
		return
	}
	t.Logf("completion: advanced=%v traditional=%v", rAdv.CompletionTime(), rTrad.CompletionTime())
	if rAdv.CompletionTime() >= rTrad.CompletionTime() {
		t.Fatalf("EDF did not protect the collective: %v vs %v",
			rAdv.CompletionTime(), rTrad.CompletionTime())
	}
}

func TestBindValidation(t *testing.T) {
	cfg := network.SmallConfig()
	cfg.Load = 0
	cfg.WarmUp = 0
	cfg.Measure = units.Millisecond
	r := Attach(&cfg, Config{Chunk: 0})
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(n); err == nil {
		t.Error("zero chunk accepted")
	}
	r2 := Attach(&cfg, Config{Chunk: 1000})
	if err := r2.Bind(n); err != nil {
		t.Fatal(err)
	}
	if err := r2.Bind(n); err == nil {
		t.Error("double Bind accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Chunk: units.Kilobyte, Class: packet.Control}
	cases := []struct {
		name  string
		hosts int
		mod   func(*Config)
		ok    bool
	}{
		{"valid", 16, func(*Config) {}, true},
		{"valid explicit rounds", 16, func(c *Config) { c.Rounds = 3 }, true},
		{"zero rounds selects default", 16, func(c *Config) { c.Rounds = 0 }, true},
		{"two hosts minimum ring", 2, func(*Config) {}, true},
		{"one host", 1, func(*Config) {}, false},
		{"zero hosts", 0, func(*Config) {}, false},
		{"negative rounds", 16, func(c *Config) { c.Rounds = -1 }, false},
		{"zero chunk", 16, func(c *Config) { c.Chunk = 0 }, false},
		{"negative chunk", 16, func(c *Config) { c.Chunk = -units.Kilobyte }, false},
		{"class out of range", 16, func(c *Config) { c.Class = packet.NumClasses }, false},
		{"negative start", 16, func(c *Config) { c.StartAt = -1 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := good
			tc.mod(&c)
			err := c.Validate(tc.hosts)
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("invalid config accepted")
			}
		})
	}
}

func TestBindRejectsNegativeRounds(t *testing.T) {
	cfg := network.SmallConfig()
	cfg.Load = 0
	cfg.WarmUp = 0
	cfg.Measure = units.Millisecond
	r := Attach(&cfg, Config{Chunk: units.Kilobyte, Rounds: -3})
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(n); err == nil {
		t.Fatal("negative rounds accepted")
	}
}

func TestCollectiveOnMesh(t *testing.T) {
	// The driver is topology-agnostic: run the ring over a 2D mesh.
	mesh, err := topology.NewMesh2D(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.SmallConfig()
	cfg.Topology = mesh
	cfg.Arch = arch.Advanced2VC
	cfg.Load = 0.3
	cfg.ControlDests = 3
	cfg.BEDests = 3
	cfg.WarmUp = 0
	cfg.Measure = 10 * units.Millisecond
	r := Attach(&cfg, Config{Chunk: 2 * units.Kilobyte, Class: packet.Control, StartAt: units.Millisecond})
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(n); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if !r.Done() {
		t.Fatalf("mesh collective incomplete (round %d)", r.MinRound())
	}
}
