// Package collective implements an MPI-style ring collective (the
// communication pattern of the parallel applications the paper's
// introduction motivates: "low-latency and contention-free interconnection
// networks are demanded for the execution of parallel applications").
//
// The collective is a ring exchange à la ring-allreduce: in round r every
// host h sends one chunk to host (h+1) mod N and may send round r+1 only
// after receiving round r from (h-1) mod N. Completion time of the whole
// collective is therefore gated by the *slowest* message of every round —
// exactly the tail-latency metric deadline-based QoS protects when bulk
// best-effort traffic shares the network.
//
// The driver runs on top of a built network.Network using its extension
// surface: per-host flows registered through hostif, submissions issued
// from delivery callbacks (all inside the single-threaded engine), and the
// Trace hook for observation. It doubles as the reference example of
// custom workload driving.
package collective

import (
	"fmt"

	"deadlineqos/internal/hostif"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

// FlowBase is the flow-id range used by collective flows; it is far above
// anything the network's own provisioning allocates.
const FlowBase packet.FlowID = 1 << 30

// Config parameterises one ring collective.
type Config struct {
	// Chunk is the payload each host sends per round.
	Chunk units.Size
	// Rounds is the number of ring steps (0 selects N-1, a full
	// reduce-scatter).
	Rounds int
	// Class is the traffic class collective messages travel as; Control
	// (latency-critical, deadline = link rate) is the natural choice.
	Class packet.Class
	// StartAt is the oracle time round 0 is submitted.
	StartAt units.Time
}

// Validate rejects configurations that would wire a degenerate ring:
// fewer than two hosts (no ring exists), a non-positive chunk (nothing to
// send), negative rounds (Rounds == 0 selects the N-1 default and stays
// valid), an out-of-range class, or a negative start time.
func (c Config) Validate(hosts int) error {
	if hosts < 2 {
		return fmt.Errorf("collective: ring needs at least 2 hosts, have %d", hosts)
	}
	if c.Chunk <= 0 {
		return fmt.Errorf("collective: chunk size %v must be positive", c.Chunk)
	}
	if c.Rounds < 0 {
		return fmt.Errorf("collective: negative rounds %d (0 selects the N-1 default)", c.Rounds)
	}
	if c.Class < 0 || c.Class >= packet.NumClasses {
		return fmt.Errorf("collective: class %d out of range", c.Class)
	}
	if c.StartAt < 0 {
		return fmt.Errorf("collective: negative start time %v", c.StartAt)
	}
	return nil
}

// Runner drives one collective over a network.
type Runner struct {
	cfg   Config
	hosts int
	parts int // packets per chunk
	netw  *network.Network

	recvd  []int // per host: rounds fully received
	doneAt units.Time
	done   bool
}

// Attach prepares a runner and hooks its delivery observer into the
// network configuration (chaining any existing Trace callback). Call
// before network.New, then Bind on the built network before Run.
func Attach(cfg *network.Config, c Config) *Runner {
	r := &Runner{cfg: c}
	prev := cfg.Trace.Delivered
	cfg.Trace.Delivered = func(p *packet.Packet, now units.Time) {
		if prev != nil {
			prev(p, now)
		}
		r.onDelivered(p, now)
	}
	return r
}

// Bind registers the collective's flows on the built network and schedules
// round 0. Call exactly once, before Network.Run.
func (r *Runner) Bind(n *network.Network) error {
	if r.netw != nil {
		return fmt.Errorf("collective: Bind called twice")
	}
	r.netw = n
	r.hosts = n.Hosts()
	if err := r.cfg.Validate(r.hosts); err != nil {
		return err
	}
	if r.cfg.Rounds == 0 {
		r.cfg.Rounds = r.hosts - 1
	}
	ncfg := n.ConfigValue()
	maxPayload := ncfg.MTU - packet.HeaderSize
	r.parts = int((r.cfg.Chunk + maxPayload - 1) / maxPayload)
	r.recvd = make([]int, r.hosts)

	for h := 0; h < r.hosts; h++ {
		dst := (h + 1) % r.hosts
		n.Host(h).AddFlow(&hostif.Flow{
			ID: FlowBase + packet.FlowID(h), Class: r.cfg.Class, Src: h, Dst: dst,
			Route: n.Admission().RouteBestEffort(h, dst, uint64(FlowBase)+uint64(h)),
			Mode:  hostif.ByBandwidth, BW: ncfg.LinkBW,
		})
	}
	n.Engine().At(r.cfg.StartAt, func() {
		for h := 0; h < r.hosts; h++ {
			n.Host(h).SubmitMessage(FlowBase+packet.FlowID(h), r.cfg.Chunk)
		}
	})
	return nil
}

// onDelivered advances the ring: when host d has fully received round r it
// may submit its round r+1 chunk.
func (r *Runner) onDelivered(p *packet.Packet, now units.Time) {
	if r.netw == nil || p.Flow < FlowBase || p.Flow >= FlowBase+packet.FlowID(r.hosts) {
		return
	}
	if int(p.Seq)%r.parts != r.parts-1 {
		return // not the chunk's last packet
	}
	round := int(p.Seq) / r.parts
	d := p.Dst
	r.recvd[d] = round + 1
	if round+1 < r.cfg.Rounds {
		r.netw.Host(d).SubmitMessage(FlowBase+packet.FlowID(d), r.cfg.Chunk)
	}
	if !r.done {
		for _, got := range r.recvd {
			if got < r.cfg.Rounds {
				return
			}
		}
		r.done = true
		r.doneAt = now
	}
}

// Done reports whether every host completed all rounds.
func (r *Runner) Done() bool { return r.done }

// CompletionTime returns the collective's duration (start to the last
// delivery of the last round). Valid only when Done.
func (r *Runner) CompletionTime() units.Time { return r.doneAt - r.cfg.StartAt }

// MinRound returns the slowest host's completed round count (progress
// diagnostics for collectives that did not finish in the window).
func (r *Runner) MinRound() int {
	if len(r.recvd) == 0 {
		return 0
	}
	minv := r.recvd[0]
	for _, v := range r.recvd[1:] {
		if v < minv {
			minv = v
		}
	}
	return minv
}
