// End-to-end reliability layer (fault recovery).
//
// The paper's fabric is lossless, so the architecture needs no
// retransmission. Under the fault model of internal/faults packets can be
// corrupted in flight (detected by the destination NIC's CRC check) or
// lost outright to a link flap, and deadlines stay meaningful only if the
// source recovers. The recovery protocol implemented here:
//
//   - The source NIC keeps every injected packet in a retransmission
//     tracker, keyed by the per-flow sequence number already carried in
//     the wire header, until the destination acknowledges it.
//   - The destination drops corrupted copies (CRC) and NAKs them; it also
//     NAKs sequence gaps revealed by later arrivals (the network delivers
//     each flow in order, so a gap means an upstream loss). Duplicates —
//     retransmit copies racing a late original or a stale timeout — are
//     dropped and re-acknowledged.
//   - Unacknowledged packets retransmit on a timeout with exponential
//     backoff. Each retransmit copy is re-stamped through the flow's §3.1
//     virtual-clock deadline rule, so a recovering flow re-enters the EDF
//     schedule honestly instead of competing with its original deadline.
//   - After DemoteAfter retries a regulated packet is demoted to the
//     best-effort virtual channel: a flow crossing a persistently faulty
//     link degrades to best-effort service instead of wedging the
//     regulated VC with hopeless retransmissions.
//
// Acknowledgements and NAKs travel out-of-band (like credits) with a
// configurable modelled delay; they are never lost.

package hostif

import (
	"fmt"
	"math"

	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// Reliability configures the end-to-end retransmission layer of a host
// NIC. The zero value disables it (the paper's lossless baseline).
type Reliability struct {
	// Enabled switches the layer on.
	Enabled bool
	// Timeout is the base retransmission timeout (default 500 µs).
	Timeout units.Time
	// Backoff multiplies the timeout per retry (default 2).
	Backoff float64
	// MaxTimeout caps the backed-off timeout (default 16 ms).
	MaxTimeout units.Time
	// DemoteAfter is the retry count after which a packet is demoted to
	// the best-effort VC (default 3; negative disables demotion).
	DemoteAfter int
	// AckDelay is the modelled latency of the out-of-band ack/nak
	// channel (default 2 µs). The network wiring applies it.
	AckDelay units.Time
}

// WithDefaults fills unset fields with the defaults above.
func (r Reliability) WithDefaults() Reliability {
	if r.Timeout <= 0 {
		r.Timeout = 500 * units.Microsecond
	}
	if r.Backoff < 1 {
		r.Backoff = 2
	}
	if r.MaxTimeout <= 0 {
		r.MaxTimeout = 16 * units.Millisecond
	}
	if r.DemoteAfter == 0 {
		r.DemoteAfter = 3
	}
	if r.AckDelay <= 0 {
		r.AckDelay = 2 * units.Microsecond
	}
	return r
}

// Validate rejects nonsensical explicit settings. Zero-valued fields are
// always valid — WithDefaults fills them.
func (r Reliability) Validate() error {
	if !r.Enabled {
		return nil
	}
	if r.Timeout < 0 {
		return fmt.Errorf("hostif: reliability timeout %v is negative", r.Timeout)
	}
	if r.Backoff != 0 && r.Backoff < 1 {
		return fmt.Errorf("hostif: reliability backoff %v < 1 would shrink timeouts", r.Backoff)
	}
	if r.MaxTimeout < 0 {
		return fmt.Errorf("hostif: reliability max timeout %v is negative", r.MaxTimeout)
	}
	if r.MaxTimeout > 0 && r.Timeout > 0 && r.MaxTimeout < r.Timeout {
		return fmt.Errorf("hostif: reliability max timeout %v below base timeout %v", r.MaxTimeout, r.Timeout)
	}
	if r.AckDelay < 0 {
		return fmt.Errorf("hostif: reliability ack delay %v is negative", r.AckDelay)
	}
	return nil
}

// rto returns the backed-off timeout for the given retry count.
func (r Reliability) rto(retries int) units.Time {
	t := float64(r.Timeout) * math.Pow(r.Backoff, float64(retries))
	if t > float64(r.MaxTimeout) {
		return r.MaxTimeout
	}
	return units.Time(t)
}

// RelCounters are the recovery-layer counters of one host.
type RelCounters struct {
	Acked         uint64 // unique packets confirmed delivered
	Timeouts      uint64 // retransmissions triggered by timer expiry
	Naks          uint64 // NAKs received from destinations
	Retransmitted uint64 // retransmit copies queued
	Demoted       uint64 // packets demoted to the best-effort VC
	RxCorrupt     uint64 // corrupted copies dropped by this host's CRC check
	RxDup         uint64 // duplicate copies dropped by this host
}

// Add accumulates other into c (run-level aggregation).
func (c *RelCounters) Add(other RelCounters) {
	c.Acked += other.Acked
	c.Timeouts += other.Timeouts
	c.Naks += other.Naks
	c.Retransmitted += other.Retransmitted
	c.Demoted += other.Demoted
	c.RxCorrupt += other.RxCorrupt
	c.RxDup += other.RxDup
}

// relKey identifies a unique packet end-to-end: retransmit copies carry
// fresh packet IDs but keep the (flow, seq) identity.
type relKey struct {
	flow packet.FlowID
	seq  uint64
}

// relEntry tracks one injected, not-yet-acknowledged packet at its source.
type relEntry struct {
	pkt     packet.Packet // snapshot of the last transmitted copy
	retries int
	demoted bool
	// queued is true while a retransmit copy sits in the injection queue;
	// it suppresses duplicate retransmissions from NAK/timeout races.
	queued bool
	timer  sim.Handle
}

// relState is the sender-side tracker of one host.
type relState struct {
	entries map[relKey]*relEntry
}

// trackInjected registers (or re-arms) tracking for a packet that just
// entered the network. The entry stores a value copy taken at injection —
// never a reference to the live packet, which the destination (possibly
// on another parsim shard) mutates in flight.
func (h *Host) trackInjected(p *packet.Packet) {
	key := relKey{p.Flow, p.Seq}
	e := h.rel.entries[key]
	if e == nil {
		e = &relEntry{}
		h.rel.entries[key] = e
	}
	e.pkt = *p
	e.queued = false
	rto := h.cfg.Reliability.rto(e.retries)
	e.timer = h.cfg.Eng.After(rto, func() { h.onRetxTimeout(key) })
}

// onRetxTimeout fires when a tracked packet's ack did not arrive in time.
func (h *Host) onRetxTimeout(key relKey) {
	e := h.rel.entries[key]
	if e == nil || e.queued {
		return
	}
	h.relCnt.Timeouts++
	h.retransmit(e)
}

// HandleAck processes an out-of-band receiver report for (flow, seq):
// ok acknowledges delivery, !ok is a NAK requesting retransmission.
func (h *Host) HandleAck(flow packet.FlowID, seq uint64, ok bool) {
	if h.rel == nil {
		return
	}
	key := relKey{flow, seq}
	e := h.rel.entries[key]
	if e == nil {
		return // already acknowledged (stale duplicate report)
	}
	if ok {
		if e.timer.Pending() {
			h.cfg.Eng.Cancel(e.timer)
		}
		delete(h.rel.entries, key)
		h.relCnt.Acked++
		return
	}
	h.relCnt.Naks++
	if !e.queued {
		if e.timer.Pending() {
			h.cfg.Eng.Cancel(e.timer)
		}
		h.retransmit(e)
	}
}

// retransmit queues a fresh copy of a tracked packet, re-stamped through
// the flow's deadline calculus and demoted to best-effort after too many
// retries.
func (h *Host) retransmit(e *relEntry) {
	e.retries++
	h.relCnt.Retransmitted++

	f := h.flows[e.pkt.Flow]
	cp := e.pkt
	cp.ID = h.cfg.IDs.NextPacket()
	cp.Hop = 0
	cp.Corrupted = false
	cp.Eligible = 0
	cp.InjectedAt = 0

	// Re-stamp per the §3.1 virtual-clock rule: the retransmission is new
	// work for the flow, so its deadline advances from the copy's previous
	// deadline (or now, if that has passed) by the flow's per-packet
	// increment. The flow's virtual clock follows, keeping the source's
	// deadline sequence monotone.
	now := h.cfg.Clock.Now()
	base := cp.Deadline
	if now > base {
		base = now
	}
	switch f.Mode {
	case ByBandwidth:
		cp.Deadline = base + f.BW.TxTime(cp.Size)
	case FrameLatency:
		cp.Deadline = base + f.Target/units.Time(cp.FrameParts)
	}
	if cp.Deadline > f.lastDeadline {
		f.lastDeadline = cp.Deadline
	}

	if da := h.cfg.Reliability.DemoteAfter; da > 0 && e.retries >= da && !e.demoted {
		e.demoted = true
		h.relCnt.Demoted++
		if h.cfg.Tracer != nil && cp.Sampled {
			h.traceEvt(trace.KindDemoted, &cp)
		}
		if h.cfg.Hooks.Demoted != nil {
			h.cfg.Hooks.Demoted(&cp, h.cfg.Eng.Now())
		}
	}
	if e.demoted {
		cp.VC = h.cfg.Arch.VCFor(packet.BestEffort)
	}
	e.pkt = cp
	e.queued = true

	pc := new(packet.Packet)
	*pc = cp
	if h.cfg.Tracer != nil && pc.Sampled {
		// The copy inherits the original's sampling decision through the
		// Sampled bit in the tracked snapshot.
		h.traceEvt(trace.KindRetransmit, pc)
	}
	if h.cfg.Hooks.Retransmitted != nil {
		h.cfg.Hooks.Retransmitted(pc, h.cfg.Eng.Now())
	}
	h.ready[pc.VC].Push(pc)
	h.tryInject()
}

// Outstanding returns the number of injected packets not yet acknowledged
// (0 when the reliability layer is disabled).
func (h *Host) Outstanding() int {
	if h.rel == nil {
		return 0
	}
	return len(h.rel.entries)
}

// RelCounters returns the host's recovery-layer counters.
func (h *Host) RelCounters() RelCounters { return h.relCnt }

// --- receive-side sequence tracking --------------------------------------

// rxFlow tracks which sequence numbers of one incoming flow have been
// delivered, for duplicate suppression and gap NAKs. All seqs below next
// are delivered; have holds the sparse set at or above it.
type rxFlow struct {
	next  uint64
	have  map[uint64]struct{}
	naked map[uint64]struct{}
}

func newRxFlow() *rxFlow {
	return &rxFlow{have: make(map[uint64]struct{}), naked: make(map[uint64]struct{})}
}

// seen reports whether seq was already delivered.
func (r *rxFlow) seen(seq uint64) bool {
	if seq < r.next {
		return true
	}
	_, ok := r.have[seq]
	return ok
}

// mark records seq as delivered and advances the contiguous frontier.
func (r *rxFlow) mark(seq uint64) {
	r.have[seq] = struct{}{}
	delete(r.naked, seq)
	for {
		if _, ok := r.have[r.next]; !ok {
			break
		}
		delete(r.have, r.next)
		r.next++
	}
}

// gaps returns the missing sequence numbers below seq that have not been
// NAKed yet, marking them NAKed. Call after mark(seq).
func (r *rxFlow) gaps(seq uint64) []uint64 {
	var out []uint64
	for s := r.next; s < seq; s++ {
		if _, got := r.have[s]; got {
			continue
		}
		if _, nd := r.naked[s]; nd {
			continue
		}
		r.naked[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// rxFlowOf returns (creating on demand) the tracker for flow id.
func (h *Host) rxFlowOf(id packet.FlowID) *rxFlow {
	r := h.rx[id]
	if r == nil {
		r = newRxFlow()
		h.rx[id] = r
	}
	return r
}
